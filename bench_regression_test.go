// Regression benchmarks: the small, stable set of hot-path measurements
// tracked over time by `make bench`. Unlike the figure benches in
// bench_test.go (which regenerate the paper's tables and report model
// scalars), these measure the implementation itself — publish ingest,
// dispatch fan-out, and the batch codec — and their ns/op and allocs/op
// are written to bench/BENCH_<date>.json by cmd/benchjson, which fails
// when a run regresses >20% against the previous recorded point.
package jmsperf_test

import (
	"context"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/stress"
	"repro/internal/trace"
	"repro/internal/wire"
)

// regressionBroker is the shared fixture: a fast-engine broker with one
// wildcard subscriber draining deliveries, the minimal end-to-end
// publish→dispatch path.
func regressionBroker(b *testing.B, engine broker.Engine, nonMatching int) *broker.Broker {
	b.Helper()
	br := broker.New(broker.Options{
		InFlight: 1024, SubscriberBuffer: 1 << 16,
		Engine: engine, Shards: 4,
	})
	b.Cleanup(func() { _ = br.Close() })
	if err := br.ConfigureTopic("t"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nonMatching; i++ {
		f, err := filter.NewCorrelationID("#never-" + strconv.Itoa(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := br.Subscribe("t", f); err != nil {
			b.Fatal(err)
		}
	}
	sub, err := br.Subscribe("t", nil)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range sub.Chan() {
		}
	}()
	return br
}

// BenchmarkRegressionPublish is the per-message publish path on the fast
// engine: one broker.Publish per message, one in-flight slot each.
func BenchmarkRegressionPublish(b *testing.B) {
	br := regressionBroker(b, broker.EngineFast, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionPublishBatch16 is the batched publish path: 16
// messages per broker.PublishBatch, one in-flight slot per batch. Its
// per-message cost against BenchmarkRegressionPublish is the batching win
// the jmsbench -compare row quantifies end to end.
func BenchmarkRegressionPublishBatch16(b *testing.B) {
	const batch = 16
	br := regressionBroker(b, broker.EngineFast, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		// Fresh slice per call: PublishBatch retains it.
		msgs := make([]*jms.Message, batch)
		for j := range msgs {
			msgs[j] = jms.NewMessage("t")
		}
		if err := br.PublishBatch(ctx, msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionDispatch is the filter-scan dispatch stage on the
// faithful engine: 64 non-matching correlation-ID filters plus one
// wildcard, the paper's n_fltr cost per published message.
func BenchmarkRegressionDispatch(b *testing.B) {
	br := regressionBroker(b, broker.EngineFaithful, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionBatchEncode measures the batch codec's encode side:
// a 16-message batch appended into a pooled buffer, the client
// PublishBatch hot path.
func BenchmarkRegressionBatchEncode(b *testing.B) {
	msgs := make([]*jms.Message, 16)
	for i := range msgs {
		m := jms.NewMessage("t")
		m.SetBody(make([]byte, 128))
		if err := m.SetStringProperty("region", "eu"); err != nil {
			b.Fatal(err)
		}
		msgs[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.GetBuffer()
		*buf = wire.AppendBatch((*buf)[:0], msgs)
		wire.PutBuffer(buf)
	}
}

// BenchmarkRegressionDeliver measures the delivery fast path's per-frame
// cost: one MESSAGE frame (prologue + delivery header + message) encoded
// into a pooled buffer, exactly what the server's delivery pump does per
// replica. The steady state must be allocation-free — this row is gated
// at 0 allocs/op by cmd/benchjson -maxallocs.
func BenchmarkRegressionDeliver(b *testing.B) {
	m := jms.NewMessage("t")
	m.SetBody(make([]byte, 128))
	if err := m.SetStringProperty("region", "eu"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := wire.GetBuffer()
		buf := append((*bp)[:0], 0, 0, 0, 0, byte(wire.FrameMessage))
		buf = wire.AppendDelivery(buf, 7, uint64(i), m)
		*bp = buf
		wire.PutBuffer(bp)
	}
}

// BenchmarkRegressionEndToEnd is the full wire loop on TCP loopback:
// batching publisher clients → server ingress → fast-engine dispatch →
// delivery pump egress → subscriber client. ns/op is the end-to-end
// per-message cost; the msgs/s/core metric is the throughput headline the
// IoT-edge broker benchmarking literature reports, normalized by
// GOMAXPROCS so trajectory points from different hosts stay comparable.
func BenchmarkRegressionEndToEnd(b *testing.B) {
	const batch = 16
	const publishers = 4
	br := broker.New(broker.Options{
		InFlight: 1024, SubscriberBuffer: 1 << 15,
		Engine: broker.EngineFast, Shards: 4,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := wire.Serve(br, ln)
	b.Cleanup(func() {
		_ = srv.Close()
		_ = br.Close()
	})
	ctx := context.Background()

	subCl, err := client.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = subCl.Close() })
	if err := subCl.ConfigureTopic(ctx, "t"); err != nil {
		b.Fatal(err)
	}
	sub, err := subCl.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 1<<15)
	if err != nil {
		b.Fatal(err)
	}

	pubs := make([]*client.Client, publishers)
	for i := range pubs {
		if pubs[i], err = client.Dial(ln.Addr().String()); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func(c *client.Client) func() {
			return func() { _ = c.Close() }
		}(pubs[i]))
	}

	// Round b.N up to a whole number of batches per publisher.
	perPub := (b.N + publishers*batch - 1) / (publishers * batch) * batch
	total := perPub * publishers

	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < total; {
			if _, ok := <-sub.Chan(); !ok {
				return
			}
			n++
		}
	}()
	var wg sync.WaitGroup
	for _, p := range pubs {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			msgs := make([]*jms.Message, batch)
			for sent := 0; sent < perPub; sent += batch {
				for j := range msgs {
					m := jms.NewMessage("t")
					m.SetBody(make([]byte, 128))
					msgs[j] = m
				}
				if err := c.PublishBatch(ctx, msgs); err != nil {
					b.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	<-done
	elapsed := b.Elapsed()
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(total)/s/float64(runtime.GOMAXPROCS(0)), "msgs/s/core")
	}
}

// e2eStack is one full wire loop — broker, TCP server, one draining
// subscriber and a set of batching publishers — optionally with a flight
// recorder attached to both the broker and wire layers. It is the
// fixture for the tracing-overhead guard, which needs two such loops
// side by side.
type e2eStack struct {
	pubs []*client.Client
	sub  *client.Subscription
}

func newE2EStack(b *testing.B, publishers int, rec *trace.Recorder) *e2eStack {
	b.Helper()
	br := broker.New(broker.Options{
		InFlight: 1024, SubscriberBuffer: 1 << 15,
		Engine: broker.EngineFast, Shards: 4,
		Tracer: rec,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := wire.ServeWith(br, ln, wire.ServeOptions{Tracer: rec})
	b.Cleanup(func() {
		_ = srv.Close()
		_ = br.Close()
	})
	ctx := context.Background()

	subCl, err := client.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = subCl.Close() })
	if err := subCl.ConfigureTopic(ctx, "t"); err != nil {
		b.Fatal(err)
	}
	sub, err := subCl.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 1<<15)
	if err != nil {
		b.Fatal(err)
	}
	pubs := make([]*client.Client, publishers)
	for i := range pubs {
		if pubs[i], err = client.Dial(ln.Addr().String()); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func(c *client.Client) func() {
			return func() { _ = c.Close() }
		}(pubs[i]))
	}
	return &e2eStack{pubs: pubs, sub: sub}
}

// pump pushes perPub messages through each publisher in batches, waits
// for the subscriber to drain all of them, and returns the wall time.
func (s *e2eStack) pump(b *testing.B, perPub, batch int) time.Duration {
	ctx := context.Background()
	total := perPub * len(s.pubs)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < total; {
			if _, ok := <-s.sub.Chan(); !ok {
				return
			}
			n++
		}
	}()
	var wg sync.WaitGroup
	for _, p := range s.pubs {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			msgs := make([]*jms.Message, batch)
			for sent := 0; sent < perPub; sent += batch {
				for j := range msgs {
					m := jms.NewMessage("t")
					m.SetBody(make([]byte, 128))
					msgs[j] = m
				}
				if err := c.PublishBatch(ctx, msgs); err != nil {
					b.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	<-done
	return time.Since(start)
}

// BenchmarkRegressionEndToEndTraced is the tracing-overhead guard: the
// same wire loop as BenchmarkRegressionEndToEnd run twice over — once
// bare and once with a flight recorder at the jmsd default sampling rate
// (1 in 64) — in interleaved chunks whose order alternates every round,
// so host drift and the cold-phase penalty land on both loops equally.
// overhead_pct compares the two loops' best (minimum) per-round times —
// the standard noise-robust estimator, since scheduler and GC noise on a
// shared host only ever adds time — clamped at zero, and is pinned at ≤5
// by cmd/benchjson -maxmetric in `make bench`: the acceptance ceiling
// for what tracing may cost.
func BenchmarkRegressionEndToEndTraced(b *testing.B) {
	const batch = 16
	const publishers = 4
	const rounds = 6

	bare := newE2EStack(b, publishers, nil)
	rec := trace.New(trace.Config{SampleEvery: 64})
	b.Cleanup(rec.Close)
	traced := newE2EStack(b, publishers, rec)

	// Round b.N up to whole batches per publisher, split across rounds.
	perPub := (b.N + publishers*batch - 1) / (publishers * batch) * batch
	perRound := (perPub/rounds + batch - 1) / batch * batch

	// Untimed warmup: connections, pools, arenas and the runtime settle on
	// both stacks before anything is compared, so the later-built stack
	// does not pay its cold-start inside the measurement.
	bare.pump(b, perRound, batch)
	traced.pump(b, perRound, batch)

	b.ReportAllocs()
	b.ResetTimer()
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	var bareBest, tracedBest, tracedTotal time.Duration
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			bareBest = best(bareBest, bare.pump(b, perRound, batch))
			d := traced.pump(b, perRound, batch)
			tracedBest, tracedTotal = best(tracedBest, d), tracedTotal+d
		} else {
			d := traced.pump(b, perRound, batch)
			tracedBest, tracedTotal = best(tracedBest, d), tracedTotal+d
			bareBest = best(bareBest, bare.pump(b, perRound, batch))
		}
	}
	b.StopTimer()
	if b.Failed() || bareBest <= 0 || tracedBest <= 0 {
		return
	}
	// Equal message counts per round, so best-time ratio is the
	// best-throughput ratio.
	overhead := (1 - bareBest.Seconds()/tracedBest.Seconds()) * 100
	if overhead < 0 {
		overhead = 0
	}
	total := perRound * rounds * publishers
	b.ReportMetric(overhead, "overhead_pct")
	b.ReportMetric(float64(total)/tracedTotal.Seconds()/float64(runtime.GOMAXPROCS(0)), "msgs/s/core")
}

// BenchmarkRegressionMesh is the replication-mesh hot path: a publish
// entering a 3-member SSR wire mesh is re-encoded as FORWARD frames,
// flooded to both peers over TCP loopback, and dispatched to one
// subscriber per member. ns/op is the per-publish cost including the
// forwarding fan-out and all three deliveries — the distributed
// counterpart of BenchmarkRegressionEndToEnd.
func BenchmarkRegressionMesh(b *testing.B) {
	const members = 3
	lns := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	subs := make([]*client.Subscription, members)
	ctx := context.Background()
	for i := range lns {
		br := broker.New(broker.Options{InFlight: 1024, SubscriberBuffer: 1 << 15})
		if err := br.ConfigureTopic("t"); err != nil {
			b.Fatal(err)
		}
		mesh, err := cluster.NewWireMesh(cluster.WireMeshConfig{
			Kind:  cluster.TopologySSR,
			Self:  i,
			Addrs: addrs,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := wire.ServeWith(br, lns[i], wire.ServeOptions{Forwarder: mesh})
		b.Cleanup(func() {
			_ = mesh.Close()
			_ = srv.Close()
			_ = br.Close()
		})
		c, err := client.Dial(addrs[i])
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = c.Close() })
		if subs[i], err = c.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 1<<15); err != nil {
			b.Fatal(err)
		}
	}
	pub, err := client.Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = pub.Close() })

	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, sub := range subs {
			for n := 0; n < b.N; {
				if _, ok := <-sub.Chan(); !ok {
					return
				}
				n++
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish(ctx, jms.NewMessage("t")); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s/float64(runtime.GOMAXPROCS(0)), "msgs/s/core")
	}
}

// BenchmarkRegressionBatchDecode measures the decode side as the server
// actually runs it: view-parse + validate the 16-message batch frame, then
// materialize through a connection arena into a reused destination slice.
// Steady state is two allocations per batch (the message slab and the body
// slab — GC-owned because subscribers retain the messages), gated by
// cmd/benchjson -maxallocs.
func BenchmarkRegressionBatchDecode(b *testing.B) {
	msgs := make([]*jms.Message, 16)
	for i := range msgs {
		m := jms.NewMessage("t")
		m.SetBody(make([]byte, 128))
		msgs[i] = m
	}
	payload := wire.EncodeBatch(msgs)
	arena := wire.NewMessageArena()
	dst := make([]*jms.Message, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = arena.AppendBatchMessages(dst[:0], payload)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionSubscriptionStore pins the subscription store's two
// scale numbers at the 10^5 population: ns/op is the epoch-snapshot index
// rebuild after a 64-op churn batch (lazy, batch-proportional — not
// population-proportional), and the bytes/sub metric is the marginal
// live-heap cost per subscription with interned filters. bytes/sub is
// gated absolutely by cmd/benchjson -maxmetric so a footprint regression
// cannot ratchet in across tolerant relative steps.
func BenchmarkRegressionSubscriptionStore(b *testing.B) {
	const population = 100_000
	bytesPerSub, err := stress.BytesPerSub(population)
	if err != nil {
		b.Fatal(err)
	}
	p, err := stress.BuildPopulation(population, 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	rng := rand.New(rand.NewSource(1))
	p.Topic.Index() // settle the initial build
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := p.Churn(rng, 64); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		p.Topic.Index()
	}
	b.StopTimer()
	b.ReportMetric(bytesPerSub, "bytes/sub")
}
