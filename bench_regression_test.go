// Regression benchmarks: the small, stable set of hot-path measurements
// tracked over time by `make bench`. Unlike the figure benches in
// bench_test.go (which regenerate the paper's tables and report model
// scalars), these measure the implementation itself — publish ingest,
// dispatch fan-out, and the batch codec — and their ns/op and allocs/op
// are written to bench/BENCH_<date>.json by cmd/benchjson, which fails
// when a run regresses >20% against the previous recorded point.
package jmsperf_test

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/wire"
)

// regressionBroker is the shared fixture: a fast-engine broker with one
// wildcard subscriber draining deliveries, the minimal end-to-end
// publish→dispatch path.
func regressionBroker(b *testing.B, engine broker.Engine, nonMatching int) *broker.Broker {
	b.Helper()
	br := broker.New(broker.Options{
		InFlight: 1024, SubscriberBuffer: 1 << 16,
		Engine: engine, Shards: 4,
	})
	b.Cleanup(func() { _ = br.Close() })
	if err := br.ConfigureTopic("t"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nonMatching; i++ {
		f, err := filter.NewCorrelationID("#never-" + strconv.Itoa(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := br.Subscribe("t", f); err != nil {
			b.Fatal(err)
		}
	}
	sub, err := br.Subscribe("t", nil)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range sub.Chan() {
		}
	}()
	return br
}

// BenchmarkRegressionPublish is the per-message publish path on the fast
// engine: one broker.Publish per message, one in-flight slot each.
func BenchmarkRegressionPublish(b *testing.B) {
	br := regressionBroker(b, broker.EngineFast, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionPublishBatch16 is the batched publish path: 16
// messages per broker.PublishBatch, one in-flight slot per batch. Its
// per-message cost against BenchmarkRegressionPublish is the batching win
// the jmsbench -compare row quantifies end to end.
func BenchmarkRegressionPublishBatch16(b *testing.B) {
	const batch = 16
	br := regressionBroker(b, broker.EngineFast, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		// Fresh slice per call: PublishBatch retains it.
		msgs := make([]*jms.Message, batch)
		for j := range msgs {
			msgs[j] = jms.NewMessage("t")
		}
		if err := br.PublishBatch(ctx, msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionDispatch is the filter-scan dispatch stage on the
// faithful engine: 64 non-matching correlation-ID filters plus one
// wildcard, the paper's n_fltr cost per published message.
func BenchmarkRegressionDispatch(b *testing.B) {
	br := regressionBroker(b, broker.EngineFaithful, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionBatchEncode measures the batch codec's encode side:
// a 16-message batch appended into a pooled buffer, the client
// PublishBatch hot path.
func BenchmarkRegressionBatchEncode(b *testing.B) {
	msgs := make([]*jms.Message, 16)
	for i := range msgs {
		m := jms.NewMessage("t")
		m.SetBody(make([]byte, 128))
		if err := m.SetStringProperty("region", "eu"); err != nil {
			b.Fatal(err)
		}
		msgs[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.GetBuffer()
		*buf = wire.AppendBatch((*buf)[:0], msgs)
		wire.PutBuffer(buf)
	}
}

// BenchmarkRegressionBatchDecode measures the decode side: the broker
// front door splitting a 16-message batch frame back into messages.
func BenchmarkRegressionBatchDecode(b *testing.B) {
	msgs := make([]*jms.Message, 16)
	for i := range msgs {
		m := jms.NewMessage("t")
		m.SetBody(make([]byte, 128))
		msgs[i] = m
	}
	payload := wire.EncodeBatch(msgs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeBatch(payload); err != nil {
			b.Fatal(err)
		}
	}
}
