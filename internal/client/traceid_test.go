package client

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/jms"
	"repro/internal/wire"
)

// These tests pin the TraceID lifecycle the flight recorder depends on:
// the client stamps a nonzero ID on every publish that lacks one, caller
// IDs pass through untouched, and the value survives every wire path —
// single frames, explicit batches, the size/linger coalescer and the
// server's arena/view materialization — unchanged.

func subscribeAll(t *testing.T, addr, topic string) *Subscription {
	t.Helper()
	c := dialT(t, addr)
	ctx := ctxT(t)
	// Several subscribers may share a topic; the duplicate error is fine.
	_ = c.ConfigureTopic(ctx, topic)
	sub, err := c.Subscribe(ctx, topic, wire.FilterSpec{Mode: wire.FilterNone}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestPublishAutoStampsTraceID(t *testing.T) {
	addr, _ := startServer(t)
	sub := subscribeAll(t, addr, "t")
	pub := dialT(t, addr)
	ctx := ctxT(t)

	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		m := jms.NewMessage("t")
		if m.Header.TraceID != 0 {
			t.Fatal("fresh message carries a TraceID")
		}
		if err := pub.Publish(ctx, m); err != nil {
			t.Fatal(err)
		}
		got, err := sub.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Header.TraceID == 0 {
			t.Fatalf("delivery %d arrived without a TraceID", i)
		}
		if seen[got.Header.TraceID] {
			t.Fatalf("duplicate auto-stamped TraceID %d", got.Header.TraceID)
		}
		seen[got.Header.TraceID] = true
	}
}

func TestExplicitTraceIDPreserved(t *testing.T) {
	addr, _ := startServer(t)
	sub := subscribeAll(t, addr, "t")
	pub := dialT(t, addr)
	ctx := ctxT(t)

	const id = 0xDEADBEEFCAFE
	m := jms.NewMessage("t")
	m.Header.TraceID = id
	if err := pub.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := sub.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.TraceID != id {
		t.Errorf("TraceID = %#x, want %#x", got.Header.TraceID, id)
	}
}

// TestTraceIDDifferentialAcrossPaths publishes the same labeled message
// set through the single-frame path, the explicit batch path and the
// size/linger coalescer, with caller-assigned IDs, and requires all three
// to deliver the identical body→TraceID mapping — the differential check
// that no wire path loses or rewrites the header.
func TestTraceIDDifferentialAcrossPaths(t *testing.T) {
	const n = 24
	ids := func(run int) map[string]uint64 {
		out := make(map[string]uint64, n)
		for i := 0; i < n; i++ {
			out[fmt.Sprintf("m%d", i)] = uint64(run)<<32 | uint64(i+1)
		}
		return out
	}
	collect := func(t *testing.T, sub *Subscription) map[string]uint64 {
		t.Helper()
		ctx := ctxT(t)
		got := make(map[string]uint64, n)
		for len(got) < n {
			m, err := sub.Receive(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got[string(m.Body)] = m.Header.TraceID
		}
		return got
	}
	asSorted := func(m map[string]uint64) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += fmt.Sprintf("%s=%d;", k, m[k]-(m[k]>>32)<<32)
		}
		return s
	}

	mk := func(body string, id uint64) *jms.Message {
		m := jms.NewMessage("t")
		m.SetBody([]byte(body))
		m.Header.TraceID = id
		return m
	}

	// Single-frame path.
	addr, _ := startServer(t)
	sub := subscribeAll(t, addr, "t")
	pub := dialT(t, addr)
	ctx := ctxT(t)
	want := ids(1)
	for body, id := range want {
		if err := pub.Publish(ctx, mk(body, id)); err != nil {
			t.Fatal(err)
		}
	}
	single := collect(t, sub)
	for body, id := range want {
		if single[body] != id {
			t.Errorf("single path: %s TraceID %d, want %d", body, single[body], id)
		}
	}

	// Explicit batch path (MSG_BATCH frame, arena decode on the server).
	addr2, _ := startServer(t)
	sub2 := subscribeAll(t, addr2, "t")
	pub2 := dialT(t, addr2)
	want2 := ids(2)
	msgs := make([]*jms.Message, 0, n)
	for body, id := range want2 {
		msgs = append(msgs, mk(body, id))
	}
	if err := pub2.PublishBatch(ctx, msgs); err != nil {
		t.Fatal(err)
	}
	batch := collect(t, sub2)
	for body, id := range want2 {
		if batch[body] != id {
			t.Errorf("batch path: %s TraceID %d, want %d", body, batch[body], id)
		}
	}

	// Coalescer path: concurrent publishes auto-batch through the
	// size/linger batcher.
	addr3, _ := startServer(t)
	sub3 := subscribeAll(t, addr3, "t")
	pub3, err := DialWith(addr3, Options{BatchMax: 8, BatchLinger: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub3.Close() })
	want3 := ids(3)
	var wg sync.WaitGroup
	for body, id := range want3 {
		wg.Add(1)
		go func(body string, id uint64) {
			defer wg.Done()
			if err := pub3.Publish(ctx, mk(body, id)); err != nil {
				t.Error(err)
			}
		}(body, id)
	}
	wg.Wait()
	coalesced := collect(t, sub3)
	for body, id := range want3 {
		if coalesced[body] != id {
			t.Errorf("coalescer path: %s TraceID %d, want %d", body, coalesced[body], id)
		}
	}

	// The three paths delivered the same body→sequence mapping.
	if asSorted(single) != asSorted(batch) || asSorted(batch) != asSorted(coalesced) {
		t.Error("paths disagree on delivered body→TraceID mapping")
	}
}

func TestCoalescerAutoStamps(t *testing.T) {
	addr, _ := startServer(t)
	sub := subscribeAll(t, addr, "t")
	pub, err := DialWith(addr, Options{BatchMax: 4, BatchLinger: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	ctx := ctxT(t)

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pub.Publish(ctx, jms.NewMessage("t")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		m, err := sub.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.TraceID == 0 {
			t.Fatal("coalesced delivery without TraceID")
		}
		if seen[m.Header.TraceID] {
			t.Fatalf("duplicate TraceID %d through coalescer", m.Header.TraceID)
		}
		seen[m.Header.TraceID] = true
	}
}
