package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jms"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// This file adds the reliability layer on top of the bare Client: a
// Reliable connection survives the transport faults the bare client
// reports as ErrLost. It redials with exponential backoff and jitter,
// transparently resubscribes its active subscriptions, and retries
// publishes — stamping each message with a per-publisher sequence
// number the server dedupes, so the at-least-once retry loop has an
// effectively-once effect. The paper's measurement clients never needed
// this (laboratory network); the ROADMAP's production north star does.

// Reliability counter names registered in the metrics registry.
const (
	// MetricConnectionsLost counts detected connection failures.
	MetricConnectionsLost = "reliability.connections_lost"
	// MetricReconnects counts successful redials (with resubscribes done).
	MetricReconnects = "reliability.reconnects"
	// MetricPublishRetries counts publish attempts repeated after ErrLost.
	MetricPublishRetries = "reliability.publish_retries"
	// MetricResubscribes counts subscriptions re-established on redial.
	MetricResubscribes = "reliability.resubscribes"
	// MetricDuplicatesDropped counts redeliveries a ReliableSub suppressed.
	MetricDuplicatesDropped = "reliability.duplicates_dropped"
)

// Backoff is an exponential backoff policy with jitter: attempt n (from
// 0) sleeps Base·Factor^n, capped at Max, with a uniform ±Jitter
// fraction applied so a fleet of reconnecting clients does not thunder.
type Backoff struct {
	// Base is the first delay. Default 10ms.
	Base time.Duration
	// Max caps the delay. Default 1s.
	Max time.Duration
	// Factor is the per-attempt multiplier. Default 2.
	Factor float64
	// Jitter is the relative spread: the delay is scaled by a uniform
	// factor in [1-Jitter, 1+Jitter]. Default 0.2.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	return b
}

// Delay returns the sleep before attempt n (0-based), drawing the
// jitter from rng. Safe to call with a nil rng (no jitter).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d)
}

// State is the connection state a Reliable reports via OnState.
type State int

// Connection states.
const (
	// StateConnected: a healthy connection is installed.
	StateConnected State = iota + 1
	// StateReconnecting: the connection was lost; the redial loop runs.
	StateReconnecting
	// StateClosed: closed locally or the redial budget is exhausted.
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ReliableOptions configure a Reliable connection.
type ReliableOptions struct {
	// Backoff is the redial policy. Zero value: 10ms base, 1s cap,
	// factor 2, 20% jitter.
	Backoff Backoff
	// OnState, when non-nil, is called on every state transition with
	// the error that caused it (nil for StateConnected). Called from the
	// reliability goroutines; it must not block.
	OnState func(State, error)
	// OnSubClosed, when non-nil, is called when the broker closes one of
	// this connection's subscriptions (a slow-consumer disconnect). The
	// subscription is final — it is not resubscribed on redial; its
	// Receive reports *SubClosedError. Called from the subscription's
	// pump goroutine; it must not block.
	OnSubClosed func(topic, reason string)
	// Metrics receives the reliability counters. A private registry is
	// created when nil.
	Metrics *metrics.Registry
	// PublisherID is the dedupe identity stamped into published
	// messages. Default: derived from the seed so concurrent publishers
	// get distinct identities.
	PublisherID string
	// MaxRedials bounds consecutive failed redial attempts before the
	// connection gives up and reports StateClosed. 0 = never give up.
	MaxRedials int
	// Seed makes the jitter deterministic in tests. 0 seeds from the
	// global source.
	Seed int64
}

// Reliable is a broker connection that survives transport failures. It
// wraps a current *Client, replaced on redial; Publish, Subscribe and
// ConfigureTopic retry across replacements. Safe for concurrent use.
type Reliable struct {
	dial func() (*Client, error)
	opts ReliableOptions
	reg  *metrics.Registry

	rngMu sync.Mutex
	rng   *rand.Rand

	mu        sync.Mutex
	cur       *Client
	epoch     uint64 // bumped on every failure; stale watchers no-op
	redialing bool
	connReady chan struct{} // closed when a connection is (re)installed
	closed    bool
	lastErr   error
	subs      map[*ReliableSub]struct{}

	pubID string
	seq   atomic.Int64

	done     chan struct{}
	doneOnce sync.Once
}

// DialReliable connects to addr and returns a self-healing connection.
// The initial dial is not retried (a bad address should fail fast);
// failures after that are.
func DialReliable(addr string, opts ReliableOptions) (*Reliable, error) {
	return NewReliable(func() (*Client, error) { return Dial(addr) }, opts)
}

// NewReliable builds a Reliable around an arbitrary dial function (the
// chaos tests dial through a fault-injecting transport).
func NewReliable(dial func() (*Client, error), opts ReliableOptions) (*Reliable, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Reliable{
		dial:  dial,
		opts:  opts,
		reg:   reg,
		rng:   rand.New(rand.NewSource(seed)),
		subs:  make(map[*ReliableSub]struct{}),
		pubID: opts.PublisherID,
		done:  make(chan struct{}),
	}
	r.opts.Backoff = r.opts.Backoff.withDefaults()
	if r.pubID == "" {
		r.pubID = fmt.Sprintf("pub-%08x", uint32(seed)^uint32(seed>>32))
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	r.install(c)
	r.setState(StateConnected, nil)
	return r, nil
}

// Metrics returns the registry holding the reliability counters.
func (r *Reliable) Metrics() *metrics.Registry { return r.reg }

// PublisherID returns the dedupe identity stamped into publishes.
func (r *Reliable) PublisherID() string { return r.pubID }

func (r *Reliable) setState(s State, err error) {
	if r.opts.OnState != nil {
		r.opts.OnState(s, err)
	}
}

// install makes c the current connection and starts its failure watcher.
// It reports false — closing c — when the Reliable was concurrently
// closed, so a redial that completes during Close cannot resurrect the
// connection and leak it. Callers must not hold r.mu.
func (r *Reliable) install(c *Client) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = c.Close()
		return false
	}
	r.cur = c
	r.redialing = false
	if r.connReady != nil {
		close(r.connReady)
		r.connReady = nil
	}
	epoch := r.epoch
	r.mu.Unlock()
	go r.watch(c, epoch)
	return true
}

// watch waits for the connection to die and triggers the redial loop.
func (r *Reliable) watch(c *Client, epoch uint64) {
	<-c.Done()
	err := c.Err()
	if errors.Is(err, ErrLost) {
		r.noteFailure(epoch, err)
	}
	// A clean ErrClosed means we replaced or closed it ourselves.
}

// noteFailure reacts to a connection failure observed under the given
// epoch. Concurrent observers (the watcher, failed publishes) dedupe on
// the epoch: only the first starts the redial loop.
func (r *Reliable) noteFailure(epoch uint64, cause error) {
	r.mu.Lock()
	if r.closed || r.redialing || epoch != r.epoch {
		r.mu.Unlock()
		return
	}
	r.epoch++
	r.redialing = true
	r.connReady = make(chan struct{})
	old := r.cur
	r.cur = nil
	r.lastErr = cause
	r.mu.Unlock()

	if old != nil {
		old.Abandon()
	}
	r.reg.Counter(MetricConnectionsLost).Inc()
	r.setState(StateReconnecting, cause)
	go r.redialLoop()
}

// redialLoop dials with backoff until a connection is installed with all
// subscriptions re-established, or the budget runs out.
func (r *Reliable) redialLoop() {
	for attempt := 0; ; attempt++ {
		if r.opts.MaxRedials > 0 && attempt >= r.opts.MaxRedials {
			r.giveUp(fmt.Errorf("client: gave up after %d redials: %w", attempt, r.lastError()))
			return
		}
		r.rngMu.Lock()
		delay := r.opts.Backoff.Delay(attempt, r.rng)
		r.rngMu.Unlock()
		select {
		case <-time.After(delay):
		case <-r.done:
			return
		}

		c, err := r.dial()
		if err != nil {
			r.setLastError(err)
			continue
		}
		if err := r.reattach(c); err != nil {
			_ = c.Close()
			r.setLastError(err)
			continue
		}
		if !r.install(c) {
			return
		}
		r.reg.Counter(MetricReconnects).Inc()
		r.setState(StateConnected, nil)
		return
	}
}

func (r *Reliable) setLastError(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
}

func (r *Reliable) lastError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastErr != nil {
		return r.lastErr
	}
	return ErrLost
}

// giveUp closes the Reliable after the redial budget is exhausted.
func (r *Reliable) giveUp(err error) {
	r.mu.Lock()
	r.closed = true
	r.lastErr = err
	if r.connReady != nil {
		close(r.connReady)
		r.connReady = nil
	}
	subs := make([]*ReliableSub, 0, len(r.subs))
	for rs := range r.subs {
		subs = append(subs, rs)
	}
	r.subs = nil
	r.mu.Unlock()
	r.doneOnce.Do(func() { close(r.done) })
	for _, rs := range subs {
		rs.markGone()
	}
	r.setState(StateClosed, err)
}

// reattach re-establishes every registered subscription on c. Durable
// reattach can transiently fail with "already active" while the server
// still tears down the old connection; the caller treats any error as
// retryable and backs off.
func (r *Reliable) reattach(c *Client) error {
	r.mu.Lock()
	subs := make([]*ReliableSub, 0, len(r.subs))
	for rs := range r.subs {
		subs = append(subs, rs)
	}
	r.mu.Unlock()
	for _, rs := range subs {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		sub, err := c.Subscribe(ctx, rs.topic, rs.spec, rs.buffer)
		cancel()
		if err != nil {
			return fmt.Errorf("client: resubscribe %q: %w", rs.topic, err)
		}
		rs.handoff(sub)
		r.reg.Counter(MetricResubscribes).Inc()
	}
	return nil
}

// current returns the installed connection and its epoch, waiting out a
// redial in progress.
func (r *Reliable) current(ctx context.Context) (*Client, uint64, error) {
	for {
		r.mu.Lock()
		if r.closed {
			err := r.lastErr
			r.mu.Unlock()
			if err != nil {
				return nil, 0, err
			}
			return nil, 0, ErrClosed
		}
		if r.cur != nil {
			c, epoch := r.cur, r.epoch
			r.mu.Unlock()
			return c, epoch, nil
		}
		ready := r.connReady
		r.mu.Unlock()
		if ready == nil {
			return nil, 0, ErrClosed
		}
		select {
		case <-ready:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-r.done:
			return nil, 0, ErrClosed
		}
	}
}

// retryable reports whether err warrants a redial-and-retry: only
// transport losses are; server errors and context cancellations are
// final.
func retryable(err error) bool {
	return errors.Is(err, ErrLost)
}

// Publish sends a message, retrying across connection replacements until
// the broker acknowledges or ctx expires. The message is stamped with
// the publisher's dedupe identity, so a retried publish whose original
// reached the broker is acknowledged without being published twice:
// at-least-once retries, effectively-once delivery.
func (r *Reliable) Publish(ctx context.Context, m *jms.Message) error {
	// Restamp on every top-level call, overwriting any identity the
	// message already carries: re-publishing the same message object is a
	// new publish and must get a fresh sequence number, or the server's
	// dedupe would ack it without delivering. Only the in-flight retry
	// loop below may reuse a stamp — that reuse is what the dedupe is for.
	if err := m.SetStringProperty(wire.PubIDProperty, r.pubID); err != nil {
		return err
	}
	if err := m.SetInt64Property(wire.PubSeqProperty, r.seq.Add(1)); err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		c, epoch, err := r.current(ctx)
		if err != nil {
			return err
		}
		err = c.Publish(ctx, m)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		r.reg.Counter(MetricPublishRetries).Inc()
		r.noteFailure(epoch, err)
	}
}

// ConfigureTopic creates a topic, retrying across connection
// replacements. A "duplicate topic" server error on a retry is success:
// the first attempt reached the broker before the connection died.
func (r *Reliable) ConfigureTopic(ctx context.Context, name string) error {
	for attempt := 0; ; attempt++ {
		c, epoch, err := r.current(ctx)
		if err != nil {
			return err
		}
		err = c.ConfigureTopic(ctx, name)
		if err == nil {
			return nil
		}
		var se *ServerError
		if attempt > 0 && errors.As(err, &se) && strings.Contains(se.Msg, "duplicate topic") {
			return nil
		}
		if !retryable(err) {
			return err
		}
		r.noteFailure(epoch, err)
	}
}

// DeleteDurable removes a named durable subscription, retrying across
// connection replacements. A "no such durable" error on a retry is
// success for the same reason as in ConfigureTopic.
func (r *Reliable) DeleteDurable(ctx context.Context, topicName, name string) error {
	for attempt := 0; ; attempt++ {
		c, epoch, err := r.current(ctx)
		if err != nil {
			return err
		}
		err = c.DeleteDurable(ctx, topicName, name)
		if err == nil {
			return nil
		}
		var se *ServerError
		if attempt > 0 && errors.As(err, &se) && strings.Contains(se.Msg, "no such durable") {
			return nil
		}
		if !retryable(err) {
			return err
		}
		r.noteFailure(epoch, err)
	}
}

// Close shuts the Reliable down. Subscriptions end (Receive returns
// ErrClosed); a redial in progress stops.
func (r *Reliable) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.closed = true
	cur := r.cur
	r.cur = nil
	if r.connReady != nil {
		close(r.connReady)
		r.connReady = nil
	}
	subs := make([]*ReliableSub, 0, len(r.subs))
	for rs := range r.subs {
		subs = append(subs, rs)
	}
	r.subs = nil
	r.mu.Unlock()

	r.doneOnce.Do(func() { close(r.done) })
	var err error
	if cur != nil {
		err = cur.Close()
	}
	for _, rs := range subs {
		rs.markGone()
	}
	r.setState(StateClosed, nil)
	return err
}
