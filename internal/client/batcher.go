package client

import (
	"context"
	"sync"
	"time"

	"repro/internal/jms"
)

// batcher is the opt-in publish coalescer behind Options.BatchMax: Publish
// calls park their message here, and the accumulated batch is flushed as
// one MSG_BATCH frame when it reaches max messages or when linger has
// elapsed since the first one was buffered — the classic size/time-bounded
// batching tradeoff (larger batches amortize more per-frame overhead,
// linger bounds the latency a lone message can pay for company).
type batcher struct {
	c      *Client
	max    int
	linger time.Duration

	mu      sync.Mutex
	msgs    []*jms.Message
	waiters []chan error
	timer   *time.Timer
}

// publish enqueues m and waits for the flush that carries it. Cancelling
// ctx abandons the wait only: the message is already committed to the
// batch and may still reach the broker.
func (b *batcher) publish(ctx context.Context, m *jms.Message) error {
	done := make(chan error, 1)
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.waiters = append(b.waiters, done)
	if len(b.msgs) >= b.max {
		b.flushLocked()
	} else if b.timer == nil {
		b.timer = time.AfterFunc(b.linger, b.flush)
	}
	b.mu.Unlock()

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flush is the linger timer's callback.
func (b *batcher) flush() {
	b.mu.Lock()
	b.flushLocked()
	b.mu.Unlock()
}

// flushLocked hands the accumulated batch to a sender goroutine and resets
// the buffer. The send happens off the caller's lock so a slow broker ack
// never blocks further coalescing; FIFO order still holds because the
// client writes the frame before waiting and writeMu serializes frames in
// flush order only when sends don't race — with concurrent publishers the
// broker's per-batch ordering (not cross-batch) is the guarantee.
func (b *batcher) flushLocked() {
	if len(b.msgs) == 0 {
		return
	}
	msgs, waiters := b.msgs, b.waiters
	b.msgs, b.waiters = nil, nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	go func() {
		// Background context: a linger-triggered flush belongs to no single
		// caller, and per-caller cancellation already detached above.
		err := b.c.PublishBatch(context.Background(), msgs)
		for _, w := range waiters {
			w <- err
		}
	}()
}
