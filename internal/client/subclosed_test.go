package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
	"repro/internal/wire"
)

// startSlowServer is startServer with a broker configured for the
// disconnect slow-consumer policy and a tiny subscriber queue.
func startSlowServer(t testing.TB) (addr string, b *broker.Broker) {
	t.Helper()
	b = broker.New(broker.Options{
		SlowConsumer:     broker.SlowConsumerDisconnect,
		SubscriberBuffer: 2,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(b, ln)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return ln.Addr().String(), b
}

// TestSubClosedNoticeEndToEnd drives the full slow-consumer disconnect
// path across the wire: a subscriber that never reads its server-side
// queue is kicked by the broker, the server sends SUB_CLOSED, and the
// client surfaces it as OnSubClosed + *SubClosedError with the
// slow-consumer reason.
func TestSubClosedNoticeEndToEnd(t *testing.T) {
	addr, b := startSlowServer(t)
	var notified atomic.Pointer[string]
	closedCh := make(chan struct{})
	c, err := DialWith(addr, Options{
		OnSubClosed: func(sub *Subscription, reason string) {
			if sub.Topic() != "t" {
				t.Errorf("OnSubClosed topic = %q, want t", sub.Topic())
			}
			notified.Store(&reason)
			close(closedCh)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ctx := ctxT(t)
	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}

	sub, err := c.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The client never reads and never acks; its TCP receive window is
	// tiny relative to the flood, so the server-side subscriber queue
	// (capacity 2) fills and the kick fires. Publish from a second
	// connection to keep this one's inbound path untouched.
	pubC := dialT(t, addr)
	pubCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kicked := false
	for i := 0; i < 10000 && !kicked; i++ {
		m := jms.NewMessage("t")
		m.SetBody(make([]byte, 4096))
		if err := pubC.Publish(pubCtx, m); err != nil {
			t.Fatal(err)
		}
		kicked = b.Stats().SlowDisconnects > 0
	}
	if !kicked {
		t.Fatal("broker never kicked the stalled subscriber")
	}

	// The client's read loop is backed up behind the full subscription
	// buffer; draining unblocks it so the SUB_CLOSED notice gets
	// processed, and the drain itself must end in *SubClosedError.
	var subErr *SubClosedError
	for {
		_, err := sub.Receive(ctx)
		if err == nil {
			continue
		}
		if !errors.As(err, &subErr) {
			t.Fatalf("Receive after kick: %v, want *SubClosedError", err)
		}
		break
	}

	select {
	case <-closedCh:
	case <-time.After(10 * time.Second):
		t.Fatal("OnSubClosed never fired")
	}
	if r := notified.Load(); r == nil || *r != "slow-consumer" {
		t.Fatalf("OnSubClosed reason = %v, want slow-consumer", r)
	}
	if subErr.Reason != "slow-consumer" || subErr.Topic != "t" {
		t.Fatalf("SubClosedError = %+v", subErr)
	}
	if got := b.Stats().SlowDisconnects; got != 1 {
		t.Errorf("SlowDisconnects = %d, want 1", got)
	}
	// The server dropped its connSub entry: a client Unsubscribe now
	// reports unknown-subscription rather than hanging or panicking.
	if err := sub.Unsubscribe(ctx); err == nil {
		t.Error("Unsubscribe after server-side close: want error, got nil")
	}
}

// TestReliableSubClosedByServer pins the reliability layer's handling of
// a broker-initiated subscription closure: a ReliableSub kicked by the
// slow-consumer disconnect policy ends with *SubClosedError and fires
// ReliableOptions.OnSubClosed — it must NOT wait for a reattach that
// will never come (the connection is healthy), and it must not be
// resubscribed by a later redial.
func TestReliableSubClosedByServer(t *testing.T) {
	addr, b := startSlowServer(t)
	closedCh := make(chan string, 1)
	r, err := DialReliable(addr, ReliableOptions{
		OnSubClosed: func(topic, reason string) {
			if topic != "t" {
				t.Errorf("OnSubClosed topic = %q, want t", topic)
			}
			closedCh <- reason
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	ctx := ctxT(t)
	if err := r.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	sub, err := r.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 1)
	if err != nil {
		t.Fatal(err)
	}

	pubC := dialT(t, addr)
	pubCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	kicked := false
	for i := 0; i < 10000 && !kicked; i++ {
		m := jms.NewMessage("t")
		m.SetBody(make([]byte, 4096))
		if err := pubC.Publish(pubCtx, m); err != nil {
			t.Fatal(err)
		}
		kicked = b.Stats().SlowDisconnects > 0
	}
	if !kicked {
		t.Fatal("broker never kicked the stalled subscriber")
	}

	// Drain the buffered residue; the stream must end in *SubClosedError,
	// not hang awaiting a reattach.
	var subErr *SubClosedError
	for {
		_, err := sub.Receive(ctx)
		if err == nil {
			continue
		}
		if !errors.As(err, &subErr) {
			t.Fatalf("Receive after kick: %v, want *SubClosedError", err)
		}
		break
	}
	if subErr.Reason != "slow-consumer" {
		t.Fatalf("SubClosedError = %+v", subErr)
	}
	select {
	case reason := <-closedCh:
		if reason != "slow-consumer" {
			t.Fatalf("OnSubClosed reason = %q", reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OnSubClosed never fired")
	}
}
