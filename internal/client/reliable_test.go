package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/faultnet"
	"repro/internal/jms"
	"repro/internal/wire"
)

// startChaosServer brings up a broker behind a fault-injecting listener.
func startChaosServer(t testing.TB, cfg faultnet.Config) (addr string, fn *faultnet.Network, b *broker.Broker) {
	t.Helper()
	b = broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fn = faultnet.New(cfg)
	srv := wire.Serve(b, fn.Wrap(ln))
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return ln.Addr().String(), fn, b
}

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Jitter stays within the configured spread.
	j := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := j.Delay(0, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered Delay(0) = %v outside [50ms, 150ms]", d)
		}
	}
}

// TestErrLostClassification is the satellite fix: a server-side
// disconnect mid-call must be distinguishable from a clean local Close.
func TestErrLostClassification(t *testing.T) {
	addr, fn, _ := startChaosServer(t, faultnet.Config{Seed: 1})
	c := dialT(t, addr)
	ctx := ctxT(t)
	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}

	// Cut the connection under the client, then observe a call failure.
	fn.KillAll()
	<-c.Done()
	err := c.ConfigureTopic(ctx, "t2")
	if !errors.Is(err, ErrLost) {
		t.Fatalf("error after server-side cut = %v, want errors.Is(err, ErrLost)", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("lost-connection error must keep matching ErrClosed for old callers, got %v", err)
	}
	if got := c.Err(); !errors.Is(got, ErrLost) {
		t.Fatalf("Err() = %v, want ErrLost match", got)
	}

	// A clean local Close stays plain ErrClosed: not retryable.
	c2 := dialT(t, addr)
	_ = c2.Close()
	err = c2.ConfigureTopic(ctx, "t3")
	if !errors.Is(err, ErrClosed) || errors.Is(err, ErrLost) {
		t.Fatalf("error after local Close = %v, want ErrClosed and not ErrLost", err)
	}
}

func dialReliableT(t testing.TB, addr string, opts ReliableOptions) *Reliable {
	t.Helper()
	if opts.Backoff.Base == 0 {
		opts.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Jitter: 0.2}
	}
	r, err := DialReliable(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

// TestChaosExactlyOnce is the acceptance chaos test: a publisher and a
// durable acked subscriber complete a fixed message count with zero
// loss, no duplicates, and order preserved, while faultnet kills every
// live connection between each batch — at least three cuts per client.
func TestChaosExactlyOnce(t *testing.T) {
	addr, fn, _ := startChaosServer(t, faultnet.Config{Seed: 42})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pub := dialReliableT(t, addr, ReliableOptions{Seed: 7, PublisherID: "chaos-pub"})
	sub := dialReliableT(t, addr, ReliableOptions{Seed: 8})
	if err := pub.ConfigureTopic(ctx, "chaos"); err != nil {
		t.Fatal(err)
	}
	rs, err := sub.Subscribe(ctx, "chaos",
		wire.FilterSpec{Mode: wire.FilterNone, DurableName: "chaos-sub", Acked: true}, 16)
	if err != nil {
		t.Fatal(err)
	}

	const batches = 4
	const perBatch = 50
	const total = batches * perBatch

	// Receiver: collect the full stream concurrently with the kills.
	type recvResult struct {
		bodies []int
		err    error
	}
	recvCh := make(chan recvResult, 1)
	go func() {
		var got []int
		for len(got) < total {
			m, err := rs.Receive(ctx)
			if err != nil {
				recvCh <- recvResult{got, err}
				return
			}
			n, err := strconv.Atoi(string(m.Body))
			if err != nil {
				recvCh <- recvResult{got, fmt.Errorf("bad body %q: %w", m.Body, err)}
				return
			}
			got = append(got, n)
		}
		recvCh <- recvResult{got, nil}
	}()

	next := 0
	for batch := 0; batch < batches; batch++ {
		for i := 0; i < perBatch; i++ {
			next++
			m := jms.NewMessage("chaos")
			m.Body = []byte(strconv.Itoa(next))
			if err := pub.Publish(ctx, m); err != nil {
				t.Fatalf("publish %d: %v", next, err)
			}
		}
		if batch == batches-1 {
			break
		}
		// Cut every live connection. Both clients have one: the publisher
		// just completed an acked publish, the subscriber holds its
		// delivery stream. So every batch boundary cuts both, giving each
		// client at least batches-1 = 3 kills.
		waitConns(t, fn, 2)
		if killed := fn.KillAll(); killed < 2 {
			t.Fatalf("batch %d: KillAll cut %d connections, want >= 2", batch, killed)
		}
	}

	res := <-recvCh
	if res.err != nil {
		t.Fatalf("receiver died after %d messages: %v", len(res.bodies), res.err)
	}
	for i, n := range res.bodies {
		if n != i+1 {
			t.Fatalf("position %d: got message %d, want %d (loss, duplication or reorder)", i, n, i+1)
		}
	}
	if s := fn.Stats(); s.Resets < 2*(batches-1) {
		t.Fatalf("injected resets = %d, want >= %d", s.Resets, 2*(batches-1))
	}
	lost := pub.Metrics().Counter(MetricConnectionsLost).Value() +
		sub.Metrics().Counter(MetricConnectionsLost).Value()
	if lost < 2*(batches-1) {
		t.Errorf("clients observed %d connection losses, want >= %d", lost, 2*(batches-1))
	}
	if rec := sub.Metrics().Counter(MetricReconnects).Value(); rec < batches-1 {
		t.Errorf("subscriber reconnects = %d, want >= %d", rec, batches-1)
	}
}

// waitConns polls until the fault network sees at least n live
// connections (reconnects in progress have landed).
func waitConns(t testing.TB, fn *faultnet.Network, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for fn.NumConns() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d live connections (have %d)", n, fn.NumConns())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosMidFrameResets drives a publisher through connections that
// die after a fixed byte budget on the publisher's own writes — publish
// frames are cut mid-frame — and checks complete, duplicate-free
// arrival at the broker.
func TestChaosMidFrameResets(t *testing.T) {
	addr, _, b := startChaosServer(t, faultnet.Config{Seed: 9})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Wrap the client side: each outgoing connection dies after ~1.5KiB
	// of publish traffic, mid-frame.
	fn := faultnet.New(faultnet.Config{Seed: 13, ResetAfterBytes: 1500})
	dial := func() (*Client, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return NewClient(fn.WrapConn(conn)), nil
	}
	pub, err := NewReliable(dial, ReliableOptions{
		Seed:        11,
		PublisherID: "midframe-pub",
		Backoff:     Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.ConfigureTopic(ctx, "mf"); err != nil {
		t.Fatal(err)
	}
	// Count locally: subscribe straight on the broker (the fault network
	// only wraps the server's wire connections; broker-side subscribers
	// see the deduped stream the server admitted).
	bsub, err := b.Subscribe("mf", nil)
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	for i := 1; i <= total; i++ {
		m := jms.NewMessage("mf")
		m.Body = []byte(strconv.Itoa(i))
		if err := pub.Publish(ctx, m); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	seen := make(map[int]bool)
	for len(seen) < total {
		m, err := bsub.Receive(ctx)
		if err != nil {
			t.Fatalf("after %d distinct messages: %v", len(seen), err)
		}
		n, _ := strconv.Atoi(string(m.Body))
		if seen[n] {
			t.Fatalf("duplicate publish %d reached the broker (dedupe failed)", n)
		}
		seen[n] = true
	}
	if s := fn.Stats(); s.Resets == 0 {
		t.Fatal("byte budget injected no resets; the test exercised nothing")
	}
}

// TestReliablePublishRestampsReusedMessage: re-publishing the same
// message object is a new publish — the reliability layer must restamp
// the dedupe sequence, or the server would ack it as a duplicate and
// silently drop it.
func TestReliablePublishRestampsReusedMessage(t *testing.T) {
	addr, _, b := startChaosServer(t, faultnet.Config{Seed: 2})
	ctx := ctxT(t)
	pub := dialReliableT(t, addr, ReliableOptions{Seed: 31, PublisherID: "reuse-pub"})
	if err := pub.ConfigureTopic(ctx, "reuse"); err != nil {
		t.Fatal(err)
	}
	bsub, err := b.Subscribe("reuse", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewMessage("reuse")
	m.Body = []byte("x")
	const repeats = 3
	for i := 0; i < repeats; i++ {
		if err := pub.Publish(ctx, m); err != nil {
			t.Fatalf("publish %d of reused message: %v", i, err)
		}
	}
	seen := make(map[int64]bool)
	for i := 0; i < repeats; i++ {
		got, err := bsub.Receive(ctx)
		if err != nil {
			t.Fatalf("after %d deliveries: %v (reused message swallowed by dedupe?)", i, err)
		}
		seq, err := got.Int64Property(wire.PubSeqProperty)
		if err != nil {
			t.Fatal(err)
		}
		if seen[seq] {
			t.Fatalf("sequence %d delivered twice", seq)
		}
		seen[seq] = true
	}
}

// TestPublishFailureReleasesSequence: a stamped publish that fails in
// the broker must not burn its (pub, seq) in the dedupe table — after
// the client fixes the error (creates the topic), the retried sequence
// must be published, not acked as a duplicate.
func TestPublishFailureReleasesSequence(t *testing.T) {
	addr, _, b := startChaosServer(t, faultnet.Config{Seed: 4})
	ctx := ctxT(t)
	c := dialT(t, addr)
	m := jms.NewMessage("late")
	m.Body = []byte("x")
	if err := m.SetStringProperty(wire.PubIDProperty, "late-pub"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt64Property(wire.PubSeqProperty, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, m); err == nil {
		t.Fatal("publish to a missing topic succeeded")
	}
	if err := c.ConfigureTopic(ctx, "late"); err != nil {
		t.Fatal(err)
	}
	bsub, err := b.Subscribe("late", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, m); err != nil {
		t.Fatalf("retry after fixing the topic: %v", err)
	}
	got, err := bsub.Receive(ctx)
	if err != nil {
		t.Fatalf("retried publish never delivered (sequence burned by the failed attempt): %v", err)
	}
	if string(got.Body) != "x" {
		t.Fatalf("Body = %q, want %q", got.Body, "x")
	}
}

// TestReliableStateCallbacksAndGiveUp: losing the server flips the state
// to reconnecting; an exhausted redial budget reports closed.
func TestReliableStateCallbacksAndGiveUp(t *testing.T) {
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(b, ln)
	addr := ln.Addr().String()

	var reconnecting, closedState atomic.Bool
	stateCh := make(chan State, 16)
	r, err := DialReliable(addr, ReliableOptions{
		Backoff:    Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		MaxRedials: 3,
		Seed:       5,
		OnState: func(s State, err error) {
			switch s {
			case StateReconnecting:
				reconnecting.Store(true)
			case StateClosed:
				closedState.Store(true)
			}
			select {
			case stateCh <- s:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Take the server down for good: the redial budget must run out.
	_ = srv.Close()
	_ = b.Close()

	deadline := time.Now().Add(10 * time.Second)
	for !closedState.Load() {
		if time.Now().After(deadline) {
			t.Fatal("redial budget never exhausted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !reconnecting.Load() {
		t.Error("never observed StateReconnecting")
	}
	ctx := ctxT(t)
	if err := r.ConfigureTopic(ctx, "x"); err == nil {
		t.Error("call succeeded on a given-up connection")
	}
}

// TestReliableNonDurableResubscribe: a plain subscription is transparently
// re-established — new traffic flows after the cut (messages during the
// gap may be lost; that is non-durable semantics).
func TestReliableNonDurableResubscribe(t *testing.T) {
	addr, fn, _ := startChaosServer(t, faultnet.Config{Seed: 3})
	ctx := ctxT(t)

	pub := dialReliableT(t, addr, ReliableOptions{Seed: 21})
	sub := dialReliableT(t, addr, ReliableOptions{Seed: 22})
	if err := pub.ConfigureTopic(ctx, "nd"); err != nil {
		t.Fatal(err)
	}
	rs, err := sub.Subscribe(ctx, "nd", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}

	fn.KillAll()
	// Wait until the subscriber's reconnect registered a new filter.
	deadline := time.Now().Add(10 * time.Second)
	for sub.Metrics().Counter(MetricResubscribes).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no resubscribe after cut")
		}
		time.Sleep(2 * time.Millisecond)
	}

	m := jms.NewMessage("nd")
	m.Body = []byte("after")
	if err := pub.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "after" {
		t.Fatalf("Body = %q, want %q", got.Body, "after")
	}
	if err := rs.Unsubscribe(ctx); err != nil {
		t.Fatal(err)
	}
}
