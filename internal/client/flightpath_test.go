package client

import (
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
	"repro/internal/trace"
	"repro/internal/wire"
)

// startTracedServer is startServer with a flight recorder wired into both
// the wire frontend and the broker, sampling every message.
func startTracedServer(t testing.TB) (addr string, rec *trace.Recorder) {
	t.Helper()
	rec = trace.New(trace.Config{SampleEvery: 1, FinalizeAfter: time.Hour})
	b := broker.New(broker.Options{Tracer: rec})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.ServeWith(b, ln, wire.ServeOptions{Tracer: rec})
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
		rec.Close()
	})
	return ln.Addr().String(), rec
}

// TestEndToEndSpanTree drives one traced message over the real TCP path
// and asserts the flight record contains the complete span tree: wire
// ingress and decode, the broker's queue/match/replicate/transmit, and
// the egress-side encode, writer-queue wait and writev share for each of
// the two deliveries.
func TestEndToEndSpanTree(t *testing.T) {
	addr, rec := startTracedServer(t)
	ctx := ctxT(t)

	subA := subscribeAll(t, addr, "t")
	subB := subscribeAll(t, addr, "t")
	pub := dialT(t, addr)

	const id = uint64(0xF11487)
	m := jms.NewMessage("t")
	m.Header.TraceID = id
	m.SetBody([]byte("flight"))
	if err := pub.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []*Subscription{subA, subB} {
		got, err := sub.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Header.TraceID != id {
			t.Fatalf("delivered TraceID %#x", got.Header.TraceID)
		}
	}

	// Both deliveries were received, so every span — including the
	// post-commit egress ones — has been recorded. Commit and inspect.
	var tr *trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec.Flush()
		got, ok := rec.Get(id)
		if ok && got.Complete && got.StageNs(trace.StageEgressWrite) > 0 {
			tr = got
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("complete trace with egress spans never appeared (got %+v)", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if tr.Topic != "t" || tr.R != 2 || tr.SojournNs <= 0 {
		t.Errorf("trace header: topic=%q R=%d sojourn=%d", tr.Topic, tr.R, tr.SojournNs)
	}
	counts := map[trace.Stage]int{}
	for _, sp := range tr.Spans {
		counts[sp.Stage]++
		if sp.DurNs < 0 || sp.StartNs <= 0 {
			t.Errorf("span %v with start=%d dur=%d", sp.Stage, sp.StartNs, sp.DurNs)
		}
	}
	for _, st := range []trace.Stage{
		trace.StageIngress, trace.StageDecode, trace.StageQueue,
		trace.StageMatch, trace.StageTransmit,
	} {
		if counts[st] != 1 {
			t.Errorf("stage %s recorded %d times, want 1", st, counts[st])
		}
	}
	// R=2 means one replicate plus per-delivery egress spans.
	if counts[trace.StageReplicate] != 1 {
		t.Errorf("replicate recorded %d times, want 1", counts[trace.StageReplicate])
	}
	for _, st := range []trace.Stage{trace.StageEncode, trace.StageEgressQueue, trace.StageEgressWrite} {
		if counts[st] != 2 {
			t.Errorf("stage %s recorded %d times, want 2 (one per delivery)", st, counts[st])
		}
	}
	// The ingress span precedes everything else in wall time.
	if tr.Spans[0].Stage != trace.StageIngress {
		t.Errorf("first span is %s, want ingress", tr.Spans[0].Stage)
	}
}

// TestBatchSpanTree checks the MSG_BATCH ingress path splits the shared
// frame read/decode across members: every sampled member of an explicit
// batch gets ingress and decode spans plus its own broker stages.
func TestBatchSpanTree(t *testing.T) {
	addr, rec := startTracedServer(t)
	ctx := ctxT(t)
	sub := subscribeAll(t, addr, "t")
	pub := dialT(t, addr)

	const n = 6
	msgs := make([]*jms.Message, n)
	for i := range msgs {
		msgs[i] = jms.NewMessage("t")
		msgs[i].Header.TraceID = uint64(0xB000 + i)
	}
	if err := pub.PublishBatch(ctx, msgs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for i := range msgs {
		id := msgs[i].Header.TraceID
		for {
			rec.Flush()
			tr, ok := rec.Get(id)
			if ok && tr.Complete && tr.StageNs(trace.StageEgressWrite) > 0 {
				if tr.StageNs(trace.StageIngress) <= 0 && tr.StageNs(trace.StageDecode) <= 0 {
					t.Errorf("member %d: no ingress/decode span", i)
				}
				if tr.SojournNs <= 0 {
					t.Errorf("member %d: no sojourn", i)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("member %d: complete trace never appeared", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
