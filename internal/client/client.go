// Package client provides the JMS-flavoured client API used by publishers
// and subscribers: connect to a broker over TCP, publish messages with
// acknowledgement-based push-back, and subscribe with a filter.
//
// Test clients in the paper are "derived from Fiorano's example Java
// sources": each publisher or subscriber holds an exclusive connection to
// the server. The benchmark harness follows the same pattern with one
// Client per publisher/subscriber thread.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jms"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Errors returned by the client.
var (
	// ErrClosed is returned after Close or when the server disconnects.
	ErrClosed = errors.New("client: connection closed")
	// ErrLost marks a connection that failed rather than being closed by
	// the local Close: the read loop hit a network error, or a send
	// failed. errors.Is(err, ErrLost) is the retryability signal the
	// reconnect layer keys on — a locally closed client is final, a lost
	// connection is worth redialling.
	ErrLost = errors.New("client: connection lost")
)

// connError wraps the underlying network error of a lost connection. It
// matches both ErrLost (new failure classification) and ErrClosed
// (every pre-existing "the connection is gone" check keeps working), and
// unwraps to the root cause for errors.Is(err, io.EOF) and friends.
type connError struct {
	err error
}

// Error implements the error interface.
func (e *connError) Error() string { return "client: connection lost: " + e.err.Error() }

// Unwrap exposes the classification sentinels and the underlying error.
func (e *connError) Unwrap() []error { return []error{ErrLost, ErrClosed, e.err} }

// lostErr classifies err as a lost-connection failure. A nil err (clean
// EOF path already mapped) falls back to bare ErrLost.
func lostErr(err error) error {
	if err == nil {
		return ErrLost
	}
	return &connError{err: err}
}

// ServerError is a request failure reported by the broker.
type ServerError struct {
	Msg string
}

// Error implements the error interface.
func (e *ServerError) Error() string { return "client: server error: " + e.Msg }

// Options configure optional client behaviour. The zero value is a plain
// unbatched client.
type Options struct {
	// BatchMax, when > 1, turns on auto-coalescing publishes: Publish
	// calls buffer their messages and flush as one MSG_BATCH frame once
	// BatchMax messages have accumulated or BatchLinger has elapsed since
	// the first buffered message, whichever comes first. One broker
	// acknowledgement then covers the whole batch, amortizing the
	// push-back round trip.
	BatchMax int
	// BatchLinger bounds how long the first buffered message waits for
	// company before the batch is flushed anyway. Defaults to 1ms when
	// BatchMax > 1.
	BatchLinger time.Duration
	// OnSubClosed, when non-nil, is called from the read loop whenever the
	// broker ends a subscription server-side (a SUB_CLOSED notice, e.g.
	// the disconnect slow-consumer policy). The callback must not block:
	// it runs on the connection's inbound path. Receive on the closed
	// subscription reports the same event as *SubClosedError.
	OnSubClosed func(sub *Subscription, reason string)
}

func (o Options) withDefaults() Options {
	if o.BatchMax > 1 && o.BatchLinger <= 0 {
		o.BatchLinger = time.Millisecond
	}
	return o
}

// Client is one connection to a broker. It is safe for concurrent use.
type Client struct {
	conn net.Conn
	opts Options

	// batch is the auto-coalescing publish buffer; nil unless
	// Options.BatchMax enables it.
	batch *batcher

	writeMu sync.Mutex

	reqID atomic.Uint64

	// traceBase seeds this client's auto-stamped TraceIDs (see stampTrace);
	// traceSeq is the per-publish counter mixed into it.
	traceBase uint64
	traceSeq  atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan result
	subs    map[uint64]*Subscription
	// pendingSubs holds pre-created subscriptions by request ID so the
	// read loop can register them the moment SUBSCRIBE_OK arrives — a
	// durable reattach replays its backlog immediately afterwards, and
	// TCP ordering then guarantees no delivery outruns registration.
	pendingSubs map[uint64]*Subscription
	closed      bool
	readErr     error

	// Delivery acks are queued here and written by ackLoop, never from
	// the read loop: a synchronous ack write could block on a full socket
	// send buffer and stall all inbound frame processing. The queue is
	// unbounded but its growth is bounded by deliveries the server sent,
	// which the per-subscription buffers throttle.
	ackMu   sync.Mutex
	ackQ    []pendingAck
	ackKick chan struct{}

	done chan struct{}
}

// pendingAck is one queued delivery acknowledgement.
type pendingAck struct {
	subID, seq uint64
}

type result struct {
	frame wire.Frame
	err   error
}

// Dial connects to a broker at addr ("host:port").
func Dial(addr string) (*Client, error) {
	return DialWith(addr, Options{})
}

// DialWith is Dial with client options.
func DialWith(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	return NewClientWith(conn, opts), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return NewClientWith(conn, Options{})
}

// NewClientWith is NewClient with client options.
func NewClientWith(conn net.Conn, opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{
		conn:        conn,
		opts:        opts,
		traceBase:   newTraceBase(),
		pending:     make(map[uint64]chan result),
		subs:        make(map[uint64]*Subscription),
		pendingSubs: make(map[uint64]*Subscription),
		ackKick:     make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	if opts.BatchMax > 1 {
		c.batch = &batcher{c: c, max: opts.BatchMax, linger: opts.BatchLinger}
	}
	go c.readLoop()
	go c.ackLoop()
	return c
}

// queueAck hands a delivery acknowledgement to ackLoop without blocking.
func (c *Client) queueAck(subID, seq uint64) {
	c.ackMu.Lock()
	c.ackQ = append(c.ackQ, pendingAck{subID: subID, seq: seq})
	c.ackMu.Unlock()
	select {
	case c.ackKick <- struct{}{}:
	default:
	}
}

// ackLoop drains queued delivery acks to the wire in order. It exits on
// connection teardown or the first write error; acks pending then are
// dropped — the server requeues the unacknowledged deliveries of a
// durable subscription on disconnect, so a dropped ack only means a
// redelivery the subscriber-side dedupe suppresses.
func (c *Client) ackLoop() {
	for {
		select {
		case <-c.ackKick:
		case <-c.done:
			return
		}
		for {
			c.ackMu.Lock()
			batch := c.ackQ
			c.ackQ = nil
			c.ackMu.Unlock()
			if len(batch) == 0 {
				break
			}
			// Coalesce the drained acks into one pooled buffer and one
			// write: MSG_ACK frames are fixed-size, so the whole burst is
			// appended back to back.
			bp := wire.GetBuffer()
			buf := (*bp)[:0]
			for _, a := range batch {
				buf = wire.AppendAckFrame(buf, a.subID, a.seq)
			}
			c.writeMu.Lock()
			_, err := c.conn.Write(buf)
			c.writeMu.Unlock()
			*bp = buf
			wire.PutBuffer(bp)
			if err != nil {
				return // connection dying; the read loop reports it
			}
		}
	}
}

// Abandon terminates the connection while classifying in-flight and
// subsequent calls as lost (retryable, errors.Is(err, ErrLost)) rather
// than cleanly closed. The reliability layer uses it to discard a failed
// connection it is replacing: callers blocked on that connection must
// see a retryable failure, not a final Close.
func (c *Client) Abandon() {
	_ = c.conn.Close()
	<-c.done
}

// Close terminates the connection. Pending requests fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) readLoop() {
	defer close(c.done)
	// Buffered ingress: frames are views into the reader's window (valid
	// for one dispatch call, which materializes deliveries through the
	// arena), and one Read syscall typically yields several frames.
	fr := wire.NewFrameReader(c.conn)
	arena := wire.NewMessageArena()
	for {
		f, err := fr.Next()
		if err != nil {
			c.failAll(err)
			return
		}
		c.dispatch(f, arena)
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readErr = err
	// Classify: a locally closed client fails pending calls with the
	// clean ErrClosed; a connection that died under us reports ErrLost
	// wrapping the read error, so callers can decide to retry.
	failErr := error(ErrClosed)
	if !c.closed {
		failErr = lostErr(err)
	}
	for id, ch := range c.pending {
		ch <- result{err: failErr}
		delete(c.pending, id)
	}
	for _, sub := range c.subs {
		sub.closeOnce()
	}
	c.subs = nil
}

// Done is closed when the read loop has exited — the connection is gone,
// whether by Close or by failure. Err distinguishes the two.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err reports why the connection is gone: nil while it is healthy,
// ErrClosed after a local Close, and an ErrLost-matching error after a
// network failure.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.readErr != nil {
		return lostErr(c.readErr)
	}
	return nil
}

// dispatch routes one inbound frame. f.Payload may be a view into the
// read loop's buffer, valid only for this call: replies handed to waiting
// callers carry only the frame type (everything a waiter needs is parsed
// here first), and deliveries are materialized through the arena.
func (c *Client) dispatch(f wire.Frame, arena *wire.MessageArena) {
	switch f.Type {
	case wire.FrameSubscribeOK:
		if len(f.Payload) < 16 {
			return
		}
		reqID := binary.BigEndian.Uint64(f.Payload)
		subID := binary.BigEndian.Uint64(f.Payload[8:])
		c.mu.Lock()
		if sub, ok := c.pendingSubs[reqID]; ok {
			delete(c.pendingSubs, reqID)
			sub.id = subID
			if c.subs != nil {
				c.subs[subID] = sub
			}
		}
		c.mu.Unlock()
		c.complete(reqID, result{frame: wire.Frame{Type: f.Type}})

	case wire.FramePubAck, wire.FrameUnsubscribeOK,
		wire.FrameConfigureTopicOK, wire.FrameDeleteDurableOK:
		if len(f.Payload) < 8 {
			return
		}
		reqID := binary.BigEndian.Uint64(f.Payload)
		c.complete(reqID, result{frame: wire.Frame{Type: f.Type}})

	case wire.FrameError:
		reqID, msg, err := wire.DecodeError(f.Payload)
		if err != nil {
			return
		}
		c.complete(reqID, result{err: &ServerError{Msg: msg}})

	case wire.FrameMessage:
		subID, seq, m, err := arena.DecodeDeliveryArena(f.Payload)
		if err != nil {
			return
		}
		c.mu.Lock()
		sub := c.subs[subID]
		c.mu.Unlock()
		if sub != nil {
			select {
			case sub.ch <- m:
				// Acked subscription (seq != 0): confirm once the message
				// is safely in the local delivery queue. An unconfirmed
				// delivery is requeued server-side on disconnect. The ack
				// goes through ackLoop so a congested socket cannot block
				// inbound frame processing.
				if seq != 0 {
					c.queueAck(subID, seq)
				}
			case <-sub.gone:
			}
		}

	case wire.FrameSubClosed:
		subID, reason, err := wire.DecodeSubClosed(f.Payload)
		if err != nil {
			return
		}
		c.mu.Lock()
		sub := c.subs[subID]
		if sub != nil {
			delete(c.subs, subID)
		}
		c.mu.Unlock()
		if sub == nil {
			return
		}
		r := reason
		sub.reason.Store(&r)
		// The read loop is the sole sender and delivery frames precede the
		// notice on the wire, so closing the channel here is safe; queued
		// messages stay drainable.
		sub.closeOnce()
		if c.opts.OnSubClosed != nil {
			c.opts.OnSubClosed(sub, reason)
		}

	case wire.FramePong:
		// Liveness only.
	}
}

func (c *Client) complete(reqID uint64, r result) {
	c.mu.Lock()
	ch, ok := c.pending[reqID]
	if ok {
		delete(c.pending, reqID)
	}
	c.mu.Unlock()
	if ok {
		ch <- r
	}
}

// call sends a request frame and waits for its reply.
func (c *Client) call(ctx context.Context, typ wire.FrameType, inner []byte) (wire.Frame, error) {
	return c.callWithID(ctx, c.reqID.Add(1), typ, inner)
}

// callWithID is call with a caller-allocated request ID, so the caller can
// register request-scoped state (e.g. a pending subscription) first.
func (c *Client) callWithID(ctx context.Context, reqID uint64, typ wire.FrameType, inner []byte) (wire.Frame, error) {
	payload := make([]byte, 8, 8+len(inner))
	binary.BigEndian.PutUint64(payload, reqID)
	payload = append(payload, inner...)
	return c.callPayload(ctx, reqID, typ, payload)
}

// callPayload sends a caller-built payload whose first 8 bytes already
// hold the request ID, and waits for the reply. The payload is written out
// before the wait starts, so callers may hand in a pooled buffer and
// recycle it after callPayload returns.
func (c *Client) callPayload(ctx context.Context, reqID uint64, typ wire.FrameType, payload []byte) (wire.Frame, error) {
	ch := make(chan result, 1)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Frame{}, ErrClosed
	}
	if c.readErr != nil {
		readErr := c.readErr
		c.mu.Unlock()
		return wire.Frame{}, lostErr(readErr)
	}
	c.pending[reqID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := wire.WriteFrame(c.conn, wire.Frame{Type: typ, Payload: payload})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return wire.Frame{}, ErrClosed
		}
		// A failed send means the connection is dying under us — the
		// same retryable class as a read-loop failure.
		return wire.Frame{}, lostErr(fmt.Errorf("send: %w", err))
	}

	select {
	case r := <-ch:
		return r.frame, r.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return wire.Frame{}, ctx.Err()
	}
}

// ConfigureTopic creates a topic on the broker.
func (c *Client) ConfigureTopic(ctx context.Context, name string) error {
	_, err := c.call(ctx, wire.FrameConfigureTopic, wire.EncodeString(name))
	return err
}

// Publish sends a message and waits for the broker's acknowledgement. The
// ack is delayed while the broker's in-flight window is full, which is the
// network form of publisher push-back. On a client with Options.BatchMax
// the message is coalesced with concurrent publishes into one MSG_BATCH
// frame and the shared acknowledgement is awaited instead. The request is
// encoded into a pooled buffer, so the publish fast path allocates no
// fresh buffer per message.
func (c *Client) Publish(ctx context.Context, m *jms.Message) error {
	if c.batch != nil {
		return c.batch.publish(ctx, m)
	}
	return c.publishOne(ctx, m)
}

// clientSeq distinguishes clients created within one clock tick, so two
// publishers never share a TraceID stream.
var clientSeq atomic.Uint64

// newTraceBase derives a per-client TraceID seed.
func newTraceBase() uint64 {
	return trace.NewID(uint64(time.Now().UnixNano()), clientSeq.Add(1)<<32)
}

// stampTrace auto-stamps a nonzero TraceID on a message that has none, so
// every published message carries an end-to-end identity the flight
// recorder can sample. Caller-set IDs are preserved untouched.
func (c *Client) stampTrace(m *jms.Message) {
	if m.Header.TraceID == 0 {
		m.Header.TraceID = trace.NewID(c.traceBase, c.traceSeq.Add(1))
	}
}

// publishOne sends one message as a plain PUBLISH frame.
func (c *Client) publishOne(ctx context.Context, m *jms.Message) error {
	c.stampTrace(m)
	reqID := c.reqID.Add(1)
	bp := wire.GetBuffer()
	buf := append((*bp)[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(buf, reqID)
	buf = wire.AppendMessage(buf, m)
	*bp = buf
	_, err := c.callPayload(ctx, reqID, wire.FramePublish, buf)
	wire.PutBuffer(bp)
	return err
}

// PublishBatch sends several messages in one MSG_BATCH frame and waits for
// the broker's single shared acknowledgement — one push-back round trip
// amortized over the whole batch. An empty batch is a no-op; a batch of
// one degrades to a plain PUBLISH. Messages may span topics; the broker
// preserves slice order.
func (c *Client) PublishBatch(ctx context.Context, msgs []*jms.Message) error {
	switch len(msgs) {
	case 0:
		return nil
	case 1:
		return c.publishOne(ctx, msgs[0])
	}
	for _, m := range msgs {
		c.stampTrace(m)
	}
	reqID := c.reqID.Add(1)
	bp := wire.GetBuffer()
	buf := append((*bp)[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(buf, reqID)
	buf = wire.AppendBatch(buf, msgs)
	*bp = buf
	_, err := c.callPayload(ctx, reqID, wire.FrameBatch, buf)
	wire.PutBuffer(bp)
	return err
}

// Subscription is a remote subscription's delivery stream.
type Subscription struct {
	client *Client
	id     uint64
	topic  string
	ch     chan *jms.Message
	gone   chan struct{}
	once   sync.Once
	// reason is set before gone closes when the broker ended the
	// subscription server-side (SUB_CLOSED), so Receive can report why.
	reason atomic.Pointer[string]
}

// SubClosedError is returned by Receive after the broker ended the
// subscription server-side (a SUB_CLOSED notice), e.g. under the
// disconnect slow-consumer policy.
type SubClosedError struct {
	Topic  string
	Reason string
}

// Error implements the error interface.
func (e *SubClosedError) Error() string {
	return "client: subscription on " + e.Topic + " closed by broker: " + e.Reason
}

// Subscribe installs a filter on a topic. Buffer is the local delivery
// queue length (values <= 0 default to 64).
func (c *Client) Subscribe(ctx context.Context, topicName string, spec wire.FilterSpec, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = 64
	}
	sub := &Subscription{
		client: c,
		topic:  topicName,
		ch:     make(chan *jms.Message, buffer),
		gone:   make(chan struct{}),
	}
	// Register the subscription under the request ID before sending: the
	// read loop moves it into the live table when SUBSCRIBE_OK arrives,
	// so deliveries following the reply on the wire can never be lost.
	reqID := c.reqID.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.readErr != nil {
		readErr := c.readErr
		c.mu.Unlock()
		return nil, lostErr(readErr)
	}
	c.pendingSubs[reqID] = sub
	c.mu.Unlock()

	f, err := c.callWithID(ctx, reqID, wire.FrameSubscribe, wire.EncodeSubscribe(topicName, spec))
	if err != nil {
		c.mu.Lock()
		delete(c.pendingSubs, reqID)
		c.mu.Unlock()
		return nil, err
	}
	// The read loop validated the SUBSCRIBE_OK payload and registered the
	// subscription (setting its ID) before completing the call; the reply
	// frame itself carries no payload across goroutines.
	_ = f
	return sub, nil
}

// ID returns the server-assigned subscription ID.
func (s *Subscription) ID() uint64 { return s.id }

// Topic returns the topic this subscription was installed on.
func (s *Subscription) Topic() string { return s.topic }

// Chan returns the delivery channel. It is closed when the subscription is
// torn down.
func (s *Subscription) Chan() <-chan *jms.Message { return s.ch }

// Receive blocks for the next message. It returns ErrClosed after the
// subscription was removed or the connection failed, and *SubClosedError
// after the broker ended the subscription server-side (e.g. under the
// disconnect slow-consumer policy).
func (s *Subscription) Receive(ctx context.Context) (*jms.Message, error) {
	select {
	case m, ok := <-s.ch:
		if !ok {
			return nil, s.closeErr()
		}
		return m, nil
	case <-s.gone:
		return nil, s.closeErr()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// closeErr distinguishes a server-side SUB_CLOSED from a plain local
// close: the former carries the broker's reason.
func (s *Subscription) closeErr() error {
	if r := s.reason.Load(); r != nil {
		return &SubClosedError{Topic: s.topic, Reason: *r}
	}
	return ErrClosed
}

// closeOnce tears the subscription down from the read-loop side. It closes
// the delivery channel, which is safe only because the read loop is the
// sole sender and has stopped when this is called.
func (s *Subscription) closeOnce() {
	s.once.Do(func() {
		close(s.gone)
		close(s.ch)
	})
}

// Unsubscribe removes the subscription on the broker. The delivery channel
// stops receiving; Receive returns ErrClosed. The channel itself is closed
// only on connection teardown (the read loop may still be delivering a
// message that was in flight).
func (s *Subscription) Unsubscribe(ctx context.Context) error {
	c := s.client
	c.mu.Lock()
	if c.subs != nil {
		delete(c.subs, s.id)
	}
	c.mu.Unlock()

	s.once.Do(func() { close(s.gone) })
	_, err := c.call(ctx, wire.FrameUnsubscribe, wire.EncodeU64(s.id))
	return err
}

// DeleteDurable removes a named durable subscription from the broker,
// discarding its backlog. It fails while a consumer is attached.
func (c *Client) DeleteDurable(ctx context.Context, topicName, name string) error {
	payload := wire.EncodeString(topicName)
	payload = append(payload, wire.EncodeString(name)...)
	_, err := c.call(ctx, wire.FrameDeleteDurable, payload)
	return err
}

// Ping round-trips a liveness probe. Note: pongs carry no request ID, so
// Ping must not run concurrently with other Pings on one client.
func (c *Client) Ping(ctx context.Context) error {
	c.writeMu.Lock()
	err := wire.WriteFrame(c.conn, wire.Frame{Type: wire.FramePing, Payload: wire.EncodeU64(0)})
	c.writeMu.Unlock()
	if err != nil {
		return fmt.Errorf("client: ping: %w", err)
	}
	return nil
}
