package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
	"repro/internal/wire"
)

// startServer brings up a broker with a TCP frontend on the loopback
// interface and returns its address.
func startServer(t testing.TB) (addr string, b *broker.Broker) {
	t.Helper()
	b = broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(b, ln)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return ln.Addr().String(), b
}

func dialT(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func ctxT(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestEndToEndPublishSubscribe(t *testing.T) {
	addr, _ := startServer(t)
	pub := dialT(t, addr)
	sub := dialT(t, addr)
	ctx := ctxT(t)

	if err := pub.ConfigureTopic(ctx, "presence"); err != nil {
		t.Fatal(err)
	}
	subscription, err := sub.Subscribe(ctx, "presence",
		wire.FilterSpec{Mode: wire.FilterCorrelationID, Expr: "#0"}, 16)
	if err != nil {
		t.Fatal(err)
	}

	m := jms.NewMessage("presence")
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}

	got, err := subscription.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.CorrelationID != "#0" {
		t.Errorf("corrID = %q", got.Header.CorrelationID)
	}
	if v, _ := got.StringProperty("user"); v != "alice" {
		t.Errorf("user = %q", v)
	}
}

func TestSelectorFilterOverWire(t *testing.T) {
	addr, _ := startServer(t)
	c := dialT(t, addr)
	ctx := ctxT(t)

	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	matched, err := c.Subscribe(ctx, "t",
		wire.FilterSpec{Mode: wire.FilterSelector, Expr: "region = 'EU' AND prio > 2"}, 16)
	if err != nil {
		t.Fatal(err)
	}

	send := func(region string, prio int64) {
		t.Helper()
		m := jms.NewMessage("t")
		if err := m.SetStringProperty("region", region); err != nil {
			t.Fatal(err)
		}
		if err := m.SetInt64Property("prio", prio); err != nil {
			t.Fatal(err)
		}
		if err := c.Publish(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	send("EU", 5) // matches
	send("US", 5) // region mismatch
	send("EU", 1) // prio mismatch
	send("EU", 3) // matches

	first, err := matched.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := matched.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := first.Int64Property("prio")
	p2, _ := second.Int64Property("prio")
	if p1 != 5 || p2 != 3 {
		t.Errorf("received prios %d,%d; want 5,3", p1, p2)
	}
}

func TestServerErrorSurfaced(t *testing.T) {
	addr, _ := startServer(t)
	c := dialT(t, addr)
	ctx := ctxT(t)

	// Publish to a topic that does not exist.
	err := c.Publish(ctx, jms.NewMessage("missing"))
	var srvErr *ServerError
	if !errors.As(err, &srvErr) {
		t.Fatalf("err = %v, want *ServerError", err)
	}

	// Bad selector must fail at subscribe time.
	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterSelector, Expr: "a ="}, 1)
	if !errors.As(err, &srvErr) {
		t.Errorf("bad selector err = %v, want *ServerError", err)
	}

	// Duplicate topic.
	if err := c.ConfigureTopic(ctx, "t"); !errors.As(err, &srvErr) {
		t.Errorf("duplicate topic err = %v, want *ServerError", err)
	}
}

func TestUnsubscribeOverWire(t *testing.T) {
	addr, b := startServer(t)
	c := dialT(t, addr)
	ctx := ctxT(t)

	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumFilters() != 1 {
		t.Fatalf("NumFilters = %d", b.NumFilters())
	}
	if err := sub.Unsubscribe(ctx); err != nil {
		t.Fatal(err)
	}
	if b.NumFilters() != 0 {
		t.Errorf("NumFilters after unsubscribe = %d", b.NumFilters())
	}
	if _, err := sub.Receive(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Receive after Unsubscribe = %v, want ErrClosed", err)
	}
	// Unsubscribing twice reports a server error (unknown subscription).
	var srvErr *ServerError
	if err := sub.Unsubscribe(ctx); !errors.As(err, &srvErr) {
		t.Errorf("double unsubscribe err = %v", err)
	}
}

func TestDisconnectCleansSubscriptions(t *testing.T) {
	// Non-durable mode: subscriptions vanish when the connection drops.
	addr, b := startServer(t)
	c := dialT(t, addr)
	ctx := ctxT(t)

	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 16); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b.NumFilters() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("NumFilters = %d after disconnect, want 0", b.NumFilters())
}

func TestConcurrentPublishersOverWire(t *testing.T) {
	// The paper's setup: several saturated publishers, one or more
	// subscribers, each with an exclusive connection.
	addr, _ := startServer(t)
	ctx := ctxT(t)

	admin := dialT(t, addr)
	if err := admin.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	subConn := dialT(t, addr)
	sub, err := subConn.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 4096)
	if err != nil {
		t.Fatal(err)
	}

	const publishers = 5
	const perPublisher = 50
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { _ = c.Close() }()
			for i := 0; i < perPublisher; i++ {
				if err := c.Publish(ctx, jms.NewMessage("t")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	for i := 0; i < publishers*perPublisher; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
	}
}

func TestPing(t *testing.T) {
	addr, _ := startServer(t)
	c := dialT(t, addr)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPublishAfterClose(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close = %v", err)
	}
	err = c.Publish(context.Background(), jms.NewMessage("t"))
	if err == nil {
		t.Error("Publish after Close succeeded")
	}
}

func BenchmarkPublishOverLoopback(b *testing.B) {
	addr, _ := startServer(b)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx := context.Background()
	if err := c.ConfigureTopic(ctx, "t"); err != nil {
		b.Fatal(err)
	}
	m := jms.NewMessage("t")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Publish(ctx, m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDurableSubscriptionOverWire(t *testing.T) {
	addr, b := startServer(t)
	ctx := ctxT(t)

	admin := dialT(t, addr)
	if err := admin.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}

	// First consumer connection registers the durable subscription,
	// receives one message, then disconnects entirely.
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	spec := wire.FilterSpec{Mode: wire.FilterNone, DurableName: "alice"}
	sub1, err := c1.Subscribe(ctx, "t", spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	first := jms.NewMessage("t")
	if err := first.SetInt64Property("seq", 0); err != nil {
		t.Fatal(err)
	}
	if err := admin.Publish(ctx, first); err != nil {
		t.Fatal(err)
	}
	if _, err := sub1.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// Wait for the server-side teardown to detach the durable consumer;
	// only then is offline traffic guaranteed to land in the backlog.
	detachDeadline := time.Now().Add(2 * time.Second)
	for {
		attached, err := b.DurableAttached("t", "alice")
		if err != nil {
			t.Fatal(err)
		}
		if !attached {
			break
		}
		if time.Now().After(detachDeadline) {
			t.Fatal("durable consumer never detached after connection close")
		}
		time.Sleep(time.Millisecond)
	}

	// Offline traffic accumulates in the broker-side backlog.
	for i := int64(1); i <= 3; i++ {
		m := jms.NewMessage("t")
		if err := m.SetInt64Property("seq", i); err != nil {
			t.Fatal(err)
		}
		if err := admin.Publish(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	backlogDeadline := time.Now().Add(2 * time.Second)
	for {
		n, _, err := b.DurableBacklog("t", "alice")
		if err != nil {
			t.Fatal(err)
		}
		if n == 3 {
			break
		}
		if time.Now().After(backlogDeadline) {
			t.Fatalf("backlog = %d, want 3", n)
		}
		time.Sleep(time.Millisecond)
	}

	// A new connection reattaches under the same name and filter; the
	// backlog replays in order.
	c2 := dialT(t, addr)
	sub2, err := c2.Subscribe(ctx, "t", spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(1); want <= 3; want++ {
		m, err := sub2.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := m.Int64Property("seq")
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
	}

	// Deleting while attached fails; after unsubscribing it succeeds.
	var srvErr *ServerError
	if err := c2.DeleteDurable(ctx, "t", "alice"); !errors.As(err, &srvErr) {
		t.Errorf("delete while attached err = %v", err)
	}
	if err := sub2.Unsubscribe(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c2.DeleteDurable(ctx, "t", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := c2.DeleteDurable(ctx, "t", "alice"); !errors.As(err, &srvErr) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestDurableDoubleAttachOverWire(t *testing.T) {
	addr, _ := startServer(t)
	ctx := ctxT(t)
	admin := dialT(t, addr)
	if err := admin.ConfigureTopic(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	spec := wire.FilterSpec{Mode: wire.FilterNone, DurableName: "d"}
	c1, c2 := dialT(t, addr), dialT(t, addr)
	if _, err := c1.Subscribe(ctx, "t", spec, 4); err != nil {
		t.Fatal(err)
	}
	var srvErr *ServerError
	if _, err := c2.Subscribe(ctx, "t", spec, 4); !errors.As(err, &srvErr) {
		t.Errorf("second durable attach err = %v, want server error", err)
	}
}
