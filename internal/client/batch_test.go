package client

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/jms"
	"repro/internal/wire"
)

// TestPublishBatchEndToEnd drives an explicit batch over the wire and
// checks every message arrives, in order, at a subscriber.
func TestPublishBatchEndToEnd(t *testing.T) {
	addr, _ := startServer(t)
	pub := dialT(t, addr)
	sub := dialT(t, addr)
	ctx := ctxT(t)

	if err := pub.ConfigureTopic(ctx, "batch"); err != nil {
		t.Fatal(err)
	}
	subscription, err := sub.Subscribe(ctx, "batch", wire.FilterSpec{Mode: wire.FilterNone}, 64)
	if err != nil {
		t.Fatal(err)
	}

	const n = 20
	msgs := make([]*jms.Message, n)
	for i := range msgs {
		msgs[i] = jms.NewMessage("batch")
		msgs[i].SetBody([]byte(fmt.Sprintf("m%d", i)))
	}
	if err := pub.PublishBatch(ctx, msgs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := subscription.Receive(ctx)
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		if want := fmt.Sprintf("m%d", i); string(got.Body) != want {
			t.Fatalf("delivery %d = %q, want %q (batch order not preserved)", i, got.Body, want)
		}
	}
}

// TestPublishBatchDegenerateSizes pins the edge cases: an empty batch is a
// no-op and a batch of one behaves exactly like a plain Publish (it IS a
// plain PUBLISH frame on the wire).
func TestPublishBatchDegenerateSizes(t *testing.T) {
	addr, _ := startServer(t)
	pub := dialT(t, addr)
	sub := dialT(t, addr)
	ctx := ctxT(t)

	if err := pub.ConfigureTopic(ctx, "one"); err != nil {
		t.Fatal(err)
	}
	subscription, err := sub.Subscribe(ctx, "one", wire.FilterSpec{Mode: wire.FilterNone}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishBatch(ctx, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	m := jms.NewMessage("one")
	m.SetBody([]byte("solo"))
	if err := pub.PublishBatch(ctx, []*jms.Message{m}); err != nil {
		t.Fatal(err)
	}
	got, err := subscription.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "solo" {
		t.Fatalf("body = %q, want solo", got.Body)
	}
}

// TestBatchCoalescer exercises the Options.BatchMax auto-coalescing path:
// concurrent Publish calls on one client must all succeed and deliver
// exactly once each, whether a flush was triggered by size or by linger.
func TestBatchCoalescer(t *testing.T) {
	addr, _ := startServer(t)
	cfg := dialT(t, addr)
	ctx := ctxT(t)
	if err := cfg.ConfigureTopic(ctx, "co"); err != nil {
		t.Fatal(err)
	}

	pub, err := DialWith(addr, Options{BatchMax: 8, BatchLinger: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	sub := dialT(t, addr)
	subscription, err := sub.Subscribe(ctx, "co", wire.FilterSpec{Mode: wire.FilterNone}, 256)
	if err != nil {
		t.Fatal(err)
	}

	// 50 is deliberately not a multiple of BatchMax, so the tail flushes
	// by linger rather than by size.
	const n = 50
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := jms.NewMessage("co")
			m.SetBody([]byte(fmt.Sprintf("c%d", i)))
			errs[i] = pub.Publish(ctx, m)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		got, err := subscription.Receive(ctx)
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		if seen[string(got.Body)] {
			t.Fatalf("duplicate delivery %q", got.Body)
		}
		seen[string(got.Body)] = true
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), n)
	}
}
