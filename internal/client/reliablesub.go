package client

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jms"
	"repro/internal/wire"
)

// ReliableSub is a subscription that survives reconnects. The Reliable
// re-subscribes it on every redial and hands the new underlying
// *Subscription to the pump goroutine, which drains each incarnation in
// turn into one continuous delivery channel. Redeliveries caused by the
// server requeueing unacked messages are suppressed by the per-publisher
// sequence numbers, so a durable acked ReliableSub observes each
// stamped message exactly once, in order, across any number of
// connection cuts.
type ReliableSub struct {
	r      *Reliable
	topic  string
	spec   wire.FilterSpec
	buffer int

	ch       chan *jms.Message
	gone     chan struct{}
	goneOnce sync.Once
	attachCh chan *Subscription

	// reason, when set, records a broker-initiated closure (e.g. a
	// slow-consumer kick). Such a closure is final: the broker decided
	// this consumer must go, so the redial loop must not resurrect it.
	reason atomic.Pointer[string]

	mu  sync.Mutex
	cur *Subscription // live incarnation, for Unsubscribe

	dedupe subDedup
}

// Subscribe installs a filter on a topic through the reliability layer.
// For end-to-end effectively-once delivery across faults, use a durable
// spec with Acked set; a plain non-durable spec reconnects too but loses
// the messages published while detached (non-durable semantics).
func (r *Reliable) Subscribe(ctx context.Context, topicName string, spec wire.FilterSpec, buffer int) (*ReliableSub, error) {
	if buffer <= 0 {
		buffer = 64
	}
	rs := &ReliableSub{
		r:        r,
		topic:    topicName,
		spec:     spec,
		buffer:   buffer,
		ch:       make(chan *jms.Message, buffer),
		gone:     make(chan struct{}),
		attachCh: make(chan *Subscription, 1),
	}

	go rs.pump()

	// This retry loop is the sole initial subscriber: rs enters r.subs
	// only after a subscribe succeeded on a connection that is still the
	// current one, so a redial racing the first attach can never also
	// subscribe rs (which would leave a second incarnation nobody drains,
	// eventually wedging the connection's read loop on its full buffer).
	staleAttach := false
	for attempt := 0; ; attempt++ {
		c, epoch, err := r.current(ctx)
		if err != nil {
			rs.markGone()
			return nil, err
		}
		sub, err := c.Subscribe(ctx, topicName, spec, buffer)
		if err == nil {
			r.mu.Lock()
			if r.closed {
				r.mu.Unlock()
				rs.markGone()
				return nil, ErrClosed
			}
			if epoch == r.epoch {
				// Registration and the epoch check share r.mu with
				// noteFailure's bump, so either this registration is
				// visible to any later redial's reattach, or the bump
				// already happened and we retry on the next connection.
				r.subs[rs] = struct{}{}
				r.mu.Unlock()
				rs.handoff(sub)
				return rs, nil
			}
			r.mu.Unlock()
			// The connection died under the successful subscribe; the
			// incarnation is stranded on it. Drop it (its channel closes
			// with the connection) and subscribe again on the next one.
			staleAttach = true
			continue
		}
		if retryable(err) {
			r.noteFailure(epoch, err)
			continue
		}
		var se *ServerError
		if staleAttach && errors.As(err, &se) && strings.Contains(se.Msg, "already active") {
			// A stranded durable attach on the dying connection is still
			// being torn down server-side; back off like reattach does.
			r.rngMu.Lock()
			delay := r.opts.Backoff.Delay(attempt, r.rng)
			r.rngMu.Unlock()
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				rs.markGone()
				return nil, ctx.Err()
			case <-r.done:
				rs.markGone()
				return nil, ErrClosed
			}
			continue
		}
		rs.markGone()
		return nil, err
	}
}

func (rs *ReliableSub) deregister() {
	rs.r.mu.Lock()
	if rs.r.subs != nil {
		delete(rs.r.subs, rs)
	}
	rs.r.mu.Unlock()
}

// markGone ends the subscription stream; the pump closes rs.ch.
func (rs *ReliableSub) markGone() {
	rs.goneOnce.Do(func() { close(rs.gone) })
}

// handoff delivers a fresh underlying subscription to the pump. Called
// by the initial Subscribe and by the redial loop's reattach.
func (rs *ReliableSub) handoff(sub *Subscription) {
	select {
	case rs.attachCh <- sub:
	case <-rs.gone:
		// Subscription ended while reattaching; drop the incarnation.
	}
}

// pump drains each underlying incarnation into the user channel,
// deduping redeliveries. It is the sole sender on rs.ch.
func (rs *ReliableSub) pump() {
	defer close(rs.ch)
	for {
		select {
		case sub := <-rs.attachCh:
			rs.mu.Lock()
			rs.cur = sub
			rs.mu.Unlock()
			if !rs.drain(sub) {
				return
			}
		case <-rs.gone:
			return
		}
	}
}

// drain forwards one incarnation's deliveries until its channel closes.
// Returns false when the subscription ended. A channel closed by the
// server's SUB_CLOSED notice (incarnation reason set) ends the
// subscription rather than awaiting a reattach: the broker kicked this
// consumer on a healthy connection, and transparently resubscribing a
// consumer the broker just shed would only repeat the kick.
func (rs *ReliableSub) drain(sub *Subscription) bool {
	for {
		select {
		case m, ok := <-sub.ch:
			if !ok {
				if r := sub.reason.Load(); r != nil {
					rs.reason.Store(r)
					rs.deregister()
					rs.markGone()
					if cb := rs.r.opts.OnSubClosed; cb != nil {
						cb(rs.topic, *r)
					}
					return false
				}
				return true // connection teardown; await the reattach
			}
			if rs.dedupe.duplicate(m) {
				rs.r.reg.Counter(MetricDuplicatesDropped).Inc()
				continue
			}
			select {
			case rs.ch <- m:
			case <-rs.gone:
				return false
			}
		case <-rs.gone:
			return false
		}
	}
}

// Chan returns the delivery channel. It is closed when the subscription
// ends (Unsubscribe, Close, or redial budget exhausted).
func (rs *ReliableSub) Chan() <-chan *jms.Message { return rs.ch }

// closeErr is the error Receive reports after the stream ended:
// *SubClosedError for a broker-initiated closure, ErrClosed otherwise.
func (rs *ReliableSub) closeErr() error {
	if r := rs.reason.Load(); r != nil {
		return &SubClosedError{Topic: rs.topic, Reason: *r}
	}
	return ErrClosed
}

// Receive blocks for the next message. After the subscription ended it
// returns ErrClosed, or *SubClosedError when the broker closed it (e.g.
// a slow-consumer disconnect).
func (rs *ReliableSub) Receive(ctx context.Context) (*jms.Message, error) {
	select {
	case m, ok := <-rs.ch:
		if !ok {
			return nil, rs.closeErr()
		}
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Unsubscribe removes the subscription: the current incarnation is torn
// down on the broker and no further incarnation is created. For a
// durable subscription this detaches the consumer; the durable backlog
// keeps accumulating until DeleteDurable.
func (rs *ReliableSub) Unsubscribe(ctx context.Context) error {
	rs.deregister()
	rs.markGone()
	rs.mu.Lock()
	cur := rs.cur
	rs.cur = nil
	rs.mu.Unlock()
	if cur == nil {
		return nil
	}
	return cur.Unsubscribe(ctx)
}

// subDedup suppresses redelivered messages on the subscriber side, keyed
// by the publisher dedupe identity. Messages without an identity (not
// published through a Reliable) pass through unexamined. The window
// logic mirrors the server's publish dedupe.
type subDedup struct {
	mu   sync.Mutex
	pubs map[string]*subWindow
}

type subWindow struct {
	maxSeq int64
	seen   map[int64]struct{}
}

// subDedupWindow bounds remembered sequences per publisher.
const subDedupWindow = 8192

// duplicate records m's identity and reports whether it was seen before.
func (sd *subDedup) duplicate(m *jms.Message) bool {
	p, ok := m.Property(wire.PubIDProperty)
	if !ok || p.Type != jms.TypeString {
		return false
	}
	q, ok := m.Property(wire.PubSeqProperty)
	if !ok || (q.Type != jms.TypeInt64 && q.Type != jms.TypeInt32) {
		return false
	}
	pub, seq := p.S, q.I

	sd.mu.Lock()
	defer sd.mu.Unlock()
	if sd.pubs == nil {
		sd.pubs = make(map[string]*subWindow)
	}
	w := sd.pubs[pub]
	if w == nil {
		w = &subWindow{seen: make(map[int64]struct{})}
		sd.pubs[pub] = w
	}
	if seq <= w.maxSeq-subDedupWindow {
		return true
	}
	if _, dup := w.seen[seq]; dup {
		return true
	}
	w.seen[seq] = struct{}{}
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	if len(w.seen) > 2*subDedupWindow {
		for s := range w.seen {
			if s <= w.maxSeq-subDedupWindow {
				delete(w.seen, s)
			}
		}
	}
	return false
}
