package distrib

import (
	"math"
	"testing"

	"repro/internal/core"
)

func meshScenario() Scenario {
	return Scenario{
		Model:       core.CostModel{TRcv: 100e-6, TFltr: 4e-6, TTx: 140e-6},
		N:           4,
		M:           40,
		NFltrPerSub: 10,
		MeanR:       2,
		Rho:         0.9,
	}
}

func TestHashCapacityLimits(t *testing.T) {
	s := meshScenario()

	// k=1 degenerates to a single server carrying every filter — exactly
	// one PSR server.
	h1, err := HashCapacity(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	psr1, err := PSRPerServerCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h1-psr1)/psr1 > 1e-12 {
		t.Fatalf("HashCapacity(1)=%g != PSR per-server %g", h1, psr1)
	}

	// Capacity grows monotonically with k: more parallelism and fewer
	// local filters per broker.
	prev := 0.0
	for k := 1; k <= 16; k *= 2 {
		c, err := HashCapacity(s, k)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Fatalf("HashCapacity(%d)=%g not > %g", k, c, prev)
		}
		prev = c
	}

	// With m subscribers partitioned over k=m brokers, the per-server
	// denominator equals SSR's, so the system capacity is m times Eq. 22.
	hm, err := HashCapacity(s, s.M)
	if err != nil {
		t.Fatal(err)
	}
	ssr, err := SSRCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hm-float64(s.M)*ssr)/hm > 1e-12 {
		t.Fatalf("HashCapacity(m)=%g != m*SSR %g", hm, float64(s.M)*ssr)
	}

	if _, err := HashCapacity(s, 0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestSSRWaitingBenign(t *testing.T) {
	s := meshScenario()
	ssrMean, ssrQ, err := SSRWaiting(s)
	if err != nil {
		t.Fatal(err)
	}
	psrMean, psrQ, err := PSRWaiting(s)
	if err != nil {
		t.Fatal(err)
	}
	// Same utilization, but the SSR server's service time omits the
	// (m-1)*n_fltr extra filter scans — its waiting must be strictly
	// shorter on both moments.
	if ssrMean >= psrMean || ssrQ >= psrQ {
		t.Fatalf("SSR waiting (%g, %g) not below PSR (%g, %g)", ssrMean, ssrQ, psrMean, psrQ)
	}
	if ssrMean <= 0 || ssrQ <= ssrMean {
		t.Fatalf("degenerate SSR waiting: mean=%g q9999=%g", ssrMean, ssrQ)
	}
}

func TestWaitingAtRateMatchesUtilizationForm(t *testing.T) {
	s := meshScenario()

	// At lambda = rho/E[B] the at-rate form must reproduce the
	// at-utilization form exactly.
	bPSR := s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx
	mean0, q0, err := PSRWaiting(s)
	if err != nil {
		t.Fatal(err)
	}
	mean1, q1, err := PSRWaitingAtRate(s, s.Rho/bPSR)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean0-mean1)/mean0 > 1e-9 || math.Abs(q0-q1)/q0 > 1e-9 {
		t.Fatalf("PSR at-rate (%g, %g) != at-utilization (%g, %g)", mean1, q1, mean0, q0)
	}

	bSSR := s.Model.TRcv + float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx
	mean0, q0, err = SSRWaiting(s)
	if err != nil {
		t.Fatal(err)
	}
	mean1, q1, err = SSRWaitingAtRate(s, s.Rho/bSSR)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean0-mean1)/mean0 > 1e-9 || math.Abs(q0-q1)/q0 > 1e-9 {
		t.Fatalf("SSR at-rate (%g, %g) != at-utilization (%g, %g)", mean1, q1, mean0, q0)
	}

	// Waiting grows with the arrival rate.
	hi, _, err := PSRWaitingAtRate(s, s.Rho/bPSR)
	if err != nil {
		t.Fatal(err)
	}
	lo, _, err := PSRWaitingAtRate(s, 0.5*s.Rho/bPSR)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("waiting at half rate %g not below full-rate %g", lo, hi)
	}

	if _, _, err := PSRWaitingAtRate(s, 0); err == nil {
		t.Fatal("want error for lambda=0")
	}
	if _, _, err := SSRWaitingAtRate(s, -1); err == nil {
		t.Fatal("want error for negative lambda")
	}
}
