// Package distrib implements the paper's two distributed JMS architectures
// (Section IV-C): publisher-side server replication (PSR), where every
// publisher runs its own broker that all subscribers register with, and
// subscriber-side server replication (SSR), where every subscriber runs its
// own broker that all publishers multicast to. It provides the capacity
// formulas (Eqs. 21–22), the crossover rule (Eq. 23), and executable
// deployments built from real broker instances for integration testing.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/mg1"
	"repro/internal/replication"
)

// ErrParams is returned for invalid scenario parameters.
var ErrParams = errors.New("distrib: invalid parameters")

// Scenario describes the symmetric environment of the paper's comparison:
// n publishers with equal rates, m subscribers with nFltrPerSub filters
// each, a common replication grade expectation and a utilization bound.
type Scenario struct {
	Model core.CostModel
	// N is the number of publishers.
	N int
	// M is the number of subscribers.
	M int
	// NFltrPerSub is the number of filters per subscriber (the paper uses
	// 10).
	NFltrPerSub int
	// MeanR is the average replication grade of a message.
	MeanR float64
	// Rho is the per-server utilization bound (the paper uses 0.9).
	Rho float64
}

// Valid checks the scenario.
func (s Scenario) Valid() error {
	if err := s.Model.Valid(); err != nil {
		return err
	}
	if s.N < 1 || s.M < 1 || s.NFltrPerSub < 0 {
		return fmt.Errorf("%w: n=%d m=%d filters=%d", ErrParams, s.N, s.M, s.NFltrPerSub)
	}
	if s.MeanR < 0 || math.IsNaN(s.MeanR) {
		return fmt.Errorf("%w: meanR=%g", ErrParams, s.MeanR)
	}
	if s.Rho <= 0 || s.Rho > 1 {
		return fmt.Errorf("%w: rho=%g", ErrParams, s.Rho)
	}
	return nil
}

// PSRCapacity evaluates Eq. 21: the system capacity of publisher-side
// replication. Every subscriber installs its filters on all n
// publisher-side servers, so each server carries m*nFltrPerSub filters; the
// system capacity is n times the per-server capacity.
func PSRCapacity(s Scenario) (float64, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	perServer := s.Rho / (s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx)
	return float64(s.N) * perServer, nil
}

// PSRPerServerCapacity returns the capacity of a single publisher-side
// server — the quantity whose collapse for large m causes the waiting-time
// problems the paper warns about.
func PSRPerServerCapacity(s Scenario) (float64, error) {
	c, err := PSRCapacity(s)
	if err != nil {
		return 0, err
	}
	return c / float64(s.N), nil
}

// PublisherSite describes one publisher-side server in a heterogeneous
// PSR deployment: its share of the system message rate and the mean
// replication grade of its messages.
type PublisherSite struct {
	// RateShare is the fraction of the system rate this publisher
	// carries; shares must sum to 1.
	RateShare float64
	// MeanR is the average replication grade of this publisher's
	// messages.
	MeanR float64
}

// PSRCapacityHeterogeneous generalizes Eq. 21 to unequal publishers: the
// system capacity is bounded by the site that saturates first,
// lambda_sys = min_i (lambda_i_max / share_i), where each site's
// lambda_i_max uses its own E[R_i]. All sites carry all m*nFltrPerSub
// filters.
func PSRCapacityHeterogeneous(s Scenario, sites []PublisherSite) (float64, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	if len(sites) == 0 {
		return 0, fmt.Errorf("%w: no sites", ErrParams)
	}
	sum := 0.0
	for i, site := range sites {
		if site.RateShare <= 0 || site.MeanR < 0 {
			return 0, fmt.Errorf("%w: site %d: %+v", ErrParams, i, site)
		}
		sum += site.RateShare
	}
	if math.Abs(sum-1) > 1e-9 {
		return 0, fmt.Errorf("%w: rate shares sum to %g, want 1", ErrParams, sum)
	}
	system := math.Inf(1)
	for _, site := range sites {
		perServer := s.Rho / (s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr + site.MeanR*s.Model.TTx)
		if bound := perServer / site.RateShare; bound < system {
			system = bound
		}
	}
	return system, nil
}

// SSRCapacity evaluates Eq. 22: the system capacity of subscriber-side
// replication. Every subscriber-side server receives the full message
// stream and carries only its own subscriber's filters, so the system
// capacity equals the per-server capacity, independent of n and m.
func SSRCapacity(s Scenario) (float64, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	return s.Rho / (s.Model.TRcv + float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx), nil
}

// PSRNetworkLoad returns the traffic imposed on the interconnecting
// network by PSR: sum_i lambda_i * E[R_i] = systemRate * E[R] / ... — for
// the symmetric scenario, messages leave publisher-side servers already
// filtered, so the network carries rate*E[R] copies per second.
func PSRNetworkLoad(s Scenario, systemRate float64) (float64, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	if systemRate < 0 {
		return 0, fmt.Errorf("%w: rate=%g", ErrParams, systemRate)
	}
	return systemRate * s.MeanR, nil
}

// SSRNetworkLoad returns the traffic for SSR: every message is multicast
// to all m subscriber-side servers before filtering, so the network
// carries m copies of every published message.
func SSRNetworkLoad(s Scenario, systemRate float64) (float64, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	if systemRate < 0 {
		return 0, fmt.Errorf("%w: rate=%g", ErrParams, systemRate)
	}
	return systemRate * float64(s.M), nil
}

// PSRWaiting quantifies the waiting-time pathology the paper warns about
// for PSR with many subscribers ("for m = 10^4 ... leading to average
// waiting times of 1 s and to 99.99% quantiles of 10 s"): each
// publisher-side server is an M/GI/1 queue whose service time is dominated
// by the m*nFltrPerSub filter scans. The replication grade is modelled as
// deterministic at s.MeanR (its variability is negligible against the
// filter term at large m). Returns the mean waiting time and the 99.99%
// quantile at the per-server utilization s.Rho.
func PSRWaiting(s Scenario) (meanWait, q9999 float64, err error) {
	if err := s.Valid(); err != nil {
		return 0, 0, err
	}
	if s.Rho >= 1 {
		return 0, 0, fmt.Errorf("%w: rho=%g must be < 1 for a waiting-time analysis", ErrParams, s.Rho)
	}
	r, err := replication.NewDeterministic(s.MeanR)
	if err != nil {
		return 0, 0, err
	}
	d := s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr
	moments, err := mg1.MomentsFromReplication(d, s.Model.TTx, r)
	if err != nil {
		return 0, 0, err
	}
	q, err := mg1.QueueAtUtilization(s.Rho, moments)
	if err != nil {
		return 0, 0, err
	}
	dist, err := q.GammaApprox()
	if err != nil {
		return 0, 0, err
	}
	q9999, err = dist.Quantile(0.9999)
	if err != nil {
		return 0, 0, err
	}
	return q.MeanWait(), q9999, nil
}

// PSROutperformsSSR evaluates the crossover rule (Eq. 23): PSR yields the
// higher system capacity iff
//
//	(t_rcv + m*n_fltr*t_fltr + E[R]*t_tx) / (t_rcv + n_fltr*t_fltr + E[R]*t_tx) < n,
//
// i.e. the per-server slowdown PSR suffers from carrying all m subscribers'
// filters is outweighed by its n-fold parallelism.
func PSROutperformsSSR(s Scenario) (bool, error) {
	if err := s.Valid(); err != nil {
		return false, err
	}
	num := s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx
	den := s.Model.TRcv + float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx
	return num/den < float64(s.N), nil
}

// CrossoverN returns the smallest number of publishers n for which PSR
// outperforms SSR in the given scenario (independent of the scenario's N).
func CrossoverN(s Scenario) (int, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	num := s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx
	den := s.Model.TRcv + float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx
	ratio := num / den
	n := int(math.Floor(ratio)) + 1
	if n < 1 {
		n = 1
	}
	return n, nil
}

// --- Executable deployments -------------------------------------------------

// PSRDeployment is a running publisher-side replication system: one broker
// per publisher; subscribers register on every broker.
type PSRDeployment struct {
	brokers []*broker.Broker
	topic   string
}

// NewPSRDeployment starts n publisher-side brokers with the given topic.
func NewPSRDeployment(n int, topicName string, opts broker.Options) (*PSRDeployment, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrParams, n)
	}
	d := &PSRDeployment{topic: topicName}
	for i := 0; i < n; i++ {
		b := broker.New(opts)
		if err := b.ConfigureTopic(topicName); err != nil {
			_ = d.Close()
			return nil, err
		}
		d.brokers = append(d.brokers, b)
	}
	return d, nil
}

// Brokers returns the per-publisher brokers.
func (d *PSRDeployment) Brokers() []*broker.Broker {
	out := make([]*broker.Broker, len(d.brokers))
	copy(out, d.brokers)
	return out
}

// Publish sends a message through publisher i's local broker.
func (d *PSRDeployment) Publish(ctx context.Context, publisher int, m *jms.Message) error {
	if publisher < 0 || publisher >= len(d.brokers) {
		return fmt.Errorf("%w: publisher %d of %d", ErrParams, publisher, len(d.brokers))
	}
	return d.brokers[publisher].Publish(ctx, m)
}

// Subscribe registers the subscriber's filter on every publisher-side
// broker — the paper's noted drawback that "all subscribers have to
// register in parallel for n JMS servers".
func (d *PSRDeployment) Subscribe(f func() (filter.Filter, error)) ([]*broker.Subscriber, error) {
	subs := make([]*broker.Subscriber, 0, len(d.brokers))
	for _, b := range d.brokers {
		flt, err := f()
		if err != nil {
			return nil, err
		}
		s, err := b.Subscribe(d.topic, flt)
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	return subs, nil
}

// Stats aggregates the broker counters across the deployment.
func (d *PSRDeployment) Stats() broker.Stats {
	var total broker.Stats
	for _, b := range d.brokers {
		s := b.Stats()
		total.Received += s.Received
		total.Dispatched += s.Dispatched
		total.FilterEvals += s.FilterEvals
		total.Dropped += s.Dropped
	}
	return total
}

// Close shuts all brokers down.
func (d *PSRDeployment) Close() error {
	var firstErr error
	for _, b := range d.brokers {
		if err := b.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SSRDeployment is a running subscriber-side replication system: one broker
// per subscriber; every publish is multicast to all of them.
type SSRDeployment struct {
	brokers []*broker.Broker
	topic   string
}

// NewSSRDeployment starts m subscriber-side brokers with the given topic.
func NewSSRDeployment(m int, topicName string, opts broker.Options) (*SSRDeployment, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: m=%d", ErrParams, m)
	}
	d := &SSRDeployment{topic: topicName}
	for i := 0; i < m; i++ {
		b := broker.New(opts)
		if err := b.ConfigureTopic(topicName); err != nil {
			_ = d.Close()
			return nil, err
		}
		d.brokers = append(d.brokers, b)
	}
	return d, nil
}

// Brokers returns the per-subscriber brokers.
func (d *SSRDeployment) Brokers() []*broker.Broker {
	out := make([]*broker.Broker, len(d.brokers))
	copy(out, d.brokers)
	return out
}

// Publish multicasts a message to every subscriber-side broker — the
// paper's noted drawback that "every publisher needs to multicast its
// messages to all JMS servers at m different subscriber sites". Each
// broker gets its own deep copy.
func (d *SSRDeployment) Publish(ctx context.Context, m *jms.Message) error {
	for i, b := range d.brokers {
		msg := m
		if i < len(d.brokers)-1 {
			msg = m.Clone()
		}
		if err := b.Publish(ctx, msg); err != nil {
			return fmt.Errorf("broker %d: %w", i, err)
		}
	}
	return nil
}

// Subscribe installs subscriber i's filter on its own broker only.
func (d *SSRDeployment) Subscribe(subscriber int, flt filter.Filter) (*broker.Subscriber, error) {
	if subscriber < 0 || subscriber >= len(d.brokers) {
		return nil, fmt.Errorf("%w: subscriber %d of %d", ErrParams, subscriber, len(d.brokers))
	}
	return d.brokers[subscriber].Subscribe(d.topic, flt)
}

// Stats aggregates the broker counters across the deployment.
func (d *SSRDeployment) Stats() broker.Stats {
	var total broker.Stats
	for _, b := range d.brokers {
		s := b.Stats()
		total.Received += s.Received
		total.Dispatched += s.Dispatched
		total.FilterEvals += s.FilterEvals
		total.Dropped += s.Dropped
	}
	return total
}

// Close shuts all brokers down.
func (d *SSRDeployment) Close() error {
	var firstErr error
	for _, b := range d.brokers {
		if err := b.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
