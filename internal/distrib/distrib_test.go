package distrib

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
)

// paperScenario is Fig. 15's setting: E[R]=1, rho=0.9, correlation ID
// filtering, 10 filters per subscriber.
func paperScenario(n, m int) Scenario {
	return Scenario{
		Model:       core.TableICorrelationID,
		N:           n,
		M:           m,
		NFltrPerSub: 10,
		MeanR:       1,
		Rho:         0.9,
	}
}

func TestSSRCapacityIndependentOfNandM(t *testing.T) {
	base, err := SSRCapacity(paperScenario(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 10, 1000} {
		for _, m := range []int{1, 100, 10000} {
			c, err := SSRCapacity(paperScenario(n, m))
			if err != nil {
				t.Fatal(err)
			}
			if c != base {
				t.Errorf("SSR capacity varies with n=%d m=%d: %g vs %g", n, m, c, base)
			}
		}
	}
	// Eq. 22 hand-check.
	s := paperScenario(1, 1)
	want := 0.9 / (s.Model.TRcv + 10*s.Model.TFltr + 1*s.Model.TTx)
	if math.Abs(base-want)/want > 1e-12 {
		t.Errorf("SSR capacity = %g, want %g", base, want)
	}
}

func TestPSRCapacityScalesWithN(t *testing.T) {
	c1, err := PSRCapacity(paperScenario(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	c10, err := PSRCapacity(paperScenario(10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c10/c1-10) > 1e-9 {
		t.Errorf("PSR capacity ratio = %g, want 10 (linear in n)", c10/c1)
	}
}

func TestPSRCapacityDegradesWithM(t *testing.T) {
	prev := math.Inf(1)
	for _, m := range []int{1, 10, 100, 1000, 10000} {
		c, err := PSRCapacity(paperScenario(10, m))
		if err != nil {
			t.Fatal(err)
		}
		if c >= prev {
			t.Errorf("PSR capacity not decreasing at m=%d", m)
		}
		prev = c
	}
	// Asymptotically reciprocal in m: capacity(10m)/capacity(m) -> 1/10.
	cBig, err := PSRCapacity(paperScenario(10, 100000))
	if err != nil {
		t.Fatal(err)
	}
	cBig10, err := PSRCapacity(paperScenario(10, 1000000))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := cBig10 / cBig; math.Abs(ratio-0.1) > 0.005 {
		t.Errorf("large-m decade ratio = %g, want ~0.1", ratio)
	}
}

func TestEq21HandCheck(t *testing.T) {
	s := paperScenario(5, 100)
	got, err := PSRCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 5 / (s.Model.TRcv + 100*10*s.Model.TFltr + 1*s.Model.TTx)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("PSR capacity = %g, want %g", got, want)
	}
	per, err := PSRPerServerCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per-want/5)/(want/5) > 1e-12 {
		t.Errorf("per-server = %g", per)
	}
}

func TestCrossoverEq23(t *testing.T) {
	// The capacities must actually cross where Eq. 23 says they do.
	for _, m := range []int{1, 10, 100, 1000} {
		s := paperScenario(1, m)
		nCross, err := CrossoverN(s)
		if err != nil {
			t.Fatal(err)
		}
		// At n = nCross, PSR must win; at n = nCross-1 it must not.
		sWin := s
		sWin.N = nCross
		win, err := PSROutperformsSSR(sWin)
		if err != nil {
			t.Fatal(err)
		}
		if !win {
			t.Errorf("m=%d: PSR should win at n=%d", m, nCross)
		}
		psr, err := PSRCapacity(sWin)
		if err != nil {
			t.Fatal(err)
		}
		ssr, err := SSRCapacity(sWin)
		if err != nil {
			t.Fatal(err)
		}
		if psr <= ssr {
			t.Errorf("m=%d n=%d: PSR capacity %g <= SSR %g despite crossover", m, nCross, psr, ssr)
		}
		if nCross > 1 {
			sLose := s
			sLose.N = nCross - 1
			lose, err := PSROutperformsSSR(sLose)
			if err != nil {
				t.Fatal(err)
			}
			if lose {
				t.Errorf("m=%d: PSR should not win at n=%d", m, nCross-1)
			}
		}
	}
}

func TestNetworkLoadComparison(t *testing.T) {
	// "SSR produces significantly more traffic in the network than PSR"
	// because m bounds R from above.
	s := paperScenario(10, 100)
	const rate = 1000.0
	psrNet, err := PSRNetworkLoad(s, rate)
	if err != nil {
		t.Fatal(err)
	}
	ssrNet, err := SSRNetworkLoad(s, rate)
	if err != nil {
		t.Fatal(err)
	}
	if psrNet != rate*1 {
		t.Errorf("PSR network load = %g", psrNet)
	}
	if ssrNet != rate*100 {
		t.Errorf("SSR network load = %g", ssrNet)
	}
	if psrNet >= ssrNet {
		t.Error("PSR must impose less network load than SSR when E[R] < m")
	}
	if _, err := PSRNetworkLoad(s, -1); !errors.Is(err, ErrParams) {
		t.Error("negative rate accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Model: core.TableICorrelationID, N: 0, M: 1, NFltrPerSub: 1, MeanR: 1, Rho: 0.9},
		{Model: core.TableICorrelationID, N: 1, M: 0, NFltrPerSub: 1, MeanR: 1, Rho: 0.9},
		{Model: core.TableICorrelationID, N: 1, M: 1, NFltrPerSub: -1, MeanR: 1, Rho: 0.9},
		{Model: core.TableICorrelationID, N: 1, M: 1, NFltrPerSub: 1, MeanR: -1, Rho: 0.9},
		{Model: core.TableICorrelationID, N: 1, M: 1, NFltrPerSub: 1, MeanR: 1, Rho: 0},
		{Model: core.CostModel{}, N: 1, M: 1, NFltrPerSub: 1, MeanR: 1, Rho: 0.9},
	}
	for i, s := range bad {
		if _, err := PSRCapacity(s); err == nil {
			t.Errorf("case %d: PSRCapacity accepted invalid scenario", i)
		}
		if _, err := SSRCapacity(s); err == nil {
			t.Errorf("case %d: SSRCapacity accepted invalid scenario", i)
		}
	}
}

func TestPSRDeploymentEndToEnd(t *testing.T) {
	const n = 3
	d, err := NewPSRDeployment(n, "t", broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()

	// One subscriber filtering #0, registered on all n brokers.
	subs, err := d.Subscribe(func() (filter.Filter, error) {
		return filter.NewCorrelationID("#0")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != n {
		t.Fatalf("subscriber registered on %d brokers, want %d", len(subs), n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Each publisher sends one matching message through its own broker.
	for p := 0; p < n; p++ {
		m := jms.NewMessage("t")
		if err := m.SetCorrelationID("#0"); err != nil {
			t.Fatal(err)
		}
		if err := d.Publish(ctx, p, m); err != nil {
			t.Fatal(err)
		}
	}
	// The subscriber receives one message per publisher-side broker.
	total := 0
	for _, s := range subs {
		if _, err := s.Receive(ctx); err != nil {
			t.Fatal(err)
		}
		total++
	}
	if total != n {
		t.Errorf("received %d, want %d", total, n)
	}
	if st := d.Stats(); st.Received != n || st.Dispatched != n {
		t.Errorf("stats = %+v", st)
	}
	if err := d.Publish(ctx, n+1, jms.NewMessage("t")); !errors.Is(err, ErrParams) {
		t.Errorf("out-of-range publisher err = %v", err)
	}
}

func TestSSRDeploymentEndToEnd(t *testing.T) {
	const m = 3
	d, err := NewSSRDeployment(m, "t", broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()

	// Subscriber 0 matches, the others filter for something else.
	s0, err := d.Subscribe(0, filter.MustProperty("kind = 'a'"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d.Subscribe(1, filter.MustProperty("kind = 'b'"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(5, nil); !errors.Is(err, ErrParams) {
		t.Errorf("out-of-range subscriber err = %v", err)
	}

	msg := jms.NewMessage("t")
	if err := msg.SetStringProperty("kind", "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Publish(ctx, msg); err != nil {
		t.Fatal(err)
	}

	got, err := s0.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.StringProperty("kind"); v != "a" {
		t.Errorf("kind = %q", v)
	}
	if s1.Delivered() != 0 {
		t.Error("non-matching subscriber received the message")
	}
	// Multicast: every broker received a copy (m copies received), only one dispatched.
	st := d.Stats()
	if st.Received != m {
		t.Errorf("Received = %d, want %d (multicast to all brokers)", st.Received, m)
	}
	if st.Dispatched != 1 {
		t.Errorf("Dispatched = %d, want 1", st.Dispatched)
	}
}

func TestDeploymentParams(t *testing.T) {
	if _, err := NewPSRDeployment(0, "t", broker.Options{}); !errors.Is(err, ErrParams) {
		t.Error("n=0 accepted")
	}
	if _, err := NewSSRDeployment(0, "t", broker.Options{}); !errors.Is(err, ErrParams) {
		t.Error("m=0 accepted")
	}
	if _, err := NewPSRDeployment(1, "", broker.Options{}); err == nil {
		t.Error("empty topic accepted")
	}
}

func TestPSRCapacityHeterogeneous(t *testing.T) {
	s := paperScenario(4, 100)
	// Symmetric sites must reproduce the homogeneous formula.
	sites := []PublisherSite{
		{RateShare: 0.25, MeanR: 1},
		{RateShare: 0.25, MeanR: 1},
		{RateShare: 0.25, MeanR: 1},
		{RateShare: 0.25, MeanR: 1},
	}
	het, err := PSRCapacityHeterogeneous(s, sites)
	if err != nil {
		t.Fatal(err)
	}
	hom, err := PSRCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(het-hom)/hom > 1e-9 {
		t.Errorf("symmetric heterogeneous = %g, homogeneous = %g", het, hom)
	}

	// A hot publisher carrying half the traffic bounds the system:
	// capacity drops versus the symmetric case.
	skewed := []PublisherSite{
		{RateShare: 0.5, MeanR: 1},
		{RateShare: 0.2, MeanR: 1},
		{RateShare: 0.2, MeanR: 1},
		{RateShare: 0.1, MeanR: 1},
	}
	hetSkewed, err := PSRCapacityHeterogeneous(s, skewed)
	if err != nil {
		t.Fatal(err)
	}
	if hetSkewed >= het {
		t.Errorf("skewed capacity %g should be below symmetric %g", hetSkewed, het)
	}
	// The bottleneck is the 0.5-share site: capacity = perServer/0.5 =
	// half the 4-site symmetric system.
	if math.Abs(hetSkewed-hom/2)/hom > 1e-9 {
		t.Errorf("skewed capacity = %g, want %g", hetSkewed, hom/2)
	}

	// A site with higher replication also lowers the bound.
	heavyR := []PublisherSite{
		{RateShare: 0.5, MeanR: 50},
		{RateShare: 0.5, MeanR: 1},
	}
	s2 := paperScenario(2, 100)
	hetHeavy, err := PSRCapacityHeterogeneous(s2, heavyR)
	if err != nil {
		t.Fatal(err)
	}
	homo2, err := PSRCapacity(s2)
	if err != nil {
		t.Fatal(err)
	}
	if hetHeavy >= homo2 {
		t.Errorf("heavy-R capacity %g should be below symmetric %g", hetHeavy, homo2)
	}

	// Errors.
	if _, err := PSRCapacityHeterogeneous(s, nil); !errors.Is(err, ErrParams) {
		t.Error("empty sites accepted")
	}
	if _, err := PSRCapacityHeterogeneous(s, []PublisherSite{{RateShare: 0.7, MeanR: 1}}); !errors.Is(err, ErrParams) {
		t.Error("shares not summing to 1 accepted")
	}
	if _, err := PSRCapacityHeterogeneous(s, []PublisherSite{{RateShare: 1, MeanR: -1}}); !errors.Is(err, ErrParams) {
		t.Error("negative MeanR accepted")
	}
}

func TestPSRWaitingPathology(t *testing.T) {
	// The paper's warning: at m = 10^4 subscribers a publisher-side server
	// collapses to a few msgs/s with second-scale waits. With the stated
	// n_fltr=10 per subscriber and Table I corrID constants the per-server
	// capacity is ~1.3 msgs/s and waits are seconds.
	s := paperScenario(100, 10000)
	per, err := PSRPerServerCapacity(s)
	if err != nil {
		t.Fatal(err)
	}
	if per > 2 || per < 1 {
		t.Errorf("per-server capacity = %.2f msgs/s, want ~1.3", per)
	}
	meanW, q9999, err := PSRWaiting(s)
	if err != nil {
		t.Fatal(err)
	}
	// E[B] ~ 0.7 s at rho=0.9 -> E[W] = 0.9*E[B]/(2*0.1) ~ 3.2 s; the
	// 99.99% quantile is tens of seconds. The paper quotes 1 s / 10 s for
	// its (slightly different) parameterization; the order of magnitude is
	// the reproduced result.
	if meanW < 1 || meanW > 10 {
		t.Errorf("mean wait = %.2f s, want second-scale", meanW)
	}
	if q9999 < 10 || q9999 > 100 {
		t.Errorf("Q99.99 = %.2f s, want tens of seconds", q9999)
	}
	if q9999 <= meanW {
		t.Error("Q99.99 must exceed the mean wait")
	}

	// A small-m scenario has no such problem.
	small := paperScenario(100, 10)
	meanSmall, _, err := PSRWaiting(small)
	if err != nil {
		t.Fatal(err)
	}
	if meanSmall > 0.01 {
		t.Errorf("small-m mean wait = %g s, should be milliseconds", meanSmall)
	}
	// rho = 1 is rejected.
	bad := small
	bad.Rho = 1
	if _, _, err := PSRWaiting(bad); !errors.Is(err, ErrParams) {
		t.Errorf("rho=1 err = %v", err)
	}
}
