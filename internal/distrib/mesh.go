package distrib

// This file extends the paper's closed forms (Eqs. 21–23) with the hooks
// the live-mesh conformance leg predicts against: the capacity of the
// consistent-hash topic-partitioned mesh the paper did not have, the SSR
// waiting-time counterpart of PSRWaiting, and waiting-time predictions at
// a measured (rather than utilization-implied) arrival rate, so a live
// run can be compared at the rate it actually achieved.

import (
	"fmt"

	"repro/internal/mg1"
	"repro/internal/replication"
)

// HashCapacity returns the system capacity of a k-broker consistent-hash
// topic-partitioned mesh. Each topic — and with it its subscribers'
// filters — lives on exactly one broker, so with topics spread evenly a
// broker receives 1/k of the message stream and scans only the local
// m/k subscribers' filters:
//
//	lambda_sys = k * rho / (t_rcv + (m/k)*n_fltr*t_fltr + E[R]*t_tx)
//
// Partitioning composes both replication advantages: PSR's k-fold
// parallelism (Eq. 21) without its full filter burden, SSR's reduced
// filter scan (Eq. 22) without its m-fold multicast. The price is that
// the balance only holds when topic load spreads evenly — a hot topic
// saturates its single owner at the owner's per-server capacity.
func HashCapacity(s Scenario, k int) (float64, error) {
	if err := s.Valid(); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("%w: k=%d", ErrParams, k)
	}
	mLocal := float64(s.M) / float64(k)
	perServer := s.Rho / (s.Model.TRcv + mLocal*float64(s.NFltrPerSub)*s.Model.TFltr + s.MeanR*s.Model.TTx)
	return float64(k) * perServer, nil
}

// ssrServiceBase is the deterministic part of one subscriber-side
// server's service time: receive plus the local subscriber's filter scan.
func ssrServiceBase(s Scenario) float64 {
	return s.Model.TRcv + float64(s.NFltrPerSub)*s.Model.TFltr
}

// psrServiceBase is the deterministic part of one publisher-side server's
// service time: receive plus all m subscribers' filter scans.
func psrServiceBase(s Scenario) float64 {
	return s.Model.TRcv + float64(s.M)*float64(s.NFltrPerSub)*s.Model.TFltr
}

// waitingAt builds the M/GI/1 queue for a server with deterministic
// service base d at arrival rate lambda (lambda <= 0 selects the
// utilization s.Rho instead) and returns its mean wait and 99.99%
// quantile.
func waitingAt(s Scenario, d, lambda float64) (meanWait, q9999 float64, err error) {
	r, err := replication.NewDeterministic(s.MeanR)
	if err != nil {
		return 0, 0, err
	}
	moments, err := mg1.MomentsFromReplication(d, s.Model.TTx, r)
	if err != nil {
		return 0, 0, err
	}
	var q mg1.Queue
	if lambda > 0 {
		q, err = mg1.NewQueue(lambda, moments)
	} else {
		q, err = mg1.QueueAtUtilization(s.Rho, moments)
	}
	if err != nil {
		return 0, 0, err
	}
	dist, err := q.GammaApprox()
	if err != nil {
		return 0, 0, err
	}
	if q9999, err = dist.Quantile(0.9999); err != nil {
		return 0, 0, err
	}
	return q.MeanWait(), q9999, nil
}

// SSRWaiting is the subscriber-side counterpart of PSRWaiting: each
// subscriber-side server scans only its own n_fltr filters, so its
// waiting time stays benign at utilizations where a PSR server with the
// same m has long collapsed — the flip side of Eq. 23's capacity
// crossover, visible in latency instead of throughput.
func SSRWaiting(s Scenario) (meanWait, q9999 float64, err error) {
	if err := s.Valid(); err != nil {
		return 0, 0, err
	}
	if s.Rho >= 1 {
		return 0, 0, fmt.Errorf("%w: rho=%g must be < 1 for a waiting-time analysis", ErrParams, s.Rho)
	}
	return waitingAt(s, ssrServiceBase(s), 0)
}

// PSRWaitingAtRate predicts one publisher-side server's mean wait and
// 99.99% quantile at a measured per-server arrival rate, so a live mesh
// run can be checked at the rate it actually achieved rather than at the
// nominal utilization bound.
func PSRWaitingAtRate(s Scenario, lambda float64) (meanWait, q9999 float64, err error) {
	if err := s.Valid(); err != nil {
		return 0, 0, err
	}
	if lambda <= 0 {
		return 0, 0, fmt.Errorf("%w: lambda=%g", ErrParams, lambda)
	}
	return waitingAt(s, psrServiceBase(s), lambda)
}

// SSRWaitingAtRate is PSRWaitingAtRate for a subscriber-side server.
func SSRWaitingAtRate(s Scenario, lambda float64) (meanWait, q9999 float64, err error) {
	if err := s.Valid(); err != nil {
		return 0, 0, err
	}
	if lambda <= 0 {
		return 0, 0, fmt.Errorf("%w: lambda=%g", ErrParams, lambda)
	}
	return waitingAt(s, ssrServiceBase(s), lambda)
}
