package selector

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError describes a lexical or grammatical error in a selector string
// together with the byte offset at which it was detected.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("selector: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans a selector source string into tokens.
type lexer struct {
	src string
	pos int
}

// Lex tokenizes a selector string. It returns the token stream terminated by
// a TokEOF token, or the first lexical error encountered.
func Lex(src string) ([]Token, error) {
	lx := lexer{src: src}
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f' || b == '\v'
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentStart(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b == '_' || b == '$'
}

func isIdentCont(b byte) bool { return isIdentStart(b) || isDigit(b) }

func (lx *lexer) next() (Token, error) {
	for lx.pos < len(lx.src) && isSpace(lx.src[lx.pos]) {
		lx.pos++
	}
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	b := lx.src[lx.pos]
	switch {
	case isIdentStart(b):
		return lx.lexIdent(), nil
	case isDigit(b):
		return lx.lexNumber()
	case b == '.':
		if lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]) {
			return lx.lexNumber()
		}
		return Token{}, errAt(start, "unexpected '.'")
	case b == '\'':
		return lx.lexString()
	}

	// Operators.
	lx.pos++
	switch b {
	case '=':
		return Token{Kind: TokEq, Pos: start}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: start}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: start}, nil
	case '*':
		return Token{Kind: TokStar, Pos: start}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: start}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: start}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: start}, nil
	case ',':
		return Token{Kind: TokComma, Pos: start}, nil
	case '<':
		if lx.pos < len(lx.src) {
			switch lx.src[lx.pos] {
			case '>':
				lx.pos++
				return Token{Kind: TokNeq, Pos: start}, nil
			case '=':
				lx.pos++
				return Token{Kind: TokLeq, Pos: start}, nil
			}
		}
		return Token{Kind: TokLt, Pos: start}, nil
	case '>':
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return Token{Kind: TokGeq, Pos: start}, nil
		}
		return Token{Kind: TokGt, Pos: start}, nil
	}
	return Token{}, errAt(start, "unexpected character %q", string(rune(b)))
}

func (lx *lexer) lexIdent() Token {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentCont(lx.src[lx.pos]) {
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	if kind, ok := keywords[strings.ToUpper(text)]; ok {
		return Token{Kind: kind, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (lx *lexer) lexNumber() (Token, error) {
	start := lx.pos
	sawDot, sawExp := false, false
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		switch {
		case isDigit(b):
			lx.pos++
		case b == '.' && !sawDot && !sawExp:
			sawDot = true
			lx.pos++
		case (b == 'e' || b == 'E') && !sawExp && lx.pos > start:
			sawExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
			if lx.pos >= len(lx.src) || !isDigit(lx.src[lx.pos]) {
				return Token{}, errAt(lx.pos, "malformed exponent")
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	if !sawDot && !sawExp {
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			// Out-of-range integer literal: fall back to float per SQL.
			f, ferr := strconv.ParseFloat(text, 64)
			if ferr != nil {
				return Token{}, errAt(start, "malformed number %q", text)
			}
			return Token{Kind: TokFloat, Float: f, Pos: start}, nil
		}
		return Token{Kind: TokInt, Int: v, Pos: start}, nil
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, errAt(start, "malformed number %q", text)
	}
	return Token{Kind: TokFloat, Float: v, Pos: start}, nil
}

// lexString scans a single-quoted SQL string literal where a doubled quote
// (”) is the escape for a single quote.
func (lx *lexer) lexString() (Token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		if b == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(b)
		lx.pos++
	}
	return Token{}, errAt(start, "unterminated string literal")
}
