package selector

import (
	"fmt"

	"repro/internal/jms"
)

// Tri is SQL three-valued logic: TRUE, FALSE or UNKNOWN. A selector accepts
// a message only when it evaluates to TRUE; both FALSE and UNKNOWN reject,
// as required by the JMS specification.
type Tri int

// Three-valued logic constants.
const (
	False Tri = iota
	True
	Unknown
)

// String returns the SQL name of the truth value.
func (t Tri) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

func triAnd(a, b Tri) Tri {
	if a == False || b == False {
		return False
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return True
}

func triOr(a, b Tri) Tri {
	if a == True || b == True {
		return True
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return False
}

func triNot(a Tri) Tri {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// valueKind is the runtime type of an evaluated subexpression.
type valueKind int

const (
	kindNull valueKind = iota
	kindBool
	kindInt
	kindFloat
	kindString
)

// value is the runtime value of a subexpression during evaluation.
type value struct {
	kind valueKind
	b    bool
	i    int64
	f    float64
	s    string
}

var nullValue = value{kind: kindNull}

// Eval evaluates the selector AST against a message with three-valued
// logic. A missing property evaluates to NULL, which propagates to UNKNOWN
// through comparisons per SQL semantics.
func Eval(n Node, m *jms.Message) Tri {
	return evalBool(n, m)
}

// Matches reports whether the message satisfies the selector, i.e. whether
// Eval returns TRUE.
func Matches(n Node, m *jms.Message) bool {
	return Eval(n, m) == True
}

func evalBool(n Node, m *jms.Message) Tri {
	switch x := n.(type) {
	case *BoolLit:
		if x.Value {
			return True
		}
		return False

	case *Ident:
		v := lookup(x.Name, m)
		switch v.kind {
		case kindBool:
			if v.b {
				return True
			}
			return False
		case kindNull:
			return Unknown
		default:
			// Non-boolean property in boolean position: UNKNOWN.
			return Unknown
		}

	case *Not:
		return triNot(evalBool(x.X, m))

	case *Binary:
		switch x.Op {
		case OpAnd:
			// Short-circuit: FALSE AND anything = FALSE.
			l := evalBool(x.L, m)
			if l == False {
				return False
			}
			return triAnd(l, evalBool(x.R, m))
		case OpOr:
			l := evalBool(x.L, m)
			if l == True {
				return True
			}
			return triOr(l, evalBool(x.R, m))
		case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq:
			return evalComparison(x, m)
		default:
			// Arithmetic in boolean position cannot be TRUE.
			return Unknown
		}

	case *Between:
		v := evalValue(x.X, m)
		lo := evalValue(x.Lo, m)
		hi := evalValue(x.Hi, m)
		geq := compareNumeric(v, lo, OpGeq)
		leq := compareNumeric(v, hi, OpLeq)
		res := triAnd(geq, leq)
		if x.Negate {
			return triNot(res)
		}
		return res

	case *In:
		v := lookup(x.X.Name, m)
		if v.kind == kindNull {
			return Unknown
		}
		if v.kind != kindString {
			return Unknown
		}
		_, found := x.set[v.s]
		res := False
		if found {
			res = True
		}
		if x.Negate {
			return triNot(res)
		}
		return res

	case *Like:
		v := lookup(x.X.Name, m)
		if v.kind == kindNull {
			return Unknown
		}
		if v.kind != kindString {
			return Unknown
		}
		res := False
		if x.prog.match(v.s) {
			res = True
		}
		if x.Negate {
			return triNot(res)
		}
		return res

	case *IsNull:
		v := lookup(x.X.Name, m)
		isNull := v.kind == kindNull
		if x.Negate {
			isNull = !isNull
		}
		if isNull {
			return True
		}
		return False

	default:
		return Unknown
	}
}

func evalComparison(x *Binary, m *jms.Message) Tri {
	l := evalValue(x.L, m)
	r := evalValue(x.R, m)
	if l.kind == kindNull || r.kind == kindNull {
		return Unknown
	}

	// String comparison: only = and <> are defined by JMS.
	if l.kind == kindString || r.kind == kindString {
		if l.kind != kindString || r.kind != kindString {
			return Unknown
		}
		switch x.Op {
		case OpEq:
			return boolTri(l.s == r.s)
		case OpNeq:
			return boolTri(l.s != r.s)
		default:
			return Unknown
		}
	}

	// Boolean comparison: only = and <>.
	if l.kind == kindBool || r.kind == kindBool {
		if l.kind != kindBool || r.kind != kindBool {
			return Unknown
		}
		switch x.Op {
		case OpEq:
			return boolTri(l.b == r.b)
		case OpNeq:
			return boolTri(l.b != r.b)
		default:
			return Unknown
		}
	}

	return compareNumeric(l, r, x.Op)
}

func boolTri(b bool) Tri {
	if b {
		return True
	}
	return False
}

// compareNumeric compares two numeric values, promoting int to float when
// the kinds are mixed.
func compareNumeric(l, r value, op BinaryOp) Tri {
	if l.kind == kindNull || r.kind == kindNull {
		return Unknown
	}
	if (l.kind != kindInt && l.kind != kindFloat) || (r.kind != kindInt && r.kind != kindFloat) {
		return Unknown
	}
	if l.kind == kindInt && r.kind == kindInt {
		return boolTri(compareOrd(l.i, r.i, op))
	}
	lf, rf := l.asFloat(), r.asFloat()
	return boolTri(compareOrd(lf, rf, op))
}

func compareOrd[T int64 | float64](a, b T, op BinaryOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNeq:
		return a != b
	case OpLt:
		return a < b
	case OpLeq:
		return a <= b
	case OpGt:
		return a > b
	case OpGeq:
		return a >= b
	default:
		return false
	}
}

func (v value) asFloat() float64 {
	if v.kind == kindInt {
		return float64(v.i)
	}
	return v.f
}

// evalValue evaluates an arithmetic subexpression to a runtime value.
// Arithmetic on NULL yields NULL; division by zero yields NULL (UNKNOWN at
// the comparison level), matching common JMS provider behaviour.
func evalValue(n Node, m *jms.Message) value {
	switch x := n.(type) {
	case *IntLit:
		return value{kind: kindInt, i: x.Value}
	case *FloatLit:
		return value{kind: kindFloat, f: x.Value}
	case *StringLit:
		return value{kind: kindString, s: x.Value}
	case *BoolLit:
		return value{kind: kindBool, b: x.Value}
	case *Ident:
		return lookup(x.Name, m)
	case *Neg:
		v := evalValue(x.X, m)
		switch v.kind {
		case kindInt:
			return value{kind: kindInt, i: -v.i}
		case kindFloat:
			return value{kind: kindFloat, f: -v.f}
		default:
			return nullValue
		}
	case *Binary:
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
			return evalArith(x, m)
		default:
			// A boolean subexpression used as a value.
			switch evalBool(x, m) {
			case True:
				return value{kind: kindBool, b: true}
			case False:
				return value{kind: kindBool, b: false}
			default:
				return nullValue
			}
		}
	default:
		return nullValue
	}
}

func evalArith(x *Binary, m *jms.Message) value {
	l := evalValue(x.L, m)
	r := evalValue(x.R, m)
	if l.kind == kindNull || r.kind == kindNull {
		return nullValue
	}
	lNum := l.kind == kindInt || l.kind == kindFloat
	rNum := r.kind == kindInt || r.kind == kindFloat
	if !lNum || !rNum {
		return nullValue
	}
	if l.kind == kindInt && r.kind == kindInt {
		switch x.Op {
		case OpAdd:
			return value{kind: kindInt, i: l.i + r.i}
		case OpSub:
			return value{kind: kindInt, i: l.i - r.i}
		case OpMul:
			return value{kind: kindInt, i: l.i * r.i}
		case OpDiv:
			if r.i == 0 {
				return nullValue
			}
			return value{kind: kindInt, i: l.i / r.i}
		}
	}
	lf, rf := l.asFloat(), r.asFloat()
	switch x.Op {
	case OpAdd:
		return value{kind: kindFloat, f: lf + rf}
	case OpSub:
		return value{kind: kindFloat, f: lf - rf}
	case OpMul:
		return value{kind: kindFloat, f: lf * rf}
	case OpDiv:
		if rf == 0 {
			return nullValue
		}
		return value{kind: kindFloat, f: lf / rf}
	}
	return nullValue
}

// Header field identifiers accessible from selectors, per JMS 1.1 §3.8.1.1.
const (
	fieldCorrelationID = "JMSCorrelationID"
	fieldPriority      = "JMSPriority"
	fieldMessageID     = "JMSMessageID"
	fieldTimestamp     = "JMSTimestamp"
	fieldDeliveryMode  = "JMSDeliveryMode"
	fieldType          = "JMSType"
)

// lookup resolves an identifier against the message: JMS header fields
// first, then the user property section. Missing values are NULL.
func lookup(name string, m *jms.Message) value {
	switch name {
	case fieldCorrelationID:
		if m.Header.CorrelationID == "" {
			return nullValue
		}
		return value{kind: kindString, s: m.Header.CorrelationID}
	case fieldPriority:
		return value{kind: kindInt, i: int64(m.Header.Priority)}
	case fieldMessageID:
		return value{kind: kindString, s: fmt.Sprintf("ID:%d", m.Header.MessageID)}
	case fieldTimestamp:
		return value{kind: kindInt, i: m.Header.Timestamp.UnixMilli()}
	case fieldDeliveryMode:
		return value{kind: kindString, s: m.Header.DeliveryMode.String()}
	case fieldType:
		return nullValue
	}
	p, ok := m.Property(name)
	if !ok {
		return nullValue
	}
	switch p.Type {
	case jms.TypeBool:
		return value{kind: kindBool, b: p.B}
	case jms.TypeInt32, jms.TypeInt64:
		return value{kind: kindInt, i: p.I}
	case jms.TypeFloat64:
		return value{kind: kindFloat, f: p.F}
	case jms.TypeString:
		return value{kind: kindString, s: p.S}
	default:
		return nullValue
	}
}
