package selector

import "fmt"

// likeOpKind is the kind of a compiled LIKE pattern element.
type likeOpKind int

const (
	likeLit  likeOpKind = iota + 1 // match a literal run
	likeOne                        // '_' : exactly one character
	likeMany                       // '%' : zero or more characters
)

type likeOp struct {
	kind likeOpKind
	lit  string
}

// likeProgram is a compiled LIKE pattern: a sequence of ops matched
// greedily with backtracking on likeMany.
type likeProgram []likeOp

// compileLike compiles a SQL LIKE pattern with optional escape character.
// In the pattern '%' matches any sequence of characters, '_' exactly one;
// esc (if non-zero) escapes '%', '_' or itself.
func compileLike(pattern string, esc byte) (likeProgram, error) {
	var prog likeProgram
	var lit []byte
	flush := func() {
		if len(lit) > 0 {
			prog = append(prog, likeOp{kind: likeLit, lit: string(lit)})
			lit = lit[:0]
		}
	}
	for i := 0; i < len(pattern); i++ {
		b := pattern[i]
		switch {
		case esc != 0 && b == esc:
			if i+1 >= len(pattern) {
				return nil, fmt.Errorf("dangling escape character at end of LIKE pattern")
			}
			i++
			lit = append(lit, pattern[i])
		case b == '%':
			flush()
			// Collapse consecutive '%' into one.
			if len(prog) == 0 || prog[len(prog)-1].kind != likeMany {
				prog = append(prog, likeOp{kind: likeMany})
			}
		case b == '_':
			flush()
			prog = append(prog, likeOp{kind: likeOne})
		default:
			lit = append(lit, b)
		}
	}
	flush()
	return prog, nil
}

// match reports whether s matches the compiled pattern. LIKE must match the
// entire string.
func (prog likeProgram) match(s string) bool {
	return likeMatch(prog, s)
}

func likeMatch(prog likeProgram, s string) bool {
	if len(prog) == 0 {
		return s == ""
	}
	op := prog[0]
	switch op.kind {
	case likeLit:
		if len(s) < len(op.lit) || s[:len(op.lit)] != op.lit {
			return false
		}
		return likeMatch(prog[1:], s[len(op.lit):])
	case likeOne:
		if s == "" {
			return false
		}
		return likeMatch(prog[1:], s[1:])
	case likeMany:
		// '%' at the end matches everything remaining.
		if len(prog) == 1 {
			return true
		}
		// Try every split point; because consecutive '%' are collapsed the
		// next op consumes at least part of s deterministically.
		for i := 0; i <= len(s); i++ {
			if likeMatch(prog[1:], s[i:]) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
