package selector

import (
	"math/rand"
	"testing"

	"repro/internal/jms"
)

func TestFoldConstants(t *testing.T) {
	tests := []struct {
		src  string
		want string // folded normal form
	}{
		{src: "1 + 2 = 3", want: "TRUE"},
		{src: "1 + 2 = 4", want: "FALSE"},
		{src: "2 * 3 + 1 = 7", want: "TRUE"},
		{src: "10 / 4 = 2", want: "TRUE"}, // integer division
		{src: "10.0 / 4 = 2.5", want: "TRUE"},
		{src: "1 < 2", want: "TRUE"},
		{src: "'a' = 'a'", want: "TRUE"},
		{src: "'a' <> 'b'", want: "TRUE"},
		{src: "TRUE AND x = 1", want: "(x = 1)"},
		{src: "FALSE AND x = 1", want: "FALSE"},
		{src: "x = 1 AND FALSE", want: "FALSE"},
		{src: "TRUE OR x = 1", want: "TRUE"},
		{src: "x = 1 OR FALSE", want: "(x = 1)"},
		{src: "NOT TRUE", want: "FALSE"},
		{src: "NOT (1 > 2)", want: "TRUE"},
		{src: "5 BETWEEN 1 AND 10", want: "TRUE"},
		{src: "0 BETWEEN 1 AND 10", want: "FALSE"},
		{src: "0 NOT BETWEEN 1 AND 10", want: "TRUE"},
		// An empty range over an identifier must NOT fold: x may be NULL,
		// making the result UNKNOWN rather than FALSE (see the dedicated
		// test below).
		{src: "x BETWEEN 5 AND 3", want: "(x BETWEEN 5 AND 3)"},
		{src: "x = 1 + 2", want: "(x = 3)"},
		{src: "x = -(3)", want: "(x = -3)"},
		{src: "x = 2 AND 3 > 1", want: "(x = 2)"},
		// Division by zero cannot fold (NULL at runtime).
		{src: "1 / 0 = 1", want: "((1 / 0) = 1)"},
		// Identifier-rooted predicates are untouched.
		{src: "a LIKE 'x%'", want: "(a LIKE 'x%')"},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			folded := Fold(MustParse(tt.src))
			if got := folded.String(); got != tt.want {
				t.Errorf("Fold(%q) = %s, want %s", tt.src, got, tt.want)
			}
		})
	}
}

func TestFoldEmptyBetweenRange(t *testing.T) {
	// x BETWEEN 5 AND 3 cannot be TRUE for any x, but x may be NULL, in
	// which case the result is UNKNOWN, not FALSE. Folding it to FALSE is
	// still correct for Matches (UNKNOWN and FALSE both reject) but would
	// change NOT semantics: NOT(UNKNOWN)=UNKNOWN rejects while
	// NOT(FALSE)=TRUE accepts. Verify Fold is conservative here only when
	// it can prove the bound comparisons independent of x. Our fold of
	// "x BETWEEN 5 AND 3" relies on lo>hi deciding (x>=5 AND x<=3); with x
	// unknown both comparisons are UNKNOWN, so folding to FALSE flips
	// "NOT BETWEEN". Confirm the implementation does NOT fold that case.
	folded := Fold(MustParse("x NOT BETWEEN 5 AND 3"))
	m := jms.NewMessage("t")
	// x missing: original evaluates to UNKNOWN -> no match.
	if Matches(folded, m) != Matches(MustParse("x NOT BETWEEN 5 AND 3"), m) {
		t.Errorf("folding changed NOT BETWEEN semantics for NULL x: %s", folded)
	}
}

// TestFoldPreservesSemantics: folding any generated expression never
// changes its evaluation, for messages with and without the referenced
// properties.
func TestFoldPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		g := &oracleGen{r: r, m: jms.NewMessage("t")}
		src, _ := g.tree(3)
		node := MustParse(src)
		folded := Fold(node)
		if got, want := Eval(folded, g.m), Eval(node, g.m); got != want {
			t.Fatalf("Fold changed semantics: %q -> %q: %v vs %v", src, folded, got, want)
		}
		// Also against an empty message (all properties NULL).
		empty := jms.NewMessage("t")
		if got, want := Eval(folded, empty), Eval(node, empty); got != want {
			t.Fatalf("Fold changed NULL semantics: %q -> %q: %v vs %v", src, folded, got, want)
		}
	}
}

func TestFoldShrinksConstantTrees(t *testing.T) {
	node := MustParse("(1 < 2 AND 3 < 4) OR (x = 1 AND 2 = 2)")
	folded := Fold(node)
	if folded.String() != "TRUE" {
		t.Errorf("folded = %s, want TRUE", folded)
	}
}

func BenchmarkEvalFoldedVsUnfolded(b *testing.B) {
	m := jms.NewMessage("t")
	if err := m.SetInt32Property("x", 7); err != nil {
		b.Fatal(err)
	}
	node := MustParse("x > 1 + 2 AND x < 10 * 10 AND 2 < 3")
	folded := Fold(node)
	b.Run("unfolded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Eval(node, m)
		}
	})
	b.Run("folded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Eval(folded, m)
		}
	})
}
