package selector

// Constant folding for selector ASTs. JMS providers compile selectors once
// per subscription; folding literal subexpressions at compile time removes
// work from the per-message evaluation path (the t_fltr of the paper's
// model). Folding is semantics-preserving under SQL three-valued logic:
//
//   - arithmetic on numeric literals is evaluated (division by zero is
//     left in place: it yields NULL at runtime, which has no literal form),
//   - comparisons of literals become TRUE/FALSE,
//   - TRUE/FALSE absorb through AND/OR exactly as the truth tables allow
//     (FALSE AND x = FALSE and TRUE OR x = TRUE even when x is UNKNOWN),
//   - NOT of a boolean literal flips it.

// Fold returns an equivalent, possibly smaller AST. The input is not
// modified.
func Fold(n Node) Node {
	switch x := n.(type) {
	case *Binary:
		l := Fold(x.L)
		r := Fold(x.R)
		switch x.Op {
		case OpAnd:
			if b, ok := l.(*BoolLit); ok {
				if !b.Value {
					return &BoolLit{Value: false}
				}
				return r
			}
			if b, ok := r.(*BoolLit); ok {
				if !b.Value {
					return &BoolLit{Value: false}
				}
				return l
			}
		case OpOr:
			if b, ok := l.(*BoolLit); ok {
				if b.Value {
					return &BoolLit{Value: true}
				}
				return r
			}
			if b, ok := r.(*BoolLit); ok {
				if b.Value {
					return &BoolLit{Value: true}
				}
				return l
			}
		case OpAdd, OpSub, OpMul, OpDiv:
			if lit, ok := foldArith(x.Op, l, r); ok {
				return lit
			}
		case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq:
			if lit, ok := foldComparison(x.Op, l, r); ok {
				return lit
			}
		}
		return &Binary{Op: x.Op, L: l, R: r}

	case *Not:
		inner := Fold(x.X)
		if b, ok := inner.(*BoolLit); ok {
			return &BoolLit{Value: !b.Value}
		}
		return &Not{X: inner}

	case *Neg:
		inner := Fold(x.X)
		switch lit := inner.(type) {
		case *IntLit:
			return &IntLit{Value: -lit.Value}
		case *FloatLit:
			return &FloatLit{Value: -lit.Value}
		}
		return &Neg{X: inner}

	case *Between:
		xx := Fold(x.X)
		lo := Fold(x.Lo)
		hi := Fold(x.Hi)
		geq, okL := foldComparison(OpGeq, xx, lo)
		leq, okU := foldComparison(OpLeq, xx, hi)
		if okL && okU {
			res := geq.Value && leq.Value
			if x.Negate {
				res = !res
			}
			return &BoolLit{Value: res}
		}
		// Partial knowledge: X >= lo false already decides (FALSE AND _).
		if okL && !geq.Value {
			return &BoolLit{Value: x.Negate}
		}
		if okU && !leq.Value {
			return &BoolLit{Value: x.Negate}
		}
		return &Between{X: xx, Lo: lo, Hi: hi, Negate: x.Negate}

	default:
		// Leaves (literals, identifiers) and identifier-rooted predicates
		// (IN, LIKE, IS NULL) have nothing to fold.
		return n
	}
}

// numeric extracts a numeric literal value.
func numeric(n Node) (isInt bool, i int64, f float64, ok bool) {
	switch lit := n.(type) {
	case *IntLit:
		return true, lit.Value, float64(lit.Value), true
	case *FloatLit:
		return false, 0, lit.Value, true
	default:
		return false, 0, 0, false
	}
}

func foldArith(op BinaryOp, l, r Node) (Node, bool) {
	lInt, li, lf, lok := numeric(l)
	rInt, ri, rf, rok := numeric(r)
	if !lok || !rok {
		return nil, false
	}
	if lInt && rInt {
		switch op {
		case OpAdd:
			return &IntLit{Value: li + ri}, true
		case OpSub:
			return &IntLit{Value: li - ri}, true
		case OpMul:
			return &IntLit{Value: li * ri}, true
		case OpDiv:
			if ri == 0 {
				return nil, false // NULL at runtime; no literal form
			}
			return &IntLit{Value: li / ri}, true
		}
		return nil, false
	}
	switch op {
	case OpAdd:
		return &FloatLit{Value: lf + rf}, true
	case OpSub:
		return &FloatLit{Value: lf - rf}, true
	case OpMul:
		return &FloatLit{Value: lf * rf}, true
	case OpDiv:
		if rf == 0 {
			return nil, false
		}
		return &FloatLit{Value: lf / rf}, true
	}
	return nil, false
}

func foldComparison(op BinaryOp, l, r Node) (*BoolLit, bool) {
	// String literal comparisons: only = and <>.
	if ls, ok := l.(*StringLit); ok {
		rs, ok := r.(*StringLit)
		if !ok {
			return nil, false
		}
		switch op {
		case OpEq:
			return &BoolLit{Value: ls.Value == rs.Value}, true
		case OpNeq:
			return &BoolLit{Value: ls.Value != rs.Value}, true
		}
		return nil, false
	}
	// Boolean literal comparisons: only = and <>.
	if lb, ok := l.(*BoolLit); ok {
		rb, ok := r.(*BoolLit)
		if !ok {
			return nil, false
		}
		switch op {
		case OpEq:
			return &BoolLit{Value: lb.Value == rb.Value}, true
		case OpNeq:
			return &BoolLit{Value: lb.Value != rb.Value}, true
		}
		return nil, false
	}
	lInt, li, lf, lok := numeric(l)
	rInt, ri, rf, rok := numeric(r)
	if !lok || !rok {
		return nil, false
	}
	if lInt && rInt {
		return &BoolLit{Value: compareOrd(li, ri, op)}, true
	}
	return &BoolLit{Value: compareOrd(lf, rf, op)}, true
}
