package selector

import (
	"errors"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("user = 'alice' AND age >= 21")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokIdent, TokEq, TokString, TokAnd, TokIdent, TokGeq, TokInt, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if toks[0].Text != "user" {
		t.Errorf("ident text = %q", toks[0].Text)
	}
	if toks[2].Text != "alice" {
		t.Errorf("string text = %q", toks[2].Text)
	}
	if toks[6].Int != 21 {
		t.Errorf("int value = %d", toks[6].Int)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("= <> < <= > >= + - * / ( ) ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokEq, TokNeq, TokLt, TokLeq, TokGt, TokGeq,
		TokPlus, TokMinus, TokStar, TokSlash, TokLParen, TokRParen, TokComma, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("not Between IN like escape IS null TRUE false and OR")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokNot, TokBetween, TokIn, TokLike, TokEscape, TokIs, TokNull,
		TokTrue, TokFalse, TokAnd, TokOr, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		src      string
		wantKind TokenKind
		wantInt  int64
		wantF    float64
	}{
		{src: "0", wantKind: TokInt, wantInt: 0},
		{src: "42", wantKind: TokInt, wantInt: 42},
		{src: "3.14", wantKind: TokFloat, wantF: 3.14},
		{src: ".5", wantKind: TokFloat, wantF: 0.5},
		{src: "1e3", wantKind: TokFloat, wantF: 1000},
		{src: "2.5E-2", wantKind: TokFloat, wantF: 0.025},
		{src: "1e+2", wantKind: TokFloat, wantF: 100},
		// Integer overflow falls back to float.
		{src: "99999999999999999999", wantKind: TokFloat, wantF: 1e20},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			toks, err := Lex(tt.src)
			if err != nil {
				t.Fatal(err)
			}
			if toks[0].Kind != tt.wantKind {
				t.Fatalf("kind = %v, want %v", toks[0].Kind, tt.wantKind)
			}
			if tt.wantKind == TokInt && toks[0].Int != tt.wantInt {
				t.Errorf("int = %d, want %d", toks[0].Int, tt.wantInt)
			}
			if tt.wantKind == TokFloat && toks[0].Float != tt.wantF {
				t.Errorf("float = %g, want %g", toks[0].Float, tt.wantF)
			}
		})
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Errorf("text = %q, want %q", toks[0].Text, "it's")
	}
	toks, err = Lex("''")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "" {
		t.Errorf("empty string text = %q", toks[0].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a # b", "1e", "@x", "."} {
		t.Run(src, func(t *testing.T) {
			_, err := Lex(src)
			if err == nil {
				t.Fatalf("Lex(%q) succeeded, want error", src)
			}
			var syn *SyntaxError
			if !errors.As(err, &syn) {
				t.Errorf("error %v is not a *SyntaxError", err)
			}
		})
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []int{0, 2, 4, 7}
	for i, want := range wantPos {
		if toks[i].Pos != want {
			t.Errorf("token %d pos = %d, want %d", i, toks[i].Pos, want)
		}
	}
}

func TestLexIdentWithDollarUnderscore(t *testing.T) {
	toks, err := Lex("$state _x a$1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "$state" || toks[1].Text != "_x" || toks[2].Text != "a$1" {
		t.Errorf("idents = %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
}
