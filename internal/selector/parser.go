package selector

import (
	"fmt"
)

// Parse parses a selector string into its AST, performing the static checks
// the JMS specification requires at subscription time (so that installing a
// bad filter fails fast instead of poisoning the dispatch loop).
func Parse(src string) (Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := parser{toks: toks}
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.Kind != TokEOF {
		return nil, errAt(tok.Pos, "unexpected %s after expression", tok.Kind)
	}
	if err := checkBooleanRoot(node); err != nil {
		return nil, err
	}
	return node, nil
}

// MustParse is Parse but panics on error; for tests and package examples.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	tok := p.toks[p.pos]
	if tok.Kind != TokEOF {
		p.pos++
	}
	return tok
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	tok := p.peek()
	if tok.Kind != kind {
		return Token{}, errAt(tok.Pos, "expected %s, found %s", kind, tok.Kind)
	}
	return p.advance(), nil
}

// Grammar (precedence low to high):
//
//	or     := and { OR and }
//	and    := not { AND not }
//	not    := NOT not | predicate
//	pred   := sum [ compOp sum
//	              | [NOT] BETWEEN sum AND sum
//	              | [NOT] IN '(' string {',' string} ')'
//	              | [NOT] LIKE string [ESCAPE string]
//	              | IS [NOT] NULL ]
//	sum    := term { ('+'|'-') term }
//	term   := factor { ('*'|'/') factor }
//	factor := ('-'|'+') factor | primary
//	primary:= literal | ident | '(' or ')'
func (p *parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOr {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokAnd {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.peek().Kind == TokNot {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Node, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}

	negate := false
	if p.peek().Kind == TokNot {
		// NOT here must be followed by BETWEEN / IN / LIKE.
		next := p.toks[p.pos+1].Kind
		if next != TokBetween && next != TokIn && next != TokLike {
			return nil, errAt(p.peek().Pos, "NOT must precede BETWEEN, IN or LIKE here")
		}
		p.advance()
		negate = true
	}

	tok := p.peek()
	switch tok.Kind {
	case TokEq, TokNeq, TokLt, TokLeq, TokGt, TokGeq:
		p.advance()
		right, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		var op BinaryOp
		switch tok.Kind {
		case TokEq:
			op = OpEq
		case TokNeq:
			op = OpNeq
		case TokLt:
			op = OpLt
		case TokLeq:
			op = OpLeq
		case TokGt:
			op = OpGt
		default:
			op = OpGeq
		}
		return &Binary{Op: op, L: left, R: right}, nil

	case TokBetween:
		p.advance()
		lo, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAnd); err != nil {
			return nil, err
		}
		hi, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi, Negate: negate}, nil

	case TokIn:
		ident, ok := left.(*Ident)
		if !ok {
			return nil, errAt(tok.Pos, "left side of IN must be an identifier")
		}
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var list []string
		for {
			s, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			list = append(list, s.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		node := &In{X: ident, List: list, Negate: negate}
		node.set = make(map[string]struct{}, len(list))
		for _, s := range list {
			node.set[s] = struct{}{}
		}
		return node, nil

	case TokLike:
		ident, ok := left.(*Ident)
		if !ok {
			return nil, errAt(tok.Pos, "left side of LIKE must be an identifier")
		}
		p.advance()
		pat, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		var esc byte
		if p.peek().Kind == TokEscape {
			p.advance()
			escTok, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			if len(escTok.Text) != 1 {
				return nil, errAt(escTok.Pos, "ESCAPE must be a single character")
			}
			esc = escTok.Text[0]
		}
		node := &Like{X: ident, Pattern: pat.Text, Escape: esc, Negate: negate}
		prog, err := compileLike(pat.Text, esc)
		if err != nil {
			return nil, errAt(pat.Pos, "%v", err)
		}
		node.prog = prog
		return node, nil

	case TokIs:
		ident, ok := left.(*Ident)
		if !ok {
			return nil, errAt(tok.Pos, "left side of IS must be an identifier")
		}
		p.advance()
		isNot := false
		if p.peek().Kind == TokNot {
			p.advance()
			isNot = true
		}
		if _, err := p.expect(TokNull); err != nil {
			return nil, err
		}
		return &IsNull{X: ident, Negate: isNot}, nil
	}

	if negate {
		return nil, errAt(tok.Pos, "expected BETWEEN, IN or LIKE after NOT")
	}
	return left, nil
}

func (p *parser) parseSum() (Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.peek()
		if tok.Kind != TokPlus && tok.Kind != TokMinus {
			return left, nil
		}
		p.advance()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if tok.Kind == TokMinus {
			op = OpSub
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseTerm() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.peek()
		if tok.Kind != TokStar && tok.Kind != TokSlash {
			return left, nil
		}
		p.advance()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		op := OpMul
		if tok.Kind == TokSlash {
			op = OpDiv
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseFactor() (Node, error) {
	tok := p.peek()
	switch tok.Kind {
	case TokMinus:
		p.advance()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		switch lit := x.(type) {
		case *IntLit:
			return &IntLit{Value: -lit.Value}, nil
		case *FloatLit:
			return &FloatLit{Value: -lit.Value}, nil
		}
		return &Neg{X: x}, nil
	case TokPlus:
		p.advance()
		return p.parseFactor()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	tok := p.advance()
	switch tok.Kind {
	case TokInt:
		return &IntLit{Value: tok.Int}, nil
	case TokFloat:
		return &FloatLit{Value: tok.Float}, nil
	case TokString:
		return &StringLit{Value: tok.Text}, nil
	case TokTrue:
		return &BoolLit{Value: true}, nil
	case TokFalse:
		return &BoolLit{Value: false}, nil
	case TokIdent:
		return &Ident{Name: tok.Text}, nil
	case TokLParen:
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, errAt(tok.Pos, "unexpected %s", tok.Kind)
}

// checkBooleanRoot verifies the selector's root expression can be boolean:
// a bare arithmetic expression such as "1+2" is not a valid selector.
func checkBooleanRoot(n Node) error {
	switch x := n.(type) {
	case *Binary:
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv:
			return fmt.Errorf("selector: expression is arithmetic, not boolean")
		}
		return nil
	case *Not, *Between, *In, *Like, *IsNull, *BoolLit:
		return nil
	case *Ident:
		// May be a boolean property; legal.
		return nil
	default:
		return fmt.Errorf("selector: expression is not boolean")
	}
}
