package selector

import (
	"testing"

	"repro/internal/jms"
)

// newTestMessage builds a message with a representative property section.
func newTestMessage(t testing.TB) *jms.Message {
	t.Helper()
	m := jms.NewMessage("presence")
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.SetStringProperty("user", "alice"))
	must(m.SetInt32Property("age", 30))
	must(m.SetInt64Property("ts", 1700000000000))
	must(m.SetFloat64Property("score", 2.5))
	must(m.SetBoolProperty("online", true))
	return m
}

func TestEvalComparisons(t *testing.T) {
	m := newTestMessage(t)
	tests := []struct {
		src  string
		want Tri
	}{
		{src: "age = 30", want: True},
		{src: "age = 31", want: False},
		{src: "age <> 31", want: True},
		{src: "age < 31", want: True},
		{src: "age <= 30", want: True},
		{src: "age > 30", want: False},
		{src: "age >= 30", want: True},
		{src: "user = 'alice'", want: True},
		{src: "user = 'bob'", want: False},
		{src: "user <> 'bob'", want: True},
		{src: "score = 2.5", want: True},
		{src: "score > 2", want: True},
		{src: "score < 2", want: False},
		// Mixed int/float promotion.
		{src: "age = 30.0", want: True},
		{src: "score > 2.4999", want: True},
		// Booleans.
		{src: "online = TRUE", want: True},
		{src: "online = FALSE", want: False},
		{src: "online <> FALSE", want: True},
		{src: "online", want: True},
		{src: "NOT online", want: False},
		// String ordering comparisons are undefined -> UNKNOWN.
		{src: "user < 'zzz'", want: Unknown},
		// Cross-type comparisons are UNKNOWN.
		{src: "user = 1", want: Unknown},
		{src: "age = 'x'", want: Unknown},
		{src: "online = 1", want: Unknown},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			node := MustParse(tt.src)
			if got := Eval(node, m); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestEvalNullPropagation(t *testing.T) {
	m := newTestMessage(t)
	tests := []struct {
		src  string
		want Tri
	}{
		{src: "missing = 1", want: Unknown},
		{src: "missing <> 1", want: Unknown},
		{src: "NOT missing = 1", want: Unknown},
		{src: "missing IS NULL", want: True},
		{src: "missing IS NOT NULL", want: False},
		{src: "user IS NULL", want: False},
		{src: "user IS NOT NULL", want: True},
		// UNKNOWN AND FALSE = FALSE; UNKNOWN AND TRUE = UNKNOWN.
		{src: "missing = 1 AND age = 31", want: False},
		{src: "missing = 1 AND age = 30", want: Unknown},
		// UNKNOWN OR TRUE = TRUE; UNKNOWN OR FALSE = UNKNOWN.
		{src: "missing = 1 OR age = 30", want: True},
		{src: "missing = 1 OR age = 31", want: Unknown},
		// Arithmetic with NULL is NULL.
		{src: "missing + 1 = 2", want: Unknown},
		// Division by zero is NULL.
		{src: "age / 0 = 1", want: Unknown},
		{src: "score / 0.0 = 1", want: Unknown},
		// JMSType is always NULL in this implementation.
		{src: "JMSType IS NULL", want: True},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			node := MustParse(tt.src)
			if got := Eval(node, m); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestEvalArithmetic(t *testing.T) {
	m := newTestMessage(t)
	tests := []struct {
		src  string
		want Tri
	}{
		{src: "age + 1 = 31", want: True},
		{src: "age - 1 = 29", want: True},
		{src: "age * 2 = 60", want: True},
		{src: "age / 2 = 15", want: True},
		{src: "age / 4 = 7", want: True}, // integer division
		{src: "score * 2 = 5.0", want: True},
		{src: "score + age = 32.5", want: True},
		{src: "-age = -30", want: True},
		{src: "-(score) = -2.5", want: True},
		{src: "age + 2 * 5 = 40", want: True},
		{src: "(age + 2) * 5 = 160", want: True},
		// Arithmetic on strings is NULL.
		{src: "user + 1 = 2", want: Unknown},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			node := MustParse(tt.src)
			if got := Eval(node, m); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestEvalBetweenInLike(t *testing.T) {
	m := newTestMessage(t)
	tests := []struct {
		src  string
		want Tri
	}{
		{src: "age BETWEEN 21 AND 40", want: True},
		{src: "age BETWEEN 30 AND 30", want: True},
		{src: "age BETWEEN 31 AND 40", want: False},
		{src: "age NOT BETWEEN 31 AND 40", want: True},
		{src: "missing BETWEEN 1 AND 2", want: Unknown},
		{src: "age BETWEEN missing AND 40", want: Unknown},
		// BETWEEN with partial knowledge: age(30) >= 31 is FALSE, so AND is
		// FALSE even though the upper bound is NULL.
		{src: "age BETWEEN 31 AND missing", want: False},
		{src: "user IN ('alice', 'bob')", want: True},
		{src: "user IN ('bob', 'carol')", want: False},
		{src: "user NOT IN ('bob')", want: True},
		{src: "missing IN ('x')", want: Unknown},
		{src: "age IN ('30')", want: Unknown}, // non-string property
		{src: "user LIKE 'ali%'", want: True},
		{src: "user LIKE 'a_ice'", want: True},
		{src: "user LIKE 'bob%'", want: False},
		{src: "user NOT LIKE 'bob%'", want: True},
		{src: "missing LIKE 'x%'", want: Unknown},
		{src: "age LIKE '3%'", want: Unknown}, // LIKE on non-string
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			node := MustParse(tt.src)
			if got := Eval(node, m); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestEvalHeaderFields(t *testing.T) {
	m := newTestMessage(t)
	tests := []struct {
		src  string
		want Tri
	}{
		{src: "JMSCorrelationID = '#0'", want: True},
		{src: "JMSCorrelationID = '#1'", want: False},
		{src: "JMSPriority = 4", want: True},
		{src: "JMSPriority BETWEEN 0 AND 9", want: True},
		{src: "JMSDeliveryMode = 'PERSISTENT'", want: True},
		{src: "JMSCorrelationID LIKE '#%'", want: True},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			node := MustParse(tt.src)
			if got := Eval(node, m); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}

	// Empty correlation ID is NULL.
	empty := jms.NewMessage("t")
	if got := Eval(MustParse("JMSCorrelationID IS NULL"), empty); got != True {
		t.Errorf("empty correlation ID IS NULL = %v, want TRUE", got)
	}
}

func TestMatchesOnlyTrue(t *testing.T) {
	m := newTestMessage(t)
	if !Matches(MustParse("age = 30"), m) {
		t.Error("Matches(TRUE case) = false")
	}
	if Matches(MustParse("age = 31"), m) {
		t.Error("Matches(FALSE case) = true")
	}
	// UNKNOWN must reject.
	if Matches(MustParse("missing = 1"), m) {
		t.Error("Matches(UNKNOWN case) = true; UNKNOWN must not match")
	}
}

func TestTriTables(t *testing.T) {
	vals := []Tri{True, False, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			and := triAnd(a, b)
			or := triOr(a, b)
			// Commutativity.
			if and != triAnd(b, a) {
				t.Errorf("AND not commutative for %v,%v", a, b)
			}
			if or != triOr(b, a) {
				t.Errorf("OR not commutative for %v,%v", a, b)
			}
			// De Morgan: NOT(a AND b) == (NOT a) OR (NOT b).
			if triNot(and) != triOr(triNot(a), triNot(b)) {
				t.Errorf("De Morgan violated for %v,%v", a, b)
			}
		}
		// Double negation.
		if triNot(triNot(a)) != a {
			t.Errorf("double negation violated for %v", a)
		}
	}
	if True.String() != "TRUE" || False.String() != "FALSE" || Unknown.String() != "UNKNOWN" {
		t.Error("Tri.String() mismatch")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// FALSE AND <unknown> must be FALSE, and TRUE OR <unknown> must be TRUE,
	// even when the right side references missing properties.
	m := jms.NewMessage("t")
	if got := Eval(MustParse("FALSE AND missing = 1"), m); got != False {
		t.Errorf("FALSE AND UNKNOWN = %v, want FALSE", got)
	}
	if got := Eval(MustParse("TRUE OR missing = 1"), m); got != True {
		t.Errorf("TRUE OR UNKNOWN = %v, want TRUE", got)
	}
}

func BenchmarkEvalSimpleEquality(b *testing.B) {
	m := jms.NewMessage("t")
	if err := m.SetInt32Property("prop", 0); err != nil {
		b.Fatal(err)
	}
	node := MustParse("prop = 0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Eval(node, m) != True {
			b.Fatal("no match")
		}
	}
}

func BenchmarkEvalComplexAndOr(b *testing.B) {
	m := newTestMessage(b)
	node := MustParse("user = 'alice' AND age BETWEEN 21 AND 40 OR score > 3.0 AND online")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(node, m)
	}
}
