package selector

import (
	"testing"

	"repro/internal/jms"
)

// FuzzParse feeds arbitrary source through the selector pipeline. The
// contract under fuzz: Parse never panics; whatever it accepts must
// print (String), re-parse, and reach a printing fixpoint — the second
// print equals the first — and evaluation of an accepted AST against a
// representative message never panics either. This pins the
// parser/printer pair together: any expression the parser admits is
// expressible in its own output syntax.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"qty > 10 AND region = 'emea'",
		"price BETWEEN 1.5 AND 9.75 OR NOT urgent",
		"region IN ('emea', 'apac') AND qty + 2 * 3 >= -4",
		"name LIKE 'ord_%' ESCAPE '\\'",
		"JMSCorrelationID = '#7' AND missing IS NULL",
		"TRUE OR (qty <> 3)",
		"qty BETWEEN",       // truncated
		"'unterminated",     // lexer error
		"region = emea AND", // dangling operator
		"1 + 2",             // non-boolean root
	}
	for _, s := range seeds {
		f.Add(s)
	}

	m := jms.NewMessage("orders")
	_ = m.SetCorrelationID("#7")
	_ = m.SetInt32Property("qty", 12)
	_ = m.SetFloat64Property("price", 9.75)
	_ = m.SetStringProperty("region", "emea")
	_ = m.SetBoolProperty("urgent", false)

	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		printed := n.String()
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", src, printed, err)
		}
		if again := n2.String(); again != printed {
			t.Fatalf("printing not a fixpoint:\n%q\n%q", printed, again)
		}
		// Evaluation must be total on accepted ASTs (three-valued, so
		// missing properties and type mismatches are Unknown, not panics).
		v1 := Eval(n, m)
		v2 := Eval(n2, m)
		if v1 != v2 {
			t.Fatalf("reparsed AST evaluates differently: %v vs %v", v1, v2)
		}
	})
}
