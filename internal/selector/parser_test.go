package selector

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		src  string
		want string // normalized String() output
	}{
		{src: "a = 1", want: "(a = 1)"},
		{src: "a <> 'x'", want: "(a <> 'x')"},
		{src: "a < 1 AND b > 2", want: "((a < 1) AND (b > 2))"},
		{src: "a < 1 OR b > 2 AND c = 3", want: "((a < 1) OR ((b > 2) AND (c = 3)))"},
		{src: "(a < 1 OR b > 2) AND c = 3", want: "(((a < 1) OR (b > 2)) AND (c = 3))"},
		{src: "NOT a = 1", want: "(NOT (a = 1))"},
		{src: "a BETWEEN 7 AND 13", want: "(a BETWEEN 7 AND 13)"},
		{src: "a NOT BETWEEN 7 AND 13", want: "(a NOT BETWEEN 7 AND 13)"},
		{src: "a IN ('x', 'y')", want: "(a IN ('x', 'y'))"},
		{src: "a NOT IN ('x')", want: "(a NOT IN ('x'))"},
		{src: "a LIKE 'ab%'", want: "(a LIKE 'ab%')"},
		{src: "a NOT LIKE 'a_c' ESCAPE '\\'", want: "(a NOT LIKE 'a_c' ESCAPE '\\')"},
		{src: "a IS NULL", want: "(a IS NULL)"},
		{src: "a IS NOT NULL", want: "(a IS NOT NULL)"},
		{src: "TRUE", want: "TRUE"},
		{src: "a = 1 + 2 * 3", want: "(a = (1 + (2 * 3)))"},
		{src: "a = (1 + 2) * 3", want: "(a = ((1 + 2) * 3))"},
		{src: "a = -1", want: "(a = -1)"},
		{src: "a = -(b)", want: "(a = (-b))"},
		{src: "a = +1", want: "(a = 1)"},
		{src: "a = 1.5e2", want: "(a = 150)"},
		{src: "flag", want: "flag"},
		{src: "a/2 = 3", want: "((a / 2) = 3)"},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			node, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.src, err)
			}
			if got := node.String(); got != tt.want {
				t.Errorf("String() = %s, want %s", got, tt.want)
			}
			// The normalized output must itself re-parse to the same form.
			again, err := Parse(node.String())
			if err != nil {
				t.Fatalf("reparse of %q failed: %v", node.String(), err)
			}
			if again.String() != node.String() {
				t.Errorf("reparse changed normal form: %s -> %s", node.String(), again.String())
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",                       // empty
		"a =",                    // missing rhs
		"= 1",                    // missing lhs
		"a BETWEEN 1",            // missing AND
		"a BETWEEN 1 AND",        // missing hi
		"a IN ()",                // empty IN list
		"a IN ('x' 'y')",         // missing comma
		"a IN (1)",               // non-string in list
		"1 IN ('x')",             // non-ident lhs
		"1 LIKE 'x'",             // non-ident lhs
		"a LIKE 5",               // non-string pattern
		"a LIKE 'x' ESCAPE 'ab'", // multi-char escape
		"a LIKE 'x%' ESCAPE '%'", // dangling semantics: '%' escapes nothing at end? pattern 'x%' esc '%': trailing esc
		"1 IS NULL",              // non-ident lhs
		"a IS 1",                 // IS must be NULL
		"a NOT = 1",              // NOT in wrong place
		"a = 1 extra",            // trailing tokens
		"1 + 2",                  // arithmetic root
		"'str'",                  // string root
		"((a = 1)",               // unbalanced parens
		"a NOT NULL",             // NOT without BETWEEN/IN/LIKE
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		})
	}
}

func TestParsePaperFilters(t *testing.T) {
	// The filter styles used in the paper's experiments: application
	// property filters matching attribute #0, and complex AND/OR rules.
	for _, src := range []string{
		"prop = 0",
		"prop = 0 AND region = 'EU'",
		"prop = 0 OR prop = 1",
		"prop BETWEEN 7 AND 13",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) error: %v", src, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of invalid selector did not panic")
		}
	}()
	MustParse("a =")
}

func TestIdentifiers(t *testing.T) {
	node := MustParse("a = 1 AND b LIKE 'x%' OR c IS NULL AND a > 2 AND d IN ('q')")
	got := Identifiers(node)
	want := []string{"a", "b", "c", "d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Identifiers = %v, want %v", got, want)
	}
}

func TestIdentifiersBetweenAndNeg(t *testing.T) {
	node := MustParse("x BETWEEN lo AND hi AND y = -z")
	got := Identifiers(node)
	want := []string{"x", "lo", "hi", "y", "z"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Identifiers = %v, want %v", got, want)
	}
}

func TestParseDeepNesting(t *testing.T) {
	// Parser must handle reasonable nesting without issue.
	src := strings.Repeat("(", 50) + "a = 1" + strings.Repeat(")", 50)
	if _, err := Parse(src); err != nil {
		t.Errorf("Parse(deep nesting) error: %v", err)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("a = ")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "syntax error") {
		t.Errorf("error %q does not mention syntax error", err)
	}
}
