package selector

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustCompile(t *testing.T, pattern string, esc byte) likeProgram {
	t.Helper()
	prog, err := compileLike(pattern, esc)
	if err != nil {
		t.Fatalf("compileLike(%q, %q): %v", pattern, esc, err)
	}
	return prog
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		pattern string
		esc     byte
		input   string
		want    bool
	}{
		{pattern: "abc", input: "abc", want: true},
		{pattern: "abc", input: "abcd", want: false},
		{pattern: "abc", input: "ab", want: false},
		{pattern: "", input: "", want: true},
		{pattern: "", input: "x", want: false},
		{pattern: "%", input: "", want: true},
		{pattern: "%", input: "anything", want: true},
		{pattern: "a%", input: "a", want: true},
		{pattern: "a%", input: "abc", want: true},
		{pattern: "a%", input: "ba", want: false},
		{pattern: "%a", input: "za", want: true},
		{pattern: "%a", input: "az", want: false},
		{pattern: "a%b", input: "ab", want: true},
		{pattern: "a%b", input: "aXYZb", want: true},
		{pattern: "a%b", input: "aXbY", want: false},
		{pattern: "_", input: "x", want: true},
		{pattern: "_", input: "", want: false},
		{pattern: "_", input: "xy", want: false},
		{pattern: "a_c", input: "abc", want: true},
		{pattern: "a_c", input: "ac", want: false},
		{pattern: "%_%", input: "x", want: true},
		{pattern: "%_%", input: "", want: false},
		{pattern: "%%", input: "abc", want: true},
		{pattern: "a%c%e", input: "abcde", want: true},
		{pattern: "a%c%e", input: "ace", want: true},
		{pattern: "a%c%e", input: "aec", want: false},
		// Escapes.
		{pattern: "50\\%", esc: '\\', input: "50%", want: true},
		{pattern: "50\\%", esc: '\\', input: "50x", want: false},
		{pattern: "a\\_c", esc: '\\', input: "a_c", want: true},
		{pattern: "a\\_c", esc: '\\', input: "abc", want: false},
		{pattern: "a\\\\c", esc: '\\', input: "a\\c", want: true},
		// Non-backslash escape char.
		{pattern: "a#%b", esc: '#', input: "a%b", want: true},
		{pattern: "a#%b", esc: '#', input: "axb", want: false},
	}
	for _, tt := range tests {
		name := tt.pattern + "/" + tt.input
		t.Run(name, func(t *testing.T) {
			prog := mustCompile(t, tt.pattern, tt.esc)
			if got := prog.match(tt.input); got != tt.want {
				t.Errorf("match(%q ~ %q) = %v, want %v", tt.input, tt.pattern, got, tt.want)
			}
		})
	}
}

func TestCompileLikeDanglingEscape(t *testing.T) {
	if _, err := compileLike("abc\\", '\\'); err == nil {
		t.Error("dangling escape accepted")
	}
}

func TestCompileLikeCollapsesPercents(t *testing.T) {
	prog := mustCompile(t, "a%%%b", 0)
	many := 0
	for _, op := range prog {
		if op.kind == likeMany {
			many++
		}
	}
	if many != 1 {
		t.Errorf("got %d likeMany ops, want 1 (consecutive %% must collapse)", many)
	}
}

// TestLikeLiteralProperty: a pattern with no wildcards matches exactly the
// strings equal to it.
func TestLikeLiteralProperty(t *testing.T) {
	f := func(pattern, input string) bool {
		if strings.ContainsAny(pattern, "%_") {
			return true
		}
		prog, err := compileLike(pattern, 0)
		if err != nil {
			return false
		}
		return prog.match(input) == (pattern == input)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLikePercentPrefixProperty: "<lit>%" matches exactly the strings with
// that literal prefix.
func TestLikePercentPrefixProperty(t *testing.T) {
	f := func(lit, input string) bool {
		if strings.ContainsAny(lit, "%_") {
			return true
		}
		prog, err := compileLike(lit+"%", 0)
		if err != nil {
			return false
		}
		return prog.match(input) == strings.HasPrefix(input, lit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLikeUnderscoreLengthProperty: a pattern of n underscores matches
// exactly the byte strings of length n.
func TestLikeUnderscoreLengthProperty(t *testing.T) {
	for n := 0; n <= 5; n++ {
		prog := mustCompile(t, strings.Repeat("_", n), 0)
		for l := 0; l <= 7; l++ {
			input := strings.Repeat("x", l)
			if got := prog.match(input); got != (l == n) {
				t.Errorf("%d underscores vs len %d: match=%v", n, l, got)
			}
		}
	}
}

func BenchmarkLikeMatch(b *testing.B) {
	prog, err := compileLike("user-%-device-_", 0)
	if err != nil {
		b.Fatal(err)
	}
	input := "user-12345-device-7"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !prog.match(input) {
			b.Fatal("no match")
		}
	}
}
