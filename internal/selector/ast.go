package selector

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is an AST node of a parsed selector expression.
type Node interface {
	// String renders the node back to selector syntax (normalized).
	String() string
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpEq BinaryOp = iota + 1
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
)

// String returns the selector spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return "BinaryOp(" + strconv.Itoa(int(op)) + ")"
	}
}

// Ident references a message property or a header field (JMSCorrelationID,
// JMSPriority, JMSType, JMSMessageID, JMSTimestamp, JMSDeliveryMode).
type Ident struct {
	Name string
}

func (n *Ident) String() string { return n.Name }

// IntLit is an integer literal.
type IntLit struct {
	Value int64
}

func (n *IntLit) String() string { return strconv.FormatInt(n.Value, 10) }

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
}

func (n *FloatLit) String() string { return strconv.FormatFloat(n.Value, 'g', -1, 64) }

// StringLit is a string literal.
type StringLit struct {
	Value string
}

func (n *StringLit) String() string {
	return "'" + strings.ReplaceAll(n.Value, "'", "''") + "'"
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Value bool
}

func (n *BoolLit) String() string {
	if n.Value {
		return "TRUE"
	}
	return "FALSE"
}

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	L, R Node
}

func (n *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", n.L, n.Op, n.R)
}

// Not is logical negation.
type Not struct {
	X Node
}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// Neg is arithmetic negation.
type Neg struct {
	X Node
}

func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Between is `X [NOT] BETWEEN Lo AND Hi`.
type Between struct {
	X      Node
	Lo, Hi Node
	Negate bool
}

func (n *Between) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s NOT BETWEEN %s AND %s)", n.X, n.Lo, n.Hi)
	}
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", n.X, n.Lo, n.Hi)
}

// In is `Ident [NOT] IN (list...)`. JMS restricts the left side to an
// identifier and the list to string literals.
type In struct {
	X      *Ident
	List   []string
	Negate bool
	// set is the compiled lookup table, built by the parser.
	set map[string]struct{}
}

func (n *In) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(n.X.String())
	if n.Negate {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, s := range n.List {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString((&StringLit{Value: s}).String())
	}
	sb.WriteString("))")
	return sb.String()
}

// Like is `Ident [NOT] LIKE pattern [ESCAPE esc]`. The pattern uses SQL
// wildcards: '%' matches any sequence, '_' any single character.
type Like struct {
	X       *Ident
	Pattern string
	Escape  byte // 0 when absent
	Negate  bool
	// prog is the compiled pattern, built by the parser.
	prog likeProgram
}

func (n *Like) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(n.X.String())
	if n.Negate {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" LIKE ")
	sb.WriteString((&StringLit{Value: n.Pattern}).String())
	if n.Escape != 0 {
		sb.WriteString(" ESCAPE ")
		sb.WriteString((&StringLit{Value: string(n.Escape)}).String())
	}
	sb.WriteString(")")
	return sb.String()
}

// IsNull is `Ident IS [NOT] NULL`.
type IsNull struct {
	X      *Ident
	Negate bool
}

func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

// Identifiers collects the distinct identifier names referenced by the
// expression, in first-appearance order. Useful for static diagnostics and
// for the broker's filter-cost accounting.
func Identifiers(n Node) []string {
	var names []string
	seen := make(map[string]struct{})
	var walk func(Node)
	add := func(name string) {
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			names = append(names, name)
		}
	}
	walk = func(n Node) {
		switch x := n.(type) {
		case *Ident:
			add(x.Name)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.X)
		case *Neg:
			walk(x.X)
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *In:
			add(x.X.Name)
		case *Like:
			add(x.X.Name)
		case *IsNull:
			add(x.X.Name)
		}
	}
	walk(n)
	return names
}
