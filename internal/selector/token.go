// Package selector implements the JMS message selector language, the SQL92
// subset defined by the JMS 1.1 specification. Subscribers install a selector
// string ("application property filter" in the paper's terminology); the
// broker evaluates it against the property section and header fields of each
// message using SQL three-valued logic.
//
// The implementation is a classic pipeline: Lex -> Parse -> (static check)
// -> Eval. Parsing happens once per filter installation; evaluation runs on
// the broker's hot dispatch path for every message and every installed
// filter, which is exactly the n_fltr * t_fltr cost term of the paper.
package selector

import "strconv"

// TokenKind identifies a lexical token class.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokInt
	TokFloat
	TokString

	// Operators and punctuation.
	TokEq     // =
	TokNeq    // <>
	TokLt     // <
	TokLeq    // <=
	TokGt     // >
	TokGeq    // >=
	TokPlus   // +
	TokMinus  // -
	TokStar   // *
	TokSlash  // /
	TokLParen // (
	TokRParen // )
	TokComma  // ,

	// Keywords (case-insensitive in the source).
	TokAnd
	TokOr
	TokNot
	TokBetween
	TokIn
	TokLike
	TokEscape
	TokIs
	TokNull
	TokTrue
	TokFalse
)

// String returns a printable name for the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	case TokEq:
		return "'='"
	case TokNeq:
		return "'<>'"
	case TokLt:
		return "'<'"
	case TokLeq:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGeq:
		return "'>='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokAnd:
		return "AND"
	case TokOr:
		return "OR"
	case TokNot:
		return "NOT"
	case TokBetween:
		return "BETWEEN"
	case TokIn:
		return "IN"
	case TokLike:
		return "LIKE"
	case TokEscape:
		return "ESCAPE"
	case TokIs:
		return "IS"
	case TokNull:
		return "NULL"
	case TokTrue:
		return "TRUE"
	case TokFalse:
		return "FALSE"
	default:
		return "TokenKind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Token is a lexical token with its source position.
type Token struct {
	Kind TokenKind
	// Text is the raw text for identifiers; for strings it is the unquoted,
	// unescaped value.
	Text string
	// Int is the value for TokInt.
	Int int64
	// Float is the value for TokFloat.
	Float float64
	// Pos is the byte offset of the token in the selector source.
	Pos int
}

// keywords maps upper-cased keyword spellings to their token kinds. JMS
// selector keywords are case-insensitive.
var keywords = map[string]TokenKind{
	"AND":     TokAnd,
	"OR":      TokOr,
	"NOT":     TokNot,
	"BETWEEN": TokBetween,
	"IN":      TokIn,
	"LIKE":    TokLike,
	"ESCAPE":  TokEscape,
	"IS":      TokIs,
	"NULL":    TokNull,
	"TRUE":    TokTrue,
	"FALSE":   TokFalse,
}
