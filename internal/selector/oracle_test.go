package selector

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/jms"
)

// This file checks the evaluator against an independent oracle on randomly
// generated expressions: leaves are comparisons whose truth value we can
// compute directly from the generated operands; AND/OR/NOT trees are then
// folded with the three-valued truth tables.

type oracleGen struct {
	r *rand.Rand
	m *jms.Message
	// next property index, to create fresh property names.
	n int
}

// leaf returns a selector snippet and its expected truth value.
func (g *oracleGen) leaf() (string, Tri) {
	g.n++
	name := fmt.Sprintf("p%d", g.n)
	switch g.r.Intn(4) {
	case 0: // integer comparison with a present property
		val := int64(g.r.Intn(21) - 10)
		lit := int64(g.r.Intn(21) - 10)
		if err := g.m.SetInt64Property(name, val); err != nil {
			panic(err)
		}
		op, truth := g.intOp(val, lit)
		return fmt.Sprintf("%s %s %d", name, op, lit), truth
	case 1: // string equality with a present property
		vals := []string{"a", "b", "c"}
		val := vals[g.r.Intn(len(vals))]
		lit := vals[g.r.Intn(len(vals))]
		if err := g.m.SetStringProperty(name, val); err != nil {
			panic(err)
		}
		if g.r.Intn(2) == 0 {
			return fmt.Sprintf("%s = '%s'", name, lit), boolTri(val == lit)
		}
		return fmt.Sprintf("%s <> '%s'", name, lit), boolTri(val != lit)
	case 2: // missing property: comparisons are UNKNOWN
		return fmt.Sprintf("%s = %d", name, g.r.Intn(10)), Unknown
	default: // BETWEEN on a present integer property
		val := int64(g.r.Intn(21) - 10)
		lo := int64(g.r.Intn(21) - 10)
		hi := lo + int64(g.r.Intn(10))
		if err := g.m.SetInt64Property(name, val); err != nil {
			panic(err)
		}
		return fmt.Sprintf("%s BETWEEN %d AND %d", name, lo, hi),
			boolTri(val >= lo && val <= hi)
	}
}

func (g *oracleGen) intOp(a, b int64) (string, Tri) {
	switch g.r.Intn(6) {
	case 0:
		return "=", boolTri(a == b)
	case 1:
		return "<>", boolTri(a != b)
	case 2:
		return "<", boolTri(a < b)
	case 3:
		return "<=", boolTri(a <= b)
	case 4:
		return ">", boolTri(a > b)
	default:
		return ">=", boolTri(a >= b)
	}
}

// tree builds a random boolean tree of the given depth and returns the
// source plus its oracle truth value.
func (g *oracleGen) tree(depth int) (string, Tri) {
	if depth == 0 || g.r.Intn(3) == 0 {
		return g.leaf()
	}
	switch g.r.Intn(3) {
	case 0:
		l, lt := g.tree(depth - 1)
		r, rt := g.tree(depth - 1)
		return "(" + l + " AND " + r + ")", triAnd(lt, rt)
	case 1:
		l, lt := g.tree(depth - 1)
		r, rt := g.tree(depth - 1)
		return "(" + l + " OR " + r + ")", triOr(lt, rt)
	default:
		x, xt := g.tree(depth - 1)
		return "(NOT " + x + ")", triNot(xt)
	}
}

func TestEvalAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	for i := 0; i < 2000; i++ {
		g := &oracleGen{r: r, m: jms.NewMessage("t")}
		src, want := g.tree(3)
		node, err := Parse(src)
		if err != nil {
			t.Fatalf("generated source failed to parse: %q: %v", src, err)
		}
		if got := Eval(node, g.m); got != want {
			t.Fatalf("Eval(%q) = %v, oracle %v", src, got, want)
		}
		// The normalized rendering must evaluate identically.
		again, err := Parse(node.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", node.String(), err)
		}
		if got := Eval(again, g.m); got != want {
			t.Fatalf("Eval(reparse of %q) = %v, oracle %v", src, got, want)
		}
	}
}

// TestParseNeverPanics feeds the parser adversarial inputs; it must return
// errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := []string{
		"a", "1", "'x'", "=", "<", ">", "(", ")", "AND", "OR", "NOT",
		"BETWEEN", "IN", "LIKE", "ESCAPE", "IS", "NULL", ",", "+", "-",
		"*", "/", "<>", "<=", ">=", "''", ".", "e9", "TRUE", "FALSE",
	}
	for i := 0; i < 5000; i++ {
		n := r.Intn(12) + 1
		parts := make([]string, n)
		for j := range parts {
			parts[j] = alphabet[r.Intn(len(alphabet))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, p)
				}
			}()
			node, err := Parse(src)
			if err == nil {
				// Valid by chance: evaluation must not panic either.
				Eval(node, jms.NewMessage("t"))
			}
		}()
	}
}

// TestLexNeverPanics feeds the lexer random bytes.
func TestLexNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		n := r.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(128))
		}
		src := string(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Lex(%q) panicked: %v", src, p)
				}
			}()
			_, _ = Lex(src)
		}()
	}
}
