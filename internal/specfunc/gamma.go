// Package specfunc implements the special functions the waiting-time
// analysis needs: the regularized incomplete gamma functions P(a,x) and
// Q(a,x) and the inverse of P with respect to x. The paper approximates the
// conditional waiting time of delayed messages by a Gamma distribution
// (Eq. 20); its CDF is P(a, x/beta) and its quantiles require the inverse.
//
// The algorithms are the classic series/continued-fraction pair (Abramowitz
// & Stegun 6.5; Numerical Recipes gser/gcf) with a bracketed Newton
// iteration for the inverse.
package specfunc

import (
	"errors"
	"fmt"
	"math"
)

// ErrDomain is returned for arguments outside a function's domain.
var ErrDomain = errors.New("specfunc: argument outside domain")

const (
	maxIterations = 500
	epsilon       = 3e-14
	tiny          = 1e-300
)

// GammaP computes the regularized lower incomplete gamma function
// P(a,x) = gamma(a,x)/Gamma(a) for a > 0, x >= 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("%w: GammaP(%g, %g)", ErrDomain, a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return p, err
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a,x) = 1 - P(a,x).
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("%w: GammaQ(%g, %g)", ErrDomain, a, x)
	}
	if x == 0 {
		return 1, nil
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIterations; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("specfunc: gamma series did not converge (a=%g, x=%g)", a, x)
}

// gammaContinuedFraction evaluates Q(a,x) by its continued fraction
// (modified Lentz), accurate for x >= a+1.
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			res := math.Exp(-x+a*math.Log(x)-lg) * h
			return res, nil
		}
	}
	return 0, fmt.Errorf("specfunc: gamma continued fraction did not converge (a=%g, x=%g)", a, x)
}

// GammaPInv returns x such that P(a, x) = p, for a > 0 and p in [0, 1).
// It seeds with the Wilson–Hilferty approximation and polishes with a
// bracketed Newton iteration.
func GammaPInv(a, p float64) (float64, error) {
	if a <= 0 || p < 0 || p >= 1 || math.IsNaN(a) || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: GammaPInv(%g, %g)", ErrDomain, a, p)
	}
	if p == 0 {
		return 0, nil
	}

	lg, _ := math.Lgamma(a)

	// Wilson–Hilferty starting guess (Numerical Recipes invgammp).
	var x float64
	if a > 1 {
		xx := math.Sqrt2 * erfInv(2*p-1)
		t := 1 - 1/(9*a) + xx/(3*math.Sqrt(a))
		x = a * t * t * t
		if x <= 0 {
			x = a * math.Exp((math.Log(p)+lg)/a)
		}
	} else {
		t := 1 - a*(0.253+a*0.12)
		if p < t {
			x = math.Pow(p/t, 1/a)
		} else {
			x = 1 - math.Log(1-(p-t)/(1-t))
		}
	}

	lo, hi := 0.0, math.Inf(1)
	for i := 0; i < 200; i++ {
		fx, err := GammaP(a, x)
		if err != nil {
			return 0, err
		}
		diff := fx - p
		if math.Abs(diff) < 1e-12 {
			return x, nil
		}
		if diff > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step using the density f(x) = x^{a-1} e^{-x} / Gamma(a).
		logDen := (a-1)*math.Log(x) - x - lg
		den := math.Exp(logDen)
		var next float64
		if den > 0 && !math.IsInf(den, 0) {
			next = x - diff/den
		}
		if den <= 0 || math.IsNaN(next) || next <= lo || next >= hi {
			// Bisect within the bracket.
			if math.IsInf(hi, 1) {
				next = x * 2
			} else {
				next = (lo + hi) / 2
			}
		}
		x = next
		if x <= 0 {
			x = lo/2 + 1e-300
		}
	}
	return x, nil
}

// erfInv computes the inverse error function via the Giles (2012) rational
// approximation polished by one Newton step; adequate as a quantile seed.
func erfInv(y float64) float64 {
	if y <= -1 {
		return math.Inf(-1)
	}
	if y >= 1 {
		return math.Inf(1)
	}
	w := -math.Log((1 - y) * (1 + y))
	var p float64
	if w < 6.25 {
		w -= 3.125
		p = -3.6444120640178196996e-21
		p = -1.685059138182016589e-19 + p*w
		p = 1.2858480715256400167e-18 + p*w
		p = 1.115787767802518096e-17 + p*w
		p = -1.333171662854620906e-16 + p*w
		p = 2.0972767875968561637e-17 + p*w
		p = 6.6376381343583238325e-15 + p*w
		p = -4.0545662729752068639e-14 + p*w
		p = -8.1519341976054721522e-14 + p*w
		p = 2.6335093153082322977e-12 + p*w
		p = -1.2975133253453532498e-11 + p*w
		p = -5.4154120542946279317e-11 + p*w
		p = 1.051212273321532285e-09 + p*w
		p = -4.1126339803469836976e-09 + p*w
		p = -2.9070369957882005086e-08 + p*w
		p = 4.2347877827932403518e-07 + p*w
		p = -1.3654692000834678645e-06 + p*w
		p = -1.3882523362786468719e-05 + p*w
		p = 0.0001867342080340571352 + p*w
		p = -0.00074070253416626697512 + p*w
		p = -0.0060336708714301490533 + p*w
		p = 0.24015818242558961693 + p*w
		p = 1.6536545626831027356 + p*w
	} else if w < 16 {
		w = math.Sqrt(w) - 3.25
		p = 2.2137376921775787049e-09
		p = 9.0756561938885390979e-08 + p*w
		p = -2.7517406297064545428e-07 + p*w
		p = 1.8239629214389227755e-08 + p*w
		p = 1.5027403968909827627e-06 + p*w
		p = -4.013867526981545969e-06 + p*w
		p = 2.9234449089955446044e-06 + p*w
		p = 1.2475304481671778723e-05 + p*w
		p = -4.7318229009055733981e-05 + p*w
		p = 6.8284851459573175448e-05 + p*w
		p = 2.4031110387097893999e-05 + p*w
		p = -0.0003550375203628474796 + p*w
		p = 0.00095328937973738049703 + p*w
		p = -0.0016882755560235047313 + p*w
		p = 0.0024914420961078508066 + p*w
		p = -0.0037512085075692412107 + p*w
		p = 0.005370914553590063617 + p*w
		p = 1.0052589676941592334 + p*w
		p = 3.0838856104922207635 + p*w
	} else {
		w = math.Sqrt(w) - 5
		p = -2.7109920616438573243e-11
		p = -2.5556418169965252055e-10 + p*w
		p = 1.5076572693500548083e-09 + p*w
		p = -3.7894654401267369937e-09 + p*w
		p = 7.6157012080783393804e-09 + p*w
		p = -1.4960026627149240478e-08 + p*w
		p = 2.9147953450901080826e-08 + p*w
		p = -6.7711997758452339498e-08 + p*w
		p = 2.2900482228026654717e-07 + p*w
		p = -9.9298272942317002539e-07 + p*w
		p = 4.5260625972231537039e-06 + p*w
		p = -1.9681778105531670567e-05 + p*w
		p = 7.5995277030017761139e-05 + p*w
		p = -0.00021503011930044477347 + p*w
		p = -0.00013871931833623122026 + p*w
		p = 1.0103004648645343977 + p*w
		p = 4.8499064014085844221 + p*w
	}
	x := p * y
	// One Newton polish: f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) exp(-x^2).
	fx := math.Erf(x) - y
	x -= fx / (2 / math.SqrtPi * math.Exp(-x*x))
	return x
}

// ErfInv exposes the inverse error function (for tests and for normal
// quantiles in the statistics helpers).
func ErfInv(y float64) (float64, error) {
	if y <= -1 || y >= 1 || math.IsNaN(y) {
		return 0, fmt.Errorf("%w: ErfInv(%g)", ErrDomain, y)
	}
	return erfInv(y), nil
}
