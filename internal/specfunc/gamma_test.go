package specfunc

import (
	"errors"
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values: P(a,x) for integer a equals the Erlang CDF
	// 1 - e^{-x} sum_{k<a} x^k/k!, so compute references that way; plus a
	// few half-integer cases tied to erf.
	erlangCDF := func(a int, x float64) float64 {
		sum := 0.0
		term := 1.0
		for k := 0; k < a; k++ {
			if k > 0 {
				term *= x / float64(k)
			}
			sum += term
		}
		return 1 - math.Exp(-x)*sum
	}
	for _, a := range []int{1, 2, 3, 5, 10, 50} {
		for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 40, 100} {
			got, err := GammaP(float64(a), x)
			if err != nil {
				t.Fatalf("GammaP(%d, %g): %v", a, x, err)
			}
			want := erlangCDF(a, x)
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("GammaP(%d, %g) = %.15g, want %.15g", a, x, got, want)
			}
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 4, 9} {
		got, err := GammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("GammaP(0.5, %g) = %.15g, want %.15g", x, got, want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for _, a := range []float64{0.1, 0.5, 1, 2.5, 7, 25, 123.4} {
		for _, x := range []float64{0, 0.01, 0.3, 1, 3, 10, 100, 1000} {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			q, err := GammaQ(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q = %.15g for a=%g x=%g", p+q, a, x)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("out of range: P=%g Q=%g for a=%g x=%g", p, q, a, x)
			}
		}
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.3, 1, 4, 20} {
		prev := -1.0
		for x := 0.0; x <= 50; x += 0.5 {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev-1e-12 {
				t.Errorf("GammaP(%g, %g) = %g decreased from %g", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestGammaPBoundaries(t *testing.T) {
	if p, err := GammaP(3, 0); err != nil || p != 0 {
		t.Errorf("GammaP(3,0) = %g, %v", p, err)
	}
	if p, err := GammaP(3, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaP(3,inf) = %g, %v", p, err)
	}
	if q, err := GammaQ(3, 0); err != nil || q != 1 {
		t.Errorf("GammaQ(3,0) = %g, %v", q, err)
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, -0.5}, {math.NaN(), 1}, {1, math.NaN()}} {
		if _, err := GammaP(bad[0], bad[1]); !errors.Is(err, ErrDomain) {
			t.Errorf("GammaP(%g,%g) err = %v, want ErrDomain", bad[0], bad[1], err)
		}
		if _, err := GammaQ(bad[0], bad[1]); !errors.Is(err, ErrDomain) {
			t.Errorf("GammaQ(%g,%g) err = %v, want ErrDomain", bad[0], bad[1], err)
		}
	}
}

func TestGammaPInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.25, 0.5, 1, 2, 5, 17.3, 100} {
		for _, p := range []float64{0, 1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 0.9999} {
			x, err := GammaPInv(a, p)
			if err != nil {
				t.Fatalf("GammaPInv(%g, %g): %v", a, p, err)
			}
			back, err := GammaP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(back, p, 1e-8) {
				t.Errorf("GammaP(%g, GammaPInv(%g, %g)) = %.12g", a, a, p, back)
			}
		}
	}
}

func TestGammaPInvExponentialCase(t *testing.T) {
	// a=1 is the exponential distribution: inverse CDF is -ln(1-p).
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 0.9999} {
		x, err := GammaPInv(1, p)
		if err != nil {
			t.Fatal(err)
		}
		want := -math.Log(1 - p)
		if !almostEqual(x, want, 1e-9) {
			t.Errorf("GammaPInv(1, %g) = %.12g, want %.12g", p, x, want)
		}
	}
}

func TestGammaPInvDomain(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.5}, {-2, 0.5}, {1, -0.1}, {1, 1}, {1, 1.5}} {
		if _, err := GammaPInv(bad[0], bad[1]); !errors.Is(err, ErrDomain) {
			t.Errorf("GammaPInv(%g,%g) err = %v, want ErrDomain", bad[0], bad[1], err)
		}
	}
	if x, err := GammaPInv(4, 0); err != nil || x != 0 {
		t.Errorf("GammaPInv(4, 0) = %g, %v", x, err)
	}
}

func TestErfInv(t *testing.T) {
	for _, y := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999, 0.999999} {
		x, err := ErfInv(y)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(math.Erf(x), y, 1e-10) {
			t.Errorf("Erf(ErfInv(%g)) = %.12g", y, math.Erf(x))
		}
	}
	for _, bad := range []float64{-1, 1, 2, math.NaN()} {
		if _, err := ErfInv(bad); !errors.Is(err, ErrDomain) {
			t.Errorf("ErfInv(%g) err = %v, want ErrDomain", bad, err)
		}
	}
}

func BenchmarkGammaP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GammaP(7.3, 11.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGammaPInv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GammaPInv(7.3, 0.9999); err != nil {
			b.Fatal(err)
		}
	}
}
