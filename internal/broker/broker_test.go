package broker

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/topic"
)

func newTestBroker(t testing.TB, opts Options) *Broker {
	t.Helper()
	b := New(opts)
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

func publishCorr(t testing.TB, b *Broker, corrID string) {
	t.Helper()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID(corrID); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(context.Background(), m); err != nil {
		t.Fatal(err)
	}
}

func TestPublishSubscribeRoundTrip(t *testing.T) {
	b := newTestBroker(t, Options{})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	publishCorr(t, b, "#0")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	m, err := sub.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.CorrelationID != "#0" {
		t.Errorf("received corrID = %q", m.Header.CorrelationID)
	}
	if sub.Delivered() != 1 {
		t.Errorf("Delivered = %d, want 1", sub.Delivered())
	}
}

func TestFilterSelectsSubset(t *testing.T) {
	b := newTestBroker(t, Options{})
	f0, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	f1, err := filter.NewCorrelationID("#1")
	if err != nil {
		t.Fatal(err)
	}
	sub0, err := b.Subscribe("t", f0)
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := b.Subscribe("t", f1)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		publishCorr(t, b, "#0")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := sub0.Receive(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := sub1.Delivered(); got != 0 {
		t.Errorf("non-matching subscriber received %d messages", got)
	}
	stats := b.Stats()
	if stats.Received != 10 {
		t.Errorf("Received = %d, want 10", stats.Received)
	}
	if stats.Dispatched != 10 {
		t.Errorf("Dispatched = %d, want 10", stats.Dispatched)
	}
	// 10 messages scanned against 2 filters each.
	if stats.FilterEvals != 20 {
		t.Errorf("FilterEvals = %d, want 20", stats.FilterEvals)
	}
}

func TestReplicationGrade(t *testing.T) {
	// R matching subscribers -> every message is dispatched R times.
	const r = 5
	b := newTestBroker(t, Options{})
	f0, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*Subscriber, r)
	for i := range subs {
		s, err := b.Subscribe("t", f0)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	const msgs = 20
	for i := 0; i < msgs; i++ {
		publishCorr(t, b, "#0")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, s := range subs {
		for i := 0; i < msgs; i++ {
			if _, err := s.Receive(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := b.Stats().Dispatched; got != r*msgs {
		t.Errorf("Dispatched = %d, want %d", got, r*msgs)
	}
}

func TestReplicasAreIndependentCopies(t *testing.T) {
	b := newTestBroker(t, Options{})
	s1, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewMessage("t")
	if err := m.SetStringProperty("k", "orig"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	r1, err := s1.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("replicas share the same message instance")
	}
	if err := r1.SetStringProperty("k", "mutated"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r2.StringProperty("k"); v != "orig" {
		t.Error("mutating one replica affected the other")
	}
}

func TestPublishValidation(t *testing.T) {
	b := newTestBroker(t, Options{})
	ctx := context.Background()

	if err := b.Publish(ctx, jms.NewMessage("missing")); !errors.Is(err, topic.ErrNoSuchTopic) {
		t.Errorf("publish to missing topic err = %v", err)
	}
	bad := jms.NewMessage("t")
	bad.Header.Priority = 42
	if err := b.Publish(ctx, bad); err == nil {
		t.Error("invalid message accepted")
	}
}

func TestTryPublishPushBack(t *testing.T) {
	// With no subscribers the dispatcher is fast, so block it with a slow
	// subscriber to fill the in-flight window.
	b := New(Options{InFlight: 2, SubscriberBuffer: 1})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	if _, err := b.Subscribe("t", nil); err != nil {
		t.Fatal(err)
	}
	// Do not consume: dispatcher blocks after SubscriberBuffer deliveries,
	// then the in-flight window (2) fills, then TryPublish must fail.
	sawFull := false
	for i := 0; i < 100; i++ {
		m := jms.NewMessage("t")
		if err := b.TryPublish(m); errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if !sawFull {
		t.Error("TryPublish never reported ErrQueueFull despite blocked subscriber")
	}
}

func TestPublishBlocksUntilContextCancel(t *testing.T) {
	b := New(Options{InFlight: 1, SubscriberBuffer: 1})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if _, err := b.Subscribe("t", nil); err != nil {
		t.Fatal(err)
	}

	// Fill the pipeline: once the subscriber buffer, the dispatcher, and
	// the in-flight window are all occupied, a timed Publish must block
	// until its context expires. The dispatcher may drain one slot after
	// the window first reports full, so retry until the block is observed.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		err := b.Publish(ctx, jms.NewMessage("t"))
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Error("Publish never blocked despite a stalled subscriber")
}

func TestNonPersistentDropsWhenFull(t *testing.T) {
	b := New(Options{InFlight: 16, SubscriberBuffer: 1})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	if _, err := b.Subscribe("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m := jms.NewMessage("t")
		m.Header.DeliveryMode = jms.NonPersistent
		if err := b.Publish(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the dispatcher to process everything: 1 delivered, 9 dropped.
	waitFor(t, func() bool {
		s := b.Stats()
		return s.Dispatched+s.Dropped == 10
	})
	s := b.Stats()
	if s.Dispatched != 1 || s.Dropped != 9 {
		t.Errorf("Dispatched=%d Dropped=%d, want 1/9", s.Dispatched, s.Dropped)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := newTestBroker(t, Options{})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	publishCorr(t, b, "#0")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Errorf("second Unsubscribe err = %v, want nil (idempotent)", err)
	}
	if b.NumFilters() != 0 {
		t.Errorf("NumFilters after unsubscribe = %d", b.NumFilters())
	}
	publishCorr(t, b, "#0")
	if _, err := sub.Receive(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Receive after Unsubscribe = %v, want ErrClosed", err)
	}
}

func TestCloseDrainsAcceptedMessages(t *testing.T) {
	b := New(Options{InFlight: 64, SubscriberBuffer: 64})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 32
	for i := 0; i < msgs; i++ {
		if err := b.Publish(context.Background(), jms.NewMessage("t")); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// All accepted messages must be deliverable after Close (persistent,
	// non-durable semantics for connected subscribers).
	got := 0
	for range sub.Chan() {
		got++
	}
	if got != msgs {
		t.Errorf("drained %d messages after Close, want %d", got, msgs)
	}
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close err = %v, want ErrClosed", err)
	}
	if err := b.Publish(context.Background(), jms.NewMessage("t")); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after Close err = %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe("t", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after Close err = %v, want ErrClosed", err)
	}
	if err := b.ConfigureTopic("t2"); !errors.Is(err, ErrClosed) {
		t.Errorf("ConfigureTopic after Close err = %v, want ErrClosed", err)
	}
}

func TestTopicsIsolation(t *testing.T) {
	b := New(Options{})
	for _, name := range []string{"a", "b"} {
		if err := b.ConfigureTopic(name); err != nil {
			t.Fatal(err)
		}
	}
	defer func() { _ = b.Close() }()

	subA, err := b.Subscribe("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := b.Subscribe("b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(context.Background(), jms.NewMessage("a")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := subA.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	if got := subB.Delivered(); got != 0 {
		t.Errorf("topic isolation violated: subB got %d messages", got)
	}
	names := b.Topics()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Topics = %v", names)
	}
}

type countingObserver struct {
	calls       atomic.Int64
	filters     atomic.Int64
	replication atomic.Int64
}

func (o *countingObserver) ObserveDispatch(_ string, nFilters, replication int) {
	o.calls.Add(1)
	o.filters.Add(int64(nFilters))
	o.replication.Add(int64(replication))
}

func TestObserverSeesFiltersAndReplication(t *testing.T) {
	obs := &countingObserver{}
	b := New(Options{Observer: obs})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	f0, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	f1, err := filter.NewCorrelationID("#1")
	if err != nil {
		t.Fatal(err)
	}
	// 2 matching + 3 non-matching filters: n_fltr=5, R=2.
	for i := 0; i < 2; i++ {
		if _, err := b.Subscribe("t", f0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Subscribe("t", f1); err != nil {
			t.Fatal(err)
		}
	}
	publishCorr(t, b, "#0")
	waitFor(t, func() bool { return obs.calls.Load() == 1 })
	if obs.filters.Load() != 5 {
		t.Errorf("observed n_fltr = %d, want 5", obs.filters.Load())
	}
	if obs.replication.Load() != 2 {
		t.Errorf("observed R = %d, want 2", obs.replication.Load())
	}
}

func TestInOrderDelivery(t *testing.T) {
	// Persistent mode: messages are delivered reliably and in order.
	b := newTestBroker(t, Options{InFlight: 256, SubscriberBuffer: 256})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 200
	for i := 0; i < msgs; i++ {
		m := jms.NewMessage("t")
		if err := m.SetInt64Property("seq", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Publish(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < msgs; i++ {
		m, err := sub.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := m.Int64Property("seq")
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Fatalf("out of order: got seq %d at position %d", seq, i)
		}
	}
}

func TestConcurrentPublishers(t *testing.T) {
	// The paper uses 5 saturated publishers; verify correctness under
	// concurrent publishing.
	b := newTestBroker(t, Options{InFlight: 128, SubscriberBuffer: 4096})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	const publishers = 5
	const perPublisher = 200

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if err := b.Publish(context.Background(), jms.NewMessage("t")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < publishers*perPublisher; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
	}
	s := b.Stats()
	if s.Received != publishers*perPublisher {
		t.Errorf("Received = %d, want %d", s.Received, publishers*perPublisher)
	}
}

func TestDynamicFilterInstallDuringOperation(t *testing.T) {
	// Filters are installed dynamically during operation (unlike topics).
	b := newTestBroker(t, Options{})
	sub1, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	publishCorr(t, b, "#0")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := sub1.Receive(ctx); err != nil {
		t.Fatal(err)
	}

	sub2, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	publishCorr(t, b, "#1")
	if _, err := sub1.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sub2.Receive(ctx); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDispatchNoFilters(b *testing.B) {
	br := New(Options{InFlight: 1024, SubscriberBuffer: 1 << 20})
	if err := br.ConfigureTopic("t"); err != nil {
		b.Fatal(err)
	}
	defer func() { _ = br.Close() }()
	sub, err := br.Subscribe("t", nil)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range sub.Chan() {
		}
	}()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExpiredMessagesDiscarded(t *testing.T) {
	b := newTestBroker(t, Options{})
	// Inject a clock far in the future so expirations trigger
	// deterministically.
	fixed := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return fixed }

	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	expired := jms.NewMessage("t")
	expired.Header.Expiration = fixed.Add(-time.Second)
	if err := b.Publish(context.Background(), expired); err != nil {
		t.Fatal(err)
	}
	fresh := jms.NewMessage("t")
	fresh.Header.Expiration = fixed.Add(time.Hour)
	if err := b.Publish(context.Background(), fresh); err != nil {
		t.Fatal(err)
	}
	forever := jms.NewMessage("t")
	if err := b.Publish(context.Background(), forever); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// Only the fresh and the non-expiring message arrive.
	m1, err := sub.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Header.Expiration.IsZero() {
		t.Error("first delivery should be the fresh expiring message")
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.Stats().Expired == 1 })
	s := b.Stats()
	if s.Dispatched != 2 {
		t.Errorf("Dispatched = %d, want 2", s.Dispatched)
	}
	// No filter work is spent on expired messages.
	if s.FilterEvals != 2 {
		t.Errorf("FilterEvals = %d, want 2", s.FilterEvals)
	}
}
