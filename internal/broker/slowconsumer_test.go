package broker

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/jms"
)

// The delivery-semantics wall for the slow-consumer policies. With a
// single publisher, a subscriber queue of capacity B and K > B persistent
// messages published while the subscriber does not drain, each policy pins
// an exact multiset and order:
//
//	block        the publisher stalls; once the subscriber drains it
//	             receives all K messages 1..K in order
//	drop-oldest  the subscriber receives exactly K-B+1..K in order
//	disconnect   the subscriber receives exactly the prefix 1..B in order,
//	             then ErrSlowConsumer; a fast subscriber still gets all K
//
// Each case runs on both engines and through both the single-message and
// the batched publish path.

const (
	slowBuf  = 4
	slowMsgs = 10
)

func seqMessage(t *testing.T, i int) *jms.Message {
	t.Helper()
	m := jms.NewMessage("t")
	if err := m.SetInt64Property("seq", int64(i)); err != nil {
		t.Fatal(err)
	}
	return m
}

func publishSlowSeq(b *Broker, batched bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if batched {
		msgs := make([]*jms.Message, slowMsgs)
		for i := range msgs {
			m := jms.NewMessage("t")
			if err := m.SetInt64Property("seq", int64(i+1)); err != nil {
				return err
			}
			msgs[i] = m
		}
		return b.PublishBatch(ctx, msgs)
	}
	for i := 1; i <= slowMsgs; i++ {
		m := jms.NewMessage("t")
		if err := m.SetInt64Property("seq", int64(i)); err != nil {
			return err
		}
		if err := b.Publish(ctx, m); err != nil {
			return err
		}
	}
	return nil
}

// receiveSeqs drains exactly want sequence numbers, asserting order. It
// returns an error instead of failing so goroutines may call it.
func receiveSeqs(sub *Subscriber, want []int64) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for pos, w := range want {
		m, err := sub.Receive(ctx)
		if err != nil {
			return fmt.Errorf("position %d: Receive: %w", pos, err)
		}
		seq, err := m.Int64Property("seq")
		if err != nil {
			return err
		}
		if seq != w {
			return fmt.Errorf("position %d: seq = %d, want %d", pos, seq, w)
		}
	}
	return nil
}

// drainAll receives all K messages in order — the fast subscriber's leg.
func drainAll(sub *Subscriber) error {
	want := make([]int64, slowMsgs)
	for i := range want {
		want[i] = int64(i + 1)
	}
	return receiveSeqs(sub, want)
}

// waitDispatched polls the Dispatched counter until every published
// message has cleared the transmit stage for every subscriber — the
// barrier that makes the slow subscriber's queue state deterministic.
func waitDispatched(t *testing.T, b *Broker, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Dispatched < want {
		if time.Now().After(deadline) {
			t.Fatalf("Dispatched = %d, want %d", b.Stats().Dispatched, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func slowConsumerCases() []struct {
	name   string
	engine Engine
} {
	return []struct {
		name   string
		engine Engine
	}{
		{"faithful", EngineFaithful},
		{"fast", EngineFast},
	}
}

func TestSlowConsumerBlockSemantics(t *testing.T) {
	for _, ec := range slowConsumerCases() {
		for _, batched := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/batched=%v", ec.name, batched), func(t *testing.T) {
				b := newTestBroker(t, Options{
					Engine:           ec.engine,
					InFlight:         2,
					SubscriberBuffer: slowBuf,
					SlowConsumer:     SlowConsumerBlock,
				})
				slow, err := b.Subscribe("t", nil)
				if err != nil {
					t.Fatal(err)
				}
				pubDone := make(chan struct{})
				go func() {
					defer close(pubDone)
					if err := publishSlowSeq(b, batched); err != nil {
						t.Error(err)
					}
				}()
				if !batched {
					// The publisher must stall: the slow queue fills, the
					// transmit stage blocks, the in-flight window fills. (A
					// batch occupies a single in-flight slot, so the batched
					// publisher returns without blocking by design.)
					select {
					case <-pubDone:
						t.Fatal("publisher completed against a blocked subscriber; push-back did not propagate")
					case <-time.After(100 * time.Millisecond):
					}
				}
				// Draining releases the push-back and yields every message
				// in order — the paper's lossless blocking regime.
				want := make([]int64, slowMsgs)
				for i := range want {
					want[i] = int64(i + 1)
				}
				if err := receiveSeqs(slow, want); err != nil {
					t.Fatal(err)
				}
				select {
				case <-pubDone:
				case <-time.After(5 * time.Second):
					t.Fatal("publisher still blocked after subscriber drained")
				}
				st := b.Stats()
				if st.SlowDropped != 0 || st.SlowDisconnects != 0 {
					t.Errorf("block policy counted slow-consumer actions: %+v", st)
				}
				if st.Dispatched != slowMsgs {
					t.Errorf("Dispatched = %d, want %d", st.Dispatched, slowMsgs)
				}
			})
		}
	}
}

func TestSlowConsumerDropOldestSemantics(t *testing.T) {
	for _, ec := range slowConsumerCases() {
		for _, batched := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/batched=%v", ec.name, batched), func(t *testing.T) {
				b := newTestBroker(t, Options{
					Engine:           ec.engine,
					InFlight:         64,
					SubscriberBuffer: slowBuf,
					SlowConsumer:     SlowConsumerDropOldest,
				})
				slow, err := b.Subscribe("t", nil)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := b.SubscribeBuffered("t", nil, 4*slowMsgs)
				if err != nil {
					t.Fatal(err)
				}
				fastDone := make(chan struct{})
				go func() {
					defer close(fastDone)
					if err := drainAll(fast); err != nil {
						t.Error(err)
					}
				}()
				if err := publishSlowSeq(b, batched); err != nil {
					t.Fatal(err)
				}
				<-fastDone
				// Evicted copies stay counted in Dispatched, so 2K marks
				// every transmit (both subscribers) complete.
				waitDispatched(t, b, 2*slowMsgs)

				// The slow subscriber holds exactly the last B messages, in
				// order: K-B+1 .. K.
				want := make([]int64, slowBuf)
				for i := range want {
					want[i] = int64(slowMsgs - slowBuf + i + 1)
				}
				if err := receiveSeqs(slow, want); err != nil {
					t.Fatal(err)
				}
				if n := len(slow.Chan()); n != 0 {
					t.Errorf("slow queue still holds %d messages", n)
				}
				st := b.Stats()
				if st.SlowDropped != slowMsgs-slowBuf {
					t.Errorf("SlowDropped = %d, want %d", st.SlowDropped, slowMsgs-slowBuf)
				}
				if st.SlowDisconnects != 0 {
					t.Errorf("SlowDisconnects = %d, want 0", st.SlowDisconnects)
				}
				// Both subscribers stay attached.
				if b.NumFilters() != 2 {
					t.Errorf("NumFilters = %d, want 2", b.NumFilters())
				}
			})
		}
	}
}

func TestSlowConsumerDisconnectSemantics(t *testing.T) {
	for _, ec := range slowConsumerCases() {
		for _, batched := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/batched=%v", ec.name, batched), func(t *testing.T) {
				b := newTestBroker(t, Options{
					Engine:           ec.engine,
					InFlight:         64,
					SubscriberBuffer: slowBuf,
					SlowConsumer:     SlowConsumerDisconnect,
				})
				slow, err := b.Subscribe("t", nil)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := b.SubscribeBuffered("t", nil, 4*slowMsgs)
				if err != nil {
					t.Fatal(err)
				}
				fastDone := make(chan struct{})
				go func() {
					defer close(fastDone)
					if err := drainAll(fast); err != nil {
						t.Error(err)
					}
				}()
				if err := publishSlowSeq(b, batched); err != nil {
					t.Fatal(err)
				}
				<-fastDone

				// The kick happened on message B+1: Gone must be closed.
				select {
				case <-slow.Gone():
				case <-time.After(5 * time.Second):
					t.Fatal("slow subscriber was not disconnected")
				}
				if !slow.SlowDisconnected() {
					t.Error("SlowDisconnected = false after kick")
				}
				// Exactly the prefix 1..B was delivered, in order; it stays
				// drainable from the channel after the kick.
				for pos := 0; pos < slowBuf; pos++ {
					select {
					case m := <-slow.Chan():
						seq, err := m.Int64Property("seq")
						if err != nil {
							t.Fatal(err)
						}
						if seq != int64(pos+1) {
							t.Fatalf("position %d: seq = %d, want %d", pos, seq, pos+1)
						}
					default:
						t.Fatalf("queue empty at position %d, want prefix of %d", pos, slowBuf)
					}
				}
				if n := len(slow.Chan()); n != 0 {
					t.Errorf("slow queue holds %d extra messages", n)
				}
				// Receive reports the typed error once the queue is empty.
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				if _, err := slow.Receive(ctx); !errors.Is(err, ErrSlowConsumer) {
					t.Errorf("Receive after kick = %v, want ErrSlowConsumer", err)
				}
				if _, err := slow.Receive(ctx); !errors.Is(err, ErrClosed) {
					t.Errorf("ErrSlowConsumer must wrap ErrClosed; got %v", err)
				}
				cancel()
				// The subscription is gone from the registry; the fast one
				// remains and received everything (asserted by drainAll).
				if b.NumFilters() != 1 {
					t.Errorf("NumFilters = %d, want 1 after disconnect", b.NumFilters())
				}
				st := b.Stats()
				if st.SlowDisconnects != 1 {
					t.Errorf("SlowDisconnects = %d, want 1", st.SlowDisconnects)
				}
				if st.SlowDropped != 0 {
					t.Errorf("SlowDropped = %d, want 0", st.SlowDropped)
				}
				// Unsubscribe after a kick is a harmless no-op.
				if err := slow.Unsubscribe(); err != nil {
					t.Errorf("Unsubscribe after kick: %v", err)
				}
			})
		}
	}
}

// TestSlowConsumerDropOldestConcurrentReceive races the eviction loop
// against a consumer that drains at full speed: every message must be
// either received or counted as evicted, with no loss and no duplication.
func TestSlowConsumerDropOldestConcurrentReceive(t *testing.T) {
	b := newTestBroker(t, Options{
		Engine:           EngineFast,
		InFlight:         64,
		SubscriberBuffer: 2,
		SlowConsumer:     SlowConsumerDropOldest,
	})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 2000
	received := make(chan int64, msgs)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		ctx := context.Background()
		for {
			m, err := sub.Receive(ctx)
			if err != nil {
				return
			}
			seq, err := m.Int64Property("seq")
			if err != nil {
				return
			}
			received <- seq
			if seq == msgs {
				return
			}
		}
	}()
	ctx := context.Background()
	for i := 1; i <= msgs; i++ {
		if err := b.Publish(ctx, seqMessage(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-recvDone:
	case <-time.After(10 * time.Second):
		t.Fatal("receiver did not observe the final message")
	}
	close(received)
	var got uint64
	last := int64(0)
	for seq := range received {
		if seq <= last {
			t.Fatalf("out of order or duplicate: %d after %d", seq, last)
		}
		last = seq
		got++
	}
	st := b.Stats()
	if got+st.SlowDropped != msgs {
		t.Errorf("received %d + evicted %d != published %d", got, st.SlowDropped, msgs)
	}
}
