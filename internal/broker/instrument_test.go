package broker_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// TestStageStatsDisabledByDefault checks that without Options.StageTiming
// the broker records nothing.
func TestStageStatsDisabledByDefault(t *testing.T) {
	b := broker.New(broker.Options{})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(context.Background(), jms.NewMessage("t")); err != nil {
		t.Fatal(err)
	}
	st := b.StageStats()
	if st.Enabled {
		t.Error("StageStats.Enabled = true without Options.StageTiming")
	}
	if st.Receive.Count != 0 || st.Match.Count != 0 {
		t.Errorf("stage counts recorded while disabled: %+v", st)
	}
}

// TestStageStatsCounts publishes a known workload on both engines and
// checks the per-stage observation counts against the Eq. 1 bookkeeping:
// every message is received and matched once, and every replica beyond a
// sole receiver is replicated, every delivered replica transmitted.
func TestStageStatsCounts(t *testing.T) {
	for _, engine := range engines {
		t.Run(engine.String(), func(t *testing.T) {
			const msgs, replicas = 50, 3
			b := broker.New(broker.Options{
				Engine:           engine,
				Shards:           2,
				StageTiming:      true,
				SubscriberBuffer: msgs * replicas,
			})
			defer func() { _ = b.Close() }()
			if err := b.ConfigureTopic("t"); err != nil {
				t.Fatal(err)
			}
			f0, err := filter.NewCorrelationID("#0")
			if err != nil {
				t.Fatal(err)
			}
			subs := make([]*broker.Subscriber, replicas)
			for i := range subs {
				if subs[i], err = b.Subscribe("t", f0); err != nil {
					t.Fatal(err)
				}
			}
			ctx := context.Background()
			for i := 0; i < msgs; i++ {
				m := jms.NewMessage("t")
				if err := m.SetCorrelationID("#0"); err != nil {
					t.Fatal(err)
				}
				if err := b.Publish(ctx, m); err != nil {
					t.Fatal(err)
				}
			}
			for _, s := range subs {
				for i := 0; i < msgs; i++ {
					if _, err := s.Receive(ctx); err != nil {
						t.Fatal(err)
					}
				}
			}

			st := b.StageStats()
			if !st.Enabled {
				t.Fatal("StageStats.Enabled = false with Options.StageTiming")
			}
			if st.Receive.Count != msgs {
				t.Errorf("Receive.Count = %d, want %d", st.Receive.Count, msgs)
			}
			if st.Match.Count != msgs {
				t.Errorf("Match.Count = %d, want %d", st.Match.Count, msgs)
			}
			if st.Replicate.Count != msgs*replicas {
				t.Errorf("Replicate.Count = %d, want %d", st.Replicate.Count, msgs*replicas)
			}
			if st.Transmit.Count != msgs*replicas {
				t.Errorf("Transmit.Count = %d, want %d", st.Transmit.Count, msgs*replicas)
			}
			if st.Match.Sum == 0 {
				t.Error("Match.Sum = 0: no time recorded in the match stage")
			}
			if time.Duration(st.Receive.Max) < st.Receive.Mean() {
				t.Errorf("Receive.Max %v < mean %v", time.Duration(st.Receive.Max), st.Receive.Mean())
			}

			// Windowed subtraction: the delta against the full snapshot is
			// empty, against the zero snapshot it is the snapshot itself.
			if d := st.Sub(st); d.Receive.Count != 0 || d.Match.Sum != 0 {
				t.Errorf("self-delta not empty: %+v", d)
			}
		})
	}
}
