package broker

import "repro/internal/metrics"

// This file is the broker's per-topic waiting-time tracing: with
// Options.WaitTiming enabled, every accepted message is stamped at enqueue
// (jms.Message.EnqueuedAt) and the pipeline records, per topic,
//
//	W       = enqueue → dispatch start   (the paper's waiting time),
//	B       = dispatch start → last transmit (the service time),
//	sojourn = enqueue → last transmit    (W + B, the response time T),
//
// into histograms and raw-moment accumulators. The moment accumulators
// keep exact Σx, Σx², Σx³ so a telemetry consumer can evaluate the
// Pollaczek–Khinchine closed forms (Eqs. 4–5) and the Gamma quantile
// approximation (Eqs. 19–20) from measured moments over a rolling window —
// the live counterpart of the offline conformance suite.
//
// On the serial (faithful) engine B is the true single-resource service
// time of the paper's model. On the sharded fast engine dispatch overlaps
// across messages, so B includes reorder-commit wait and the M/GI/1
// prediction built from it is an approximation; the drift monitor surfaces
// exactly that divergence.

// topicTimers is one topic's tracing state. All fields are lock-cheap and
// sit on the dispatch path only when Options.WaitTiming is set.
type topicTimers struct {
	received metrics.Counter // messages accepted into the topic queue
	wait     metrics.Histogram
	sojourn  metrics.Histogram
	waitM    metrics.Moments
	serviceM metrics.Moments
	// batchM accumulates the per-arrival batch size X (1 for every plain
	// Publish), whose moments drive the M^X/G/1 batch-arrival extension.
	batchM metrics.Moments
}

// TopicTelemetry is a point-in-time snapshot of one topic's tracing state.
// Snapshots from two instants subtract (Sub) into a rolling window.
type TopicTelemetry struct {
	// Received counts messages accepted into the topic queue — the λ
	// numerator of a windowed arrival-rate estimate.
	Received uint64
	// Wait is the per-message waiting-time histogram (enqueue → dispatch
	// start).
	Wait metrics.HistogramSnapshot
	// Sojourn is the per-message sojourn-time histogram (enqueue → last
	// transmit of the message's replicas).
	Sojourn metrics.HistogramSnapshot
	// WaitMoments are the raw moments of the waiting time in seconds.
	WaitMoments metrics.MomentsSnapshot
	// ServiceMoments are the raw moments of the service time in seconds —
	// the measured E[B], E[B^2], E[B^3] of Eqs. 4–5.
	ServiceMoments metrics.MomentsSnapshot
	// BatchMoments are the raw moments of the arrival batch size X
	// (dimensionless; 1 per plain Publish). N counts arrival units, so the
	// windowed batch-arrival rate is BatchMoments.N / window while Received
	// stays the per-message λ numerator.
	BatchMoments metrics.MomentsSnapshot
}

// Sub returns the windowed delta s - prev, clamping on counter skew.
func (s TopicTelemetry) Sub(prev TopicTelemetry) TopicTelemetry {
	recv := s.Received
	if prev.Received > recv {
		recv = 0
	} else {
		recv -= prev.Received
	}
	return TopicTelemetry{
		Received:       recv,
		Wait:           s.Wait.Sub(prev.Wait),
		Sojourn:        s.Sojourn.Sub(prev.Sojourn),
		WaitMoments:    s.WaitMoments.Sub(prev.WaitMoments),
		ServiceMoments: s.ServiceMoments.Sub(prev.ServiceMoments),
		BatchMoments:   s.BatchMoments.Sub(prev.BatchMoments),
	}
}

// snapshot copies the timer state.
func (tt *topicTimers) snapshot() TopicTelemetry {
	return TopicTelemetry{
		Received:       tt.received.Value(),
		Wait:           tt.wait.Snapshot(),
		Sojourn:        tt.sojourn.Snapshot(),
		WaitMoments:    tt.waitM.Snapshot(),
		ServiceMoments: tt.serviceM.Snapshot(),
		BatchMoments:   tt.batchM.Snapshot(),
	}
}

// Telemetry returns a snapshot of every topic's tracing state. Without
// Options.WaitTiming the broker records nothing and the map is empty.
func (b *Broker) Telemetry() map[string]TopicTelemetry {
	b.mu.Lock()
	timers := make(map[string]*topicTimers, len(b.dispatchers))
	for name, d := range b.dispatchers {
		if d.tt != nil {
			timers[name] = d.tt
		}
	}
	b.mu.Unlock()
	out := make(map[string]TopicTelemetry, len(timers))
	for name, tt := range timers {
		out[name] = tt.snapshot()
	}
	return out
}
