package broker

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/jms"
	"repro/internal/topic"
)

// fillCarrier loads a pooled carrier with n fresh messages for topicName.
func fillCarrier(topicName string, n int) *BatchCarrier {
	c := GetBatchCarrier()
	for i := 0; i < n; i++ {
		c.Msgs = append(c.Msgs, jms.NewMessage(topicName))
	}
	return c
}

// TestPublishBatchCarrierDelivers hammers the carrier path on both engines:
// several publishers pushing pooled carriers concurrently while the
// pipeline's committing goroutine recycles them after transmit. Run under
// -race this is the recycle-after-transmit check — a carrier touched after
// hand-off, or recycled before its last transmit, trips the detector.
func TestPublishBatchCarrierDelivers(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine Engine
	}{
		{"faithful", EngineFaithful},
		{"fast", EngineFast},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const (
				publishers = 4
				batches    = 50
				batchSize  = 16
			)
			b := newTestBroker(t, Options{
				Engine: tc.engine, Shards: 4,
				InFlight: 64, SubscriberBuffer: publishers * batches * batchSize,
			})
			sub, err := b.Subscribe("t", nil)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < batches; i++ {
						c := fillCarrier("t", batchSize)
						if err := b.PublishBatchCarrier(ctx, c); err != nil {
							t.Error(err)
							c.Release()
							return
						}
					}
				}()
			}
			wg.Wait()
			want := publishers * batches * batchSize
			deadline := time.After(5 * time.Second)
			for got := 0; got < want; got++ {
				select {
				case m := <-sub.Chan():
					if m.Header.Topic != "t" {
						t.Fatalf("delivered topic %q", m.Header.Topic)
					}
				case <-deadline:
					t.Fatalf("delivered %d of %d before timeout", got, want)
				}
			}
		})
	}
}

// TestPublishBatchCarrierSmallBatches covers the degenerate sizes that
// bypass the pipeline's batch path: empty (a no-op) and single-message
// (routed through Publish). Both recycle the carrier immediately.
func TestPublishBatchCarrierSmallBatches(t *testing.T) {
	b := newTestBroker(t, Options{})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.PublishBatchCarrier(ctx, fillCarrier("t", 0)); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := b.PublishBatchCarrier(ctx, fillCarrier("t", 1)); err != nil {
		t.Fatalf("single message: %v", err)
	}
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := sub.Receive(rctx); err != nil {
		t.Fatalf("single-message batch not delivered: %v", err)
	}
}

// TestPublishBatchCarrierMultiTopic: a batch spanning topics falls back to
// PublishBatch's run splitting and must still deliver everything.
func TestPublishBatchCarrierMultiTopic(t *testing.T) {
	b := newTestBroker(t, Options{})
	if err := b.ConfigureTopic("u"); err != nil {
		t.Fatal(err)
	}
	subT, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	subU, err := b.Subscribe("u", nil)
	if err != nil {
		t.Fatal(err)
	}
	c := GetBatchCarrier()
	c.Msgs = append(c.Msgs, jms.NewMessage("t"), jms.NewMessage("u"), jms.NewMessage("t"))
	if err := b.PublishBatchCarrier(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, err := subT.Receive(ctx); err != nil {
			t.Fatalf("topic t delivery %d: %v", i, err)
		}
	}
	if _, err := subU.Receive(ctx); err != nil {
		t.Fatalf("topic u delivery: %v", err)
	}
}

// TestPublishBatchCarrierErrorOwnership: on error the caller keeps the
// carrier — Release must return it to a reusable state.
func TestPublishBatchCarrierErrorOwnership(t *testing.T) {
	b := newTestBroker(t, Options{})
	ctx := context.Background()
	c := fillCarrier("no-such-topic", 2)
	err := b.PublishBatchCarrier(ctx, c)
	if !errors.Is(err, topic.ErrNoSuchTopic) {
		t.Fatalf("err = %v, want ErrNoSuchTopic", err)
	}
	c.Release()

	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PublishBatchCarrier(ctx, fillCarrier("t", 2)); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, err := sub.Receive(rctx); err != nil {
			t.Fatalf("delivery %d after error recovery: %v", i, err)
		}
	}
}

// TestBatchCarrierRecycleZeroes: a recycled carrier must not pin the
// previous batch's messages or subscribers through its retained capacity.
func TestBatchCarrierRecycleZeroes(t *testing.T) {
	c := new(BatchCarrier)
	c.Msgs = append(c.Msgs, jms.NewMessage("t"), jms.NewMessage("t"))
	members := c.memberScratch(2)
	members[0] = seqResult{seq: 9}
	buf := c.subScratch(2)
	_ = append(buf, &Subscriber{})
	c.recycle()
	if len(c.Msgs) != 0 || len(c.members) != 0 || len(c.buf) != 0 {
		t.Fatalf("recycle left lengths (%d, %d, %d)", len(c.Msgs), len(c.members), len(c.buf))
	}
	for i, m := range c.Msgs[:cap(c.Msgs)] {
		if m != nil {
			t.Errorf("Msgs[%d] still pinned after recycle", i)
		}
	}
	for i, r := range c.members[:cap(c.members)] {
		if r.seq != 0 || r.m != nil || r.matches != nil {
			t.Errorf("members[%d] not zeroed after recycle", i)
		}
	}
	for i, s := range c.buf[:cap(c.buf)] {
		if s != nil {
			t.Errorf("buf[%d] still pinned after recycle", i)
		}
	}
}

// TestBatchCarrierOversizedNotPooled: carriers above the retention bound
// are abandoned, mirroring the wire buffer pool's policy.
func TestBatchCarrierOversizedNotPooled(t *testing.T) {
	c := new(BatchCarrier)
	c.Msgs = make([]*jms.Message, maxCarrierMsgs+1)
	c.Msgs[0] = jms.NewMessage("t")
	c.recycle()
	if c.Msgs[0] == nil {
		t.Error("oversized carrier was scrubbed; recycle should abandon it untouched")
	}
}
