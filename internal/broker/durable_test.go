package broker

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/jms"
)

func publishSeq(t testing.TB, b *Broker, topicName string, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		m := jms.NewMessage(topicName)
		if err := m.SetInt64Property("seq", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Publish(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}
}

func receiveSeq(t testing.TB, s *Subscriber, want ...int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, w := range want {
		m, err := s.Receive(ctx)
		if err != nil {
			t.Fatalf("receive (want seq %d): %v", w, err)
		}
		seq, err := m.Int64Property("seq")
		if err != nil {
			t.Fatal(err)
		}
		if seq != w {
			t.Fatalf("seq = %d, want %d", seq, w)
		}
	}
}

func TestDurableBuffersWhileOffline(t *testing.T) {
	b := newTestBroker(t, Options{})

	// Attach once to register, receive a message, detach.
	c1, err := b.SubscribeDurable("t", "alice", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	publishSeq(t, b, "t", 0, 2)
	receiveSeq(t, c1, 0, 1)
	if err := c1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}

	// Offline: messages must accumulate.
	publishSeq(t, b, "t", 2, 5)
	waitFor(t, func() bool {
		n, _, err := b.DurableBacklog("t", "alice")
		return err == nil && n == 3
	})

	// Reattach: backlog replays in order, then live traffic follows.
	c2, err := b.SubscribeDurable("t", "alice", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	receiveSeq(t, c2, 2, 3, 4)
	publishSeq(t, b, "t", 5, 6)
	receiveSeq(t, c2, 5)
}

func TestDurableOrderAcrossManyDetachCycles(t *testing.T) {
	b := newTestBroker(t, Options{SubscriberBuffer: 4})
	c, err := b.SubscribeDurable("t", "d", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	seq := 0
	for cycle := 0; cycle < 5; cycle++ {
		publishSeq(t, b, "t", seq, seq+7)
		seq += 7
		// Read only part of the traffic, then detach mid-stream.
		want := make([]int64, 3)
		for i := range want {
			want[i] = next
			next++
		}
		receiveSeq(t, c, want...)
		if err := c.Unsubscribe(); err != nil {
			t.Fatal(err)
		}
		c, err = b.SubscribeDurable("t", "d", nil, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The remaining 4 of this cycle arrive before anything newer.
		want = make([]int64, 4)
		for i := range want {
			want[i] = next
			next++
		}
		receiveSeq(t, c, want...)
	}
}

func TestDurableSingleActiveConsumer(t *testing.T) {
	b := newTestBroker(t, Options{})
	c1, err := b.SubscribeDurable("t", "d", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeDurable("t", "d", nil, DurableOptions{}); !errors.Is(err, ErrDurableActive) {
		t.Errorf("second attach err = %v, want ErrDurableActive", err)
	}
	if err := c1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeDurable("t", "d", nil, DurableOptions{}); err != nil {
		t.Errorf("reattach after detach err = %v", err)
	}
}

func TestDurableFilterMismatch(t *testing.T) {
	b := newTestBroker(t, Options{})
	f0, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.SubscribeDurable("t", "d", f0, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	f1, err := filter.NewCorrelationID("#1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeDurable("t", "d", f1, DurableOptions{}); !errors.Is(err, ErrDurableFilterMismatch) {
		t.Errorf("filter change err = %v, want ErrDurableFilterMismatch", err)
	}
	// Delete, then re-register with the new filter.
	if err := b.UnsubscribeDurable("t", "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeDurable("t", "d", f1, DurableOptions{}); err != nil {
		t.Errorf("re-register after delete err = %v", err)
	}
}

func TestDurableFilterApplies(t *testing.T) {
	b := newTestBroker(t, Options{})
	f0, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.SubscribeDurable("t", "d", f0, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	publishCorr(t, b, "#1") // filtered out
	publishCorr(t, b, "#0") // delivered
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m, err := c.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.CorrelationID != "#0" {
		t.Errorf("corrID = %q", m.Header.CorrelationID)
	}
	if c.Filter().String() != "#0" {
		t.Errorf("Filter() = %q", c.Filter())
	}
	if c.ID() != 0 {
		t.Errorf("durable handle ID = %d, want 0", c.ID())
	}
}

func TestDurableBacklogOverflowDropsOldest(t *testing.T) {
	b := newTestBroker(t, Options{})
	c, err := b.SubscribeDurable("t", "d", nil, DurableOptions{BacklogLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	publishSeq(t, b, "t", 0, 10)
	waitFor(t, func() bool {
		n, overflow, err := b.DurableBacklog("t", "d")
		return err == nil && n == 3 && overflow == 7
	})
	c2, err := b.SubscribeDurable("t", "d", nil, DurableOptions{BacklogLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Oldest dropped: the newest three remain.
	receiveSeq(t, c2, 7, 8, 9)
}

func TestUnsubscribeDurableErrors(t *testing.T) {
	b := newTestBroker(t, Options{})
	if err := b.UnsubscribeDurable("t", "missing"); !errors.Is(err, ErrNoSuchDurable) {
		t.Errorf("missing err = %v", err)
	}
	c, err := b.SubscribeDurable("t", "d", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnsubscribeDurable("t", "d"); !errors.Is(err, ErrDurableActive) {
		t.Errorf("active delete err = %v", err)
	}
	if err := c.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := b.UnsubscribeDurable("t", "d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.DurableBacklog("t", "d"); !errors.Is(err, ErrNoSuchDurable) {
		t.Errorf("backlog after delete err = %v", err)
	}
	// The relay filter is gone too.
	if n := b.NumFilters(); n != 0 {
		t.Errorf("NumFilters = %d after durable delete", n)
	}
}

func TestDurableEmptyNameRejected(t *testing.T) {
	b := newTestBroker(t, Options{})
	if _, err := b.SubscribeDurable("t", "", nil, DurableOptions{}); err == nil {
		t.Error("empty durable name accepted")
	}
}

func TestDurableCloseDrainsToConsumer(t *testing.T) {
	b := New(Options{SubscriberBuffer: 64})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	c, err := b.SubscribeDurable("t", "d", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	publishSeq(t, b, "t", 0, 10)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// The channel closes after the stream ends; accepted messages are
	// deliverable.
	got := 0
	for range c.Chan() {
		got++
	}
	if got != 10 {
		t.Errorf("drained %d after Close, want 10", got)
	}
}

func TestDurableCloseWithIdleConsumer(t *testing.T) {
	// Close must not deadlock when a durable consumer is attached but not
	// reading and the backlog is empty.
	b := New(Options{})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeDurable("t", "d", nil, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan struct{})
	go func() {
		_ = b.Close()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked with idle durable consumer")
	}
}

func TestDurableSubscribeAfterClose(t *testing.T) {
	b := New(Options{})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeDurable("t", "d", nil, DurableOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubscribeDurable after Close err = %v", err)
	}
}

func TestDurableNonDurableContrast(t *testing.T) {
	// The paper's §II-A distinction in one test: a non-durable subscriber
	// misses messages sent while it is gone; a durable one does not.
	b := newTestBroker(t, Options{})

	nd, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.SubscribeDurable("t", "d", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := d.Unsubscribe(); err != nil {
		t.Fatal(err)
	}

	publishSeq(t, b, "t", 0, 3)
	// Wait until the dispatcher has processed all three (the durable
	// backlog sees them) before the non-durable subscriber reappears.
	waitFor(t, func() bool {
		n, _, err := b.DurableBacklog("t", "d")
		return err == nil && n == 3
	})

	nd2, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.SubscribeDurable("t", "d", nil, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	receiveSeq(t, d2, 0, 1, 2) // durable: nothing lost
	if nd2.Delivered() != 0 {  // non-durable: missed everything
		t.Errorf("non-durable subscriber got %d offline messages", nd2.Delivered())
	}
}
