package broker

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
	"unsafe"

	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/trace"
)

// TestSeqResultStaysInline pins sizeof(seqResult) at the runtime's
// 128-byte map-element inline threshold. The sharded committer's reorder
// buffer is a map[uint64]seqResult; one byte over the threshold makes the
// runtime store elements indirectly, turning every out-of-order insert
// into a heap allocation on the dispatch hot path.
func TestSeqResultStaysInline(t *testing.T) {
	if s := unsafe.Sizeof(seqResult{}); s > 128 {
		t.Fatalf("sizeof(seqResult) = %d, exceeds the 128-byte map inline threshold", s)
	}
}

func newTestRecorder(t testing.TB, cfg trace.Config) *trace.Recorder {
	t.Helper()
	if cfg.FinalizeAfter == 0 {
		cfg.FinalizeAfter = time.Hour // tests commit via Flush
	}
	r := trace.New(cfg)
	t.Cleanup(r.Close)
	return r
}

// drain consumes a subscriber's channel until stop closes, counting
// deliveries, so publishes never block on a full buffer.
func drain(sub *Subscriber, wg *sync.WaitGroup) {
	defer wg.Done()
	for range sub.Chan() {
	}
}

// TestFlightRecorderTiling is the tentpole acceptance check at the broker
// layer: on the serial (faithful) engine the recorded stage spans —
// queue + match + replicate + transmit — must tile the observed sojourn,
// summing to within 10% of it over the run.
func TestFlightRecorderTiling(t *testing.T) {
	rec := newTestRecorder(t, trace.Config{SampleEvery: 1})
	b := newTestBroker(t, Options{Engine: EngineFaithful, Tracer: rec, SubscriberBuffer: 512})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		sub, err := b.Subscribe("t", nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go drain(sub, &wg)
	}

	const n = 200
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		m := jms.NewMessage("t")
		m.Header.TraceID = trace.NewID(7, uint64(i))
		if err := b.Publish(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	waitDispatched(t, b, n*2)
	rec.Flush()

	var full int
	var stageSum, sojournSum int64
	for _, tr := range rec.List(0) {
		if !tr.Complete || tr.Skeleton {
			continue
		}
		full++
		if tr.Topic != "t" {
			t.Errorf("trace %d topic %q", tr.ID, tr.Topic)
		}
		if tr.R != 2 {
			t.Errorf("trace %d R = %d, want 2", tr.ID, tr.R)
		}
		if tr.SojournNs <= 0 {
			t.Errorf("trace %d without sojourn", tr.ID)
		}
		for _, st := range []trace.Stage{trace.StageQueue, trace.StageMatch, trace.StageTransmit} {
			if tr.StageNs(st) < 0 || len(tr.Spans) == 0 {
				t.Errorf("trace %d missing %s span", tr.ID, st)
			}
		}
		sum := tr.StageNs(trace.StageQueue) + tr.StageNs(trace.StageMatch) +
			tr.StageNs(trace.StageReplicate) + tr.StageNs(trace.StageTransmit)
		stageSum += sum
		sojournSum += tr.SojournNs
	}
	if full != n {
		t.Fatalf("committed %d full traces, want %d", full, n)
	}
	cov := float64(stageSum) / float64(sojournSum)
	if cov < 0.90 || cov > 1.02 {
		t.Errorf("stage spans cover %.1f%% of observed sojourn, want within 10%%", cov*100)
	}
	// The recorder's own windowed Coverage agrees with the direct sum.
	if c := rec.Stats().Coverage(); c < 0.90 || c > 1.02 {
		t.Errorf("Stats().Coverage() = %.3f", c)
	}
}

// TestFlightRecorderShardedEngine checks the fast engine's out-of-order
// front stages still produce complete traces with sojourns (the reorder
// wait between match and commit is intentionally unattributed there).
func TestFlightRecorderShardedEngine(t *testing.T) {
	rec := newTestRecorder(t, trace.Config{SampleEvery: 1})
	b := newTestBroker(t, Options{Engine: EngineFast, Shards: 4, Tracer: rec, SubscriberBuffer: 512})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(sub, &wg)

	const n = 100
	ctx := context.Background()
	for i := 1; i <= n; i++ {
		m := jms.NewMessage("t")
		m.Header.TraceID = trace.NewID(9, uint64(i))
		if err := b.Publish(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	waitDispatched(t, b, n)
	rec.Flush()
	var full int
	for _, tr := range rec.List(0) {
		if !tr.Complete || tr.Skeleton {
			continue
		}
		full++
		if tr.SojournNs <= 0 || tr.StageNs(trace.StageQueue) < 0 {
			t.Errorf("trace %d: sojourn %d", tr.ID, tr.SojournNs)
		}
		if tr.R != 1 {
			t.Errorf("trace %d R = %d", tr.ID, tr.R)
		}
	}
	if full != n {
		t.Fatalf("committed %d full traces, want %d", full, n)
	}
}

// TestFlightRecorderBatchPath drives PublishBatch through the serial
// batch-run committer with tracing on and checks every member's trace
// lands with a transmit span (the per-run share) and a sojourn.
func TestFlightRecorderBatchPath(t *testing.T) {
	rec := newTestRecorder(t, trace.Config{SampleEvery: 1})
	b := newTestBroker(t, Options{Engine: EngineFaithful, Tracer: rec, SubscriberBuffer: 512})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(sub, &wg)

	const batches, size = 10, 8
	ctx := context.Background()
	for i := 0; i < batches; i++ {
		msgs := make([]*jms.Message, size)
		for j := range msgs {
			msgs[j] = jms.NewMessage("t")
			msgs[j].Header.TraceID = trace.NewID(11, uint64(i*size+j+1))
		}
		if err := b.PublishBatch(ctx, msgs); err != nil {
			t.Fatal(err)
		}
	}
	waitDispatched(t, b, batches*size)
	rec.Flush()
	var full int
	for _, tr := range rec.List(0) {
		if !tr.Complete || tr.Skeleton {
			continue
		}
		full++
		if tr.SojournNs <= 0 {
			t.Errorf("batch trace %d without sojourn", tr.ID)
		}
		found := false
		for _, sp := range tr.Spans {
			if sp.Stage == trace.StageTransmit {
				found = true
			}
		}
		if !found {
			t.Errorf("batch trace %d without transmit span", tr.ID)
		}
	}
	if full != batches*size {
		t.Fatalf("committed %d full traces, want %d", full, batches*size)
	}
}

// TestFlightRecorderTailSkeletons: unsampled messages (huge SampleEvery)
// still surface through the tail keeper as skeleton traces when
// waiting-time tracing provides the dispatch-start timestamp.
func TestFlightRecorderTailSkeletons(t *testing.T) {
	rec := newTestRecorder(t, trace.Config{SampleEvery: 1 << 40, TailKeep: 32})
	b := newTestBroker(t, Options{Engine: EngineFaithful, Tracer: rec, WaitTiming: true, SubscriberBuffer: 512})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go drain(sub, &wg)

	const n = 10
	ctx := context.Background()
	var ids []uint64
	for i := 1; len(ids) < n; i++ {
		id := trace.NewID(13, uint64(i))
		if rec.Sampled(id) {
			continue // keep the test about the unsampled path
		}
		ids = append(ids, id)
		m := jms.NewMessage("t")
		m.Header.TraceID = id
		if err := b.Publish(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	waitDispatched(t, b, n)
	rec.Flush()
	byID := make(map[uint64]*trace.Trace)
	for _, tr := range rec.List(0) {
		byID[tr.ID] = tr
	}
	if len(byID) != n {
		t.Fatalf("tail kept %d traces, want %d", len(byID), n)
	}
	for _, id := range ids {
		tr := byID[id]
		if tr == nil {
			t.Fatalf("id %d not tail-retained", id)
		}
		if !tr.Skeleton || !tr.Complete {
			t.Errorf("trace %d skeleton=%v complete=%v", id, tr.Skeleton, tr.Complete)
		}
		if tr.SojournNs <= 0 || len(tr.Spans) != 1 || tr.Spans[0].Stage != trace.StageQueue {
			t.Errorf("skeleton %d: sojourn=%d spans=%v", id, tr.SojournNs, tr.Spans)
		}
	}
	if s := rec.Stats(); s.Started != 0 {
		t.Errorf("unsampled run started %d full traces", s.Started)
	}
}

// TestTracedDeliveryUnchanged is the metamorphic leg: the same filter
// population fed the same message stream must deliver identical
// per-subscriber multisets with the flight recorder on (SampleEvery=1)
// and off, on both engines — observation must not perturb routing.
func TestTracedDeliveryUnchanged(t *testing.T) {
	const (
		nSubs     = 20
		nMessages = 150
		seed      = 41
	)
	rng := rand.New(rand.NewSource(seed))
	filters := make([]filter.Filter, nSubs)
	for i := range filters {
		filters[i] = metamorphicFilter(t, rng, true)
	}
	msgs := make([]*jms.Message, nMessages)
	for i := range msgs {
		msgs[i] = metamorphicMessage(t, rng, fmt.Sprintf("m%d", i))
		msgs[i].Header.TraceID = trace.NewID(17, uint64(i+1))
	}

	run := func(t *testing.T, engine Engine, shards int, traced bool) [][]string {
		t.Helper()
		opts := Options{Engine: engine, Shards: shards, SubscriberBuffer: nMessages, InFlight: 64}
		if traced {
			opts.Tracer = newTestRecorder(t, trace.Config{SampleEvery: 1})
		}
		b := New(opts)
		defer func() { _ = b.Close() }()
		if err := b.ConfigureTopic("t"); err != nil {
			t.Fatal(err)
		}
		subs := make([]*Subscriber, nSubs)
		for i, f := range filters {
			s, err := b.Subscribe("t", f)
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = s
		}
		for _, m := range msgs {
			if err := b.Publish(context.Background(), m.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range filters {
			var want uint64
			for _, m := range msgs {
				if f.Matches(m) {
					want++
				}
			}
			deadline := time.Now().Add(20 * time.Second)
			for subs[i].Delivered() != want {
				if time.Now().After(deadline) {
					t.Fatalf("subscriber %d: delivered %d, want %d", i, subs[i].Delivered(), want)
				}
				time.Sleep(time.Millisecond)
			}
		}
		got := make([][]string, nSubs)
		for i, s := range subs {
			for len(s.Chan()) > 0 {
				got[i] = append(got[i], string((<-s.Chan()).Body))
			}
			sort.Strings(got[i])
		}
		return got
	}

	for _, tc := range []struct {
		name   string
		engine Engine
		shards int
	}{
		{"faithful", EngineFaithful, 0},
		{"fast", EngineFast, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := run(t, tc.engine, tc.shards, false)
			traced := run(t, tc.engine, tc.shards, true)
			for i := range plain {
				if fmt.Sprint(plain[i]) != fmt.Sprint(traced[i]) {
					t.Errorf("subscriber %d (%v): tracing changed deliveries\nplain  %v\ntraced %v",
						i, filters[i], plain[i], traced[i])
				}
			}
		})
	}
}
