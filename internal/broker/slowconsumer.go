package broker

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/jms"
)

// ErrSlowConsumer is returned by Receive after the broker force-removed
// the subscription under the disconnect slow-consumer policy. It wraps
// ErrClosed, so existing errors.Is(err, ErrClosed) checks keep working.
var ErrSlowConsumer = fmt.Errorf("%w: slow consumer disconnected", ErrClosed)

// SlowConsumerPolicy selects what a persistent-mode transmit does when a
// subscriber's delivery queue is full. The paper's FioranoMQ setup blocks
// (push-back propagates from the slow subscriber all the way to the
// publishers — the regime the M/GI/1 model describes); real fleets usually
// prefer isolating the slow consumer instead.
type SlowConsumerPolicy int

const (
	// SlowConsumerBlock is the default and the paper-faithful behavior:
	// the transmit stage blocks until the subscriber drains, propagating
	// push-back to publishers.
	SlowConsumerBlock SlowConsumerPolicy = iota
	// SlowConsumerDropOldest evicts the oldest queued delivery to make
	// room for the newest, keeping the subscriber attached with a bounded
	// lag. Evictions are counted in Stats.SlowDropped.
	SlowConsumerDropOldest
	// SlowConsumerDisconnect force-unsubscribes the slow subscriber: its
	// handle reports ErrSlowConsumer, wire connections send a subscription
	//-closed notice, and the count lands in Stats.SlowDisconnects. The
	// message triggering the disconnect is not delivered to that
	// subscriber.
	SlowConsumerDisconnect
)

// slowConsumerNames maps flag names to policies, in declaration order.
var slowConsumerNames = []struct {
	name   string
	policy SlowConsumerPolicy
}{
	{"block", SlowConsumerBlock},
	{"drop-oldest", SlowConsumerDropOldest},
	{"disconnect", SlowConsumerDisconnect},
}

// SlowConsumerPolicyNames returns the valid policy flag names.
func SlowConsumerPolicyNames() []string {
	names := make([]string, len(slowConsumerNames))
	for i, p := range slowConsumerNames {
		names[i] = p.name
	}
	return names
}

// String returns the policy's flag name.
func (p SlowConsumerPolicy) String() string {
	for _, pn := range slowConsumerNames {
		if pn.policy == p {
			return pn.name
		}
	}
	return "SlowConsumerPolicy(" + strconv.Itoa(int(p)) + ")"
}

// ParseSlowConsumerPolicy parses a -slow-consumer flag value.
func ParseSlowConsumerPolicy(s string) (SlowConsumerPolicy, error) {
	for _, pn := range slowConsumerNames {
		if pn.name == s {
			return pn.policy, nil
		}
	}
	return 0, fmt.Errorf("broker: unknown slow-consumer policy %q (valid policies: %s)",
		s, strings.Join(SlowConsumerPolicyNames(), ", "))
}

// sendDropOldest delivers m to a full subscriber queue by evicting the
// oldest queued delivery. The caller holds h.sendMu and has verified the
// handle is alive. The loop terminates because only the transmit stage
// (serialized by sendMu) sends on the channel: each iteration either
// enqueues m or frees a slot; a concurrent Receive can only help.
func (b *Broker) sendDropOldest(h *Subscriber, m *jms.Message) {
	for {
		select {
		case h.ch <- m:
			h.delivered.Add(1)
			b.countAdd(&b.dispatched, 1)
			return
		default:
		}
		select {
		case <-h.ch:
			b.countAdd(&b.slowDropped, 1)
		default:
			// The consumer drained between the two selects; retry the send.
		}
	}
}

// kickSlow force-unsubscribes a slow subscriber under the disconnect
// policy. The caller holds h.sendMu and has verified the handle is alive
// and non-durable (the transmit stage only ever sees non-durable handles —
// durable consumers are fed by their pump, not by the dispatch pipeline).
// Safe against a concurrent Unsubscribe: gone-closing and registry removal
// are both once-guarded, and the lock order (sendMu, then broker/registry
// locks) matches the unsubscribe path.
func (b *Broker) kickSlow(h *Subscriber) {
	h.dead = true
	h.slow.Store(true)
	b.countAdd(&b.slowDisconnects, 1)
	h.once.Do(func() { close(h.gone) })
	h.removeOnce.Do(func() { _ = b.removeSubscriber(h) })
}
