package broker

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/jms"
)

// metamorphicFilter draws one filter per subscription from every family
// the fast engine's index specializes (match-all, exact/glob/range
// correlation IDs, selectors, composites), with pools small enough that
// duplicate rules — the grouping case — occur routinely.
func metamorphicFilter(t *testing.T, rng *rand.Rand, composite bool) filter.Filter {
	t.Helper()
	mk := func(f filter.Filter, err error) filter.Filter {
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	top := 7
	if composite {
		top = 9
	}
	switch rng.Intn(top) {
	case 0:
		return filter.All{}
	case 1, 2:
		return mk(filter.NewCorrelationID(fmt.Sprintf("#%d", rng.Intn(8))))
	case 3:
		return mk(filter.NewCorrelationID(fmt.Sprintf("ord-%d*", rng.Intn(3))))
	case 4:
		return mk(filter.NewCorrelationID(fmt.Sprintf("#[%d;%d]", rng.Intn(4), 4+rng.Intn(4))))
	case 5:
		return mk(filter.NewProperty(fmt.Sprintf("qty > %d", rng.Intn(10))))
	case 6:
		return mk(filter.NewProperty(fmt.Sprintf("region = 'r%d'", rng.Intn(3))))
	case 7:
		return mk(filter.NewAnd(metamorphicFilter(t, rng, false), metamorphicFilter(t, rng, false)))
	default:
		return mk(filter.NewOr(metamorphicFilter(t, rng, false), metamorphicFilter(t, rng, false)))
	}
}

func metamorphicMessage(t *testing.T, rng *rand.Rand, body string) *jms.Message {
	t.Helper()
	m := jms.NewMessage("t")
	var corrID string
	switch rng.Intn(3) {
	case 0:
		corrID = fmt.Sprintf("#%d", rng.Intn(8))
	case 1:
		corrID = fmt.Sprintf("ord-%d%d", rng.Intn(3), rng.Intn(100))
	default:
		corrID = "other"
	}
	if err := m.SetCorrelationID(corrID); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt32Property("qty", int32(rng.Intn(12))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("region", fmt.Sprintf("r%d", rng.Intn(4))); err != nil {
		t.Fatal(err)
	}
	m.SetBody([]byte(body))
	return m
}

// TestEnginesDeliverIdentically is the end-to-end metamorphic check: the
// same random subscription population fed the same random message stream
// must produce, per subscriber, the same delivered multiset on
// EngineFaithful (linear scan, serial) and EngineFast (indexed, sharded)
// — and both must equal the ground truth computed by evaluating each
// filter directly. Sharding may reorder deliveries between subscribers,
// so the comparison is per-subscriber and order-insensitive.
func TestEnginesDeliverIdentically(t *testing.T) {
	const (
		nSubs     = 60
		nMessages = 300
		seed      = 99
	)

	// One shared draw of filters and messages for every leg.
	rng := rand.New(rand.NewSource(seed))
	filters := make([]filter.Filter, nSubs)
	for i := range filters {
		filters[i] = metamorphicFilter(t, rng, true)
	}
	msgs := make([]*jms.Message, nMessages)
	for i := range msgs {
		msgs[i] = metamorphicMessage(t, rng, fmt.Sprintf("m%d", i))
	}

	// Ground truth by direct filter evaluation.
	want := make([][]string, nSubs)
	for i, f := range filters {
		for _, m := range msgs {
			if f.Matches(m) {
				want[i] = append(want[i], string(m.Body))
			}
		}
		sort.Strings(want[i])
	}

	run := func(t *testing.T, engine Engine, shards int) [][]string {
		t.Helper()
		b := New(Options{
			Engine: engine,
			Shards: shards,
			// Room for every delivery: persistent-mode transmits block on
			// a full buffer, and this test is about match sets, not flow
			// control.
			SubscriberBuffer: nMessages,
			InFlight:         64,
		})
		defer func() { _ = b.Close() }()
		if err := b.ConfigureTopic("t"); err != nil {
			t.Fatal(err)
		}
		subs := make([]*Subscriber, nSubs)
		for i, f := range filters {
			s, err := b.Subscribe("t", f)
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = s
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, m := range msgs {
			if err := b.Publish(ctx, m.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		// Wait for the tail of the dispatch queue to drain.
		deadline := time.Now().Add(20 * time.Second)
		for i, s := range subs {
			for s.Delivered() != uint64(len(want[i])) {
				if time.Now().After(deadline) {
					t.Fatalf("subscriber %d (%v): delivered %d, ground truth %d",
						i, filters[i], s.Delivered(), len(want[i]))
				}
				time.Sleep(time.Millisecond)
			}
		}
		got := make([][]string, nSubs)
		for i, s := range subs {
			for len(s.Chan()) > 0 {
				got[i] = append(got[i], string((<-s.Chan()).Body))
			}
			sort.Strings(got[i])
		}
		return got
	}

	faithful := run(t, EngineFaithful, 0)
	fast := run(t, EngineFast, 4)

	for i := range filters {
		if fmt.Sprint(faithful[i]) != fmt.Sprint(want[i]) {
			t.Errorf("subscriber %d (%v): faithful engine diverges from direct evaluation\ngot  %v\nwant %v",
				i, filters[i], faithful[i], want[i])
		}
		if fmt.Sprint(fast[i]) != fmt.Sprint(faithful[i]) {
			t.Errorf("subscriber %d (%v): engines diverge\nfast     %v\nfaithful %v",
				i, filters[i], fast[i], faithful[i])
		}
	}
}
