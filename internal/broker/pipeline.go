package broker

import (
	"sync"
	"time"

	"repro/internal/jms"
	"repro/internal/topic"
)

// This file implements the staged dispatch pipeline shared by every engine.
// Per topic, a message flows through four stages:
//
//	Publish → d.in → receive → match → replicate → transmit
//
// which are exactly the terms of the paper's processing-time decomposition
// (Eq. 1): E[B] = t_rcv + n_fltr·t_fltr + E[R]·t_tx. The stage
// implementations (Matcher, Replicator, Transmitter — see stage.go) are
// what distinguish the engines; the loop, the reorder buffer, the shutdown
// drain and the per-stage instrumentation live here, once.
//
// Two execution modes share the stage code:
//
//   - serial (shards == 1): a single goroutine runs all four stages inline
//     per message — the paper's single message-processing resource. The
//     faithful engine always runs serially.
//   - sharded (shards > 1): a sequencer stamps every accepted message with
//     a topic-local sequence number (channel-receive order, so consistent
//     with per-publisher FIFO), N workers run receive+match concurrently,
//     and a committer restores sequence order behind a reorder window
//     before running replicate+transmit — so subscribers observe
//     per-publisher FIFO order even though matching ran out of order.
//
// Shutdown is identical in both modes: closing d.stop makes the intake loop
// drain d.in completely (persistent semantics: no loss for accepted
// messages), the downstream stages finish the drained work, and d.done is
// closed after the last message was transmitted.

// dispatcher holds one topic's pipeline channels: intake, stop signal, and
// completion signal.
type dispatcher struct {
	topic *topic.Topic
	in    chan *jms.Message
	stop  chan struct{}
	done  chan struct{}
	// tt is the topic's waiting-time tracing state; nil unless
	// Options.WaitTiming (see tracing.go).
	tt *topicTimers
}

// pipeline is the per-topic staged dispatch machinery: the dispatcher
// channels plus the engine's stage configuration.
type pipeline struct {
	b      *Broker
	d      *dispatcher
	st     stageSet
	tx     Transmitter
	timers *stageTimers // nil when Options.StageTiming is off
}

// seqMsg is a sequence-stamped message on its way to a match worker.
type seqMsg struct {
	seq uint64
	m   *jms.Message
}

// seqResult is one matched message awaiting in-order commit.
type seqResult struct {
	seq      uint64
	m        *jms.Message
	matches  []*Subscriber
	nFilters int
	expired  bool
	// matchDur is the wall time already attributed to the match stage,
	// subtracted from the loop total when the receive stage is computed as
	// the residual. Zero unless stage timing is on.
	matchDur time.Duration
	// start is the dispatch-start instant, the end of the message's
	// waiting time W and the origin of its service time B. Zero unless
	// waiting-time tracing is on.
	start time.Time
}

// start launches the pipeline's goroutines.
func (p *pipeline) start() {
	if p.st.shards <= 1 {
		p.b.wg.Add(1)
		go p.runSerial()
		return
	}
	p.runSharded()
}

// intake runs fn for every message accepted on d.in until d.stop closes,
// then drains the channel completely before returning — the shared
// accepted-message no-loss guarantee of both modes.
func (d *dispatcher) intake(fn func(*jms.Message)) {
	for {
		select {
		case m := <-d.in:
			fn(m)
		case <-d.stop:
			for {
				select {
				case m := <-d.in:
					fn(m)
				default:
					return
				}
			}
		}
	}
}

// runSerial is the single-worker mode: all four stages inline, one message
// at a time. matches is the per-pipeline scratch slice — the loop is
// single-threaded, so reusing it across messages keeps the steady state of
// the faithful path allocation-free for the filter scan.
func (p *pipeline) runSerial() {
	defer p.b.wg.Done()
	defer close(p.d.done)
	mt := p.st.newMatcher()
	matches := make([]*Subscriber, 0, 16)
	p.d.intake(func(m *jms.Message) {
		var t0 time.Time
		if p.timers != nil {
			t0 = time.Now()
		}
		res, ok := p.frontStages(mt, m, matches[:0])
		matches = res.matches[:0]
		var commitDur time.Duration
		if ok {
			commitDur = p.commitStages(res)
		}
		if p.timers != nil {
			// Receive stage = the full loop iteration minus what the other
			// stages accounted for: the fixed per-message cost (dequeue
			// bookkeeping, expiry check, counters, observers) the paper
			// calls t_rcv.
			p.timers.receive.Observe(time.Since(t0) - res.matchDur - commitDur)
		}
	})
}

// runSharded is the multi-worker mode: sequencer → workers → committer.
func (p *pipeline) runSharded() {
	b := p.b
	workCh := make(chan seqMsg, b.opts.InFlight)
	commitCh := make(chan seqResult, b.opts.InFlight)

	// Sequencer: stamp accepted messages in channel-receive order.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(workCh)
		var seq uint64
		p.d.intake(func(m *jms.Message) {
			workCh <- seqMsg{seq: seq, m: m}
			seq++
		})
	}()

	// Match workers: receive + match stages, concurrently. Every sequence
	// number is forwarded to the committer, expired or not, so the reorder
	// window never stalls on a hole.
	var workers sync.WaitGroup
	workers.Add(p.st.shards)
	b.wg.Add(p.st.shards)
	for i := 0; i < p.st.shards; i++ {
		go func() {
			defer b.wg.Done()
			defer workers.Done()
			mt := p.st.newMatcher()
			for sm := range workCh {
				var t0 time.Time
				if p.timers != nil {
					t0 = time.Now()
				}
				res, ok := p.frontStages(mt, sm.m, nil)
				if p.timers != nil {
					// Sharded receive residual: the worker's fixed
					// per-message cost (the committer's overhead is
					// concurrent and never on the per-message critical
					// path the way it is in serial mode).
					p.timers.receive.Observe(time.Since(t0) - res.matchDur)
				}
				res.seq = sm.seq
				res.expired = !ok
				commitCh <- res
			}
		}()
	}
	go func() {
		workers.Wait()
		close(commitCh)
	}()

	// Committer: restore sequence order, then replicate + transmit.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(p.d.done)
		pending := make(map[uint64]seqResult)
		var next uint64
		for res := range commitCh {
			if res.seq != next {
				pending[res.seq] = res
				continue
			}
			p.commitOrdered(res)
			next++
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				p.commitOrdered(r)
				next++
			}
		}
	}()
}

// frontStages runs the receive and match stages for one message, appending
// matches to dst. It returns ok=false for an expired message (already
// counted; nothing to commit). The returned result aliases dst. The match
// stage's wall time is observed here and carried in the result; the
// receive stage is observed by the caller as the residual of the full loop
// iteration, so it absorbs every fixed per-message cost — which is exactly
// what the paper's throughput-derived t_rcv measures.
func (p *pipeline) frontStages(mt Matcher, m *jms.Message, dst []*Subscriber) (seqResult, bool) {
	b := p.b
	// Receive-stage work: waiting-time observation and expiration check.
	if obs := b.opts.WaitObserver; obs != nil && !m.Header.Timestamp.IsZero() {
		obs(b.now().Sub(m.Header.Timestamp))
	}
	var start time.Time
	if tt := p.d.tt; tt != nil && !m.EnqueuedAt.IsZero() {
		start = b.now()
		w := start.Sub(m.EnqueuedAt)
		tt.wait.Observe(w)
		tt.waitM.Observe(w)
	}
	if !m.Header.Expiration.IsZero() && m.Expired(b.now()) {
		b.countAdd(&b.expired, 1)
		return seqResult{m: m, matches: dst}, false
	}

	// Match stage: n_fltr·t_fltr.
	var t0 time.Time
	if p.timers != nil {
		t0 = time.Now()
	}
	matches, nFilters, evals := mt.Match(p.d.topic, m, dst)
	var matchDur time.Duration
	if p.timers != nil {
		matchDur = time.Since(t0)
		p.timers.match.Observe(matchDur)
	}
	b.countAdd(&b.filterEvals, uint64(evals))
	return seqResult{m: m, matches: matches, nFilters: nFilters, matchDur: matchDur, start: start}, true
}

// traceCommit records the service and sojourn times of one committed
// message — the end of the spans opened at enqueue and dispatch start.
func (p *pipeline) traceCommit(res seqResult) {
	tt := p.d.tt
	if tt == nil || res.start.IsZero() {
		return
	}
	end := p.b.now()
	tt.serviceM.Observe(end.Sub(res.start))
	tt.sojourn.Observe(end.Sub(res.m.EnqueuedAt))
}

// commitOrdered is the committer's per-result step: expired results were
// counted in frontStages and only occupy a sequence slot.
func (p *pipeline) commitOrdered(res seqResult) {
	if res.expired {
		return
	}
	p.commitStages(res)
}

// commitStages runs the replicate and transmit stages — R copies for R
// matching subscribers, Eq. 1's E[R]·t_tx — and fires the dispatch
// observer. It returns its own wall time so the serial loop can compute
// the receive-stage residual. The per-copy timing windows tile the whole
// loop (each window ends where the next begins), so clock-read and loop
// overhead is attributed to the per-replica stages it belongs to instead
// of leaking into the per-message residual and faking an R-dependent
// t_rcv.
func (p *pipeline) commitStages(res seqResult) time.Duration {
	m := res.m
	if p.timers == nil {
		for _, h := range res.matches {
			copyMsg := m
			if len(res.matches) > 1 {
				copyMsg = p.st.replicator.Replicate(m)
			}
			p.tx.Transmit(h, copyMsg, m.Header.DeliveryMode)
		}
		if obs := p.b.opts.Observer; obs != nil {
			obs.ObserveDispatch(p.d.topic.Name(), res.nFilters, len(res.matches))
		}
		p.traceCommit(res)
		return 0
	}
	start := time.Now()
	prev := start
	for _, h := range res.matches {
		copyMsg := m
		if len(res.matches) > 1 {
			copyMsg = p.st.replicator.Replicate(m)
			now := time.Now()
			p.timers.replicate.Observe(now.Sub(prev))
			prev = now
		}
		p.tx.Transmit(h, copyMsg, m.Header.DeliveryMode)
		now := time.Now()
		p.timers.transmit.Observe(now.Sub(prev))
		prev = now
	}
	if obs := p.b.opts.Observer; obs != nil {
		obs.ObserveDispatch(p.d.topic.Name(), res.nFilters, len(res.matches))
	}
	p.traceCommit(res)
	return time.Since(start)
}
