package broker

import (
	"sync"
	"time"

	"repro/internal/jms"
	"repro/internal/topic"
	"repro/internal/trace"
)

// This file implements the staged dispatch pipeline shared by every engine.
// Per topic, a message flows through four stages:
//
//	Publish → d.in → receive → match → replicate → transmit
//
// which are exactly the terms of the paper's processing-time decomposition
// (Eq. 1): E[B] = t_rcv + n_fltr·t_fltr + E[R]·t_tx. The stage
// implementations (Matcher, Replicator, Transmitter — see stage.go) are
// what distinguish the engines; the loop, the reorder buffer, the shutdown
// drain and the per-stage instrumentation live here, once.
//
// Two execution modes share the stage code:
//
//   - serial (shards == 1): a single goroutine runs all four stages inline
//     per message — the paper's single message-processing resource. The
//     faithful engine always runs serially.
//   - sharded (shards > 1): a sequencer stamps every accepted message with
//     a topic-local sequence number (channel-receive order, so consistent
//     with per-publisher FIFO), N workers run receive+match concurrently,
//     and a committer restores sequence order behind a reorder window
//     before running replicate+transmit — so subscribers observe
//     per-publisher FIFO order even though matching ran out of order.
//
// Shutdown is identical in both modes: closing d.stop makes the intake loop
// drain d.in completely (persistent semantics: no loss for accepted
// messages), the downstream stages finish the drained work, and d.done is
// closed after the last message was transmitted.

// pubUnit is one intake-queue entry: either a single message (m non-nil)
// or a batch accepted as one unit. A batch occupies a single in-flight
// slot — amortizing the push-back window over its messages is the point of
// batching — and fans out per message downstream, so the dispatch stages
// never see batches.
type pubUnit struct {
	m     *jms.Message
	batch []*jms.Message
	// carrier, when non-nil, is the pooled unit that owns batch and the
	// match-stage scratch; the committing goroutine recycles it after the
	// batch's last transmit (see carrier.go).
	carrier *BatchCarrier
}

// dispatcher holds one topic's pipeline channels: intake, stop signal, and
// completion signal.
type dispatcher struct {
	topic *topic.Topic
	in    chan pubUnit
	stop  chan struct{}
	done  chan struct{}
	// tt is the topic's waiting-time tracing state; nil unless
	// Options.WaitTiming (see tracing.go).
	tt *topicTimers
}

// pipeline is the per-topic staged dispatch machinery: the dispatcher
// channels plus the engine's stage configuration.
type pipeline struct {
	b      *Broker
	d      *dispatcher
	st     stageSet
	tx     Transmitter
	timers *stageTimers    // nil when Options.StageTiming is off
	tracer *trace.Recorder // nil when Options.Tracer is unset
	// runScratch backs commitBatchRuns' transmit runs. Only the pipeline's
	// single committing goroutine (serial loop or sharded committer) touches
	// it, and no callee retains it past the call.
	runScratch []*jms.Message
}

// seqMsg is a sequence-stamped unit on its way to a match worker: one
// message, or a whole batch occupying the contiguous sequence range
// [seq, seq+len(batch)). Keeping batches whole through the worker
// channels amortizes the channel handoffs the same way the batch
// amortized its in-flight slot.
type seqMsg struct {
	seq   uint64
	m     *jms.Message
	batch []*jms.Message
	// carrier accompanies batch through the worker to the committer; its
	// scratch backs the member results (see carrier.go).
	carrier *BatchCarrier
}

// seqResult is one matched message awaiting in-order commit.
type seqResult struct {
	seq      uint64
	m        *jms.Message
	matches  []*Subscriber
	nFilters int
	// evals is the number of filter evaluations performed by the match
	// stage; the caller folds it into the broker counter (batched units
	// fold all members in one update).
	evals   int
	expired bool
	// traced marks a head-sampled flight-recorder message: the pipeline
	// records per-stage spans for it. Decided once in frontStages so the
	// commit side never re-hashes the TraceID. It packs next to expired:
	// seqResult must not exceed the runtime's 128-byte map-element inline
	// threshold, or every insert into the committer's reorder buffer
	// allocates (pinned by TestSeqResultStaysInline).
	traced bool
	// matchDur is the wall time already attributed to the match stage,
	// subtracted from the loop total when the receive stage is computed as
	// the residual. Zero unless stage timing is on.
	matchDur time.Duration
	// start is the dispatch-start instant, the end of the message's
	// waiting time W and the origin of its service time B. Zero unless
	// waiting-time tracing or the flight recorder is on.
	start time.Time
	// batch carries the member results of a batched unit, in order; the
	// unit's seq is the first member's and it spans len(batch) sequence
	// slots. The per-message fields above are unused on a batch carrier.
	batch []seqResult
	// carrier is the pooled unit to recycle once the batch has committed;
	// nil for plain (non-carrier) batches.
	carrier *BatchCarrier
}

// span is the number of sequence slots the result occupies.
func (r seqResult) span() uint64 {
	if r.batch != nil {
		return uint64(len(r.batch))
	}
	return 1
}

// start launches the pipeline's goroutines.
func (p *pipeline) start() {
	if p.st.shards <= 1 {
		p.b.wg.Add(1)
		go p.runSerial()
		return
	}
	p.runSharded()
}

// intakeUnits runs fn for every publish unit accepted on d.in until
// d.stop closes, then drains the channel completely before returning —
// the shared accepted-message no-loss guarantee of both modes.
func (d *dispatcher) intakeUnits(fn func(pubUnit)) {
	for {
		select {
		case u := <-d.in:
			fn(u)
		case <-d.stop:
			for {
				select {
				case u := <-d.in:
					fn(u)
				default:
					return
				}
			}
		}
	}
}

// intake is the per-message view of intakeUnits: batched units unfold
// here, in slice order, so the caller sees a plain message sequence.
func (d *dispatcher) intake(fn func(*jms.Message)) {
	d.intakeUnits(func(u pubUnit) {
		if u.m != nil {
			fn(u.m)
			return
		}
		for _, m := range u.batch {
			fn(m)
		}
	})
}

// runSerial is the single-worker mode: all four stages inline, one message
// at a time. matches is the per-pipeline scratch slice — the loop is
// single-threaded, so reusing it across messages keeps the steady state of
// the faithful path allocation-free for the filter scan.
//
// Batched units take a dedicated sub-loop (when stage timing is off and
// the transmitter supports runs): members are matched against shared
// scratch, the filter-evaluation counter folds once per batch, and the
// commit coalesces same-subscriber runs through TransmitBatch — the serial
// analogue of the sharded committer's batch handling, and where the
// batched publish path earns its per-message amortization on a
// single-worker broker.
func (p *pipeline) runSerial() {
	defer p.b.wg.Done()
	defer close(p.d.done)
	mt := p.st.newMatcher()
	matches := make([]*Subscriber, 0, 16)
	single := func(m *jms.Message) {
		var t0 time.Time
		if p.timers != nil {
			t0 = time.Now()
		}
		res, ok := p.frontStages(mt, m, matches[:0])
		matches = res.matches[:0]
		p.b.countAdd(&p.b.filterEvals, uint64(res.evals))
		var commitDur time.Duration
		if ok {
			commitDur = p.commitStages(&res)
		}
		if p.timers != nil {
			// Receive stage = the full loop iteration minus what the other
			// stages accounted for: the fixed per-message cost (dequeue
			// bookkeeping, expiry check, counters, observers) the paper
			// calls t_rcv.
			p.timers.receive.Observe(time.Since(t0) - res.matchDur - commitDur)
		}
	}
	btx, hasBatchTx := p.tx.(batchTransmitter)
	// Per-batch scratch, reused across units: the loop is single-threaded
	// and commitBatchRuns finishes with the members before returning.
	var members []seqResult
	var buf []*Subscriber
	p.d.intakeUnits(func(u pubUnit) {
		if u.m != nil {
			single(u.m)
			return
		}
		if p.timers != nil || !hasBatchTx {
			for _, m := range u.batch {
				single(m)
			}
			if u.carrier != nil {
				u.carrier.recycle()
			}
			return
		}
		if cap(members) < len(u.batch) {
			members = make([]seqResult, len(u.batch))
			buf = make([]*Subscriber, 0, len(u.batch))
		}
		members = members[:len(u.batch)]
		buf = buf[:0]
		var evals uint64
		for i, m := range u.batch {
			start := len(buf)
			res, ok := p.frontStages(mt, m, buf[start:start:cap(buf)])
			res.expired = !ok
			got := res.matches
			if n := len(got); n > 0 && start+n <= cap(buf) && &got[0] == &buf[:start+1][start] {
				// Appended in place: advance buf past the segment and cap
				// the member's view so later appends cannot grow into it.
				buf = buf[:start+n]
				res.matches = buf[start : start+n : start+n]
			}
			evals += uint64(res.evals)
			members[i] = res
		}
		p.b.countAdd(&p.b.filterEvals, evals)
		p.commitBatchRuns(members, btx)
		if u.carrier != nil {
			// Recycle-after-transmit: the batch is fully committed and
			// nothing downstream holds the carrier's slices.
			u.carrier.recycle()
		}
	})
}

// runSharded is the multi-worker mode: sequencer → workers → committer.
func (p *pipeline) runSharded() {
	b := p.b
	workCh := make(chan seqMsg, b.opts.InFlight)
	commitCh := make(chan seqResult, b.opts.InFlight)

	// Sequencer: stamp accepted units in channel-receive order. A batch
	// claims a contiguous sequence range and travels whole, one channel
	// send for all its messages.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(workCh)
		var seq uint64
		p.d.intakeUnits(func(u pubUnit) {
			if u.m != nil {
				workCh <- seqMsg{seq: seq, m: u.m}
				seq++
				return
			}
			workCh <- seqMsg{seq: seq, batch: u.batch, carrier: u.carrier}
			seq += uint64(len(u.batch))
		})
	}()

	// Match workers: receive + match stages, concurrently. Every sequence
	// number is forwarded to the committer, expired or not, so the reorder
	// window never stalls on a hole. A batched unit is matched member by
	// member on one worker and forwarded as one carrier result.
	var workers sync.WaitGroup
	workers.Add(p.st.shards)
	b.wg.Add(p.st.shards)
	for i := 0; i < p.st.shards; i++ {
		go func() {
			defer b.wg.Done()
			defer workers.Done()
			mt := p.st.newMatcher()
			front := func(m *jms.Message, seq uint64, dst []*Subscriber) seqResult {
				var t0 time.Time
				if p.timers != nil {
					t0 = time.Now()
				}
				res, ok := p.frontStages(mt, m, dst)
				if p.timers != nil {
					// Sharded receive residual: the worker's fixed
					// per-message cost (the committer's overhead is
					// concurrent and never on the per-message critical
					// path the way it is in serial mode).
					p.timers.receive.Observe(time.Since(t0) - res.matchDur)
				}
				res.seq = seq
				res.expired = !ok
				return res
			}
			for sm := range workCh {
				if sm.batch == nil {
					res := front(sm.m, sm.seq, nil)
					p.b.countAdd(&p.b.filterEvals, uint64(res.evals))
					commitCh <- res
					continue
				}
				// One result carrier and one matches backing array per
				// batch: member i's matches slice is the segment of buf
				// its Match call appended, capped so later members'
				// appends can never write into it. Filter evaluations
				// fold into the broker counter once per batch. A pooled
				// carrier brings its own scratch for both, so the
				// carrier path allocates nothing here.
				var members []seqResult
				var buf []*Subscriber
				if sm.carrier != nil {
					members = sm.carrier.memberScratch(len(sm.batch))
					buf = sm.carrier.subScratch(len(sm.batch))
				} else {
					members = make([]seqResult, len(sm.batch))
					buf = make([]*Subscriber, 0, len(sm.batch))
				}
				var evals uint64
				for i, m := range sm.batch {
					start := len(buf)
					members[i] = front(m, sm.seq+uint64(i), buf[start:start:cap(buf)])
					got := members[i].matches
					if n := len(got); n > 0 && start+n <= cap(buf) && &got[0] == &buf[:start+1][start] {
						// Appended in place: advance buf past the segment
						// and cap the member's view so later appends
						// cannot grow into it.
						buf = buf[:start+n]
						members[i].matches = buf[start : start+n : start+n]
					}
					// Otherwise Match outgrew the backing and got owns
					// fresh storage; buf is unchanged.
					evals += uint64(members[i].evals)
				}
				p.b.countAdd(&p.b.filterEvals, evals)
				commitCh <- seqResult{seq: sm.seq, batch: members, carrier: sm.carrier}
			}
		}()
	}
	go func() {
		workers.Wait()
		close(commitCh)
	}()

	// Committer: restore sequence order, then replicate + transmit.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(p.d.done)
		pending := make(map[uint64]seqResult)
		var next uint64
		for res := range commitCh {
			if res.seq != next {
				pending[res.seq] = res
				continue
			}
			next += p.commitUnit(res)
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next += p.commitUnit(r)
			}
		}
	}()
}

// commitUnit commits one reordered unit — a single result or a whole
// batch, in member order — and returns the number of sequence slots it
// consumed. Units claim contiguous ranges and are committed whole, so
// `next` only ever lands on unit boundaries.
func (p *pipeline) commitUnit(res seqResult) uint64 {
	if res.batch == nil {
		p.commitOrdered(&res)
		return 1
	}
	span := res.span()
	if p.timers == nil {
		if btx, ok := p.tx.(batchTransmitter); ok {
			p.commitBatchRuns(res.batch, btx)
			if res.carrier != nil {
				// Recycle-after-transmit: the last member is committed and
				// nothing downstream holds the carrier's slices.
				res.carrier.recycle()
			}
			return span
		}
	}
	for i := range res.batch {
		p.commitOrdered(&res.batch[i])
	}
	if res.carrier != nil {
		res.carrier.recycle()
	}
	return span
}

// commitBatchRuns commits a batch's members in order, coalescing
// consecutive single-subscriber deliveries to the same handle and
// delivery mode into one TransmitBatch run (one send lock, one counter
// update). Members outside the pattern — expired, fanned out to several
// subscribers, or switching handles — fall back to the per-message path,
// preserving order throughout.
func (p *pipeline) commitBatchRuns(members []seqResult, btx batchTransmitter) {
	if cap(p.runScratch) < len(members) {
		p.runScratch = make([]*jms.Message, 0, len(members))
	}
	run := p.runScratch[:0]
	for i := 0; i < len(members); {
		r := &members[i]
		if r.expired || len(r.matches) != 1 {
			p.commitOrdered(r)
			i++
			continue
		}
		h := r.matches[0]
		mode := r.m.Header.DeliveryMode
		run = run[:0]
		j := i
		anyTraced := false
		for j < len(members) {
			rj := &members[j]
			if rj.expired || len(rj.matches) != 1 || rj.matches[0] != h ||
				rj.m.Header.DeliveryMode != mode {
				break
			}
			anyTraced = anyTraced || rj.traced
			run = append(run, rj.m)
			j++
		}
		var t0 time.Time
		if anyTraced {
			t0 = time.Now()
		}
		btx.TransmitBatch(h, run, mode)
		if anyTraced {
			// The run transmits as one unit; each traced member gets an
			// equal share of its wall time as the transmit span.
			share := time.Since(t0) / time.Duration(len(run))
			for k := i; k < j; k++ {
				if members[k].traced {
					p.tracer.RecordSpan(members[k].m.Header.TraceID, trace.StageTransmit, t0, share)
				}
			}
		}
		obs := p.b.opts.Observer
		for k := i; k < j; k++ {
			if obs != nil {
				obs.ObserveDispatch(p.d.topic.Name(), members[k].nFilters, 1)
			}
			p.traceCommit(&members[k])
		}
		i = j
	}
	p.runScratch = run[:0]
}

// frontStages runs the receive and match stages for one message, appending
// matches to dst. It returns ok=false for an expired message (already
// counted; nothing to commit). The returned result aliases dst. The match
// stage's wall time is observed here and carried in the result; the
// receive stage is observed by the caller as the residual of the full loop
// iteration, so it absorbs every fixed per-message cost — which is exactly
// what the paper's throughput-derived t_rcv measures.
func (p *pipeline) frontStages(mt Matcher, m *jms.Message, dst []*Subscriber) (seqResult, bool) {
	b := p.b
	// Receive-stage work: waiting-time observation and expiration check.
	if obs := b.opts.WaitObserver; obs != nil && !m.Header.Timestamp.IsZero() {
		obs(b.now().Sub(m.Header.Timestamp))
	}
	traced := p.tracer.Sampled(m.Header.TraceID)
	var start time.Time
	if tt := p.d.tt; (tt != nil || traced) && !m.EnqueuedAt.IsZero() {
		start = b.now()
		w := start.Sub(m.EnqueuedAt)
		if tt != nil {
			tt.wait.Observe(w)
			tt.waitM.Observe(w)
		}
		if traced {
			// The per-message sample of the model's E[W].
			p.tracer.RecordSpan(m.Header.TraceID, trace.StageQueue, m.EnqueuedAt, w)
		}
	}
	if !m.Header.Expiration.IsZero() && m.Expired(b.now()) {
		b.countAdd(&b.expired, 1)
		return seqResult{m: m, matches: dst}, false
	}

	// Match stage: n_fltr·t_fltr.
	var t0 time.Time
	if p.timers != nil || traced {
		t0 = time.Now()
	}
	matches, nFilters, evals := mt.Match(p.d.topic, m, dst)
	var matchDur time.Duration
	if p.timers != nil || traced {
		matchDur = time.Since(t0)
		if p.timers != nil {
			p.timers.match.Observe(matchDur)
		}
		if traced {
			p.tracer.RecordSpan(m.Header.TraceID, trace.StageMatch, t0, matchDur)
		}
	}
	return seqResult{m: m, matches: matches, nFilters: nFilters, evals: evals, matchDur: matchDur, start: start, traced: traced}, true
}

// traceCommit records the service and sojourn times of one committed
// message — the end of the spans opened at enqueue and dispatch start —
// and closes out its flight record: head-sampled messages get their
// covariates (n_fltr, R) and sojourn attached, unsampled ones are offered
// to the recorder's tail keeper as skeleton traces when slow enough.
func (p *pipeline) traceCommit(res *seqResult) {
	if res.start.IsZero() {
		return
	}
	end := p.b.now()
	if tt := p.d.tt; tt != nil {
		tt.serviceM.Observe(end.Sub(res.start))
		tt.sojourn.Observe(end.Sub(res.m.EnqueuedAt))
	}
	if p.tracer == nil {
		return
	}
	id := res.m.Header.TraceID
	sojourn := end.Sub(res.m.EnqueuedAt)
	if res.traced {
		p.tracer.FinishMessage(id, p.d.topic.Name(), res.nFilters, len(res.matches), sojourn)
	} else if id != 0 {
		p.tracer.OfferTail(id, p.d.topic.Name(), res.nFilters, len(res.matches),
			res.m.EnqueuedAt, res.start.Sub(res.m.EnqueuedAt), sojourn)
	}
}

// commitOrdered is the committer's per-result step: expired results were
// counted in frontStages and only occupy a sequence slot.
func (p *pipeline) commitOrdered(res *seqResult) {
	if res.expired {
		return
	}
	p.commitStages(res)
}

// commitStages runs the replicate and transmit stages — R copies for R
// matching subscribers, Eq. 1's E[R]·t_tx — and fires the dispatch
// observer. It returns its own wall time so the serial loop can compute
// the receive-stage residual. The per-copy timing windows tile the whole
// loop (each window ends where the next begins), so clock-read and loop
// overhead is attributed to the per-replica stages it belongs to instead
// of leaking into the per-message residual and faking an R-dependent
// t_rcv.
func (p *pipeline) commitStages(res *seqResult) time.Duration {
	m := res.m
	if p.timers == nil && !res.traced {
		for _, h := range res.matches {
			copyMsg := m
			if len(res.matches) > 1 {
				copyMsg = p.st.replicator.Replicate(m)
			}
			p.tx.Transmit(h, copyMsg, m.Header.DeliveryMode)
		}
		if obs := p.b.opts.Observer; obs != nil {
			obs.ObserveDispatch(p.d.topic.Name(), res.nFilters, len(res.matches))
		}
		p.traceCommit(res)
		return 0
	}
	start := time.Now()
	prev := start
	var replDur, txDur time.Duration
	for _, h := range res.matches {
		copyMsg := m
		if len(res.matches) > 1 {
			copyMsg = p.st.replicator.Replicate(m)
			now := time.Now()
			d := now.Sub(prev)
			replDur += d
			if p.timers != nil {
				p.timers.replicate.Observe(d)
			}
			prev = now
		}
		p.tx.Transmit(h, copyMsg, m.Header.DeliveryMode)
		now := time.Now()
		d := now.Sub(prev)
		txDur += d
		if p.timers != nil {
			p.timers.transmit.Observe(d)
		}
		prev = now
	}
	if res.traced {
		// Aggregated per-stage spans: exact summed durations; the
		// replicate/transmit interleaving is flattened so the two spans
		// tile the commit window.
		id := m.Header.TraceID
		if replDur > 0 {
			p.tracer.RecordSpan(id, trace.StageReplicate, start, replDur)
		}
		p.tracer.RecordSpan(id, trace.StageTransmit, start.Add(replDur), txDur)
	}
	if obs := p.b.opts.Observer; obs != nil {
		obs.ObserveDispatch(p.d.topic.Name(), res.nFilters, len(res.matches))
	}
	p.traceCommit(res)
	return time.Since(start)
}
