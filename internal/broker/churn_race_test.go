package broker

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/jms"
)

// TestChurnStormDuringPublish races subscribe/unsubscribe storms against a
// continuous publisher on both engines and pins the unsubscribe contract:
// once Unsubscribe has returned and the residual queue is drained, no
// further message may appear on the handle's channel, and Receive reports
// ErrClosed. A long-lived witness subscriber checks the storm never tears
// delivery for bystanders: every message published while it was attached
// arrives, in order. Run under -race this also exercises the lock-free
// index publication end to end through the dispatch path.
func TestChurnStormDuringPublish(t *testing.T) {
	for _, eng := range []Engine{EngineFaithful, EngineFast} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			b := newTestBroker(t, Options{Engine: eng, SubscriberBuffer: 8})

			// Witness: attached for the whole storm, drained continuously.
			witness, err := b.SubscribeBuffered("t", nil, 256)
			if err != nil {
				t.Fatal(err)
			}
			var witnessed atomic.Uint64
			witnessDone := make(chan error, 1)
			go func() {
				var last int64
				for m := range witness.Chan() {
					seq, err := m.Int64Property("seq")
					if err != nil {
						witnessDone <- err
						return
					}
					if seq != last+1 {
						witnessDone <- errors.New("witness saw seq " +
							strconv.FormatInt(seq, 10) + " after " + strconv.FormatInt(last, 10))
						return
					}
					last = seq
					witnessed.Add(1)
				}
				witnessDone <- nil
			}()

			var published atomic.Int64
			var stop atomic.Bool
			pubDone := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				for !stop.Load() {
					m := jms.NewMessage("t")
					if err := m.SetInt64Property("seq", published.Load()+1); err != nil {
						pubDone <- err
						return
					}
					if err := b.Publish(ctx, m); err != nil {
						pubDone <- err
						return
					}
					published.Add(1)
				}
				pubDone <- nil
			}()

			const churners = 4
			rounds := 50
			if testing.Short() {
				rounds = 15
			}
			var wg sync.WaitGroup
			errCh := make(chan error, churners)
			ghosts := make(chan *Subscriber, churners*rounds)
			for c := 0; c < churners; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						var f filter.Filter
						if i%2 == 0 {
							f = filter.MustProperty("seq > " + strconv.Itoa(i))
						}
						s, err := b.Subscribe("t", f)
						if err != nil {
							errCh <- err
							return
						}
						// Receive a little (or not at all) before leaving, so
						// unsubscribes hit empty, partial and full queues.
						for r := 0; r < i%3; r++ {
							ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
							_, rerr := s.Receive(ctx)
							cancel()
							if rerr != nil && !errors.Is(rerr, context.DeadlineExceeded) {
								errCh <- rerr
								return
							}
						}
						if err := s.Unsubscribe(); err != nil {
							errCh <- err
							return
						}
						// Contract: residual messages may be drained, but once
						// the channel is empty after Unsubscribe returned, it
						// must stay empty forever.
						for {
							select {
							case <-s.ch:
								continue
							default:
							}
							break
						}
						if _, rerr := s.Receive(context.Background()); !errors.Is(rerr, ErrClosed) {
							errCh <- errors.New("Receive after Unsubscribe: " +
								"want ErrClosed, got " + errString(rerr))
							return
						}
						ghosts <- s
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}

			// Quiesce: note the publish count, stop, and wait for the
			// pipeline to dispatch everything that was accepted.
			stop.Store(true)
			if err := <-pubDone; err != nil {
				t.Fatal(err)
			}
			total := uint64(published.Load())
			deadline := time.Now().Add(5 * time.Second)
			for witnessed.Load() < total {
				if time.Now().After(deadline) {
					t.Fatalf("witness received %d of %d published", witnessed.Load(), total)
				}
				time.Sleep(time.Millisecond)
			}

			// No ghost channel may have received anything after its
			// post-unsubscribe drain — not even from a dispatch that held
			// an older index snapshot.
			close(ghosts)
			for s := range ghosts {
				if n := len(s.ch); n != 0 {
					t.Fatalf("unsubscribed handle received %d messages after drain", n)
				}
			}
			if got := b.NumFilters(); got != 1 {
				t.Errorf("NumFilters after storm = %d, want 1 (the witness)", got)
			}

			// Close (not Unsubscribe) so the witness channel is closed and
			// its drain loop exits.
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			if err := <-witnessDone; err != nil {
				t.Error(err)
			}
		})
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
