package broker

import (
	"context"
	"testing"
	"time"

	"repro/internal/jms"
)

// drainN receives n messages from sub or fails the test.
func drainN(t *testing.T, sub *Subscriber, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
	}
}

// waitTelemetry polls until the topic's sojourn count reaches n (the
// sojourn is recorded after the last transmit, slightly after the
// subscriber sees the message).
func waitTelemetry(t *testing.T, b *Broker, topic string, n uint64) TopicTelemetry {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tel := b.Telemetry()[topic]
		if tel.Sojourn.Count >= n {
			return tel
		}
		if time.Now().After(deadline) {
			t.Fatalf("telemetry never reached %d sojourns: %+v", n, tel)
		}
		time.Sleep(time.Millisecond)
	}
}

func testWaitTracing(t *testing.T, opts Options) {
	opts.WaitTiming = true
	b := newTestBroker(t, opts)
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		publishCorr(t, b, "#0")
	}
	drainN(t, sub, n)
	tel := waitTelemetry(t, b, "t", n)

	if tel.Received != n {
		t.Errorf("Received = %d, want %d", tel.Received, n)
	}
	if tel.Wait.Count != n || tel.WaitMoments.N != n {
		t.Errorf("wait counts = %d/%d, want %d", tel.Wait.Count, tel.WaitMoments.N, n)
	}
	if tel.Sojourn.Count != n || tel.ServiceMoments.N != n {
		t.Errorf("sojourn/service counts = %d/%d, want %d", tel.Sojourn.Count, tel.ServiceMoments.N, n)
	}
	// Sojourn = wait + service per message, so the sums must order.
	if tel.Sojourn.Sum < tel.Wait.Sum {
		t.Errorf("sojourn sum %d < wait sum %d", tel.Sojourn.Sum, tel.Wait.Sum)
	}
	if tel.WaitMoments.Mean() < 0 || tel.ServiceMoments.Mean() <= 0 {
		t.Errorf("moment means = %v/%v", tel.WaitMoments.Mean(), tel.ServiceMoments.Mean())
	}

	// Windowed delta: more traffic, subtract the first snapshot.
	for i := 0; i < n; i++ {
		publishCorr(t, b, "#0")
	}
	drainN(t, sub, n)
	tel2 := waitTelemetry(t, b, "t", 2*n)
	d := tel2.Sub(tel)
	if d.Received != n || d.Wait.Count != n || d.ServiceMoments.N != n {
		t.Errorf("delta = received %d wait %d service %d, want %d each",
			d.Received, d.Wait.Count, d.ServiceMoments.N, n)
	}
}

func TestWaitTracingFaithful(t *testing.T) {
	testWaitTracing(t, Options{Engine: EngineFaithful})
}

func TestWaitTracingFast(t *testing.T) {
	testWaitTracing(t, Options{Engine: EngineFast, Shards: 4})
}

// TestTelemetryOffByDefault: without WaitTiming there is no tracing state
// and Telemetry stays empty — the hot path must not pay for it.
func TestTelemetryOffByDefault(t *testing.T) {
	b := newTestBroker(t, Options{})
	sub, err := b.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	publishCorr(t, b, "#0")
	drainN(t, sub, 1)
	if tel := b.Telemetry(); len(tel) != 0 {
		t.Errorf("Telemetry without WaitTiming = %v", tel)
	}
}

// TestTracedExpiredMessage: an expired message contributes a wait
// observation (it waited) but no service/sojourn (it was never committed).
func TestTracedExpiredMessage(t *testing.T) {
	b := newTestBroker(t, Options{WaitTiming: true})
	fixed := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return fixed }
	m := jms.NewMessage("t")
	m.Header.Expiration = fixed.Add(-time.Second)
	if err := b.Publish(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tel := b.Telemetry()["t"]
		if tel.Wait.Count == 1 {
			if tel.Sojourn.Count != 0 || tel.ServiceMoments.N != 0 {
				t.Errorf("expired message recorded service/sojourn: %+v", tel)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wait never observed: %+v", tel)
		}
		time.Sleep(time.Millisecond)
	}
}
