package broker

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/filter"
	"repro/internal/jms"
)

// The paper studies the persistent non-durable mode, where "messages are
// forwarded only to subscribers who are presently online". This file adds
// the durable mode the paper contrasts it with: a durable subscription is
// identified by a name; while its consumer is disconnected, matching
// messages are buffered ("the server requires a significant amount of
// buffer space to store messages in the durable mode") and delivered in
// order on reattach. The buffering cost is exactly why the paper's
// throughput study uses the non-durable mode.
//
// Structure: a hidden relay subscription feeds a per-name backlog; a
// delivery goroutine per attached consumer drains the backlog strictly in
// order, so replay and live traffic never interleave out of order.

// Errors of the durable subsystem.
var (
	// ErrDurableActive is returned when attaching to a durable
	// subscription that already has a live consumer, or deleting one.
	ErrDurableActive = errors.New("broker: durable subscription already active")
	// ErrNoSuchDurable is returned when querying or deleting an unknown
	// durable subscription.
	ErrNoSuchDurable = errors.New("broker: no such durable subscription")
	// ErrDurableFilterMismatch is returned when reattaching with a
	// different filter; JMS requires deleting the subscription first.
	ErrDurableFilterMismatch = errors.New("broker: durable subscription exists with a different filter")
)

// durableSub is the server-side state of a named durable subscription.
type durableSub struct {
	name  string
	topic string
	fltr  filter.Filter
	relay *Subscriber

	mu       sync.Mutex
	cond     *sync.Cond
	backlog  []*jms.Message
	limit    int
	active   *Subscriber
	overflow uint64
	pumpDone bool
	deleted  bool
	// detachReq asks the current delivery goroutine to stop; deliverDone
	// is closed when it has fully exited (so detach/attach serialize and
	// in-flight messages are requeued before anyone else runs).
	detachReq   bool
	deliverDone chan struct{}
	// preRequeue holds the active consumer's unacked deliveries handed in
	// by UnsubscribeRequeue; finish() prepends them to the backlog ahead
	// of the channel residual (they left the channel first, so that is
	// their original order).
	preRequeue []*jms.Message

	stop     chan struct{}
	stopOnce sync.Once
}

func (d *durableSub) signalStop() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// DurableOptions configure a durable subscription.
type DurableOptions struct {
	// BacklogLimit bounds the stored messages; the oldest are discarded
	// beyond it (the broker's buffer space is finite). Default 4096.
	BacklogLimit int
}

// SubscribeDurable creates (or reattaches to) the named durable
// subscription on a topic. While no consumer is attached, matching
// messages accumulate in the backlog; on attach the backlog is delivered
// first, in publication order, followed by live traffic. The filter must
// be identical across attaches of the same name; use UnsubscribeDurable to
// change it.
func (b *Broker) SubscribeDurable(topicName, name string, f filter.Filter, opts DurableOptions) (*Subscriber, error) {
	if name == "" {
		return nil, errors.New("broker: empty durable subscription name")
	}
	if f == nil {
		f = filter.All{}
	}
	if opts.BacklogLimit <= 0 {
		opts.BacklogLimit = 4096
	}
	key := topicName + "\x00" + name

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if d, ok := b.durables[key]; ok {
		b.mu.Unlock()
		if d.fltr.String() != f.String() {
			return nil, fmt.Errorf("%w: %q", ErrDurableFilterMismatch, name)
		}
		return b.attachDurable(d)
	}
	b.mu.Unlock()

	// First registration: install the hidden relay. Subscribe validates
	// the topic and takes the broker lock itself.
	relay, err := b.Subscribe(topicName, f)
	if err != nil {
		return nil, err
	}
	d := &durableSub{
		name:  name,
		topic: topicName,
		fltr:  f,
		relay: relay,
		limit: opts.BacklogLimit,
		stop:  make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = relay.Unsubscribe()
		return nil, ErrClosed
	}
	if existing, raced := b.durables[key]; raced {
		b.mu.Unlock()
		_ = relay.Unsubscribe()
		if existing.fltr.String() != f.String() {
			return nil, fmt.Errorf("%w: %q", ErrDurableFilterMismatch, name)
		}
		return b.attachDurable(existing)
	}
	if b.durables == nil {
		b.durables = make(map[string]*durableSub)
	}
	b.durables[key] = d
	b.mu.Unlock()

	b.wg.Add(1)
	go b.durablePump(d)
	return b.attachDurable(d)
}

// durablePump appends relay deliveries to the backlog. It never delivers
// to consumers directly — the per-consumer delivery goroutine owns that —
// so ordering is trivially the backlog order.
func (b *Broker) durablePump(d *durableSub) {
	defer b.wg.Done()
	enqueue := func(m *jms.Message) {
		d.mu.Lock()
		if len(d.backlog) >= d.limit {
			copy(d.backlog, d.backlog[1:])
			d.backlog = d.backlog[:len(d.backlog)-1]
			d.overflow++
			b.countAdd(&b.dropped, 1)
		}
		d.backlog = append(d.backlog, m)
		d.cond.Broadcast()
		d.mu.Unlock()
	}
	for {
		select {
		case m, ok := <-d.relay.Chan():
			if !ok {
				b.finishPump(d)
				return
			}
			enqueue(m)
		case <-d.stop:
			// Drain what the dispatcher already handed over.
			for {
				select {
				case m, ok := <-d.relay.Chan():
					if !ok {
						b.finishPump(d)
						return
					}
					enqueue(m)
				default:
					b.finishPump(d)
					return
				}
			}
		}
	}
}

func (b *Broker) finishPump(d *durableSub) {
	d.mu.Lock()
	d.pumpDone = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// attachDurable connects a consumer handle and starts its delivery
// goroutine.
func (b *Broker) attachDurable(d *durableSub) (*Subscriber, error) {
	h := &Subscriber{
		broker:  b,
		ch:      make(chan *jms.Message, b.opts.SubscriberBuffer),
		gone:    make(chan struct{}),
		durable: d,
	}
	d.mu.Lock()
	if d.deleted {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q on %q", ErrNoSuchDurable, d.name, d.topic)
	}
	if d.active != nil {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDurableActive, d.name)
	}
	d.active = h
	d.detachReq = false
	d.deliverDone = make(chan struct{})
	d.cond.Broadcast()
	d.mu.Unlock()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		d.mu.Lock()
		d.active = nil
		d.mu.Unlock()
		return nil, ErrClosed
	}
	b.durableHandles[h] = struct{}{}
	// Add under the lock: Close sets closed before waiting, so the Add
	// cannot race a Wait that already started.
	b.wg.Add(1)
	b.mu.Unlock()

	go b.durableDeliver(d, h)
	return h, nil
}

// durableDeliver drains the backlog into the consumer channel in order.
// It is the sole writer of h.ch and the sole goroutine that clears
// d.active, so attach/detach cycles cannot interleave deliveries out of
// order. It closes h.ch on exit.
func (b *Broker) durableDeliver(d *durableSub, h *Subscriber) {
	defer b.wg.Done()
	done := d.deliverDone

	// finish ends this consumer's stream. On detach (requeue=true) the
	// messages still sitting unconsumed in the channel buffer — plus the
	// in-flight one, if any — are returned to the backlog head in their
	// original order, so the next attach redelivers them (JMS durable
	// semantics: undelivered messages survive the consumer).
	finish := func(requeue bool, inFlight *jms.Message) {
		var residual []*jms.Message
		if requeue {
		drain:
			for {
				select {
				case m := <-h.ch:
					residual = append(residual, m)
				default:
					break drain
				}
			}
			if inFlight != nil {
				residual = append(residual, inFlight)
			}
		}
		d.mu.Lock()
		if requeue && len(d.preRequeue) > 0 {
			residual = append(append([]*jms.Message{}, d.preRequeue...), residual...)
		}
		d.preRequeue = nil
		if len(residual) > 0 {
			d.backlog = append(residual, d.backlog...)
		}
		d.active = nil
		d.cond.Broadcast()
		d.mu.Unlock()
		close(h.ch)
		close(done)
	}
	for {
		d.mu.Lock()
		for len(d.backlog) == 0 && !d.pumpDone && !d.detachReq {
			d.cond.Wait()
		}
		if d.detachReq {
			d.mu.Unlock()
			finish(true, nil)
			return
		}
		if len(d.backlog) == 0 {
			// pumpDone and drained: orderly end of stream (shutdown).
			d.mu.Unlock()
			finish(false, nil)
			return
		}
		m := d.backlog[0]
		copy(d.backlog, d.backlog[1:])
		d.backlog = d.backlog[:len(d.backlog)-1]
		d.mu.Unlock()

		select {
		case h.ch <- m:
			h.delivered.Add(1)
			b.countAdd(&b.dispatched, 1)
		case <-h.gone:
			finish(true, m)
			return
		case <-d.stop:
			// Broker shutdown: deliver best-effort without blocking so
			// Close can finish even with a stalled consumer.
			select {
			case h.ch <- m:
				h.delivered.Add(1)
				b.countAdd(&b.dispatched, 1)
			default:
				b.countAdd(&b.dropped, 1)
			}
		}
	}
}

// detachDurable disconnects the consumer (called from Unsubscribe). It
// waits for the delivery goroutine to exit, so a subsequent attach starts
// from a quiesced backlog; new traffic keeps accumulating until then.
func (b *Broker) detachDurable(s *Subscriber) {
	d := s.durable
	d.mu.Lock()
	var done chan struct{}
	if d.active == s {
		d.detachReq = true
		done = d.deliverDone
		d.cond.Broadcast()
	}
	d.mu.Unlock()
	if done != nil {
		<-done
	}

	b.mu.Lock()
	delete(b.durableHandles, s)
	b.mu.Unlock()
}

// DurableBacklog reports the backlog length and the number of
// overflow-discarded messages of a durable subscription.
func (b *Broker) DurableBacklog(topicName, name string) (backlog int, overflow uint64, err error) {
	b.mu.Lock()
	d := b.durables[topicName+"\x00"+name]
	b.mu.Unlock()
	if d == nil {
		return 0, 0, fmt.Errorf("%w: %q on %q", ErrNoSuchDurable, name, topicName)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.backlog), d.overflow, nil
}

// DurableAttached reports whether a consumer is currently attached to the
// durable subscription.
func (b *Broker) DurableAttached(topicName, name string) (bool, error) {
	b.mu.Lock()
	d := b.durables[topicName+"\x00"+name]
	b.mu.Unlock()
	if d == nil {
		return false, fmt.Errorf("%w: %q on %q", ErrNoSuchDurable, name, topicName)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active != nil, nil
}

// UnsubscribeDurable deletes a durable subscription: the relay filter is
// removed and the backlog discarded. It fails while a consumer is
// attached.
func (b *Broker) UnsubscribeDurable(topicName, name string) error {
	key := topicName + "\x00" + name
	b.mu.Lock()
	d := b.durables[key]
	b.mu.Unlock()
	if d == nil {
		return fmt.Errorf("%w: %q on %q", ErrNoSuchDurable, name, topicName)
	}
	d.mu.Lock()
	if d.active != nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDurableActive, name)
	}
	d.deleted = true
	d.backlog = nil
	d.cond.Broadcast()
	d.mu.Unlock()

	b.mu.Lock()
	delete(b.durables, key)
	b.mu.Unlock()

	d.signalStop()
	return d.relay.Unsubscribe()
}
