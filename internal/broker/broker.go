// Package broker implements the JMS-style publish/subscribe server whose
// performance the paper studies. Dispatch is a staged pipeline with exactly
// the structure the paper's processing-time model assumes (Eq. 1):
//
//   - receive a message once (cost t_rcv),
//   - match it against the topic's installed filters (cost n_fltr*t_fltr),
//   - replicate and transmit one copy per matching subscriber (cost R*t_tx).
//
// The pipeline loop is shared by every engine (pipeline.go); an Engine is a
// configuration of the stage implementations (stage.go): the faithful
// linear-scan/deep-copy pair the paper measures, or the fast indexed/
// copy-on-write pair. With Options.StageTiming the per-stage times are
// recorded per message (instrument.go), making the Eq. 1 terms directly
// measurable on the running system.
//
// The broker operates in the paper's persistent, non-durable mode: messages
// are delivered reliably and in order to the subscribers that are currently
// connected, and a bounded in-flight window applies push-back to publishers
// instead of dropping messages ("the major part of the messages are queued
// at the publisher site due to a kind of push-back mechanism").
package broker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/topic"
	"repro/internal/trace"
)

// Errors returned by the broker.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("broker: closed")
	// ErrQueueFull is returned by TryPublish when the topic's in-flight
	// window is exhausted (the push-back condition).
	ErrQueueFull = errors.New("broker: topic queue full")
)

// DispatchObserver receives a callback for every dispatched message. The
// benchmark harness uses it to record the per-message filter count and
// replication grade that parameterize the paper's model.
type DispatchObserver interface {
	// ObserveDispatch is called once per message after the filter scan:
	// nFilters is the number of installed filters tested and replication
	// the number of subscribers the message was forwarded to.
	ObserveDispatch(topicName string, nFilters, replication int)
}

// Options configure a Broker.
type Options struct {
	// InFlight bounds the number of received-but-undispatched messages per
	// topic. Publishers block when it is reached (push-back). Default 64.
	InFlight int
	// SubscriberBuffer is the per-subscriber delivery queue length.
	// Default 64.
	SubscriberBuffer int
	// Engine selects the dispatch implementation. The zero value is
	// EngineFaithful, keeping the paper reproduction the default.
	Engine Engine
	// Shards is the number of concurrent filter-matching workers per topic
	// on EngineFast. Default: GOMAXPROCS, capped at 8. Ignored by
	// EngineFaithful.
	Shards int
	// Observer, when non-nil, is invoked on the dispatch path.
	Observer DispatchObserver
	// SlowConsumer selects what a persistent-mode transmit does when a
	// subscriber's delivery queue is full: block (default, the paper's
	// push-back), drop-oldest, or disconnect. See SlowConsumerPolicy.
	SlowConsumer SlowConsumerPolicy
	// WaitObserver, when non-nil, receives each message's waiting time:
	// the span from Publish acceptance to dispatch start. Messages are
	// timestamped on acceptance when it is set. This instruments the W of
	// the paper's M/GI/1 analysis on the real broker.
	WaitObserver func(wait time.Duration)
	// StageTiming records every message's time in each pipeline stage
	// (receive, match, replicate, transmit), exposed by StageStats. Off by
	// default: the timing adds clock reads to the dispatch hot path, so
	// paper-facing throughput runs should leave it disabled.
	StageTiming bool
	// WaitTiming stamps each message at broker enqueue and records its
	// waiting time W (enqueue → dispatch start), service time B (dispatch
	// start → last transmit) and sojourn time (enqueue → last transmit)
	// into per-topic histograms and raw-moment accumulators, exposed by
	// Telemetry. This is the measured side of the live model-drift
	// monitor; off by default for the same hot-path reason as StageTiming.
	WaitTiming bool
	// Tracer, when non-nil, is the per-message flight recorder: sampled
	// messages (by TraceID hash) get queue/match/replicate/transmit spans
	// recorded through the dispatch pipeline, and — when WaitTiming is
	// also on — unsampled slow messages are offered to its tail keeper as
	// skeleton traces. Messages are stamped at enqueue whenever it is
	// set, so the enqueue-wait span exists even without WaitTiming.
	Tracer *trace.Recorder
}

func (o Options) withDefaults() Options {
	if o.InFlight <= 0 {
		o.InFlight = 64
	}
	if o.SubscriberBuffer <= 0 {
		o.SubscriberBuffer = 64
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 8 {
			o.Shards = 8
		}
	}
	return o
}

// Stats are the broker's monotonic counters, in the units the paper
// measures: messages received from publishers and messages dispatched
// (transmitted, counting each replica) to subscribers.
type Stats struct {
	// Received counts messages accepted from publishers.
	Received uint64
	// Dispatched counts message copies forwarded to subscribers; the sum
	// over messages of their replication grade R.
	Dispatched uint64
	// FilterEvals counts individual filter evaluations.
	FilterEvals uint64
	// Dropped counts non-persistent deliveries discarded on full queues.
	Dropped uint64
	// Expired counts messages discarded at dispatch time because their
	// JMS expiration had passed.
	Expired uint64
	// SlowDropped counts oldest-first evictions performed by the
	// drop-oldest slow-consumer policy (persistent deliveries only; the
	// evicted copies remain counted in Dispatched).
	SlowDropped uint64
	// SlowDisconnects counts subscribers force-unsubscribed by the
	// disconnect slow-consumer policy.
	SlowDisconnects uint64
}

// Broker is a single JMS server instance.
type Broker struct {
	opts     Options
	registry *topic.Registry

	mu             sync.Mutex
	dispatchers    map[string]*dispatcher
	handles        map[topic.SubscriptionID]*Subscriber
	durables       map[string]*durableSub
	durableHandles map[*Subscriber]struct{}
	closed         bool

	wg sync.WaitGroup

	// statsMu makes Stats a consistent cut: counter increments take the
	// read side (shared, so incrementers never exclude each other), Stats
	// takes the write side and reads all counters with no add in flight.
	statsMu         sync.RWMutex
	received        atomic.Uint64
	dispatched      atomic.Uint64
	filterEvals     atomic.Uint64
	dropped         atomic.Uint64
	expired         atomic.Uint64
	slowDropped     atomic.Uint64
	slowDisconnects atomic.Uint64

	// timers are the per-stage histograms; nil unless Options.StageTiming.
	timers *stageTimers

	// now is the dispatch clock; injectable for expiration tests.
	now func() time.Time
}

// New creates a broker with the given options.
func New(opts Options) *Broker {
	b := &Broker{
		opts:           opts.withDefaults(),
		registry:       topic.NewRegistry(),
		dispatchers:    make(map[string]*dispatcher),
		handles:        make(map[topic.SubscriptionID]*Subscriber),
		durables:       make(map[string]*durableSub),
		durableHandles: make(map[*Subscriber]struct{}),
		now:            time.Now,
	}
	if b.opts.StageTiming {
		b.timers = &stageTimers{}
	}
	return b
}

// countAdd increments one broker counter under the read side of statsMu,
// so Stats can exclude in-flight increments for a consistent snapshot.
func (b *Broker) countAdd(c *atomic.Uint64, delta uint64) {
	b.statsMu.RLock()
	c.Add(delta)
	b.statsMu.RUnlock()
}

// ConfigureTopic creates a topic and starts its dispatch pipeline. Like on
// a real JMS server, topics are configured before the system is used.
func (b *Broker) ConfigureTopic(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	t, err := b.registry.Configure(name)
	if err != nil {
		return err
	}
	d := &dispatcher{
		topic: t,
		in:    make(chan pubUnit, b.opts.InFlight),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if b.opts.WaitTiming {
		d.tt = &topicTimers{}
	}
	b.dispatchers[name] = d
	p := &pipeline{b: b, d: d, st: b.stages(b.opts.Engine), timers: b.timers, tracer: b.opts.Tracer}
	p.tx = queueTransmitter{b: b, d: d}
	p.start()
	return nil
}

// Topics returns the names of all configured topics.
func (b *Broker) Topics() []string { return b.registry.Topics() }

// Publish delivers a message to the broker, blocking while the topic's
// in-flight window is full (publisher push-back). The message must not be
// modified by the caller afterwards.
func (b *Broker) Publish(ctx context.Context, m *jms.Message) error {
	d, err := b.dispatcherFor(m)
	if err != nil {
		return err
	}
	if b.opts.WaitObserver != nil && m.Header.Timestamp.IsZero() {
		m.Header.Timestamp = b.now()
	}
	if d.tt != nil || b.opts.Tracer != nil {
		m.EnqueuedAt = b.now()
	}
	select {
	case d.in <- pubUnit{m: m}:
		b.countAdd(&b.received, 1)
		if d.tt != nil {
			d.tt.received.Inc()
			d.tt.batchM.ObserveValue(1)
		}
		return nil
	case <-d.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PublishBatch delivers several messages as one dispatch unit, blocking
// like Publish while the topic's in-flight window is full. The whole batch
// occupies a single in-flight slot regardless of its size — amortizing the
// push-back window is the point of batching — and its messages fan out to
// subscribers individually, in slice order. A batch spanning topics is
// split into consecutive same-topic runs, each enqueued as its own unit in
// slice order; on error a suffix of those runs was not accepted (the
// already-enqueued prefix is dispatched normally). The broker retains the
// slice: neither it nor the messages may be modified by the caller
// afterwards — hand over a fresh slice per call.
func (b *Broker) PublishBatch(ctx context.Context, msgs []*jms.Message) error {
	switch len(msgs) {
	case 0:
		return nil
	case 1:
		return b.Publish(ctx, msgs[0])
	}
	for _, m := range msgs {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	// Resolve every run's dispatcher under one lock, so the batch is
	// admitted or rejected against a single broker state.
	type run struct {
		d    *dispatcher
		msgs []*jms.Message
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	var runs []run
	for start := 0; start < len(msgs); {
		name := msgs[start].Header.Topic
		end := start + 1
		for end < len(msgs) && msgs[end].Header.Topic == name {
			end++
		}
		d, ok := b.dispatchers[name]
		if !ok {
			b.mu.Unlock()
			return fmt.Errorf("%w: %q", topic.ErrNoSuchTopic, name)
		}
		runs = append(runs, run{d: d, msgs: msgs[start:end]})
		start = end
	}
	b.mu.Unlock()
	for _, r := range runs {
		if err := b.sendUnit(ctx, r.d, r.msgs); err != nil {
			return err
		}
	}
	return nil
}

// sendUnit stamps and enqueues one same-topic run as a single pubUnit.
func (b *Broker) sendUnit(ctx context.Context, d *dispatcher, msgs []*jms.Message) error {
	if b.opts.WaitObserver != nil || d.tt != nil || b.opts.Tracer != nil {
		now := b.now()
		for _, m := range msgs {
			if b.opts.WaitObserver != nil && m.Header.Timestamp.IsZero() {
				m.Header.Timestamp = now
			}
			if d.tt != nil || b.opts.Tracer != nil {
				m.EnqueuedAt = now
			}
		}
	}
	select {
	case d.in <- pubUnit{batch: msgs}:
		b.countAdd(&b.received, uint64(len(msgs)))
		if d.tt != nil {
			d.tt.received.Add(uint64(len(msgs)))
			d.tt.batchM.ObserveValue(float64(len(msgs)))
		}
		return nil
	case <-d.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryPublish is Publish without blocking: it returns ErrQueueFull when the
// push-back window is exhausted.
func (b *Broker) TryPublish(m *jms.Message) error {
	d, err := b.dispatcherFor(m)
	if err != nil {
		return err
	}
	if d.tt != nil || b.opts.Tracer != nil {
		m.EnqueuedAt = b.now()
	}
	select {
	case d.in <- pubUnit{m: m}:
		b.countAdd(&b.received, 1)
		if d.tt != nil {
			d.tt.received.Inc()
			d.tt.batchM.ObserveValue(1)
		}
		return nil
	case <-d.stop:
		return ErrClosed
	default:
		return ErrQueueFull
	}
}

func (b *Broker) dispatcherFor(m *jms.Message) (*dispatcher, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	d, ok := b.dispatchers[m.Header.Topic]
	if !ok {
		return nil, fmt.Errorf("%w: %q", topic.ErrNoSuchTopic, m.Header.Topic)
	}
	return d, nil
}

// Subscriber is a subscription handle with its delivery queue. It is
// either a regular (non-durable) subscription backed by a registry entry,
// or the attached consumer of a durable subscription.
type Subscriber struct {
	sub     *topic.Subscription
	broker  *Broker
	ch      chan *jms.Message
	gone    chan struct{}
	once    sync.Once
	durable *durableSub // nil for regular subscriptions

	// sendMu serializes transmits against Unsubscribe: Unsubscribe closes
	// gone (waking any transmit blocked on a full queue), then sets dead
	// under the lock, so once Unsubscribe returns no in-flight dispatch
	// can still enqueue a delivery.
	sendMu sync.Mutex
	dead   bool // guarded by sendMu

	// slow marks a handle force-removed by the disconnect slow-consumer
	// policy; Receive then reports ErrSlowConsumer instead of ErrClosed.
	slow atomic.Bool
	// removeOnce guards registry removal, shared between Unsubscribe and
	// the broker-initiated slow-consumer kick so the loser is a no-op
	// instead of an error.
	removeOnce sync.Once

	delivered atomic.Uint64
}

// Subscribe installs a filter on a topic and returns the subscription
// handle. A nil filter receives every message of the topic.
func (b *Broker) Subscribe(topicName string, f filter.Filter) (*Subscriber, error) {
	return b.SubscribeBuffered(topicName, f, 0)
}

// SubscribeBuffered is Subscribe with an explicit delivery-queue capacity
// for this subscription, overriding Options.SubscriberBuffer when buffer
// is positive. The queue length is what the slow-consumer policy acts on,
// and it dominates per-subscription memory — large populations (the 10^5+
// regime the stress suite drives) want small buffers, while designated
// fast consumers may need deeper ones.
func (b *Broker) SubscribeBuffered(topicName string, f filter.Filter, buffer int) (*Subscriber, error) {
	if buffer <= 0 {
		buffer = b.opts.SubscriberBuffer
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	h := &Subscriber{
		broker: b,
		ch:     make(chan *jms.Message, buffer),
		gone:   make(chan struct{}),
	}
	sub, err := b.registry.Subscribe(topicName, f, h)
	if err != nil {
		return nil, err
	}
	h.sub = sub
	b.handles[sub.ID] = h
	return h, nil
}

// Chan returns the delivery channel. It is closed when the broker shuts
// down. After Unsubscribe the channel stops receiving new messages but is
// left open; use Receive, which also observes unsubscription.
func (s *Subscriber) Chan() <-chan *jms.Message { return s.ch }

// Receive blocks for the next message. It returns ErrClosed after the
// subscriber was unsubscribed or the broker shut down, and
// ErrSlowConsumer (which wraps ErrClosed) after the broker force-removed
// the subscription under the disconnect slow-consumer policy.
func (s *Subscriber) Receive(ctx context.Context) (*jms.Message, error) {
	select {
	case m, ok := <-s.ch:
		if !ok {
			return nil, s.closeErr()
		}
		return m, nil
	case <-s.gone:
		return nil, s.closeErr()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Subscriber) closeErr() error {
	if s.slow.Load() {
		return ErrSlowConsumer
	}
	return ErrClosed
}

// Gone returns a channel closed when the subscription ends for any reason:
// Unsubscribe, broker shutdown, or a slow-consumer disconnect.
func (s *Subscriber) Gone() <-chan struct{} { return s.gone }

// SlowDisconnected reports whether the broker force-removed this
// subscription under the disconnect slow-consumer policy.
func (s *Subscriber) SlowDisconnected() bool { return s.slow.Load() }

// Delivered returns the number of messages forwarded to this subscriber.
func (s *Subscriber) Delivered() uint64 { return s.delivered.Load() }

// ID returns the subscription ID (0 for durable consumer handles, whose
// identity is their durable name).
func (s *Subscriber) ID() topic.SubscriptionID {
	if s.sub == nil {
		return 0
	}
	return s.sub.ID
}

// Filter returns the installed filter.
func (s *Subscriber) Filter() filter.Filter {
	if s.durable != nil {
		return s.durable.fltr
	}
	return s.sub.Filter
}

// Unsubscribe removes the subscription. Messages already queued may be
// drained from Chan, but no new delivery is enqueued once Unsubscribe has
// returned; Receive returns ErrClosed. For a durable consumer handle this
// detaches the consumer — the durable subscription itself keeps
// accumulating messages until UnsubscribeDurable.
func (s *Subscriber) Unsubscribe() error {
	return s.unsubscribe(nil)
}

// UnsubscribeRequeue is Unsubscribe for an acked consumer: the unacked
// messages — delivered to the consumer but never acknowledged — are
// returned to the head of the durable backlog (in their original
// delivery order) before any residual still queued in the channel, so
// the next attach redelivers them. On a non-durable subscription the
// list is discarded (a disconnected non-durable subscriber is
// forgotten, unacked deliveries included).
func (s *Subscriber) UnsubscribeRequeue(unacked []*jms.Message) error {
	return s.unsubscribe(unacked)
}

func (s *Subscriber) unsubscribe(unacked []*jms.Message) error {
	var err error
	s.once.Do(func() {
		if s.durable != nil && len(unacked) > 0 {
			// Stash before closing gone: closing gone can make the
			// delivery goroutine run finish() immediately, and it must
			// observe the requeue list there.
			d := s.durable
			d.mu.Lock()
			if d.active == s {
				d.preRequeue = unacked
			}
			d.mu.Unlock()
		}
		close(s.gone)
		if s.durable != nil {
			s.broker.detachDurable(s)
			return
		}
		// Closing gone wakes a transmit blocked on this subscriber's full
		// queue; taking the send lock then waits out any transmit already
		// past its dead check, so after this point no dispatch — even one
		// holding an older topic snapshot — can deliver to this handle.
		s.sendMu.Lock()
		s.dead = true
		s.sendMu.Unlock()
		s.removeOnce.Do(func() { err = s.broker.removeSubscriber(s) })
	})
	return err
}

func (b *Broker) removeSubscriber(s *Subscriber) error {
	b.mu.Lock()
	if !b.closed {
		delete(b.handles, s.sub.ID)
	}
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil
	}
	return b.registry.Unsubscribe(s.sub.Topic, s.sub.ID)
}

// Stats returns a consistent snapshot of the broker counters: the write
// side of statsMu excludes every in-flight increment (all of which hold the
// read side), so the returned totals form a single cut — e.g. Dispatched
// can never exceed what Received accounts for at the same instant.
func (b *Broker) Stats() Stats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return Stats{
		Received:        b.received.Load(),
		Dispatched:      b.dispatched.Load(),
		FilterEvals:     b.filterEvals.Load(),
		Dropped:         b.dropped.Load(),
		Expired:         b.expired.Load(),
		SlowDropped:     b.slowDropped.Load(),
		SlowDisconnects: b.slowDisconnects.Load(),
	}
}

// EffectiveServers returns the number of parallel dispatch workers the
// engine runs per topic: 1 on EngineFaithful (the paper's single-server
// pipeline), Options.Shards on EngineFast. This is the k fed to the M/G/k
// drift model.
func (b *Broker) EffectiveServers() int {
	if b.opts.Engine == EngineFast {
		return b.opts.Shards
	}
	return 1
}

// NumFilters returns the total number of installed filters — the paper's
// n_fltr when a single topic is in use.
func (b *Broker) NumFilters() int { return b.registry.TotalSubscriptions() }

// Close shuts the broker down: publishers get ErrClosed, accepted messages
// are drained, dispatchers stop, and all subscriber channels are closed.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.closed = true
	dispatchers := make([]*dispatcher, 0, len(b.dispatchers))
	for _, d := range b.dispatchers {
		dispatchers = append(dispatchers, d)
	}
	handles := make([]*Subscriber, 0, len(b.handles))
	for _, h := range b.handles {
		handles = append(handles, h)
	}
	durables := make([]*durableSub, 0, len(b.durables))
	for _, d := range b.durables {
		durables = append(durables, d)
	}
	b.mu.Unlock()

	// 1. Stop dispatchers; they drain already-accepted messages.
	for _, d := range dispatchers {
		close(d.stop)
	}
	for _, d := range dispatchers {
		<-d.done
	}
	// 2. Stop durable pumps (they drain their relays, set pumpDone and
	//    wake delivery goroutines, which then drain best-effort and close
	//    their consumer channels).
	for _, d := range durables {
		d.signalStop()
	}
	b.wg.Wait()

	// 3. Close regular subscriber channels (dispatchers have exited, so
	//    no sender remains). Durable consumer channels are closed by
	//    their delivery goroutines.
	for _, h := range handles {
		h.once.Do(func() { close(h.gone) })
		close(h.ch)
	}
	return nil
}
