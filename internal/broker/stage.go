package broker

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/jms"
	"repro/internal/topic"
)

// This file defines the stage interfaces of the dispatch pipeline and their
// two implementations. Both engines are configurations of the same staged
// pipeline (see pipeline.go); what distinguishes them is the stage
// implementations plugged in here and the worker count:
//
//	stage       Eq. 1 term       EngineFaithful         EngineFast
//	─────────   ──────────────   ────────────────────   ─────────────────────
//	receive     t_rcv            shared (pipeline.go)   shared (pipeline.go)
//	match       n_fltr·t_fltr    linearMatcher          indexedMatcher
//	replicate   part of t_tx     cloneReplicator        cowReplicator
//	transmit    part of t_tx     queueTransmitter       queueTransmitter
//
// The faithful pair reproduces the measured FioranoMQ behaviour the paper
// models: a linear scan over every installed filter and a deep copy per
// replica. The fast pair is the optimized path of PR 1: hash-indexed,
// deduplicated matching over topic.FilterIndex and copy-on-write views.

// Matcher is the filter-matching stage of the dispatch pipeline — the
// n_fltr·t_fltr term of Eq. 1. A Matcher instance belongs to exactly one
// pipeline worker (it may keep per-worker scratch), so implementations need
// not be safe for concurrent use.
type Matcher interface {
	// Match appends the delivery handles of the subscribers matching m to
	// dst and returns the extended slice, the number of installed filters
	// visible to this match (the paper's n_fltr) and the number of filter
	// evaluations actually performed. For the faithful linear scan the two
	// numbers coincide; the indexed matcher evaluates fewer rules than are
	// installed.
	Match(t *topic.Topic, m *jms.Message, dst []*Subscriber) (matches []*Subscriber, nFilters, evals int)
}

// Replicator is the replication stage — the copy component of Eq. 1's
// per-receiver t_tx term. The pipeline calls it once per matching
// subscriber whenever a message has more than one receiver; a sole receiver
// gets the original message without a copy.
type Replicator interface {
	// Replicate returns the copy of m to forward to one subscriber.
	Replicate(m *jms.Message) *jms.Message
}

// Transmitter is the queue-handoff stage — the send component of Eq. 1's
// t_tx term. It enforces the delivery mode: persistent sends block on a
// full subscriber queue (publisher push-back propagates), non-persistent
// sends drop.
type Transmitter interface {
	// Transmit forwards one replica to one subscriber.
	Transmit(h *Subscriber, m *jms.Message, mode jms.DeliveryMode)
}

// linearMatcher is the faithful matching stage: every installed filter is
// checked for every message — the measured FioranoMQ behaviour (no
// optimization for identical filters, see §III-B of the paper).
type linearMatcher struct{}

func (linearMatcher) Match(t *topic.Topic, m *jms.Message, dst []*Subscriber) ([]*Subscriber, int, int) {
	subs, _ := t.Snapshot()
	for _, sub := range subs {
		if !sub.Filter.Matches(m) {
			continue
		}
		if h, ok := sub.Attachment.(*Subscriber); ok {
			dst = append(dst, h)
		}
	}
	return dst, len(subs), len(subs)
}

// indexedMatcher is the fast matching stage: a hash probe covers the exact
// correlation-ID population, identical rules are deduplicated, and only the
// remaining distinct rules are evaluated (topic.FilterIndex). The scratch
// slice makes steady-state matching allocation-free; it is per-worker
// state, which is why each worker gets its own Matcher.
type indexedMatcher struct {
	scratch []*topic.Subscription
}

func (x *indexedMatcher) Match(t *topic.Topic, m *jms.Message, dst []*Subscriber) ([]*Subscriber, int, int) {
	idx, _ := t.Index()
	var evals int
	x.scratch, evals = idx.Match(m, x.scratch[:0])
	for _, sub := range x.scratch {
		if h, ok := sub.Attachment.(*Subscriber); ok {
			dst = append(dst, h)
		}
	}
	return dst, idx.NumSubscriptions(), evals
}

// cloneReplicator is the faithful replication stage: a deep copy per
// replica, the R−1 clone cost the paper's t_tx includes.
type cloneReplicator struct{}

func (cloneReplicator) Replicate(m *jms.Message) *jms.Message { return m.Clone() }

// cowReplicator is the fast replication stage: copy-on-write views aliasing
// the received message's property section and body (jms.Message.Shared), so
// the per-replica cost is a small header copy instead of a deep clone.
type cowReplicator struct{}

func (cowReplicator) Replicate(m *jms.Message) *jms.Message { return m.Shared() }

// queueTransmitter is the standard transmit stage shared by both engines:
// a channel send into the subscriber's delivery queue, honoring the
// delivery mode. It serializes against Unsubscribe through the
// subscriber's send lock, so no delivery can be enqueued after Unsubscribe
// has returned.
type queueTransmitter struct {
	b *Broker
	d *dispatcher
}

func (tx queueTransmitter) Transmit(h *Subscriber, m *jms.Message, mode jms.DeliveryMode) {
	b, d := tx.b, tx.d
	h.sendMu.Lock()
	defer h.sendMu.Unlock()
	if h.dead {
		return
	}
	// Fast path: a non-blocking send avoids the multi-case select machinery
	// whenever the subscriber queue has room — the steady state of a
	// correctly-sized buffer, and the dominant per-replica cost at full
	// throughput.
	select {
	case h.ch <- m:
		h.delivered.Add(1)
		b.countAdd(&b.dispatched, 1)
		return
	default:
	}
	if mode == jms.Persistent {
		// The queue is full: apply the slow-consumer policy. Block is the
		// paper-faithful default (push-back propagates to publishers).
		switch b.opts.SlowConsumer {
		case SlowConsumerDropOldest:
			b.sendDropOldest(h, m)
			return
		case SlowConsumerDisconnect:
			b.kickSlow(h)
			return
		}
		select {
		case h.ch <- m:
			h.delivered.Add(1)
			b.countAdd(&b.dispatched, 1)
		case <-h.gone:
		case <-d.stop:
			// Broker closing: best effort, do not block shutdown.
			select {
			case h.ch <- m:
				h.delivered.Add(1)
				b.countAdd(&b.dispatched, 1)
			default:
				b.countAdd(&b.dropped, 1)
			}
		}
	} else {
		select {
		case h.ch <- m:
			h.delivered.Add(1)
			b.countAdd(&b.dispatched, 1)
		default:
			b.countAdd(&b.dropped, 1)
		}
	}
}

// batchTransmitter is the optional batched form of a Transmitter: one
// lock acquisition and one counter update for a run of replicas bound for
// the same subscriber — the transmit-stage analogue of the batch's single
// in-flight slot.
type batchTransmitter interface {
	TransmitBatch(h *Subscriber, msgs []*jms.Message, mode jms.DeliveryMode)
}

// TransmitBatch forwards a run of replicas to one subscriber under a
// single send lock, counting deliveries once. Semantics per message match
// Transmit exactly.
func (tx queueTransmitter) TransmitBatch(h *Subscriber, msgs []*jms.Message, mode jms.DeliveryMode) {
	b, d := tx.b, tx.d
	h.sendMu.Lock()
	defer h.sendMu.Unlock()
	if h.dead {
		return
	}
	sent := 0
	for _, m := range msgs {
		select {
		case h.ch <- m:
			sent++
			continue
		default:
		}
		if mode != jms.Persistent {
			b.countAdd(&b.dropped, 1)
			continue
		}
		switch b.opts.SlowConsumer {
		case SlowConsumerDropOldest:
			// Count the eviction-assisted send here; the shared counter
			// update below only covers plain sends.
			for {
				select {
				case h.ch <- m:
				default:
					select {
					case <-h.ch:
						b.countAdd(&b.slowDropped, 1)
					default:
					}
					continue
				}
				break
			}
			sent++
			continue
		case SlowConsumerDisconnect:
			// The handle is dead from here on; the rest of the batch is
			// undeliverable to it.
			if sent > 0 {
				h.delivered.Add(uint64(sent))
				b.countAdd(&b.dispatched, uint64(sent))
			}
			b.kickSlow(h)
			return
		}
		select {
		case h.ch <- m:
			sent++
		case <-h.gone:
		case <-d.stop:
			// Broker closing: best effort, do not block shutdown.
			select {
			case h.ch <- m:
				sent++
			default:
				b.countAdd(&b.dropped, 1)
			}
		}
	}
	if sent > 0 {
		h.delivered.Add(uint64(sent))
		b.countAdd(&b.dispatched, uint64(sent))
	}
}

// Engine selects the dispatch implementation of a Broker.
type Engine int

// Dispatch engines.
const (
	// EngineFaithful is the paper-faithful configuration and the default:
	// one dispatch worker per topic (the single message-processing resource
	// of the paper's model), the linear filter scan, and a deep Clone per
	// extra replica. All Table I / Fig. 4 reproductions depend on this
	// structure (Eq. 1) and must run on it.
	EngineFaithful Engine = iota
	// EngineFast is the optimized configuration: indexed filter matching
	// (hash table over exact correlation-ID filters, deduplicated
	// evaluation of identical rules), sharded match workers with
	// sequence-stamped handoff preserving per-publisher FIFO order, and
	// copy-on-write replication instead of deep clones.
	EngineFast
)

// engineNames maps flag names to engines, in declaration order.
var engineNames = []struct {
	name   string
	engine Engine
}{
	{"faithful", EngineFaithful},
	{"fast", EngineFast},
}

// EngineNames returns the valid engine flag names.
func EngineNames() []string {
	names := make([]string, len(engineNames))
	for i, e := range engineNames {
		names[i] = e.name
	}
	return names
}

// String returns the engine's flag name.
func (e Engine) String() string {
	for _, en := range engineNames {
		if en.engine == e {
			return en.name
		}
	}
	return "Engine(" + strconv.Itoa(int(e)) + ")"
}

// ParseEngine parses a -engine flag value. The error of an unknown value
// enumerates the valid engine names.
func ParseEngine(s string) (Engine, error) {
	for _, en := range engineNames {
		if en.name == s {
			return en.engine, nil
		}
	}
	return 0, fmt.Errorf("broker: unknown engine %q (valid engines: %s)",
		s, strings.Join(EngineNames(), ", "))
}

// stageSet is one engine's configuration of the pipeline stages.
type stageSet struct {
	// shards is the number of match workers; 1 selects the serial loop.
	shards int
	// newMatcher builds one matcher per worker (matchers hold scratch).
	newMatcher func() Matcher
	replicator Replicator
}

// stages returns the pipeline configuration of an engine.
func (b *Broker) stages(e Engine) stageSet {
	switch e {
	case EngineFast:
		return stageSet{
			shards:     b.opts.Shards,
			newMatcher: func() Matcher { return &indexedMatcher{} },
			replicator: cowReplicator{},
		}
	default:
		// The faithful engine is strictly serial: Eq. 1 models a single
		// message-processing resource.
		return stageSet{
			shards:     1,
			newMatcher: func() Matcher { return linearMatcher{} },
			replicator: cloneReplicator{},
		}
	}
}
