package broker_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// Example demonstrates the basic publish/subscribe cycle with a selector
// filter on an embedded broker.
func Example() {
	b := broker.New(broker.Options{})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("stock"); err != nil {
		log.Fatal(err)
	}

	f, err := filter.NewProperty("symbol = 'ACME' AND price > 100")
	if err != nil {
		log.Fatal(err)
	}
	sub, err := b.Subscribe("stock", f)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	quote := jms.NewMessage("stock")
	_ = quote.SetStringProperty("symbol", "ACME")
	_ = quote.SetFloat64Property("price", 101.5)
	if err := b.Publish(ctx, quote); err != nil {
		log.Fatal(err)
	}

	m, err := sub.Receive(ctx)
	if err != nil {
		log.Fatal(err)
	}
	price, _ := m.Float64Property("price")
	fmt.Printf("matched ACME at %.1f\n", price)
	// Output: matched ACME at 101.5
}

// ExampleBroker_SubscribeDurable shows the durable mode: a named
// subscription buffers matching messages while no consumer is attached.
func ExampleBroker_SubscribeDurable() {
	b := broker.New(broker.Options{})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("audit"); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Register and immediately detach.
	c, err := b.SubscribeDurable("audit", "ledger", nil, broker.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	_ = c.Unsubscribe()

	// Traffic while offline is buffered.
	m := jms.NewMessage("audit")
	_ = m.SetStringProperty("event", "login")
	if err := b.Publish(ctx, m); err != nil {
		log.Fatal(err)
	}
	for {
		if n, _, _ := b.DurableBacklog("audit", "ledger"); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Reattach: the backlog replays.
	c2, err := b.SubscribeDurable("audit", "ledger", nil, broker.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	got, err := c2.Receive(ctx)
	if err != nil {
		log.Fatal(err)
	}
	event, _ := got.StringProperty("event")
	fmt.Println("replayed:", event)
	// Output: replayed: login
}
