package broker

import (
	"sync"

	"repro/internal/jms"
	"repro/internal/topic"
)

// This file implements EngineFast: the opt-in dispatch path that removes
// the three bottlenecks the paper's model attributes to FioranoMQ.
//
// Pipeline per topic:
//
//	Publish → d.in → sequencer → workCh → worker×N → commitCh → committer
//
//   - The sequencer stamps every accepted message with a topic-local
//     sequence number, in channel-receive order. A single publisher's
//     messages enter d.in in program order, so sequence order is
//     consistent with per-publisher FIFO order.
//   - N workers evaluate filters concurrently against the topic's cached
//     FilterIndex (hash probe for exact correlation-ID filters, one
//     evaluation per distinct rule otherwise) — the parallel, indexed
//     replacement for the paper's single-threaded linear scan.
//   - The committer reorders results by sequence number before
//     transmitting, so subscribers observe per-publisher FIFO order even
//     though matching ran out of order, and hands all R matching
//     subscribers copy-on-write views of the one received message instead
//     of R−1 deep clones.
//
// Shutdown mirrors the faithful engine's persistent semantics: closing
// d.stop makes the sequencer drain d.in completely, the workers finish the
// drained work, and the committer flushes every sequence number before
// closing d.done.

// seqMsg is a sequence-stamped message on its way to a matching worker.
type seqMsg struct {
	seq uint64
	m   *jms.Message
}

// seqResult is one matched message awaiting in-order commit.
type seqResult struct {
	seq      uint64
	m        *jms.Message
	matches  []*Subscriber
	nFilters int
	expired  bool
}

// startFast launches the sharded dispatch pipeline for one topic.
func (b *Broker) startFast(d *dispatcher) {
	workCh := make(chan seqMsg, b.opts.InFlight)
	commitCh := make(chan seqResult, b.opts.InFlight)

	b.wg.Add(1)
	go b.sequenceLoop(d, workCh)

	var workers sync.WaitGroup
	workers.Add(b.opts.Shards)
	b.wg.Add(b.opts.Shards)
	for i := 0; i < b.opts.Shards; i++ {
		go b.matchLoop(d, workCh, commitCh, &workers)
	}
	go func() {
		workers.Wait()
		close(commitCh)
	}()

	b.wg.Add(1)
	go b.commitLoop(d, commitCh)
}

// sequenceLoop stamps accepted messages with the topic sequence number and
// hands them to the workers. On stop it drains d.in completely, preserving
// the no-loss guarantee for accepted messages.
func (b *Broker) sequenceLoop(d *dispatcher, workCh chan<- seqMsg) {
	defer b.wg.Done()
	defer close(workCh)
	var seq uint64
	for {
		select {
		case m := <-d.in:
			workCh <- seqMsg{seq: seq, m: m}
			seq++
		case <-d.stop:
			for {
				select {
				case m := <-d.in:
					workCh <- seqMsg{seq: seq, m: m}
					seq++
				default:
					return
				}
			}
		}
	}
}

// matchLoop is one dispatch shard: it evaluates the filter index against
// incoming messages concurrently with its siblings. Every sequence number
// it receives is forwarded to the committer, expired or not, so the
// committer's reorder window never stalls on a hole.
func (b *Broker) matchLoop(d *dispatcher, workCh <-chan seqMsg, commitCh chan<- seqResult, workers *sync.WaitGroup) {
	defer b.wg.Done()
	defer workers.Done()
	// scratch is this worker's reusable match buffer; matches handed to
	// the committer are copied out per message because they cross
	// goroutines.
	var scratch []*topic.Subscription
	for sm := range workCh {
		m := sm.m
		res := seqResult{seq: sm.seq, m: m}
		if obs := b.opts.WaitObserver; obs != nil && !m.Header.Timestamp.IsZero() {
			obs(b.now().Sub(m.Header.Timestamp))
		}
		if !m.Header.Expiration.IsZero() && m.Expired(b.now()) {
			res.expired = true
			commitCh <- res
			continue
		}
		idx, _ := d.topic.Index()
		var evals int
		scratch, evals = idx.Match(m, scratch[:0])
		b.filterEvals.Add(uint64(evals))
		res.nFilters = idx.NumSubscriptions()
		if len(scratch) > 0 {
			res.matches = make([]*Subscriber, 0, len(scratch))
			for _, sub := range scratch {
				if h, ok := sub.Attachment.(*Subscriber); ok {
					res.matches = append(res.matches, h)
				}
			}
		}
		commitCh <- res
	}
}

// commitLoop restores sequence order and transmits. It owns the reorder
// window: results arriving early wait in pending until every lower
// sequence number has been committed.
func (b *Broker) commitLoop(d *dispatcher, commitCh <-chan seqResult) {
	defer b.wg.Done()
	defer close(d.done)
	pending := make(map[uint64]seqResult)
	var next uint64
	for res := range commitCh {
		if res.seq != next {
			pending[res.seq] = res
			continue
		}
		b.commitOne(d, res)
		next++
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			b.commitOne(d, r)
			next++
		}
	}
}

// commitOne transmits one message's replicas in commit order. Replication
// is copy-on-write: each matching subscriber gets a Shared view aliasing
// the received message's property section and body, so the per-replica
// cost is a small header copy instead of a deep clone.
func (b *Broker) commitOne(d *dispatcher, res seqResult) {
	if res.expired {
		b.expired.Add(1)
		return
	}
	m := res.m
	for _, h := range res.matches {
		copyMsg := m
		if len(res.matches) > 1 {
			copyMsg = m.Shared()
		}
		b.transmit(d, h, copyMsg, m.Header.DeliveryMode)
	}
	if obs := b.opts.Observer; obs != nil {
		obs.ObserveDispatch(d.topic.Name(), res.nFilters, len(res.matches))
	}
}
