package broker

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/jms"
)

// TestBatchPublishMetamorphic pins the batching metamorphic relation on
// both engines: publishing N messages individually and publishing the same
// messages as batches (of mixed sizes) must yield identical per-subscriber
// delivery sequences — the same multiset AND the same order, since both
// legs are a single publisher and batches unfold in slice order. Batching
// is a transport optimization; it must be invisible to subscribers.
func TestBatchPublishMetamorphic(t *testing.T) {
	const (
		nSubs     = 40
		nMessages = 240
		seed      = 1234
	)

	rng := rand.New(rand.NewSource(seed))
	filters := make([]filter.Filter, nSubs)
	for i := range filters {
		filters[i] = metamorphicFilter(t, rng, true)
	}
	msgs := make([]*jms.Message, nMessages)
	for i := range msgs {
		msgs[i] = metamorphicMessage(t, rng, fmt.Sprintf("m%d", i))
	}
	// Mixed batch sizes covering the degenerate cases (1) and a size well
	// past the default compare point (16).
	var cuts []int
	for at := 0; at < nMessages; {
		size := 1 + rng.Intn(24)
		if at+size > nMessages {
			size = nMessages - at
		}
		at += size
		cuts = append(cuts, at)
	}

	expected := make([]int, nSubs)
	for i, f := range filters {
		for _, m := range msgs {
			if f.Matches(m) {
				expected[i]++
			}
		}
	}

	run := func(t *testing.T, engine Engine, shards int, batched bool) [][]string {
		t.Helper()
		b := New(Options{
			Engine:           engine,
			Shards:           shards,
			SubscriberBuffer: nMessages,
			InFlight:         64,
		})
		defer func() { _ = b.Close() }()
		if err := b.ConfigureTopic("t"); err != nil {
			t.Fatal(err)
		}
		subs := make([]*Subscriber, nSubs)
		for i, f := range filters {
			s, err := b.Subscribe("t", f)
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = s
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if batched {
			prev := 0
			for _, cut := range cuts {
				batch := make([]*jms.Message, 0, cut-prev)
				for _, m := range msgs[prev:cut] {
					batch = append(batch, m.Clone())
				}
				if err := b.PublishBatch(ctx, batch); err != nil {
					t.Fatal(err)
				}
				prev = cut
			}
		} else {
			for _, m := range msgs {
				if err := b.Publish(ctx, m.Clone()); err != nil {
					t.Fatal(err)
				}
			}
		}
		deadline := time.Now().Add(20 * time.Second)
		for i, s := range subs {
			for s.Delivered() != uint64(expected[i]) {
				if time.Now().After(deadline) {
					t.Fatalf("subscriber %d (%v): delivered %d, want %d",
						i, filters[i], s.Delivered(), expected[i])
				}
				time.Sleep(time.Millisecond)
			}
		}
		got := make([][]string, nSubs)
		for i, s := range subs {
			for len(s.Chan()) > 0 {
				got[i] = append(got[i], string((<-s.Chan()).Body))
			}
		}
		return got
	}

	for _, eng := range []struct {
		name   string
		engine Engine
		shards int
	}{
		{"faithful", EngineFaithful, 0},
		{"fast", EngineFast, 4},
	} {
		t.Run(eng.name, func(t *testing.T) {
			individual := run(t, eng.engine, eng.shards, false)
			batched := run(t, eng.engine, eng.shards, true)
			for i := range filters {
				if fmt.Sprint(individual[i]) != fmt.Sprint(batched[i]) {
					t.Errorf("subscriber %d (%v): batched delivery diverges\nindividual %v\nbatched    %v",
						i, filters[i], individual[i], batched[i])
				}
			}
		})
	}
}
