package broker_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
)

// TestUnsubscribeRacingDispatch races Subscriber.Unsubscribe against
// in-flight dispatches on both stage implementations and asserts the
// guarantee documented on Unsubscribe: once it has returned, not a single
// further delivery is enqueued on the handle — even by a dispatch that was
// already mid-pipeline, holding a topic snapshot that still contains the
// subscriber. Run under -race this also exercises the send-lock handoff
// between the transmit stage and Unsubscribe.
func TestUnsubscribeRacingDispatch(t *testing.T) {
	for _, engine := range engines {
		t.Run(engine.String(), func(t *testing.T) {
			const publishers = 4
			b := broker.New(broker.Options{
				Engine:           engine,
				Shards:           4,
				InFlight:         64,
				SubscriberBuffer: 1 << 16,
			})
			defer func() { _ = b.Close() }()
			if err := b.ConfigureTopic("t"); err != nil {
				t.Fatal(err)
			}
			// The victim is unsubscribed mid-stream; the canary stays and
			// serves as the progress barrier proving dispatches kept
			// flowing after the unsubscribe.
			victim, err := b.Subscribe("t", nil)
			if err != nil {
				t.Fatal(err)
			}
			canary, err := b.Subscribe("t", nil)
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for ctx.Err() == nil {
						if err := b.Publish(ctx, jms.NewMessage("t")); err != nil {
							return
						}
					}
				}()
			}

			// Let dispatches get in flight, then unsubscribe concurrently.
			for victim.Delivered() < 100 {
				time.Sleep(time.Millisecond)
			}
			if err := victim.Unsubscribe(); err != nil {
				t.Fatal(err)
			}
			frozen := victim.Delivered()

			// Barrier: wait until well over a pipeline's worth of further
			// messages reached the canary, so any dispatch that was
			// in flight during Unsubscribe has long been committed.
			target := canary.Delivered() + 2000
			deadline := time.Now().Add(5 * time.Second)
			for canary.Delivered() < target {
				if time.Now().After(deadline) {
					t.Fatalf("canary stalled at %d deliveries", canary.Delivered())
				}
				time.Sleep(time.Millisecond)
			}
			if got := victim.Delivered(); got != frozen {
				t.Errorf("victim received %d deliveries after Unsubscribe returned (had %d)", got-frozen, frozen)
			}
			cancel()
			wg.Wait()
		})
	}
}
