package broker_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

func publishSeq(t *testing.T, b *broker.Broker, pub, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		m := jms.NewMessage("t")
		if err := m.SetInt64Property("pub", int64(pub)); err != nil {
			t.Error(err)
			return
		}
		if err := m.SetInt64Property("seq", int64(i)); err != nil {
			t.Error(err)
			return
		}
		if err := b.Publish(ctx, m); err != nil {
			t.Errorf("publisher %d: %v", pub, err)
			return
		}
	}
}

// checkPerPublisherFIFO asserts that, per publisher, the received sequence
// numbers are exactly 0..count-1 in order.
func checkPerPublisherFIFO(t *testing.T, msgs []*jms.Message, publishers, perPublisher int) {
	t.Helper()
	nextSeq := make([]int64, publishers)
	for _, m := range msgs {
		pub, err := m.Int64Property("pub")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := m.Int64Property("seq")
		if err != nil {
			t.Fatal(err)
		}
		if seq != nextSeq[pub] {
			t.Fatalf("publisher %d: got seq %d, want %d (FIFO violated)", pub, seq, nextSeq[pub])
		}
		nextSeq[pub]++
	}
	for pub, n := range nextSeq {
		if n != int64(perPublisher) {
			t.Errorf("publisher %d: delivered %d messages, want %d", pub, n, perPublisher)
		}
	}
}

// engines enumerates both pipeline configurations; the shared FIFO/drain
// suite below must hold on each (the faithful engine ignores Shards and
// runs the serial loop, the fast engine runs the sharded reorder path).
var engines = []broker.Engine{broker.EngineFaithful, broker.EngineFast}

// TestPerPublisherFIFO checks that both engines preserve each publisher's
// send order at the subscriber — on the fast engine while matching runs on
// several workers concurrently.
func TestPerPublisherFIFO(t *testing.T) {
	for _, engine := range engines {
		t.Run(engine.String(), func(t *testing.T) {
			const publishers, perPublisher = 4, 250
			b := broker.New(broker.Options{
				Engine:           engine,
				Shards:           4,
				InFlight:         16,
				SubscriberBuffer: publishers * perPublisher,
			})
			defer func() { _ = b.Close() }()
			if err := b.ConfigureTopic("t"); err != nil {
				t.Fatal(err)
			}
			sub, err := b.Subscribe("t", nil)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					publishSeq(t, b, p, perPublisher)
				}(p)
			}
			var msgs []*jms.Message
			ctx := context.Background()
			for len(msgs) < publishers*perPublisher {
				m, err := sub.Receive(ctx)
				if err != nil {
					t.Fatal(err)
				}
				msgs = append(msgs, m)
			}
			wg.Wait()
			checkPerPublisherFIFO(t, msgs, publishers, perPublisher)
		})
	}
}

// TestFIFOThroughShutdownDrain fills the pipeline, closes the broker, and
// checks that every accepted message is delivered in per-publisher FIFO
// order by the shutdown drain, on both engines.
func TestFIFOThroughShutdownDrain(t *testing.T) {
	for _, engine := range engines {
		t.Run(engine.String(), func(t *testing.T) {
			const publishers, perPublisher = 4, 200
			b := broker.New(broker.Options{
				Engine:           engine,
				Shards:           4,
				InFlight:         publishers * perPublisher,
				SubscriberBuffer: publishers * perPublisher,
			})
			if err := b.ConfigureTopic("t"); err != nil {
				t.Fatal(err)
			}
			sub, err := b.Subscribe("t", nil)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					publishSeq(t, b, p, perPublisher)
				}(p)
			}
			wg.Wait()
			// All messages are accepted; many still sit in the pipeline.
			// Close must drain them all before the subscriber channel
			// closes.
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			var msgs []*jms.Message
			for m := range sub.Chan() {
				msgs = append(msgs, m)
			}
			checkPerPublisherFIFO(t, msgs, publishers, perPublisher)
		})
	}
}

// TestFastEngineCopyOnWriteDelivery checks copy-on-write replication: all
// matching subscribers receive views sharing the published message's body,
// and a publisher mutating its original afterwards does not affect them.
// Run under -race this also proves the concurrent-reader safety.
func TestFastEngineCopyOnWriteDelivery(t *testing.T) {
	const replicas = 4
	b := broker.New(broker.Options{Engine: broker.EngineFast})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	subs := make([]*broker.Subscriber, replicas)
	for i := range subs {
		s, err := b.Subscribe("t", nil)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}

	orig := jms.NewMessage("t")
	if err := orig.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	orig.SetBody([]byte("payload"))
	if err := b.Publish(context.Background(), orig); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	views := make([]*jms.Message, replicas)
	for i, s := range subs {
		m, err := s.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = m
	}
	// Copy-on-write, not deep copy: the replicas alias the original body.
	for i, v := range views {
		if &v.Body[0] != &orig.Body[0] {
			t.Errorf("replica %d: body not aliased (deep copy?)", i)
		}
	}

	// The publisher mutates its original while subscribers read views.
	var wg sync.WaitGroup
	for _, v := range views {
		wg.Add(1)
		go func(v *jms.Message) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if got, _ := v.StringProperty("user"); got != "alice" {
					t.Errorf("view observed mutation: user = %q", got)
					return
				}
				if string(v.Body) != "payload" {
					t.Error("view body changed")
					return
				}
			}
		}(v)
	}
	for i := 0; i < 500; i++ {
		if err := orig.SetStringProperty("user", fmt.Sprintf("bob-%d", i)); err != nil {
			t.Fatal(err)
		}
		orig.SetBody([]byte("replaced"))
	}
	wg.Wait()
}

// TestFastEngineFiltering checks that the indexed match agrees with the
// linear scan across the filter families, including expired messages.
func TestFastEngineFiltering(t *testing.T) {
	b := broker.New(broker.Options{Engine: broker.EngineFast})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	exact, err := filter.NewCorrelationID("#7")
	if err != nil {
		t.Fatal(err)
	}
	glob, err := filter.NewCorrelationID("#*")
	if err != nil {
		t.Fatal(err)
	}
	other, err := filter.NewCorrelationID("#8")
	if err != nil {
		t.Fatal(err)
	}
	sExact, err := b.Subscribe("t", exact)
	if err != nil {
		t.Fatal(err)
	}
	sGlob, err := b.Subscribe("t", glob)
	if err != nil {
		t.Fatal(err)
	}
	sOther, err := b.Subscribe("t", other)
	if err != nil {
		t.Fatal(err)
	}

	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("#7"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := b.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*broker.Subscriber{sExact, sGlob} {
		if _, err := s.Receive(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := sOther.Delivered(); got != 0 {
		t.Errorf("non-matching subscriber delivered %d messages", got)
	}
	stats := b.Stats()
	if stats.Dispatched != 2 {
		t.Errorf("Dispatched = %d, want 2", stats.Dispatched)
	}
	// Indexed matching: the exact population (#7, #8) costs one hash
	// probe and the glob one evaluation — 2 evals, not 3 as on the
	// faithful linear scan.
	if stats.FilterEvals != 2 {
		t.Errorf("FilterEvals = %d, want 2 (probe + glob)", stats.FilterEvals)
	}
}
