package broker

import "repro/internal/metrics"

// This file is the pipeline's per-stage instrumentation: one lock-cheap
// histogram per dispatch stage, shared by all topics of a broker. With
// Options.StageTiming enabled, every message contributes its per-stage
// times, making the Eq. 1 terms first-class measured quantities on the
// running system — the role the Linux tool "sar" plus offline fitting
// played in the authors' testbed:
//
//	t_rcv  ≈ Receive.Mean()
//	t_fltr ≈ Match.Sum / FilterEvals   (time per filter evaluation)
//	t_tx   ≈ (Replicate.Sum + Transmit.Sum) / Dispatched
//
// internal/bench turns windowed snapshots of these histograms into live
// fit.Observation-style stage estimates (jmsbench -stages).

// stageTimers holds the per-stage histograms of one broker.
type stageTimers struct {
	receive   metrics.Histogram
	match     metrics.Histogram
	replicate metrics.Histogram
	transmit  metrics.Histogram
}

// StageStats is a snapshot of the per-stage dispatch timings.
type StageStats struct {
	// Enabled reports whether Options.StageTiming was set; all snapshots
	// are zero when it was not.
	Enabled bool
	// Receive is timed once per message as the residual of the full
	// per-message loop iteration after the other stages' time is
	// subtracted: dequeue bookkeeping, waiting-time observation,
	// expiration check, counters — every fixed per-message cost, which is
	// what the paper's throughput-derived t_rcv measures (Eq. 1's t_rcv).
	Receive metrics.HistogramSnapshot
	// Match is timed once per non-expired message: the whole filter-scan
	// or index probe (Eq. 1's n_fltr·t_fltr; divide Sum by the filter
	// evaluations of the same window for t_fltr).
	Match metrics.HistogramSnapshot
	// Replicate is timed once per copy made (messages with a single
	// receiver forward the original without a copy).
	Replicate metrics.HistogramSnapshot
	// Transmit is timed once per delivered replica; together with
	// Replicate it forms Eq. 1's per-receiver t_tx.
	Transmit metrics.HistogramSnapshot
}

// Sub returns the windowed delta s - prev (see metrics.HistogramSnapshot.Sub).
func (s StageStats) Sub(prev StageStats) StageStats {
	return StageStats{
		Enabled:   s.Enabled,
		Receive:   s.Receive.Sub(prev.Receive),
		Match:     s.Match.Sub(prev.Match),
		Replicate: s.Replicate.Sub(prev.Replicate),
		Transmit:  s.Transmit.Sub(prev.Transmit),
	}
}

// StageStats returns a snapshot of the per-stage dispatch timings. Without
// Options.StageTiming the broker records nothing (the hot path stays free
// of clock reads) and the snapshot is zero with Enabled=false.
func (b *Broker) StageStats() StageStats {
	if b.timers == nil {
		return StageStats{}
	}
	return StageStats{
		Enabled:   true,
		Receive:   b.timers.receive.Snapshot(),
		Match:     b.timers.match.Snapshot(),
		Replicate: b.timers.replicate.Snapshot(),
		Transmit:  b.timers.transmit.Snapshot(),
	}
}
