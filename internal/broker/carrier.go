package broker

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/jms"
	"repro/internal/topic"
)

// BatchCarrier is the pooled unit that moves one published batch through
// the whole pipeline — intake, sequencing, match workers, ordered commit —
// with zero steady-state allocations. It bundles the message slice the
// caller fills (Msgs) with the match-stage scratch (member results and the
// subscriber backing array) that the sharded workers would otherwise
// allocate per batch.
//
// Ownership/recycle contract:
//
//   - Obtain a carrier with GetBatchCarrier, append to c.Msgs, and hand it
//     to Broker.PublishBatchCarrier.
//   - On a nil error the broker owns the carrier: the pipeline's committing
//     goroutine recycles it to the pool after the batch's last transmit.
//     The caller must not touch the carrier (or c.Msgs) again.
//   - On a non-nil error ownership stays with the caller, who may Release
//     it (after unrecording dedupe claims etc.) or retry.
//   - Only the carrier and its scratch recycle. The messages themselves are
//     never pooled: subscribers retain them indefinitely, so they stay
//     ordinary GC-owned values (the wire layer's MessageArena gives them
//     slab locality instead). Recycling zeroes every retained pointer so a
//     pooled carrier never pins the previous batch's messages.
type BatchCarrier struct {
	// Msgs is the batch, in publish order. The broker retains it until the
	// batch commits; like PublishBatch, neither the slice nor the messages
	// may be modified after a successful hand-off.
	Msgs []*jms.Message

	// members and buf are the match-stage scratch: one seqResult per
	// message, and the shared backing array match results are appended to.
	members []seqResult
	buf     []*Subscriber
}

// maxCarrierMsgs bounds what the carrier pool retains, mirroring the
// maxPooledBuffer policy of the wire buffer pool: recycling the occasional
// huge batch's carrier would pin its scratch.
const maxCarrierMsgs = 4096

var carrierPool = sync.Pool{New: func() any { return new(BatchCarrier) }}

// GetBatchCarrier returns a pooled, empty carrier.
func GetBatchCarrier() *BatchCarrier { return carrierPool.Get().(*BatchCarrier) }

// Release returns a caller-owned carrier to the pool. Only call it when
// PublishBatchCarrier returned an error (or the carrier was never handed
// off); after a successful publish the pipeline recycles the carrier.
func (c *BatchCarrier) Release() { c.recycle() }

// memberScratch returns the carrier's per-member result scratch, grown to n.
func (c *BatchCarrier) memberScratch(n int) []seqResult {
	if cap(c.members) < n {
		c.members = make([]seqResult, n)
	}
	return c.members[:n]
}

// subScratch returns the carrier's subscriber backing array, emptied.
func (c *BatchCarrier) subScratch(n int) []*Subscriber {
	if cap(c.buf) < n {
		c.buf = make([]*Subscriber, 0, n)
	}
	return c.buf[:0]
}

// recycle zeroes every pointer the carrier retains and returns it to the
// pool. Called by the pipeline's committing goroutine after the batch's
// last transmit (recycle-after-transmit), or by Release on error paths.
func (c *BatchCarrier) recycle() {
	if cap(c.Msgs) > maxCarrierMsgs {
		return
	}
	msgs := c.Msgs[:cap(c.Msgs)]
	for i := range msgs {
		msgs[i] = nil
	}
	c.Msgs = msgs[:0]
	members := c.members[:cap(c.members)]
	for i := range members {
		members[i] = seqResult{}
	}
	c.members = members[:0]
	buf := c.buf[:cap(c.buf)]
	for i := range buf {
		buf[i] = nil
	}
	c.buf = buf[:0]
	carrierPool.Put(c)
}

// PublishBatchCarrier is PublishBatch for a pooled carrier: the batch in
// c.Msgs is delivered as one dispatch unit and the carrier travels with it
// through the pipeline, to be recycled by the committing goroutine after
// the last transmit. See the BatchCarrier ownership contract.
//
// A batch spanning several topics falls back to PublishBatch's run
// splitting; the carrier is then abandoned to the GC (its scratch cannot be
// shared by concurrently dispatching units), which keeps the rare path
// correct and the common single-topic path allocation-free.
func (b *Broker) PublishBatchCarrier(ctx context.Context, c *BatchCarrier) error {
	msgs := c.Msgs
	switch len(msgs) {
	case 0:
		c.recycle()
		return nil
	case 1:
		if err := b.Publish(ctx, msgs[0]); err != nil {
			return err
		}
		c.recycle()
		return nil
	}
	name := msgs[0].Header.Topic
	for _, m := range msgs[1:] {
		if m.Header.Topic != name {
			// Multi-topic batch: split into runs, abandon the carrier.
			return b.PublishBatch(ctx, msgs)
		}
	}
	for _, m := range msgs {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	d, ok := b.dispatchers[name]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", topic.ErrNoSuchTopic, name)
	}
	if b.opts.WaitObserver != nil || d.tt != nil || b.opts.Tracer != nil {
		now := b.now()
		for _, m := range msgs {
			if b.opts.WaitObserver != nil && m.Header.Timestamp.IsZero() {
				m.Header.Timestamp = now
			}
			if d.tt != nil || b.opts.Tracer != nil {
				m.EnqueuedAt = now
			}
		}
	}
	select {
	case d.in <- pubUnit{batch: msgs, carrier: c}:
		b.countAdd(&b.received, uint64(len(msgs)))
		if d.tt != nil {
			d.tt.received.Add(uint64(len(msgs)))
			d.tt.batchM.ObserveValue(float64(len(msgs)))
		}
		return nil
	case <-d.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}
