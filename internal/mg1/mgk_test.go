package mg1

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestErlangFormulas(t *testing.T) {
	// B(1, a) = a/(1+a); C(1, a) = a.
	for _, a := range []float64{0.1, 0.5, 0.9} {
		b, err := ErlangB(1, a)
		if err != nil {
			t.Fatal(err)
		}
		if want := a / (1 + a); math.Abs(b-want) > 1e-12 {
			t.Errorf("ErlangB(1, %g) = %g, want %g", a, b, want)
		}
		c, err := ErlangC(1, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-a) > 1e-12 {
			t.Errorf("ErlangC(1, %g) = %g, want %g", a, c, a)
		}
	}
	// Hand-computed: B(2, 1) = 1/5, C(2, 1) = 1/3.
	if b, _ := ErlangB(2, 1); math.Abs(b-0.2) > 1e-12 {
		t.Errorf("ErlangB(2, 1) = %g, want 0.2", b)
	}
	if c, _ := ErlangC(2, 1); math.Abs(c-1.0/3) > 1e-12 {
		t.Errorf("ErlangC(2, 1) = %g, want 1/3", c)
	}
	// More servers at the same offered load wait less.
	prev := 1.0
	for k := 1; k <= 8; k++ {
		c, err := ErlangC(k, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if c >= prev {
			t.Errorf("ErlangC(%d, 0.8) = %g, not decreasing in k", k, c)
		}
		prev = c
	}
	if _, err := ErlangC(2, 2); !errors.Is(err, ErrUnstable) {
		t.Errorf("ErlangC at a == k: err = %v, want ErrUnstable", err)
	}
	if _, err := ErlangB(0, 1); !errors.Is(err, ErrParams) {
		t.Errorf("ErlangB(0, 1): err = %v, want ErrParams", err)
	}
}

// TestMGkCollapsesToPK pins the design invariant: at k = 1 the Lee–Longton
// approximation is not an approximation — it reproduces the
// Pollaczek–Khinchine mean (Eq. 4) and delay probability rho exactly, for
// any service distribution.
func TestMGkCollapsesToPK(t *testing.T) {
	cases := []struct {
		name string
		b    ServiceMoments
	}{
		{"deterministic", detMoments(0.4)},
		{"exponential", expMoments(0.4)},
		{"highvar", ServiceMoments{M1: 0.4, M2: 1.0, M3: 5.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lambda := 2.0 // rho = 0.8
			q1, err := NewQueue(lambda, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			qk, err := NewMGkQueue(lambda, 1, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := qk.MeanWait(), q1.MeanWait(); math.Abs(got-want) > 1e-12*want {
				t.Errorf("MeanWait k=1: %g, PK %g", got, want)
			}
			if got, want := qk.DelayProbability(), q1.Rho(); math.Abs(got-want) > 1e-12 {
				t.Errorf("DelayProbability k=1: %g, rho %g", got, want)
			}
			if got, want := qk.MeanQueueLength(), q1.MeanQueueLength(); math.Abs(got-want) > 1e-9*want {
				t.Errorf("MeanQueueLength k=1: %g, PK %g", got, want)
			}
		})
	}
}

// TestMGkExponentialIsMMk pins that with cv = 1 the approximation reduces
// to the exact M/M/k mean wait C(k, a)/(k·mu − λ).
func TestMGkExponentialIsMMk(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		b := expMoments(1.0)
		lambda := 0.85 * float64(k)
		q, err := NewMGkQueue(lambda, k, b)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ErlangC(k, lambda*b.M1)
		if err != nil {
			t.Fatal(err)
		}
		want := c / (float64(k)/b.M1 - lambda)
		if got := q.MeanWait(); math.Abs(got-want) > 1e-12*want {
			t.Errorf("k=%d: MeanWait = %g, M/M/k closed form %g", k, got, want)
		}
	}
}

func TestMGkValidation(t *testing.T) {
	b := expMoments(1.0)
	if _, err := NewMGkQueue(0, 2, b); !errors.Is(err, ErrParams) {
		t.Errorf("lambda=0: err = %v, want ErrParams", err)
	}
	if _, err := NewMGkQueue(1, 0, b); !errors.Is(err, ErrParams) {
		t.Errorf("k=0: err = %v, want ErrParams", err)
	}
	if _, err := NewMGkQueue(2.5, 2, b); !errors.Is(err, ErrUnstable) {
		t.Errorf("rho>1: err = %v, want ErrUnstable", err)
	}
	q, err := NewMGkQueue(3.0, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Rho(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Rho = %g, want 0.75", got)
	}
	if got := q.OfferedLoad(); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("OfferedLoad = %g, want 3", got)
	}
	if got, want := q.MeanResponse(), q.MeanWait()+1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanResponse = %g, want %g", got, want)
	}
}

// simMGk runs an event-driven FCFS M/G/k simulation: Poisson arrivals,
// service times drawn by draw, k servers, earliest-available assignment.
// Returns the average wait over n arrivals after a warmup prefix.
func simMGk(lambda float64, k, n int, rng *stats.RNG, draw func(*stats.RNG) float64) float64 {
	free := make([]float64, k) // next instant each server is idle
	now := 0.0
	var sum float64
	warm := n / 10
	counted := 0
	for i := 0; i < n+warm; i++ {
		now += rng.Exp(lambda)
		// FCFS: the job enters service when the earliest server frees up.
		minj := 0
		for j := 1; j < k; j++ {
			if free[j] < free[minj] {
				minj = j
			}
		}
		start := now
		if free[minj] > start {
			start = free[minj]
		}
		if i >= warm {
			sum += start - now
			counted++
		}
		free[minj] = start + draw(rng)
	}
	return sum / float64(counted)
}

// TestMGkAgainstSimulation checks the approximation against a k-server
// FCFS simulation for exponential (exact regime) and deterministic
// (approximate regime) service.
func TestMGkAgainstSimulation(t *testing.T) {
	n := 400000
	if testing.Short() {
		n = 80000
	}
	cases := []struct {
		name string
		b    ServiceMoments
		draw func(*stats.RNG) float64
		tol  float64
	}{
		{"exponential", expMoments(1.0), func(r *stats.RNG) float64 { return r.Exp(1) }, 0.05},
		{"deterministic", detMoments(1.0), func(*stats.RNG) float64 { return 1.0 }, 0.10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const k = 4
			lambda := 0.8 * k
			q, err := NewMGkQueue(lambda, k, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			got := simMGk(lambda, k, n, stats.NewRNG(1234), tc.draw)
			want := q.MeanWait()
			if rel := math.Abs(got-want) / want; rel > tc.tol {
				t.Errorf("simulated E[W] = %g, model %g (rel err %.1f%% > %.0f%%)",
					got, want, 100*rel, 100*tc.tol)
			}
		})
	}
}

func TestMGkGammaApprox(t *testing.T) {
	q, err := NewMGkQueue(3.2, 4, expMoments(1.0))
	if err != nil {
		t.Fatal(err)
	}
	d, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Rho(), q.DelayProbability(); math.Abs(got-want) > 1e-12 {
		t.Errorf("fitted delay probability = %g, want Erlang-C %g", got, want)
	}
	c0, err := d.CDF(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - q.DelayProbability(); math.Abs(c0-want) > 1e-9 {
		t.Errorf("CDF(0) = %g, want 1 - C = %g", c0, want)
	}
	prev := c0
	for _, ts := range []float64{0.1, 0.5, 1, 2, 5, 20} {
		p, err := d.CDF(ts)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Errorf("CDF not monotone at t=%g: %g < %g", ts, p, prev)
		}
		prev = p
	}
	if prev < 0.99 {
		t.Errorf("CDF(20) = %g, want ≈ 1", prev)
	}
	// The exponential conditional-wait fit is a Gamma with alpha = 1.
	alpha, beta := d.AlphaBeta()
	if math.Abs(alpha-1) > 1e-9 {
		t.Errorf("alpha = %g, want 1 (exponential conditional wait)", alpha)
	}
	m1, m2 := q.DelayedWaitMoments()
	if math.Abs(beta-m1) > 1e-9 || math.Abs(m2-2*m1*m1) > 1e-9 {
		t.Errorf("conditional moments: beta=%g m1=%g m2=%g", beta, m1, m2)
	}
}
