// M^X/G/1-∞ batch-arrival extension of the paper's waiting-time analysis.
//
// The paper's model (Eqs. 4–5) assumes one message per Poisson arrival.
// The batched publish path coalesces X >= 1 messages into one frame, so
// arrivals become Poisson batches at rate lambda_b and the per-message
// waiting time decomposes as
//
//	W = V + Y,
//
// where V is the waiting time of the whole batch — an M/G/1 wait at rate
// lambda_b whose "super-customer" service S_B is the sum of X i.i.d.
// message services — and Y is the service of the A batch-mates ahead of
// the tagged message in its own batch. V and Y are independent, which
// gives closed forms for E[W] and E[W^2] in terms of the first three
// moments of X and B, collapsing exactly to Eqs. 4–5 when X ≡ 1. The
// Gamma quantile approximation (Eqs. 19–20) carries over with the delay
// probability P(W > 0) = 1 - (1-rho)/E[X]: a message waits zero only if
// the server is idle AND it is first in its batch.
package mg1

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// BatchMoments are the first three raw moments of the batch size X, a
// random variable on {1, 2, ...}.
type BatchMoments struct {
	M1 float64 // E[X]
	M2 float64 // E[X^2]
	M3 float64 // E[X^3]
}

// Valid checks elementary moment consistency for a size distribution on
// {1, 2, ...}.
func (x BatchMoments) Valid() error {
	if x.M1 < 1 || x.M2 <= 0 || x.M3 <= 0 ||
		math.IsNaN(x.M1) || math.IsNaN(x.M2) || math.IsNaN(x.M3) {
		return fmt.Errorf("%w: batch moments %+v (E[X] must be >= 1)", ErrParams, x)
	}
	if x.M2 < x.M1*x.M1*(1-1e-12) {
		return fmt.Errorf("%w: E[X^2]=%g < E[X]^2=%g", ErrParams, x.M2, x.M1*x.M1)
	}
	return nil
}

// BatchDist is a batch-size distribution: exact moments for the closed
// forms and a sampler for the Lindley simulation leg.
type BatchDist interface {
	// Moments returns the first three raw moments of X.
	Moments() BatchMoments
	// Sample draws one batch size >= 1.
	Sample(rng *stats.RNG) int
}

// FixedBatch is the deterministic batch size X ≡ K — the saturated
// publisher that always fills its batch.
type FixedBatch struct{ K int }

// NewFixedBatch validates K >= 1.
func NewFixedBatch(k int) (FixedBatch, error) {
	if k < 1 {
		return FixedBatch{}, fmt.Errorf("%w: fixed batch size %d", ErrParams, k)
	}
	return FixedBatch{K: k}, nil
}

// Moments returns (K, K^2, K^3).
func (f FixedBatch) Moments() BatchMoments {
	k := float64(f.K)
	return BatchMoments{M1: k, M2: k * k, M3: k * k * k}
}

// Sample returns K.
func (f FixedBatch) Sample(*stats.RNG) int { return f.K }

// GeometricBatch is the geometric batch size on {1, 2, ...} with success
// probability P: P(X = k) = P(1-P)^(k-1) — the linger-flushed publisher
// whose batch grows until an independent per-slot stop.
type GeometricBatch struct{ P float64 }

// NewGeometricBatch validates P in (0, 1].
func NewGeometricBatch(p float64) (GeometricBatch, error) {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return GeometricBatch{}, fmt.Errorf("%w: geometric p=%g outside (0,1]", ErrParams, p)
	}
	return GeometricBatch{P: p}, nil
}

// Moments returns the raw moments of the shifted geometric law:
// E[X] = 1/p, E[X^2] = (2-p)/p^2, E[X^3] = (p^2 - 6p + 6)/p^3.
func (g GeometricBatch) Moments() BatchMoments {
	p := g.P
	return BatchMoments{
		M1: 1 / p,
		M2: (2 - p) / (p * p),
		M3: (p*p - 6*p + 6) / (p * p * p),
	}
}

// Sample draws by inverse transform: 1 + floor(ln U / ln(1-p)).
func (g GeometricBatch) Sample(rng *stats.RNG) int {
	if g.P >= 1 {
		return 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return 1 + int(math.Floor(math.Log(u)/math.Log(1-g.P)))
}

// UniformBatch is the uniform batch size on {1, ..., K} — a partially
// filled batch with no preferred fill level.
type UniformBatch struct{ K int }

// NewUniformBatch validates K >= 1.
func NewUniformBatch(k int) (UniformBatch, error) {
	if k < 1 {
		return UniformBatch{}, fmt.Errorf("%w: uniform batch bound %d", ErrParams, k)
	}
	return UniformBatch{K: k}, nil
}

// Moments returns the raw moments of the discrete uniform law on {1..K}:
// E[X] = (K+1)/2, E[X^2] = (K+1)(2K+1)/6, E[X^3] = K(K+1)^2/4.
func (u UniformBatch) Moments() BatchMoments {
	k := float64(u.K)
	return BatchMoments{
		M1: (k + 1) / 2,
		M2: (k + 1) * (2*k + 1) / 6,
		M3: k * (k + 1) * (k + 1) / 4,
	}
}

// Sample draws uniformly from {1, ..., K}.
func (u UniformBatch) Sample(rng *stats.RNG) int { return 1 + rng.Intn(u.K) }

// BatchQueue is an M^X/G/1-∞ queue: Poisson batch arrivals at rate
// LambdaB, i.i.d. batch sizes X with moments X, and i.i.d. per-message
// service times B served FIFO one message at a time.
type BatchQueue struct {
	LambdaB float64
	X       BatchMoments
	B       ServiceMoments
}

// NewBatchQueue validates the parameters and requires stability (rho < 1).
func NewBatchQueue(lambdaB float64, x BatchMoments, b ServiceMoments) (BatchQueue, error) {
	if lambdaB <= 0 || math.IsNaN(lambdaB) {
		return BatchQueue{}, fmt.Errorf("%w: lambdaB=%g", ErrParams, lambdaB)
	}
	if err := x.Valid(); err != nil {
		return BatchQueue{}, err
	}
	if err := b.Valid(); err != nil {
		return BatchQueue{}, err
	}
	q := BatchQueue{LambdaB: lambdaB, X: x, B: b}
	if q.Rho() >= 1 {
		return BatchQueue{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Rho())
	}
	return q, nil
}

// BatchQueueAtUtilization builds the queue with batch rate
// lambda_b = rho / (E[X] E[B]), the batched analogue of
// QueueAtUtilization.
func BatchQueueAtUtilization(rho float64, x BatchMoments, b ServiceMoments) (BatchQueue, error) {
	if rho <= 0 || rho >= 1 || math.IsNaN(rho) {
		return BatchQueue{}, fmt.Errorf("%w: rho=%g outside (0,1)", ErrParams, rho)
	}
	if err := x.Valid(); err != nil {
		return BatchQueue{}, err
	}
	if err := b.Valid(); err != nil {
		return BatchQueue{}, err
	}
	return BatchQueue{LambdaB: rho / (x.M1 * b.M1), X: x, B: b}, nil
}

// Lambda returns the per-message arrival rate lambda = lambda_b * E[X].
func (q BatchQueue) Lambda() float64 { return q.LambdaB * q.X.M1 }

// Rho returns the utilization rho = lambda * E[B]; messages are served
// one at a time, so utilization is insensitive to how they arrive.
func (q BatchQueue) Rho() float64 { return q.Lambda() * q.B.M1 }

// SuperMoments returns the service moments of the batch super-customer
// S_B = B_1 + ... + B_X (a random sum of X i.i.d. services):
//
//	E[S_B]   = E[X] E[B]
//	E[S_B^2] = E[X] E[B^2] + (E[X^2]-E[X]) E[B]^2
//	E[S_B^3] = E[X] E[B^3] + 3 (E[X^2]-E[X]) E[B^2] E[B]
//	           + (E[X^3]-3E[X^2]+2E[X]) E[B]^3
//
// An M/G/1 queue at rate LambdaB with this service is exactly the
// batch-level view of the M^X/G/1 queue.
func (q BatchQueue) SuperMoments() ServiceMoments {
	m1, m2, m3 := q.X.M1, q.X.M2, q.X.M3
	s1, s2, s3 := q.B.M1, q.B.M2, q.B.M3
	return ServiceMoments{
		M1: m1 * s1,
		M2: m1*s2 + (m2-m1)*s1*s1,
		M3: m1*s3 + 3*(m2-m1)*s2*s1 + (m3-3*m2+2*m1)*s1*s1*s1,
	}
}

// positionMoments returns the first two moments of A, the number of
// same-batch messages served ahead of a uniformly tagged message. With
// the size-biased batch law P(X'=k) = k P(X=k)/E[X] and A uniform on
// {0..X'-1},
//
//	E[A]   = (E[X^2]-E[X]) / (2 E[X])
//	E[A^2] = (2E[X^3]-3E[X^2]+E[X]) / (6 E[X]).
func (q BatchQueue) positionMoments() (ea, ea2 float64) {
	m1, m2, m3 := q.X.M1, q.X.M2, q.X.M3
	return (m2 - m1) / (2 * m1), (2*m3 - 3*m2 + m1) / (6 * m1)
}

// MeanWait returns E[W], the batched Pollaczek–Khinchine mean: Eq. 4's
// term plus the batch penalty paid for the batch-mates served first,
//
//	E[W] = lambda E[B^2] / (2(1-rho))
//	     + (E[X^2]-E[X]) E[B] / (2 E[X] (1-rho)).
//
// With X ≡ 1 the second term vanishes and Eq. 4 is recovered.
func (q BatchQueue) MeanWait() float64 {
	rho := q.Rho()
	return q.Lambda()*q.B.M2/(2*(1-rho)) +
		(q.X.M2-q.X.M1)*q.B.M1/(2*q.X.M1*(1-rho))
}

// WaitMoment2 returns E[W^2] via the independent decomposition W = V + Y:
// V is the batch's own M/G/1 wait (rate LambdaB, service SuperMoments),
// Y = B_1 + ... + B_A the intra-batch backlog, so
// E[W^2] = E[V^2] + 2 E[V] E[Y] + E[Y^2].
func (q BatchQueue) WaitMoment2() float64 {
	super := Queue{Lambda: q.LambdaB, B: q.SuperMoments()}
	ev := super.MeanWait()
	ev2 := super.WaitMoment2()
	ea, ea2 := q.positionMoments()
	s1, s2 := q.B.M1, q.B.M2
	ey := ea * s1
	ey2 := ea*s2 + (ea2-ea)*s1*s1
	return ev2 + 2*ev*ey + ey2
}

// WaitStdDev returns the standard deviation of W.
func (q BatchQueue) WaitStdDev() float64 {
	ew := q.MeanWait()
	v := q.WaitMoment2() - ew*ew
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// DelayProbability returns P(W > 0) = 1 - (1-rho)/E[X]: a message skips
// the queue only when the server is idle on arrival (probability 1-rho,
// PASTA at the batch level) and it is first in its batch (a uniformly
// tagged message is first with probability 1/E[X], independent of the
// queue state).
func (q BatchQueue) DelayProbability() float64 {
	return 1 - (1-q.Rho())/q.X.M1
}

// MeanResponse returns the mean sojourn time E[T] = E[W] + E[B].
func (q BatchQueue) MeanResponse() float64 { return q.MeanWait() + q.B.M1 }

// MeanQueueLength returns L_q = lambda * E[W] (Little's law).
func (q BatchQueue) MeanQueueLength() float64 { return q.Lambda() * q.MeanWait() }

// GammaApprox fits the Eqs. 19–20 two-part approximation with the batch
// delay probability in place of rho: the conditional moments of
// W1 = W | W > 0 are E[W^k] / P(W > 0), fitted by a Gamma law exactly as
// in the per-message model.
func (q BatchQueue) GammaApprox() (WaitDist, error) {
	pd := q.DelayProbability()
	if pd <= 0 {
		return WaitDist{}, fmt.Errorf("%w: delay probability %g", ErrParams, pd)
	}
	return fitWaitDist(pd, q.MeanWait()/pd, q.WaitMoment2()/pd)
}
