package mg1

import (
	"fmt"
	"math"
)

// This file extends the paper's single-server analysis to k parallel
// servers. The sharded EngineFast dispatch path behaves like k matching
// workers fed by one Poisson stream, which the M/GI/1 model structurally
// under-predicts: a message only waits when all shards are busy. The
// standard engineering approximation (Lee–Longton 1959, revived by Whitt's
// "Approximations for the GI/G/m queue") scales the M/M/k waiting time by
// the service-time variability:
//
//	E[W_{M/G/k}] ≈ (1 + cv²) / 2 · E[W_{M/M/k}]
//	E[W_{M/M/k}] = C(k, a) / (k/E[B] - λ),   a = λ·E[B]
//
// where C(k, a) is the Erlang-C delay probability. At k = 1 the formula
// collapses exactly to the Pollaczek–Khinchine mean of Eq. 4 — see
// TestMGkCollapsesToPK — so the k-server model is a strict generalization
// of Queue and the drift monitor can switch on the effective server count
// without a discontinuity.

// ErlangB returns the Erlang-B blocking probability B(k, a) for offered
// load a = λ·E[B] over k servers, via the standard stable recursion
// B(j) = a·B(j-1) / (j + a·B(j-1)).
func ErlangB(k int, a float64) (float64, error) {
	if k < 1 || a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("%w: ErlangB(k=%d, a=%g)", ErrParams, k, a)
	}
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return b, nil
}

// ErlangC returns the Erlang-C delay probability C(k, a): the probability
// that an arrival finds all k servers busy (and waits) in M/M/k with
// offered load a = λ·E[B]. Requires a < k for stability.
func ErlangC(k int, a float64) (float64, error) {
	if a >= float64(k) {
		return 0, fmt.Errorf("%w: offered load %g >= %d servers", ErrUnstable, a, k)
	}
	b, err := ErlangB(k, a)
	if err != nil {
		return 0, err
	}
	kf := float64(k)
	return kf * b / (kf - a*(1-b)), nil
}

// MGkQueue is the M/G/k approximation: Poisson arrivals at rate Lambda,
// general service with moments B, K homogeneous servers.
type MGkQueue struct {
	Lambda float64
	K      int
	B      ServiceMoments
}

// NewMGkQueue validates the parameters and the stability condition
// rho = λ·E[B]/k < 1.
func NewMGkQueue(lambda float64, k int, b ServiceMoments) (MGkQueue, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return MGkQueue{}, fmt.Errorf("%w: lambda=%g", ErrParams, lambda)
	}
	if k < 1 {
		return MGkQueue{}, fmt.Errorf("%w: k=%d servers", ErrParams, k)
	}
	if err := b.Valid(); err != nil {
		return MGkQueue{}, err
	}
	q := MGkQueue{Lambda: lambda, K: k, B: b}
	if q.Rho() >= 1 {
		return MGkQueue{}, fmt.Errorf("%w: rho=%g (k=%d)", ErrUnstable, q.Rho(), k)
	}
	return q, nil
}

// OfferedLoad returns a = λ·E[B], the work arriving per unit time in
// units of one server's capacity.
func (q MGkQueue) OfferedLoad() float64 { return q.Lambda * q.B.M1 }

// Rho returns the per-server utilization λ·E[B]/k.
func (q MGkQueue) Rho() float64 { return q.OfferedLoad() / float64(q.K) }

// DelayProbability returns P(W > 0) ≈ C(k, a), the Erlang-C probability
// that an arrival finds every server busy. (Exact for M/M/k; for general
// service this inherits the approximation's insensitivity assumption.)
func (q MGkQueue) DelayProbability() float64 {
	c, err := ErlangC(q.K, q.OfferedLoad())
	if err != nil {
		return 1 // unreachable after NewMGkQueue's stability check
	}
	return c
}

// MeanWait returns the Lee–Longton/Whitt approximation of E[W].
func (q MGkQueue) MeanWait() float64 {
	cv := q.B.CVar()
	mmk := q.DelayProbability() / (float64(q.K)/q.B.M1 - q.Lambda)
	return (1 + cv*cv) / 2 * mmk
}

// MeanResponse returns E[T] = E[W] + E[B].
func (q MGkQueue) MeanResponse() float64 { return q.MeanWait() + q.B.M1 }

// MeanQueueLength returns E[L] = λ·E[W] (Little).
func (q MGkQueue) MeanQueueLength() float64 { return q.Lambda * q.MeanWait() }

// DelayedWaitMoments returns approximate moments of W1 = W | W > 0. In
// M/M/k the conditional wait is exponential with mean E[W]/C(k, a); the
// M/G/k approximation keeps that shape (m2 = 2·m1²), consistent with
// scaling the whole conditional distribution by (1+cv²)/2.
func (q MGkQueue) DelayedWaitMoments() (m1, m2 float64) {
	m1 = q.MeanWait() / q.DelayProbability()
	return m1, 2 * m1 * m1
}

// GammaApprox fits Eq. 20's two-part waiting-time distribution with the
// Erlang-C delay probability in place of rho and the exponential
// conditional wait of the k-server approximation.
func (q MGkQueue) GammaApprox() (WaitDist, error) {
	m1, m2 := q.DelayedWaitMoments()
	return fitWaitDist(q.DelayProbability(), m1, m2)
}
