// Package mg1 implements the paper's M/GI/1-∞ waiting-time analysis
// (Section IV-B): Poisson message arrivals, a general service time B
// composed of a constant part D = t_rcv + n_fltr*t_fltr and a variable part
// V = R*t_tx (Eqs. 7–9), the Pollaczek–Khinchine moments of the waiting
// time (Eqs. 4–5), and the Gamma approximation of the waiting-time
// distribution of delayed messages (Eqs. 19–20) with its quantiles.
package mg1

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/replication"
	"repro/internal/specfunc"
)

// Errors returned by the analysis.
var (
	// ErrUnstable is returned when rho = lambda*E[B] >= 1.
	ErrUnstable = errors.New("mg1: utilization >= 1, queue unstable")
	// ErrParams is returned for invalid inputs.
	ErrParams = errors.New("mg1: invalid parameters")
)

// ServiceMoments are the first three raw moments of the service time B.
type ServiceMoments struct {
	M1 float64 // E[B]
	M2 float64 // E[B^2]
	M3 float64 // E[B^3]
}

// Valid checks elementary moment consistency.
func (s ServiceMoments) Valid() error {
	if s.M1 <= 0 || s.M2 <= 0 || s.M3 < 0 {
		return fmt.Errorf("%w: non-positive moments %+v", ErrParams, s)
	}
	if s.M2 < s.M1*s.M1*(1-1e-12) {
		return fmt.Errorf("%w: E[B^2]=%g < E[B]^2=%g", ErrParams, s.M2, s.M1*s.M1)
	}
	return nil
}

// CVar returns the coefficient of variation of B (Eq. 10).
func (s ServiceMoments) CVar() float64 {
	v := s.M2 - s.M1*s.M1
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v) / s.M1
}

// MomentsFromReplication evaluates Eqs. 7–9: the service-time moments for
// B = D + R*ttx with D the constant part and R the replication grade.
func MomentsFromReplication(d, ttx float64, r replication.Distribution) (ServiceMoments, error) {
	if d < 0 || ttx < 0 {
		return ServiceMoments{}, fmt.Errorf("%w: D=%g ttx=%g", ErrParams, d, ttx)
	}
	er := r.Mean()
	er2 := r.Moment2()
	er3 := r.Moment3()
	m := ServiceMoments{
		M1: d + er*ttx,
		M2: d*d + 2*d*ttx*er + ttx*ttx*er2,
		M3: d*d*d + 3*d*d*ttx*er + 3*d*ttx*ttx*er2 + ttx*ttx*ttx*er3,
	}
	if err := m.Valid(); err != nil {
		return ServiceMoments{}, err
	}
	return m, nil
}

// Family selects the replication-grade model used when fitting a service
// time to a target mean and coefficient of variation (Section IV-B.2).
type Family int

// Replication-grade families.
const (
	// DeterministicFamily is the constant replication grade.
	DeterministicFamily Family = iota + 1
	// ScaledBernoulliFamily is the all-or-nothing model.
	ScaledBernoulliFamily
	// BinomialFamily is the independent-filters model.
	BinomialFamily
)

// String names the family.
func (f Family) String() string {
	switch f {
	case DeterministicFamily:
		return "deterministic"
	case ScaledBernoulliFamily:
		return "scaled Bernoulli"
	case BinomialFamily:
		return "binomial"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// FitReplication performs the paper's parameter-study construction: given
// the constant part D, the per-copy cost ttx, a target mean service time
// meanB and target coefficient of variation cvarB, it computes the
// required E[R] from Eq. 7 and E[R^2] from Eq. 8, then instantiates the
// requested family so Eq. 9 supplies E[B^3].
func FitReplication(d, ttx, meanB, cvarB float64, fam Family) (replication.Distribution, error) {
	if ttx <= 0 || meanB <= 0 || cvarB < 0 || d < 0 {
		return nil, fmt.Errorf("%w: d=%g ttx=%g meanB=%g cvarB=%g", ErrParams, d, ttx, meanB, cvarB)
	}
	if meanB <= d {
		return nil, fmt.Errorf("%w: meanB=%g must exceed constant part D=%g", ErrParams, meanB, d)
	}
	er := (meanB - d) / ttx // Eq. 7 solved for E[R]
	m2B := meanB * meanB * (1 + cvarB*cvarB)
	er2 := (m2B - d*d - 2*d*ttx*er) / (ttx * ttx) // Eq. 8 solved for E[R^2]
	if er2 < er*er*(1-1e-9) {
		return nil, fmt.Errorf("%w: targets imply Var[R] < 0", ErrParams)
	}

	switch fam {
	case DeterministicFamily:
		if cvarB > 1e-9 {
			return nil, fmt.Errorf("%w: deterministic family requires cvarB = 0", ErrParams)
		}
		return replication.NewDeterministic(er)
	case ScaledBernoulliFamily:
		return replication.ScaledBernoulliFromMoments(er, er2)
	case BinomialFamily:
		// Var[R] = np(1-p), E[R] = np  =>  p = 1 - Var/E[R].
		variance := er2 - er*er
		p := 1 - variance/er
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("%w: targets imply binomial p=%g outside (0,1]", ErrParams, p)
		}
		n := int(math.Round(er / p))
		if n < 1 {
			n = 1
		}
		return replication.NewBinomial(n, p)
	default:
		return nil, fmt.Errorf("%w: unknown family %d", ErrParams, int(fam))
	}
}

// Queue is an M/GI/1-∞ queue: Poisson arrivals at rate Lambda, service
// moments B.
type Queue struct {
	Lambda float64
	B      ServiceMoments
}

// NewQueue validates the parameters and requires stability (rho < 1).
func NewQueue(lambda float64, b ServiceMoments) (Queue, error) {
	if lambda <= 0 || math.IsNaN(lambda) {
		return Queue{}, fmt.Errorf("%w: lambda=%g", ErrParams, lambda)
	}
	if err := b.Valid(); err != nil {
		return Queue{}, err
	}
	q := Queue{Lambda: lambda, B: b}
	if q.Rho() >= 1 {
		return Queue{}, fmt.Errorf("%w: rho=%g", ErrUnstable, q.Rho())
	}
	return q, nil
}

// QueueAtUtilization builds the queue with arrival rate lambda = rho/E[B],
// the parameterization of the paper's normalized figures.
func QueueAtUtilization(rho float64, b ServiceMoments) (Queue, error) {
	if rho <= 0 || rho >= 1 || math.IsNaN(rho) {
		return Queue{}, fmt.Errorf("%w: rho=%g outside (0,1)", ErrParams, rho)
	}
	if err := b.Valid(); err != nil {
		return Queue{}, err
	}
	return Queue{Lambda: rho / b.M1, B: b}, nil
}

// Rho returns the server utilization rho = lambda * E[B] (Eq. 6).
func (q Queue) Rho() float64 { return q.Lambda * q.B.M1 }

// MeanWait returns E[W] by Pollaczek–Khinchine (Eq. 4).
func (q Queue) MeanWait() float64 {
	return q.Lambda * q.B.M2 / (2 * (1 - q.Rho()))
}

// WaitMoment2 returns E[W^2] (Eq. 5).
func (q Queue) WaitMoment2() float64 {
	ew := q.MeanWait()
	return 2*ew*ew + q.Lambda*q.B.M3/(3*(1-q.Rho()))
}

// WaitStdDev returns the standard deviation of W.
func (q Queue) WaitStdDev() float64 {
	ew := q.MeanWait()
	v := q.WaitMoment2() - ew*ew
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// WaitingProbability returns P(W > 0) = rho for the M/GI/1 queue.
func (q Queue) WaitingProbability() float64 { return q.Rho() }

// MeanResponse returns the mean sojourn time E[T] = E[W] + E[B].
func (q Queue) MeanResponse() float64 { return q.MeanWait() + q.B.M1 }

// MeanQueueLength returns the mean number of waiting messages
// L_q = lambda * E[W] (Little's law) — the paper's "estimate on the
// required buffer space at the JMS server" in expectation terms.
func (q Queue) MeanQueueLength() float64 { return q.Lambda * q.MeanWait() }

// MeanInSystem returns the mean number of messages in the server
// L = lambda * E[T].
func (q Queue) MeanInSystem() float64 { return q.Lambda * q.MeanResponse() }

// BufferQuantile estimates the buffer space needed so that a message
// arriving at a p-quantile waiting time finds room: by Little's-law style
// scaling, roughly lambda * Q_p[W] messages wait ahead of it. This is the
// paper's use of the 99.99% quantile as a buffer-sizing estimate.
func (q Queue) BufferQuantile(p float64) (float64, error) {
	dist, err := q.GammaApprox()
	if err != nil {
		return 0, err
	}
	qp, err := dist.Quantile(p)
	if err != nil {
		return 0, err
	}
	return q.Lambda * qp, nil
}

// DelayedWaitMoments returns the first two moments of W1, the waiting time
// conditioned on messages that must wait (Eq. 19).
func (q Queue) DelayedWaitMoments() (m1, m2 float64) {
	rho := q.Rho()
	return q.MeanWait() / rho, q.WaitMoment2() / rho
}

// WaitDist is the Gamma approximation of the waiting-time distribution
// (Eq. 20): P(W <= t) = (1-rho) + rho * P(W1 <= t) with W1 ~ Gamma(alpha,
// beta) fitted to the delayed-call moments.
type WaitDist struct {
	rho   float64
	alpha float64
	beta  float64
	// det is set when W1 is (numerically) deterministic; the Gamma fit
	// degenerates and a unit step at m1 is used instead.
	det   bool
	detAt float64
}

// GammaApprox fits the waiting-time distribution of the queue.
func (q Queue) GammaApprox() (WaitDist, error) {
	m1, m2 := q.DelayedWaitMoments()
	return fitWaitDist(q.Rho(), m1, m2)
}

// fitWaitDist fits Eq. 20's two-part form to a delay probability pw =
// P(W > 0) and the first two moments (m1, m2) of the conditional wait
// W1 = W | W > 0. For the plain M/GI/1 queue pw is rho; the M^X/G/1
// batch extension supplies its own delay probability (batch.go).
func fitWaitDist(pw, m1, m2 float64) (WaitDist, error) {
	if m1 <= 0 {
		return WaitDist{}, fmt.Errorf("%w: E[W1]=%g", ErrParams, m1)
	}
	v := m2 - m1*m1
	if v <= 1e-300*m1*m1 {
		return WaitDist{rho: pw, det: true, detAt: m1}, nil
	}
	cvar2 := v / (m1 * m1)
	alpha := 1 / cvar2
	beta := m1 / alpha
	return WaitDist{rho: pw, alpha: alpha, beta: beta}, nil
}

// Rho returns the waiting probability of the fitted distribution.
func (d WaitDist) Rho() float64 { return d.rho }

// AlphaBeta returns the fitted Gamma parameters (0,0 in the degenerate
// deterministic case).
func (d WaitDist) AlphaBeta() (alpha, beta float64) { return d.alpha, d.beta }

// CDF returns P(W <= t) per Eq. 20.
func (d WaitDist) CDF(t float64) (float64, error) {
	if math.IsNaN(t) {
		return 0, fmt.Errorf("%w: t=NaN", ErrParams)
	}
	if t < 0 {
		return 0, nil
	}
	if d.det {
		if t >= d.detAt {
			return 1, nil
		}
		return 1 - d.rho, nil
	}
	p, err := specfunc.GammaP(d.alpha, t/d.beta)
	if err != nil {
		return 0, err
	}
	return (1 - d.rho) + d.rho*p, nil
}

// CCDF returns P(W > t), the complementary distribution plotted in
// Fig. 11.
func (d WaitDist) CCDF(t float64) (float64, error) {
	if math.IsNaN(t) {
		return 0, fmt.Errorf("%w: t=NaN", ErrParams)
	}
	if t < 0 {
		return 1, nil
	}
	if d.det {
		if t >= d.detAt {
			return 0, nil
		}
		return d.rho, nil
	}
	q, err := specfunc.GammaQ(d.alpha, t/d.beta)
	if err != nil {
		return 0, err
	}
	return d.rho * q, nil
}

// Quantile returns Q_p[W], the smallest t with P(W <= t) >= p (Section
// IV-B.5). For p <= 1-rho the quantile is 0: that fraction of messages
// does not wait at all.
func (d WaitDist) Quantile(p float64) (float64, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile p=%g outside [0,1)", ErrParams, p)
	}
	if p <= 1-d.rho {
		return 0, nil
	}
	pw1 := (p - (1 - d.rho)) / d.rho
	if d.det {
		return d.detAt, nil
	}
	x, err := specfunc.GammaPInv(d.alpha, pw1)
	if err != nil {
		return 0, err
	}
	return x * d.beta, nil
}

// MeanWaitNormalized returns E[W]/E[B] for utilization rho and service
// coefficient of variation cvarB — the closed form behind Fig. 10:
//
//	E[W]/E[B] = rho * (1 + cvarB^2) / (2 * (1 - rho)).
func MeanWaitNormalized(rho, cvarB float64) (float64, error) {
	if rho <= 0 || rho >= 1 || cvarB < 0 {
		return 0, fmt.Errorf("%w: rho=%g cvarB=%g", ErrParams, rho, cvarB)
	}
	return rho * (1 + cvarB*cvarB) / (2 * (1 - rho)), nil
}
