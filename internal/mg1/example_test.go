package mg1_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mg1"
	"repro/internal/replication"
)

// Example walks the paper's full analysis pipeline: Table I constants plus
// a binomial replication model give the service-time moments (Eqs. 7–9);
// the M/GI/1 queue yields the waiting-time mean and its 99.99% quantile
// via the Gamma approximation (Eqs. 4–5, 19–20).
func Example() {
	model := core.TableICorrelationID
	r, err := replication.NewBinomial(40, 0.25) // E[R] = 10
	if err != nil {
		log.Fatal(err)
	}
	const nFltr = 45

	moments, err := mg1.MomentsFromReplication(model.ConstantPart(nFltr), model.TTx, r)
	if err != nil {
		log.Fatal(err)
	}
	q, err := mg1.QueueAtUtilization(0.9, moments)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		log.Fatal(err)
	}
	q9999, err := dist.Quantile(0.9999)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("E[B]  = %.1f us (cvar %.3f)\n", moments.M1*1e6, moments.CVar())
	fmt.Printf("E[W]  = %.2f ms\n", q.MeanWait()*1e3)
	fmt.Printf("Q9999 = %.1f ms (%.0f service times)\n", q9999*1e3, q9999/moments.M1)
	// Output:
	// E[B]  = 486.8 us (cvar 0.096)
	// E[W]  = 2.21 ms
	// Q9999 = 21.4 ms (44 service times)
}
