package mg1

import (
	"errors"
	"math"
	"testing"

	"repro/internal/replication"
)

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return math.Abs(a-b) < tol
	}
	return math.Abs(a-b)/scale < tol
}

// expMoments returns the moments of an exponential service time with mean m.
func expMoments(m float64) ServiceMoments {
	return ServiceMoments{M1: m, M2: 2 * m * m, M3: 6 * m * m * m}
}

// detMoments returns the moments of a deterministic service time m.
func detMoments(m float64) ServiceMoments {
	return ServiceMoments{M1: m, M2: m * m, M3: m * m * m}
}

func TestMM1AgainstClosedForm(t *testing.T) {
	// For M/M/1, E[W] = rho/(1-rho) * E[B]; W is exponential with an atom:
	// P(W > t) = rho * exp(-(mu - lambda) t).
	const meanB = 0.01
	const rho = 0.9
	q, err := QueueAtUtilization(rho, expMoments(meanB))
	if err != nil {
		t.Fatal(err)
	}
	wantMean := rho / (1 - rho) * meanB
	if got := q.MeanWait(); !almost(got, wantMean, 1e-12) {
		t.Errorf("E[W] = %g, want %g", got, wantMean)
	}
	// E[W^2] for M/M/1: with W1 ~ Exp(mu - lambda), E[W1^2] = 2/(mu-lambda)^2;
	// E[W^2] = rho * E[W1^2].
	mu := 1 / meanB
	lambda := q.Lambda
	wantM2 := rho * 2 / ((mu - lambda) * (mu - lambda))
	if got := q.WaitMoment2(); !almost(got, wantM2, 1e-9) {
		t.Errorf("E[W^2] = %g, want %g", got, wantM2)
	}

	// The Gamma approximation is exact for exponential service times.
	dist, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	alpha, beta := dist.AlphaBeta()
	if !almost(alpha, 1, 1e-9) {
		t.Errorf("alpha = %g, want 1 (W1 exponential)", alpha)
	}
	if !almost(beta, 1/(mu-lambda), 1e-9) {
		t.Errorf("beta = %g, want %g", beta, 1/(mu-lambda))
	}
	for _, x := range []float64{0, 0.5, 1, 2, 5} {
		tt := x * wantMean
		got, err := dist.CCDF(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := rho * math.Exp(-(mu-lambda)*tt)
		if !almost(got, want, 1e-9) {
			t.Errorf("CCDF(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestMD1MeanWait(t *testing.T) {
	// M/D/1: E[W] = rho * E[B] / (2(1-rho)).
	const meanB = 2.0
	for _, rho := range []float64{0.1, 0.5, 0.9, 0.99} {
		q, err := QueueAtUtilization(rho, detMoments(meanB))
		if err != nil {
			t.Fatal(err)
		}
		want := rho * meanB / (2 * (1 - rho))
		if got := q.MeanWait(); !almost(got, want, 1e-12) {
			t.Errorf("rho=%g: E[W] = %g, want %g", rho, got, want)
		}
	}
}

func TestRhoAndStability(t *testing.T) {
	b := expMoments(1)
	q, err := NewQueue(0.5, b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Rho() != 0.5 || q.WaitingProbability() != 0.5 {
		t.Errorf("rho = %g", q.Rho())
	}
	if _, err := NewQueue(1.0, b); !errors.Is(err, ErrUnstable) {
		t.Errorf("rho=1 err = %v, want ErrUnstable", err)
	}
	if _, err := NewQueue(2.0, b); !errors.Is(err, ErrUnstable) {
		t.Errorf("rho=2 err = %v, want ErrUnstable", err)
	}
	if _, err := NewQueue(-1, b); !errors.Is(err, ErrParams) {
		t.Errorf("negative lambda err = %v", err)
	}
	if _, err := QueueAtUtilization(1.0, b); !errors.Is(err, ErrParams) {
		t.Errorf("rho=1 err = %v", err)
	}
	if _, err := NewQueue(0.5, ServiceMoments{M1: 1, M2: 0.5, M3: 1}); !errors.Is(err, ErrParams) {
		t.Errorf("inconsistent moments err = %v", err)
	}
}

func TestServiceMomentsFromReplicationEqs7to9(t *testing.T) {
	// Hand-check Eqs. 7-9 for a deterministic R.
	det, err := replication.NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	const d = 0.001
	const ttx = 0.0002
	m, err := MomentsFromReplication(d, ttx, det)
	if err != nil {
		t.Fatal(err)
	}
	b := d + 5*ttx
	if !almost(m.M1, b, 1e-12) || !almost(m.M2, b*b, 1e-12) || !almost(m.M3, b*b*b, 1e-12) {
		t.Errorf("moments = %+v, want powers of %g", m, b)
	}
	if m.CVar() != 0 {
		t.Errorf("CVar = %g, want 0", m.CVar())
	}

	// For a random R: verify against direct moment algebra using scaled
	// Bernoulli (closed-form E[R^k] = p n^k).
	sb, err := replication.NewScaledBernoulli(40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m, err = MomentsFromReplication(d, ttx, sb)
	if err != nil {
		t.Fatal(err)
	}
	er, er2, er3 := sb.Mean(), sb.Moment2(), sb.Moment3()
	if !almost(m.M1, d+er*ttx, 1e-12) {
		t.Errorf("M1 = %g", m.M1)
	}
	if !almost(m.M2, d*d+2*d*ttx*er+ttx*ttx*er2, 1e-12) {
		t.Errorf("M2 = %g", m.M2)
	}
	if !almost(m.M3, d*d*d+3*d*d*ttx*er+3*d*ttx*ttx*er2+ttx*ttx*ttx*er3, 1e-12) {
		t.Errorf("M3 = %g", m.M3)
	}
}

func TestFitReplicationRoundTrip(t *testing.T) {
	// Fit a scaled Bernoulli / binomial replication model to a target
	// (E[B], cvar) and verify the resulting service moments hit the target.
	const d = 0.0005
	const ttx = 1.7e-5
	const meanB = 0.002

	// Feasible cvar ranges differ per family: a binomial replication grade
	// has Var[R] <= E[R], which caps cvar[B] (the content of Fig. 9), while
	// scaled Bernoulli reaches much higher variability (Fig. 8).
	targets := map[Family][]float64{
		ScaledBernoulliFamily: {0.1, 0.2, 0.4},
		BinomialFamily:        {0.01, 0.03, 0.05},
	}
	for fam, cvars := range targets {
		for _, cvar := range cvars {
			r, err := FitReplication(d, ttx, meanB, cvar, fam)
			if err != nil {
				t.Fatalf("%v cvar=%g: %v", fam, cvar, err)
			}
			m, err := MomentsFromReplication(d, ttx, r)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(m.M1, meanB, 0.02) {
				t.Errorf("%v cvar=%g: fitted mean %g, want %g", fam, cvar, m.M1, meanB)
			}
			// Binomial n is rounded to an integer, so allow a small error.
			if !almost(m.CVar(), cvar, 0.05) {
				t.Errorf("%v: fitted cvar %g, want %g", fam, m.CVar(), cvar)
			}
		}
	}

	// Deterministic family needs cvar = 0.
	if _, err := FitReplication(d, ttx, meanB, 0.2, DeterministicFamily); !errors.Is(err, ErrParams) {
		t.Errorf("deterministic with cvar>0 err = %v", err)
	}
	r, err := FitReplication(d, ttx, meanB, 0, DeterministicFamily)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Mean(), (meanB-d)/ttx, 1e-9) {
		t.Errorf("deterministic fitted mean R = %g", r.Mean())
	}

	// meanB below the constant part is infeasible.
	if _, err := FitReplication(d, ttx, d/2, 0.1, BinomialFamily); !errors.Is(err, ErrParams) {
		t.Errorf("meanB < D err = %v", err)
	}
}

func TestFamilyString(t *testing.T) {
	if DeterministicFamily.String() != "deterministic" ||
		ScaledBernoulliFamily.String() != "scaled Bernoulli" ||
		BinomialFamily.String() != "binomial" {
		t.Error("Family.String mismatch")
	}
	if Family(9).String() != "Family(9)" {
		t.Error("unknown Family.String mismatch")
	}
}

func TestDelayedWaitMoments(t *testing.T) {
	q, err := QueueAtUtilization(0.9, expMoments(1))
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := q.DelayedWaitMoments()
	if !almost(m1, q.MeanWait()/0.9, 1e-12) {
		t.Errorf("E[W1] = %g", m1)
	}
	if !almost(m2, q.WaitMoment2()/0.9, 1e-12) {
		t.Errorf("E[W1^2] = %g", m2)
	}
}

func TestWaitDistBasicShape(t *testing.T) {
	q, err := QueueAtUtilization(0.9, expMoments(0.02))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	// CDF(0) = 1 - rho (the atom at zero).
	c0, err := dist.CDF(0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c0, 0.1, 1e-9) {
		t.Errorf("CDF(0) = %g, want 0.1", c0)
	}
	cc0, err := dist.CCDF(0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(cc0, 0.9, 1e-9) {
		t.Errorf("CCDF(0) = %g, want 0.9", cc0)
	}
	// Negative times.
	if c, _ := dist.CDF(-1); c != 0 {
		t.Error("CDF(-1) != 0")
	}
	if c, _ := dist.CCDF(-1); c != 1 {
		t.Error("CCDF(-1) != 1")
	}
	// Monotone CDF, CDF+CCDF = 1.
	prev := -1.0
	for x := 0.0; x < 20; x += 0.5 {
		tt := x * q.B.M1
		c, err := dist.CDF(tt)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := dist.CCDF(tt)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(c+cc, 1, 1e-9) {
			t.Errorf("CDF+CCDF = %g at t=%g", c+cc, tt)
		}
		if c < prev-1e-12 {
			t.Errorf("CDF not monotone at t=%g", tt)
		}
		prev = c
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	q, err := QueueAtUtilization(0.9, expMoments(0.02))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.9999} {
		x, err := dist.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := dist.CDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(back, p, 1e-6) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, back)
		}
	}
	// Below the atom, the quantile is 0.
	x, err := dist.Quantile(0.05)
	if err != nil || x != 0 {
		t.Errorf("Quantile(0.05) = %g, %v; want 0", x, err)
	}
	if _, err := dist.Quantile(1); !errors.Is(err, ErrParams) {
		t.Errorf("Quantile(1) err = %v", err)
	}
	if _, err := dist.Quantile(-0.1); !errors.Is(err, ErrParams) {
		t.Errorf("Quantile(-0.1) err = %v", err)
	}
}

func TestPaperQuantileBound(t *testing.T) {
	// Section IV-B.5: at rho = 0.9 the message waiting time stays below
	// 50*E[B] with probability 99.99% for the cvar values of the study.
	// The scaled Bernoulli family covers the full cvar range (Fig. 11
	// shows Bernoulli and binomial waiting distributions are nearly
	// indistinguishable).
	const d = 0.0005
	const ttx = 1.7e-5
	const meanB = 0.02
	for _, cvar := range []float64{0.0001, 0.2, 0.4} {
		r, err := FitReplication(d, ttx, meanB, cvar, ScaledBernoulliFamily)
		if err != nil {
			t.Fatalf("cvar=%g: %v", cvar, err)
		}
		m, err := MomentsFromReplication(d, ttx, r)
		if err != nil {
			t.Fatal(err)
		}
		q, err := QueueAtUtilization(0.9, m)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := q.GammaApprox()
		if err != nil {
			t.Fatal(err)
		}
		q9999, err := dist.Quantile(0.9999)
		if err != nil {
			t.Fatal(err)
		}
		// The paper reads "about 50*E[B]" off Fig. 12; allow the rounding
		// slack of a figure read-off while pinning the order of magnitude.
		if q9999 > 52*m.M1 {
			t.Errorf("cvar=%g: Q_0.9999 = %g = %.1f E[B], want <~ 50 E[B]",
				cvar, q9999, q9999/m.M1)
		}
		if q9999 < 20*m.M1 {
			t.Errorf("cvar=%g: Q_0.9999 = %.1f E[B], implausibly small", cvar, q9999/m.M1)
		}
	}
}

func TestQuantilesIncreaseWithCvarAndRho(t *testing.T) {
	// Fig. 12's qualitative content.
	quantile := func(rho, cvar float64) float64 {
		t.Helper()
		// Build consistent three-moment service times from a scaled
		// Bernoulli replication fit with no constant part.
		r, err := FitReplication(0, 0.001, 1, cvar, ScaledBernoulliFamily)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MomentsFromReplication(0, 0.001, r)
		if err != nil {
			t.Fatal(err)
		}
		q, err := QueueAtUtilization(rho, mm)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := q.GammaApprox()
		if err != nil {
			t.Fatal(err)
		}
		v, err := dist.Quantile(0.99)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(quantile(0.9, 0.4) > quantile(0.9, 0.1)) {
		t.Error("Q99 should increase with cvar at fixed rho")
	}
	if !(quantile(0.9, 0.2) > quantile(0.5, 0.2)) {
		t.Error("Q99 should increase with rho at fixed cvar")
	}
}

func TestDeterministicWaitDistDegenerate(t *testing.T) {
	// A (nearly) deterministic W1 falls back to a step distribution.
	d := WaitDist{rho: 0.5, det: true, detAt: 2}
	if c, _ := d.CDF(1); c != 0.5 {
		t.Errorf("CDF(1) = %g", c)
	}
	if c, _ := d.CDF(3); c != 1 {
		t.Errorf("CDF(3) = %g", c)
	}
	if c, _ := d.CCDF(1); c != 0.5 {
		t.Errorf("CCDF(1) = %g", c)
	}
	if x, _ := d.Quantile(0.9); x != 2 {
		t.Errorf("Quantile(0.9) = %g", x)
	}
}

func TestMeanWaitNormalizedFig10(t *testing.T) {
	// The closed form behind Fig. 10 and its consistency with the queue.
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		for _, cvar := range []float64{0, 0.2, 0.4, 0.65} {
			norm, err := MeanWaitNormalized(rho, cvar)
			if err != nil {
				t.Fatal(err)
			}
			want := rho * (1 + cvar*cvar) / (2 * (1 - rho))
			if !almost(norm, want, 1e-12) {
				t.Errorf("normalized wait(%g, %g) = %g", rho, cvar, norm)
			}
			// Consistency with a concrete queue at that cvar.
			m := ServiceMoments{M1: 1, M2: 1 + cvar*cvar, M3: 10}
			q, err := QueueAtUtilization(rho, m)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(q.MeanWait(), norm, 1e-9) {
				t.Errorf("queue mean wait %g != closed form %g", q.MeanWait(), norm)
			}
		}
	}
	if _, err := MeanWaitNormalized(1.2, 0); !errors.Is(err, ErrParams) {
		t.Error("rho > 1 accepted")
	}
}

func BenchmarkWaitQuantile(b *testing.B) {
	q, err := QueueAtUtilization(0.9, expMoments(0.02))
	if err != nil {
		b.Fatal(err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Quantile(0.9999); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLittlesLawQuantities(t *testing.T) {
	// M/M/1 closed forms: L = rho/(1-rho), Lq = rho^2/(1-rho).
	const meanB = 0.01
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		q, err := QueueAtUtilization(rho, expMoments(meanB))
		if err != nil {
			t.Fatal(err)
		}
		wantL := rho / (1 - rho)
		wantLq := rho * rho / (1 - rho)
		if got := q.MeanInSystem(); !almost(got, wantL, 1e-9) {
			t.Errorf("rho=%g: L = %g, want %g", rho, got, wantL)
		}
		if got := q.MeanQueueLength(); !almost(got, wantLq, 1e-9) {
			t.Errorf("rho=%g: Lq = %g, want %g", rho, got, wantLq)
		}
		if got := q.MeanResponse(); !almost(got, q.MeanWait()+meanB, 1e-12) {
			t.Errorf("rho=%g: E[T] = %g", rho, got)
		}
	}
}

func TestBufferQuantile(t *testing.T) {
	q, err := QueueAtUtilization(0.9, expMoments(0.02))
	if err != nil {
		t.Fatal(err)
	}
	buf9999, err := q.BufferQuantile(0.9999)
	if err != nil {
		t.Fatal(err)
	}
	// The buffer estimate must exceed the mean queue length substantially.
	if buf9999 <= q.MeanQueueLength() {
		t.Errorf("buffer estimate %g <= mean queue length %g", buf9999, q.MeanQueueLength())
	}
	if _, err := q.BufferQuantile(1.5); err == nil {
		t.Error("p > 1 accepted")
	}
}
