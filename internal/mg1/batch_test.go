package mg1

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestBatchDistMoments checks every closed-form moment formula against
// empirical sample moments of the same distribution's Sample method.
func TestBatchDistMoments(t *testing.T) {
	mustFixed := func(k int) BatchDist {
		d, err := NewFixedBatch(k)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	mustGeom := func(p float64) BatchDist {
		d, err := NewGeometricBatch(p)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	mustUnif := func(k int) BatchDist {
		d, err := NewUniformBatch(k)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := []struct {
		name string
		dist BatchDist
	}{
		{"fixed-1", mustFixed(1)},
		{"fixed-16", mustFixed(16)},
		{"geometric-0.25", mustGeom(0.25)},
		{"geometric-0.8", mustGeom(0.8)},
		{"uniform-7", mustUnif(7)},
		{"uniform-1", mustUnif(1)},
	}
	const samples = 500000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.dist.Moments()
			if err := m.Valid(); err != nil {
				t.Fatalf("Valid: %v", err)
			}
			rng := stats.NewRNG(17)
			var s1, s2, s3 float64
			for i := 0; i < samples; i++ {
				k := tc.dist.Sample(rng)
				if k < 1 {
					t.Fatalf("sample %d < 1", k)
				}
				x := float64(k)
				s1 += x
				s2 += x * x
				s3 += x * x * x
			}
			n := float64(samples)
			for _, chk := range []struct {
				name      string
				got, want float64
				tol       float64
			}{
				{"E[X]", s1 / n, m.M1, 0.01},
				{"E[X^2]", s2 / n, m.M2, 0.02},
				{"E[X^3]", s3 / n, m.M3, 0.04},
			} {
				if d := relDiff(chk.got, chk.want); d > chk.tol {
					t.Errorf("%s: empirical %g vs formula %g (rel %.3f > %.3f)",
						chk.name, chk.got, chk.want, d, chk.tol)
				}
			}
		})
	}
}

// TestBatchQueueCollapsesToMG1 pins the X ≡ 1 degeneration: every batch
// metric must equal the plain M/GI/1 queue's to floating-point accuracy.
func TestBatchQueueCollapsesToMG1(t *testing.T) {
	b := ServiceMoments{M1: 2e-3, M2: 6e-6, M3: 3e-8}
	q, err := NewQueue(350, b)
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewFixedBatch(1)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := NewBatchQueue(350, one.Moments(), b)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name         string
		plain, batch float64
	}{
		{"Lambda", q.Lambda, bq.Lambda()},
		{"Rho", q.Rho(), bq.Rho()},
		{"MeanWait", q.MeanWait(), bq.MeanWait()},
		{"WaitMoment2", q.WaitMoment2(), bq.WaitMoment2()},
		{"DelayProbability", q.WaitingProbability(), bq.DelayProbability()},
		{"MeanResponse", q.MeanResponse(), bq.MeanResponse()},
		{"MeanQueueLength", q.MeanQueueLength(), bq.MeanQueueLength()},
	}
	for _, c := range checks {
		if relDiff(c.plain, c.batch) > 1e-12 {
			t.Errorf("%s: plain %g vs batch %g", c.name, c.plain, c.batch)
		}
	}
	qd, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	bd, err := bq.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 0.9999} {
		qq, err1 := qd.Quantile(p)
		bb, err2 := bd.Quantile(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("quantile errors: %v %v", err1, err2)
		}
		if relDiff(qq, bb) > 1e-9 {
			t.Errorf("Quantile(%g): plain %g vs batch %g", p, qq, bb)
		}
	}
}

// TestBatchMeanWaitDecomposition asserts the two derivations of E[W]
// agree: the closed form (MeanWait) and the W = V + Y decomposition the
// second moment is built from must be the same number.
func TestBatchMeanWaitDecomposition(t *testing.T) {
	b := ServiceMoments{M1: 1e-3, M2: 2.5e-6, M3: 9e-9}
	dists := map[string]BatchDist{
		"fixed-8":        FixedBatch{K: 8},
		"geometric-0.2":  GeometricBatch{P: 0.2},
		"uniform-15":     UniformBatch{K: 15},
		"degenerate-one": FixedBatch{K: 1},
	}
	for name, dist := range dists {
		for _, rho := range []float64{0.3, 0.7, 0.95} {
			q, err := BatchQueueAtUtilization(rho, dist.Moments(), b)
			if err != nil {
				t.Fatalf("%s rho=%g: %v", name, rho, err)
			}
			super := Queue{Lambda: q.LambdaB, B: q.SuperMoments()}
			if err := super.B.Valid(); err != nil {
				t.Fatalf("%s rho=%g: super moments invalid: %v", name, rho, err)
			}
			ea, _ := q.positionMoments()
			decomposed := super.MeanWait() + ea*q.B.M1
			if d := relDiff(decomposed, q.MeanWait()); d > 1e-9 {
				t.Errorf("%s rho=%g: decomposition E[V]+E[Y]=%g vs closed form %g (rel %g)",
					name, rho, decomposed, q.MeanWait(), d)
			}
		}
	}
}

// TestBatchQueueVsSimulation is the tolerance-pinned table: for fixed,
// geometric and uniform batch laws over deterministic and exponential
// services, the M^X/G/1 closed forms must agree with a batched-arrival
// Lindley simulation — 3% on E[W] and the delay probability, 6% on
// Std[W], 15% on the Gamma-approximated 99th percentile (the same
// tolerance the per-message conformance families pin).
func TestBatchQueueVsSimulation(t *testing.T) {
	const meanB = 1e-3
	detService := func(*stats.RNG) float64 { return meanB }
	expService := func(rng *stats.RNG) float64 { return rng.Exp(1 / meanB) }
	detMoments := ServiceMoments{M1: meanB, M2: meanB * meanB, M3: meanB * meanB * meanB}
	expMoments := ServiceMoments{M1: meanB, M2: 2 * meanB * meanB, M3: 6 * meanB * meanB * meanB}

	cases := []struct {
		name    string
		dist    BatchDist
		service sim.ServiceSampler
		b       ServiceMoments
		rho     float64
	}{
		{"fixed-4/deterministic/0.7", FixedBatch{K: 4}, detService, detMoments, 0.7},
		{"fixed-16/exponential/0.6", FixedBatch{K: 16}, expService, expMoments, 0.6},
		{"geometric-0.25/deterministic/0.7", GeometricBatch{P: 0.25}, detService, detMoments, 0.7},
		{"geometric-0.25/exponential/0.5", GeometricBatch{P: 0.25}, expService, expMoments, 0.5},
		{"uniform-7/deterministic/0.8", UniformBatch{K: 7}, detService, detMoments, 0.8},
		{"uniform-7/exponential/0.7", UniformBatch{K: 7}, expService, expMoments, 0.7},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := BatchQueueAtUtilization(tc.rho, tc.dist.Moments(), tc.b)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.SimulateMXG1(sim.MXG1Config{
				LambdaB:   q.LambdaB,
				Batch:     tc.dist.Sample,
				Service:   tc.service,
				Customers: 400000,
				Warmup:    20000,
				Seed:      int64(1000 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			simMean, err := res.Waits.Mean()
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(simMean, q.MeanWait()); d > 0.03 {
				t.Errorf("E[W]: sim %g vs model %g (rel %.3f)", simMean, q.MeanWait(), d)
			}
			simStd, err := res.Waits.StdDev()
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(simStd, q.WaitStdDev()); d > 0.06 {
				t.Errorf("Std[W]: sim %g vs model %g (rel %.3f)", simStd, q.WaitStdDev(), d)
			}
			// Empirical delay probability: fraction of strictly positive waits.
			simDelay := 1 - res.Waits.FractionAtOrBelow(0)
			if d := math.Abs(simDelay - q.DelayProbability()); d > 0.03 {
				t.Errorf("P(W>0): sim %g vs model %g (abs %.3f)", simDelay, q.DelayProbability(), d)
			}
			dist, err := q.GammaApprox()
			if err != nil {
				t.Fatal(err)
			}
			q99, err := dist.Quantile(0.99)
			if err != nil {
				t.Fatal(err)
			}
			simQ99, err := res.Waits.Quantile(0.99)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(simQ99, q99); d > 0.15 {
				t.Errorf("Q99: sim %g vs Gamma approx %g (rel %.3f)", simQ99, q99, d)
			}
		})
	}
}

// TestBatchValidation covers the constructor guard rails.
func TestBatchValidation(t *testing.T) {
	b := ServiceMoments{M1: 1e-3, M2: 2e-6, M3: 8e-9}
	x := FixedBatch{K: 4}.Moments()
	if _, err := NewFixedBatch(0); err == nil {
		t.Error("NewFixedBatch(0) accepted")
	}
	if _, err := NewGeometricBatch(0); err == nil {
		t.Error("NewGeometricBatch(0) accepted")
	}
	if _, err := NewGeometricBatch(1.5); err == nil {
		t.Error("NewGeometricBatch(1.5) accepted")
	}
	if _, err := NewUniformBatch(0); err == nil {
		t.Error("NewUniformBatch(0) accepted")
	}
	if _, err := NewBatchQueue(0, x, b); err == nil {
		t.Error("NewBatchQueue(lambdaB=0) accepted")
	}
	if _, err := NewBatchQueue(1000, x, b); err == nil {
		t.Error("unstable batch queue accepted") // rho = 1000*4*1e-3 = 4
	}
	if _, err := NewBatchQueue(10, BatchMoments{M1: 0.5, M2: 1, M3: 1}, b); err == nil {
		t.Error("E[X] < 1 accepted")
	}
	if _, err := BatchQueueAtUtilization(1.2, x, b); err == nil {
		t.Error("rho > 1 accepted")
	}
	if g, err := NewGeometricBatch(1); err != nil || g.Sample(stats.NewRNG(1)) != 1 {
		t.Error("geometric p=1 must sample 1")
	}
}
