// Package jms implements the message model of the Java Messaging Service as
// used by the paper: a message consists of a fixed header section (including
// the 128-byte correlation ID), a user-defined property section with typed
// values, and an opaque payload.
//
// The model follows the JMS 1.1 specification closely enough that the two
// filter families studied in the paper — correlation-ID filters and
// application-property filters (message selectors) — operate on the same
// message anatomy as on a real JMS server.
package jms

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// MaxCorrelationIDLen is the maximum length of a correlation ID. The paper
// describes correlation IDs as "ordinary 128 byte strings".
const MaxCorrelationIDLen = 128

// DeliveryMode selects the JMS delivery mode of a message.
type DeliveryMode int

// Delivery modes. The paper studies the persistent but non-durable mode, so
// Persistent is the default used throughout this repository.
const (
	// NonPersistent messages may be lost on broker failure.
	NonPersistent DeliveryMode = iota + 1
	// Persistent messages are delivered reliably and in order.
	Persistent
)

// String returns the JMS name of the delivery mode.
func (m DeliveryMode) String() string {
	switch m {
	case NonPersistent:
		return "NON_PERSISTENT"
	case Persistent:
		return "PERSISTENT"
	default:
		return "DeliveryMode(" + strconv.Itoa(int(m)) + ")"
	}
}

// Valid reports whether m is a known delivery mode.
func (m DeliveryMode) Valid() bool {
	return m == NonPersistent || m == Persistent
}

// PropertyType enumerates the JMS property value types supported in the
// user-defined property header section.
type PropertyType int

// Supported property types, mirroring the JMS typed property accessors.
const (
	TypeBool PropertyType = iota + 1
	TypeInt32
	TypeInt64
	TypeFloat64
	TypeString
)

// String returns a human-readable name of the property type.
func (t PropertyType) String() string {
	switch t {
	case TypeBool:
		return "bool"
	case TypeInt32:
		return "int32"
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	default:
		return "PropertyType(" + strconv.Itoa(int(t)) + ")"
	}
}

// Property is a single typed value in the message property section.
type Property struct {
	Type PropertyType
	B    bool
	I    int64
	F    float64
	S    string
}

// Errors reported by the message model.
var (
	// ErrCorrelationIDTooLong is returned when a correlation ID exceeds
	// MaxCorrelationIDLen bytes.
	ErrCorrelationIDTooLong = errors.New("jms: correlation ID exceeds 128 bytes")
	// ErrBadPropertyName is returned for property names that are not valid
	// JMS identifiers.
	ErrBadPropertyName = errors.New("jms: invalid property name")
	// ErrNoSuchProperty is returned when a typed accessor misses.
	ErrNoSuchProperty = errors.New("jms: no such property")
	// ErrPropertyType is returned when a typed accessor finds a value of a
	// different type.
	ErrPropertyType = errors.New("jms: property has different type")
)

// Header carries the fixed JMS header fields relevant to this study.
type Header struct {
	// MessageID uniquely identifies the message within a broker.
	MessageID uint64
	// CorrelationID is the 128-byte application correlation string matched
	// by correlation-ID filters.
	CorrelationID string
	// Topic names the destination topic.
	Topic string
	// DeliveryMode is Persistent for all experiments in the paper.
	DeliveryMode DeliveryMode
	// Priority is the JMS priority (0..9); unused by the model but carried
	// for completeness.
	Priority int
	// Timestamp is the publisher-side send time.
	Timestamp time.Time
	// Expiration is the absolute expiry; zero means never.
	Expiration time.Time
	// TraceID is an optional end-to-end trace identifier carried through
	// the wire protocol and preserved across replication; zero means
	// untraced. Load tools stamp sampled messages with it to measure
	// publish→deliver latency without touching Timestamp (which the broker
	// uses for its own waiting-time accounting).
	TraceID uint64
}

// Message is a JMS message: header, property section, payload.
type Message struct {
	Header     Header
	properties map[string]Property
	// Body is the opaque payload. The paper's default body size is 0 bytes
	// (all information in the headers).
	Body []byte
	// shared is non-zero while the property section may be aliased by a
	// copy-on-write view (see Shared). The first mutation through a setter
	// copies the map before writing, so views never observe it.
	shared uint32
	// EnqueuedAt is the broker-local enqueue stamp: the instant the broker
	// accepted the message into its topic queue. It is not part of the wire
	// encoding; the dispatch pipeline reads it to measure the per-message
	// waiting time W (enqueue → dispatch start) and sojourn time (enqueue →
	// last transmit) of the paper's M/GI/1 analysis on the live system.
	EnqueuedAt time.Time
}

// NewMessage returns an empty persistent message for the given topic.
func NewMessage(topic string) *Message {
	return &Message{
		Header: Header{
			Topic:        topic,
			DeliveryMode: Persistent,
			Priority:     4, // JMS default priority
		},
	}
}

// SetCorrelationID sets the correlation ID, enforcing the 128-byte limit.
func (m *Message) SetCorrelationID(id string) error {
	if len(id) > MaxCorrelationIDLen {
		return fmt.Errorf("%w: %d bytes", ErrCorrelationIDTooLong, len(id))
	}
	m.Header.CorrelationID = id
	return nil
}

// validPropertyName reports whether name is a valid JMS identifier: a
// letter, '_' or '$' followed by letters, digits, '_' or '$'.
func validPropertyName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		isLetter := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == '$'
		isDigit := r >= '0' && r <= '9'
		if i == 0 && !isLetter {
			return false
		}
		if !isLetter && !isDigit {
			return false
		}
	}
	return true
}

func (m *Message) setProperty(name string, p Property) error {
	if !validPropertyName(name) {
		return fmt.Errorf("%w: %q", ErrBadPropertyName, name)
	}
	if atomic.LoadUint32(&m.shared) != 0 {
		// Copy-on-write: the map may be read concurrently through Shared
		// views, so detach before the first mutation.
		props := make(map[string]Property, len(m.properties)+1)
		for k, v := range m.properties {
			props[k] = v
		}
		m.properties = props
		atomic.StoreUint32(&m.shared, 0)
	} else if m.properties == nil {
		m.properties = make(map[string]Property, 4)
	}
	m.properties[name] = p
	return nil
}

// SetBoolProperty sets a boolean property.
func (m *Message) SetBoolProperty(name string, v bool) error {
	return m.setProperty(name, Property{Type: TypeBool, B: v})
}

// SetInt32Property sets a 32-bit integer property.
func (m *Message) SetInt32Property(name string, v int32) error {
	return m.setProperty(name, Property{Type: TypeInt32, I: int64(v)})
}

// SetInt64Property sets a 64-bit integer property.
func (m *Message) SetInt64Property(name string, v int64) error {
	return m.setProperty(name, Property{Type: TypeInt64, I: v})
}

// SetFloat64Property sets a floating-point property.
func (m *Message) SetFloat64Property(name string, v float64) error {
	return m.setProperty(name, Property{Type: TypeFloat64, F: v})
}

// SetStringProperty sets a string property.
func (m *Message) SetStringProperty(name string, v string) error {
	return m.setProperty(name, Property{Type: TypeString, S: v})
}

// Property returns the raw property and whether it exists.
func (m *Message) Property(name string) (Property, bool) {
	p, ok := m.properties[name]
	return p, ok
}

// BoolProperty returns a boolean property.
func (m *Message) BoolProperty(name string) (bool, error) {
	p, ok := m.properties[name]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrNoSuchProperty, name)
	}
	if p.Type != TypeBool {
		return false, fmt.Errorf("%w: %q is %v", ErrPropertyType, name, p.Type)
	}
	return p.B, nil
}

// Int64Property returns an integer property (either 32- or 64-bit).
func (m *Message) Int64Property(name string) (int64, error) {
	p, ok := m.properties[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchProperty, name)
	}
	if p.Type != TypeInt32 && p.Type != TypeInt64 {
		return 0, fmt.Errorf("%w: %q is %v", ErrPropertyType, name, p.Type)
	}
	return p.I, nil
}

// Float64Property returns a floating-point property.
func (m *Message) Float64Property(name string) (float64, error) {
	p, ok := m.properties[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchProperty, name)
	}
	if p.Type != TypeFloat64 {
		return 0, fmt.Errorf("%w: %q is %v", ErrPropertyType, name, p.Type)
	}
	return p.F, nil
}

// StringProperty returns a string property.
func (m *Message) StringProperty(name string) (string, error) {
	p, ok := m.properties[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchProperty, name)
	}
	if p.Type != TypeString {
		return "", fmt.Errorf("%w: %q is %v", ErrPropertyType, name, p.Type)
	}
	return p.S, nil
}

// PropertyNames returns the sorted names of all properties.
func (m *Message) PropertyNames() []string {
	if len(m.properties) == 0 {
		return nil
	}
	return m.AppendPropertyNames(make([]string, 0, len(m.properties)))
}

// AppendPropertyNames appends the property names to dst in sorted order
// and returns the extended slice. It is the allocation-free form of
// PropertyNames for hot paths that bring their own scratch: when dst has
// capacity for every name, nothing escapes to the heap (the wire encoder
// passes a stack array).
func (m *Message) AppendPropertyNames(dst []string) []string {
	base := len(dst)
	for name := range m.properties {
		dst = append(dst, name)
	}
	// Insertion sort instead of sort.Strings: the sort interface would
	// force dst onto the heap, and property sections are small.
	s := dst[base:]
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return dst
}

// NumProperties returns the number of properties.
func (m *Message) NumProperties() int { return len(m.properties) }

// ClearProperties removes all properties.
func (m *Message) ClearProperties() {
	m.properties = nil
	atomic.StoreUint32(&m.shared, 0)
}

// SetBody replaces the payload. Replacing the slice (rather than writing
// into Body) keeps existing Shared views intact: they retain the previous
// backing array.
func (m *Message) SetBody(b []byte) { m.Body = b }

// Clone returns a deep copy of the message. The broker replicates a message
// R times when dispatching it to R matching subscribers; Clone is the unit
// of that replication.
func (m *Message) Clone() *Message {
	c := &Message{Header: m.Header, EnqueuedAt: m.EnqueuedAt}
	if m.properties != nil {
		c.properties = make(map[string]Property, len(m.properties))
		for k, v := range m.properties {
			c.properties[k] = v
		}
	}
	if m.Body != nil {
		c.Body = make([]byte, len(m.Body))
		copy(c.Body, m.Body)
	}
	return c
}

// Shared returns a copy-on-write view of the message: a new Message whose
// header is an independent value copy but whose property section and body
// alias the original. It is the zero-copy unit of replication on the fast
// dispatch engine — all R matching subscribers can be handed views of one
// received message without the R−1 deep Clone copies.
//
// Safety contract: after Shared is called, mutating either the original or
// a view through the property setters (SetStringProperty etc.) or
// ClearProperties copies the property map first, so holders of other views
// never observe the change and concurrent readers do not race. Body bytes
// are aliased and must be treated as immutable; replace the payload with
// SetBody instead of writing into the Body slice. Shared itself must only
// be called once the message has been handed to the broker (the dispatcher
// is its sole owner at that point), mirroring Publish's contract that the
// caller stops mutating after publishing.
func (m *Message) Shared() *Message {
	atomic.StoreUint32(&m.shared, 1)
	return &Message{
		Header:     m.Header,
		properties: m.properties,
		Body:       m.Body,
		shared:     1,
		EnqueuedAt: m.EnqueuedAt,
	}
}

// Expired reports whether the message has expired at time now.
func (m *Message) Expired(now time.Time) bool {
	return !m.Header.Expiration.IsZero() && now.After(m.Header.Expiration)
}

// Validate checks the message invariants enforced by the broker on receive.
func (m *Message) Validate() error {
	if m.Header.Topic == "" {
		return errors.New("jms: message has no topic")
	}
	if len(m.Header.CorrelationID) > MaxCorrelationIDLen {
		return fmt.Errorf("%w: %d bytes", ErrCorrelationIDTooLong, len(m.Header.CorrelationID))
	}
	if !m.Header.DeliveryMode.Valid() {
		return fmt.Errorf("jms: invalid delivery mode %d", int(m.Header.DeliveryMode))
	}
	if m.Header.Priority < 0 || m.Header.Priority > 9 {
		return fmt.Errorf("jms: priority %d out of range [0,9]", m.Header.Priority)
	}
	for name := range m.properties {
		if !validPropertyName(name) {
			return fmt.Errorf("%w: %q", ErrBadPropertyName, name)
		}
	}
	return nil
}

// Size returns the approximate wire size of the message in bytes: header
// fields plus properties plus body. Used by the metrics subsystem to track
// network utilization the way the paper's testbed monitored it with sar.
func (m *Message) Size() int {
	size := 8 /* id */ + len(m.Header.CorrelationID) + len(m.Header.Topic) + 1 /* mode */ + 1 /* prio */ + 16 /* timestamps */ + 8 /* trace ID */
	for name, p := range m.properties {
		size += len(name) + 1
		switch p.Type {
		case TypeBool:
			size++
		case TypeInt32:
			size += 4
		case TypeInt64, TypeFloat64:
			size += 8
		case TypeString:
			size += len(p.S)
		}
	}
	return size + len(m.Body)
}
