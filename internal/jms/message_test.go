package jms

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewMessageDefaults(t *testing.T) {
	m := NewMessage("presence")
	if got := m.Header.Topic; got != "presence" {
		t.Errorf("Topic = %q, want %q", got, "presence")
	}
	if m.Header.DeliveryMode != Persistent {
		t.Errorf("DeliveryMode = %v, want Persistent", m.Header.DeliveryMode)
	}
	if m.Header.Priority != 4 {
		t.Errorf("Priority = %d, want 4", m.Header.Priority)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestSetCorrelationID(t *testing.T) {
	tests := []struct {
		name    string
		id      string
		wantErr error
	}{
		{name: "empty", id: ""},
		{name: "short", id: "#0"},
		{name: "exactly 128", id: strings.Repeat("x", 128)},
		{name: "too long", id: strings.Repeat("x", 129), wantErr: ErrCorrelationIDTooLong},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMessage("t")
			err := m.SetCorrelationID(tt.id)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("SetCorrelationID(%d bytes) = %v, want %v", len(tt.id), err, tt.wantErr)
			}
			if tt.wantErr == nil && m.Header.CorrelationID != tt.id {
				t.Errorf("CorrelationID = %q, want %q", m.Header.CorrelationID, tt.id)
			}
		})
	}
}

func TestDeliveryModeString(t *testing.T) {
	if got := Persistent.String(); got != "PERSISTENT" {
		t.Errorf("Persistent.String() = %q", got)
	}
	if got := NonPersistent.String(); got != "NON_PERSISTENT" {
		t.Errorf("NonPersistent.String() = %q", got)
	}
	if got := DeliveryMode(9).String(); got != "DeliveryMode(9)" {
		t.Errorf("DeliveryMode(9).String() = %q", got)
	}
	if DeliveryMode(0).Valid() {
		t.Error("DeliveryMode(0).Valid() = true, want false")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	m := NewMessage("t")
	if err := m.SetBoolProperty("online", true); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt32Property("device", 7); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt64Property("ts", 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := m.SetFloat64Property("lat", 49.78); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}

	if v, err := m.BoolProperty("online"); err != nil || v != true {
		t.Errorf("BoolProperty = %v, %v", v, err)
	}
	if v, err := m.Int64Property("device"); err != nil || v != 7 {
		t.Errorf("Int64Property(device) = %v, %v", v, err)
	}
	if v, err := m.Int64Property("ts"); err != nil || v != 1<<40 {
		t.Errorf("Int64Property(ts) = %v, %v", v, err)
	}
	if v, err := m.Float64Property("lat"); err != nil || v != 49.78 {
		t.Errorf("Float64Property = %v, %v", v, err)
	}
	if v, err := m.StringProperty("user"); err != nil || v != "alice" {
		t.Errorf("StringProperty = %v, %v", v, err)
	}
	if n := m.NumProperties(); n != 5 {
		t.Errorf("NumProperties = %d, want 5", n)
	}
}

func TestPropertyTypeMismatch(t *testing.T) {
	m := NewMessage("t")
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Int64Property("user"); !errors.Is(err, ErrPropertyType) {
		t.Errorf("Int64Property on string = %v, want ErrPropertyType", err)
	}
	if _, err := m.BoolProperty("user"); !errors.Is(err, ErrPropertyType) {
		t.Errorf("BoolProperty on string = %v, want ErrPropertyType", err)
	}
	if _, err := m.Float64Property("user"); !errors.Is(err, ErrPropertyType) {
		t.Errorf("Float64Property on string = %v, want ErrPropertyType", err)
	}
	if _, err := m.StringProperty("missing"); !errors.Is(err, ErrNoSuchProperty) {
		t.Errorf("StringProperty(missing) = %v, want ErrNoSuchProperty", err)
	}
}

func TestInvalidPropertyNames(t *testing.T) {
	m := NewMessage("t")
	for _, name := range []string{"", "1abc", "a-b", "a b", "a.b"} {
		if err := m.SetStringProperty(name, "v"); !errors.Is(err, ErrBadPropertyName) {
			t.Errorf("SetStringProperty(%q) = %v, want ErrBadPropertyName", name, err)
		}
	}
	for _, name := range []string{"a", "_a", "$a", "a1", "A_1$"} {
		if err := m.SetStringProperty(name, "v"); err != nil {
			t.Errorf("SetStringProperty(%q) = %v, want nil", name, err)
		}
	}
}

func TestPropertyNamesSorted(t *testing.T) {
	m := NewMessage("t")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := m.SetBoolProperty(name, true); err != nil {
			t.Fatal(err)
		}
	}
	got := m.PropertyNames()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("PropertyNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PropertyNames = %v, want %v", got, want)
		}
	}
	m.ClearProperties()
	if m.PropertyNames() != nil {
		t.Error("PropertyNames after Clear should be nil")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMessage("t")
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	m.Body = []byte{1, 2, 3}

	c := m.Clone()
	// Mutate the clone; original must be untouched.
	c.Body[0] = 99
	if err := c.SetStringProperty("user", "bob"); err != nil {
		t.Fatal(err)
	}
	c.Header.CorrelationID = "#1"

	if m.Body[0] != 1 {
		t.Error("Clone shares body with original")
	}
	if v, _ := m.StringProperty("user"); v != "alice" {
		t.Error("Clone shares properties with original")
	}
	if m.Header.CorrelationID != "#0" {
		t.Error("Clone shares header with original")
	}
}

func TestCloneEmpty(t *testing.T) {
	m := NewMessage("t")
	c := m.Clone()
	if c.Body != nil || c.NumProperties() != 0 {
		t.Error("Clone of empty message should be empty")
	}
}

func TestExpired(t *testing.T) {
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	m := NewMessage("t")
	if m.Expired(now) {
		t.Error("message with zero expiration must never expire")
	}
	m.Header.Expiration = now.Add(-time.Second)
	if !m.Expired(now) {
		t.Error("message past expiration should be expired")
	}
	m.Header.Expiration = now.Add(time.Second)
	if m.Expired(now) {
		t.Error("message before expiration should not be expired")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Message)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Message) {}},
		{name: "no topic", mutate: func(m *Message) { m.Header.Topic = "" }, wantErr: true},
		{name: "bad mode", mutate: func(m *Message) { m.Header.DeliveryMode = 0 }, wantErr: true},
		{name: "priority low", mutate: func(m *Message) { m.Header.Priority = -1 }, wantErr: true},
		{name: "priority high", mutate: func(m *Message) { m.Header.Priority = 10 }, wantErr: true},
		{
			name: "long corr id",
			mutate: func(m *Message) {
				m.Header.CorrelationID = strings.Repeat("y", 200)
			},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMessage("t")
			tt.mutate(m)
			err := m.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestSizeAccounting(t *testing.T) {
	m := NewMessage("topic")
	base := m.Size()
	if base <= 0 {
		t.Fatalf("Size = %d, want > 0", base)
	}
	m.Body = make([]byte, 100)
	if got := m.Size(); got != base+100 {
		t.Errorf("Size with 100B body = %d, want %d", got, base+100)
	}
	if err := m.SetStringProperty("k", "vvvv"); err != nil {
		t.Fatal(err)
	}
	// name(1) + tag(1) + value(4)
	if got := m.Size(); got != base+100+6 {
		t.Errorf("Size with property = %d, want %d", got, base+100+6)
	}
}

// TestClonePropertyIsolation is a property-based test: for any pair of
// property values written to a clone, the original's map is unaffected.
func TestClonePropertyIsolation(t *testing.T) {
	f := func(key string, origVal, cloneVal int64) bool {
		if !validPropertyName(key) {
			key = "k"
		}
		m := NewMessage("t")
		if err := m.SetInt64Property(key, origVal); err != nil {
			return false
		}
		c := m.Clone()
		if err := c.SetInt64Property(key, cloneVal); err != nil {
			return false
		}
		got, err := m.Int64Property(key)
		return err == nil && got == origVal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValidPropertyNameProperty checks that every accepted name consists
// only of identifier runes and starts with a non-digit.
func TestValidPropertyNameProperty(t *testing.T) {
	f := func(name string) bool {
		ok := validPropertyName(name)
		if !ok {
			return true // only validate accepted names
		}
		if name == "" {
			return false
		}
		first := rune(name[0])
		return first < '0' || first > '9'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedAliasingInvariants(t *testing.T) {
	m := NewMessage("t")
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	m.Body = []byte{1, 2, 3}

	v := m.Shared()
	// The view aliases body and properties but copies the header.
	if &v.Body[0] != &m.Body[0] {
		t.Error("Shared view must alias the body backing array")
	}
	if got, _ := v.StringProperty("user"); got != "alice" {
		t.Errorf("Shared view property = %q, want alice", got)
	}
	v.Header.CorrelationID = "#1"
	if m.Header.CorrelationID != "#0" {
		t.Error("Shared view shares header with original")
	}

	// Clone, by contrast, is deep: no body aliasing.
	c := m.Clone()
	if len(c.Body) > 0 && &c.Body[0] == &m.Body[0] {
		t.Error("Clone must not alias the body backing array")
	}

	// Copy-on-write: mutating the original is invisible in the view.
	if err := m.SetStringProperty("user", "bob"); err != nil {
		t.Fatal(err)
	}
	if got, _ := v.StringProperty("user"); got != "alice" {
		t.Errorf("view observed original's mutation: user = %q", got)
	}
	// ... and mutating a view is invisible in the original and siblings.
	v2 := m.Shared()
	if err := v2.SetStringProperty("user", "carol"); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.StringProperty("user"); got != "bob" {
		t.Errorf("original observed view's mutation: user = %q", got)
	}

	// SetBody detaches: views keep the old backing array.
	m.SetBody([]byte{9})
	if v.Body[0] != 1 {
		t.Error("SetBody on original must not touch the view's body")
	}
}

func TestSharedClearPropertiesDetaches(t *testing.T) {
	m := NewMessage("t")
	if err := m.SetInt64Property("k", 1); err != nil {
		t.Fatal(err)
	}
	v := m.Shared()
	m.ClearProperties()
	if _, err := v.Int64Property("k"); err != nil {
		t.Errorf("view lost property after original's ClearProperties: %v", err)
	}
	if err := m.SetInt64Property("k", 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Int64Property("k"); got != 1 {
		t.Errorf("view observed post-clear mutation: k = %d", got)
	}
}

// TestSharedConcurrentReaders exercises the copy-on-write guarantee under
// the race detector: subscribers read shared views while the publisher
// mutates its original through the setter methods.
func TestSharedConcurrentReaders(t *testing.T) {
	m := NewMessage("t")
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt64Property("seq", 7); err != nil {
		t.Fatal(err)
	}
	m.Body = []byte("payload")

	const readers = 8
	views := make([]*Message, readers)
	for i := range views {
		views[i] = m.Shared()
	}

	var wg sync.WaitGroup
	for _, v := range views {
		wg.Add(1)
		go func(v *Message) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if got, _ := v.StringProperty("user"); got != "alice" {
					t.Errorf("view user = %q, want alice", got)
					return
				}
				if got, _ := v.Int64Property("seq"); got != 7 {
					t.Errorf("view seq = %d, want 7", got)
					return
				}
				if string(v.Body) != "payload" {
					t.Error("view body changed")
					return
				}
			}
		}(v)
	}
	// The publisher mutates its original concurrently: the first setter
	// call copies the property map, so readers keep the old one.
	for i := 0; i < 1000; i++ {
		if err := m.SetStringProperty("user", "bob"); err != nil {
			t.Fatal(err)
		}
		if err := m.SetInt64Property("seq", int64(i)); err != nil {
			t.Fatal(err)
		}
		m.SetBody([]byte("replaced"))
	}
	wg.Wait()
}
