package topic

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/filter"
	"repro/internal/jms"
)

// FuzzInternMatch drives the interned, incrementally-maintained filter
// index with an arbitrary subscribe/unsubscribe script and checks the
// metamorphic relation that pins the whole store: for any message, the
// match set produced by Topic.Index must equal a linear scan of
// Topic.Snapshot with freshly compiled (non-interned) filters.
//
// Script grammar, one op per line:
//
//	c:<expr>   subscribe with a correlation-ID filter (exact/glob/range)
//	p:<expr>   subscribe with a JMS selector
//	a          subscribe match-all
//	u<n>       unsubscribe the n-th oldest live subscription (mod count)
//	!          rebuild the index now (interleaves rebuilds with churn)
//
// Lines that fail to compile are skipped, so the fuzzer is free to explore
// expression space without tripping over parse errors.
func FuzzInternMatch(f *testing.F) {
	f.Add("c:#0\nc:#0\nc:#1\na\np:prop = 1\nu0\nc:dev-*", "#0")
	f.Add("c:lit\n!\nu0\n!\nc:lit\nc:lit", "lit")
	f.Add("p:prop = 1\np:prop = 1\np:prop > 0\na\na\nu1\nu1", "#9")
	f.Add("c:id[3;9]\nc:id[3;9]\nc:id*\nu0\n!\nc:id[3;9]", "id5")
	f.Add("a\nu0\na\nu0\na", "")
	f.Add("c:x\nu9\nc:x\nu0\nu0\nc:x", "x")

	f.Fuzz(func(t *testing.T, script, probe string) {
		if len(script) > 4096 {
			return
		}
		r := NewRegistry()
		tp, err := r.Configure("t")
		if err != nil {
			t.Fatal(err)
		}
		// specs remembers the source text of every live subscription so the
		// reference scan below can recompile filters from scratch.
		type lineSpec struct {
			id   SubscriptionID
			kind byte
			expr string
		}
		var live []lineSpec
		installed := 0
		for _, line := range strings.Split(script, "\n") {
			if installed > 512 {
				break
			}
			switch {
			case line == "a":
				s, err := r.Subscribe("t", nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, lineSpec{id: s.ID, kind: 'a'})
				installed++
			case line == "!":
				tp.Index()
			case strings.HasPrefix(line, "c:"):
				cf, err := filter.NewCorrelationID(line[2:])
				if err != nil {
					continue
				}
				s, err := r.Subscribe("t", cf, nil)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, lineSpec{id: s.ID, kind: 'c', expr: line[2:]})
				installed++
			case strings.HasPrefix(line, "p:"):
				pf, err := filter.NewProperty(line[2:])
				if err != nil {
					continue
				}
				s, err := r.Subscribe("t", pf, nil)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, lineSpec{id: s.ID, kind: 'p', expr: line[2:]})
				installed++
			case strings.HasPrefix(line, "u"):
				if len(live) == 0 {
					continue
				}
				n, err := strconv.Atoi(line[1:])
				if err != nil || n < 0 {
					continue
				}
				n %= len(live)
				if err := r.Unsubscribe("t", live[n].id); err != nil {
					t.Fatalf("unsubscribe live sub: %v", err)
				}
				live = append(live[:n], live[n+1:]...)
			}
		}

		if got := r.TotalSubscriptions(); got != len(live) {
			t.Fatalf("TotalSubscriptions = %d, script tracked %d", got, len(live))
		}

		// Probe with the fuzzed correlation ID plus every subscribed exact
		// literal, so exact-map tombstones and revivals get exercised.
		probes := map[string]bool{probe: true, "": true}
		for _, sp := range live {
			if sp.kind == 'c' && len(probes) < 32 {
				probes[sp.expr] = true
			}
		}
		for lit := range probes {
			m := jms.NewMessage("t")
			if err := m.SetCorrelationID(lit); err != nil {
				continue
			}
			if err := m.SetInt32Property("prop", int32(len(lit))); err != nil {
				t.Fatal(err)
			}

			// Reference: recompile every live filter from its source text and
			// scan linearly — no interning, no index.
			want := map[SubscriptionID]int{}
			for _, sp := range live {
				var ff filter.Filter
				switch sp.kind {
				case 'a':
					ff = filter.All{}
				case 'c':
					cf, err := filter.NewCorrelationID(sp.expr)
					if err != nil {
						t.Fatalf("re-compile %q: %v", sp.expr, err)
					}
					ff = cf
				case 'p':
					pf, err := filter.NewProperty(sp.expr)
					if err != nil {
						t.Fatalf("re-compile %q: %v", sp.expr, err)
					}
					ff = pf
				}
				if ff.Matches(m) {
					want[sp.id]++
				}
			}

			idx, _ := tp.Index()
			got := map[SubscriptionID]int{}
			matched, _ := idx.Match(m, nil)
			for _, s := range matched {
				got[s.ID]++
			}
			for id, n := range got {
				if n != 1 {
					t.Fatalf("probe %q: subscription %d matched %d times", lit, id, n)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("probe %q: index matched %d, linear reference %d", lit, len(got), len(want))
			}
			for id := range want {
				if got[id] == 0 {
					t.Fatalf("probe %q: index missed subscription %d", lit, id)
				}
			}
		}
	})
}
