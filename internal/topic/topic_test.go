package topic

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/jms"
)

func TestConfigureAndLookup(t *testing.T) {
	r := NewRegistry()
	tp, err := r.Configure("presence")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name() != "presence" {
		t.Errorf("Name = %q", tp.Name())
	}
	got, err := r.Lookup("presence")
	if err != nil || got != tp {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("missing"); !errors.Is(err, ErrNoSuchTopic) {
		t.Errorf("Lookup(missing) err = %v, want ErrNoSuchTopic", err)
	}
	if _, err := r.Configure("presence"); !errors.Is(err, ErrDuplicateTopic) {
		t.Errorf("duplicate Configure err = %v, want ErrDuplicateTopic", err)
	}
	if _, err := r.Configure(""); err == nil {
		t.Error("empty topic name accepted")
	}
}

func TestTopicsSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.Configure(name); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Topics()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Topics = %v, want %v", got, want)
		}
	}
}

func TestSubscribeUnsubscribe(t *testing.T) {
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}

	s1, err := r.Subscribe("t", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Filter.Kind() != filter.KindTopic {
		t.Errorf("nil filter should become All; Kind = %v", s1.Filter.Kind())
	}
	corr, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Subscribe("t", corr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID == s2.ID {
		t.Error("subscription IDs must be unique")
	}
	if tp.NumSubscriptions() != 2 {
		t.Errorf("NumSubscriptions = %d, want 2", tp.NumSubscriptions())
	}
	if r.TotalSubscriptions() != 2 {
		t.Errorf("TotalSubscriptions = %d, want 2", r.TotalSubscriptions())
	}

	if err := r.Unsubscribe("t", s1.ID); err != nil {
		t.Fatal(err)
	}
	if tp.NumSubscriptions() != 1 {
		t.Errorf("NumSubscriptions after remove = %d, want 1", tp.NumSubscriptions())
	}
	if err := r.Unsubscribe("t", s1.ID); !errors.Is(err, ErrNoSuchSubscription) {
		t.Errorf("double Unsubscribe err = %v", err)
	}
	if err := r.Unsubscribe("missing", s2.ID); !errors.Is(err, ErrNoSuchTopic) {
		t.Errorf("Unsubscribe on missing topic err = %v", err)
	}
	if _, err := r.Subscribe("missing", nil, nil); !errors.Is(err, ErrNoSuchTopic) {
		t.Errorf("Subscribe on missing topic err = %v", err)
	}
}

func TestSnapshotImmutability(t *testing.T) {
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := r.Subscribe("t", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap1, epoch1 := tp.Snapshot()
	if len(snap1) != 1 || epoch1 == 0 {
		t.Fatalf("snapshot = %d subs, epoch %d", len(snap1), epoch1)
	}

	if _, err := r.Subscribe("t", nil, nil); err != nil {
		t.Fatal(err)
	}
	snap2, epoch2 := tp.Snapshot()
	if epoch2 <= epoch1 {
		t.Error("epoch did not advance on subscribe")
	}
	// The old snapshot must be unchanged (copy-on-write).
	if len(snap1) != 1 {
		t.Errorf("old snapshot mutated: len = %d", len(snap1))
	}
	if len(snap2) != 2 {
		t.Errorf("new snapshot len = %d, want 2", len(snap2))
	}

	if err := r.Unsubscribe("t", s1.ID); err != nil {
		t.Fatal(err)
	}
	snap3, epoch3 := tp.Snapshot()
	if epoch3 <= epoch2 {
		t.Error("epoch did not advance on unsubscribe")
	}
	if len(snap3) != 1 {
		t.Errorf("snapshot after remove len = %d, want 1", len(snap3))
	}
	if len(snap2) != 2 {
		t.Error("older snapshot mutated by remove")
	}
}

func TestConcurrentSubscribeUnsubscribe(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Configure("t"); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 50

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s, err := r.Subscribe("t", nil, nil)
				if err != nil {
					errCh <- err
					return
				}
				if err := r.Unsubscribe("t", s.ID); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := r.TotalSubscriptions(); n != 0 {
		t.Errorf("TotalSubscriptions = %d, want 0", n)
	}
}

func TestFilterDispatchThroughSnapshot(t *testing.T) {
	// End-to-end within the package: a snapshot drives filter matching the
	// way the broker's dispatch loop does.
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}
	matching, err := filter.NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	other, err := filter.NewCorrelationID("#1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Subscribe("t", matching, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Subscribe("t", other, nil); err != nil {
			t.Fatal(err)
		}
	}

	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	subs, _ := tp.Snapshot()
	replication := 0
	for _, s := range subs {
		if s.Filter.Matches(m) {
			replication++
		}
	}
	if replication != 3 {
		t.Errorf("replication grade = %d, want 3", replication)
	}
}

func ExampleRegistry_Subscribe() {
	r := NewRegistry()
	_, _ = r.Configure("presence")
	corr, _ := filter.NewCorrelationID("#0")
	sub, _ := r.Subscribe("presence", corr, nil)
	fmt.Println(sub.Topic, sub.Filter)
	// Output: presence #0
}
