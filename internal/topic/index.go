package topic

import (
	"repro/internal/filter"
	"repro/internal/jms"
)

// FilterIndex is the fast dispatch engine's view of one subscription
// snapshot. It replaces the paper-faithful O(n_fltr) linear scan with:
//
//   - a hash table over exact correlation-ID filters (one map probe covers
//     the whole exact-match population — the optimization the paper shows
//     FioranoMQ lacks, §III-B),
//   - a bucket of match-all subscriptions that skip evaluation entirely,
//   - a grouped evaluator that deduplicates identical remaining filters
//     (same kind, same rule text) so each distinct rule runs once per
//     message no matter how many subscribers installed it,
//   - a linear fallback for everything else (glob/range correlation IDs,
//     selectors, composites), evaluated one representative per group.
//
// A FilterIndex is immutable after BuildIndex and safe for concurrent use
// by any number of dispatch workers.
type FilterIndex struct {
	total int
	// all are subscriptions that match every message (topic-only filters).
	all []*Subscription
	// exact buckets exact-match correlation-ID filters by their literal.
	exact map[string][]*Subscription
	// groups are the remaining filters, one entry per distinct rule; all
	// subscribers sharing the rule ride on a single evaluation.
	groups []filterGroup
}

type filterGroup struct {
	f    filter.Filter
	subs []*Subscription
}

// BuildIndex indexes a subscription snapshot. The slice must be immutable
// (as returned by Topic.Snapshot).
func BuildIndex(subs []*Subscription) *FilterIndex {
	idx := &FilterIndex{total: len(subs)}
	groupOf := make(map[string]int)
	for _, s := range subs {
		switch f := s.Filter.(type) {
		case filter.All:
			idx.all = append(idx.all, s)
			continue
		case *filter.CorrelationID:
			if lit, ok := f.Exact(); ok {
				if idx.exact == nil {
					idx.exact = make(map[string][]*Subscription)
				}
				idx.exact[lit] = append(idx.exact[lit], s)
				continue
			}
		}
		// Deduplicate identical rules. Only filter types from this
		// repository are grouped by their rendered rule; unknown Filter
		// implementations are conservatively given their own group.
		key := ""
		switch s.Filter.(type) {
		case *filter.CorrelationID, *filter.Property, *filter.And, *filter.Or:
			key = s.Filter.Kind().String() + "\x00" + s.Filter.String()
		}
		if key != "" {
			if gi, ok := groupOf[key]; ok {
				idx.groups[gi].subs = append(idx.groups[gi].subs, s)
				continue
			}
			groupOf[key] = len(idx.groups)
		}
		idx.groups = append(idx.groups, filterGroup{f: s.Filter, subs: []*Subscription{s}})
	}
	return idx
}

// NumSubscriptions returns the number of indexed subscriptions — the
// paper's n_fltr for this topic.
func (idx *FilterIndex) NumSubscriptions() int { return idx.total }

// NumGroups returns the number of deduplicated filter groups that require
// per-message evaluation (excluding the hash-indexed and match-all
// populations).
func (idx *FilterIndex) NumGroups() int { return len(idx.groups) }

// Match appends the subscriptions matching m to dst and returns the
// extended slice together with the number of filter evaluations performed
// (a map probe counts as one evaluation). Passing a reused dst slice makes
// steady-state matching allocation-free.
func (idx *FilterIndex) Match(m *jms.Message, dst []*Subscription) ([]*Subscription, int) {
	dst = append(dst, idx.all...)
	evals := 0
	if idx.exact != nil {
		evals++
		dst = append(dst, idx.exact[m.Header.CorrelationID]...)
	}
	for i := range idx.groups {
		evals++
		if idx.groups[i].f.Matches(m) {
			dst = append(dst, idx.groups[i].subs...)
		}
	}
	return dst, evals
}
