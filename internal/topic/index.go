package topic

import (
	"repro/internal/filter"
	"repro/internal/jms"
)

// FilterIndex is the fast dispatch engine's view of one subscription
// table version. It replaces the paper-faithful O(n_fltr) linear scan with:
//
//   - a hash table over exact correlation-ID filters (one map probe covers
//     the whole exact-match population — the optimization the paper shows
//     FioranoMQ lacks, §III-B),
//   - a bucket of match-all subscriptions that skip evaluation entirely,
//   - a grouped evaluator that deduplicates identical remaining filters
//     so each distinct rule runs once per message no matter how many
//     subscribers installed it,
//   - a linear fallback for everything else (glob/range correlation IDs,
//     selectors, composites), evaluated one representative per group.
//
// A FilterIndex is safe for concurrent use by any number of dispatch
// workers. Indexes obtained from Topic.Index share rule-set storage with
// the live store: the maps and group list are frozen, while each rule
// set's membership slice is an atomically published immutable copy. A
// dispatcher holding an older index therefore sees current (not torn)
// membership for the rules it knew about, and picks up new rules on its
// next Index call — mirroring the staleness contract of Topic.Snapshot.
type FilterIndex struct {
	total int
	epoch uint64
	// all holds subscriptions that match every message (topic-only
	// filters); nil when none were ever installed.
	all *subSet
	// exact and ov bucket exact-match correlation-ID filters by literal.
	// ov is the small overlay for literals added since the last map merge;
	// both maps are frozen once published.
	exact map[string]*subSet
	ov    map[string]*subSet
	// groups are the remaining filters, one entry per distinct rule; all
	// subscribers sharing the rule ride on a single evaluation.
	groups []indexGroup
}

type indexGroup struct {
	f   filter.Filter
	set *subSet
}

// BuildIndex indexes a static subscription snapshot (as returned by
// Topic.Snapshot). The resulting index is fully frozen: it shares no
// storage with any live topic.
func BuildIndex(subs []*Subscription) *FilterIndex {
	idx := &FilterIndex{total: len(subs)}
	var all []*Subscription
	exact := make(map[string][]*Subscription)
	groupOf := make(map[string]int)
	type protoGroup struct {
		f    filter.Filter
		subs []*Subscription
	}
	var groups []protoGroup
	for _, s := range subs {
		switch f := s.Filter.(type) {
		case filter.All:
			all = append(all, s)
			continue
		case *filter.CorrelationID:
			if lit, ok := f.Exact(); ok {
				exact[lit] = append(exact[lit], s)
				continue
			}
		}
		// Deduplicate identical rules. Only filter types from this
		// repository are grouped by their rendered rule; unknown Filter
		// implementations are conservatively given their own group.
		key := ""
		switch s.Filter.(type) {
		case *filter.CorrelationID, *filter.Property, *filter.And, *filter.Or:
			key = s.Filter.Kind().String() + "\x00" + s.Filter.String()
		}
		if key != "" {
			if gi, ok := groupOf[key]; ok {
				groups[gi].subs = append(groups[gi].subs, s)
				continue
			}
			groupOf[key] = len(groups)
		}
		groups = append(groups, protoGroup{f: s.Filter, subs: []*Subscription{s}})
	}
	if len(all) > 0 {
		idx.all = frozenSet(all)
	}
	if len(exact) > 0 {
		idx.exact = make(map[string]*subSet, len(exact))
		for lit, members := range exact {
			idx.exact[lit] = frozenSet(members)
		}
	}
	if len(groups) > 0 {
		idx.groups = make([]indexGroup, len(groups))
		for i, g := range groups {
			idx.groups[i] = indexGroup{f: g.f, set: frozenSet(g.subs)}
		}
	}
	return idx
}

func frozenSet(members []*Subscription) *subSet {
	s := &subSet{}
	s.pub.Store(&members)
	return s
}

// NumSubscriptions returns the number of indexed subscriptions — the
// paper's n_fltr for this topic — as of the index's build version.
func (idx *FilterIndex) NumSubscriptions() int { return idx.total }

// NumGroups returns the number of deduplicated filter groups that require
// per-message evaluation (excluding the hash-indexed and match-all
// populations).
func (idx *FilterIndex) NumGroups() int { return len(idx.groups) }

// Match appends the subscriptions matching m to dst and returns the
// extended slice together with the number of filter evaluations performed
// (the exact-literal hash probe counts as one evaluation). Passing a
// reused dst slice makes steady-state matching allocation-free.
func (idx *FilterIndex) Match(m *jms.Message, dst []*Subscription) ([]*Subscription, int) {
	if idx.all != nil {
		dst = append(dst, idx.all.loadPub()...)
	}
	evals := 0
	if idx.exact != nil || idx.ov != nil {
		evals++
		lit := m.Header.CorrelationID
		if s, ok := idx.exact[lit]; ok {
			dst = append(dst, s.loadPub()...)
		} else if s, ok := idx.ov[lit]; ok {
			dst = append(dst, s.loadPub()...)
		}
	}
	for i := range idx.groups {
		evals++
		if idx.groups[i].f.Matches(m) {
			dst = append(dst, idx.groups[i].set.loadPub()...)
		}
	}
	return dst, evals
}
