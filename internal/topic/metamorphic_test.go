package topic_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/topic"
)

// randomFilter draws one filter from every family the index treats
// differently: match-all, hash-indexed exact correlation IDs, globbed
// and ranged correlation IDs (grouped linear fallback), property
// selectors, and AND/OR composites. The pools are small on purpose so
// duplicates are common and the index's rule deduplication is exercised.
func randomFilter(t *testing.T, rng *rand.Rand, depth int) filter.Filter {
	t.Helper()
	mk := func(f filter.Filter, err error) filter.Filter {
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	top := 7
	if depth > 0 {
		top = 9 // composites only at the top level, to bound depth
	}
	switch rng.Intn(top) {
	case 0:
		return filter.All{}
	case 1, 2:
		return mk(filter.NewCorrelationID(fmt.Sprintf("#%d", rng.Intn(8))))
	case 3:
		return mk(filter.NewCorrelationID(fmt.Sprintf("ord-%d*", rng.Intn(3))))
	case 4:
		return mk(filter.NewCorrelationID(fmt.Sprintf("#[%d;%d]", rng.Intn(4), 4+rng.Intn(4))))
	case 5:
		return mk(filter.NewProperty(fmt.Sprintf("qty > %d", rng.Intn(10))))
	case 6:
		return mk(filter.NewProperty(fmt.Sprintf("region = 'r%d'", rng.Intn(3))))
	case 7:
		return mk(filter.NewAnd(randomFilter(t, rng, 0), randomFilter(t, rng, 0)))
	default:
		return mk(filter.NewOr(randomFilter(t, rng, 0), randomFilter(t, rng, 0)))
	}
}

// randomMessage draws correlation IDs and properties from the same
// pools randomFilter targets, so matches are neither certain nor rare.
func randomMessage(t *testing.T, rng *rand.Rand) *jms.Message {
	t.Helper()
	m := jms.NewMessage("t")
	var corrID string
	switch rng.Intn(3) {
	case 0:
		corrID = fmt.Sprintf("#%d", rng.Intn(8))
	case 1:
		corrID = fmt.Sprintf("ord-%d%d", rng.Intn(3), rng.Intn(100))
	default:
		corrID = "other"
	}
	if err := m.SetCorrelationID(corrID); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt32Property("qty", int32(rng.Intn(12))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("region", fmt.Sprintf("r%d", rng.Intn(4))); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIndexMatchesLinearScan is the metamorphic equivalence check behind
// the fast engine's correctness claim: for random subscription
// populations and random messages, FilterIndex.Match must select exactly
// the subscriptions a faithful linear scan over Filter.Matches selects.
// The index's hashing, match-all bucketing, and rule grouping are pure
// reorganizations of that scan; any divergence is a defect.
func TestIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		nSubs := 1 + rng.Intn(120)
		subs := make([]*topic.Subscription, nSubs)
		for i := range subs {
			subs[i] = &topic.Subscription{
				ID:     topic.SubscriptionID(i + 1),
				Topic:  "t",
				Filter: randomFilter(t, rng, 1),
			}
		}
		idx := topic.BuildIndex(subs)
		if idx.NumSubscriptions() != nSubs {
			t.Fatalf("round %d: index holds %d of %d subscriptions", round, idx.NumSubscriptions(), nSubs)
		}

		for msg := 0; msg < 20; msg++ {
			m := randomMessage(t, rng)

			var want []topic.SubscriptionID
			for _, s := range subs {
				if s.Filter.Matches(m) {
					want = append(want, s.ID)
				}
			}

			matched, evals := idx.Match(m, nil)
			got := make([]topic.SubscriptionID, len(matched))
			for i, s := range matched {
				got[i] = s.ID
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })

			if len(got) != len(want) {
				t.Fatalf("round %d msg %q: index matched %d subs, scan matched %d\nindex: %v\nscan:  %v",
					round, m.Header.CorrelationID, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d msg %q: match sets diverge at %d: index %v, scan %v",
						round, m.Header.CorrelationID, i, got, want)
				}
			}
			if evals > nSubs {
				t.Fatalf("round %d: index spent %d evaluations on %d subscriptions — worse than the scan it replaces",
					round, evals, nSubs)
			}
		}
	}
}
