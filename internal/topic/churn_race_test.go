package topic

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/filter"
	"repro/internal/jms"
)

// TestChurnStormSnapshotIntegrity races a subscribe/unsubscribe storm
// against continuous Snapshot and Index readers and checks that no reader
// ever observes a torn view: no nil entries, no duplicate IDs, and a
// length that matches the snapshot's own claim. Run under -race this also
// proves the lock-free publication protocol.
func TestChurnStormSnapshotIntegrity(t *testing.T) {
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const readers = 4
	perWriter := 400
	if testing.Short() {
		perWriter = 100
	}

	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	errCh := make(chan string, writers+readers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			live := make([]*Subscription, 0, 64)
			for i := 0; i < perWriter; i++ {
				if len(live) == 0 || rng.Intn(2) == 0 {
					var f filter.Filter
					switch rng.Intn(3) {
					case 0:
						f = nil // All
					case 1:
						cf, err := filter.NewCorrelationID("lit-" + strconv.Itoa(rng.Intn(32)))
						if err != nil {
							errCh <- err.Error()
							return
						}
						f = cf
					default:
						f = filter.MustProperty("prop = " + strconv.Itoa(rng.Intn(8)))
					}
					s, err := r.Subscribe("t", f, nil)
					if err != nil {
						errCh <- err.Error()
						return
					}
					live = append(live, s)
				} else {
					k := rng.Intn(len(live))
					s := live[k]
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := r.Unsubscribe("t", s.ID); err != nil {
						errCh <- err.Error()
						return
					}
				}
			}
			for _, s := range live {
				if err := r.Unsubscribe("t", s.ID); err != nil {
					errCh <- err.Error()
					return
				}
			}
		}(int64(w + 1))
	}

	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func(viaIndex bool) {
			defer readerWG.Done()
			m := jms.NewMessage("t")
			if err := m.SetCorrelationID("lit-5"); err != nil {
				errCh <- err.Error()
				return
			}
			var scratch []*Subscription
			for !stop.Load() {
				if viaIndex {
					idx, _ := tp.Index()
					scratch = scratch[:0]
					var seen map[SubscriptionID]bool
					scratch, _ = idx.Match(m, scratch)
					seen = make(map[SubscriptionID]bool, len(scratch))
					for _, s := range scratch {
						if s == nil {
							errCh <- "index match returned nil subscription"
							return
						}
						if seen[s.ID] {
							errCh <- "index match returned duplicate subscription " + strconv.FormatUint(uint64(s.ID), 10)
							return
						}
						seen[s.ID] = true
					}
				} else {
					subs, _ := tp.Snapshot()
					seen := make(map[SubscriptionID]bool, len(subs))
					for _, s := range subs {
						if s == nil {
							errCh <- "snapshot contains nil subscription"
							return
						}
						if seen[s.ID] {
							errCh <- "snapshot contains duplicate subscription"
							return
						}
						seen[s.ID] = true
					}
				}
			}
		}(g%2 == 0)
	}

	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}
	if n := r.TotalSubscriptions(); n != 0 {
		t.Errorf("TotalSubscriptions = %d, want 0", n)
	}
	if r.InternedRules() != 0 {
		t.Errorf("InternedRules = %d, want 0 after full churn", r.InternedRules())
	}
	// The final index over the empty table must match nothing.
	idx, _ := tp.Index()
	m := jms.NewMessage("t")
	subs, _ := idx.Match(m, nil)
	if len(subs) != 0 {
		t.Errorf("empty topic matched %d subscriptions", len(subs))
	}
}

// TestChurnPropertyIndexAgreesWithLinear interleaves random subscription
// ops with index rebuilds and, after every batch, checks the indexed match
// set against a linear scan of the same snapshot — the metamorphic
// relation the fuzz target explores with arbitrary inputs.
func TestChurnPropertyIndexAgreesWithLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}
	var live []*Subscription
	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	for round := 0; round < rounds; round++ {
		for op := 0; op < 40; op++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				var f filter.Filter
				switch rng.Intn(5) {
				case 0:
					f = nil
				case 1:
					cf, err := filter.NewCorrelationID("#" + strconv.Itoa(rng.Intn(10)))
					if err != nil {
						t.Fatal(err)
					}
					f = cf
				case 2:
					cf, err := filter.NewCorrelationID("dev-*")
					if err != nil {
						t.Fatal(err)
					}
					f = cf
				case 3:
					cf, err := filter.NewCorrelationID("id[" + strconv.Itoa(rng.Intn(5)) + ";9]")
					if err != nil {
						t.Fatal(err)
					}
					f = cf
				default:
					f = filter.MustProperty("prop = " + strconv.Itoa(rng.Intn(4)))
				}
				s, err := r.Subscribe("t", f, nil)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, s)
			} else {
				k := rng.Intn(len(live))
				s := live[k]
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := r.Unsubscribe("t", s.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		probes := []string{"#0", "#5", "#9", "dev-3", "id4", "zzz"}
		idx, iEpoch := tp.Index()
		subs, sEpoch := tp.Snapshot()
		if iEpoch != sEpoch {
			t.Fatalf("round %d: index epoch %d != snapshot epoch %d", round, iEpoch, sEpoch)
		}
		for _, lit := range probes {
			m := jms.NewMessage("t")
			if err := m.SetCorrelationID(lit); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := m.SetInt32Property("prop", int32(rng.Intn(4))); err != nil {
					t.Fatal(err)
				}
			}
			want := make(map[SubscriptionID]bool)
			for _, s := range subs {
				if s.Filter.Matches(m) {
					want[s.ID] = true
				}
			}
			got := make(map[SubscriptionID]bool)
			matched, _ := idx.Match(m, nil)
			for _, s := range matched {
				if got[s.ID] {
					t.Fatalf("round %d probe %q: duplicate match %d", round, lit, s.ID)
				}
				got[s.ID] = true
			}
			if len(got) != len(want) {
				t.Fatalf("round %d probe %q: index matched %d, linear %d", round, lit, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("round %d probe %q: index missed %d", round, lit, id)
				}
			}
		}
	}
}
