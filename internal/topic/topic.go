// Package topic manages the broker's destination tables: the set of
// configured topics and, per topic, the dynamically installed subscriptions
// with their filters.
//
// As in the paper, topics are a coarse, static selection mechanism that must
// be configured before system start ("topics virtually separate the JMS
// server into several logical sub-servers"), while filters are installed and
// removed dynamically during operation.
package topic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/filter"
)

// Errors returned by the registry.
var (
	// ErrNoSuchTopic is returned when addressing an unconfigured topic.
	ErrNoSuchTopic = errors.New("topic: no such topic")
	// ErrDuplicateTopic is returned when configuring a topic twice.
	ErrDuplicateTopic = errors.New("topic: duplicate topic")
	// ErrNoSuchSubscription is returned when removing an unknown subscription.
	ErrNoSuchSubscription = errors.New("topic: no such subscription")
)

// SubscriptionID identifies a subscription within a registry.
type SubscriptionID uint64

// Subscription is one subscriber's registration on a topic: exactly one
// filter, as in the paper ("each subscriber has only a single filter").
type Subscription struct {
	ID     SubscriptionID
	Topic  string
	Filter filter.Filter
	// Attachment is opaque owner data (e.g. the broker's delivery handle).
	// It is set at subscription time and never modified afterwards, so
	// dispatchers may read it without locking.
	Attachment any
}

// Topic is one configured destination and its subscription list.
type Topic struct {
	name string

	// mu serializes writers; readers go through the atomic snapshot and
	// never take a lock, so the dispatch hot path costs one pointer load
	// per message regardless of subscription churn.
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
}

// snapshot is one immutable version of a topic's subscription table. The
// filter index is derived lazily, at most once per epoch, so dispatchers
// reuse it until the table changes (version-checked cache).
type snapshot struct {
	subs  []*Subscription
	epoch uint64

	idxOnce sync.Once
	idx     *FilterIndex
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Snapshot returns the current subscription list and its epoch. The slice
// is owned by the registry and must not be modified; a new slice is built
// on every subscription change, so a returned snapshot stays immutable.
// The call is lock-free: a single atomic pointer load.
func (t *Topic) Snapshot() ([]*Subscription, uint64) {
	s := t.snap.Load()
	return s.subs, s.epoch
}

// Index returns the filter index over the current subscription table and
// its epoch. The index is built on first use after a subscription change
// and cached on the snapshot, so steady-state dispatching pays only the
// atomic load.
func (t *Topic) Index() (*FilterIndex, uint64) {
	s := t.snap.Load()
	s.idxOnce.Do(func() { s.idx = BuildIndex(s.subs) })
	return s.idx, s.epoch
}

// NumSubscriptions returns the number of installed subscriptions.
func (t *Topic) NumSubscriptions() int {
	return len(t.snap.Load().subs)
}

func (t *Topic) add(s *Subscription) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.snap.Load()
	next := make([]*Subscription, len(cur.subs), len(cur.subs)+1)
	copy(next, cur.subs)
	t.snap.Store(&snapshot{subs: append(next, s), epoch: cur.epoch + 1})
}

func (t *Topic) remove(id SubscriptionID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.snap.Load()
	for i, s := range cur.subs {
		if s.ID == id {
			next := make([]*Subscription, 0, len(cur.subs)-1)
			next = append(next, cur.subs[:i]...)
			next = append(next, cur.subs[i+1:]...)
			t.snap.Store(&snapshot{subs: next, epoch: cur.epoch + 1})
			return true
		}
	}
	return false
}

// Registry is the broker's topic table.
type Registry struct {
	mu     sync.RWMutex
	topics map[string]*Topic
	nextID SubscriptionID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{topics: make(map[string]*Topic)}
}

// Configure adds a topic. Topics must be configured before use, mirroring
// the static topic setup of a JMS server.
func (r *Registry) Configure(name string) (*Topic, error) {
	if name == "" {
		return nil, errors.New("topic: empty topic name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.topics[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateTopic, name)
	}
	t := &Topic{name: name}
	t.snap.Store(&snapshot{})
	r.topics[name] = t
	return t, nil
}

// Lookup returns the topic with the given name.
func (r *Registry) Lookup(name string) (*Topic, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTopic, name)
	}
	return t, nil
}

// Topics returns the sorted names of all configured topics.
func (r *Registry) Topics() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.topics))
	for name := range r.topics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Subscribe installs a subscription with the given filter on a topic and
// returns it. A nil filter subscribes to every message of the topic. The
// attachment is stored on the subscription before it becomes visible to
// dispatchers.
func (r *Registry) Subscribe(topicName string, f filter.Filter, attachment any) (*Subscription, error) {
	t, err := r.Lookup(topicName)
	if err != nil {
		return nil, err
	}
	if f == nil {
		f = filter.All{}
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()

	s := &Subscription{ID: id, Topic: topicName, Filter: f, Attachment: attachment}
	t.add(s)
	return s, nil
}

// Unsubscribe removes a subscription.
func (r *Registry) Unsubscribe(topicName string, id SubscriptionID) error {
	t, err := r.Lookup(topicName)
	if err != nil {
		return err
	}
	if !t.remove(id) {
		return fmt.Errorf("%w: %d on %q", ErrNoSuchSubscription, id, topicName)
	}
	return nil
}

// TotalSubscriptions returns the number of subscriptions across all topics —
// the paper's n_fltr when all subscribers sit on one topic.
func (r *Registry) TotalSubscriptions() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, t := range r.topics {
		total += t.NumSubscriptions()
	}
	return total
}
