// Package topic manages the broker's destination tables: the set of
// configured topics and, per topic, the dynamically installed subscriptions
// with their filters.
//
// As in the paper, topics are a coarse, static selection mechanism that must
// be configured before system start ("topics virtually separate the JMS
// server into several logical sub-servers"), while filters are installed and
// removed dynamically during operation.
//
// The store is built for 10^5-10^6 concurrent subscriptions under churn:
// subscribe and unsubscribe are O(1) (swap-remove into compact per-rule
// sets), and the immutable views dispatchers consume — Snapshot for the
// paper-faithful linear scan, Index for the hashed fast path — are rebuilt
// lazily, at most once per observed change batch, instead of once per
// mutation. A storm of K subscription changes between two dispatches costs
// O(K) plus a single rebuild proportional to the touched rule sets, not
// O(K·n).
package topic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/filter"
)

// Errors returned by the registry.
var (
	// ErrNoSuchTopic is returned when addressing an unconfigured topic.
	ErrNoSuchTopic = errors.New("topic: no such topic")
	// ErrDuplicateTopic is returned when configuring a topic twice.
	ErrDuplicateTopic = errors.New("topic: duplicate topic")
	// ErrNoSuchSubscription is returned when removing an unknown subscription.
	ErrNoSuchSubscription = errors.New("topic: no such subscription")
)

// SubscriptionID identifies a subscription within a registry.
type SubscriptionID uint64

// Subscription is one subscriber's registration on a topic: exactly one
// filter, as in the paper ("each subscriber has only a single filter").
type Subscription struct {
	ID     SubscriptionID
	Topic  string
	Filter filter.Filter
	// Attachment is opaque owner data (e.g. the broker's delivery handle).
	// It is set at subscription time and never modified afterwards, so
	// dispatchers may read it without locking.
	Attachment any

	// Store-internal bookkeeping, guarded by the owning Topic's mu.
	set  *subSet // the rule set this subscription lives in
	spos int     // index within set.live
	mpos int     // index within Topic.master
}

// Thresholds for the amortized exact-literal map maintenance. Published
// maps are frozen (they are read lock-free by dispatchers), so new literals
// accumulate in a small overflow map that is re-cloned per rebuild, and
// literal deletions become empty tombstone sets. Merges and compactions
// rewrite the big map only once the small structures justify an O(n) pass.
const (
	// exactOverflowMax bounds the overflow map; reaching it merges the
	// overflow into a fresh main map.
	exactOverflowMax = 4096
	// exactDeadMin is the minimum number of tombstoned literals before a
	// compaction of the main map is considered.
	exactDeadMin = 4096
)

// Topic is one configured destination and its subscription table.
type Topic struct {
	name string

	// mu serializes writers; readers go through the published snapshot and
	// index caches and never take a lock, so the dispatch hot path costs a
	// few atomic loads per message regardless of subscription churn.
	mu sync.Mutex

	// version counts mutations; published views carry the version they
	// were built at, making staleness a single atomic comparison.
	version atomic.Uint64
	count   atomic.Int64

	// master is the compact list of live subscriptions (swap-remove order).
	master []*Subscription
	byID   map[SubscriptionID]*Subscription

	// Rule sets: one compact subscriber set per distinct dispatch rule.
	allSet    *subSet            // match-all subscriptions
	exact     map[string]*subSet // frozen main map: exact correlation-ID literal → set
	exactOv   map[string]*subSet // frozen overflow map for recent literals
	exactPend map[string]*subSet // literals added since the last rebuild (private)
	exactDead int                // tombstoned (empty) literal sets in exact

	groupList  []*subSet // insertion-ordered grouped rules; nil = retired slot
	groupSets  map[any]*subSet
	groupDead  int
	groupsMod  bool // the published group slice must be rebuilt
	structural bool // exact maps must be re-derived (pending adds / merge)

	dirtySets []*subSet

	snap atomic.Pointer[snapshot]
	idx  atomic.Pointer[FilterIndex]
}

// snapshot is one immutable version of a topic's subscription list for the
// paper-faithful linear scan.
type snapshot struct {
	subs  []*Subscription
	epoch uint64
}

// subSet is a compact subscriber set for one dispatch rule: a mutable live
// slice (swap-remove, guarded by Topic.mu) plus an immutable published copy
// swapped in atomically for lock-free dispatch reads.
type subSet struct {
	live  []*Subscription
	pub   atomic.Pointer[[]*Subscription]
	dirty bool
	// Classification, for retirement on emptying.
	f    filter.Filter // representative rule (grouped sets)
	key  any           // group key, or exact literal (string), or nil for allSet
	gpos int           // index in Topic.groupList (grouped sets)
}

func (s *subSet) loadPub() []*Subscription {
	p := s.pub.Load()
	if p == nil {
		return nil
	}
	return *p
}

func (s *subSet) publishLocked() {
	out := make([]*Subscription, len(s.live))
	copy(out, s.live)
	s.pub.Store(&out)
	s.dirty = false
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Snapshot returns the current subscription list and its epoch. The slice
// is immutable: a fresh copy is published per observed change batch, so a
// returned snapshot never mutates under the caller. The steady-state call
// is lock-free (two atomic loads); the first call after a change pays one
// O(n) copy, amortizing subscription storms instead of charging every
// mutation.
func (t *Topic) Snapshot() ([]*Subscription, uint64) {
	s := t.snap.Load()
	if v := t.version.Load(); s != nil && s.epoch == v {
		return s.subs, s.epoch
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	if s := t.snap.Load(); s != nil && s.epoch == v {
		return s.subs, s.epoch
	}
	subs := make([]*Subscription, len(t.master))
	copy(subs, t.master)
	ns := &snapshot{subs: subs, epoch: v}
	t.snap.Store(ns)
	return subs, v
}

// Index returns the filter index over the current subscription table and
// its epoch. The index is rebuilt on first use after a subscription change
// — republishing only the rule sets that actually changed — and cached, so
// steady-state dispatching pays only atomic loads. A distinct *FilterIndex
// is returned for every epoch.
func (t *Topic) Index() (*FilterIndex, uint64) {
	c := t.idx.Load()
	if v := t.version.Load(); c != nil && c.epoch == v {
		return c, c.epoch
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.version.Load()
	if c := t.idx.Load(); c != nil && c.epoch == v {
		return c, c.epoch
	}
	nc := t.rebuildIndexLocked(v)
	t.idx.Store(nc)
	return nc, v
}

// rebuildIndexLocked publishes dirty rule sets and assembles a fresh
// FilterIndex. Cost is proportional to the sets touched since the last
// rebuild (plus rare amortized map merges), not to the subscriber count.
func (t *Topic) rebuildIndexLocked(v uint64) *FilterIndex {
	for _, s := range t.dirtySets {
		s.publishLocked()
	}
	t.dirtySets = t.dirtySets[:0]

	if t.structural {
		t.remapExactLocked()
		t.structural = false
	}

	idx := &FilterIndex{
		epoch: v,
		total: int(t.count.Load()),
		exact: t.exact,
		ov:    t.exactOv,
	}
	if t.allSet != nil {
		idx.all = t.allSet
	}
	prev := t.idx.Load()
	if t.groupsMod || prev == nil {
		t.compactGroupListLocked()
		groups := make([]indexGroup, 0, len(t.groupList)-t.groupDead)
		for _, s := range t.groupList {
			if s != nil {
				groups = append(groups, indexGroup{f: s.f, set: s})
			}
		}
		idx.groups = groups
		t.groupsMod = false
	} else {
		idx.groups = prev.groups
	}
	return idx
}

// remapExactLocked folds pending literal additions into the frozen exact
// maps: normally a clone of the small overflow map; once the overflow or
// the tombstone population crosses its threshold, a full O(#literals)
// merge/compaction into a fresh main map.
func (t *Topic) remapExactLocked() {
	pending := len(t.exactPend)
	merged := len(t.exactOv) + pending
	if merged >= exactOverflowMax ||
		(t.exactDead >= exactDeadMin && t.exactDead*2 >= len(t.exact)) {
		// Full merge: fresh main map without tombstones, overflow folded in.
		main := make(map[string]*subSet, len(t.exact)+merged)
		for lit, s := range t.exact {
			if len(s.live) > 0 {
				main[lit] = s
			}
		}
		for lit, s := range t.exactOv {
			if len(s.live) > 0 {
				main[lit] = s
			}
		}
		for lit, s := range t.exactPend {
			main[lit] = s
		}
		t.exact = main
		t.exactOv = nil
		t.exactDead = 0
	} else if pending > 0 {
		ov := make(map[string]*subSet, len(t.exactOv)+pending)
		for lit, s := range t.exactOv {
			ov[lit] = s
		}
		for lit, s := range t.exactPend {
			ov[lit] = s
		}
		t.exactOv = ov
	}
	if pending > 0 {
		t.exactPend = nil
	}
}

func (t *Topic) compactGroupListLocked() {
	if t.groupDead*2 < len(t.groupList) {
		return
	}
	kept := t.groupList[:0]
	for _, s := range t.groupList {
		if s != nil {
			s.gpos = len(kept)
			kept = append(kept, s)
		}
	}
	t.groupList = kept
	t.groupDead = 0
}

// NumSubscriptions returns the number of installed subscriptions.
func (t *Topic) NumSubscriptions() int {
	return int(t.count.Load())
}

func (t *Topic) markDirtyLocked(s *subSet) {
	if !s.dirty {
		s.dirty = true
		t.dirtySets = append(t.dirtySets, s)
	}
}

// lookupExactLocked finds the set for an exact correlation-ID literal
// across the main, overflow and pending maps.
func (t *Topic) lookupExactLocked(lit string) *subSet {
	if s, ok := t.exact[lit]; ok {
		return s
	}
	if s, ok := t.exactOv[lit]; ok {
		return s
	}
	if s, ok := t.exactPend[lit]; ok {
		return s
	}
	return nil
}

// setForLocked classifies a filter and returns (creating if necessary) the
// rule set its subscriptions live in.
func (t *Topic) setForLocked(f filter.Filter, sub *Subscription) *subSet {
	switch ff := f.(type) {
	case filter.All:
		if t.allSet == nil {
			t.allSet = &subSet{}
		}
		return t.allSet
	case *filter.CorrelationID:
		if lit, ok := ff.Exact(); ok {
			if s := t.lookupExactLocked(lit); s != nil {
				if len(s.live) == 0 {
					// Reviving a tombstoned literal.
					if _, inMain := t.exact[lit]; inMain {
						t.exactDead--
					}
				}
				return s
			}
			s := &subSet{key: lit}
			if t.exactPend == nil {
				t.exactPend = make(map[string]*subSet)
			}
			t.exactPend[lit] = s
			t.structural = true
			return s
		}
	}
	// Grouped evaluation: one set per distinct rule. Interned filters group
	// by canonical instance; composites group by rendered rule text as in
	// BuildIndex; unknown Filter implementations are conservatively given
	// their own set.
	var key any
	switch f.(type) {
	case *filter.CorrelationID, *filter.Property:
		key = f // canonical via the registry's interner
	case *filter.And, *filter.Or:
		key = f.Kind().String() + "\x00" + f.String()
	default:
		key = sub
	}
	if s, ok := t.groupSets[key]; ok {
		return s
	}
	s := &subSet{f: f, key: key, gpos: len(t.groupList)}
	if t.groupSets == nil {
		t.groupSets = make(map[any]*subSet)
	}
	t.groupSets[key] = s
	t.groupList = append(t.groupList, s)
	t.groupsMod = true
	return s
}

func (t *Topic) add(s *Subscription) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.mpos = len(t.master)
	t.master = append(t.master, s)
	if t.byID == nil {
		t.byID = make(map[SubscriptionID]*Subscription)
	}
	t.byID[s.ID] = s
	set := t.setForLocked(s.Filter, s)
	s.set = set
	s.spos = len(set.live)
	set.live = append(set.live, s)
	t.markDirtyLocked(set)
	t.count.Add(1)
	t.version.Add(1)
}

func (t *Topic) remove(id SubscriptionID) (*Subscription, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	delete(t.byID, id)

	// Swap-remove from the master list.
	last := len(t.master) - 1
	t.master[s.mpos] = t.master[last]
	t.master[s.mpos].mpos = s.mpos
	t.master[last] = nil
	t.master = t.master[:last]

	// Swap-remove from the rule set.
	set := s.set
	sl := len(set.live) - 1
	set.live[s.spos] = set.live[sl]
	set.live[s.spos].spos = s.spos
	set.live[sl] = nil
	set.live = set.live[:sl]
	t.markDirtyLocked(set)
	if sl == 0 {
		t.retireSetLocked(set)
	}
	s.set = nil

	t.count.Add(-1)
	t.version.Add(1)
	return s, true
}

// retireSetLocked handles a rule set whose last subscriber left. Grouped
// sets leave the published group list (rebuilt next Index call); exact
// literal sets become tombstones in the frozen maps — an empty published
// slice — counted toward the next compaction. The all set just stays empty.
func (t *Topic) retireSetLocked(set *subSet) {
	switch {
	case set == t.allSet:
		// keep; may be revived
	case set.key == nil:
	default:
		if lit, ok := set.key.(string); ok && set.f == nil {
			if _, inMain := t.exact[lit]; inMain {
				t.exactDead++
				if t.exactDead >= exactDeadMin && t.exactDead*2 >= len(t.exact) {
					t.structural = true
				}
			} else if _, inPend := t.exactPend[lit]; inPend {
				delete(t.exactPend, lit)
			}
			// Overflow tombstones are dropped at the next merge.
			return
		}
		if _, ok := t.groupSets[set.key]; ok {
			delete(t.groupSets, set.key)
			t.groupList[set.gpos] = nil
			t.groupDead++
			t.groupsMod = true
		}
	}
}

// Registry is the broker's topic table.
type Registry struct {
	mu     sync.RWMutex
	topics map[string]*Topic
	nextID SubscriptionID
	intern *Interner
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{topics: make(map[string]*Topic), intern: NewInterner()}
}

// Configure adds a topic. Topics must be configured before use, mirroring
// the static topic setup of a JMS server.
func (r *Registry) Configure(name string) (*Topic, error) {
	if name == "" {
		return nil, errors.New("topic: empty topic name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.topics[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateTopic, name)
	}
	t := &Topic{name: name}
	t.snap.Store(&snapshot{})
	r.topics[name] = t
	return t, nil
}

// Lookup returns the topic with the given name.
func (r *Registry) Lookup(name string) (*Topic, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTopic, name)
	}
	return t, nil
}

// Topics returns the sorted names of all configured topics.
func (r *Registry) Topics() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.topics))
	for name := range r.topics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Subscribe installs a subscription with the given filter on a topic and
// returns it. A nil filter subscribes to every message of the topic. The
// attachment is stored on the subscription before it becomes visible to
// dispatchers.
//
// The filter and topic name are interned: subscriptions sharing a rule
// share one Filter instance and one copy of the topic string, so a million
// subscribers over a few thousand distinct rules cost close to the
// per-subscription struct alone.
func (r *Registry) Subscribe(topicName string, f filter.Filter, attachment any) (*Subscription, error) {
	t, err := r.Lookup(topicName)
	if err != nil {
		return nil, err
	}
	if f == nil {
		f = filter.All{}
	}
	f = r.intern.Intern(f)
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()

	s := &Subscription{ID: id, Topic: t.name, Filter: f, Attachment: attachment}
	t.add(s)
	return s, nil
}

// Unsubscribe removes a subscription.
func (r *Registry) Unsubscribe(topicName string, id SubscriptionID) error {
	t, err := r.Lookup(topicName)
	if err != nil {
		return err
	}
	s, ok := t.remove(id)
	if !ok {
		return fmt.Errorf("%w: %d on %q", ErrNoSuchSubscription, id, topicName)
	}
	r.intern.Release(s.Filter)
	return nil
}

// InternedRules returns the number of distinct filter rules currently
// interned across the registry — a direct view of rule-text sharing for
// stress and memory accounting.
func (r *Registry) InternedRules() int { return r.intern.Len() }

// TotalSubscriptions returns the number of subscriptions across all topics —
// the paper's n_fltr when all subscribers sit on one topic.
func (r *Registry) TotalSubscriptions() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, t := range r.topics {
		total += t.NumSubscriptions()
	}
	return total
}
