package topic

import (
	"strconv"
	"testing"

	"repro/internal/filter"
	"repro/internal/jms"
)

func corrID(t *testing.T, expr string) filter.Filter {
	t.Helper()
	f, err := filter.NewCorrelationID(expr)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func indexedTopic(t *testing.T, filters []filter.Filter) (*Registry, *Topic) {
	t.Helper()
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range filters {
		if _, err := r.Subscribe("t", f, nil); err != nil {
			t.Fatal(err)
		}
	}
	return r, tp
}

func matchIDs(idx *FilterIndex, m *jms.Message) (map[SubscriptionID]bool, int) {
	subs, evals := idx.Match(m, nil)
	ids := make(map[SubscriptionID]bool, len(subs))
	for _, s := range subs {
		ids[s.ID] = true
	}
	return ids, evals
}

// TestIndexAgreesWithLinearScan checks that Match returns exactly the
// subscriptions a linear scan would, over a mixed filter population.
func TestIndexAgreesWithLinearScan(t *testing.T) {
	filters := []filter.Filter{
		nil, // All
		corrID(t, "#0"),
		corrID(t, "#0"), // duplicate exact
		corrID(t, "#1"),
		corrID(t, "dev-*"),
		corrID(t, "id[3;9]"),
		filter.MustProperty("prop = 0"),
		filter.MustProperty("prop = 0"), // duplicate selector
		filter.MustProperty("prop = 1"),
	}
	_, tp := indexedTopic(t, filters)
	idx, _ := tp.Index()

	msgs := []*jms.Message{}
	for _, id := range []string{"#0", "#1", "#2", "dev-7", "id5", "id99"} {
		m := jms.NewMessage("t")
		if err := m.SetCorrelationID(id); err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
	}
	mp := jms.NewMessage("t")
	if err := mp.SetInt32Property("prop", 0); err != nil {
		t.Fatal(err)
	}
	msgs = append(msgs, mp)

	subs, _ := tp.Snapshot()
	for _, m := range msgs {
		want := make(map[SubscriptionID]bool)
		for _, s := range subs {
			if s.Filter.Matches(m) {
				want[s.ID] = true
			}
		}
		got, _ := matchIDs(idx, m)
		if len(got) != len(want) {
			t.Fatalf("corrID %q: index matched %d subs, linear scan %d", m.Header.CorrelationID, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Errorf("corrID %q: index missed subscription %d", m.Header.CorrelationID, id)
			}
		}
	}
}

// TestIndexDeduplicatesIdenticalFilters verifies the grouped evaluator:
// identical non-indexable rules are evaluated once per message.
func TestIndexDeduplicatesIdenticalFilters(t *testing.T) {
	var filters []filter.Filter
	for i := 0; i < 10; i++ {
		filters = append(filters, filter.MustProperty("prop = 1")) // one group
	}
	filters = append(filters, corrID(t, "dev-*"), corrID(t, "dev-*")) // one group
	filters = append(filters, filter.MustProperty("prop = 2"))        // one group
	_, tp := indexedTopic(t, filters)
	idx, _ := tp.Index()
	if idx.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", idx.NumGroups())
	}

	m := jms.NewMessage("t")
	if err := m.SetInt32Property("prop", 1); err != nil {
		t.Fatal(err)
	}
	ids, evals := matchIDs(idx, m)
	if evals != 3 {
		t.Errorf("evals = %d, want 3 (one per distinct rule)", evals)
	}
	if len(ids) != 10 {
		t.Errorf("matched %d subscriptions, want the 10 identical-filter subscribers", len(ids))
	}
}

// TestIndexExactBucketEvals verifies that any number of exact
// correlation-ID filters costs a single probe.
func TestIndexExactBucketEvals(t *testing.T) {
	var filters []filter.Filter
	for i := 0; i < 200; i++ {
		filters = append(filters, corrID(t, "#"+strconv.Itoa(i)))
	}
	_, tp := indexedTopic(t, filters)
	idx, _ := tp.Index()
	if idx.NumGroups() != 0 {
		t.Fatalf("NumGroups = %d, want 0 (all exact)", idx.NumGroups())
	}
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("#42"); err != nil {
		t.Fatal(err)
	}
	ids, evals := matchIDs(idx, m)
	if evals != 1 {
		t.Errorf("evals = %d, want 1 (single hash probe)", evals)
	}
	if len(ids) != 1 {
		t.Errorf("matched %d subscriptions, want 1", len(ids))
	}
}

// TestIndexCachedPerEpoch verifies the version-checked cache: the same
// index is returned until the subscription table changes.
func TestIndexCachedPerEpoch(t *testing.T) {
	r, tp := indexedTopic(t, []filter.Filter{corrID(t, "#0")})
	idx1, epoch1 := tp.Index()
	idx2, epoch2 := tp.Index()
	if idx1 != idx2 || epoch1 != epoch2 {
		t.Fatal("Index must be cached between subscription changes")
	}
	sub, err := r.Subscribe("t", corrID(t, "#1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	idx3, epoch3 := tp.Index()
	if idx3 == idx1 || epoch3 == epoch1 {
		t.Fatal("Index must be rebuilt after Subscribe")
	}
	if idx3.NumSubscriptions() != 2 {
		t.Errorf("NumSubscriptions = %d, want 2", idx3.NumSubscriptions())
	}
	if err := r.Unsubscribe("t", sub.ID); err != nil {
		t.Fatal(err)
	}
	idx4, _ := tp.Index()
	if idx4 == idx3 {
		t.Fatal("Index must be rebuilt after Unsubscribe")
	}
	if idx4.NumSubscriptions() != 1 {
		t.Errorf("NumSubscriptions = %d, want 1", idx4.NumSubscriptions())
	}
}
