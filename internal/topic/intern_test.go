package topic

import (
	"strconv"
	"testing"

	"repro/internal/filter"
	"repro/internal/jms"
)

func newCorrMessage(t *testing.T, lit string) *jms.Message {
	t.Helper()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID(lit); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInternCanonicalizes(t *testing.T) {
	in := NewInterner()
	f1 := corrID(t, "dev-*")
	f2 := corrID(t, "dev-*")
	if f1 == f2 {
		t.Fatal("test needs distinct instances")
	}
	c1 := in.Intern(f1)
	c2 := in.Intern(f2)
	if c1 != c2 {
		t.Error("identical rules must intern to one instance")
	}
	if c1.String() != f1.String() || c1.Kind() != f1.Kind() {
		t.Errorf("canonical instance changed the rule: %v/%v", c1.Kind(), c1)
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d, want 1", in.Len())
	}

	p1 := in.Intern(filter.MustProperty("prop = 1"))
	p2 := in.Intern(filter.MustProperty("prop = 1"))
	if p1 != p2 {
		t.Error("identical selectors must intern to one instance")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	// Same rule text under a different kind must not collide.
	if c1 == p1 {
		t.Error("kinds collided")
	}
}

func TestInternRefcount(t *testing.T) {
	in := NewInterner()
	f := corrID(t, "id[3;9]")
	c1 := in.Intern(f)
	c2 := in.Intern(corrID(t, "id[3;9]"))
	in.Release(c1)
	if in.Len() != 1 {
		t.Errorf("Len after partial release = %d, want 1", in.Len())
	}
	in.Release(c2)
	if in.Len() != 0 {
		t.Errorf("Len after full release = %d, want 0 (leak)", in.Len())
	}
	// A fresh intern after full release starts a new canonical entry.
	c3 := in.Intern(corrID(t, "id[3;9]"))
	if in.Len() != 1 || c3 == nil {
		t.Errorf("re-intern after release failed: Len = %d", in.Len())
	}
}

func TestInternPassesThroughComposites(t *testing.T) {
	in := NewInterner()
	a, err := filter.NewAnd(corrID(t, "#0"), filter.MustProperty("prop = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Intern(a); got != a {
		t.Error("composite filters must pass through uninterned")
	}
	if in.Len() != 0 {
		t.Errorf("Len = %d, want 0", in.Len())
	}
	in.Release(a) // must be a no-op
}

func TestRegistryInternsAcrossSubscribers(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Configure("t"); err != nil {
		t.Fatal(err)
	}
	var subs []*Subscription
	for i := 0; i < 100; i++ {
		s, err := r.Subscribe("t", filter.MustProperty("load > 5"), nil)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if r.InternedRules() != 1 {
		t.Errorf("InternedRules = %d, want 1 (one shared rule)", r.InternedRules())
	}
	for _, s := range subs[1:] {
		if s.Filter != subs[0].Filter {
			t.Fatal("subscribers with identical rules must share one Filter instance")
		}
	}
	for _, s := range subs {
		if err := r.Unsubscribe("t", s.ID); err != nil {
			t.Fatal(err)
		}
	}
	if r.InternedRules() != 0 {
		t.Errorf("InternedRules after unsubscribe-all = %d, want 0", r.InternedRules())
	}
}

// TestExactLiteralChurnCrossesMapThresholds drives enough distinct exact
// correlation-ID literals through the store to force the overflow merge and
// the tombstone compaction, checking match correctness on both sides of
// each threshold.
func TestExactLiteralChurnCrossesMapThresholds(t *testing.T) {
	r := NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		t.Fatal(err)
	}
	n := exactOverflowMax + 1000
	ids := make([]SubscriptionID, n)
	for i := 0; i < n; i++ {
		s, err := r.Subscribe("t", corrID(t, "lit-"+strconv.Itoa(i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID
		if i%512 == 0 {
			tp.Index() // interleave rebuilds so pending spills into overflow
		}
	}
	idx, _ := tp.Index()
	if idx.NumSubscriptions() != n {
		t.Fatalf("NumSubscriptions = %d, want %d", idx.NumSubscriptions(), n)
	}
	probe := func(lit string, want int) {
		t.Helper()
		m := newCorrMessage(t, lit)
		subs, evals := idx.Match(m, nil)
		if len(subs) != want {
			t.Fatalf("Match(%q) = %d subs, want %d", lit, len(subs), want)
		}
		if evals != 1 {
			t.Fatalf("Match(%q) evals = %d, want 1", lit, evals)
		}
	}
	probe("lit-0", 1)
	probe("lit-"+strconv.Itoa(n-1), 1)
	probe("lit-missing", 0)

	// Tombstone the bulk of the population, then revive one literal.
	for i := 0; i < n-100; i++ {
		if err := r.Unsubscribe("t", ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Subscribe("t", corrID(t, "lit-0"), nil); err != nil {
		t.Fatal(err)
	}
	idx, _ = tp.Index()
	probe("lit-0", 1)                  // revived
	probe("lit-1", 0)                  // tombstoned
	probe("lit-"+strconv.Itoa(n-1), 1) // survivor
	if got := tp.NumSubscriptions(); got != 101 {
		t.Fatalf("NumSubscriptions = %d, want 101", got)
	}
}
