package topic

import (
	"sync"

	"repro/internal/filter"
)

// Interner canonicalizes filters so that the store holds one Filter
// instance (and one copy of its rule text) no matter how many subscribers
// install the same rule. At 10^5-10^6 subscriptions the per-subscriber
// filter objects dominate store memory unless they are shared; interning
// also lets the dispatch index group identical rules by pointer identity
// instead of re-rendering rule strings.
//
// Only filter kinds whose String() fully determines their behavior are
// interned: *filter.CorrelationID and *filter.Property both compile
// deterministically from their rule text. Composite (And/Or) and unknown
// Filter implementations pass through untouched — their rendered text does
// not unambiguously identify the rule tree.
//
// Entries are reference-counted: Release drops a reference and deletes the
// entry when the last subscriber using the rule goes away, so a registry
// that churns through distinct rules does not leak the table.
type Interner struct {
	mu      sync.Mutex
	entries map[internKey]*internEntry
}

type internKey struct {
	kind filter.Kind
	rule string
}

type internEntry struct {
	f    filter.Filter
	refs int
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{entries: make(map[internKey]*internEntry)}
}

// internable reports whether f is a filter kind that is safe to
// canonicalize by (kind, rule text).
func internable(f filter.Filter) bool {
	switch f.(type) {
	case *filter.CorrelationID, *filter.Property:
		return true
	}
	return false
}

// Intern returns the canonical instance for f, taking one reference. If f
// is not an internable kind it is returned unchanged and no reference is
// taken (Release on it is a no-op).
func (in *Interner) Intern(f filter.Filter) filter.Filter {
	if !internable(f) {
		return f
	}
	key := internKey{kind: f.Kind(), rule: f.String()}
	in.mu.Lock()
	defer in.mu.Unlock()
	if e, ok := in.entries[key]; ok {
		e.refs++
		return e.f
	}
	in.entries[key] = &internEntry{f: f, refs: 1}
	return f
}

// Release drops one reference to a filter previously returned by Intern.
// Releasing a non-interned filter is a no-op.
func (in *Interner) Release(f filter.Filter) {
	if !internable(f) {
		return
	}
	key := internKey{kind: f.Kind(), rule: f.String()}
	in.mu.Lock()
	defer in.mu.Unlock()
	e, ok := in.entries[key]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(in.entries, key)
	}
}

// Len returns the number of distinct interned rules currently referenced.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.entries)
}
