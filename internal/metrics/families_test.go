package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestGaugeSetValue(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("Value = %v, want 3.5", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("Value = %v, want -1", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Errorf("Value = %v, want +Inf", g.Value())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Set(v)
				_ = g.Value()
			}
		}(float64(i))
	}
	wg.Wait()
	if v := g.Value(); v < 0 || v > 7 {
		t.Errorf("torn gauge value %v", v)
	}
}

func TestGaugeVec(t *testing.T) {
	v := NewGaugeVec("q_depth", "help", "topic", "engine")
	v.With("a", "fast").Set(1)
	v.With("b", "fast").Set(2)
	v.With("a", "fast").Set(3) // same child, overwrites

	if got := v.With("a", "fast").Value(); got != 3 {
		t.Errorf("child a/fast = %v, want 3", got)
	}
	var seen [][]string
	var vals []float64
	v.Each(func(values []string, g *Gauge) {
		seen = append(seen, values)
		vals = append(vals, g.Value())
	})
	if len(seen) != 2 {
		t.Fatalf("Each visited %d children, want 2", len(seen))
	}
	// Deterministic sorted order: ("a","fast") before ("b","fast").
	if seen[0][0] != "a" || seen[1][0] != "b" || vals[0] != 3 || vals[1] != 2 {
		t.Errorf("Each order/values = %v %v", seen, vals)
	}
	if n := v.LabelNames(); len(n) != 2 || n[0] != "topic" || n[1] != "engine" {
		t.Errorf("LabelNames = %v", n)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("hits", "help", "topic")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Add(5)
	if got := v.With("a").Value(); got != 2 {
		t.Errorf("a = %d, want 2", got)
	}
	total := uint64(0)
	v.Each(func(_ []string, c *Counter) { total += c.Value() })
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
}

func TestVecArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	NewGaugeVec("x", "", "a", "b").With("only-one")
}

func TestMoments(t *testing.T) {
	var m Moments
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		m.Observe(d)
	}
	s := m.Snapshot()
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	m1, m2, m3 := s.Raw()
	if m1 != 2 { // (1+2+3)/3
		t.Errorf("E[x] = %v, want 2", m1)
	}
	if want := (1.0 + 4.0 + 9.0) / 3; math.Abs(m2-want) > 1e-12 {
		t.Errorf("E[x^2] = %v, want %v", m2, want)
	}
	if want := (1.0 + 8.0 + 27.0) / 3; math.Abs(m3-want) > 1e-12 {
		t.Errorf("E[x^3] = %v, want %v", m3, want)
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestMomentsNegativeClamped(t *testing.T) {
	var m Moments
	m.Observe(-time.Second)
	s := m.Snapshot()
	if s.N != 1 || s.S1 != 0 || s.S2 != 0 || s.S3 != 0 {
		t.Errorf("negative observation not clamped: %+v", s)
	}
}

func TestMomentsSub(t *testing.T) {
	var m Moments
	m.Observe(time.Second)
	before := m.Snapshot()
	m.Observe(3 * time.Second)
	d := m.Snapshot().Sub(before)
	if d.N != 1 || d.S1 != 3 || d.S2 != 9 || d.S3 != 27 {
		t.Errorf("delta = %+v", d)
	}
	// Skewed inputs (prev ahead of cur) clamp to zero instead of going
	// negative.
	skew := before.Sub(m.Snapshot())
	if skew.N != 0 || skew.S1 != 0 || skew.S2 != 0 || skew.S3 != 0 {
		t.Errorf("skewed delta not clamped: %+v", skew)
	}
}

func TestMomentsZeroRaw(t *testing.T) {
	var s MomentsSnapshot
	m1, m2, m3 := s.Raw()
	if m1 != 0 || m2 != 0 || m3 != 0 {
		t.Errorf("empty Raw = %v %v %v", m1, m2, m3)
	}
}
