// Package metrics provides the measurement-side bookkeeping the paper's
// methodology requires: monotonic counters, rate computation over a trimmed
// observation window, and busy-time utilization accounting — the role the
// Linux tool "sar" played in the authors' testbed (verifying the server is
// at ~100% CPU while no other resource saturates). It also supplies the
// exposition primitives of the live telemetry plane: gauges, labeled
// counter/gauge families, raw-moment accumulators, and duration histograms.
//
// # Histogram bucket boundaries
//
// Histograms use HistogramBuckets fixed log2-scale duration buckets.
// Bucket 0 counts observations in [0 ns, 1 ns); bucket i (1 <= i <
// HistogramBuckets-1) counts observations d with 2^(i-1) ns <= d < 2^i ns;
// the last bucket is unbounded above. The exclusive upper bound of bucket i
// is therefore 2^i ns (BucketBound), covering sub-nanosecond to ~34 s with
// at most a factor-of-two relative bucket width.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic event counter safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Window measures a rate over an observation interval with warm-up and
// cool-down trimming, the paper's "each experiment takes 100 s but we cut
// off the first and last 5 s".
type Window struct {
	start, end     uint64
	startT, endT   time.Time
	started, ended bool
}

// Start records the counter value at the beginning of the trimmed window.
func (w *Window) Start(c *Counter, now time.Time) {
	w.start = c.Value()
	w.startT = now
	w.started = true
}

// End records the counter value at the end of the trimmed window.
func (w *Window) End(c *Counter, now time.Time) {
	w.end = c.Value()
	w.endT = now
	w.ended = true
}

// Errors of the metrics package.
var (
	// ErrWindow is returned for incomplete or inverted windows.
	ErrWindow = errors.New("metrics: invalid observation window")
)

// Rate returns events per second within the window.
func (w *Window) Rate() (float64, error) {
	if !w.started || !w.ended {
		return 0, fmt.Errorf("%w: not started/ended", ErrWindow)
	}
	dur := w.endT.Sub(w.startT).Seconds()
	if dur <= 0 {
		return 0, fmt.Errorf("%w: non-positive duration %g s", ErrWindow, dur)
	}
	if w.end < w.start {
		return 0, fmt.Errorf("%w: counter decreased", ErrWindow)
	}
	return float64(w.end-w.start) / dur, nil
}

// Count returns the number of events within the window.
func (w *Window) Count() (uint64, error) {
	if !w.started || !w.ended {
		return 0, fmt.Errorf("%w: not started/ended", ErrWindow)
	}
	if w.end < w.start {
		return 0, fmt.Errorf("%w: counter decreased", ErrWindow)
	}
	return w.end - w.start, nil
}

// BusyMeter accumulates busy time to compute a utilization, like the CPU
// column of sar: utilization = busy / elapsed.
type BusyMeter struct {
	mu       sync.Mutex
	busy     time.Duration
	openedAt time.Time
	open     bool
	epoch    time.Time
	epochSet bool
}

// Reset restarts the measurement at now.
func (b *BusyMeter) Reset(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.busy = 0
	b.epoch = now
	b.epochSet = true
	b.open = false
}

// BeginBusy marks the server busy from now.
func (b *BusyMeter) BeginBusy(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.epochSet {
		b.epoch = now
		b.epochSet = true
	}
	if !b.open {
		b.open = true
		b.openedAt = now
	}
}

// EndBusy marks the server idle from now.
func (b *BusyMeter) EndBusy(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		b.busy += now.Sub(b.openedAt)
		b.open = false
	}
}

// AddBusy accounts a busy span directly (for virtual-time callers).
func (b *BusyMeter) AddBusy(d time.Duration) {
	if d < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.busy += d
}

// Utilization returns busy/elapsed in [0, 1] as of now.
func (b *BusyMeter) Utilization(now time.Time) (float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.epochSet {
		return 0, fmt.Errorf("%w: meter never started", ErrWindow)
	}
	elapsed := now.Sub(b.epoch)
	if elapsed <= 0 {
		return 0, fmt.Errorf("%w: non-positive elapsed %v", ErrWindow, elapsed)
	}
	busy := b.busy
	if b.open {
		busy += now.Sub(b.openedAt)
	}
	u := float64(busy) / float64(elapsed)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u, nil
}

// HistogramBuckets is the number of log-scale duration buckets of a
// Histogram. Bucket i counts observations d with 2^(i-1) ns <= d < 2^i ns
// (bucket 0 holds sub-nanosecond and zero observations, the last bucket is
// unbounded above), covering sub-ns to ~34 s.
const HistogramBuckets = 36

// Histogram accumulates a duration distribution with lock-free atomic
// updates: count, sum, max, and fixed log2-scale buckets. It is the
// per-stage timer of the broker's dispatch pipeline, cheap enough to sit on
// the hot path (a handful of uncontended atomic adds per observation).
// The zero value is ready for use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [HistogramBuckets]atomic.Uint64
}

// bucketIndex returns the log2 bucket of a duration in nanoseconds.
func bucketIndex(ns uint64) int {
	i := bits.Len64(ns) // 0 for ns==0, k for 2^(k-1) <= ns < 2^k
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	return i
}

// Observe records one duration. Negative durations are clamped to zero
// (the monotonic clock does not go backwards, but callers may subtract
// wall-clock readings).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Timer times one event into a Histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts timing an event. Stop records the elapsed time.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the time elapsed since StartTimer.
func (t Timer) Stop() { t.h.Observe(time.Since(t.start)) }

// HistogramSnapshot is a point-in-time copy of a Histogram's state.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Sum is the total observed time in nanoseconds.
	Sum uint64
	// Max is the largest single observation in nanoseconds.
	Max uint64
	// Buckets are the per-log2-bucket observation counts.
	Buckets [HistogramBuckets]uint64
}

// Snapshot copies the histogram state. Concurrent observers may land
// between the field reads, so totals are exact only while the histogram is
// quiescent; for windowed measurement use two snapshots and Sub.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the mean observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Sub returns the histogram delta s - prev for windowed measurement
// (count, sum and buckets subtract; Max cannot be windowed and is kept
// from s, i.e. it remains the running maximum). Because Snapshot is not
// atomic across fields, two snapshots racing concurrent observers can be
// mutually inconsistent (e.g. prev read a bucket after an Observe that s's
// count read happened before); every subtraction therefore clamps at zero
// instead of wrapping the unsigned counters around.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := s
	d.Count = clampSub(s.Count, prev.Count)
	d.Sum = clampSub(s.Sum, prev.Sum)
	for i := range d.Buckets {
		d.Buckets[i] = clampSub(s.Buckets[i], prev.Buckets[i])
	}
	return d
}

// clampSub returns a - b, clamped at zero when b > a (counter skew between
// racing snapshots must not wrap around).
func clampSub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// BucketBound returns the exclusive upper bound of histogram bucket i in
// nanoseconds: 1 for bucket 0, 2^i for interior buckets, and +Inf for the
// unbounded last bucket.
func BucketBound(i int) float64 {
	if i >= HistogramBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// Quantile estimates the p-quantile (0 <= p < 1) of the recorded
// distribution by linear interpolation inside the log2 bucket holding the
// rank. The unbounded last bucket is capped at Max. With no observations
// the estimate is 0.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return time.Duration(s.Max)
	}
	rank := p * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := BucketBound(i)
			if math.IsInf(hi, 1) || hi > float64(s.Max) {
				hi = float64(s.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return time.Duration(lo + frac*(hi-lo))
		}
		cum = next
	}
	return time.Duration(s.Max)
}

// Snapshot is a point-in-time view of a named counter set, for reporting.
type Snapshot struct {
	Time   time.Time
	Values map[string]uint64
}

// Registry is a named-counter registry for the harness's periodic
// collection thread ("a management thread collects the measured values
// ... in periodic intervals").
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns (creating on demand) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot captures all counters at time now.
func (r *Registry) Snapshot(now time.Time) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	values := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		values[name] = c.Value()
	}
	return Snapshot{Time: now, Values: values}
}
