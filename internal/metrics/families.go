package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the exposition-side primitives of the telemetry plane:
// gauges, labeled counter/gauge families, and the raw-moment accumulator
// behind the online M/G/1 model-drift monitor. The families are
// deliberately minimal — a name, a help string, fixed label names, and
// children keyed by their label values — just enough structure for
// internal/telemetry to render them in Prometheus text format.

// Gauge is a settable float64 value safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// labelKey joins label values into a map key. The separator cannot occur
// in rendered output ambiguity because children keep their value slice.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// family is the shared bookkeeping of GaugeVec and CounterVec.
type family[T any] struct {
	mu       sync.Mutex
	children map[string]*T
	values   map[string][]string
}

func (f *family[T]) with(labelNames, labelValues []string) *T {
	if len(labelValues) != len(labelNames) {
		panic("metrics: label value count does not match family label names")
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.children == nil {
		f.children = make(map[string]*T)
		f.values = make(map[string][]string)
	}
	c, ok := f.children[key]
	if !ok {
		c = new(T)
		f.children[key] = c
		f.values[key] = append([]string(nil), labelValues...)
	}
	return c
}

// each visits children in deterministic (sorted-key) order.
func (f *family[T]) each(fn func(labelValues []string, c *T)) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type entry struct {
		values []string
		c      *T
	}
	entries := make([]entry, len(keys))
	for i, k := range keys {
		entries[i] = entry{values: f.values[k], c: f.children[k]}
	}
	f.mu.Unlock()
	for _, e := range entries {
		fn(e.values, e.c)
	}
}

// GaugeVec is a labeled gauge family: one Gauge per distinct label-value
// tuple, created on demand by With.
type GaugeVec struct {
	// Name is the metric name, Help its exposition help line.
	Name, Help string
	labelNames []string
	fam        family[Gauge]
}

// NewGaugeVec returns an empty gauge family.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{Name: name, Help: help, labelNames: labelNames}
}

// LabelNames returns the family's label names.
func (v *GaugeVec) LabelNames() []string { return v.labelNames }

// With returns (creating on demand) the child gauge for the given label
// values. It panics when the value count does not match the label names —
// a programming error, like an index out of range.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.with(v.labelNames, labelValues)
}

// Each visits every child in deterministic order.
func (v *GaugeVec) Each(fn func(labelValues []string, g *Gauge)) { v.fam.each(fn) }

// CounterVec is a labeled counter family: one Counter per distinct
// label-value tuple, created on demand by With.
type CounterVec struct {
	// Name is the metric name, Help its exposition help line.
	Name, Help string
	labelNames []string
	fam        family[Counter]
}

// NewCounterVec returns an empty counter family.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{Name: name, Help: help, labelNames: labelNames}
}

// LabelNames returns the family's label names.
func (v *CounterVec) LabelNames() []string { return v.labelNames }

// With returns (creating on demand) the child counter for the given label
// values, with the same arity contract as GaugeVec.With.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.with(v.labelNames, labelValues)
}

// Each visits every child in deterministic order.
func (v *CounterVec) Each(fn func(labelValues []string, c *Counter)) { v.fam.each(fn) }

// Moments accumulates the first three raw moments of a duration sample in
// seconds: exactly the E[B], E[B^2], E[B^3] inputs of the paper's
// Pollaczek–Khinchine formulas (Eqs. 4–5), measured instead of assumed.
// A histogram's log2 buckets are too coarse for third moments, so the
// sums are kept exactly. The zero value is ready for use.
type Moments struct {
	mu         sync.Mutex
	n          uint64
	s1, s2, s3 float64
}

// Observe records one duration. Negative durations are clamped to zero.
func (m *Moments) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.ObserveValue(d.Seconds())
}

// ObserveValue records one dimensionless sample — e.g. a batch size, whose
// first three moments parameterize the M^X/G/1 batch-arrival extension the
// same way the duration moments parameterize Eqs. 4–5. Negative values are
// clamped to zero.
func (m *Moments) ObserveValue(x float64) {
	if x < 0 {
		x = 0
	}
	x2 := x * x
	m.mu.Lock()
	m.n++
	m.s1 += x
	m.s2 += x2
	m.s3 += x2 * x
	m.mu.Unlock()
}

// Snapshot returns a consistent point-in-time copy of the accumulator.
func (m *Moments) Snapshot() MomentsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MomentsSnapshot{N: m.n, S1: m.s1, S2: m.s2, S3: m.s3}
}

// MomentsSnapshot is a point-in-time copy of a Moments accumulator.
type MomentsSnapshot struct {
	// N is the number of observations.
	N uint64
	// S1, S2, S3 are the sums of x, x^2 and x^3 over all observations,
	// with x in seconds.
	S1, S2, S3 float64
}

// Sub returns the windowed delta s - prev, clamping each field at zero on
// counter skew (see HistogramSnapshot.Sub).
func (s MomentsSnapshot) Sub(prev MomentsSnapshot) MomentsSnapshot {
	d := MomentsSnapshot{
		N:  clampSub(s.N, prev.N),
		S1: s.S1 - prev.S1,
		S2: s.S2 - prev.S2,
		S3: s.S3 - prev.S3,
	}
	if d.S1 < 0 {
		d.S1 = 0
	}
	if d.S2 < 0 {
		d.S2 = 0
	}
	if d.S3 < 0 {
		d.S3 = 0
	}
	return d
}

// Raw returns the raw sample moments (E[x], E[x^2], E[x^3]) in seconds,
// or zeros with no observations.
func (s MomentsSnapshot) Raw() (m1, m2, m3 float64) {
	if s.N == 0 {
		return 0, 0, 0
	}
	n := float64(s.N)
	return s.S1 / n, s.S2 / n, s.S3 / n
}

// Mean returns the sample mean in seconds.
func (s MomentsSnapshot) Mean() float64 {
	m1, _, _ := s.Raw()
	return m1
}
