package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Errorf("Value = %d, want %d", got, 8*1500)
	}
}

func TestWindowRate(t *testing.T) {
	var c Counter
	var w Window
	t0 := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

	c.Add(100) // pre-window warm-up traffic, must be excluded
	w.Start(&c, t0)
	c.Add(900)
	w.End(&c, t0.Add(90*time.Second)) // the paper's 90 s window

	rate, err := w.Rate()
	if err != nil {
		t.Fatal(err)
	}
	if rate != 10 {
		t.Errorf("Rate = %g, want 10", rate)
	}
	n, err := w.Count()
	if err != nil || n != 900 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestWindowErrors(t *testing.T) {
	var w Window
	if _, err := w.Rate(); !errors.Is(err, ErrWindow) {
		t.Errorf("unstarted Rate err = %v", err)
	}
	var c Counter
	t0 := time.Now()
	w.Start(&c, t0)
	if _, err := w.Rate(); !errors.Is(err, ErrWindow) {
		t.Errorf("unended Rate err = %v", err)
	}
	w.End(&c, t0) // zero duration
	if _, err := w.Rate(); !errors.Is(err, ErrWindow) {
		t.Errorf("zero duration err = %v", err)
	}
	if _, err := w.Count(); err != nil {
		t.Errorf("zero-duration Count err = %v (count itself is fine)", err)
	}
}

func TestBusyMeterUtilization(t *testing.T) {
	var b BusyMeter
	t0 := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	b.Reset(t0)
	// Busy 30 of 100 seconds.
	b.BeginBusy(t0.Add(10 * time.Second))
	b.EndBusy(t0.Add(40 * time.Second))
	u, err := b.Utilization(t0.Add(100 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.3) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.3", u)
	}
	// An open busy interval counts up to 'now'.
	b.BeginBusy(t0.Add(100 * time.Second))
	u, err = b.Utilization(t0.Add(130 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-60.0/130.0) > 1e-12 {
		t.Errorf("Utilization with open span = %g", u)
	}
}

func TestBusyMeterVirtualTime(t *testing.T) {
	var b BusyMeter
	t0 := time.Now()
	b.Reset(t0)
	b.AddBusy(900 * time.Millisecond)
	b.AddBusy(-time.Second) // ignored
	u, err := b.Utilization(t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.9) > 1e-9 {
		t.Errorf("Utilization = %g, want 0.9", u)
	}
}

func TestBusyMeterClamping(t *testing.T) {
	var b BusyMeter
	t0 := time.Now()
	b.Reset(t0)
	b.AddBusy(10 * time.Second)
	u, err := b.Utilization(t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if u != 1 {
		t.Errorf("over-busy utilization = %g, want clamped to 1", u)
	}
}

func TestBusyMeterErrors(t *testing.T) {
	var b BusyMeter
	if _, err := b.Utilization(time.Now()); !errors.Is(err, ErrWindow) {
		t.Errorf("never-started err = %v", err)
	}
	t0 := time.Now()
	b.Reset(t0)
	if _, err := b.Utilization(t0); !errors.Is(err, ErrWindow) {
		t.Errorf("zero elapsed err = %v", err)
	}
}

func TestBusyMeterDoubleBegin(t *testing.T) {
	var b BusyMeter
	t0 := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	b.Reset(t0)
	b.BeginBusy(t0)
	b.BeginBusy(t0.Add(time.Second)) // ignored: already open
	b.EndBusy(t0.Add(2 * time.Second))
	b.EndBusy(t0.Add(3 * time.Second)) // ignored: already closed
	u, err := b.Utilization(t0.Add(4 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.5", u)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("received").Add(10)
	r.Counter("dispatched").Add(20)
	if r.Counter("received") != r.Counter("received") {
		t.Error("Counter not stable per name")
	}
	snap := r.Snapshot(time.Now())
	if snap.Values["received"] != 10 || snap.Values["dispatched"] != 20 {
		t.Errorf("snapshot = %+v", snap.Values)
	}
	// Mutating the snapshot must not affect the registry.
	snap.Values["received"] = 999
	if r.Counter("received").Value() != 10 {
		t.Error("snapshot aliased registry state")
	}
}
