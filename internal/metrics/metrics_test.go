package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Errorf("Value = %d, want %d", got, 8*1500)
	}
}

func TestWindowRate(t *testing.T) {
	var c Counter
	var w Window
	t0 := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

	c.Add(100) // pre-window warm-up traffic, must be excluded
	w.Start(&c, t0)
	c.Add(900)
	w.End(&c, t0.Add(90*time.Second)) // the paper's 90 s window

	rate, err := w.Rate()
	if err != nil {
		t.Fatal(err)
	}
	if rate != 10 {
		t.Errorf("Rate = %g, want 10", rate)
	}
	n, err := w.Count()
	if err != nil || n != 900 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestWindowErrors(t *testing.T) {
	var w Window
	if _, err := w.Rate(); !errors.Is(err, ErrWindow) {
		t.Errorf("unstarted Rate err = %v", err)
	}
	var c Counter
	t0 := time.Now()
	w.Start(&c, t0)
	if _, err := w.Rate(); !errors.Is(err, ErrWindow) {
		t.Errorf("unended Rate err = %v", err)
	}
	w.End(&c, t0) // zero duration
	if _, err := w.Rate(); !errors.Is(err, ErrWindow) {
		t.Errorf("zero duration err = %v", err)
	}
	if _, err := w.Count(); err != nil {
		t.Errorf("zero-duration Count err = %v (count itself is fine)", err)
	}
}

func TestBusyMeterUtilization(t *testing.T) {
	var b BusyMeter
	t0 := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	b.Reset(t0)
	// Busy 30 of 100 seconds.
	b.BeginBusy(t0.Add(10 * time.Second))
	b.EndBusy(t0.Add(40 * time.Second))
	u, err := b.Utilization(t0.Add(100 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.3) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.3", u)
	}
	// An open busy interval counts up to 'now'.
	b.BeginBusy(t0.Add(100 * time.Second))
	u, err = b.Utilization(t0.Add(130 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-60.0/130.0) > 1e-12 {
		t.Errorf("Utilization with open span = %g", u)
	}
}

func TestBusyMeterVirtualTime(t *testing.T) {
	var b BusyMeter
	t0 := time.Now()
	b.Reset(t0)
	b.AddBusy(900 * time.Millisecond)
	b.AddBusy(-time.Second) // ignored
	u, err := b.Utilization(t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.9) > 1e-9 {
		t.Errorf("Utilization = %g, want 0.9", u)
	}
}

func TestBusyMeterClamping(t *testing.T) {
	var b BusyMeter
	t0 := time.Now()
	b.Reset(t0)
	b.AddBusy(10 * time.Second)
	u, err := b.Utilization(t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if u != 1 {
		t.Errorf("over-busy utilization = %g, want clamped to 1", u)
	}
}

func TestBusyMeterErrors(t *testing.T) {
	var b BusyMeter
	if _, err := b.Utilization(time.Now()); !errors.Is(err, ErrWindow) {
		t.Errorf("never-started err = %v", err)
	}
	t0 := time.Now()
	b.Reset(t0)
	if _, err := b.Utilization(t0); !errors.Is(err, ErrWindow) {
		t.Errorf("zero elapsed err = %v", err)
	}
}

func TestBusyMeterDoubleBegin(t *testing.T) {
	var b BusyMeter
	t0 := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	b.Reset(t0)
	b.BeginBusy(t0)
	b.BeginBusy(t0.Add(time.Second)) // ignored: already open
	b.EndBusy(t0.Add(2 * time.Second))
	b.EndBusy(t0.Add(3 * time.Second)) // ignored: already closed
	u, err := b.Utilization(t0.Add(4 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.5", u)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("received").Add(10)
	r.Counter("dispatched").Add(20)
	if r.Counter("received") != r.Counter("received") {
		t.Error("Counter not stable per name")
	}
	snap := r.Snapshot(time.Now())
	if snap.Values["received"] != 10 || snap.Values["dispatched"] != 20 {
		t.Errorf("snapshot = %+v", snap.Values)
	}
	// Mutating the snapshot must not affect the registry.
	snap.Values["received"] = 999
	if r.Counter("received").Value() != 10 {
		t.Error("snapshot aliased registry state")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, 1, 1023, 1024, 5 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	h.Observe(-time.Second) // clamped to zero
	s := h.Snapshot()
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	wantSum := uint64(1 + 1023 + 1024 + 5000 + 1000000)
	if s.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != 1000000 {
		t.Errorf("Max = %d, want 1000000", s.Max)
	}
	if got := s.Mean(); got != time.Duration(wantSum/7) {
		t.Errorf("Mean = %v, want %v", got, time.Duration(wantSum/7))
	}
	// Bucket placement: 0 ns twice in bucket 0; 1 ns in bucket 1 (2^0 <=
	// 1 < 2^1); 1023 in bucket 10; 1024 in bucket 11.
	for _, tc := range []struct{ bucket, want int }{{0, 2}, {1, 1}, {10, 1}, {11, 1}} {
		if got := int(s.Buckets[tc.bucket]); got != tc.want {
			t.Errorf("Buckets[%d] = %d, want %d", tc.bucket, got, tc.want)
		}
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket total %d != Count %d", total, s.Count)
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("zero histogram snapshot = %+v", s)
	}
	if s.Mean() != 0 {
		t.Errorf("Mean of empty histogram = %v, want 0", s.Mean())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(math.MaxInt64)) // far beyond the last bucket boundary
	s := h.Snapshot()
	if s.Buckets[HistogramBuckets-1] != 1 {
		t.Errorf("huge observation not in last bucket: %v", s.Buckets)
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Observe(100)
	before := h.Snapshot()
	h.Observe(200)
	h.Observe(300)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 {
		t.Errorf("delta Count = %d, want 2", d.Count)
	}
	if d.Sum != 500 {
		t.Errorf("delta Sum = %d, want 500", d.Sum)
	}
	// Max is a running maximum, not windowed.
	if d.Max != 300 {
		t.Errorf("delta Max = %d, want 300 (running max)", d.Max)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*each + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Errorf("Count = %d, want %d", s.Count, workers*each)
	}
	if s.Max != workers*each-1 {
		t.Errorf("Max = %d, want %d", s.Max, workers*each-1)
	}
}

func TestTimer(t *testing.T) {
	var h Histogram
	tm := StartTimer(&h)
	time.Sleep(time.Millisecond)
	tm.Stop()
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	if s.Sum < uint64(500*time.Microsecond) {
		t.Errorf("timed sleep recorded only %v", time.Duration(s.Sum))
	}
}

func TestHistogramSubClampsSkew(t *testing.T) {
	var h Histogram
	h.Observe(100)
	later := h.Snapshot()
	h.Observe(100)
	earlier := h.Snapshot()
	// Subtracting a later snapshot from an earlier one models the field
	// skew racing observers can produce; the delta must clamp at zero, not
	// wrap around the unsigned counters.
	d := later.Sub(earlier)
	if d.Count != 0 || d.Sum != 0 {
		t.Errorf("skewed delta not clamped: count=%d sum=%d", d.Count, d.Sum)
	}
	for i, c := range d.Buckets {
		if c > 1<<63 {
			t.Errorf("bucket %d wrapped: %d", i, c)
		}
	}
}

func TestBucketBound(t *testing.T) {
	if BucketBound(0) != 1 {
		t.Errorf("BucketBound(0) = %v, want 1", BucketBound(0))
	}
	if BucketBound(10) != 1024 {
		t.Errorf("BucketBound(10) = %v, want 1024", BucketBound(10))
	}
	if !math.IsInf(BucketBound(HistogramBuckets-1), 1) {
		t.Errorf("last bucket bound = %v, want +Inf", BucketBound(HistogramBuckets-1))
	}
	// Bounds are consistent with bucketIndex: an observation lands strictly
	// below its bucket's bound and at/above the previous bound.
	for _, ns := range []uint64{0, 1, 2, 3, 1023, 1024, 1 << 30} {
		i := bucketIndex(ns)
		if float64(ns) >= BucketBound(i) {
			t.Errorf("ns=%d in bucket %d but bound is %v", ns, i, BucketBound(i))
		}
		if i > 0 && float64(ns) < BucketBound(i-1)/2 {
			t.Errorf("ns=%d below bucket %d's range", ns, i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0); got != 0 {
		t.Errorf("q0 = %v, want 0", got)
	}
	if got := s.Quantile(1); got != time.Millisecond {
		t.Errorf("q1 = %v, want 1ms (max)", got)
	}
	// Log2 buckets have factor-2 resolution: the estimate must be within
	// a factor of 2 of the true quantile.
	for _, p := range []float64{0.25, 0.5, 0.9, 0.99} {
		want := time.Duration(p*1000) * time.Microsecond
		got := s.Quantile(p)
		if got < want/2 || got > want*2 {
			t.Errorf("q%.2f = %v, want within 2x of %v", p, got, want)
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty q50 = %v", got)
	}
}
