package stress

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
)

// Hard ceilings the wall enforces. They are deliberately loose against
// the measured values (roughly 3–5x headroom) so hardware variation does
// not flake CI, while still catching an accidental O(n) regression —
// e.g. reintroducing per-subscription snapshot copies or losing filter
// interning would blow through them by orders of magnitude.
const (
	// maxBytesPerSub bounds the marginal live-heap bytes per subscription
	// at the 10^5 population.
	maxBytesPerSub = 1024
	// maxRebuildAfterBatch bounds the Index() rebuild after a 64-op churn
	// batch on a 10^5 population: the rebuild is lazy and proportional to
	// the change batch, not the population.
	maxRebuildAfterBatch = 20 * time.Millisecond
	// maxRebuildAllocsPerOp bounds rebuild allocations per churned op.
	maxRebuildAllocsPerOp = 64
)

// soak reports whether the full-size soak legs (10^6 subscriptions, long
// churn) should run. They sit behind JMS_STRESS=1 / `make stress`.
func soak() bool { return os.Getenv("JMS_STRESS") == "1" }

// TestChurnStorm100k is the tentpole leg: a 10^5-subscription population
// survives churn storms with lazy, allocation-bounded index rebuilds and
// a bounded interner.
func TestChurnStorm100k(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 20_000
	}
	p, err := BuildPopulation(n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Registry.TotalSubscriptions(); got != n {
		t.Fatalf("TotalSubscriptions = %d, want %d", got, n)
	}
	// Interning collapses the population's rules: three filter families
	// cycling 1024 rule strings each, regardless of n.
	if got := p.Registry.InternedRules(); got > 3*1024 {
		t.Errorf("InternedRules = %d, want <= %d", got, 3*1024)
	}

	rng := rand.New(rand.NewSource(7))
	p.Topic.Index() // settle the initial build before timing rebuilds

	storms := 20
	if testing.Short() {
		storms = 5
	}
	var worst time.Duration
	var worstAllocs uint64
	for i := 0; i < storms; i++ {
		const batch = 64
		elapsed, allocs, err := p.RebuildLatency(rng, batch)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed > worst {
			worst = elapsed
		}
		if allocs > worstAllocs {
			worstAllocs = allocs
		}
		if elapsed > maxRebuildAfterBatch {
			t.Errorf("storm %d: rebuild after %d-op batch took %v (> %v)",
				i, batch, elapsed, maxRebuildAfterBatch)
		}
		if allocs > batch*maxRebuildAllocsPerOp {
			t.Errorf("storm %d: rebuild allocated %d times for a %d-op batch (> %d/op)",
				i, allocs, batch, maxRebuildAllocsPerOp)
		}
	}
	t.Logf("population %d: worst rebuild %v, worst rebuild allocs %d", n, worst, worstAllocs)

	// Verify the index still matches correctly after the storms: probe an
	// exact literal against a linear scan of the snapshot.
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("lit-5"); err != nil {
		t.Fatal(err)
	}
	idx, _ := p.Topic.Index()
	subs, _ := p.Topic.Snapshot()
	want := 0
	for _, s := range subs {
		if s.Filter.Matches(m) {
			want++
		}
	}
	matched, _ := idx.Match(m, nil)
	if len(matched) != want {
		t.Fatalf("post-storm index matched %d, linear scan %d", len(matched), want)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.Registry.InternedRules(); got != 0 {
		t.Errorf("InternedRules after teardown = %d, want 0", got)
	}
}

// TestBytesPerSubscription pins the memory floor of the tentpole: the
// marginal live-heap cost per subscription stays under maxBytesPerSub at
// the 10^5 population.
func TestBytesPerSubscription(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 20_000
	}
	bytesPerSub, err := BytesPerSub(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("population %d: %.1f bytes/subscription", n, bytesPerSub)
	if bytesPerSub > maxBytesPerSub {
		t.Errorf("bytes/subscription = %.1f, ceiling %d", bytesPerSub, maxBytesPerSub)
	}
}

// TestSoakMillionSubscriptions is the 10^6 soak: population build, churn
// storm, memory and rebuild ceilings at full scale. Run via `make stress`
// (JMS_STRESS=1); it needs ~1 GiB of heap and tens of seconds.
func TestSoakMillionSubscriptions(t *testing.T) {
	if !soak() {
		t.Skip("set JMS_STRESS=1 (or run `make stress`) for the 10^6 soak")
	}
	const n = 1_000_000
	bytesPerSub, err := BytesPerSub(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("population %d: %.1f bytes/subscription", n, bytesPerSub)
	if bytesPerSub > maxBytesPerSub {
		t.Errorf("bytes/subscription = %.1f, ceiling %d", bytesPerSub, maxBytesPerSub)
	}

	p, err := BuildPopulation(n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	p.Topic.Index()
	for i := 0; i < 50; i++ {
		const batch = 256
		elapsed, _, err := p.RebuildLatency(rng, batch)
		if err != nil {
			t.Fatal(err)
		}
		// The lazy rebuild must stay batch-proportional even at 10^6.
		if elapsed > 4*maxRebuildAfterBatch {
			t.Errorf("soak storm %d: rebuild took %v", i, elapsed)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSlowConsumerUnderChurn runs each slow-consumer policy on a live
// broker under a publish storm with churning subscribers and one
// deliberately stalled subscriber, asserting the policy's accounting
// invariant holds under concurrency:
//
//	block        every accepted message reaches every attached subscriber
//	drop-oldest  received + evicted covers every transmit to the slow sub
//	disconnect   the stalled subscriber is kicked, the fleet is unharmed
func TestSlowConsumerUnderChurn(t *testing.T) {
	msgs := 2000
	if testing.Short() {
		msgs = 400
	}
	policies := []broker.SlowConsumerPolicy{
		broker.SlowConsumerBlock,
		broker.SlowConsumerDropOldest,
		broker.SlowConsumerDisconnect,
	}
	for _, policy := range policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			b := broker.New(broker.Options{
				SlowConsumer:     policy,
				SubscriberBuffer: 8,
				InFlight:         64,
			})
			defer b.Close()
			if err := b.ConfigureTopic("t"); err != nil {
				t.Fatal(err)
			}

			// Witness with a deep private buffer, drained continuously.
			witness, err := b.SubscribeBuffered("t", nil, 4*msgs)
			if err != nil {
				t.Fatal(err)
			}
			var witnessGot atomic.Uint64
			witnessDone := make(chan struct{})
			go func() {
				defer close(witnessDone)
				for range witness.Chan() {
					witnessGot.Add(1)
				}
			}()

			// The stalled subscriber: small buffer, never drained while the
			// storm runs (block pacing happens via the witness count).
			slow, err := b.SubscribeBuffered("t", nil, 4)
			if err != nil {
				t.Fatal(err)
			}

			// Churners keep the subscription table moving under the storm.
			var stop atomic.Bool
			var churnWG sync.WaitGroup
			for c := 0; c < 2; c++ {
				churnWG.Add(1)
				go func() {
					defer churnWG.Done()
					for !stop.Load() {
						s, err := b.SubscribeBuffered("t", nil, 4*msgs)
						if err != nil {
							return // broker closing
						}
						drained := make(chan struct{})
						go func() {
							defer close(drained)
							for {
								ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
								_, rerr := s.Receive(ctx)
								cancel()
								if rerr != nil {
									return
								}
							}
						}()
						time.Sleep(time.Millisecond)
						_ = s.Unsubscribe()
						<-drained
					}
				}()
			}

			pubCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			published := 0
			pubErr := make(chan error, 1)
			go func() {
				for i := 0; i < msgs; i++ {
					m := jms.NewMessage("t")
					if err := m.SetInt64Property("seq", int64(i)); err != nil {
						pubErr <- err
						return
					}
					if err := b.Publish(pubCtx, m); err != nil {
						pubErr <- err
						return
					}
				}
				pubErr <- nil
			}()

			if policy == broker.SlowConsumerBlock {
				// Under block the stalled subscriber wedges the pipeline:
				// drain it concurrently (slowly) or the publisher never
				// finishes. The delivery guarantee is then total.
				go func() {
					for {
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						_, rerr := slow.Receive(ctx)
						cancel()
						if rerr != nil {
							return
						}
					}
				}()
			}
			if err := <-pubErr; err != nil {
				t.Fatal(err)
			}
			published = msgs

			// Quiesce: the witness must see every published message.
			deadline := time.Now().Add(10 * time.Second)
			for witnessGot.Load() < uint64(published) {
				if time.Now().After(deadline) {
					t.Fatalf("witness got %d of %d", witnessGot.Load(), published)
				}
				time.Sleep(time.Millisecond)
			}
			stop.Store(true)
			churnWG.Wait()

			st := b.Stats()
			switch policy {
			case broker.SlowConsumerBlock:
				if st.SlowDropped != 0 || st.SlowDisconnects != 0 {
					t.Errorf("block policy counted slow-consumer events: %+v", st)
				}
			case broker.SlowConsumerDropOldest:
				// Drain the stalled subscriber's residue; everything
				// transmitted to it was either received or evicted.
				received := 0
				for {
					ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
					_, rerr := slow.Receive(ctx)
					cancel()
					if rerr != nil {
						break
					}
					received++
				}
				if uint64(received)+st.SlowDropped < uint64(published) {
					t.Errorf("drop-oldest: received %d + dropped %d < published %d",
						received, st.SlowDropped, published)
				}
				if st.SlowDisconnects != 0 {
					t.Errorf("drop-oldest: SlowDisconnects = %d, want 0", st.SlowDisconnects)
				}
			case broker.SlowConsumerDisconnect:
				select {
				case <-slow.Gone():
				case <-time.After(5 * time.Second):
					t.Fatal("stalled subscriber was never kicked")
				}
				if !slow.SlowDisconnected() {
					t.Error("SlowDisconnected = false after kick")
				}
				if _, rerr := slow.Receive(context.Background()); !errors.Is(rerr, broker.ErrSlowConsumer) {
					// Residue may drain first.
					for {
						ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
						_, rerr = slow.Receive(ctx)
						cancel()
						if rerr != nil {
							break
						}
					}
					if !errors.Is(rerr, broker.ErrSlowConsumer) {
						t.Errorf("Receive after kick: %v, want ErrSlowConsumer", rerr)
					}
				}
				if st.SlowDisconnects < 1 {
					t.Errorf("SlowDisconnects = %d, want >= 1", st.SlowDisconnects)
				}
			}
		})
	}
}

// TestSweepSubscriptionScale logs the scale curve EXPERIMENTS.md X11
// records: marginal bytes/subscription and 64-op-batch rebuild latency at
// populations 10^3 → 10^6. Gated behind JMS_STRESS=1 (`make stress`).
func TestSweepSubscriptionScale(t *testing.T) {
	if !soak() {
		t.Skip("set JMS_STRESS=1 (or run `make stress`) for the scale sweep")
	}
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		bytesPerSub, err := BytesPerSub(n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildPopulation(n, 1024)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		p.Topic.Index()
		const storms = 10
		var worst, total time.Duration
		for i := 0; i < storms; i++ {
			elapsed, _, err := p.RebuildLatency(rng, 64)
			if err != nil {
				t.Fatal(err)
			}
			total += elapsed
			if elapsed > worst {
				worst = elapsed
			}
		}
		t.Logf("n=%-8d bytes/sub=%6.1f  rebuild(64-op batch) mean=%v worst=%v",
			n, bytesPerSub, total/storms, worst)
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
