// Package stress is the churn/soak test wall for the subscription store
// and the slow-consumer policies: the instrumentation that turns "the
// broker holds 10^5–10^6 subscriptions" from a claim into a regression-
// pinned measurement. It provides a population builder over the topic
// registry, a churn driver, and memory/latency probes; the legs themselves
// live in the package's tests (short-budget variants run in CI, the full
// soak sits behind the JMS_STRESS environment variable and `make stress`).
package stress

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/topic"
)

// Population is a built subscription population with the bookkeeping the
// churn driver needs to mutate it.
type Population struct {
	Registry *topic.Registry
	Topic    *topic.Topic
	Subs     []*topic.Subscription

	// DistinctRules bounds how many distinct filter rules the population
	// cycles through; interning collapses them to this many canonical
	// instances regardless of population size.
	DistinctRules int
}

// filterFor deterministically picks the i-th subscription's filter: a mix
// of match-all, exact correlation literals, correlation globs and property
// selectors, cycling through DistinctRules distinct rule strings so the
// interner is exercised at every population size.
func filterFor(i, distinct int) (filter.Filter, error) {
	r := i % distinct
	switch i % 4 {
	case 0:
		return nil, nil // match-all
	case 1:
		return filter.NewCorrelationID("lit-" + strconv.Itoa(r))
	case 2:
		return filter.NewCorrelationID("dev-" + strconv.Itoa(r) + "-*")
	default:
		return filter.NewProperty("shard = " + strconv.Itoa(r))
	}
}

// BuildPopulation subscribes n subscriptions on one topic. distinct bounds
// the number of distinct rules per filter family (0 defaults to 1024).
func BuildPopulation(n, distinct int) (*Population, error) {
	if distinct <= 0 {
		distinct = 1024
	}
	r := topic.NewRegistry()
	tp, err := r.Configure("t")
	if err != nil {
		return nil, err
	}
	p := &Population{Registry: r, Topic: tp, DistinctRules: distinct,
		Subs: make([]*topic.Subscription, 0, n)}
	for i := 0; i < n; i++ {
		f, err := filterFor(i, distinct)
		if err != nil {
			return nil, err
		}
		s, err := r.Subscribe("t", f, nil)
		if err != nil {
			return nil, err
		}
		p.Subs = append(p.Subs, s)
	}
	return p, nil
}

// Churn performs ops random subscribe/unsubscribe operations (keeping the
// population size roughly constant) and returns the number performed.
func (p *Population) Churn(rng *rand.Rand, ops int) (int, error) {
	for i := 0; i < ops; i++ {
		if len(p.Subs) == 0 || rng.Intn(2) == 0 {
			f, err := filterFor(rng.Intn(1<<20), p.DistinctRules)
			if err != nil {
				return i, err
			}
			s, err := p.Registry.Subscribe("t", f, nil)
			if err != nil {
				return i, err
			}
			p.Subs = append(p.Subs, s)
		} else {
			k := rng.Intn(len(p.Subs))
			s := p.Subs[k]
			p.Subs[k] = p.Subs[len(p.Subs)-1]
			p.Subs = p.Subs[:len(p.Subs)-1]
			if err := p.Registry.Unsubscribe("t", s.ID); err != nil {
				return i, err
			}
		}
	}
	return ops, nil
}

// Close unsubscribes the whole population.
func (p *Population) Close() error {
	for _, s := range p.Subs {
		if err := p.Registry.Unsubscribe("t", s.ID); err != nil {
			return err
		}
	}
	p.Subs = nil
	return nil
}

// HeapLive returns the live heap bytes after a full GC — the basis of the
// bytes-per-subscription measurement.
func HeapLive() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BytesPerSub measures the marginal live-heap cost of a subscription by
// building a population of n on top of a small baseline population and
// dividing the heap growth by the added count. The baseline absorbs the
// fixed cost of the registry, maps and interner so the quotient reflects
// the per-subscription footprint.
func BytesPerSub(n int) (float64, error) {
	const baseline = 1024
	base, err := BuildPopulation(baseline, 256)
	if err != nil {
		return 0, err
	}
	before := HeapLive()
	grown, err := BuildPopulation(n, 256)
	if err != nil {
		return 0, err
	}
	after := HeapLive()
	runtime.KeepAlive(base)
	runtime.KeepAlive(grown)
	if after <= before {
		return 0, fmt.Errorf("stress: heap did not grow (%d -> %d)", before, after)
	}
	return float64(after-before) / float64(n), nil
}

// RebuildLatency churns batch ops on the population and times the
// following Index() call — the epoch-snapshot rebuild the storm pins. It
// returns the rebuild duration and the allocation count it incurred.
func (p *Population) RebuildLatency(rng *rand.Rand, batch int) (time.Duration, uint64, error) {
	if _, err := p.Churn(rng, batch); err != nil {
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	p.Topic.Index()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, nil
}
