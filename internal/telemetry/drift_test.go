package telemetry

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
	"repro/internal/metrics"
	"repro/internal/mg1"
	"repro/internal/stats"
)

// synthWindow builds a TopicTelemetry window from an exact M/D/1 sample
// path: Poisson arrivals at rate lambda, deterministic service b, waiting
// times from the Lindley recursion W_{k+1} = max(0, W_k + B - A_{k+1}).
// It returns the window and its wall-clock span.
func synthWindow(seed int64, lambda float64, b time.Duration, n int) (broker.TopicTelemetry, time.Duration) {
	rng := stats.NewRNG(seed)
	bs := b.Seconds()
	var tel broker.TopicTelemetry
	var wait, clock float64
	var waitHist, sojournHist metrics.Histogram
	var waitM, svcM metrics.Moments
	for i := 0; i < n; i++ {
		a := rng.Exp(lambda)
		clock += a
		if i > 0 {
			wait = math.Max(0, wait+bs-a)
		}
		wd := time.Duration(wait * float64(time.Second))
		waitHist.Observe(wd)
		waitM.Observe(wd)
		sojournHist.Observe(wd + b)
		svcM.Observe(b)
	}
	tel.Received = uint64(n)
	tel.Wait = waitHist.Snapshot()
	tel.Sojourn = sojournHist.Snapshot()
	tel.WaitMoments = waitM.Snapshot()
	tel.ServiceMoments = svcM.Snapshot()
	return tel, time.Duration(clock * float64(time.Second))
}

// TestComputeMD1Agreement is the acceptance check of the drift monitor:
// on a synthetic M/D/1 window at rho ~= 0.5 the Pollaczek–Khinchine
// prediction and the Lindley-measured waiting time must agree within 15%,
// i.e. the drift ratio is ~1.
func TestComputeMD1Agreement(t *testing.T) {
	const (
		lambda = 500.0
		b      = time.Millisecond // rho = 0.5
		n      = 200000
	)
	delta, window := synthWindow(1, lambda, b, n)
	e := Compute("t", delta, window, MonitoredQuantile, DefaultMinSamples, 1)
	if !e.Valid {
		t.Fatalf("estimate invalid: %q (%+v)", e.Reason, e)
	}
	if math.Abs(e.Rho-0.5) > 0.05 {
		t.Errorf("rho = %v, want ~0.5", e.Rho)
	}
	// Exact M/D/1 mean wait: lambda*b^2 / (2*(1-rho)) = 0.5 ms.
	exact := lambda * b.Seconds() * b.Seconds() / (2 * (1 - 0.5))
	if math.Abs(e.PredictedEW-exact)/exact > 0.10 {
		t.Errorf("predicted E[W] = %v, want ~%v", e.PredictedEW, exact)
	}
	if e.ObservedEW <= 0 {
		t.Fatalf("observed E[W] = %v", e.ObservedEW)
	}
	if rel := math.Abs(e.ObservedEW-e.PredictedEW) / e.PredictedEW; rel > 0.15 {
		t.Errorf("predicted/observed E[W] disagree by %.1f%%: predicted %v observed %v",
			100*rel, e.PredictedEW, e.ObservedEW)
	}
	if e.DriftRatio < 0.85 || e.DriftRatio > 1.15 {
		t.Errorf("drift ratio = %v, want ~1", e.DriftRatio)
	}
	// The observed q99 comes out of a log2-bucketed histogram (factor-2
	// resolution), so only a coarse agreement with the Gamma-approximated
	// prediction is meaningful.
	if e.PredictedQ <= 0 || e.ObservedQ <= 0 {
		t.Fatalf("quantiles: predicted %v observed %v", e.PredictedQ, e.ObservedQ)
	}
	if e.ObservedQ < e.PredictedQ/2 || e.ObservedQ > e.PredictedQ*2 {
		t.Errorf("q99 disagrees beyond histogram resolution: predicted %v observed %v",
			e.PredictedQ, e.ObservedQ)
	}
}

// TestComputeBatchedWindow drives the batch-aware branch: a synthetic
// M^X/D/1 window (fixed batches of 4) must be predicted with the
// M^X/G/1 extension — the per-message model would underestimate E[W] by
// the whole batch-mate term and push the drift ratio far above 1.
func TestComputeBatchedWindow(t *testing.T) {
	const (
		lambdaB = 125.0
		k       = 4
		b       = time.Millisecond // rho = lambdaB*k*b = 0.5
		units   = 50000
	)
	rng := stats.NewRNG(5)
	bs := b.Seconds()
	var tel broker.TopicTelemetry
	var wb, clock float64
	var waitHist, sojournHist metrics.Histogram
	var waitM, svcM, batchM metrics.Moments
	for i := 0; i < units; i++ {
		if i > 0 {
			a := rng.Exp(lambdaB)
			clock += a
			wb = math.Max(0, wb-a)
		}
		batchM.ObserveValue(k)
		var prefix float64
		for j := 0; j < k; j++ {
			wd := time.Duration((wb + prefix) * float64(time.Second))
			waitHist.Observe(wd)
			waitM.Observe(wd)
			sojournHist.Observe(wd + b)
			svcM.Observe(b)
			prefix += bs
		}
		wb += prefix
	}
	tel.Received = uint64(units * k)
	tel.Wait = waitHist.Snapshot()
	tel.Sojourn = sojournHist.Snapshot()
	tel.WaitMoments = waitM.Snapshot()
	tel.ServiceMoments = svcM.Snapshot()
	tel.BatchMoments = batchM.Snapshot()
	window := time.Duration(clock * float64(time.Second))

	e := Compute("t", tel, window, MonitoredQuantile, DefaultMinSamples, 1)
	if !e.Valid {
		t.Fatalf("estimate invalid: %q (%+v)", e.Reason, e)
	}
	if math.Abs(e.EX-k) > 1e-9 {
		t.Errorf("E[X] = %v, want %v", e.EX, float64(k))
	}
	if math.Abs(e.Rho-0.5) > 0.05 {
		t.Errorf("rho = %v, want ~0.5", e.Rho)
	}
	// Exact M^X/D/1 mean wait at these parameters:
	// lambda*E[B^2]/(2(1-rho)) + (M2-M1)E[B]/(2 M1 (1-rho))
	//   = 500e-6/1 + 12e-3/4 = 3.5 ms.
	exact := lambdaB * k * bs * bs / (2 * (1 - 0.5))
	exact += float64(k*k-k) * bs / (2 * k * (1 - 0.5))
	if math.Abs(e.PredictedEW-exact)/exact > 0.10 {
		t.Errorf("predicted E[W] = %v, want ~%v", e.PredictedEW, exact)
	}
	if rel := math.Abs(e.ObservedEW-e.PredictedEW) / e.PredictedEW; rel > 0.15 {
		t.Errorf("predicted/observed E[W] disagree by %.1f%%: predicted %v observed %v",
			100*rel, e.PredictedEW, e.ObservedEW)
	}
	if e.DriftRatio < 0.85 || e.DriftRatio > 1.15 {
		t.Errorf("drift ratio = %v, want ~1", e.DriftRatio)
	}
}

// TestComputeDetectsDrift: waits measured from a slower reality than the
// moments fed to the model must push the drift ratio above 1.
func TestComputeDetectsDrift(t *testing.T) {
	delta, window := synthWindow(2, 500, time.Millisecond, 100000)
	// Inflate the observed waits 3x while leaving the model inputs alone —
	// reality got slower than the model believes.
	delta.WaitMoments.S1 *= 3
	e := Compute("t", delta, window, MonitoredQuantile, DefaultMinSamples, 1)
	if !e.Valid {
		t.Fatalf("estimate invalid: %q", e.Reason)
	}
	if e.DriftRatio < 2 {
		t.Errorf("drift ratio = %v, want ~3", e.DriftRatio)
	}
}

func TestComputeInvalidWindows(t *testing.T) {
	delta, window := synthWindow(3, 500, time.Millisecond, 1000)

	if e := Compute("t", delta, 0, MonitoredQuantile, DefaultMinSamples, 1); e.Valid || e.Reason != "empty window" {
		t.Errorf("zero window: %+v", e)
	}
	if e := Compute("t", delta, window, MonitoredQuantile, 5000, 1); e.Valid || e.Reason != "too few samples" {
		t.Errorf("small window: %+v", e)
	}
	// Observed values are still reported on an invalid estimate.
	if e := Compute("t", delta, window, MonitoredQuantile, 5000, 1); e.ObservedEW <= 0 {
		t.Errorf("invalid estimate lost observed wait: %+v", e)
	}

	// An overloaded window (rho >= 1) cannot produce a finite prediction.
	overload, span := synthWindow(4, 2000, time.Millisecond, 1000)
	if e := Compute("t", overload, span, MonitoredQuantile, DefaultMinSamples, 1); e.Valid {
		t.Errorf("overloaded window produced a prediction: %+v", e)
	} else if e.Reason == "" {
		t.Error("overloaded window has no reason")
	}
}

// TestMonitorLive ticks the monitor against a real WaitTiming broker and
// checks the estimates and every exported gauge.
func TestMonitorLive(t *testing.T) {
	b := broker.New(broker.Options{WaitTiming: true, InFlight: 256, SubscriberBuffer: 256})
	if err := b.ConfigureTopic("a"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	mon := NewMonitor(b, time.Second)
	mon.Tick(time.Now()) // baseline

	sub, err := b.Subscribe("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 200
	for i := 0; i < n; i++ {
		if err := b.Publish(ctx, jms.NewMessage("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// The sojourn of the last message lands just after its delivery; give
	// the tracer a moment before closing the window.
	deadline := time.Now().Add(5 * time.Second)
	for b.Telemetry()["a"].ServiceMoments.N < n {
		if time.Now().After(deadline) {
			t.Fatal("tracing never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	mon.Tick(time.Now())

	est, ok := mon.Estimates()["a"]
	if !ok {
		t.Fatal("no estimate for topic a")
	}
	if est.Messages != n || est.Lambda <= 0 || est.ObservedEW < 0 {
		t.Errorf("estimate = %+v", est)
	}
	if !est.Valid {
		t.Errorf("estimate invalid: %q", est.Reason)
	}

	var buf strings.Builder
	WriteMetrics(&buf, Options{Broker: b, Drift: mon})
	body := buf.String()
	for _, g := range mon.GaugeVecs() {
		if !strings.Contains(body, g.Name+`{topic="a"} `) {
			t.Errorf("exposition missing gauge %s", g.Name)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "jms_model_") &&
			(strings.Contains(line, "NaN") || strings.Contains(line, "Inf")) {
			t.Errorf("drift gauge not finite: %q", line)
		}
	}

	// An idle window must keep the previous estimate instead of zeroing it.
	mon.Tick(time.Now().Add(time.Second))
	if est2 := mon.Estimates()["a"]; est2.Messages != n {
		t.Errorf("idle tick rewrote the estimate: %+v", est2)
	}
}

// TestMonitorStartStop covers the loop lifecycle, including Stop without
// Start.
func TestMonitorStartStop(t *testing.T) {
	b := broker.New(broker.Options{WaitTiming: true})
	defer func() { _ = b.Close() }()

	m := NewMonitor(b, 10*time.Millisecond)
	m.Start()
	m.Start() // idempotent
	time.Sleep(30 * time.Millisecond)
	m.Stop()
	m.Stop() // idempotent

	m2 := NewMonitor(b, time.Second)
	m2.Stop() // never started: must not hang
}

// TestComputeMGkBranch pins the model-selection wiring: with servers > 1
// (and no batch moments) Compute must predict with the M/G/k
// approximation. The window is built at offered load a = 2 — unstable for
// a single server, rho = 0.5 across four — so the branch choice is
// observable as valid-vs-unstable, and the prediction must equal the
// mg1.MGkQueue evaluation of the same measured inputs.
func TestComputeMGkBranch(t *testing.T) {
	const (
		lambda = 2000.0
		b      = time.Millisecond
		n      = 100000
	)
	delta, window := synthWindow(7, lambda, b, n)

	if e := Compute("t", delta, window, MonitoredQuantile, DefaultMinSamples, 1); e.Valid {
		t.Fatalf("single server at offered load 2 must be unstable, got %+v", e)
	}

	e := Compute("t", delta, window, MonitoredQuantile, DefaultMinSamples, 4)
	if !e.Valid {
		t.Fatalf("estimate invalid: %q", e.Reason)
	}
	if e.Servers != 4 {
		t.Errorf("Servers = %d, want 4", e.Servers)
	}
	if math.Abs(e.Rho-0.5) > 0.05 {
		t.Errorf("per-server rho = %v, want ~0.5", e.Rho)
	}
	q, err := mg1.NewMGkQueue(e.Lambda, 4, mg1.ServiceMoments{M1: e.EB, M2: e.EB2, M3: e.EB3})
	if err != nil {
		t.Fatal(err)
	}
	if want := q.MeanWait(); math.Abs(e.PredictedEW-want) > 1e-12*want {
		t.Errorf("PredictedEW = %v, want M/G/k %v", e.PredictedEW, want)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	wantQ, err := dist.Quantile(MonitoredQuantile)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.PredictedQ-wantQ) > 1e-12*wantQ {
		t.Errorf("PredictedQ = %v, want %v", e.PredictedQ, wantQ)
	}
}
