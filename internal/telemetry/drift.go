package telemetry

import (
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/metrics"
	"repro/internal/mg1"
)

// This file is the online model-drift monitor: the paper's predicted-vs-
// measured waiting-time comparison (Figs. 8–12) computed continuously on
// the running broker instead of offline. Each tick takes a rolling window
// over the broker's per-topic tracing state (broker.Telemetry), estimates
// the M/GI/1 inputs from it —
//
//	λ      from the windowed arrival count,
//	E[B^k] from the windowed raw service-time moments (Eqs. 7–9 measured
//	       rather than constructed),
//	ρ      = λ·E[B] (Eq. 6),
//
// — evaluates the Pollaczek–Khinchine mean wait (Eq. 4) and the Gamma
// quantile approximation (Eqs. 19–20), and publishes predicted and
// observed E[W]/q99 side by side with their ratio. A drift ratio far from
// one is the operator's signal that reality has diverged from the model's
// assumptions (overload, lost Poisson-ness, service-time inflation).

// MonitoredQuantile is the waiting-time quantile the monitor tracks, the
// paper's q99 dashboard signal.
const MonitoredQuantile = 0.99

// DefaultMinSamples is the minimum number of served messages a window must
// contain before an estimate is attempted; smaller windows stay invalid
// ("too few samples") instead of publishing noise.
const DefaultMinSamples = 50

// Estimate is one topic's windowed model-vs-measurement comparison.
type Estimate struct {
	Topic string `json:"topic"`
	// Window is the wall-clock span of the rolling window; Messages the
	// number of messages served in it.
	Window   time.Duration `json:"window_ns"`
	Messages uint64        `json:"messages"`
	// Lambda is the windowed arrival rate (msgs/s), Rho = Lambda*EB.
	Lambda float64 `json:"lambda"`
	Rho    float64 `json:"rho"`
	// Servers is the effective parallel-server count k the prediction
	// used: 1 on the faithful engine, the shard count on the fast engine.
	// With k > 1 (and no batch moments) the prediction switches from
	// Pollaczek-Khinchine to the M/G/k Lee-Longton approximation.
	Servers int `json:"servers"`
	// EX is the windowed mean batch size E[X] (messages per arrival
	// unit). Set only when the window recorded batch sizes; when it is,
	// the prediction uses the M^X/G/1 extension with the observed
	// batch-size moments instead of the per-message M/G/1 model.
	EX float64 `json:"ex,omitempty"`
	// EB, EB2, EB3 are the measured raw service-time moments (seconds).
	EB  float64 `json:"eb"`
	EB2 float64 `json:"eb2"`
	EB3 float64 `json:"eb3"`
	// PredictedEW and PredictedQ are the model's mean wait (Eq. 4) and
	// MonitoredQuantile waiting-time quantile (Eqs. 19–20), in seconds.
	PredictedEW float64 `json:"predicted_ew"`
	PredictedQ  float64 `json:"predicted_q"`
	// ObservedEW and ObservedQ are the measured mean wait and quantile.
	ObservedEW float64 `json:"observed_ew"`
	ObservedQ  float64 `json:"observed_q"`
	// DriftRatio is ObservedEW / PredictedEW; 1 means the model holds.
	DriftRatio float64 `json:"drift_ratio"`
	// Valid reports whether a prediction was computed; Reason explains an
	// invalid estimate (too few samples, unstable window, ...). Observed
	// values are filled in whenever the window served any message.
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
}

// Compute evaluates one topic's windowed estimate from a telemetry delta.
// servers is the effective parallel-server count (values < 1 are treated
// as 1). Model priority: measured batch moments select the M^X/G/1
// extension; otherwise servers > 1 selects M/G/k; otherwise plain M/G/1.
func Compute(topic string, delta broker.TopicTelemetry, window time.Duration, quantile float64, minSamples uint64, servers int) Estimate {
	if servers < 1 {
		servers = 1
	}
	e := Estimate{Topic: topic, Window: window, Messages: delta.ServiceMoments.N, Servers: servers}
	if window <= 0 {
		e.Reason = "empty window"
		return e
	}
	if delta.WaitMoments.N > 0 {
		e.ObservedEW = delta.WaitMoments.Mean()
		e.ObservedQ = delta.Wait.Quantile(quantile).Seconds()
	}
	e.Lambda = float64(delta.Received) / window.Seconds()
	e.EB, e.EB2, e.EB3 = delta.ServiceMoments.Raw()
	// Measured moments of a (near-)deterministic service time can land a
	// few ulps below the E[B^2] >= E[B]^2 boundary through summation
	// error; clamp to the boundary (zero variance) instead of letting the
	// model reject the window.
	if e.EB2 < e.EB*e.EB {
		e.EB2 = e.EB * e.EB
	}
	// Rho is the per-server utilization: offered load over k servers.
	e.Rho = e.Lambda * e.EB / float64(servers)
	if e.Messages < minSamples {
		e.Reason = "too few samples"
		return e
	}
	b := mg1.ServiceMoments{M1: e.EB, M2: e.EB2, M3: e.EB3}
	var dist mg1.WaitDist
	if bm := delta.BatchMoments; bm.N > 0 {
		// The window recorded arrival-unit batch sizes: predict with the
		// M^X/G/1 extension. The batch-arrival rate is arrival units per
		// second; the batch-size moments are measured, clamped the same
		// way as the service moments (X >= 1 by construction, and
		// E[X^2] >= E[X]^2 can be lost to summation error).
		x1, x2, x3 := bm.Raw()
		if x1 < 1 {
			x1 = 1
		}
		if x2 < x1*x1 {
			x2 = x1 * x1
		}
		e.EX = x1
		lambdaB := float64(bm.N) / window.Seconds()
		q, err := mg1.NewBatchQueue(lambdaB, mg1.BatchMoments{M1: x1, M2: x2, M3: x3}, b)
		if err != nil {
			e.Reason = err.Error()
			return e
		}
		e.PredictedEW = q.MeanWait()
		if dist, err = q.GammaApprox(); err != nil {
			e.Reason = err.Error()
			return e
		}
	} else if servers > 1 {
		q, err := mg1.NewMGkQueue(e.Lambda, servers, b)
		if err != nil {
			e.Reason = err.Error()
			return e
		}
		e.PredictedEW = q.MeanWait()
		if dist, err = q.GammaApprox(); err != nil {
			e.Reason = err.Error()
			return e
		}
	} else {
		q, err := mg1.NewQueue(e.Lambda, b)
		if err != nil {
			e.Reason = err.Error()
			return e
		}
		e.PredictedEW = q.MeanWait()
		if dist, err = q.GammaApprox(); err != nil {
			e.Reason = err.Error()
			return e
		}
	}
	var err error
	if e.PredictedQ, err = dist.Quantile(quantile); err != nil {
		e.Reason = err.Error()
		return e
	}
	switch {
	case e.PredictedEW > 0:
		e.DriftRatio = e.ObservedEW / e.PredictedEW
	case e.ObservedEW == 0:
		e.DriftRatio = 1
	}
	e.Valid = true
	return e
}

// Monitor periodically evaluates Compute over every topic of a broker and
// publishes the results as labeled gauges. The broker must run with
// Options.WaitTiming, otherwise there is nothing to monitor.
type Monitor struct {
	b          *broker.Broker
	interval   time.Duration
	minSamples uint64

	gLambda, gRho, gServiceMean    *metrics.GaugeVec
	gPredEW, gPredQ, gObsEW, gObsQ *metrics.GaugeVec
	gDrift, gWindowMsgs, gServers  *metrics.GaugeVec

	mu     sync.Mutex
	prev   map[string]broker.TopicTelemetry
	prevAt time.Time
	est    map[string]Estimate
	// tg is the flight recorder's windowed stage-decomposition state;
	// nil unless AttachTracer was called (see tracegauges.go).
	tg *traceGauges

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewMonitor returns a monitor evaluating every interval (default 5 s).
func NewMonitor(b *broker.Broker, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Monitor{
		b:          b,
		interval:   interval,
		minSamples: DefaultMinSamples,
		gLambda: metrics.NewGaugeVec("jms_model_lambda",
			"Windowed arrival rate (messages/s) feeding the M/G/1 model.", "topic"),
		gRho: metrics.NewGaugeVec("jms_model_rho",
			"Windowed utilization rho = lambda * E[B] (Eq. 6).", "topic"),
		gServiceMean: metrics.NewGaugeVec("jms_model_service_mean_seconds",
			"Windowed mean service time E[B] (seconds).", "topic"),
		gPredEW: metrics.NewGaugeVec("jms_model_predicted_ew_seconds",
			"Predicted mean waiting time E[W] by Pollaczek-Khinchine (Eq. 4).", "topic"),
		gPredQ: metrics.NewGaugeVec("jms_model_predicted_q99_seconds",
			"Predicted q99 waiting time via the Gamma approximation (Eqs. 19-20).", "topic"),
		gObsEW: metrics.NewGaugeVec("jms_model_observed_ew_seconds",
			"Observed mean waiting time over the window.", "topic"),
		gObsQ: metrics.NewGaugeVec("jms_model_observed_q99_seconds",
			"Observed q99 waiting time over the window.", "topic"),
		gDrift: metrics.NewGaugeVec("jms_model_drift_ratio",
			"Observed / predicted mean waiting time; 1 means the model holds.", "topic"),
		gWindowMsgs: metrics.NewGaugeVec("jms_model_window_messages",
			"Messages served in the evaluation window.", "topic"),
		gServers: metrics.NewGaugeVec("jms_model_servers",
			"Effective parallel-server count k the prediction used (M/G/k for k > 1).", "topic"),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// GaugeVecs returns the monitor's gauge families for exposition,
// including the flight recorder's stage-decomposition families when a
// tracer is attached.
func (m *Monitor) GaugeVecs() []*metrics.GaugeVec {
	out := []*metrics.GaugeVec{
		m.gLambda, m.gRho, m.gServiceMean,
		m.gPredEW, m.gPredQ, m.gObsEW, m.gObsQ,
		m.gDrift, m.gWindowMsgs, m.gServers,
	}
	return append(out, m.traceGaugeVecs()...)
}

// Start establishes the baseline window and launches the evaluation loop;
// Stop ends it. Taking the baseline synchronously means traffic arriving
// right after Start is already inside the first evaluated window instead
// of silently folded into it.
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		m.Tick(time.Now())
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					m.Tick(now)
				case <-m.stop:
					return
				}
			}
		}()
	})
}

// Stop ends the evaluation loop and waits for it. Safe without Start.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	select {
	case <-m.done:
	default:
		m.startOnce.Do(func() { close(m.done) })
		<-m.done
	}
}

// Tick evaluates one rolling window ending now. The first call only
// establishes the baseline. Exported so tests and scrape-driven setups can
// pace the monitor themselves.
func (m *Monitor) Tick(now time.Time) {
	cur := m.b.Telemetry()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tickTrace()
	if m.prev == nil || m.prevAt.IsZero() {
		m.prev, m.prevAt = cur, now
		return
	}
	window := now.Sub(m.prevAt)
	if m.est == nil {
		m.est = make(map[string]Estimate)
	}
	for topic, c := range cur {
		delta := c.Sub(m.prev[topic])
		if delta.Received == 0 && delta.ServiceMoments.N == 0 {
			continue // idle topic: keep the previous estimate and gauges
		}
		e := Compute(topic, delta, window, MonitoredQuantile, m.minSamples, m.b.EffectiveServers())
		m.est[topic] = e
		m.publish(e)
	}
	m.prev, m.prevAt = cur, now
}

// publish moves one estimate into the gauge families. Observed values are
// published whenever the window saw traffic; the prediction gauges only
// update on valid estimates, so they never expose NaN or a half-computed
// window.
func (m *Monitor) publish(e Estimate) {
	m.gLambda.With(e.Topic).Set(e.Lambda)
	m.gRho.With(e.Topic).Set(e.Rho)
	m.gServiceMean.With(e.Topic).Set(e.EB)
	m.gObsEW.With(e.Topic).Set(e.ObservedEW)
	m.gObsQ.With(e.Topic).Set(e.ObservedQ)
	m.gWindowMsgs.With(e.Topic).Set(float64(e.Messages))
	m.gServers.With(e.Topic).Set(float64(e.Servers))
	if e.Valid {
		m.gPredEW.With(e.Topic).Set(e.PredictedEW)
		m.gPredQ.With(e.Topic).Set(e.PredictedQ)
		m.gDrift.With(e.Topic).Set(e.DriftRatio)
	}
}

// Estimates returns the latest estimate per topic.
func (m *Monitor) Estimates() map[string]Estimate {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Estimate, len(m.est))
	for k, v := range m.est {
		out[k] = v
	}
	return out
}
