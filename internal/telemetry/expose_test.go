package telemetry

import (
	"context"
	"flag"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/jms"
	"repro/internal/metrics"
	"repro/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteGolden renders hand-built metric families and compares the
// exposition byte-for-byte against testdata/metrics.golden. Hand-built
// inputs keep the output deterministic; the live sources are covered by
// the grammar and endpoint tests.
func TestWriteGolden(t *testing.T) {
	var buf strings.Builder
	WriteCounter(&buf, "jms_test_events_total", "Events seen.", 42)
	WriteGauge(&buf, "jms_test_depth", "Queue depth.", 2.5)

	var h metrics.Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(2 * time.Microsecond)
	WriteHistogram(&buf, "jms_test_wait_seconds", "Waits.",
		[]Label{{"topic", "a"}}, h.Snapshot())

	gv := metrics.NewGaugeVec("jms_test_ratio", "A labeled gauge.", "topic", "engine")
	gv.With("a", "fast").Set(0.5)
	gv.With("b", "faithful").Set(math.Inf(1))
	WriteGaugeVec(&buf, gv)

	cv := metrics.NewCounterVec("jms_test_hits_total", "A labeled counter.", "path")
	cv.With(`strange"label\with`).Add(7)
	cv.With("plain").Add(3)
	WriteCounterVec(&buf, cv)

	reg := metrics.NewRegistry()
	reg.Counter("client.reconnects").Add(9)
	WriteRegistry(&buf, "jms_registry", reg.Snapshot(time.Unix(0, 0)))

	got := buf.String()
	golden := "testdata/metrics.golden"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// Exposition-format sample grammar: name, optional label set, value.
var sampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
		`(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\\\|\\"|\\n|[^"\\])*"` + // first label
		`(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\\\|\\"|\\n|[^"\\])*")*\})?` + // more labels
		` (\+Inf|-Inf|NaN|[0-9eE.+-]+)$`) // value

// checkExposition asserts every line of a /metrics payload parses under
// the text exposition grammar and that every sample's family was declared
// by a preceding # TYPE line.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	types := map[string]string{}
	samples := 0
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("line %d: malformed TYPE: %q", ln+1, line)
				continue
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown type %q", ln+1, f[3])
			}
			types[f[2]] = f[3]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: does not match sample grammar: %q", ln+1, line)
			continue
		}
		samples++
		name, value := m[1], m[2]
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("line %d: bad value %q: %v", ln+1, value, err)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok {
				if _, isHist := types[trimmed]; isHist {
					base = trimmed
					break
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
	}
	if samples == 0 {
		t.Error("no samples in exposition")
	}
}

// newLiveSetup builds a WaitTiming broker with traffic flowing on topic
// "a" and returns it with its drift monitor.
func newLiveSetup(t *testing.T) (*broker.Broker, *Monitor) {
	t.Helper()
	b := broker.New(broker.Options{WaitTiming: true, StageTiming: true})
	if err := b.ConfigureTopic("a"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b, NewMonitor(b, time.Second)
}

func pump(t *testing.T, b *broker.Broker, n int) {
	t.Helper()
	sub, err := b.Subscribe("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if err := b.Publish(ctx, jms.NewMessage("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsGrammar scrapes a live broker's full exposition and checks
// every line against the format grammar.
func TestMetricsGrammar(t *testing.T) {
	b, mon := newLiveSetup(t)
	pump(t, b, 100)
	mon.Tick(time.Now())
	mon.Tick(time.Now().Add(time.Second))

	reg := metrics.NewRegistry()
	reg.Counter("client.reconnects").Inc()
	var buf strings.Builder
	WriteMetrics(&buf, Options{Broker: b, Drift: mon, Registry: reg})
	body := buf.String()
	checkExposition(t, body)
	for _, want := range []string{
		"jms_broker_received_total 100",
		`jms_broker_wait_seconds_bucket{topic="a",le="+Inf"} 100`,
		`jms_broker_stage_seconds_count{stage="transmit"}`,
		"jms_model_drift_ratio",
		"jms_registry_client_reconnects 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestHandlerEndpoints drives the four HTTP endpoints of NewHandler.
func TestHandlerEndpoints(t *testing.T) {
	b, mon := newLiveSetup(t)
	pump(t, b, 10)
	mon.Tick(time.Now())
	srv := httptest.NewServer(NewHandler(Options{Broker: b, Drift: mon}))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	checkExposition(t, body)

	if resp, body := get("/stats"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"Received": 10`) {
		t.Errorf("/stats = %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestScrapeUnderLoad hammers /metrics and /stats while the broker
// dispatches — the data-race canary for the whole telemetry read path
// (run under -race in CI).
func TestScrapeUnderLoad(t *testing.T) {
	b, mon := newLiveSetup(t)
	srv := httptest.NewServer(NewHandler(Options{Broker: b, Drift: mon}))
	defer srv.Close()

	sub, err := b.Subscribe("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // consumer
		defer wg.Done()
		for {
			if _, err := sub.Receive(ctx); err != nil {
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // ticker
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-done:
				return
			default:
				mon.Tick(time.Now().Add(time.Duration(i) * 10 * time.Millisecond))
			}
		}
	}()
	for s := 0; s < 4; s++ { // scrapers
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}([]string{"/metrics", "/stats"}[s%2])
	}
	for i := 0; i < 2000; i++ {
		if err := b.Publish(ctx, jms.NewMessage("a")); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	cancel()
	wg.Wait()
}

// TestSanitizeName maps arbitrary registry names onto the metric-name
// alphabet.
func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"client.reconnects": "client_reconnects",
		"9lives":            "_lives",
		"ok_name:x9":        "ok_name:x9",
		"spaces here":       "spaces_here",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFormatValue covers the special float spellings.
func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		0:            "0",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func ExampleWriteCounter() {
	WriteCounter(os.Stdout, "jms_example_total", "An example counter.", 7)
	// Output:
	// # HELP jms_example_total An example counter.
	// # TYPE jms_example_total counter
	// jms_example_total 7
}

// TestWireMetricsExposed drives one real publish through a wire server and
// asserts the wire-path counters surface on /metrics and /stats: frames and
// read/write syscalls in, the write-time counter parseable and finite.
func TestWireMetricsExposed(t *testing.T) {
	b := broker.New(broker.Options{InFlight: 16, SubscriberBuffer: 16})
	t.Cleanup(func() { _ = b.Close() })
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := wire.Serve(b, ln)
	t.Cleanup(func() { _ = ws.Close() })
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := cl.Publish(ctx, jms.NewMessage("t")); err != nil {
			t.Fatal(err)
		}
	}

	var buf strings.Builder
	WriteMetrics(&buf, Options{Broker: b, Wire: ws})
	body := buf.String()
	checkExposition(t, body)
	for _, name := range []string{
		"jms_wire_frames_in_total", "jms_wire_bytes_in_total", "jms_wire_read_calls_total",
		"jms_wire_frames_out_total", "jms_wire_bytes_out_total", "jms_wire_write_calls_total",
		"jms_wire_write_seconds_total",
	} {
		if !strings.Contains(body, name+" ") {
			t.Errorf("missing %s in exposition", name)
		}
	}
	// Each publish is one inbound frame and one outbound PUB_ACK.
	stats := CollectStats(Options{Broker: b, Wire: ws})
	if stats.Wire == nil {
		t.Fatal("stats.Wire missing")
	}
	p := stats.Wire.Path
	if p.FramesIn < 5 || p.FramesOut < 5 || p.ReadCalls == 0 || p.WriteCalls == 0 {
		t.Errorf("wire path counters = %+v, want >=5 frames each way", p)
	}
	if p.BytesIn == 0 || p.BytesOut == 0 {
		t.Errorf("wire path bytes = (%d, %d), want nonzero", p.BytesIn, p.BytesOut)
	}
}

// TestMeshMetricsExposed boots a live two-member SSR mesh, floods one
// publish through it, and checks both members' jms_mesh_* series: the
// origin counts the forward out, the peer counts it in, and every sample
// is finite.
func TestMeshMetricsExposed(t *testing.T) {
	const members = 2
	lns := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	brokers := make([]*broker.Broker, members)
	servers := make([]*wire.Server, members)
	meshes := make([]*cluster.WireMesh, members)
	for i := range brokers {
		b := broker.New(broker.Options{InFlight: 16, SubscriberBuffer: 16})
		if err := b.ConfigureTopic("t"); err != nil {
			t.Fatal(err)
		}
		wm, err := cluster.NewWireMesh(cluster.WireMeshConfig{
			Kind:  cluster.TopologySSR,
			Self:  i,
			Addrs: addrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		brokers[i] = b
		meshes[i] = wm
		servers[i] = wire.ServeWith(b, lns[i], wire.ServeOptions{Forwarder: wm})
	}
	t.Cleanup(func() {
		for i := range brokers {
			_ = meshes[i].Close()
			_ = servers[i].Close()
			_ = brokers[i].Close()
		}
	})

	cl, err := client.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	if err := cl.Publish(context.Background(), jms.NewMessage("t")); err != nil {
		t.Fatal(err)
	}

	for i := range brokers {
		var buf strings.Builder
		WriteMetrics(&buf, Options{Broker: brokers[i], Wire: servers[i], Mesh: meshes[i]})
		body := buf.String()
		checkExposition(t, body)
		for _, want := range []string{
			`jms_mesh_role{kind="ssr",self="` + strconv.Itoa(i) + `"} 1`,
			"jms_mesh_peers 1",
			"jms_mesh_forwarded_out_total ",
			"jms_mesh_forwarded_in_total ",
			"jms_mesh_forward_errors_total 0",
			"jms_mesh_reconnects_total 0",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("member %d: missing %q in exposition", i, want)
			}
		}
	}

	origin := CollectStats(Options{Broker: brokers[0], Wire: servers[0], Mesh: meshes[0]})
	peer := CollectStats(Options{Broker: brokers[1], Wire: servers[1], Mesh: meshes[1]})
	if origin.Mesh == nil || peer.Mesh == nil {
		t.Fatal("stats.Mesh missing")
	}
	if origin.Mesh.Kind != "ssr" || origin.Mesh.ForwardedOut != 1 || origin.Mesh.ForwardedIn != 0 {
		t.Errorf("origin mesh stats = %+v, want ssr with 1 forward out", origin.Mesh)
	}
	if peer.Mesh.ForwardedIn != 1 || peer.Mesh.ForwardedOut != 0 {
		t.Errorf("peer mesh stats = %+v, want 1 forward in", peer.Mesh)
	}
}
