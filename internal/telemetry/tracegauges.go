package telemetry

import (
	"repro/internal/metrics"
	"repro/internal/trace"
)

// This file extends the drift monitor with the flight recorder's windowed
// stage decomposition: each Tick also subtracts the recorder's cumulative
// per-stage accumulators over the same rolling window and publishes
//
//	W_obs ≈ W_queue + Σ stage residencies
//
// as jms_trace_stage_* gauges. Where the jms_model_* gauges compare the
// paper's predicted E[W] against the measured one, these attribute the
// measured sojourn to named pipeline stages — including the egress-side
// ones (encode, egress_queue, egress_write) that name the components of
// the socket-vs-dispatch t_tx gap (ROADMAP item 3).

// traceGauges is the monitor's trace-decomposition state; nil unless
// AttachTracer was called.
type traceGauges struct {
	tracer *trace.Recorder

	// gMean is the windowed mean residency per stage occurrence; gShare
	// is the stage's per-message share of the mean sojourn (occurrences
	// per finished message folded in, so Σ share over the broker stages
	// approaches jms_trace_coverage_ratio).
	gMean  *metrics.GaugeVec
	gShare *metrics.GaugeVec
	// gSojourn is the windowed mean sojourn of the sampled population;
	// gCoverage the fraction of it the queue+match+replicate+transmit
	// spans explain; gMessages the sampled messages finished in the
	// window.
	gSojourn  *metrics.GaugeVec
	gCoverage *metrics.GaugeVec
	gMessages *metrics.GaugeVec

	prev    trace.StageStats
	hasPrev bool
}

// AttachTracer connects a flight recorder to the monitor: every Tick
// publishes the windowed per-stage decomposition gauges next to the model
// gauges. Call before Start.
func (m *Monitor) AttachTracer(r *trace.Recorder) {
	if r == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tg = &traceGauges{
		tracer: r,
		gMean: metrics.NewGaugeVec("jms_trace_stage_mean_seconds",
			"Windowed mean residency per stage occurrence (head-sampled messages).", "stage"),
		gShare: metrics.NewGaugeVec("jms_trace_stage_share",
			"Windowed per-message stage residency as a fraction of the mean sojourn.", "stage"),
		gSojourn: metrics.NewGaugeVec("jms_trace_sojourn_mean_seconds",
			"Windowed mean broker sojourn of the head-sampled population."),
		gCoverage: metrics.NewGaugeVec("jms_trace_coverage_ratio",
			"Fraction of the mean sojourn explained by the queue/match/replicate/transmit spans."),
		gMessages: metrics.NewGaugeVec("jms_trace_window_messages",
			"Head-sampled messages finished in the evaluation window."),
	}
}

// tickTrace publishes one window of the stage decomposition. Called from
// Tick with m.mu held.
func (m *Monitor) tickTrace() {
	tg := m.tg
	if tg == nil {
		return
	}
	cur := tg.tracer.Stats()
	if !tg.hasPrev {
		tg.prev, tg.hasPrev = cur, true
		return
	}
	delta := cur.Sub(tg.prev)
	tg.prev = cur
	if delta.Sojourn.Count == 0 {
		return // idle window: keep the previous gauges
	}
	soj := delta.SojournMean()
	tg.gSojourn.With().Set(soj)
	tg.gMessages.With().Set(float64(delta.Sojourn.Count))
	tg.gCoverage.With().Set(delta.Coverage())
	for _, st := range trace.Stages() {
		acc := delta.Stage(st)
		if acc.Count == 0 {
			continue
		}
		tg.gMean.With(st.String()).Set(acc.Mean())
		if soj > 0 {
			// Per-message residency: occurrences per finished message ×
			// mean per occurrence.
			perMsg := acc.Mean() * float64(acc.Count) / float64(delta.Sojourn.Count)
			tg.gShare.With(st.String()).Set(perMsg / soj)
		}
	}
}

// traceGaugeVecs lists the decomposition families for exposition.
func (m *Monitor) traceGaugeVecs() []*metrics.GaugeVec {
	m.mu.Lock()
	tg := m.tg
	m.mu.Unlock()
	if tg == nil {
		return nil
	}
	return []*metrics.GaugeVec{tg.gMean, tg.gShare, tg.gSojourn, tg.gCoverage, tg.gMessages}
}
