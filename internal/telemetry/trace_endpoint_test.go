package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/trace"
)

// fixedRecorder builds a recorder with deterministic contents: two
// committed full traces and one tail skeleton, all on a fixed wall clock,
// so the /trace JSON is byte-stable for the golden comparison.
func fixedRecorder(t *testing.T) *trace.Recorder {
	t.Helper()
	base := time.Unix(1700000000, 0)
	rec := trace.New(trace.Config{SampleEvery: 1, FinalizeAfter: time.Hour,
		Clock: func() time.Time { return base }})
	t.Cleanup(rec.Close)

	// Trace 1: full pipeline, R=2.
	rec.RecordSpan(1, trace.StageIngress, base, 3*time.Microsecond)
	rec.RecordSpan(1, trace.StageDecode, base.Add(3*time.Microsecond), time.Microsecond)
	rec.RecordSpan(1, trace.StageQueue, base.Add(4*time.Microsecond), 40*time.Microsecond)
	rec.RecordSpan(1, trace.StageMatch, base.Add(44*time.Microsecond), 5*time.Microsecond)
	rec.RecordSpan(1, trace.StageReplicate, base.Add(49*time.Microsecond), 2*time.Microsecond)
	rec.RecordSpan(1, trace.StageTransmit, base.Add(51*time.Microsecond), 4*time.Microsecond)
	rec.RecordSpan(1, trace.StageEncode, base.Add(55*time.Microsecond), 2*time.Microsecond)
	rec.RecordSpan(1, trace.StageEgressQueue, base.Add(57*time.Microsecond), 6*time.Microsecond)
	rec.RecordSpan(1, trace.StageEgressWrite, base.Add(63*time.Microsecond), time.Microsecond)
	rec.FinishMessage(1, "orders", 12, 2, 55*time.Microsecond)

	// Trace 2: slower, minimal spans.
	rec.RecordSpan(2, trace.StageQueue, base.Add(time.Millisecond), 300*time.Microsecond)
	rec.RecordSpan(2, trace.StageMatch, base.Add(1300*time.Microsecond), 10*time.Microsecond)
	rec.FinishMessage(2, "orders", 12, 1, 320*time.Microsecond)
	rec.Flush()

	// Skeleton via the tail keeper (unsampled path is exercised at the
	// broker layer; here the recorder API is driven directly).
	rec.OfferTail(7, "orders", 12, 1, base.Add(2*time.Millisecond),
		450*time.Microsecond, 500*time.Microsecond)
	return rec
}

// TestTraceEndpointGolden pins the /trace and /trace/{id} JSON shape
// byte-for-byte against testdata. The fixed clock makes every field
// deterministic; a diff here means the public trace schema changed.
func TestTraceEndpointGolden(t *testing.T) {
	rec := fixedRecorder(t)
	b := broker.New(broker.Options{})
	t.Cleanup(func() { _ = b.Close() })
	srv := httptest.NewServer(NewHandler(Options{Broker: b, Trace: rec}))
	defer srv.Close()

	check := func(path, golden string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d: %s", path, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type %q", path, ct)
		}
		if *update {
			if err := os.WriteFile(golden, body, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update): %v", golden, err)
		}
		if string(body) != string(want) {
			t.Errorf("%s diverges from %s:\ngot:\n%s\nwant:\n%s", path, golden, body, want)
		}
	}

	check("/trace", "testdata/trace_list.golden")
	check("/trace/"+trace.FormatID(1), "testdata/trace_full.golden")
}

func TestTraceEndpointErrors(t *testing.T) {
	rec := fixedRecorder(t)
	b := broker.New(broker.Options{})
	t.Cleanup(func() { _ = b.Close() })
	srv := httptest.NewServer(NewHandler(Options{Broker: b, Trace: rec}))
	defer srv.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if s := status("/trace/zz-not-an-id"); s != http.StatusBadRequest {
		t.Errorf("bad id status %d", s)
	}
	if s := status("/trace/00000000deadbeef"); s != http.StatusNotFound {
		t.Errorf("unknown id status %d", s)
	}

	// limit=1 returns only the slowest trace.
	resp, err := http.Get(srv.URL + "/trace?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	var list trace.ListJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if len(list.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(list.Traces))
	}
	if list.Traces[0].ID != trace.FormatID(7) {
		t.Errorf("slowest trace is %s, want the 500µs skeleton", list.Traces[0].ID)
	}

	// Without Options.Trace the endpoints don't exist.
	bare := httptest.NewServer(NewHandler(Options{Broker: b}))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/trace without recorder: status %d", resp.StatusCode)
	}
}

// TestTraceMetricsFamilies checks the cumulative jms_trace_* counters on
// /metrics and that the exposition stays grammatical with tracing on.
func TestTraceMetricsFamilies(t *testing.T) {
	rec := fixedRecorder(t)
	b := broker.New(broker.Options{})
	t.Cleanup(func() { _ = b.Close() })
	var buf strings.Builder
	WriteMetrics(&buf, Options{Broker: b, Trace: rec})
	body := buf.String()
	checkExposition(t, body)
	for _, want := range []string{
		`jms_trace_stage_seconds_total{stage="queue"} 0.00034`,
		`jms_trace_stage_count_total{stage="queue"} 2`,
		`jms_trace_stage_count_total{stage="egress_write"} 1`,
		"jms_trace_sojourn_seconds_total 0.000375",
		"jms_trace_finished_total 2",
		"jms_trace_started_total 2",
		"jms_trace_committed_total 2",
		"jms_trace_tail_kept_total",
		"jms_trace_spans_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// The histogram-bucket exemplars live on /trace JSON, not /metrics:
	// the 0.0.4 text format has no exemplar syntax.
	if strings.Contains(body, "exemplar") {
		t.Error("exemplars leaked into the text exposition")
	}
}

// TestMonitorTraceGauges drives AttachTracer through two ticks and checks
// the windowed decomposition gauges are published and finite.
func TestMonitorTraceGauges(t *testing.T) {
	base := time.Unix(1700000000, 0)
	rec := trace.New(trace.Config{SampleEvery: 1, FinalizeAfter: time.Hour,
		Clock: func() time.Time { return base }})
	t.Cleanup(rec.Close)
	b := broker.New(broker.Options{WaitTiming: true})
	t.Cleanup(func() { _ = b.Close() })
	if err := b.ConfigureTopic("a"); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(b, time.Second)
	mon.AttachTracer(rec)

	mon.Tick(base) // baseline
	// One window of activity: 60µs queue + 30µs match in a 100µs sojourn.
	rec.RecordSpan(5, trace.StageQueue, base, 60*time.Microsecond)
	rec.RecordSpan(5, trace.StageMatch, base.Add(60*time.Microsecond), 30*time.Microsecond)
	rec.FinishMessage(5, "a", 3, 1, 100*time.Microsecond)
	mon.Tick(base.Add(time.Second))

	var buf strings.Builder
	WriteMetrics(&buf, Options{Broker: b, Drift: mon, Trace: rec})
	body := buf.String()
	checkExposition(t, body)
	for _, want := range []string{
		`jms_trace_stage_mean_seconds{stage="queue"} 6e-05`,
		`jms_trace_stage_mean_seconds{stage="match"} 3e-05`,
		`jms_trace_stage_share{stage="queue"} 0.6`,
		`jms_trace_stage_share{stage="match"} 0.3`,
		"jms_trace_sojourn_mean_seconds 0.0001",
		"jms_trace_coverage_ratio 0.9",
		"jms_trace_window_messages 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	// An idle window keeps the previous gauges instead of zeroing them.
	mon.Tick(base.Add(2 * time.Second))
	var buf2 strings.Builder
	WriteMetrics(&buf2, Options{Broker: b, Drift: mon, Trace: rec})
	if !strings.Contains(buf2.String(), "jms_trace_window_messages 1") {
		t.Error("idle window zeroed the decomposition gauges")
	}
}
