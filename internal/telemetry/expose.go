// Package telemetry is the broker's live observability plane: it renders
// the metrics primitives of internal/metrics (counters, gauges, labeled
// families, log2 duration histograms) in Prometheus text exposition format,
// serves a consistent JSON stats snapshot, and hosts the online M/G/1
// model-drift monitor (drift.go) that compares the paper's predicted
// waiting time against the waiting time actually measured on the running
// broker.
//
// The HTTP surface (NewHandler) exposes:
//
//	/metrics       Prometheus text format (version 0.0.4)
//	/stats         JSON: broker counters, stage timings, per-topic tracing,
//	               wire-server counters and drift estimates in one response
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  net/http/pprof profiles
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Label is one exposition label pair.
type Label struct {
	Name, Value string
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sanitizeName maps an arbitrary counter name (e.g. "client.reconnects")
// onto the metric-name alphabet [a-zA-Z0-9_:].
func sanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHeader writes the # HELP / # TYPE preamble of one metric family.
func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writeSample writes one `name{labels} value` line.
func writeSample(w io.Writer, name string, labels []Label, v float64) {
	io.WriteString(w, name)
	if len(labels) > 0 {
		io.WriteString(w, "{")
		for i, l := range labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(v))
	io.WriteString(w, "\n")
}

// WriteCounter writes a single unlabeled counter family with one sample.
func WriteCounter(w io.Writer, name, help string, v uint64) {
	writeHeader(w, name, help, "counter")
	writeSample(w, name, nil, float64(v))
}

// WriteGauge writes a single unlabeled gauge family with one sample.
func WriteGauge(w io.Writer, name, help string, v float64) {
	writeHeader(w, name, help, "gauge")
	writeSample(w, name, nil, v)
}

// WriteHistogram renders one histogram snapshot in Prometheus histogram
// convention: cumulative `_bucket{le="<seconds>"}` series over the log2
// bucket bounds (see metrics.BucketBound), a `_sum` in seconds, and a
// `_count`. Empty interior buckets are elided (the series stays cumulative
// and parseable, just shorter); the +Inf bucket is always present.
func WriteHistogram(w io.Writer, name, help string, labels []Label, s metrics.HistogramSnapshot) {
	writeHeader(w, name, help, "histogram")
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if c == 0 && i < metrics.HistogramBuckets-1 {
			continue
		}
		bound := metrics.BucketBound(i)
		le := "+Inf"
		if !math.IsInf(bound, 1) {
			le = formatValue(bound / 1e9)
		}
		writeSample(w, name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", le}), float64(cum))
	}
	writeSample(w, name+"_sum", labels, float64(s.Sum)/1e9)
	writeSample(w, name+"_count", labels, float64(s.Count))
}

// WriteGaugeVec renders a labeled gauge family, children in deterministic
// order.
func WriteGaugeVec(w io.Writer, v *metrics.GaugeVec) {
	writeHeader(w, v.Name, v.Help, "gauge")
	names := v.LabelNames()
	v.Each(func(values []string, g *metrics.Gauge) {
		labels := make([]Label, len(names))
		for i := range names {
			labels[i] = Label{names[i], values[i]}
		}
		writeSample(w, v.Name, labels, g.Value())
	})
}

// WriteCounterVec renders a labeled counter family, children in
// deterministic order.
func WriteCounterVec(w io.Writer, v *metrics.CounterVec) {
	writeHeader(w, v.Name, v.Help, "counter")
	names := v.LabelNames()
	v.Each(func(values []string, c *metrics.Counter) {
		labels := make([]Label, len(names))
		for i := range names {
			labels[i] = Label{names[i], values[i]}
		}
		writeSample(w, v.Name, labels, float64(c.Value()))
	})
}

// WriteRegistry renders every counter of a metrics.Registry snapshot as
// `<prefix>_<sanitized name>` counters, in sorted name order.
func WriteRegistry(w io.Writer, prefix string, snap metrics.Snapshot) {
	names := make([]string, 0, len(snap.Values))
	for name := range snap.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		WriteCounter(w, prefix+"_"+sanitizeName(name), "registry counter "+name, snap.Values[name])
	}
}

// Options configure the telemetry handler. Broker is required; everything
// else is optional and simply absent from the output when nil.
type Options struct {
	// Broker supplies Stats, StageStats and per-topic Telemetry.
	Broker *broker.Broker
	// Wire supplies connection and dedupe counters.
	Wire *wire.Server
	// Drift supplies the model-drift gauges and JSON estimates.
	Drift *Monitor
	// Trace supplies the per-message flight recorder: the jms_trace_*
	// stage-decomposition series on /metrics and the /trace + /trace/{id}
	// JSON endpoints.
	Trace *trace.Recorder
	// Mesh supplies the replication-mesh forwarder counters (jms_mesh_*).
	// Forwards received from peers come from Wire (ForwardsIn), so the
	// ingress side still renders when only Wire is set.
	Mesh *cluster.WireMesh
	// Registry counters are rendered under the jms_registry_ prefix.
	Registry *metrics.Registry
	// Gauges and Counters are additional labeled families to expose.
	Gauges []*metrics.GaugeVec
	// Counters are additional labeled counter families to expose.
	Counters []*metrics.CounterVec
}

// WriteMetrics renders the full /metrics payload for the given sources.
func WriteMetrics(w io.Writer, opts Options) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if b := opts.Broker; b != nil {
		st := b.Stats()
		WriteCounter(bw, "jms_broker_received_total", "Messages accepted from publishers.", st.Received)
		WriteCounter(bw, "jms_broker_dispatched_total", "Message copies forwarded to subscribers.", st.Dispatched)
		WriteCounter(bw, "jms_broker_filter_evals_total", "Individual filter evaluations.", st.FilterEvals)
		WriteCounter(bw, "jms_broker_dropped_total", "Non-persistent deliveries discarded on full queues.", st.Dropped)
		WriteCounter(bw, "jms_broker_expired_total", "Messages discarded at dispatch because their expiration passed.", st.Expired)
		WriteCounter(bw, "jms_slow_consumer_dropped_total", "Deliveries evicted by the drop-oldest slow-consumer policy.", st.SlowDropped)
		WriteCounter(bw, "jms_slow_consumer_disconnects_total", "Subscriptions force-removed by the disconnect slow-consumer policy.", st.SlowDisconnects)
		WriteGauge(bw, "jms_broker_filters", "Currently installed filters (the paper's n_fltr).", float64(b.NumFilters()))

		tel := b.Telemetry()
		if len(tel) > 0 {
			topics := make([]string, 0, len(tel))
			for name := range tel {
				topics = append(topics, name)
			}
			sort.Strings(topics)
			writeHeader(bw, "jms_broker_topic_received_total", "Messages accepted into the topic queue.", "counter")
			for _, name := range topics {
				writeSample(bw, "jms_broker_topic_received_total", []Label{{"topic", name}}, float64(tel[name].Received))
			}
			for _, name := range topics {
				WriteHistogram(bw, "jms_broker_wait_seconds",
					"Per-message waiting time W: broker enqueue to dispatch start.",
					[]Label{{"topic", name}}, tel[name].Wait)
			}
			for _, name := range topics {
				WriteHistogram(bw, "jms_broker_sojourn_seconds",
					"Per-message sojourn time: broker enqueue to last transmit.",
					[]Label{{"topic", name}}, tel[name].Sojourn)
			}
		}

		if ss := b.StageStats(); ss.Enabled {
			stages := []struct {
				name string
				snap metrics.HistogramSnapshot
			}{
				{"receive", ss.Receive},
				{"match", ss.Match},
				{"replicate", ss.Replicate},
				{"transmit", ss.Transmit},
			}
			for _, st := range stages {
				WriteHistogram(bw, "jms_broker_stage_seconds",
					"Per-stage dispatch pipeline time (the Eq. 1 terms).",
					[]Label{{"stage", st.name}}, st.snap)
			}
		}
	}

	if s := opts.Wire; s != nil {
		WriteGauge(bw, "jms_wire_open_connections", "Currently open client connections.", float64(s.OpenConns()))
		WriteCounter(bw, "jms_wire_connections_total", "Client connections accepted.", s.AcceptedConns())
		WriteCounter(bw, "jms_wire_duplicates_suppressed_total", "Redelivered publishes acknowledged without publishing again.", s.DuplicatesSuppressed())

		// Wire-path counters: frame counts against syscall counts quantify
		// the coalescing of the ingress window and egress queues, and
		// write_seconds_total/frames_out_total is the measured per-frame
		// t_tx (see fit.TTxFromWire).
		ws := s.WireStats()
		WriteCounter(bw, "jms_wire_frames_in_total", "Frames received from clients.", ws.FramesIn)
		WriteCounter(bw, "jms_wire_bytes_in_total", "Bytes received from clients (prologues included).", ws.BytesIn)
		WriteCounter(bw, "jms_wire_read_calls_total", "Read syscalls on client sockets.", ws.ReadCalls)
		WriteCounter(bw, "jms_wire_frames_out_total", "Frames sent to clients.", ws.FramesOut)
		WriteCounter(bw, "jms_wire_bytes_out_total", "Bytes sent to clients.", ws.BytesOut)
		WriteCounter(bw, "jms_wire_write_calls_total", "Write syscalls (vectored writes count once).", ws.WriteCalls)
		writeHeader(bw, "jms_wire_write_seconds_total", "Wall time spent inside socket write syscalls.", "counter")
		writeSample(bw, "jms_wire_write_seconds_total", nil, float64(ws.WriteNanos)/1e9)
		WriteCounter(bw, "jms_mesh_forwarded_in_total", "FORWARD frames accepted from mesh peers.", s.ForwardsIn())
	}

	if wm := opts.Mesh; wm != nil {
		ms := wm.Stats()
		// Role is an info-style gauge: constant 1, identity in the labels,
		// so a scrape join can attach the topology to any other series.
		writeHeader(bw, "jms_mesh_role", "Replication topology of this member (info gauge: value is always 1).", "gauge")
		writeSample(bw, "jms_mesh_role", []Label{
			{"kind", ms.Kind.String()},
			{"self", strconv.Itoa(ms.Self)},
		}, 1)
		WriteGauge(bw, "jms_mesh_peers", "Remote mesh members this server forwards to.", float64(ms.Peers))
		WriteCounter(bw, "jms_mesh_forwarded_out_total", "FORWARD frames acked by mesh peers.", ms.ForwardedOut)
		WriteCounter(bw, "jms_mesh_forward_errors_total", "Forwards that failed and rejected the triggering publish.", ms.ForwardErrors)
		WriteCounter(bw, "jms_mesh_reconnects_total", "Peer re-dials after an established mesh connection broke.", ms.Reconnects)
	}

	if d := opts.Drift; d != nil {
		for _, v := range d.GaugeVecs() {
			WriteGaugeVec(bw, v)
		}
	}
	if tr := opts.Trace; tr != nil {
		// Cumulative per-stage residency counters: the raw substrate of
		// the W_obs ≈ W_queue + Σ stage residencies decomposition (the
		// windowed means live on the drift monitor's jms_trace_stage_*
		// gauges). Sampled population only.
		ts := tr.Stats()
		writeHeader(bw, "jms_trace_stage_seconds_total", "Cumulative stage residency over head-sampled messages.", "counter")
		for _, st := range trace.Stages() {
			acc := ts.Stage(st)
			writeSample(bw, "jms_trace_stage_seconds_total", []Label{{"stage", st.String()}}, float64(acc.SumNs)/1e9)
		}
		writeHeader(bw, "jms_trace_stage_count_total", "Cumulative stage span count over head-sampled messages.", "counter")
		for _, st := range trace.Stages() {
			acc := ts.Stage(st)
			writeSample(bw, "jms_trace_stage_count_total", []Label{{"stage", st.String()}}, float64(acc.Count))
		}
		writeHeader(bw, "jms_trace_sojourn_seconds_total", "Cumulative broker sojourn over head-sampled messages.", "counter")
		writeSample(bw, "jms_trace_sojourn_seconds_total", nil, float64(ts.Sojourn.SumNs)/1e9)
		WriteCounter(bw, "jms_trace_finished_total", "Head-sampled messages finished by the broker.", ts.Sojourn.Count)
		WriteCounter(bw, "jms_trace_started_total", "Flight records opened (head-sampled messages seen).", ts.Started)
		WriteCounter(bw, "jms_trace_committed_total", "Flight records committed to the ring buffers.", ts.Committed)
		WriteCounter(bw, "jms_trace_tail_kept_total", "Traces retained by the slowest-N tail keeper.", ts.TailKept)
		WriteCounter(bw, "jms_trace_spans_dropped_total", "Spans dropped on full per-trace span arrays.", ts.SpanDropped)
	}
	for _, v := range opts.Gauges {
		WriteGaugeVec(bw, v)
	}
	for _, v := range opts.Counters {
		WriteCounterVec(bw, v)
	}
	if opts.Registry != nil {
		WriteRegistry(bw, "jms_registry", opts.Registry.Snapshot(time.Now()))
	}
}

// Stats is the /stats JSON payload: one response carrying every snapshot
// the telemetry plane knows about, taken as close together as the sources
// allow (Broker.Stats itself is a consistent cut).
type Stats struct {
	Time   time.Time                        `json:"time"`
	Broker broker.Stats                     `json:"broker"`
	Stages *broker.StageStats               `json:"stages,omitempty"`
	Topics map[string]broker.TopicTelemetry `json:"topics,omitempty"`
	Wire   *WireStats                       `json:"wire,omitempty"`
	Mesh   *MeshStats                       `json:"mesh,omitempty"`
	Drift  map[string]Estimate              `json:"drift,omitempty"`
}

// MeshStats are the replication-mesh counters in the /stats payload.
type MeshStats struct {
	Kind          string `json:"kind"`
	Self          int    `json:"self"`
	Peers         int    `json:"peers"`
	ForwardedOut  uint64 `json:"forwarded_out"`
	ForwardedIn   uint64 `json:"forwarded_in"`
	ForwardErrors uint64 `json:"forward_errors"`
	Reconnects    uint64 `json:"reconnects"`
}

// WireStats are the wire server's counters in the /stats payload.
type WireStats struct {
	OpenConns            int    `json:"open_conns"`
	AcceptedConns        uint64 `json:"accepted_conns"`
	DuplicatesSuppressed uint64 `json:"duplicates_suppressed"`
	// Path holds the frame/byte/syscall counters of the zero-allocation
	// wire path (ingress window reads, coalesced egress writes).
	Path wire.WireStats `json:"path"`
}

// CollectStats gathers the /stats payload.
func CollectStats(opts Options) Stats {
	out := Stats{Time: time.Now()}
	if b := opts.Broker; b != nil {
		out.Broker = b.Stats()
		if ss := b.StageStats(); ss.Enabled {
			out.Stages = &ss
		}
		if tel := b.Telemetry(); len(tel) > 0 {
			out.Topics = tel
		}
	}
	if s := opts.Wire; s != nil {
		out.Wire = &WireStats{
			OpenConns:            s.OpenConns(),
			AcceptedConns:        s.AcceptedConns(),
			DuplicatesSuppressed: s.DuplicatesSuppressed(),
			Path:                 s.WireStats(),
		}
	}
	if wm := opts.Mesh; wm != nil {
		ms := wm.Stats()
		out.Mesh = &MeshStats{
			Kind:          ms.Kind.String(),
			Self:          ms.Self,
			Peers:         ms.Peers,
			ForwardedOut:  ms.ForwardedOut,
			ForwardErrors: ms.ForwardErrors,
			Reconnects:    ms.Reconnects,
		}
		if s := opts.Wire; s != nil {
			out.Mesh.ForwardedIn = s.ForwardsIn()
		}
	}
	if d := opts.Drift; d != nil {
		if est := d.Estimates(); len(est) > 0 {
			out.Drift = est
		}
	}
	return out
}

// NewHandler returns the telemetry HTTP handler serving /metrics, /stats,
// /healthz, /debug/pprof/ and — with Options.Trace — the flight
// recorder's /trace (JSON list, slowest first, plus histogram-bucket
// exemplar links) and /trace/{id} (full span tree; id in the 16-hex form
// the list uses, or decimal).
func NewHandler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, opts)
	})
	if tr := opts.Trace; tr != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			limit := 64
			if s := r.URL.Query().Get("limit"); s != "" {
				if n, err := strconv.Atoi(s); err == nil && n > 0 {
					limit = n
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tr.ListResponse(limit))
		})
		mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
			id, err := trace.ParseID(strings.TrimPrefix(r.URL.Path, "/trace/"))
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			t, ok := tr.Get(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(t.JSON(true))
		})
	}
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(CollectStats(opts))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
