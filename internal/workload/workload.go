// Package workload generates application scenarios for the broker: random
// subscriber populations whose filters have an analytically known match
// structure, plus the matching message streams. It closes the loop between
// the measurement substrate and the model: the expected replication grade
// E[R] and match probability p_match of a generated scenario are known in
// closed form, so measured broker behaviour can be checked against the
// paper's formulas end to end.
package workload

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/stats"
)

// ErrParams is returned for invalid scenario parameters.
var ErrParams = errors.New("workload: invalid parameters")

// KeyScenario is the uniform-key population: nSubs subscribers each filter
// for exactly one of keys distinct values; publishers pick message keys
// uniformly at random. Every subscriber's filter matches an incoming
// message with probability 1/keys, so the replication grade follows a
// Binomial(nSubs, 1/keys)-like law with mean nSubs/keys (keys assigned
// round-robin make it deterministic per key; random assignment makes it
// binomial across keys).
type KeyScenario struct {
	Topic string
	// FilterType selects correlation-ID or selector filters.
	FilterType core.FilterType
	// NSubs is the number of subscribers (= installed filters).
	NSubs int
	// Keys is the number of distinct key values.
	Keys int
	// RandomAssignment assigns subscriber keys uniformly at random
	// (binomial replication) instead of round-robin (near-deterministic
	// replication).
	RandomAssignment bool

	// perKey[k] is the number of subscribers filtering for key k, filled
	// by Install.
	perKey []int
}

// Validate checks the scenario parameters.
func (s *KeyScenario) Validate() error {
	if s.Topic == "" {
		return fmt.Errorf("%w: empty topic", ErrParams)
	}
	if s.NSubs < 0 || s.Keys < 1 {
		return fmt.Errorf("%w: nSubs=%d keys=%d", ErrParams, s.NSubs, s.Keys)
	}
	switch s.FilterType {
	case core.CorrelationIDFiltering, core.ApplicationPropertyFiltering:
	default:
		return fmt.Errorf("%w: filter type %d", ErrParams, int(s.FilterType))
	}
	return nil
}

// buildFilter creates the filter for one subscriber's key.
func (s *KeyScenario) buildFilter(key int) (filter.Filter, error) {
	switch s.FilterType {
	case core.CorrelationIDFiltering:
		return filter.NewCorrelationID("key-" + strconv.Itoa(key))
	case core.ApplicationPropertyFiltering:
		return filter.NewProperty("key = " + strconv.Itoa(key))
	default:
		return nil, fmt.Errorf("%w: filter type %d", ErrParams, int(s.FilterType))
	}
}

// Install configures the topic and subscribes the population on the
// broker, returning the handles (to be drained by the caller).
func (s *KeyScenario) Install(b *broker.Broker, rng *stats.RNG) ([]*broker.Subscriber, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	if err := b.ConfigureTopic(s.Topic); err != nil {
		return nil, err
	}
	s.perKey = make([]int, s.Keys)
	subs := make([]*broker.Subscriber, 0, s.NSubs)
	for i := 0; i < s.NSubs; i++ {
		key := i % s.Keys
		if s.RandomAssignment {
			key = rng.Intn(s.Keys)
		}
		s.perKey[key]++
		f, err := s.buildFilter(key)
		if err != nil {
			return nil, err
		}
		sub, err := b.Subscribe(s.Topic, f)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	return subs, nil
}

// Message draws one message with a uniformly random key.
func (s *KeyScenario) Message(rng *stats.RNG) (*jms.Message, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	key := rng.Intn(s.Keys)
	m := jms.NewMessage(s.Topic)
	switch s.FilterType {
	case core.CorrelationIDFiltering:
		if err := m.SetCorrelationID("key-" + strconv.Itoa(key)); err != nil {
			return nil, err
		}
	case core.ApplicationPropertyFiltering:
		if err := m.SetInt32Property("key", int32(key)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MatchProbability returns p_match = 1/keys, the probability that one
// subscriber's filter matches a uniformly drawn message.
func (s *KeyScenario) MatchProbability() float64 {
	return 1 / float64(s.Keys)
}

// ExpectedReplication returns E[R] = nSubs/keys for a uniformly drawn
// message (exact for both assignment modes, by symmetry).
func (s *KeyScenario) ExpectedReplication() float64 {
	return float64(s.NSubs) / float64(s.Keys)
}

// ReplicationMoment2 returns E[R^2] for a uniformly drawn message, from
// the realized per-key assignment: E[R^2] = sum_k c_k^2 / keys.
func (s *KeyScenario) ReplicationMoment2() (float64, error) {
	if s.perKey == nil {
		return 0, fmt.Errorf("%w: scenario not installed", ErrParams)
	}
	sum := 0.0
	for _, c := range s.perKey {
		sum += float64(c) * float64(c)
	}
	return sum / float64(s.Keys), nil
}

// FilterBenefitHolds applies Eq. 3 to one subscriber of this scenario
// (n_fltr^q = 1, p_match = 1/keys) under the given cost model.
func (s *KeyScenario) FilterBenefitHolds(model core.CostModel) bool {
	return model.FilterBenefit(1, s.MatchProbability())
}
