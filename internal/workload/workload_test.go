package workload

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/stats"
)

func TestValidate(t *testing.T) {
	good := &KeyScenario{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: 4, Keys: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*KeyScenario{
		{Topic: "", FilterType: core.CorrelationIDFiltering, NSubs: 1, Keys: 1},
		{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: -1, Keys: 1},
		{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: 1, Keys: 0},
		{Topic: "t", FilterType: core.FilterType(9), NSubs: 1, Keys: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestAnalyticQuantities(t *testing.T) {
	s := &KeyScenario{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: 40, Keys: 8}
	if got := s.MatchProbability(); got != 0.125 {
		t.Errorf("p_match = %g", got)
	}
	if got := s.ExpectedReplication(); got != 5 {
		t.Errorf("E[R] = %g", got)
	}
	// Round-robin assignment: every key has exactly 5 subscribers, so
	// E[R^2] = 25.
	b := broker.New(broker.Options{})
	defer func() { _ = b.Close() }()
	if _, err := b.Subscribe("t", nil); err == nil {
		t.Fatal("subscribe before configure should fail")
	}
	if _, err := s.Install(b, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	m2, err := s.ReplicationMoment2()
	if err != nil {
		t.Fatal(err)
	}
	if m2 != 25 {
		t.Errorf("E[R^2] = %g, want 25 (deterministic per key)", m2)
	}
	// Eq. 3: p_match = 12.5% < 58.7% break-even for 1 corrID filter.
	if !s.FilterBenefitHolds(core.TableICorrelationID) {
		t.Error("filter benefit should hold at p_match=0.125")
	}
	// But not for application property filters (break-even 9.9%).
	if s.FilterBenefitHolds(core.TableIApplicationProperty) {
		t.Error("filter benefit should not hold for appProp at p_match=0.125")
	}
}

func TestReplicationMoment2BeforeInstall(t *testing.T) {
	s := &KeyScenario{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: 4, Keys: 2}
	if _, err := s.ReplicationMoment2(); !errors.Is(err, ErrParams) {
		t.Errorf("err = %v", err)
	}
}

func TestEndToEndEmpiricalReplication(t *testing.T) {
	// The broker's measured dispatched/received ratio must converge to
	// the scenario's analytic E[R] — the end-to-end check that generator,
	// filters and dispatch agree.
	for _, random := range []bool{false, true} {
		for _, ft := range []core.FilterType{core.CorrelationIDFiltering, core.ApplicationPropertyFiltering} {
			s := &KeyScenario{
				Topic:            "t",
				FilterType:       ft,
				NSubs:            30,
				Keys:             6,
				RandomAssignment: random,
			}
			b := broker.New(broker.Options{InFlight: 256, SubscriberBuffer: 1 << 12})
			rng := stats.NewRNG(7)
			subs, err := s.Install(b, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, sub := range subs {
				go func(sub *broker.Subscriber) {
					for range sub.Chan() {
					}
				}(sub)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			const msgs = 4000
			for i := 0; i < msgs; i++ {
				m, err := s.Message(rng)
				if err != nil {
					t.Fatal(err)
				}
				if err := b.Publish(ctx, m); err != nil {
					t.Fatal(err)
				}
			}
			cancel()
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			st := b.Stats()
			if st.Received != msgs {
				t.Fatalf("received = %d", st.Received)
			}
			empR := float64(st.Dispatched) / float64(st.Received)
			if math.Abs(empR-s.ExpectedReplication())/s.ExpectedReplication() > 0.15 {
				t.Errorf("ft=%v random=%v: empirical E[R] = %.2f, analytic %.2f",
					ft, random, empR, s.ExpectedReplication())
			}
			// Every message scanned all filters.
			if st.FilterEvals != uint64(msgs*s.NSubs) {
				t.Errorf("FilterEvals = %d, want %d", st.FilterEvals, msgs*s.NSubs)
			}
		}
	}
}

func TestRandomAssignmentMoments(t *testing.T) {
	// Random assignment yields Var[R] > 0 across keys; round-robin with
	// keys | nSubs yields Var[R] = 0.
	rr := &KeyScenario{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: 24, Keys: 6}
	rnd := &KeyScenario{Topic: "t", FilterType: core.CorrelationIDFiltering, NSubs: 24, Keys: 6, RandomAssignment: true}
	for _, s := range []*KeyScenario{rr, rnd} {
		b := broker.New(broker.Options{})
		if _, err := s.Install(b, stats.NewRNG(3)); err != nil {
			t.Fatal(err)
		}
		_ = b.Close()
	}
	m2rr, err := rr.ReplicationMoment2()
	if err != nil {
		t.Fatal(err)
	}
	meanSq := rr.ExpectedReplication() * rr.ExpectedReplication()
	if m2rr != meanSq {
		t.Errorf("round-robin E[R^2] = %g, want %g", m2rr, meanSq)
	}
	m2rnd, err := rnd.ReplicationMoment2()
	if err != nil {
		t.Fatal(err)
	}
	if m2rnd <= meanSq {
		t.Errorf("random assignment E[R^2] = %g, want > %g", m2rnd, meanSq)
	}
}
