// Package fit recovers the cost-model constants (t_rcv, t_fltr, t_tx) from
// measured throughput data, the step that produced Table I of the paper:
// for each experiment with n_fltr installed filters and replication grade
// R, the saturated server satisfies
//
//	1/throughput_rcv = E[B] = t_rcv + n_fltr*t_fltr + R*t_tx,
//
// a linear model in the unknowns, solved here by ordinary least squares on
// the normal equations (3x3, solved by Gaussian elimination with partial
// pivoting).
package fit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/wire"
)

// Errors returned by the fitter.
var (
	// ErrUnderdetermined is returned with fewer than three observations or
	// a singular design.
	ErrUnderdetermined = errors.New("fit: underdetermined system")
	// ErrBadObservation is returned for invalid data points.
	ErrBadObservation = errors.New("fit: invalid observation")
)

// Observation is one measured data point of the parameter study.
type Observation struct {
	// NFltr is the number of installed filters during the run.
	NFltr int
	// R is the replication grade during the run.
	R float64
	// ServiceTime is the measured mean per-message processing time in
	// seconds (the reciprocal of the saturated received throughput).
	ServiceTime float64
}

// Result is the fitted model with goodness-of-fit diagnostics.
type Result struct {
	Model core.CostModel
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// RMSE is the root mean squared residual in seconds.
	RMSE float64
	// MaxAbsResidual is the worst-case residual in seconds.
	MaxAbsResidual float64
}

// Fit solves the least-squares problem for the observations.
func Fit(obs []Observation) (Result, error) {
	if len(obs) < 3 {
		return Result{}, fmt.Errorf("%w: %d observations, need >= 3", ErrUnderdetermined, len(obs))
	}
	for i, o := range obs {
		if o.NFltr < 0 || o.R < 0 || o.ServiceTime <= 0 ||
			math.IsNaN(o.ServiceTime) || math.IsInf(o.ServiceTime, 0) {
			return Result{}, fmt.Errorf("%w: index %d: %+v", ErrBadObservation, i, o)
		}
	}

	// Normal equations A^T A x = A^T y with rows (1, n_fltr, R).
	var ata [3][3]float64
	var aty [3]float64
	for _, o := range obs {
		row := [3]float64{1, float64(o.NFltr), o.R}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * o.ServiceTime
		}
	}
	x, err := solve3(ata, aty)
	if err != nil {
		return Result{}, err
	}

	model := core.CostModel{TRcv: x[0], TFltr: x[1], TTx: x[2]}

	// Diagnostics.
	meanY := 0.0
	for _, o := range obs {
		meanY += o.ServiceTime
	}
	meanY /= float64(len(obs))
	var ssRes, ssTot, maxAbs float64
	for _, o := range obs {
		pred := model.MeanServiceTime(o.NFltr, o.R)
		res := o.ServiceTime - pred
		ssRes += res * res
		d := o.ServiceTime - meanY
		ssTot += d * d
		if math.Abs(res) > maxAbs {
			maxAbs = math.Abs(res)
		}
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Result{
		Model:          model,
		R2:             r2,
		RMSE:           math.Sqrt(ssRes / float64(len(obs))),
		MaxAbsResidual: maxAbs,
	}, nil
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	// Augment.
	var m [3][4]float64
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-18 {
			return [3]float64{}, fmt.Errorf("%w: singular design matrix", ErrUnderdetermined)
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back-substitute.
	var x [3]float64
	for i := 2; i >= 0; i-- {
		sum := m[i][3]
		for j := i + 1; j < 3; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// FromThroughput converts a measured received throughput (msgs/s at a
// saturated server) into an Observation.
func FromThroughput(nFltr int, r float64, receivedPerSec float64) (Observation, error) {
	if receivedPerSec <= 0 {
		return Observation{}, fmt.Errorf("%w: throughput %g", ErrBadObservation, receivedPerSec)
	}
	return Observation{NFltr: nFltr, R: r, ServiceTime: 1 / receivedPerSec}, nil
}

// FromStages composes directly measured per-stage costs (seconds) into an
// Observation with ServiceTime = tRcv + nFltr·tFltr + r·tTx — Eq. 1
// assembled from its parts. Where FromThroughput infers E[B] from the
// outside (the reciprocal of the saturated throughput), FromStages builds
// it from the broker's per-stage instrumentation; fitting both kinds of
// observation and comparing the constants closes the loop between the
// running system and the model.
func FromStages(nFltr int, r float64, tRcv, tFltr, tTx float64) (Observation, error) {
	for _, v := range []float64{tRcv, tFltr, tTx} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Observation{}, fmt.Errorf("%w: stage times (%g, %g, %g)", ErrBadObservation, tRcv, tFltr, tTx)
		}
	}
	st := tRcv + float64(nFltr)*tFltr + r*tTx
	if st <= 0 {
		return Observation{}, fmt.Errorf("%w: non-positive composed service time %g", ErrBadObservation, st)
	}
	return Observation{NFltr: nFltr, R: r, ServiceTime: st}, nil
}

// TTxFromWire returns the mean per-frame transmit cost in seconds measured
// directly at the socket: the wall time the wire server spent inside write
// syscalls divided by the frames sent. Where the dispatch-stage transmit
// histogram times the hand-off into subscriber queues, this is the t_tx the
// paper actually models — the cost of pushing one replica's bytes out —
// including the coalescing win when several frames leave in one writev.
func TTxFromWire(ws wire.WireStats) (float64, error) {
	if ws.FramesOut == 0 {
		return 0, fmt.Errorf("%w: no frames sent", ErrBadObservation)
	}
	return float64(ws.WriteNanos) / float64(ws.FramesOut) / 1e9, nil
}

// FromWire is FromStages with t_tx taken from the wire server's egress
// syscall timers instead of the dispatch-stage histogram: the receive and
// filter costs come from the broker's stage instrumentation, the transmit
// cost from the socket itself. Fitting wire-grounded observations next to
// throughput-derived ones separates the queueing-model constants from the
// syscall costs they absorb.
func FromWire(nFltr int, r float64, tRcv, tFltr float64, ws wire.WireStats) (Observation, error) {
	tTx, err := TTxFromWire(ws)
	if err != nil {
		return Observation{}, err
	}
	return FromStages(nFltr, r, tRcv, tFltr, tTx)
}
