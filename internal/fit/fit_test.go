package fit

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/wire"
)

// paperGrid is the paper's experiment grid: n additional non-matching
// filters and replication grade R.
func paperGrid() (ns []int, rs []int) {
	return []int{5, 10, 20, 40, 80, 160}, []int{1, 2, 5, 10, 20, 40}
}

func syntheticObs(model core.CostModel, noise float64, seed int64) []Observation {
	ns, rs := paperGrid()
	g := stats.NewRNG(seed)
	var obs []Observation
	for _, n := range ns {
		for _, r := range rs {
			nFltr := n + r // the paper installs n + R filters in total
			st := model.MeanServiceTime(nFltr, float64(r))
			if noise > 0 {
				st *= 1 + noise*(2*g.Float64()-1)
			}
			obs = append(obs, Observation{NFltr: nFltr, R: float64(r), ServiceTime: st})
		}
	}
	return obs
}

func TestFitRecoversExactModel(t *testing.T) {
	want := core.TableICorrelationID
	res, err := Fit(syntheticObs(want, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model.TRcv-want.TRcv)/want.TRcv > 1e-9 {
		t.Errorf("TRcv = %g, want %g", res.Model.TRcv, want.TRcv)
	}
	if math.Abs(res.Model.TFltr-want.TFltr)/want.TFltr > 1e-9 {
		t.Errorf("TFltr = %g, want %g", res.Model.TFltr, want.TFltr)
	}
	if math.Abs(res.Model.TTx-want.TTx)/want.TTx > 1e-9 {
		t.Errorf("TTx = %g, want %g", res.Model.TTx, want.TTx)
	}
	if res.R2 < 1-1e-12 {
		t.Errorf("R2 = %v, want 1 for noiseless data", res.R2)
	}
	if res.RMSE > 1e-15 {
		t.Errorf("RMSE = %g for noiseless data", res.RMSE)
	}
}

func TestFitUnderNoise(t *testing.T) {
	// With 2% multiplicative noise the recovered constants stay within a
	// few percent — the paper's "model agrees very well" regime.
	want := core.TableIApplicationProperty
	res, err := Fit(syntheticObs(want, 0.02, 7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model.TFltr-want.TFltr)/want.TFltr > 0.10 {
		t.Errorf("TFltr = %g, want within 10%% of %g", res.Model.TFltr, want.TFltr)
	}
	if math.Abs(res.Model.TTx-want.TTx)/want.TTx > 0.10 {
		t.Errorf("TTx = %g, want within 10%% of %g", res.Model.TTx, want.TTx)
	}
	if res.R2 < 0.99 {
		t.Errorf("R2 = %v", res.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); !errors.Is(err, ErrUnderdetermined) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Fit([]Observation{{NFltr: 1, R: 1, ServiceTime: 1}, {NFltr: 2, R: 1, ServiceTime: 2}}); !errors.Is(err, ErrUnderdetermined) {
		t.Errorf("2 obs err = %v", err)
	}
	// All-identical rows make the design singular.
	same := []Observation{
		{NFltr: 5, R: 1, ServiceTime: 1e-4},
		{NFltr: 5, R: 1, ServiceTime: 1e-4},
		{NFltr: 5, R: 1, ServiceTime: 1e-4},
		{NFltr: 5, R: 1, ServiceTime: 1e-4},
	}
	if _, err := Fit(same); !errors.Is(err, ErrUnderdetermined) {
		t.Errorf("singular err = %v", err)
	}
	bad := []Observation{
		{NFltr: -1, R: 1, ServiceTime: 1},
		{NFltr: 1, R: 1, ServiceTime: 1},
		{NFltr: 2, R: 1, ServiceTime: 1},
	}
	if _, err := Fit(bad); !errors.Is(err, ErrBadObservation) {
		t.Errorf("bad obs err = %v", err)
	}
	badST := []Observation{
		{NFltr: 1, R: 1, ServiceTime: 0},
		{NFltr: 1, R: 1, ServiceTime: 1},
		{NFltr: 2, R: 1, ServiceTime: 1},
	}
	if _, err := Fit(badST); !errors.Is(err, ErrBadObservation) {
		t.Errorf("zero service time err = %v", err)
	}
}

func TestFromThroughput(t *testing.T) {
	o, err := FromThroughput(10, 2, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if o.ServiceTime != 1.0/5000 || o.NFltr != 10 || o.R != 2 {
		t.Errorf("obs = %+v", o)
	}
	if _, err := FromThroughput(10, 2, 0); !errors.Is(err, ErrBadObservation) {
		t.Errorf("zero throughput err = %v", err)
	}
}

func TestFitThroughputRoundTrip(t *testing.T) {
	// End-to-end: generate throughputs from Table I, convert, fit, verify
	// the predicted throughput curve matches (the Fig. 4 validation loop).
	model := core.TableICorrelationID
	ns, rs := paperGrid()
	var obs []Observation
	for _, n := range ns {
		for _, r := range rs {
			nFltr := n + r
			recv, _, _ := model.Throughput(nFltr, float64(r))
			o, err := FromThroughput(nFltr, float64(r), recv)
			if err != nil {
				t.Fatal(err)
			}
			obs = append(obs, o)
		}
	}
	res, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		for _, r := range rs {
			nFltr := n + r
			wantRecv, _, _ := model.Throughput(nFltr, float64(r))
			gotRecv, _, _ := res.Model.Throughput(nFltr, float64(r))
			if math.Abs(gotRecv-wantRecv)/wantRecv > 1e-9 {
				t.Errorf("n=%d R=%d: throughput %g, want %g", nFltr, r, gotRecv, wantRecv)
			}
		}
	}
}

func TestFromStages(t *testing.T) {
	// Composing Table-I-like constants and fitting the composed points
	// recovers the constants exactly (the fit is the inverse of Eq. 1).
	const tRcv, tFltr, tTx = 1.5e-5, 1.1e-6, 5.9e-6
	var obs []Observation
	for _, n := range []int{0, 50, 150, 450} {
		for _, r := range []float64{1, 10, 30} {
			o, err := FromStages(n, r, tRcv, tFltr, tTx)
			if err != nil {
				t.Fatal(err)
			}
			want := tRcv + float64(n)*tFltr + r*tTx
			if math.Abs(o.ServiceTime-want)/want > 1e-12 {
				t.Errorf("FromStages(%d,%g) ServiceTime = %g, want %g", n, r, o.ServiceTime, want)
			}
			obs = append(obs, o)
		}
	}
	res, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model.TRcv-tRcv)/tRcv > 1e-9 ||
		math.Abs(res.Model.TFltr-tFltr)/tFltr > 1e-9 ||
		math.Abs(res.Model.TTx-tTx)/tTx > 1e-9 {
		t.Errorf("fit of composed stages = %+v, want (%g, %g, %g)", res.Model, tRcv, tFltr, tTx)
	}
}

func TestFromStagesErrors(t *testing.T) {
	if _, err := FromStages(5, 1, -1e-6, 1e-6, 1e-6); err == nil {
		t.Error("negative stage time accepted")
	}
	if _, err := FromStages(0, 0, 0, 0, 0); err == nil {
		t.Error("zero composed service time accepted")
	}
	if _, err := FromStages(5, 1, math.NaN(), 1e-6, 1e-6); err == nil {
		t.Error("NaN stage time accepted")
	}
}

func TestFromWire(t *testing.T) {
	// 2.5us/frame inside write syscalls, composed with stage-measured
	// receive and filter costs.
	ws := wire.WireStats{FramesOut: 4000, WriteNanos: 10_000_000}
	tTx, err := TTxFromWire(ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tTx-2.5e-6)/2.5e-6 > 1e-12 {
		t.Errorf("TTxFromWire = %g, want 2.5e-6", tTx)
	}
	o, err := FromWire(10, 3, 20e-6, 1e-6, ws)
	if err != nil {
		t.Fatal(err)
	}
	want := 20e-6 + 10*1e-6 + 3*2.5e-6
	if math.Abs(o.ServiceTime-want)/want > 1e-12 {
		t.Errorf("FromWire ServiceTime = %g, want %g", o.ServiceTime, want)
	}
	if _, err := TTxFromWire(wire.WireStats{}); err == nil {
		t.Error("zero FramesOut accepted")
	}
	if _, err := FromWire(10, 3, 20e-6, 1e-6, wire.WireStats{}); err == nil {
		t.Error("FromWire with no frames accepted")
	}
}
