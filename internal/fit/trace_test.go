package fit

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

// mkTrace builds a completed trace with the given queue wait and sojourn.
func mkTrace(id uint64, nFltr, r int, wait, sojourn time.Duration) *trace.Trace {
	return &trace.Trace{
		ID: id, Topic: "t", NFilters: nFltr, R: r,
		Complete: true, SojournNs: int64(sojourn),
		Spans: []trace.Span{{Stage: trace.StageQueue, StartNs: 1, DurNs: int64(wait)}},
	}
}

func TestFromTrace(t *testing.T) {
	o, err := FromTrace(mkTrace(1, 10, 3, 40*time.Microsecond, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if o.NFltr != 10 || o.R != 3 {
		t.Errorf("covariates: %+v", o)
	}
	// Service time = sojourn - queue wait = 60µs.
	if math.Abs(o.ServiceTime-60e-6) > 1e-12 {
		t.Errorf("ServiceTime = %v, want 60µs", o.ServiceTime)
	}

	// Skeleton traces carry enough (queue span + sojourn) to qualify.
	sk := mkTrace(2, 5, 1, 20*time.Microsecond, 50*time.Microsecond)
	sk.Skeleton = true
	if _, err := FromTrace(sk); err != nil {
		t.Errorf("skeleton rejected: %v", err)
	}

	for name, tr := range map[string]*trace.Trace{
		"nil":          nil,
		"no sojourn":   {ID: 3, Complete: true},
		"wait>sojourn": mkTrace(4, 1, 1, 200*time.Microsecond, 100*time.Microsecond),
	} {
		if _, err := FromTrace(tr); !errors.Is(err, ErrBadObservation) {
			t.Errorf("%s: err = %v, want ErrBadObservation", name, err)
		}
	}
}

// TestFitTraces recovers known Eq. 1 constants from synthetic per-message
// traces: service = t_rcv + n_fltr·t_fltr + R·t_tx with enough covariate
// variation for the regression to be determined.
func TestFitTraces(t *testing.T) {
	const (
		tRcv  = 5e-6
		tFltr = 1e-6
		tTx   = 2e-6
	)
	var ts []*trace.Trace
	id := uint64(1)
	for _, nf := range []int{1, 5, 20, 50} {
		for _, r := range []int{1, 2, 4, 8} {
			service := tRcv + float64(nf)*tFltr + float64(r)*tTx
			wait := 30 * time.Microsecond
			sojourn := wait + time.Duration(service*float64(time.Second))
			ts = append(ts, mkTrace(id, nf, r, wait, sojourn))
			id++
		}
	}
	// Unusable traces are skipped, not fatal.
	ts = append(ts, nil, &trace.Trace{ID: 99, Complete: true})

	res, err := FitTraces(ts)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]struct{ got, want float64 }{
		"t_rcv":  {res.Model.TRcv, tRcv},
		"t_fltr": {res.Model.TFltr, tFltr},
		"t_tx":   {res.Model.TTx, tTx},
	} {
		if math.Abs(got.got-got.want)/got.want > 0.01 {
			t.Errorf("%s = %v, want %v", name, got.got, got.want)
		}
	}
	if res.R2 < 0.999 {
		t.Errorf("R2 = %v", res.R2)
	}
}

func TestFitTracesUnderdetermined(t *testing.T) {
	// A homogeneous run (single covariate point) cannot determine three
	// constants.
	var ts []*trace.Trace
	for i := uint64(1); i <= 10; i++ {
		ts = append(ts, mkTrace(i, 5, 2, 10*time.Microsecond, 40*time.Microsecond))
	}
	if _, err := FitTraces(ts); err == nil {
		t.Error("homogeneous traces fitted without error")
	}
}
