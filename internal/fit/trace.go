package fit

import (
	"fmt"

	"repro/internal/trace"
)

// This file converts the flight recorder's per-message traces into fit
// observations: where FromThroughput infers E[B] from an aggregate run
// and FromStages/FromWire assemble it from stage means, a trace carries
// one message's measured covariates (n_fltr, R) and its measured service
// time directly — the ground truth the Eq. 1 regression approximates.

// FromTrace builds one per-message observation from a completed trace.
// The service time is the message's broker sojourn minus its enqueue
// wait: everything the dispatch resource spent on the message (match,
// replicate, transmit and the fixed per-message costs t_rcv absorbs),
// excluding the queueing the model predicts separately. The trace must
// have its broker completion recorded (SojournNs > 0) and a queue span.
func FromTrace(t *trace.Trace) (Observation, error) {
	if t == nil || t.SojournNs <= 0 {
		return Observation{}, fmt.Errorf("%w: trace without broker sojourn", ErrBadObservation)
	}
	wait := t.StageNs(trace.StageQueue)
	service := t.SojournNs - wait
	if service <= 0 {
		return Observation{}, fmt.Errorf("%w: non-positive service time", ErrBadObservation)
	}
	return Observation{NFltr: t.NFilters, R: float64(t.R), ServiceTime: float64(service) / 1e9}, nil
}

// FitTraces fits the Eq. 1 constants over per-message trace samples,
// skipping traces without a usable service time (skeletons keep enough —
// queue span plus sojourn — to qualify). It needs covariate variation
// across the traces (different n_fltr or R) like any Fit call; traces
// from a single homogeneous run leave the system underdetermined.
func FitTraces(ts []*trace.Trace) (Result, error) {
	obs := make([]Observation, 0, len(ts))
	for _, t := range ts {
		o, err := FromTrace(t)
		if err != nil {
			continue
		}
		obs = append(obs, o)
	}
	return Fit(obs)
}
