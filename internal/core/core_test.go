package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTableIConstants(t *testing.T) {
	corr, err := TableI(CorrelationIDFiltering)
	if err != nil {
		t.Fatal(err)
	}
	if corr.TRcv != 8.52e-7 || corr.TFltr != 7.02e-6 || corr.TTx != 1.70e-5 {
		t.Errorf("correlation ID constants = %+v", corr)
	}
	app, err := TableI(ApplicationPropertyFiltering)
	if err != nil {
		t.Fatal(err)
	}
	if app.TRcv != 4.10e-6 || app.TFltr != 1.46e-5 || app.TTx != 1.62e-5 {
		t.Errorf("application property constants = %+v", app)
	}
	if _, err := TableI(FilterType(9)); err == nil {
		t.Error("unknown filter type accepted")
	}
	if err := corr.Valid(); err != nil {
		t.Errorf("Table I invalid: %v", err)
	}
}

func TestFilterTypeString(t *testing.T) {
	if CorrelationIDFiltering.String() != "correlation ID filtering" {
		t.Error("String mismatch")
	}
	if ApplicationPropertyFiltering.String() != "application property filtering" {
		t.Error("String mismatch")
	}
	if FilterType(9).String() != "FilterType(9)" {
		t.Error("unknown String mismatch")
	}
}

func TestMeanServiceTimeEq1(t *testing.T) {
	// Eq. 1 with hand-computed values.
	c := TableICorrelationID
	// n_fltr = 100, E[R] = 10:
	want := 8.52e-7 + 100*7.02e-6 + 10*1.70e-5
	if got := c.MeanServiceTime(100, 10); math.Abs(got-want) > 1e-18 {
		t.Errorf("E[B] = %g, want %g", got, want)
	}
	// Zero filters, zero replication: only t_rcv remains.
	if got := c.MeanServiceTime(0, 0); got != c.TRcv {
		t.Errorf("E[B](0,0) = %g, want %g", got, c.TRcv)
	}
	if got := c.ConstantPart(10); math.Abs(got-(8.52e-7+10*7.02e-6)) > 1e-18 {
		t.Errorf("D = %g", got)
	}
}

func TestMeanServiceDuration(t *testing.T) {
	c := CostModel{TRcv: 0.001, TFltr: 0, TTx: 0}
	if got := c.MeanServiceDuration(0, 0); got != time.Millisecond {
		t.Errorf("duration = %v, want 1ms", got)
	}
}

func TestCapacityEq2(t *testing.T) {
	c := TableICorrelationID
	// lambda_max = rho / E[B].
	eb := c.MeanServiceTime(10, 1)
	got, err := c.Capacity(0.9, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9/eb) > 1e-9 {
		t.Errorf("capacity = %g, want %g", got, 0.9/eb)
	}
	for _, rho := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := c.Capacity(rho, 10, 1); !errors.Is(err, ErrParams) {
			t.Errorf("Capacity(rho=%g) err = %v", rho, err)
		}
	}
}

func TestCapacityDecreasesInFiltersAndReplication(t *testing.T) {
	c := TableICorrelationID
	prev := math.Inf(1)
	for _, n := range []int{0, 10, 100, 1000} {
		cap1, err := c.Capacity(0.9, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cap1 >= prev {
			t.Errorf("capacity not decreasing in n_fltr at n=%d", n)
		}
		prev = cap1
	}
	prev = math.Inf(1)
	for _, r := range []float64{1, 10, 100} {
		cap1, err := c.Capacity(0.9, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		if cap1 >= prev {
			t.Errorf("capacity not decreasing in E[R] at r=%g", r)
		}
		prev = cap1
	}
}

func TestUtilizationInvertsCapacity(t *testing.T) {
	c := TableIApplicationProperty
	lambda, err := c.Capacity(0.9, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := c.Utilization(lambda, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-0.9) > 1e-12 {
		t.Errorf("rho = %g, want 0.9", rho)
	}
	if _, err := c.Utilization(-1, 0, 0); !errors.Is(err, ErrParams) {
		t.Error("negative lambda accepted")
	}
}

func TestThroughputComposition(t *testing.T) {
	c := TableICorrelationID
	recv, disp, overall := c.Throughput(45, 5)
	if math.Abs(overall-(recv+disp)) > 1e-9 {
		t.Errorf("overall %g != received %g + dispatched %g", overall, recv, disp)
	}
	if math.Abs(disp/recv-5) > 1e-9 {
		t.Errorf("dispatched/received = %g, want E[R]=5", disp/recv)
	}
}

func TestFilterBenefitBreakEvenPaperValues(t *testing.T) {
	// Section IV-A.2: one or two correlation ID filters pay off iff their
	// match probability is below 58.7% / 17.4%; a single application
	// property filter below 9.9%; three or more correlation ID filters
	// (two or more app property filters) never pay off.
	corr := TableICorrelationID
	app := TableIApplicationProperty

	tests := []struct {
		model CostModel
		nQ    int
		want  float64 // break-even match probability
	}{
		{model: corr, nQ: 1, want: 0.587},
		{model: corr, nQ: 2, want: 0.174},
		{model: app, nQ: 1, want: 0.099},
	}
	for _, tt := range tests {
		got := tt.model.BreakEvenMatchProbability(tt.nQ)
		if math.Abs(got-tt.want) > 0.0006 {
			t.Errorf("break-even(n=%d) = %.4f, want %.3f", tt.nQ, got, tt.want)
		}
		// Consistency with the inequality form.
		if !tt.model.FilterBenefit(tt.nQ, got-0.001) {
			t.Errorf("FilterBenefit just below break-even should hold (n=%d)", tt.nQ)
		}
		if tt.model.FilterBenefit(tt.nQ, got+0.001) {
			t.Errorf("FilterBenefit just above break-even should fail (n=%d)", tt.nQ)
		}
	}

	// Three correlation ID filters can never increase capacity.
	if be := corr.BreakEvenMatchProbability(3); be > 0 {
		t.Errorf("3 corrID filters break-even = %g, want <= 0", be)
	}
	if corr.FilterBenefit(3, 0) {
		t.Error("3 corrID filters at pMatch=0 must not pay off")
	}
	// Two application property filters can never increase capacity.
	if be := app.BreakEvenMatchProbability(2); be > 0 {
		t.Errorf("2 appProp filters break-even = %g, want <= 0", be)
	}
}

func TestEquivalentFiltersPaperObservation(t *testing.T) {
	// Fig. 6 observation: E[R]=10 (100) without filters costs the same as
	// E[R]=1 with n_fltr = 22 (240) correlation ID filters.
	c := TableICorrelationID
	if got := c.EquivalentFilters(10); math.Abs(got-21.8) > 0.05 {
		t.Errorf("EquivalentFilters(10) = %.2f, want ~21.8 (paper: 22)", got)
	}
	if got := c.EquivalentFilters(100); math.Abs(got-239.7) > 0.5 {
		t.Errorf("EquivalentFilters(100) = %.2f, want ~240", got)
	}
	// Cross-check: capacities must indeed agree at those points.
	capR10, err := c.Capacity(0.9, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	capN22, err := c.Capacity(0.9, 22, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(capR10-capN22)/capR10 > 0.01 {
		t.Errorf("capacity(R=10) = %g vs capacity(n=22,R=1) = %g; want within 1%%", capR10, capN22)
	}
}

func TestMaxFiltersForRate(t *testing.T) {
	c := TableICorrelationID
	// Find the filter budget for 1000 msgs/s at rho=0.9, E[R]=1, then
	// verify the capacity at that filter count is still >= 1000 and at
	// one more filter is < 1000.
	n, err := c.MaxFiltersForRate(1000, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	capAtN, err := c.Capacity(0.9, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	capAtN1, err := c.Capacity(0.9, n+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if capAtN < 1000 {
		t.Errorf("capacity at n=%d is %g < 1000", n, capAtN)
	}
	if capAtN1 >= 1000 {
		t.Errorf("capacity at n+1=%d is %g >= 1000", n+1, capAtN1)
	}
	// An infeasible rate errors.
	if _, err := c.MaxFiltersForRate(1e9, 0.9, 1); !errors.Is(err, ErrOverload) {
		t.Errorf("infeasible rate err = %v", err)
	}
	if _, err := c.MaxFiltersForRate(-1, 0.9, 1); !errors.Is(err, ErrParams) {
		t.Errorf("negative rate err = %v", err)
	}
}

func TestValid(t *testing.T) {
	bad := []CostModel{
		{TRcv: -1, TFltr: 1, TTx: 1},
		{},
		{TRcv: math.NaN(), TFltr: 1, TTx: 1},
	}
	for _, c := range bad {
		if err := c.Valid(); !errors.Is(err, ErrParams) {
			t.Errorf("Valid(%+v) = %v, want ErrParams", c, err)
		}
	}
}

// TestCapacityUtilizationRoundTrip is a property test: Utilization of
// Capacity is the requested rho for any valid parameters.
func TestCapacityUtilizationRoundTrip(t *testing.T) {
	c := TableICorrelationID
	f := func(nRaw uint16, rRaw uint16, rhoRaw uint16) bool {
		n := int(nRaw % 10000)
		r := float64(rRaw % 1000)
		rho := (float64(rhoRaw%999) + 1) / 1000 // (0, 1)
		lambda, err := c.Capacity(rho, n, r)
		if err != nil {
			return false
		}
		got, err := c.Utilization(lambda, n, r)
		if err != nil {
			return false
		}
		return math.Abs(got-rho) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMeanServiceTime(b *testing.B) {
	c := TableICorrelationID
	for i := 0; i < b.N; i++ {
		_ = c.MeanServiceTime(100, 10)
	}
}

func TestMeanServiceTimeSized(t *testing.T) {
	c := TableICorrelationID
	// Table I has no per-byte term: sized and unsized agree.
	if c.MeanServiceTimeSized(10, 2, 1<<20) != c.MeanServiceTime(10, 2) {
		t.Error("TByte=0 model should ignore body size")
	}
	// With a per-byte term, the body costs once on receive plus once per
	// replica.
	c.TByte = 1e-9
	base := c.MeanServiceTime(10, 2)
	want := base + 1000*1e-9*(1+2)
	if got := c.MeanServiceTimeSized(10, 2, 1000); math.Abs(got-want) > 1e-18 {
		t.Errorf("sized = %g, want %g", got, want)
	}
	// Negative sizes clamp to zero.
	if c.MeanServiceTimeSized(10, 2, -5) != base {
		t.Error("negative body size not clamped")
	}
}
