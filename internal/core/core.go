// Package core implements the paper's primary contribution: the simple
// model for the message processing time of a JMS server (Eq. 1),
//
//	E[B] = t_rcv + n_fltr * t_fltr + E[R] * t_tx,
//
// the measured overhead constants of Table I, the server capacity formula
// (Eq. 2), and the filter-benefit rule (Eq. 3) that tells when installing
// filters increases server capacity.
package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// FilterType selects the filter family whose Table I constants apply.
type FilterType int

// Filter families measured in the paper.
const (
	// CorrelationIDFiltering matches on the correlation ID header.
	CorrelationIDFiltering FilterType = iota + 1
	// ApplicationPropertyFiltering matches JMS selectors on properties.
	ApplicationPropertyFiltering
)

// String names the filter type as in the paper.
func (t FilterType) String() string {
	switch t {
	case CorrelationIDFiltering:
		return "correlation ID filtering"
	case ApplicationPropertyFiltering:
		return "application property filtering"
	default:
		return "FilterType(" + strconv.Itoa(int(t)) + ")"
	}
}

// CostModel holds the three per-message overhead constants of the paper's
// processing-time model. All values are in seconds.
type CostModel struct {
	// TRcv is the fixed receive overhead per message, independent of
	// filter installations.
	TRcv float64
	// TFltr is the per-installed-filter check overhead per message.
	TFltr float64
	// TTx is the per-replica transmission overhead.
	TTx float64
	// TByte is an extension beyond the paper's model: a per-body-byte
	// cost applied once on receive and once per transmitted replica. The
	// paper observed that "the message size has a significant impact on
	// the message throughput" but kept a 0-byte body, making this term
	// vanish; it is 0 in Table I.
	TByte float64
}

// Table I of the paper: overhead constants measured for FioranoMQ 7.5 on
// the authors' 3.2 GHz testbed.
var (
	// TableICorrelationID are the constants for correlation ID filtering.
	TableICorrelationID = CostModel{TRcv: 8.52e-7, TFltr: 7.02e-6, TTx: 1.70e-5}
	// TableIApplicationProperty are the constants for application property
	// filtering.
	TableIApplicationProperty = CostModel{TRcv: 4.10e-6, TFltr: 1.46e-5, TTx: 1.62e-5}
)

// TableI returns the paper's constants for the given filter type.
func TableI(t FilterType) (CostModel, error) {
	switch t {
	case CorrelationIDFiltering:
		return TableICorrelationID, nil
	case ApplicationPropertyFiltering:
		return TableIApplicationProperty, nil
	default:
		return CostModel{}, fmt.Errorf("core: unknown filter type %d", int(t))
	}
}

// Errors returned by the model.
var (
	// ErrParams is returned for invalid model parameters.
	ErrParams = errors.New("core: invalid parameters")
	// ErrOverload is returned when a requested utilization is infeasible.
	ErrOverload = errors.New("core: offered load exceeds capacity")
)

// Valid reports whether the model constants are usable.
func (c CostModel) Valid() error {
	if c.TRcv < 0 || c.TFltr < 0 || c.TTx < 0 {
		return fmt.Errorf("%w: negative cost constants %+v", ErrParams, c)
	}
	if c.TRcv == 0 && c.TFltr == 0 && c.TTx == 0 {
		return fmt.Errorf("%w: all cost constants zero", ErrParams)
	}
	if math.IsNaN(c.TRcv) || math.IsNaN(c.TFltr) || math.IsNaN(c.TTx) {
		return fmt.Errorf("%w: NaN cost constants", ErrParams)
	}
	return nil
}

// MeanServiceTime evaluates Eq. 1: the expected processing time of one
// message given n_fltr installed filters and mean replication grade meanR.
func (c CostModel) MeanServiceTime(nFltr int, meanR float64) float64 {
	return c.TRcv + float64(nFltr)*c.TFltr + meanR*c.TTx
}

// MeanServiceTimeSized extends Eq. 1 with the per-byte term: a body of
// bodyBytes costs TByte once on receive and once per replica.
func (c CostModel) MeanServiceTimeSized(nFltr int, meanR float64, bodyBytes int) float64 {
	if bodyBytes < 0 {
		bodyBytes = 0
	}
	return c.MeanServiceTime(nFltr, meanR) + float64(bodyBytes)*c.TByte*(1+meanR)
}

// ConstantPart returns D = t_rcv + n_fltr*t_fltr, the deterministic part
// of the service time (Section IV-B.2).
func (c CostModel) ConstantPart(nFltr int) float64 {
	return c.TRcv + float64(nFltr)*c.TFltr
}

// MeanServiceDuration is MeanServiceTime as a time.Duration.
func (c CostModel) MeanServiceDuration(nFltr int, meanR float64) time.Duration {
	return time.Duration(c.MeanServiceTime(nFltr, meanR) * float64(time.Second))
}

// Capacity evaluates Eq. 2: the maximum supportable received-message rate
// lambda_max (msgs/s) at server utilization rho.
func (c CostModel) Capacity(rho float64, nFltr int, meanR float64) (float64, error) {
	if rho <= 0 || rho > 1 || math.IsNaN(rho) {
		return 0, fmt.Errorf("%w: utilization rho=%g outside (0,1]", ErrParams, rho)
	}
	eb := c.MeanServiceTime(nFltr, meanR)
	if eb <= 0 {
		return 0, fmt.Errorf("%w: non-positive service time %g", ErrParams, eb)
	}
	return rho / eb, nil
}

// Utilization returns rho = lambda * E[B] for a given received-message
// rate.
func (c CostModel) Utilization(lambda float64, nFltr int, meanR float64) (float64, error) {
	if lambda < 0 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("%w: lambda=%g", ErrParams, lambda)
	}
	return lambda * c.MeanServiceTime(nFltr, meanR), nil
}

// Throughput predicts the saturated-server message rates for a scenario:
// the received throughput 1/E[B], the dispatched throughput E[R]/E[B] and
// their sum, the overall throughput — the quantity plotted in Fig. 4.
func (c CostModel) Throughput(nFltr int, meanR float64) (received, dispatched, overall float64) {
	eb := c.MeanServiceTime(nFltr, meanR)
	received = 1 / eb
	dispatched = meanR / eb
	return received, dispatched, received + dispatched
}

// FilterBenefit evaluates Eq. 3 for one information consumer q that has
// installed nFltrQ filters receiving a proportion pMatch of all messages:
// installing the filters increases server capacity iff
//
//	nFltrQ * t_fltr < (1 - pMatch) * t_tx.
func (c CostModel) FilterBenefit(nFltrQ int, pMatch float64) bool {
	return float64(nFltrQ)*c.TFltr < (1-pMatch)*c.TTx
}

// BreakEvenMatchProbability returns the largest match probability for
// which installing nFltrQ filters still increases server capacity
// (solving Eq. 3 for pMatch). A negative result means the filters can
// never pay off: "three or more [correlation ID] filters per consumer slow
// down the server more than forwarding any message".
func (c CostModel) BreakEvenMatchProbability(nFltrQ int) float64 {
	if c.TTx == 0 {
		return math.Inf(-1)
	}
	return 1 - float64(nFltrQ)*c.TFltr/c.TTx
}

// EquivalentFilters returns the number of filters whose checking cost
// equals the transmission cost of replication grade r — the paper's
// observation that E[R]=10 without filters degrades capacity like
// n_fltr = 22 filters at E[R]=1 (correlation ID filtering).
func (c CostModel) EquivalentFilters(r float64) float64 {
	if c.TFltr == 0 {
		return math.Inf(1)
	}
	return (r - 1) * c.TTx / c.TFltr
}

// MaxFiltersForRate inverts Eq. 2: the largest n_fltr that still supports
// the received rate lambda at utilization rho and mean replication meanR.
func (c CostModel) MaxFiltersForRate(lambda, rho, meanR float64) (int, error) {
	if lambda <= 0 || rho <= 0 || rho > 1 {
		return 0, fmt.Errorf("%w: lambda=%g rho=%g", ErrParams, lambda, rho)
	}
	budget := rho/lambda - c.TRcv - meanR*c.TTx
	if budget < 0 {
		return 0, fmt.Errorf("%w: rate %g msgs/s infeasible even with 0 filters", ErrOverload, lambda)
	}
	if c.TFltr == 0 {
		return math.MaxInt32, nil
	}
	return int(budget / c.TFltr), nil
}
