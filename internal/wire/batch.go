package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/jms"
)

// MSG_BATCH payload layout: message count u32, then per message a u32
// length prefix followed by the message's AppendMessage encoding. The
// per-message length prefix makes every message independently decodable
// (DecodeMessage rejects trailing bytes, so the prefix is also verified
// exact), and a batch of one carries byte-identical message bytes to a
// plain PUBLISH payload.

// AppendBatch appends the wire encoding of a batch to buf and returns the
// extended slice.
func AppendBatch(buf []byte, msgs []*jms.Message) []byte {
	e := encoder{buf: buf}
	e.u32(uint32(len(msgs)))
	for _, m := range msgs {
		lenAt := len(e.buf)
		e.u32(0) // length placeholder, patched below
		e.buf = AppendMessage(e.buf, m)
		binary.BigEndian.PutUint32(e.buf[lenAt:], uint32(len(e.buf)-lenAt-4))
	}
	return e.buf
}

// EncodeBatch serializes a batch into a pre-sized payload. Hot paths that
// already hold a (pooled) buffer use AppendBatch instead.
func EncodeBatch(msgs []*jms.Message) []byte {
	hint := 4
	for _, m := range msgs {
		hint += 4 + messageSizeHint(m)
	}
	return AppendBatch(make([]byte, 0, hint), msgs)
}

// DecodeBatch parses a payload produced by EncodeBatch. The declared
// message count is bounds-checked against the payload size before any
// allocation, so a corrupt count cannot force a huge slice.
func DecodeBatch(payload []byte) ([]*jms.Message, error) {
	d := decoder{buf: payload}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Every message costs at least its 4-byte length prefix.
	if int64(n)*4 > int64(d.remain()) {
		return nil, fmt.Errorf("%w: batch count %d exceeds payload", ErrTruncated, n)
	}
	msgs := make([]*jms.Message, 0, n)
	for i := uint32(0); i < n; i++ {
		sz, err := d.u32()
		if err != nil {
			return nil, err
		}
		if d.remain() < int(sz) {
			return nil, ErrTruncated
		}
		m, err := DecodeMessage(d.buf[d.off : d.off+int(sz)])
		if err != nil {
			return nil, fmt.Errorf("wire: batch message %d: %w", i, err)
		}
		d.off += int(sz)
		msgs = append(msgs, m)
	}
	if d.remain() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in batch payload", d.remain())
	}
	return msgs, nil
}
