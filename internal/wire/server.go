package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// Server exposes a broker over TCP. Every request frame carries a client
// request ID as its first u64; replies echo it, so clients can pipeline.
// Publish acknowledgements double as the network form of the push-back
// mechanism: the server acks only after the broker accepted the message
// into the topic's bounded in-flight window.
type Server struct {
	broker *broker.Broker
	ln     net.Listener
	log    *slog.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// dedupe suppresses redelivered publishes from reconnecting
	// publishers (see dedupe.go). Server-wide: retries arrive on new
	// connections.
	dedupe     pubDedup
	duplicates atomic.Uint64
	nextConnID atomic.Uint64
	accepted   atomic.Uint64

	wg sync.WaitGroup
}

// ServeOptions configure optional server behaviour.
type ServeOptions struct {
	// Logger receives structured connection-lifecycle and error events
	// (connection IDs, topics, reasons). Nil disables logging.
	Logger *slog.Logger
}

// Serve starts accepting connections on ln and serving b. It returns
// immediately; use Close to stop.
func Serve(b *broker.Broker, ln net.Listener) *Server {
	return ServeWith(b, ln, ServeOptions{})
}

// ServeWith is Serve with explicit options.
func ServeWith(b *broker.Broker, ln net.Listener, opts ServeOptions) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		broker: b,
		ln:     ln,
		log:    logger,
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// DuplicatesSuppressed reports how many redelivered publishes the dedupe
// table acknowledged without publishing again.
func (s *Server) DuplicatesSuppressed() uint64 { return s.duplicates.Load() }

// OpenConns returns the number of currently open client connections.
func (s *Server) OpenConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// AcceptedConns returns the total number of connections accepted.
func (s *Server) AcceptedConns() uint64 { return s.accepted.Load() }

// Close stops the listener and all connections and waits for the handler
// goroutines to exit. It does not close the underlying broker.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server already closed")
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// serverConn is the per-connection state.
type serverConn struct {
	server *Server
	conn   net.Conn
	id     uint64
	log    *slog.Logger
	done   chan struct{}

	writeMu sync.Mutex

	subMu sync.Mutex
	subs  map[uint64]*connSub
	// nextSubID allocates connection-local subscription IDs; broker IDs
	// are not used on the wire because durable consumer handles have none.
	nextSubID uint64
}

type connSub struct {
	id   uint64
	sub  *broker.Subscriber
	stop chan struct{}
	// pumpDone is closed when the delivery pump has exited, so teardown
	// can read the unacked table without a writer racing it.
	pumpDone chan struct{}

	// Acked-delivery state. The pump records a delivery in unacked
	// (keyed by its sequence number) before writing the frame; MSG_ACK
	// deletes it; whatever remains at teardown is requeued.
	acked   bool
	ackMu   sync.Mutex
	nextSeq uint64
	unacked map[uint64]*jms.Message
}

// takeUnacked removes and returns the unacked deliveries in delivery
// order. Call only after the pump has exited.
func (cs *connSub) takeUnacked() []*jms.Message {
	cs.ackMu.Lock()
	defer cs.ackMu.Unlock()
	if len(cs.unacked) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(cs.unacked))
	for seq := range cs.unacked {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	msgs := make([]*jms.Message, len(seqs))
	for i, seq := range seqs {
		msgs[i] = cs.unacked[seq]
	}
	cs.unacked = nil
	return msgs
}

// finish stops the pump, waits for it, and releases the subscription,
// requeueing unacked deliveries on acked subscriptions.
func (cs *connSub) finish() error {
	close(cs.stop)
	<-cs.pumpDone
	if cs.acked {
		return cs.sub.UnsubscribeRequeue(cs.takeUnacked())
	}
	return cs.sub.Unsubscribe()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	id := s.nextConnID.Add(1)
	sc := &serverConn{
		server: s,
		conn:   conn,
		id:     id,
		log:    s.log.With("conn", id),
		done:   make(chan struct{}),
		subs:   make(map[uint64]*connSub),
	}
	sc.log.Debug("connection accepted", "remote", conn.RemoteAddr().String())
	sc.readLoop()
	close(sc.done)
	// Close the connection before waiting for the pumps: one of them may
	// be blocked mid-write on the dead peer.
	_ = conn.Close()

	// Tear down this connection's subscriptions. Non-durable mode: a
	// disconnected subscriber is forgotten. Acked durable subscriptions:
	// deliveries written but never acknowledged go back to the backlog,
	// so a reconnecting consumer sees them again instead of losing them.
	sc.subMu.Lock()
	subs := make([]*connSub, 0, len(sc.subs))
	for _, cs := range sc.subs {
		subs = append(subs, cs)
	}
	sc.subs = nil
	sc.subMu.Unlock()
	for _, cs := range subs {
		_ = cs.finish()
	}
	sc.log.Debug("connection closed", "subscriptions", len(subs))

	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (sc *serverConn) write(f Frame) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	return WriteFrame(sc.conn, f)
}

func (sc *serverConn) writeErr(reqID uint64, err error) {
	sc.log.Debug("request failed", "req", reqID, "reason", err.Error())
	_ = sc.write(Frame{Type: FrameError, Payload: EncodeError(reqID, err.Error())})
}

func (sc *serverConn) readLoop() {
	for {
		f, err := ReadFrame(sc.conn)
		if err != nil {
			return // io.EOF or closed connection
		}
		if err := sc.handleFrame(f); err != nil {
			return
		}
	}
}

func (sc *serverConn) handleFrame(f Frame) error {
	d := decoder{buf: f.Payload}
	reqID, err := d.u64()
	if err != nil && f.Type != FramePing {
		return err
	}
	rest := f.Payload[d.off:]

	switch f.Type {
	case FramePing:
		return sc.write(Frame{Type: FramePong})

	case FrameConfigureTopic:
		name, err := DecodeString(rest)
		if err != nil {
			return err
		}
		if err := sc.server.broker.ConfigureTopic(name); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameConfigureTopicOK, Payload: EncodeU64(reqID)})

	case FramePublish:
		m, err := DecodeMessage(rest)
		if err != nil {
			return err
		}
		// A publish stamped with a dedupe identity claims its (pub, seq)
		// before it reaches the broker; a redelivery (the publisher resent
		// because the ack was lost in a reconnect) is acknowledged without
		// publishing again — at-least-once retry, effectively-once effect.
		pub, seq, stamped := pubIdentity(m)
		if stamped && !sc.server.dedupe.record(pub, seq) {
			sc.server.duplicates.Add(1)
			return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})
		}
		// Blocking Publish implements push-back: the ack is delayed while
		// the topic window is full, which throttles the remote publisher.
		if err := sc.server.broker.Publish(context.Background(), m); err != nil {
			// The sequence was claimed but never published; release it so
			// a retry of this message is not swallowed as a duplicate.
			if stamped {
				sc.server.dedupe.unrecord(pub, seq)
			}
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})

	case FrameBatch:
		msgs, err := DecodeBatch(rest)
		if err != nil {
			return err
		}
		// Per-message dedupe: a redelivered batch (its shared ack was lost
		// in a reconnect) may overlap already-claimed sequences. Duplicates
		// are skipped, the fresh remainder is published as one unit, and
		// the single PUB_ACK covers the whole batch either way.
		type claim struct {
			pub string
			seq int64
		}
		var claims []claim
		fresh := make([]*jms.Message, 0, len(msgs))
		for _, m := range msgs {
			pub, seq, stamped := pubIdentity(m)
			if stamped {
				if !sc.server.dedupe.record(pub, seq) {
					sc.server.duplicates.Add(1)
					continue
				}
				claims = append(claims, claim{pub: pub, seq: seq})
			}
			fresh = append(fresh, m)
		}
		if err := sc.server.broker.PublishBatch(context.Background(), fresh); err != nil {
			// Claimed but never published; release every claim so a retry
			// of the batch is not swallowed as duplicates.
			for _, cl := range claims {
				sc.server.dedupe.unrecord(cl.pub, cl.seq)
			}
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})

	case FrameSubscribe:
		topicName, spec, err := DecodeSubscribe(rest)
		if err != nil {
			return err
		}
		flt, err := buildFilter(spec)
		if err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		var sub *broker.Subscriber
		if spec.DurableName != "" {
			sub, err = sc.server.broker.SubscribeDurable(topicName, spec.DurableName, flt, broker.DurableOptions{})
		} else {
			sub, err = sc.server.broker.Subscribe(topicName, flt)
		}
		if err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		sc.subMu.Lock()
		if sc.subs == nil { // connection tearing down
			sc.subMu.Unlock()
			_ = sub.Unsubscribe()
			return errors.New("wire: connection closing")
		}
		sc.nextSubID++
		cs := &connSub{
			id:       sc.nextSubID,
			sub:      sub,
			stop:     make(chan struct{}),
			pumpDone: make(chan struct{}),
			acked:    spec.Acked,
		}
		if cs.acked {
			cs.unacked = make(map[uint64]*jms.Message)
		}
		sc.subs[cs.id] = cs
		sc.subMu.Unlock()
		sc.log.Debug("subscribed", "sub", cs.id, "topic", topicName,
			"durable", spec.DurableName, "acked", spec.Acked)

		go sc.deliveryPump(cs)

		var e encoder
		e.u64(reqID)
		e.u64(cs.id)
		return sc.write(Frame{Type: FrameSubscribeOK, Payload: e.buf})

	case FrameUnsubscribe:
		subID, err := DecodeU64(rest)
		if err != nil {
			return err
		}
		sc.subMu.Lock()
		cs, ok := sc.subs[subID]
		if ok {
			delete(sc.subs, subID)
		}
		sc.subMu.Unlock()
		if !ok {
			sc.writeErr(reqID, fmt.Errorf("wire: unknown subscription %d", subID))
			return nil
		}
		if err := cs.finish(); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		sc.log.Debug("unsubscribed", "sub", subID)
		return sc.write(Frame{Type: FrameUnsubscribeOK, Payload: EncodeU64(reqID)})

	case FrameMsgAck:
		// No request ID, no reply: the payload is (subID, seq).
		subID, seq, err := DecodeAck(f.Payload)
		if err != nil {
			return err
		}
		sc.subMu.Lock()
		cs := sc.subs[subID]
		sc.subMu.Unlock()
		if cs != nil && cs.acked {
			cs.ackMu.Lock()
			delete(cs.unacked, seq)
			cs.ackMu.Unlock()
		}
		return nil

	case FrameDeleteDurable:
		d := decoder{buf: rest}
		topicName, err := d.str()
		if err != nil {
			return err
		}
		name, err := d.str()
		if err != nil {
			return err
		}
		if err := sc.server.broker.UnsubscribeDurable(topicName, name); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameDeleteDurableOK, Payload: EncodeU64(reqID)})

	default:
		sc.writeErr(reqID, fmt.Errorf("wire: unexpected frame %s", f.Type))
		return nil
	}
}

// deliveryCoalesce bounds how many queued deliveries one pump iteration
// gathers into a single vectored write. 16 matches the default batch
// size the publish side is tuned for; past that the syscall amortization
// has flattened out.
const deliveryCoalesce = 16

// deliveryPump forwards broker deliveries for one subscription to the
// network connection. After the first blocking receive it greedily drains
// whatever else is already queued (up to deliveryCoalesce) and ships the
// burst as one vectored write, so a batched publish that fans out to this
// subscriber costs one syscall instead of one per message. On an acked
// subscription every delivery is recorded in the unacked table before the
// frame is written, so a connection cut between write and ack leaves the
// message recoverable.
func (sc *serverConn) deliveryPump(cs *connSub) {
	defer close(cs.pumpDone)
	batch := make([]*jms.Message, 0, deliveryCoalesce)
	var vs vecScratch
	for {
		select {
		case m, ok := <-cs.sub.Chan():
			if !ok {
				return
			}
			batch = append(batch[:0], m)
		drain:
			for len(batch) < deliveryCoalesce {
				select {
				case m2, ok := <-cs.sub.Chan():
					if !ok {
						// Channel closed mid-drain: flush what we have,
						// then exit.
						_ = sc.writeDeliveries(cs, batch, &vs)
						return
					}
					batch = append(batch, m2)
				default:
					break drain
				}
			}
			if err := sc.writeDeliveries(cs, batch, &vs); err != nil {
				return
			}
		case <-cs.stop:
			return
		case <-sc.done:
			return
		}
	}
}

// vecScratch is a delivery pump's reusable vectored-write state: the
// net.Buffers passed to writev and the pooled buffers backing it.
type vecScratch struct {
	bufs net.Buffers
	pool []*[]byte
}

// release returns every pooled buffer and resets the scratch.
func (vs *vecScratch) release() {
	for _, bp := range vs.pool {
		PutBuffer(bp)
	}
	vs.pool = vs.pool[:0]
	vs.bufs = vs.bufs[:0]
}

// writeDeliveries records and writes a burst of deliveries. Sequence
// numbers for an acked subscription are allocated under one lock for the
// whole burst, and the frames go out in a single vectored write.
func (sc *serverConn) writeDeliveries(cs *connSub, msgs []*jms.Message, vs *vecScratch) error {
	if len(msgs) == 0 {
		return nil
	}
	var seqBase uint64
	if cs.acked {
		cs.ackMu.Lock()
		seqBase = cs.nextSeq
		for i, m := range msgs {
			cs.unacked[seqBase+uint64(i)+1] = m
		}
		cs.nextSeq += uint64(len(msgs))
		cs.ackMu.Unlock()
	}
	seqFor := func(i int) uint64 {
		if !cs.acked {
			return 0
		}
		return seqBase + uint64(i) + 1
	}
	if len(msgs) == 1 {
		return sc.writeDelivery(cs.id, seqFor(0), msgs[0])
	}
	vs.bufs = vs.bufs[:0]
	for i, m := range msgs {
		bp := GetBuffer()
		vs.pool = append(vs.pool, bp)
		buf := append((*bp)[:0], 0, 0, 0, 0, byte(FrameMessage))
		buf = AppendDelivery(buf, cs.id, seqFor(i), m)
		*bp = buf
		if len(buf)-5 > MaxFrameSize {
			vs.release()
			return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(buf)-5)
		}
		binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-5))
		vs.bufs = append(vs.bufs, buf)
	}
	// WriteTo consumes the slice it is given; hand it a copy of the header
	// so the scratch keeps its backing array for the next burst.
	nb := vs.bufs
	sc.writeMu.Lock()
	_, err := nb.WriteTo(sc.conn)
	sc.writeMu.Unlock()
	vs.release()
	return err
}

// writeDelivery encodes and writes one MESSAGE frame using a pooled
// buffer: the 5-byte frame prologue and the payload are built in the same
// buffer and written with a single conn.Write, so the delivery fast path
// allocates nothing in steady state.
func (sc *serverConn) writeDelivery(subID, seq uint64, m *jms.Message) error {
	bp := GetBuffer()
	buf := append((*bp)[:0], 0, 0, 0, 0, byte(FrameMessage))
	buf = AppendDelivery(buf, subID, seq, m)
	*bp = buf
	if len(buf)-5 > MaxFrameSize {
		PutBuffer(bp)
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(buf)-5)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-5))
	sc.writeMu.Lock()
	_, err := sc.conn.Write(buf)
	sc.writeMu.Unlock()
	PutBuffer(bp)
	return err
}

// buildFilter constructs the broker filter from a wire spec.
func buildFilter(spec FilterSpec) (filter.Filter, error) {
	switch spec.Mode {
	case FilterNone:
		return filter.All{}, nil
	case FilterCorrelationID:
		return filter.NewCorrelationID(spec.Expr)
	case FilterSelector:
		return filter.NewProperty(spec.Expr)
	default:
		return nil, fmt.Errorf("wire: unknown filter mode %d", spec.Mode)
	}
}
