package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// Server exposes a broker over TCP. Every request frame carries a client
// request ID as its first u64; replies echo it, so clients can pipeline.
// Publish acknowledgements double as the network form of the push-back
// mechanism: the server acks only after the broker accepted the message
// into the topic's bounded in-flight window.
type Server struct {
	broker *broker.Broker
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Serve starts accepting connections on ln and serving b. It returns
// immediately; use Close to stop.
func Serve(b *broker.Broker, ln net.Listener) *Server {
	s := &Server{
		broker: b,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and all connections and waits for the handler
// goroutines to exit. It does not close the underlying broker.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server already closed")
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// serverConn is the per-connection state.
type serverConn struct {
	server *Server
	conn   net.Conn
	done   chan struct{}

	writeMu sync.Mutex

	subMu sync.Mutex
	subs  map[uint64]*connSub
	// nextSubID allocates connection-local subscription IDs; broker IDs
	// are not used on the wire because durable consumer handles have none.
	nextSubID uint64
}

type connSub struct {
	id   uint64
	sub  *broker.Subscriber
	stop chan struct{}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	sc := &serverConn{
		server: s,
		conn:   conn,
		done:   make(chan struct{}),
		subs:   make(map[uint64]*connSub),
	}
	sc.readLoop()
	close(sc.done)

	// Tear down this connection's subscriptions (non-durable mode: a
	// disconnected subscriber is forgotten).
	sc.subMu.Lock()
	subs := make([]*connSub, 0, len(sc.subs))
	for _, cs := range sc.subs {
		subs = append(subs, cs)
	}
	sc.subs = nil
	sc.subMu.Unlock()
	for _, cs := range subs {
		close(cs.stop)
		_ = cs.sub.Unsubscribe()
	}

	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

func (sc *serverConn) write(f Frame) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	return WriteFrame(sc.conn, f)
}

func (sc *serverConn) writeErr(reqID uint64, err error) {
	_ = sc.write(Frame{Type: FrameError, Payload: EncodeError(reqID, err.Error())})
}

func (sc *serverConn) readLoop() {
	for {
		f, err := ReadFrame(sc.conn)
		if err != nil {
			return // io.EOF or closed connection
		}
		if err := sc.handleFrame(f); err != nil {
			return
		}
	}
}

func (sc *serverConn) handleFrame(f Frame) error {
	d := decoder{buf: f.Payload}
	reqID, err := d.u64()
	if err != nil && f.Type != FramePing {
		return err
	}
	rest := f.Payload[d.off:]

	switch f.Type {
	case FramePing:
		return sc.write(Frame{Type: FramePong})

	case FrameConfigureTopic:
		name, err := DecodeString(rest)
		if err != nil {
			return err
		}
		if err := sc.server.broker.ConfigureTopic(name); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameConfigureTopicOK, Payload: EncodeU64(reqID)})

	case FramePublish:
		m, err := DecodeMessage(rest)
		if err != nil {
			return err
		}
		// Blocking Publish implements push-back: the ack is delayed while
		// the topic window is full, which throttles the remote publisher.
		if err := sc.server.broker.Publish(context.Background(), m); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})

	case FrameSubscribe:
		topicName, spec, err := DecodeSubscribe(rest)
		if err != nil {
			return err
		}
		flt, err := buildFilter(spec)
		if err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		var sub *broker.Subscriber
		if spec.DurableName != "" {
			sub, err = sc.server.broker.SubscribeDurable(topicName, spec.DurableName, flt, broker.DurableOptions{})
		} else {
			sub, err = sc.server.broker.Subscribe(topicName, flt)
		}
		if err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		sc.subMu.Lock()
		if sc.subs == nil { // connection tearing down
			sc.subMu.Unlock()
			_ = sub.Unsubscribe()
			return errors.New("wire: connection closing")
		}
		sc.nextSubID++
		cs := &connSub{id: sc.nextSubID, sub: sub, stop: make(chan struct{})}
		sc.subs[cs.id] = cs
		sc.subMu.Unlock()

		go sc.deliveryPump(cs)

		var e encoder
		e.u64(reqID)
		e.u64(cs.id)
		return sc.write(Frame{Type: FrameSubscribeOK, Payload: e.buf})

	case FrameUnsubscribe:
		subID, err := DecodeU64(rest)
		if err != nil {
			return err
		}
		sc.subMu.Lock()
		cs, ok := sc.subs[subID]
		if ok {
			delete(sc.subs, subID)
		}
		sc.subMu.Unlock()
		if !ok {
			sc.writeErr(reqID, fmt.Errorf("wire: unknown subscription %d", subID))
			return nil
		}
		close(cs.stop)
		if err := cs.sub.Unsubscribe(); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameUnsubscribeOK, Payload: EncodeU64(reqID)})

	case FrameDeleteDurable:
		d := decoder{buf: rest}
		topicName, err := d.str()
		if err != nil {
			return err
		}
		name, err := d.str()
		if err != nil {
			return err
		}
		if err := sc.server.broker.UnsubscribeDurable(topicName, name); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameDeleteDurableOK, Payload: EncodeU64(reqID)})

	default:
		sc.writeErr(reqID, fmt.Errorf("wire: unexpected frame %s", f.Type))
		return nil
	}
}

// deliveryPump forwards broker deliveries for one subscription to the
// network connection.
func (sc *serverConn) deliveryPump(cs *connSub) {
	for {
		select {
		case m, ok := <-cs.sub.Chan():
			if !ok {
				return
			}
			if err := sc.writeDelivery(cs.id, m); err != nil {
				return
			}
		case <-cs.stop:
			return
		case <-sc.done:
			return
		}
	}
}

// writeDelivery encodes and writes one MESSAGE frame using a pooled
// buffer: the 5-byte frame prologue and the payload are built in the same
// buffer and written with a single conn.Write, so the delivery fast path
// allocates nothing in steady state.
func (sc *serverConn) writeDelivery(subID uint64, m *jms.Message) error {
	bp := GetBuffer()
	buf := append((*bp)[:0], 0, 0, 0, 0, byte(FrameMessage))
	buf = AppendDelivery(buf, subID, m)
	*bp = buf
	if len(buf)-5 > MaxFrameSize {
		PutBuffer(bp)
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(buf)-5)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-5))
	sc.writeMu.Lock()
	_, err := sc.conn.Write(buf)
	sc.writeMu.Unlock()
	PutBuffer(bp)
	return err
}

// buildFilter constructs the broker filter from a wire spec.
func buildFilter(spec FilterSpec) (filter.Filter, error) {
	switch spec.Mode {
	case FilterNone:
		return filter.All{}, nil
	case FilterCorrelationID:
		return filter.NewCorrelationID(spec.Expr)
	case FilterSelector:
		return filter.NewProperty(spec.Expr)
	default:
		return nil, fmt.Errorf("wire: unknown filter mode %d", spec.Mode)
	}
}
