package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/trace"
)

// Server exposes a broker over TCP. Every request frame carries a client
// request ID as its first u64; replies echo it, so clients can pipeline.
// Publish acknowledgements double as the network form of the push-back
// mechanism: the server acks only after the broker accepted the message
// into the topic's bounded in-flight window.
type Server struct {
	broker *broker.Broker
	ln     net.Listener
	log    *slog.Logger
	tracer *trace.Recorder // nil disables flight recording
	// forwarder, when non-nil, replicates client publishes to mesh peers
	// (see forward.go). FORWARD frames bypass it by design.
	forwarder Forwarder

	// forwardsIn counts FORWARD frames applied locally.
	forwardsIn atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	// dedupe suppresses redelivered publishes from reconnecting
	// publishers (see dedupe.go). Server-wide: retries arrive on new
	// connections.
	dedupe     pubDedup
	duplicates atomic.Uint64
	nextConnID atomic.Uint64
	accepted   atomic.Uint64

	// counters aggregate the wire path's frame/byte/syscall activity
	// across connections (see egress.go); exported by WireStats.
	counters wireCounters

	wg sync.WaitGroup
}

// WireStats is a snapshot of the server's aggregate wire-path counters.
// The syscall counts against the frame counts quantify the coalescing the
// ingress window and egress queue achieve; WriteNanos over FramesOut is a
// direct, per-frame measure of the transmit syscall cost that the paper's
// t_tx constant had to absorb unobserved (see fit.FromWire).
type WireStats struct {
	// FramesIn / BytesIn / ReadCalls count inbound frames, payload+prologue
	// bytes, and Read syscalls on connection sockets.
	FramesIn  uint64
	BytesIn   uint64
	ReadCalls uint64
	// FramesOut / BytesOut / WriteCalls / WriteNanos count outbound frames,
	// bytes, vectored write syscalls, and the wall time spent inside them.
	FramesOut  uint64
	BytesOut   uint64
	WriteCalls uint64
	WriteNanos uint64
}

// WireStats returns a snapshot of the aggregate wire-path counters.
func (s *Server) WireStats() WireStats {
	return WireStats{
		FramesIn:   s.counters.framesIn.Load(),
		BytesIn:    s.counters.bytesIn.Load(),
		ReadCalls:  s.counters.readCalls.Load(),
		FramesOut:  s.counters.framesOut.Load(),
		BytesOut:   s.counters.bytesOut.Load(),
		WriteCalls: s.counters.writeCalls.Load(),
		WriteNanos: s.counters.writeNanos.Load(),
	}
}

// ServeOptions configure optional server behaviour.
type ServeOptions struct {
	// Logger receives structured connection-lifecycle and error events
	// (connection IDs, topics, reasons). Nil disables logging.
	Logger *slog.Logger
	// Tracer, when non-nil, is the per-message flight recorder: the wire
	// layer records frame-ingress, arena-decode, delivery-encode and
	// egress spans for head-sampled messages (by TraceID hash). Use the
	// same recorder in broker.Options.Tracer so one trace spans both
	// layers.
	Tracer *trace.Recorder
	// Forwarder, when non-nil, replicates client publishes to mesh peers
	// (see forward.go): it is consulted at PUBLISH/BATCH ingress and
	// decides whether the message is also published locally. FORWARD
	// frames received from peers never reach it.
	Forwarder Forwarder
}

// Serve starts accepting connections on ln and serving b. It returns
// immediately; use Close to stop.
func Serve(b *broker.Broker, ln net.Listener) *Server {
	return ServeWith(b, ln, ServeOptions{})
}

// ServeWith is Serve with explicit options.
func ServeWith(b *broker.Broker, ln net.Listener, opts ServeOptions) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		broker:    b,
		ln:        ln,
		log:       logger,
		tracer:    opts.Tracer,
		forwarder: opts.Forwarder,
		conns:     make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// DuplicatesSuppressed reports how many redelivered publishes the dedupe
// table acknowledged without publishing again.
func (s *Server) DuplicatesSuppressed() uint64 { return s.duplicates.Load() }

// OpenConns returns the number of currently open client connections.
func (s *Server) OpenConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// AcceptedConns returns the total number of connections accepted.
func (s *Server) AcceptedConns() uint64 { return s.accepted.Load() }

// ForwardsIn reports how many FORWARD frames from mesh peers this server
// has applied to its local broker.
func (s *Server) ForwardsIn() uint64 { return s.forwardsIn.Load() }

// Close stops the listener and all connections and waits for the handler
// goroutines to exit. It does not close the underlying broker.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server already closed")
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// serverConn is the per-connection state.
type serverConn struct {
	server *Server
	conn   net.Conn
	id     uint64
	log    *slog.Logger
	done   chan struct{}

	// w is the connection's coalescing egress queue (egress.go); every
	// outbound frame — control replies and deliveries from all pumps —
	// goes through it.
	w *connWriter
	// arena materializes inbound publishes from payload views; owned by
	// the read loop (arenas are not concurrency-safe).
	arena *MessageArena
	// frameStartNs/frameReadNs bracket the current frame's FrameReader
	// read (entering fr.Next → frame buffered); set per iteration by the
	// read loop when flight recording is on, read by handleFrame to
	// record the ingress span of sampled publishes.
	frameStartNs int64
	frameReadNs  int64

	subMu sync.Mutex
	subs  map[uint64]*connSub
	// nextSubID allocates connection-local subscription IDs; broker IDs
	// are not used on the wire because durable consumer handles have none.
	nextSubID uint64
}

type connSub struct {
	id   uint64
	sub  *broker.Subscriber
	stop chan struct{}
	// pumpDone is closed when the delivery pump has exited, so teardown
	// can read the unacked table without a writer racing it.
	pumpDone chan struct{}

	// Acked-delivery state. The pump records a delivery in unacked
	// (keyed by its sequence number) before writing the frame; MSG_ACK
	// deletes it; whatever remains at teardown is requeued.
	acked   bool
	ackMu   sync.Mutex
	nextSeq uint64
	unacked map[uint64]*jms.Message
}

// takeUnacked removes and returns the unacked deliveries in delivery
// order. Call only after the pump has exited.
func (cs *connSub) takeUnacked() []*jms.Message {
	cs.ackMu.Lock()
	defer cs.ackMu.Unlock()
	if len(cs.unacked) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(cs.unacked))
	for seq := range cs.unacked {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	msgs := make([]*jms.Message, len(seqs))
	for i, seq := range seqs {
		msgs[i] = cs.unacked[seq]
	}
	cs.unacked = nil
	return msgs
}

// finish stops the pump, waits for it, and releases the subscription,
// requeueing unacked deliveries on acked subscriptions.
func (cs *connSub) finish() error {
	close(cs.stop)
	<-cs.pumpDone
	if cs.acked {
		return cs.sub.UnsubscribeRequeue(cs.takeUnacked())
	}
	return cs.sub.Unsubscribe()
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	id := s.nextConnID.Add(1)
	sc := &serverConn{
		server: s,
		conn:   conn,
		id:     id,
		log:    s.log.With("conn", id),
		done:   make(chan struct{}),
		w:      newConnWriter(conn, &s.counters, s.tracer),
		arena:  NewMessageArena(),
		subs:   make(map[uint64]*connSub),
	}
	sc.log.Debug("connection accepted", "remote", conn.RemoteAddr().String())
	sc.readLoop()
	close(sc.done)
	// Close the connection before waiting for the pumps: one of them may
	// be blocked mid-write on the dead peer.
	_ = conn.Close()

	// Tear down this connection's subscriptions. Non-durable mode: a
	// disconnected subscriber is forgotten. Acked durable subscriptions:
	// deliveries written but never acknowledged go back to the backlog,
	// so a reconnecting consumer sees them again instead of losing them.
	sc.subMu.Lock()
	subs := make([]*connSub, 0, len(sc.subs))
	for _, cs := range sc.subs {
		subs = append(subs, cs)
	}
	sc.subs = nil
	sc.subMu.Unlock()
	for _, cs := range subs {
		_ = cs.finish()
	}
	// All producers (pumps, this read loop) are done; stop the writer.
	sc.w.close()
	sc.log.Debug("connection closed", "subscriptions", len(subs))

	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// write queues one frame on the connection's egress writer. The write
// itself happens asynchronously, coalesced with whatever else is queued; a
// write failure closes the connection, which this read loop observes as a
// read error.
func (sc *serverConn) write(f Frame) error {
	bp, err := frameBuffer(f)
	if err != nil {
		return err
	}
	return sc.w.submit(bp)
}

func (sc *serverConn) writeErr(reqID uint64, err error) {
	sc.log.Debug("request failed", "req", reqID, "reason", err.Error())
	_ = sc.write(Frame{Type: FrameError, Payload: EncodeError(reqID, err.Error())})
}

func (sc *serverConn) readLoop() {
	fr := NewFrameReader(sc.conn)
	var lastReads, lastBytes uint64
	c := &sc.server.counters
	tr := sc.server.tracer
	for {
		if tr != nil {
			sc.frameStartNs = time.Now().UnixNano()
		}
		f, err := fr.Next()
		if err != nil {
			return // io.EOF or closed connection
		}
		if tr != nil {
			sc.frameReadNs = time.Now().UnixNano()
		}
		reads, bytes := fr.Stats()
		c.framesIn.Add(1)
		c.readCalls.Add(reads - lastReads)
		c.bytesIn.Add(bytes - lastBytes)
		lastReads, lastBytes = reads, bytes
		// f.Payload views the reader's window and is only valid for this
		// iteration; handleFrame materializes whatever outlives the frame.
		if err := sc.handleFrame(f); err != nil {
			return
		}
	}
}

func (sc *serverConn) handleFrame(f Frame) error {
	d := decoder{buf: f.Payload}
	reqID, err := d.u64()
	if err != nil && f.Type != FramePing {
		return err
	}
	rest := f.Payload[d.off:]

	switch f.Type {
	case FramePing:
		return sc.write(Frame{Type: FramePong})

	case FrameConfigureTopic:
		name, err := DecodeString(rest)
		if err != nil {
			return err
		}
		if err := sc.server.broker.ConfigureTopic(name); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameConfigureTopicOK, Payload: EncodeU64(reqID)})

	case FramePublish:
		return sc.handlePublishBody(reqID, rest, true)

	case FrameBatch:
		return sc.handleBatchBody(reqID, rest, true)

	case FrameForward:
		// A peer replicated a publish here. Apply it locally exactly like
		// the client frame it wraps, but never consult the forwarder —
		// forwards are terminal, which suppresses loops structurally.
		h, inner, err := DecodeForward(rest)
		if err != nil {
			return err
		}
		sc.server.forwardsIn.Add(1)
		if h.Batch {
			return sc.handleBatchBody(reqID, inner, false)
		}
		return sc.handlePublishBody(reqID, inner, false)

	case FrameSubscribe:
		topicName, spec, err := DecodeSubscribe(rest)
		if err != nil {
			return err
		}
		flt, err := buildFilter(spec)
		if err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		var sub *broker.Subscriber
		if spec.DurableName != "" {
			sub, err = sc.server.broker.SubscribeDurable(topicName, spec.DurableName, flt, broker.DurableOptions{})
		} else {
			sub, err = sc.server.broker.Subscribe(topicName, flt)
		}
		if err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		sc.subMu.Lock()
		if sc.subs == nil { // connection tearing down
			sc.subMu.Unlock()
			_ = sub.Unsubscribe()
			return errors.New("wire: connection closing")
		}
		sc.nextSubID++
		cs := &connSub{
			id:       sc.nextSubID,
			sub:      sub,
			stop:     make(chan struct{}),
			pumpDone: make(chan struct{}),
			acked:    spec.Acked,
		}
		if cs.acked {
			cs.unacked = make(map[uint64]*jms.Message)
		}
		sc.subs[cs.id] = cs
		sc.subMu.Unlock()
		sc.log.Debug("subscribed", "sub", cs.id, "topic", topicName,
			"durable", spec.DurableName, "acked", spec.Acked)

		go sc.deliveryPump(cs)

		var e encoder
		e.u64(reqID)
		e.u64(cs.id)
		return sc.write(Frame{Type: FrameSubscribeOK, Payload: e.buf})

	case FrameUnsubscribe:
		subID, err := DecodeU64(rest)
		if err != nil {
			return err
		}
		sc.subMu.Lock()
		cs, ok := sc.subs[subID]
		if ok {
			delete(sc.subs, subID)
		}
		sc.subMu.Unlock()
		if !ok {
			sc.writeErr(reqID, fmt.Errorf("wire: unknown subscription %d", subID))
			return nil
		}
		if err := cs.finish(); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		sc.log.Debug("unsubscribed", "sub", subID)
		return sc.write(Frame{Type: FrameUnsubscribeOK, Payload: EncodeU64(reqID)})

	case FrameMsgAck:
		// No request ID, no reply: the payload is (subID, seq).
		subID, seq, err := DecodeAck(f.Payload)
		if err != nil {
			return err
		}
		sc.subMu.Lock()
		cs := sc.subs[subID]
		sc.subMu.Unlock()
		if cs != nil && cs.acked {
			cs.ackMu.Lock()
			delete(cs.unacked, seq)
			cs.ackMu.Unlock()
		}
		return nil

	case FrameDeleteDurable:
		d := decoder{buf: rest}
		topicName, err := d.str()
		if err != nil {
			return err
		}
		name, err := d.str()
		if err != nil {
			return err
		}
		if err := sc.server.broker.UnsubscribeDurable(topicName, name); err != nil {
			sc.writeErr(reqID, err)
			return nil
		}
		return sc.write(Frame{Type: FrameDeleteDurableOK, Payload: EncodeU64(reqID)})

	default:
		sc.writeErr(reqID, fmt.Errorf("wire: unexpected frame %s", f.Type))
		return nil
	}
}

// handlePublishBody applies one encoded message body (a PUBLISH payload
// after its request ID, or a FORWARD frame's inner bytes). fromClient
// selects the mesh ingress: client publishes are offered to the
// configured Forwarder, which may replicate them to peers and veto the
// local publish; forwarded publishes are always applied locally only.
func (sc *serverConn) handlePublishBody(reqID uint64, body []byte, fromClient bool) error {
	// Materialize through the connection arena: the payload is a view
	// into the read window, so the message must own its bytes before
	// the next frame is read.
	m, err := sc.arena.DecodeMessageArena(body)
	if err != nil {
		return err
	}
	if tr := sc.server.tracer; tr != nil && tr.Sampled(m.Header.TraceID) {
		// ingress is the FrameReader read (it includes the socket wait
		// for the publisher's bytes — arrival-side, reported but not
		// part of the sojourn decomposition); decode is the arena
		// materialization just performed.
		decEnd := time.Now().UnixNano()
		tr.RecordSpanNs(m.Header.TraceID, trace.StageIngress, sc.frameStartNs, sc.frameReadNs-sc.frameStartNs)
		tr.RecordSpanNs(m.Header.TraceID, trace.StageDecode, sc.frameReadNs, decEnd-sc.frameReadNs)
	}
	// A publish stamped with a dedupe identity claims its (pub, seq)
	// before it reaches the broker; a redelivery (the publisher resent
	// because the ack was lost in a reconnect) is acknowledged without
	// publishing again — at-least-once retry, effectively-once effect.
	// Duplicates are suppressed before the forwarder sees them, so a
	// retry is not replicated twice either (peer dedupe tables would
	// catch it regardless — the identity is publisher-stamped).
	pub, seq, stamped := pubIdentity(m)
	if stamped && !sc.server.dedupe.record(pub, seq) {
		sc.server.duplicates.Add(1)
		return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})
	}
	local := true
	if fw := sc.server.forwarder; fw != nil && fromClient {
		if local, err = fw.ForwardPublish(m, body); err != nil {
			if stamped {
				sc.server.dedupe.unrecord(pub, seq)
			}
			sc.writeErr(reqID, err)
			return nil
		}
	}
	if local {
		// Blocking Publish implements push-back: the ack is delayed while
		// the topic window is full, which throttles the remote publisher.
		if err := sc.server.broker.Publish(context.Background(), m); err != nil {
			// The sequence was claimed but never published; release it so
			// a retry of this message is not swallowed as a duplicate.
			if stamped {
				sc.server.dedupe.unrecord(pub, seq)
			}
			sc.writeErr(reqID, err)
			return nil
		}
	}
	return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})
}

// handleBatchBody applies one encoded BATCH body (after its request ID, or
// a FORWARD frame's inner bytes). See handlePublishBody for the fromClient
// contract.
func (sc *serverConn) handleBatchBody(reqID uint64, body []byte, fromClient bool) error {
	// Decode into a pooled carrier through the arena: the carrier's
	// message slice, the arena's slabs and the match-stage scratch
	// travel the pipeline as one unit and the carrier recycles after
	// the batch's last transmit.
	var err error
	c := broker.GetBatchCarrier()
	c.Msgs, err = sc.arena.AppendBatchMessages(c.Msgs[:0], body)
	if err != nil {
		c.Release()
		return err
	}
	if tr := sc.server.tracer; tr != nil {
		// Sampled batch members share the frame's ingress/decode cost:
		// each records the full frame read and batch materialization
		// window (one frame carried them all).
		decEnd := time.Now().UnixNano()
		for _, m := range c.Msgs {
			if tr.Sampled(m.Header.TraceID) {
				tr.RecordSpanNs(m.Header.TraceID, trace.StageIngress, sc.frameStartNs, sc.frameReadNs-sc.frameStartNs)
				tr.RecordSpanNs(m.Header.TraceID, trace.StageDecode, sc.frameReadNs, decEnd-sc.frameReadNs)
			}
		}
	}
	// The forwarder sees the batch before dedupe compaction, so the raw
	// bytes and the decoded messages agree; peers suppress any duplicate
	// members with their own dedupe tables.
	local := true
	if fw := sc.server.forwarder; fw != nil && fromClient {
		if local, err = fw.ForwardBatch(c.Msgs, body); err != nil {
			c.Release()
			sc.writeErr(reqID, err)
			return nil
		}
	}
	// Per-message dedupe: a redelivered batch (its shared ack was lost
	// in a reconnect) may overlap already-claimed sequences. Duplicates
	// are compacted out in place, the fresh remainder is published as
	// one unit, and the single PUB_ACK covers the whole batch either
	// way.
	type claim struct {
		pub string
		seq int64
	}
	var claimScratch [16]claim
	claims := claimScratch[:0]
	fresh := c.Msgs[:0]
	for _, m := range c.Msgs {
		pub, seq, stamped := pubIdentity(m)
		if stamped {
			if !sc.server.dedupe.record(pub, seq) {
				sc.server.duplicates.Add(1)
				continue
			}
			claims = append(claims, claim{pub: pub, seq: seq})
		}
		fresh = append(fresh, m)
	}
	c.Msgs = fresh
	if !local {
		// The forwarder owns delivery (hash topology, non-owner entry):
		// nothing is published here, and the claims stand — the ack below
		// covers the batch.
		c.Release()
		return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})
	}
	if err := sc.server.broker.PublishBatchCarrier(context.Background(), c); err != nil {
		// Claimed but never published; release every claim so a retry
		// of the batch is not swallowed as duplicates, and reclaim the
		// carrier (ownership stayed with us on error).
		for _, cl := range claims {
			sc.server.dedupe.unrecord(cl.pub, cl.seq)
		}
		c.Release()
		sc.writeErr(reqID, err)
		return nil
	}
	return sc.write(Frame{Type: FramePubAck, Payload: EncodeU64(reqID)})
}

// deliveryCoalesce bounds how many queued deliveries one pump iteration
// gathers into a single vectored write. 16 matches the default batch
// size the publish side is tuned for; past that the syscall amortization
// has flattened out.
const deliveryCoalesce = 16

// deliveryPump forwards broker deliveries for one subscription to the
// network connection. After the first blocking receive it greedily drains
// whatever else is already queued (up to deliveryCoalesce) and ships the
// burst as one vectored write, so a batched publish that fans out to this
// subscriber costs one syscall instead of one per message. On an acked
// subscription every delivery is recorded in the unacked table before the
// frame is written, so a connection cut between write and ack leaves the
// message recoverable.
func (sc *serverConn) deliveryPump(cs *connSub) {
	defer close(cs.pumpDone)
	batch := make([]*jms.Message, 0, deliveryCoalesce)
	for {
		select {
		case m, ok := <-cs.sub.Chan():
			if !ok {
				return
			}
			batch = append(batch[:0], m)
		drain:
			for len(batch) < deliveryCoalesce {
				select {
				case m2, ok := <-cs.sub.Chan():
					if !ok {
						// Channel closed mid-drain: flush what we have,
						// then exit.
						_ = sc.writeDeliveries(cs, batch)
						return
					}
					batch = append(batch, m2)
				default:
					break drain
				}
			}
			if err := sc.writeDeliveries(cs, batch); err != nil {
				return
			}
		case <-cs.sub.Gone():
			// The broker ended the subscription server-side (today: the
			// disconnect slow-consumer policy). Flush what is still queued,
			// notify the client, and drop the entry so a later client
			// UNSUBSCRIBE reports unknown-subscription instead of finishing
			// a pump that already exited. finish() must NOT run here — the
			// subscription is already gone and cs.stop stays open for it.
			for {
				select {
				case m, ok := <-cs.sub.Chan():
					if !ok {
						break
					}
					if err := sc.writeDeliveries(cs, []*jms.Message{m}); err != nil {
						return
					}
					continue
				default:
				}
				break
			}
			reason := "unsubscribed"
			if cs.sub.SlowDisconnected() {
				reason = "slow-consumer"
			}
			_ = sc.write(Frame{Type: FrameSubClosed, Payload: EncodeSubClosed(cs.id, reason)})
			sc.subMu.Lock()
			if sc.subs != nil {
				delete(sc.subs, cs.id)
			}
			sc.subMu.Unlock()
			sc.log.Debug("subscription closed by broker", "sub", cs.id, "reason", reason)
			return
		case <-cs.stop:
			return
		case <-sc.done:
			return
		}
	}
}

// writeDeliveries records and queues a burst of deliveries. Sequence
// numbers for an acked subscription are allocated under one lock for the
// whole burst; the frames are enqueued on the connection writer, which
// gathers them — together with any other pump's frames — into vectored
// writes.
func (sc *serverConn) writeDeliveries(cs *connSub, msgs []*jms.Message) error {
	if len(msgs) == 0 {
		return nil
	}
	var seqBase uint64
	if cs.acked {
		cs.ackMu.Lock()
		seqBase = cs.nextSeq
		for i, m := range msgs {
			cs.unacked[seqBase+uint64(i)+1] = m
		}
		cs.nextSeq += uint64(len(msgs))
		cs.ackMu.Unlock()
	}
	for i, m := range msgs {
		var seq uint64
		if cs.acked {
			seq = seqBase + uint64(i) + 1
		}
		if err := sc.writeDelivery(cs.id, seq, m); err != nil {
			return err
		}
	}
	return nil
}

// writeDelivery encodes one MESSAGE frame into a pooled buffer — prologue
// and payload together, so the delivery fast path allocates nothing in
// steady state — and hands it to the connection writer.
func (sc *serverConn) writeDelivery(subID, seq uint64, m *jms.Message) error {
	tr := sc.server.tracer
	traced := tr.Sampled(m.Header.TraceID)
	var t0 int64
	if traced {
		t0 = time.Now().UnixNano()
	}
	bp := GetBuffer()
	buf := append((*bp)[:0], 0, 0, 0, 0, byte(FrameMessage))
	buf = AppendDelivery(buf, subID, seq, m)
	*bp = buf
	if len(buf)-5 > MaxFrameSize {
		PutBuffer(bp)
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(buf)-5)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-5))
	if traced {
		tr.RecordSpanNs(m.Header.TraceID, trace.StageEncode, t0, time.Now().UnixNano()-t0)
		return sc.w.submitTraced(bp, m.Header.TraceID)
	}
	return sc.w.submit(bp)
}

// buildFilter constructs the broker filter from a wire spec.
func buildFilter(spec FilterSpec) (filter.Filter, error) {
	switch spec.Mode {
	case FilterNone:
		return filter.All{}, nil
	case FilterCorrelationID:
		return filter.NewCorrelationID(spec.Expr)
	case FilterSelector:
		return filter.NewProperty(spec.Expr)
	default:
		return nil, fmt.Errorf("wire: unknown filter mode %d", spec.Mode)
	}
}
