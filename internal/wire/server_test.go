package wire

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
)

// rawConn speaks the wire protocol directly, without the client package,
// so the server's frame handling is exercised (and covered) here.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	next uint64
}

func startRawServer(t *testing.T) (*rawConn, *broker.Broker, *Server) {
	t.Helper()
	b := broker.New(broker.Options{})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(b, ln)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return &rawConn{t: t, conn: conn}, b, srv
}

// request sends a frame with a fresh request ID and returns (reqID).
func (rc *rawConn) request(typ FrameType, inner []byte) uint64 {
	rc.t.Helper()
	rc.next++
	payload := make([]byte, 8, 8+len(inner))
	binary.BigEndian.PutUint64(payload, rc.next)
	payload = append(payload, inner...)
	if err := WriteFrame(rc.conn, Frame{Type: typ, Payload: payload}); err != nil {
		rc.t.Fatal(err)
	}
	return rc.next
}

func (rc *rawConn) read() Frame {
	rc.t.Helper()
	f, err := ReadFrame(rc.conn)
	if err != nil {
		rc.t.Fatal(err)
	}
	return f
}

func (rc *rawConn) expectError(reqID uint64) string {
	rc.t.Helper()
	f := rc.read()
	if f.Type != FrameError {
		rc.t.Fatalf("frame = %v, want ERROR", f.Type)
	}
	gotID, msg, err := DecodeError(f.Payload)
	if err != nil {
		rc.t.Fatal(err)
	}
	if gotID != reqID {
		rc.t.Fatalf("error reqID = %d, want %d", gotID, reqID)
	}
	return msg
}

func TestServerPublishSubscribeRaw(t *testing.T) {
	rc, _, _ := startRawServer(t)

	// Subscribe with a correlation-ID filter.
	reqID := rc.request(FrameSubscribe, EncodeSubscribe("t", FilterSpec{
		Mode: FilterCorrelationID, Expr: "#0",
	}))
	ok := rc.read()
	if ok.Type != FrameSubscribeOK {
		t.Fatalf("frame = %v", ok.Type)
	}
	if got := binary.BigEndian.Uint64(ok.Payload); got != reqID {
		t.Fatalf("reqID echo = %d", got)
	}
	subID := binary.BigEndian.Uint64(ok.Payload[8:])

	// Publish a matching message on the same connection.
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	pubReq := rc.request(FramePublish, EncodeMessage(m))

	// Expect PUB_ACK and MESSAGE in some order.
	sawAck, sawMsg := false, false
	for i := 0; i < 2; i++ {
		f := rc.read()
		switch f.Type {
		case FramePubAck:
			if binary.BigEndian.Uint64(f.Payload) != pubReq {
				t.Fatal("ack for wrong request")
			}
			sawAck = true
		case FrameMessage:
			gotSub, _, gotMsg, err := DecodeDelivery(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if gotSub != subID {
				t.Fatalf("delivery subID = %d, want %d", gotSub, subID)
			}
			if gotMsg.Header.CorrelationID != "#0" {
				t.Fatalf("delivered corrID = %q", gotMsg.Header.CorrelationID)
			}
			sawMsg = true
		default:
			t.Fatalf("unexpected frame %v", f.Type)
		}
	}
	if !sawAck || !sawMsg {
		t.Fatal("missing ack or delivery")
	}

	// Unsubscribe and verify removal.
	unReq := rc.request(FrameUnsubscribe, EncodeU64(subID))
	f := rc.read()
	if f.Type != FrameUnsubscribeOK || binary.BigEndian.Uint64(f.Payload) != unReq {
		t.Fatalf("frame = %v", f.Type)
	}
	// Unsubscribing again reports an error.
	again := rc.request(FrameUnsubscribe, EncodeU64(subID))
	rc.expectError(again)
}

func TestServerErrorPathsRaw(t *testing.T) {
	rc, _, _ := startRawServer(t)

	// Unknown frame type.
	reqID := rc.request(FrameType(99), nil)
	rc.expectError(reqID)

	// Publish to a missing topic.
	reqID = rc.request(FramePublish, EncodeMessage(jms.NewMessage("missing")))
	rc.expectError(reqID)

	// Subscribe with a bad filter mode.
	reqID = rc.request(FrameSubscribe, EncodeSubscribe("t", FilterSpec{Mode: FilterMode(9)}))
	rc.expectError(reqID)

	// Subscribe with a bad selector.
	reqID = rc.request(FrameSubscribe, EncodeSubscribe("t", FilterSpec{Mode: FilterSelector, Expr: "a ="}))
	rc.expectError(reqID)

	// Duplicate topic configuration.
	reqID = rc.request(FrameConfigureTopic, EncodeString("t"))
	rc.expectError(reqID)

	// New topic succeeds.
	reqID = rc.request(FrameConfigureTopic, EncodeString("t2"))
	f := rc.read()
	if f.Type != FrameConfigureTopicOK || binary.BigEndian.Uint64(f.Payload) != reqID {
		t.Fatalf("frame = %v", f.Type)
	}

	// Delete of an unknown durable subscription.
	payload := EncodeString("t")
	payload = append(payload, EncodeString("ghost")...)
	reqID = rc.request(FrameDeleteDurable, payload)
	rc.expectError(reqID)
}

func TestServerPingRaw(t *testing.T) {
	rc, _, _ := startRawServer(t)
	if err := WriteFrame(rc.conn, Frame{Type: FramePing}); err != nil {
		t.Fatal(err)
	}
	if f := rc.read(); f.Type != FramePong {
		t.Fatalf("frame = %v, want PONG", f.Type)
	}
}

func TestServerDurableRaw(t *testing.T) {
	rc, b, _ := startRawServer(t)
	reqID := rc.request(FrameSubscribe, EncodeSubscribe("t", FilterSpec{
		Mode: FilterNone, DurableName: "d",
	}))
	ok := rc.read()
	if ok.Type != FrameSubscribeOK {
		t.Fatalf("frame = %v", ok.Type)
	}
	_ = reqID
	if attached, err := b.DurableAttached("t", "d"); err != nil || !attached {
		t.Fatalf("durable not attached: %v", err)
	}
	// Deleting while attached fails.
	payload := EncodeString("t")
	payload = append(payload, EncodeString("d")...)
	delReq := rc.request(FrameDeleteDurable, payload)
	rc.expectError(delReq)
}

func TestServerMalformedFrameDropsConnection(t *testing.T) {
	rc, _, _ := startRawServer(t)
	// A SUBSCRIBE frame whose payload is too short to hold a request ID
	// terminates the connection.
	if err := WriteFrame(rc.conn, Frame{Type: FrameSubscribe, Payload: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(rc.conn); err == nil {
		t.Fatal("connection survived malformed frame")
	}
}

func TestServerDisconnectCleansUpRaw(t *testing.T) {
	rc, b, _ := startRawServer(t)
	rc.request(FrameSubscribe, EncodeSubscribe("t", FilterSpec{Mode: FilterNone}))
	if f := rc.read(); f.Type != FrameSubscribeOK {
		t.Fatalf("frame = %v", f.Type)
	}
	if b.NumFilters() != 1 {
		t.Fatalf("NumFilters = %d", b.NumFilters())
	}
	_ = rc.conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if b.NumFilters() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("NumFilters = %d after disconnect", b.NumFilters())
}

func TestServerDoubleClose(t *testing.T) {
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(b, ln)
	if srv.Addr() == nil {
		t.Error("nil Addr")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err == nil {
		t.Error("double Close accepted")
	}
	_ = b.Close()
}
