package wire

import (
	"sync"

	"repro/internal/jms"
)

// Publish deduplication: a reconnecting publisher cannot know whether a
// publish whose ack was lost reached the broker, so it must resend —
// at-least-once. To lift that to effectively-once, retry-capable
// publishers stamp every message with a publisher identity and a
// per-publisher sequence number in hidden properties; the server records
// (publisher, seq) pairs and acknowledges redeliveries without
// publishing them again.

// Hidden message properties carrying the publish-dedupe identity. The
// "$jmsperf" prefix marks infrastructure properties (the cluster layer
// uses the same convention for its hop count); selectors on application
// properties are unaffected.
const (
	// PubIDProperty is the string property naming the publisher.
	PubIDProperty = "$jmsperfPub"
	// PubSeqProperty is the int64 property holding the publisher-local
	// sequence number, starting at 1.
	PubSeqProperty = "$jmsperfSeq"
)

// pubDedupWindow bounds the per-publisher set of remembered sequence
// numbers. Sequences older than maxSeq-window are classified as
// duplicates without consulting the set: a publisher would need that
// many publishes in flight at once for the window to misclassify, far
// beyond any client's push-back window.
const pubDedupWindow = 8192

// pubIdentity extracts the dedupe identity of a message, if stamped.
func pubIdentity(m *jms.Message) (pub string, seq int64, ok bool) {
	p, ok := m.Property(PubIDProperty)
	if !ok || p.Type != jms.TypeString {
		return "", 0, false
	}
	q, ok := m.Property(PubSeqProperty)
	if !ok || (q.Type != jms.TypeInt64 && q.Type != jms.TypeInt32) {
		return "", 0, false
	}
	return p.S, q.I, true
}

// pubDedup is the server-wide duplicate-publish table. It is shared by
// all connections of a Server because a retried publish typically
// arrives on a different connection than the original.
type pubDedup struct {
	mu   sync.Mutex
	pubs map[string]*pubWindow
}

type pubWindow struct {
	maxSeq int64
	seen   map[int64]struct{}
}

// record registers (pub, seq) and reports whether it is new. Duplicates
// — already-seen sequences, or sequences that fell out of the window —
// return false; the caller acks them without publishing.
func (pd *pubDedup) record(pub string, seq int64) bool {
	pd.mu.Lock()
	defer pd.mu.Unlock()
	if pd.pubs == nil {
		pd.pubs = make(map[string]*pubWindow)
	}
	w := pd.pubs[pub]
	if w == nil {
		w = &pubWindow{seen: make(map[int64]struct{})}
		pd.pubs[pub] = w
	}
	if seq <= w.maxSeq-pubDedupWindow {
		return false
	}
	if _, dup := w.seen[seq]; dup {
		return false
	}
	w.seen[seq] = struct{}{}
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	if len(w.seen) > 2*pubDedupWindow {
		for s := range w.seen {
			if s <= w.maxSeq-pubDedupWindow {
				delete(w.seen, s)
			}
		}
	}
	return true
}

// unrecord forgets a pair recorded for a publish that then failed in the
// broker, so a retry of the same sequence — e.g. after the client fixes
// the error by creating the missing topic — is published instead of
// being acknowledged as a duplicate. maxSeq is left as raised: client
// sequences are monotonic, so the failed one cannot be far enough ahead
// to age live sequences out of the window.
func (pd *pubDedup) unrecord(pub string, seq int64) {
	pd.mu.Lock()
	defer pd.mu.Unlock()
	if w := pd.pubs[pub]; w != nil {
		delete(w.seen, seq)
	}
}
