package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// This file is the egress half of the zero-allocation wire path: a
// per-connection write queue whose single writer goroutine gathers queued
// frames — deliveries from every pump on the connection plus control
// replies — into one vectored net.Buffers write. It replaces the
// per-frame write-mutex pattern: instead of each delivery pump taking a
// lock and issuing its own write, producers enqueue complete frames and
// the writer coalesces across producers, so concurrent subscriptions on
// one connection share syscalls instead of contending for them.

// writerQueueDepth bounds the per-connection egress queue. A full queue
// blocks the producer (delivery pumps, control replies), which is exactly
// the push-back chain: slow consumer connection → blocked pump → full
// subscriber buffer → blocked transmit stage.
const writerQueueDepth = 256

// writeCoalesce bounds how many queued frames one writev gathers. Past the
// low tens the syscall amortization has flattened out and larger gathers
// only add latency for the frames at the head.
const writeCoalesce = 32

// errWriterClosed is returned by submit after the writer has shut down.
var errWriterClosed = errors.New("wire: connection writer closed")

// wireCounters are a Server's aggregate wire-path counters, shared by all
// connections and exported via Server.WireStats for telemetry and the
// fine-grained Eq. 1 constant fit (fit.FromWire).
type wireCounters struct {
	framesIn  atomic.Uint64
	bytesIn   atomic.Uint64
	readCalls atomic.Uint64

	framesOut  atomic.Uint64
	bytesOut   atomic.Uint64
	writeCalls atomic.Uint64
	writeNanos atomic.Uint64
}

// connWriter is one connection's coalescing egress queue.
//
// Ownership contract: submit passes ownership of a pooled buffer holding
// one complete frame (5-byte prologue + payload) to the writer, which
// returns it to the pool after the write — the producer must not touch the
// buffer afterwards. On the first write error the writer closes the
// connection (which surfaces the failure to the read loop) and drains
// subsequent submissions without writing, so producers never block on a
// dead peer.
type connWriter struct {
	conn   net.Conn
	stats  *wireCounters   // nil disables counting
	tracer *trace.Recorder // nil disables egress span recording
	ch     chan egressFrame
	stop   chan struct{}
	done   chan struct{}
}

// egressFrame is one queued frame plus its optional flight-recorder
// identity: a head-sampled delivery carries its TraceID and enqueue
// instant through the queue so the writer can attribute the writer-queue
// wait and this frame's share of the writev syscall — the components of
// the socket-vs-dispatch t_tx gap (ROADMAP item 3). Plain frames carry a
// zero ID and cost nothing extra.
type egressFrame struct {
	bp      *[]byte
	traceID uint64
	enqNs   int64
}

func newConnWriter(conn net.Conn, stats *wireCounters, tracer *trace.Recorder) *connWriter {
	w := &connWriter{
		conn:   conn,
		stats:  stats,
		tracer: tracer,
		ch:     make(chan egressFrame, writerQueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go w.run()
	return w
}

// submit queues one complete frame built in a pooled buffer, transferring
// its ownership to the writer. It blocks while the queue is full
// (push-back) and fails only after the writer has shut down.
func (w *connWriter) submit(bp *[]byte) error {
	return w.submitFrame(egressFrame{bp: bp})
}

// submitTraced is submit for a delivery frame carrying a TraceID: when
// the message is head-sampled the frame is stamped with its enqueue
// instant so the writer records the egress_queue and egress_write spans.
func (w *connWriter) submitTraced(bp *[]byte, traceID uint64) error {
	ef := egressFrame{bp: bp}
	if w.tracer.Sampled(traceID) {
		ef.traceID = traceID
		ef.enqNs = time.Now().UnixNano()
	}
	return w.submitFrame(ef)
}

func (w *connWriter) submitFrame(ef egressFrame) error {
	select {
	case w.ch <- ef:
		return nil
	case <-w.done:
		PutBuffer(ef.bp)
		return errWriterClosed
	}
}

// close stops the writer and waits for it; queued frames are discarded
// (the connection is gone by the time teardown calls this).
func (w *connWriter) close() {
	close(w.stop)
	<-w.done
}

func (w *connWriter) run() {
	defer close(w.done)
	bufs := make(net.Buffers, 0, writeCoalesce)
	frames := make([]egressFrame, 0, writeCoalesce)
	dead := false
	for {
		var ef egressFrame
		select {
		case ef = <-w.ch:
		case <-w.stop:
			for {
				select {
				case ef := <-w.ch:
					PutBuffer(ef.bp)
				default:
					return
				}
			}
		}
		// Greedy gather: everything already queued, up to the coalesce
		// bound, goes out in one vectored write.
		bufs, frames = append(bufs[:0], *ef.bp), append(frames[:0], ef)
		anyTraced := ef.traceID != 0
		for len(bufs) < writeCoalesce {
			select {
			case ef2 := <-w.ch:
				bufs, frames = append(bufs, *ef2.bp), append(frames, ef2)
				anyTraced = anyTraced || ef2.traceID != 0
			default:
				goto gathered
			}
		}
	gathered:
		if !dead {
			var total int
			for _, b := range bufs {
				total += len(b)
			}
			start := time.Now()
			var err error
			if len(bufs) == 1 {
				_, err = w.conn.Write(bufs[0])
			} else {
				// WriteTo consumes the slice it is given; hand it a copy of
				// the header so bufs keeps its backing array.
				nb := bufs
				_, err = nb.WriteTo(w.conn)
			}
			elapsed := time.Since(start)
			if w.stats != nil {
				w.stats.writeCalls.Add(1)
				w.stats.writeNanos.Add(uint64(elapsed))
				w.stats.framesOut.Add(uint64(len(bufs)))
				w.stats.bytesOut.Add(uint64(total))
			}
			if anyTraced {
				// egress_queue is the frame's wait in this queue; its
				// egress_write span is an equal share of the syscall, the
				// same per-frame quantity WriteNanos/FramesOut averages.
				startNs := start.UnixNano()
				share := int64(elapsed) / int64(len(bufs))
				for _, f := range frames {
					if f.traceID != 0 {
						w.tracer.RecordSpanNs(f.traceID, trace.StageEgressQueue, f.enqNs, startNs-f.enqNs)
						w.tracer.RecordSpanNs(f.traceID, trace.StageEgressWrite, startNs, share)
					}
				}
			}
			if err != nil {
				// Surface the failure: closing the connection wakes the read
				// loop, which tears the connection down. From here on the
				// writer only drains, so producers never wedge.
				dead = true
				_ = w.conn.Close()
			}
		}
		for _, f := range frames {
			PutBuffer(f.bp)
		}
	}
}

// frameBuffer builds one complete frame (prologue + payload copy) in a
// pooled buffer, ready for connWriter.submit.
func frameBuffer(f Frame) (*[]byte, error) {
	if len(f.Payload) > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	bp := GetBuffer()
	buf := append((*bp)[:0], 0, 0, 0, 0, byte(f.Type))
	buf = append(buf, f.Payload...)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-5))
	*bp = buf
	return bp, nil
}
