package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/jms"
)

// bufPool recycles encode buffers on the per-frame hot paths (server-side
// delivery, client-side publish), so the steady state of the TCP path
// allocates no fresh buffer per frame.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// maxPooledBuffer bounds what PutBuffer keeps: returning the occasional
// huge frame's buffer to the pool would pin its memory.
const maxPooledBuffer = 64 << 10

// GetBuffer returns a pooled, zero-length encode buffer. Return it with
// PutBuffer once the encoded bytes have been written out.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer returns a buffer obtained from GetBuffer to the pool.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuffer {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// encoder appends big-endian primitives to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// decoder consumes big-endian primitives from a payload.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remain() int { return len(d.buf) - d.off }

func (d *decoder) u8() (uint8, error) {
	if d.remain() < 1 {
		return 0, ErrTruncated
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remain() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remain() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if d.remain() < int(n) {
		return "", ErrTruncated
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) bytesField() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if d.remain() < int(n) {
		return nil, ErrTruncated
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += int(n)
	return b, nil
}

// messageSizeHint over-approximates the encoded size of m (the approximate
// payload size plus the fixed-width field and length-prefix overhead), so
// encode buffers can be pre-sized to append without growing.
func messageSizeHint(m *jms.Message) int {
	return m.Size() + 24 + 12*m.NumProperties()
}

// EncodeMessage serializes a message into a pre-sized frame payload. Hot
// paths that already hold a (pooled) buffer use AppendMessage instead.
func EncodeMessage(m *jms.Message) []byte {
	return AppendMessage(make([]byte, 0, messageSizeHint(m)), m)
}

// AppendMessage appends the wire encoding of m to buf and returns the
// extended slice.
//
// Layout: messageID u64, topic str, corrID str, mode u8, priority u8,
// timestamp i64 (unix nanos), expiration i64 (0 = never), traceID u64
// (0 = untraced), property count u32, properties (name str, type u8,
// value), body bytes.
func AppendMessage(buf []byte, m *jms.Message) []byte {
	e := encoder{buf: buf}
	e.u64(m.Header.MessageID)
	e.str(m.Header.Topic)
	e.str(m.Header.CorrelationID)
	e.u8(uint8(m.Header.DeliveryMode))
	e.u8(uint8(m.Header.Priority))
	if m.Header.Timestamp.IsZero() {
		e.i64(0)
	} else {
		e.i64(m.Header.Timestamp.UnixNano())
	}
	if m.Header.Expiration.IsZero() {
		e.i64(0)
	} else {
		e.i64(m.Header.Expiration.UnixNano())
	}
	e.u64(m.Header.TraceID)
	// Stack scratch keeps the sorted-name pass allocation-free for the
	// common property counts; only messages with >16 properties spill.
	var nameScratch [16]string
	names := m.AppendPropertyNames(nameScratch[:0])
	e.u32(uint32(len(names)))
	for _, name := range names {
		p, _ := m.Property(name)
		e.str(name)
		e.u8(uint8(p.Type))
		switch p.Type {
		case jms.TypeBool:
			if p.B {
				e.u8(1)
			} else {
				e.u8(0)
			}
		case jms.TypeInt32, jms.TypeInt64:
			e.i64(p.I)
		case jms.TypeFloat64:
			e.f64(p.F)
		case jms.TypeString:
			e.str(p.S)
		}
	}
	e.bytes(m.Body)
	return e.buf
}

// DecodeMessage parses a frame payload produced by EncodeMessage.
func DecodeMessage(payload []byte) (*jms.Message, error) {
	d := decoder{buf: payload}
	var m jms.Message
	var err error
	if m.Header.MessageID, err = d.u64(); err != nil {
		return nil, err
	}
	if m.Header.Topic, err = d.str(); err != nil {
		return nil, err
	}
	corrID, err := d.str()
	if err != nil {
		return nil, err
	}
	if err := m.SetCorrelationID(corrID); err != nil {
		return nil, err
	}
	mode, err := d.u8()
	if err != nil {
		return nil, err
	}
	m.Header.DeliveryMode = jms.DeliveryMode(mode)
	prio, err := d.u8()
	if err != nil {
		return nil, err
	}
	m.Header.Priority = int(prio)
	ts, err := d.i64()
	if err != nil {
		return nil, err
	}
	if ts != 0 {
		m.Header.Timestamp = time.Unix(0, ts)
	}
	exp, err := d.i64()
	if err != nil {
		return nil, err
	}
	if exp != 0 {
		m.Header.Expiration = time.Unix(0, exp)
	}
	if m.Header.TraceID, err = d.u64(); err != nil {
		return nil, err
	}

	nProps, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nProps; i++ {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		typ, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch jms.PropertyType(typ) {
		case jms.TypeBool:
			v, err := d.u8()
			if err != nil {
				return nil, err
			}
			if err := m.SetBoolProperty(name, v != 0); err != nil {
				return nil, err
			}
		case jms.TypeInt32:
			v, err := d.i64()
			if err != nil {
				return nil, err
			}
			if err := m.SetInt32Property(name, int32(v)); err != nil {
				return nil, err
			}
		case jms.TypeInt64:
			v, err := d.i64()
			if err != nil {
				return nil, err
			}
			if err := m.SetInt64Property(name, v); err != nil {
				return nil, err
			}
		case jms.TypeFloat64:
			v, err := d.f64()
			if err != nil {
				return nil, err
			}
			if err := m.SetFloat64Property(name, v); err != nil {
				return nil, err
			}
		case jms.TypeString:
			v, err := d.str()
			if err != nil {
				return nil, err
			}
			if err := m.SetStringProperty(name, v); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wire: unknown property type %d", typ)
		}
	}
	if m.Body, err = d.bytesField(); err != nil {
		return nil, err
	}
	if d.remain() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in message payload", d.remain())
	}
	return &m, nil
}

// FilterSpec describes a filter in SUBSCRIBE frames. Mode selects the
// filter family; Expr is the correlation-ID expression or selector source.
// A non-empty DurableName requests a durable subscription under that name:
// messages matching the filter are buffered server-side while no consumer
// is attached.
type FilterSpec struct {
	Mode        FilterMode
	Expr        string
	DurableName string
	// Acked requests acknowledged delivery: every MESSAGE frame carries a
	// delivery sequence number the consumer must answer with MSG_ACK, and
	// deliveries that were written but never acked when the connection
	// dies are requeued to the durable backlog instead of being lost.
	// Only meaningful together with DurableName.
	Acked bool
}

// FilterMode selects the filter family in a FilterSpec.
type FilterMode uint8

// Filter modes.
const (
	// FilterNone subscribes to all messages of the topic.
	FilterNone FilterMode = iota + 1
	// FilterCorrelationID matches the correlation ID expression.
	FilterCorrelationID
	// FilterSelector matches a JMS selector.
	FilterSelector
)

// subscribeAcked is the flags bit requesting acknowledged delivery.
const subscribeAcked = 1 << 0

// EncodeSubscribe builds a SUBSCRIBE payload: topic str, mode u8, expr
// str, durable name str (empty for non-durable), flags u8.
func EncodeSubscribe(topicName string, spec FilterSpec) []byte {
	var e encoder
	e.str(topicName)
	e.u8(uint8(spec.Mode))
	e.str(spec.Expr)
	e.str(spec.DurableName)
	var flags uint8
	if spec.Acked {
		flags |= subscribeAcked
	}
	e.u8(flags)
	return e.buf
}

// DecodeSubscribe parses a SUBSCRIBE payload.
func DecodeSubscribe(payload []byte) (topicName string, spec FilterSpec, err error) {
	d := decoder{buf: payload}
	if topicName, err = d.str(); err != nil {
		return "", FilterSpec{}, err
	}
	mode, err := d.u8()
	if err != nil {
		return "", FilterSpec{}, err
	}
	spec.Mode = FilterMode(mode)
	if spec.Expr, err = d.str(); err != nil {
		return "", FilterSpec{}, err
	}
	if spec.DurableName, err = d.str(); err != nil {
		return "", FilterSpec{}, err
	}
	flags, err := d.u8()
	if err != nil {
		return "", FilterSpec{}, err
	}
	spec.Acked = flags&subscribeAcked != 0
	return topicName, spec, nil
}

// EncodeU64 builds a payload holding a single u64 (ack ids, sub ids).
func EncodeU64(v uint64) []byte {
	var e encoder
	e.u64(v)
	return e.buf
}

// DecodeU64 parses a single-u64 payload.
func DecodeU64(payload []byte) (uint64, error) {
	d := decoder{buf: payload}
	return d.u64()
}

// EncodeDelivery builds a MESSAGE payload: subscription id u64, delivery
// sequence u64 (0 when the subscription is not acked), then the encoded
// message.
func EncodeDelivery(subID, seq uint64, m *jms.Message) []byte {
	return AppendDelivery(make([]byte, 0, 16+messageSizeHint(m)), subID, seq, m)
}

// AppendDelivery appends a MESSAGE payload to buf and returns the extended
// slice — the zero-extra-copy form of EncodeDelivery for pooled buffers.
func AppendDelivery(buf []byte, subID, seq uint64, m *jms.Message) []byte {
	e := encoder{buf: buf}
	e.u64(subID)
	e.u64(seq)
	return AppendMessage(e.buf, m)
}

// DecodeDelivery parses a MESSAGE payload.
func DecodeDelivery(payload []byte) (subID, seq uint64, m *jms.Message, err error) {
	d := decoder{buf: payload}
	if subID, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	if seq, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	m, err = DecodeMessage(payload[d.off:])
	return subID, seq, m, err
}

// EncodeAck builds a MSG_ACK payload: subscription id u64, delivery
// sequence u64. MSG_ACK frames carry no request ID.
func EncodeAck(subID, seq uint64) []byte {
	var e encoder
	e.u64(subID)
	e.u64(seq)
	return e.buf
}

// AppendAckFrame appends a complete MSG_ACK frame — prologue and payload —
// to buf, so a burst of acks can be coalesced into one buffer and one
// write.
func AppendAckFrame(buf []byte, subID, seq uint64) []byte {
	e := encoder{buf: buf}
	e.u32(16)
	e.u8(uint8(FrameMsgAck))
	e.u64(subID)
	e.u64(seq)
	return e.buf
}

// DecodeAck parses a MSG_ACK payload.
func DecodeAck(payload []byte) (subID, seq uint64, err error) {
	d := decoder{buf: payload}
	if subID, err = d.u64(); err != nil {
		return 0, 0, err
	}
	seq, err = d.u64()
	return subID, seq, err
}

// EncodeError builds an ERROR payload: request id u64, message str.
func EncodeError(reqID uint64, msg string) []byte {
	var e encoder
	e.u64(reqID)
	e.str(msg)
	return e.buf
}

// DecodeError parses an ERROR payload.
func DecodeError(payload []byte) (reqID uint64, msg string, err error) {
	d := decoder{buf: payload}
	if reqID, err = d.u64(); err != nil {
		return 0, "", err
	}
	msg, err = d.str()
	return reqID, msg, err
}

// EncodeSubClosed builds a SUB_CLOSED payload: subscription id u64,
// reason str.
func EncodeSubClosed(subID uint64, reason string) []byte {
	var e encoder
	e.u64(subID)
	e.str(reason)
	return e.buf
}

// DecodeSubClosed parses a SUB_CLOSED payload.
func DecodeSubClosed(payload []byte) (subID uint64, reason string, err error) {
	d := decoder{buf: payload}
	if subID, err = d.u64(); err != nil {
		return 0, "", err
	}
	reason, err = d.str()
	return subID, reason, err
}

// EncodeString builds a single-string payload (topic configuration).
func EncodeString(s string) []byte {
	var e encoder
	e.str(s)
	return e.buf
}

// DecodeString parses a single-string payload.
func DecodeString(payload []byte) (string, error) {
	d := decoder{buf: payload}
	return d.str()
}
