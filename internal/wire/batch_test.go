package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/jms"
)

// randomMessage builds one message from a seeded source: random topic,
// headers, a property set covering every property type, and a random body.
// It is the generator behind the property-based batch codec tests.
func randomMessage(rng *rand.Rand) *jms.Message {
	topics := []string{"t", "orders", "telemetry/eu", "a-rather-long-topic-name"}
	m := jms.NewMessage(topics[rng.Intn(len(topics))])
	if rng.Intn(2) == 0 {
		_ = m.SetCorrelationID("#" + strings.Repeat("c", rng.Intn(8)))
	}
	if rng.Intn(2) == 0 {
		m.Header.DeliveryMode = jms.NonPersistent
	}
	m.Header.Priority = rng.Intn(10)
	m.Header.MessageID = rng.Uint64()
	m.Header.TraceID = rng.Uint64() >> uint(rng.Intn(64))
	if rng.Intn(2) == 0 {
		m.Header.Timestamp = time.Unix(0, rng.Int63())
	}
	if rng.Intn(4) == 0 {
		m.Header.Expiration = time.Unix(0, rng.Int63())
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		name := string(rune('a' + i))
		switch rng.Intn(5) {
		case 0:
			_ = m.SetBoolProperty(name, rng.Intn(2) == 0)
		case 1:
			_ = m.SetInt32Property(name, int32(rng.Int31()))
		case 2:
			_ = m.SetInt64Property(name, rng.Int63())
		case 3:
			_ = m.SetFloat64Property(name, rng.NormFloat64())
		default:
			_ = m.SetStringProperty(name, strings.Repeat("v", rng.Intn(16)))
		}
	}
	if n := rng.Intn(128); n > 0 {
		body := make([]byte, n)
		rng.Read(body)
		m.SetBody(body)
	}
	return m
}

// TestBatchRoundTripProperty drives decode(encode(batch)) == identity over
// seeded random batches of varying counts, sizes and header shapes. The
// canonical message encoding is the equality witness: two messages are the
// same iff their EncodeMessage bytes are.
func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		count := rng.Intn(20)
		msgs := make([]*jms.Message, count)
		for i := range msgs {
			msgs[i] = randomMessage(rng)
		}
		payload := EncodeBatch(msgs)
		got, err := DecodeBatch(payload)
		if err != nil {
			t.Fatalf("trial %d: DecodeBatch: %v", trial, err)
		}
		if len(got) != len(msgs) {
			t.Fatalf("trial %d: decoded %d messages, want %d", trial, len(got), len(msgs))
		}
		for i := range msgs {
			want := EncodeMessage(msgs[i])
			have := EncodeMessage(got[i])
			if !bytes.Equal(want, have) {
				t.Fatalf("trial %d: message %d changed across round trip:\n%x\n%x",
					trial, i, want, have)
			}
		}
		// Re-encoding the decoded batch must be byte-identical (the codec
		// is canonical: properties are sorted on encode).
		if again := EncodeBatch(got); !bytes.Equal(again, payload) {
			t.Fatalf("trial %d: batch encoding not a fixpoint", trial)
		}
	}
}

// TestBatchOfOneWireCompatible pins the compatibility guarantee a batch of
// one relies on: the message bytes inside a MSG_BATCH are exactly the
// bytes of a plain PUBLISH payload, so a consumer-side MESSAGE path never
// sees a difference between a batched and an unbatched publish.
func TestBatchOfOneWireCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := randomMessage(rng)
		batch := EncodeBatch([]*jms.Message{m})
		plain := EncodeMessage(m)
		if len(batch) != 4+4+len(plain) {
			t.Fatalf("trial %d: batch-of-one length %d, want %d", trial, len(batch), 8+len(plain))
		}
		if !bytes.Equal(batch[8:], plain) {
			t.Fatalf("trial %d: embedded message bytes differ from plain PUBLISH payload", trial)
		}
		got, err := DecodeBatch(batch)
		if err != nil || len(got) != 1 {
			t.Fatalf("trial %d: DecodeBatch: %v (%d msgs)", trial, err, len(got))
		}
		// The plain decoder must accept the embedded bytes unchanged.
		m2, err := DecodeMessage(batch[8:])
		if err != nil {
			t.Fatalf("trial %d: DecodeMessage of embedded bytes: %v", trial, err)
		}
		if !bytes.Equal(EncodeMessage(m2), plain) {
			t.Fatalf("trial %d: embedded message decoded differently", trial)
		}
	}
}

// TestDecodeBatchRejectsCorruption covers the decoder's guard rails:
// oversized counts, truncated length prefixes, short message bodies and
// trailing garbage must all fail with an error instead of over-reading.
func TestDecodeBatchRejectsCorruption(t *testing.T) {
	m := jms.NewMessage("t")
	good := EncodeBatch([]*jms.Message{m, m})
	cases := map[string][]byte{
		"empty payload":   {},
		"short count":     {0, 0, 1},
		"count too large": {0xff, 0xff, 0xff, 0xff},
		"truncated body":  good[:len(good)-3],
		"trailing bytes":  append(append([]byte{}, good...), 0xab),
	}
	for name, payload := range cases {
		if _, err := DecodeBatch(payload); err == nil {
			t.Errorf("%s: DecodeBatch accepted corrupt payload", name)
		}
	}
	// An inflated per-message length must fail, not swallow the next one.
	bad := append([]byte{}, good...)
	bad[7] += 4 // first message's length prefix (count u32, then len u32)
	if _, err := DecodeBatch(bad); err == nil {
		t.Error("inflated length prefix accepted")
	}
	if !errors.Is(mustErr(DecodeBatch([]byte{0, 0, 0, 9})), ErrTruncated) {
		t.Error("count exceeding payload should be ErrTruncated")
	}
}

func mustErr[T any](_ T, err error) error { return err }

// TestDecodeBatchEmpty allows the degenerate zero-message batch: the codec
// accepts it and returns no messages (the server acks it as a no-op).
func TestDecodeBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("DecodeBatch(empty) = %v msgs, %v", len(got), err)
	}
}
