package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/jms"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: FramePing},
		{Type: FramePublish, Payload: []byte{1, 2, 3}},
		{Type: FrameMessage, Payload: make([]byte, 1024)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame mismatch: got %v/%d bytes, want %v/%d bytes",
				got.Type, len(got.Payload), want.Type, len(want.Payload))
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: FramePing, Payload: make([]byte, MaxFrameSize+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write err = %v", err)
	}
	// Craft an oversized header by hand.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(FramePing)})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read err = %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, byte(FramePublish), 1, 2}) // promises 10 bytes, has 2
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated frame accepted")
	}
}

func newRichMessage(t testing.TB) *jms.Message {
	t.Helper()
	m := jms.NewMessage("presence")
	m.Header.MessageID = 42
	m.Header.Priority = 7
	m.Header.Timestamp = time.Unix(0, 1700000000000000000)
	m.Header.Expiration = time.Unix(0, 1800000000000000000)
	m.Header.TraceID = 0xCAFEBABEDEADBEEF
	if err := m.SetCorrelationID("#0"); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.SetBoolProperty("online", true))
	must(m.SetInt32Property("device", -7))
	must(m.SetInt64Property("big", 1<<40))
	must(m.SetFloat64Property("lat", 49.78))
	must(m.SetStringProperty("user", "alice"))
	m.Body = []byte{0xDE, 0xAD}
	return m
}

func TestMessageRoundTrip(t *testing.T) {
	m := newRichMessage(t)
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.MessageID != 42 || got.Header.Topic != "presence" ||
		got.Header.CorrelationID != "#0" || got.Header.Priority != 7 {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if !got.Header.Timestamp.Equal(m.Header.Timestamp) {
		t.Errorf("timestamp = %v, want %v", got.Header.Timestamp, m.Header.Timestamp)
	}
	if !got.Header.Expiration.Equal(m.Header.Expiration) {
		t.Errorf("expiration = %v", got.Header.Expiration)
	}
	if got.Header.TraceID != 0xCAFEBABEDEADBEEF {
		t.Errorf("trace ID = %#x, want 0xCAFEBABEDEADBEEF", got.Header.TraceID)
	}
	if v, err := got.BoolProperty("online"); err != nil || !v {
		t.Errorf("online = %v, %v", v, err)
	}
	if v, err := got.Int64Property("device"); err != nil || v != -7 {
		t.Errorf("device = %v, %v", v, err)
	}
	if v, err := got.Int64Property("big"); err != nil || v != 1<<40 {
		t.Errorf("big = %v, %v", v, err)
	}
	if v, err := got.Float64Property("lat"); err != nil || v != 49.78 {
		t.Errorf("lat = %v, %v", v, err)
	}
	if v, err := got.StringProperty("user"); err != nil || v != "alice" {
		t.Errorf("user = %v, %v", v, err)
	}
	if !bytes.Equal(got.Body, m.Body) {
		t.Errorf("body = %x", got.Body)
	}
}

func TestMessageRoundTripMinimal(t *testing.T) {
	m := jms.NewMessage("t")
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Topic != "t" || got.NumProperties() != 0 || got.Body != nil {
		t.Errorf("minimal round trip mismatch: %+v", got)
	}
	if !got.Header.Timestamp.IsZero() || !got.Header.Expiration.IsZero() {
		t.Error("zero times not preserved")
	}
}

func TestDecodeMessageTruncated(t *testing.T) {
	m := newRichMessage(t)
	full := EncodeMessage(m)
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeMessage(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeMessageTrailingGarbage(t *testing.T) {
	m := jms.NewMessage("t")
	payload := append(EncodeMessage(m), 0xFF)
	if _, err := DecodeMessage(payload); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	specs := []FilterSpec{
		{Mode: FilterNone},
		{Mode: FilterCorrelationID, Expr: "[7;13]"},
		{Mode: FilterSelector, Expr: "user = 'alice' AND age > 3"},
		{Mode: FilterNone, DurableName: "audit", Acked: true},
	}
	for _, spec := range specs {
		payload := EncodeSubscribe("presence", spec)
		topicName, got, err := DecodeSubscribe(payload)
		if err != nil {
			t.Fatal(err)
		}
		if topicName != "presence" || got != spec {
			t.Errorf("got %q %+v, want presence %+v", topicName, got, spec)
		}
	}
}

func TestDeliveryRoundTrip(t *testing.T) {
	m := newRichMessage(t)
	subID, seq, got, err := DecodeDelivery(EncodeDelivery(99, 41, m))
	if err != nil {
		t.Fatal(err)
	}
	if subID != 99 || seq != 41 {
		t.Errorf("subID, seq = %d, %d", subID, seq)
	}
	if got.Header.CorrelationID != "#0" {
		t.Errorf("corrID = %q", got.Header.CorrelationID)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	reqID, msg, err := DecodeError(EncodeError(7, "boom"))
	if err != nil || reqID != 7 || msg != "boom" {
		t.Errorf("got %d %q %v", reqID, msg, err)
	}
}

func TestU64AndStringRoundTrip(t *testing.T) {
	v, err := DecodeU64(EncodeU64(1 << 63))
	if err != nil || v != 1<<63 {
		t.Errorf("u64 = %d, %v", v, err)
	}
	s, err := DecodeString(EncodeString("héllo"))
	if err != nil || s != "héllo" {
		t.Errorf("string = %q, %v", s, err)
	}
	if _, err := DecodeU64(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty u64 err = %v", err)
	}
}

// TestMessagePropertyRoundTripQuick: arbitrary string/int property values
// survive the codec.
func TestMessagePropertyRoundTripQuick(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		m := jms.NewMessage("t")
		if err := m.SetStringProperty("s", s); err != nil {
			return false
		}
		if err := m.SetInt64Property("i", i); err != nil {
			return false
		}
		if err := m.SetFloat64Property("f", fl); err != nil {
			return false
		}
		if err := m.SetBoolProperty("b", b); err != nil {
			return false
		}
		got, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			return false
		}
		gs, err1 := got.StringProperty("s")
		gi, err2 := got.Int64Property("i")
		gf, err3 := got.Float64Property("f")
		gb, err4 := got.BoolProperty("b")
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		// NaN != NaN: compare bit patterns via == only when not NaN.
		floatOK := gf == fl || (fl != fl && gf != gf)
		return gs == s && gi == i && floatOK && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameTypeString(t *testing.T) {
	if FramePublish.String() != "PUBLISH" || FrameMessage.String() != "MESSAGE" {
		t.Error("FrameType.String mismatch")
	}
	if FrameType(200).String() != "FrameType(200)" {
		t.Error("unknown FrameType.String mismatch")
	}
}

func BenchmarkEncodeMessage(b *testing.B) {
	m := newRichMessage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeMessage(m)
	}
}

func BenchmarkDecodeMessage(b *testing.B) {
	payload := EncodeMessage(newRichMessage(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodersNeverPanic feeds random bytes to every decoder; they must
// return errors or garbage values, never panic or over-read.
func TestDecodersNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		n := r.Intn(64)
		payload := make([]byte, n)
		for j := range payload {
			payload[j] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decoder panicked on %x: %v", payload, p)
				}
			}()
			_, _ = DecodeMessage(payload)
			_, _, _ = DecodeSubscribe(payload)
			_, _, _, _ = DecodeDelivery(payload)
			_, _, _ = DecodeError(payload)
			_, _, _ = DecodeAck(payload)
			_, _ = DecodeU64(payload)
			_, _ = DecodeString(payload)
		}()
	}
}

// TestDecodeMutatedMessages flips bytes in valid encodings; decoding must
// never panic and, when it succeeds, must yield a valid message.
func TestDecodeMutatedMessages(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	base := EncodeMessage(newRichMessage(t))
	for i := 0; i < 20000; i++ {
		payload := make([]byte, len(base))
		copy(payload, base)
		for flips := r.Intn(4) + 1; flips > 0; flips-- {
			payload[r.Intn(len(payload))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decoder panicked on mutated payload: %v", p)
				}
			}()
			if m, err := DecodeMessage(payload); err == nil {
				// Round-trip sanity: a successfully decoded message
				// re-encodes without panicking.
				_ = EncodeMessage(m)
			}
		}()
	}
}

func testMessage(t *testing.T) *jms.Message {
	t.Helper()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("#7"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("user", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt64Property("seq", 42); err != nil {
		t.Fatal(err)
	}
	m.Body = []byte("payload")
	return m
}

// TestAppendMessageMatchesEncode checks that the append path produces the
// identical encoding to EncodeMessage, including when appending after
// existing bytes.
func TestAppendMessageMatchesEncode(t *testing.T) {
	m := testMessage(t)
	want := EncodeMessage(m)
	got := AppendMessage(nil, m)
	if !bytes.Equal(got, want) {
		t.Error("AppendMessage(nil, m) differs from EncodeMessage(m)")
	}
	prefixed := AppendMessage([]byte{0xAA, 0xBB}, m)
	if !bytes.Equal(prefixed[2:], want) {
		t.Error("AppendMessage after a prefix corrupted the encoding")
	}
	if prefixed[0] != 0xAA || prefixed[1] != 0xBB {
		t.Error("AppendMessage overwrote the prefix")
	}
	if _, err := DecodeMessage(got); err != nil {
		t.Fatalf("DecodeMessage of appended encoding: %v", err)
	}
}

// TestEncodeMessagePreSized checks the pre-sizing: the one buffer
// allocated up front is large enough that encoding never grows it.
func TestEncodeMessagePreSized(t *testing.T) {
	m := testMessage(t)
	buf := make([]byte, 0, messageSizeHint(m))
	out := AppendMessage(buf, m)
	if cap(out) != cap(buf) {
		t.Errorf("encoding grew the pre-sized buffer: hint %d, need %d", messageSizeHint(m), len(out))
	}
}

func TestAppendDeliveryMatchesEncode(t *testing.T) {
	m := testMessage(t)
	want := EncodeDelivery(9, 3, m)
	got := AppendDelivery(nil, 9, 3, m)
	if !bytes.Equal(got, want) {
		t.Error("AppendDelivery differs from EncodeDelivery")
	}
	subID, seq, dm, err := DecodeDelivery(got)
	if err != nil {
		t.Fatal(err)
	}
	if subID != 9 || seq != 3 || dm.Header.CorrelationID != "#7" {
		t.Errorf("DecodeDelivery = (%d, %d, %q), want (9, 3, #7)", subID, seq, dm.Header.CorrelationID)
	}
}

// TestBufferPoolRoundTrip checks GetBuffer/PutBuffer reuse and the cap
// guard against pinning oversized buffers.
func TestBufferPoolRoundTrip(t *testing.T) {
	bp := GetBuffer()
	if len(*bp) != 0 {
		t.Fatalf("pooled buffer has length %d, want 0", len(*bp))
	}
	*bp = append(*bp, 1, 2, 3)
	PutBuffer(bp)
	bp2 := GetBuffer()
	if len(*bp2) != 0 {
		t.Error("PutBuffer must reset the buffer length")
	}
	PutBuffer(bp2)

	huge := make([]byte, 0, maxPooledBuffer+1)
	PutBuffer(&huge) // must be dropped, not pooled
	bp3 := GetBuffer()
	if cap(*bp3) > maxPooledBuffer {
		t.Error("PutBuffer pooled an oversized buffer")
	}
	PutBuffer(bp3)
}
