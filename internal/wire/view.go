package wire

import (
	"fmt"
	"time"

	"repro/internal/jms"
)

// This file is the lazy half of the codec: ParseMessageView validates a
// message payload in place without materializing a *jms.Message, and
// MessageArena materializes validated views in bulk so a whole batch costs
// two allocations (one message slab, one body slab) instead of several per
// message. The view parser accepts exactly the payloads DecodeMessage
// accepts and rejects exactly the ones it rejects — FuzzDecodeMessageView
// holds the two implementations byte-for-byte equivalent.

// MessageView is a validated, zero-copy view over an encoded message
// payload. The view and every accessor result alias the payload bytes: they
// are valid only while the payload is (for frames from a FrameReader, until
// the next call to Next).
type MessageView struct {
	payload []byte

	msgID              uint64
	topicOff, topicLen int
	corrOff, corrLen   int
	mode, prio         uint8
	ts, exp            int64
	traceID            uint64
	nProps             int
	propsOff           int
	bodyOff, bodyLen   int
}

// strView consumes a length-prefixed string field, returning its offset and
// length instead of materializing a string.
func (d *decoder) strView() (off, n int, err error) {
	ln, err := d.u32()
	if err != nil {
		return 0, 0, err
	}
	if d.remain() < int(ln) {
		return 0, 0, ErrTruncated
	}
	off = d.off
	d.off += int(ln)
	return off, int(ln), nil
}

// validPropertyNameBytes is the byte-wise twin of jms's property-name rule
// (a letter, '_' or '$' followed by letters, digits, '_' or '$'). Byte-wise
// and rune-wise agree on every input: any byte >= 0x80 is neither an ASCII
// letter nor digit here, and the rune it begins decodes outside both ranges
// there.
func validPropertyNameBytes(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		isLetter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '$'
		isDigit := c >= '0' && c <= '9'
		if i == 0 && !isLetter {
			return false
		}
		if !isLetter && !isDigit {
			return false
		}
	}
	return true
}

// ParseMessageView validates payload as one encoded message and returns a
// zero-copy view of it. It performs the full validation DecodeMessage does
// — truncation, correlation-ID length, property names and types, trailing
// bytes — so a payload that parses here is guaranteed to materialize.
func ParseMessageView(payload []byte) (MessageView, error) {
	v := MessageView{payload: payload}
	d := decoder{buf: payload}
	var err error
	if v.msgID, err = d.u64(); err != nil {
		return v, err
	}
	if v.topicOff, v.topicLen, err = d.strView(); err != nil {
		return v, err
	}
	if v.corrOff, v.corrLen, err = d.strView(); err != nil {
		return v, err
	}
	if v.corrLen > jms.MaxCorrelationIDLen {
		return v, fmt.Errorf("%w: %d bytes", jms.ErrCorrelationIDTooLong, v.corrLen)
	}
	if v.mode, err = d.u8(); err != nil {
		return v, err
	}
	if v.prio, err = d.u8(); err != nil {
		return v, err
	}
	if v.ts, err = d.i64(); err != nil {
		return v, err
	}
	if v.exp, err = d.i64(); err != nil {
		return v, err
	}
	if v.traceID, err = d.u64(); err != nil {
		return v, err
	}
	nProps, err := d.u32()
	if err != nil {
		return v, err
	}
	v.nProps = int(nProps)
	v.propsOff = d.off
	for i := 0; i < v.nProps; i++ {
		nameOff, nameLen, err := d.strView()
		if err != nil {
			return v, err
		}
		if !validPropertyNameBytes(payload[nameOff : nameOff+nameLen]) {
			return v, fmt.Errorf("%w: %q", jms.ErrBadPropertyName, payload[nameOff:nameOff+nameLen])
		}
		typ, err := d.u8()
		if err != nil {
			return v, err
		}
		switch jms.PropertyType(typ) {
		case jms.TypeBool:
			_, err = d.u8()
		case jms.TypeInt32, jms.TypeInt64:
			_, err = d.i64()
		case jms.TypeFloat64:
			_, err = d.f64()
		case jms.TypeString:
			_, _, err = d.strView()
		default:
			return v, fmt.Errorf("wire: unknown property type %d", typ)
		}
		if err != nil {
			return v, err
		}
	}
	bodyLen, err := d.u32()
	if err != nil {
		return v, err
	}
	if d.remain() < int(bodyLen) {
		return v, ErrTruncated
	}
	v.bodyOff = d.off
	v.bodyLen = int(bodyLen)
	d.off += int(bodyLen)
	if d.remain() != 0 {
		return v, fmt.Errorf("wire: %d trailing bytes in message payload", d.remain())
	}
	return v, nil
}

// Accessors. Byte-slice results alias the payload.

// MessageID returns the header message ID.
func (v *MessageView) MessageID() uint64 { return v.msgID }

// TopicBytes returns the topic name bytes.
func (v *MessageView) TopicBytes() []byte { return v.payload[v.topicOff : v.topicOff+v.topicLen] }

// CorrelationIDBytes returns the correlation ID bytes.
func (v *MessageView) CorrelationIDBytes() []byte {
	return v.payload[v.corrOff : v.corrOff+v.corrLen]
}

// DeliveryMode returns the wire delivery mode (not validity-checked, like
// DecodeMessage).
func (v *MessageView) DeliveryMode() jms.DeliveryMode { return jms.DeliveryMode(v.mode) }

// Priority returns the wire priority.
func (v *MessageView) Priority() int { return int(v.prio) }

// TimestampNanos returns the send timestamp in unix nanos (0 = unset).
func (v *MessageView) TimestampNanos() int64 { return v.ts }

// ExpirationNanos returns the expiry in unix nanos (0 = never).
func (v *MessageView) ExpirationNanos() int64 { return v.exp }

// TraceID returns the trace ID (0 = untraced).
func (v *MessageView) TraceID() uint64 { return v.traceID }

// NumProperties returns the wire property count. Duplicate names are
// counted as encoded; materialization collapses them last-wins, exactly as
// DecodeMessage does.
func (v *MessageView) NumProperties() int { return v.nProps }

// Body returns the body bytes (nil when empty).
func (v *MessageView) Body() []byte {
	if v.bodyLen == 0 {
		return nil
	}
	return v.payload[v.bodyOff : v.bodyOff+v.bodyLen]
}

// PropertyView is one property yielded by EachProperty. Name and Str alias
// the payload.
type PropertyView struct {
	Name []byte
	Type jms.PropertyType
	Bool bool
	Int  int64
	F    float64
	Str  []byte
}

// EachProperty calls fn for each property in wire order until fn returns
// false. The view was bounds-checked at parse time, so the walk cannot
// fail.
func (v *MessageView) EachProperty(fn func(PropertyView) bool) {
	d := decoder{buf: v.payload, off: v.propsOff}
	for i := 0; i < v.nProps; i++ {
		nameOff, nameLen, _ := d.strView()
		p := PropertyView{Name: d.buf[nameOff : nameOff+nameLen]}
		typ, _ := d.u8()
		p.Type = jms.PropertyType(typ)
		switch p.Type {
		case jms.TypeBool:
			b, _ := d.u8()
			p.Bool = b != 0
		case jms.TypeInt32, jms.TypeInt64:
			p.Int, _ = d.i64()
		case jms.TypeFloat64:
			p.F, _ = d.f64()
		case jms.TypeString:
			off, n, _ := d.strView()
			p.Str = d.buf[off : off+n]
		}
		if !fn(p) {
			return
		}
	}
}

// internCacheMax bounds the arena's string-intern cache. Topics and
// property names repeat across the lifetime of a connection, so the cache
// normally stays tiny; a hostile peer cycling names just degrades back to
// one string allocation per unique name.
const internCacheMax = 1024

// MessageArena materializes MessageViews into *jms.Message values in bulk.
// Each batch draws its Message structs from one slab allocation and its
// body bytes from a second, and topic/property-name strings are interned
// across batches, so the steady-state decode cost of an n-message batch is
// two allocations instead of O(n).
//
// Ownership contract: the returned messages are ordinary GC-owned values —
// subscribers retain them indefinitely, so slabs are never pooled or
// recycled. The slab layout only means one batch's messages keep each
// other's body bytes reachable; a batch payload is bounded by MaxFrameSize,
// so that coupling is bounded too. An arena is not safe for concurrent use;
// each connection (or pipeline stage) owns its own.
type MessageArena struct {
	cache map[string]string
}

// NewMessageArena returns an empty arena.
func NewMessageArena() *MessageArena {
	return &MessageArena{cache: make(map[string]string, 16)}
}

// intern returns the canonical string for b, allocating only the first time
// a name is seen.
func (a *MessageArena) intern(b []byte) string {
	if s, ok := a.cache[string(b)]; ok {
		return s
	}
	if len(a.cache) >= internCacheMax {
		a.cache = make(map[string]string, 16)
	}
	s := string(b)
	a.cache[s] = s
	return s
}

// materialize fills m from v, appending body bytes to slab. It returns the
// extended slab.
func (a *MessageArena) materialize(m *jms.Message, v *MessageView, slab []byte) ([]byte, error) {
	m.Header.MessageID = v.msgID
	m.Header.Topic = a.intern(v.TopicBytes())
	if v.corrLen > 0 {
		if err := m.SetCorrelationID(string(v.CorrelationIDBytes())); err != nil {
			return slab, err
		}
	}
	m.Header.DeliveryMode = jms.DeliveryMode(v.mode)
	m.Header.Priority = int(v.prio)
	if v.ts != 0 {
		m.Header.Timestamp = time.Unix(0, v.ts)
	}
	if v.exp != 0 {
		m.Header.Expiration = time.Unix(0, v.exp)
	}
	m.Header.TraceID = v.traceID

	d := decoder{buf: v.payload, off: v.propsOff}
	for i := 0; i < v.nProps; i++ {
		nameOff, nameLen, _ := d.strView()
		name := a.intern(d.buf[nameOff : nameOff+nameLen])
		typ, _ := d.u8()
		var err error
		switch jms.PropertyType(typ) {
		case jms.TypeBool:
			var b uint8
			b, _ = d.u8()
			err = m.SetBoolProperty(name, b != 0)
		case jms.TypeInt32:
			var iv int64
			iv, _ = d.i64()
			err = m.SetInt32Property(name, int32(iv))
		case jms.TypeInt64:
			var iv int64
			iv, _ = d.i64()
			err = m.SetInt64Property(name, iv)
		case jms.TypeFloat64:
			var fv float64
			fv, _ = d.f64()
			err = m.SetFloat64Property(name, fv)
		case jms.TypeString:
			off, n, _ := d.strView()
			err = m.SetStringProperty(name, string(d.buf[off:off+n]))
		}
		if err != nil {
			return slab, err
		}
	}
	if v.bodyLen > 0 {
		off := len(slab)
		slab = append(slab, v.Body()...)
		m.Body = slab[off:len(slab):len(slab)]
	}
	return slab, nil
}

// DecodeMessageArena materializes one message payload through the arena,
// equivalent to DecodeMessage but with interned topic/property names.
func (a *MessageArena) DecodeMessageArena(payload []byte) (*jms.Message, error) {
	v, err := ParseMessageView(payload)
	if err != nil {
		return nil, err
	}
	m := new(jms.Message)
	if _, err := a.materialize(m, &v, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeDeliveryArena parses a MESSAGE payload like DecodeDelivery,
// materializing the message through the arena.
func (a *MessageArena) DecodeDeliveryArena(payload []byte) (subID, seq uint64, m *jms.Message, err error) {
	d := decoder{buf: payload}
	if subID, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	if seq, err = d.u64(); err != nil {
		return 0, 0, nil, err
	}
	m, err = a.DecodeMessageArena(payload[d.off:])
	return subID, seq, m, err
}

// AppendBatchMessages decodes a MSG_BATCH payload, materializing every
// message through the arena, and appends the results to dst (which the
// caller typically draws from a pooled carrier). It accepts and rejects
// exactly the payloads DecodeBatch does.
func (a *MessageArena) AppendBatchMessages(dst []*jms.Message, payload []byte) ([]*jms.Message, error) {
	d := decoder{buf: payload}
	n, err := d.u32()
	if err != nil {
		return dst, err
	}
	// Every message costs at least its 4-byte length prefix.
	if int64(n)*4 > int64(d.remain()) {
		return dst, fmt.Errorf("%w: batch count %d exceeds payload", ErrTruncated, n)
	}
	msgs := make([]jms.Message, n)
	// Bodies in the payload can total at most the payload length, so the
	// slab never regrows.
	slab := make([]byte, 0, len(payload))
	for i := range msgs {
		sz, err := d.u32()
		if err != nil {
			return dst, err
		}
		if d.remain() < int(sz) {
			return dst, ErrTruncated
		}
		v, err := ParseMessageView(d.buf[d.off : d.off+int(sz)])
		if err != nil {
			return dst, fmt.Errorf("wire: batch message %d: %w", i, err)
		}
		if slab, err = a.materialize(&msgs[i], &v, slab); err != nil {
			return dst, fmt.Errorf("wire: batch message %d: %w", i, err)
		}
		d.off += int(sz)
		dst = append(dst, &msgs[i])
	}
	if d.remain() != 0 {
		return dst, fmt.Errorf("wire: %d trailing bytes in batch payload", d.remain())
	}
	return dst, nil
}
