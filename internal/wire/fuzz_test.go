package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/jms"
)

// fuzzSeedFrames returns well-formed frames of every payload-bearing
// type, so the fuzzer starts from the interesting part of the input
// space instead of having to rediscover the frame prologue.
func fuzzSeedFrames() []Frame {
	m := jms.NewMessage("orders")
	_ = m.SetCorrelationID("#7")
	_ = m.SetBoolProperty("urgent", true)
	_ = m.SetInt32Property("qty", 12)
	_ = m.SetInt64Property("ts", 1<<40)
	_ = m.SetFloat64Property("price", 9.75)
	_ = m.SetStringProperty("region", "emea")
	m.SetBody([]byte("payload bytes"))
	return []Frame{
		{Type: FramePublish, Payload: EncodeMessage(m)},
		{Type: FrameMessage, Payload: EncodeDelivery(3, 41, m)},
		{Type: FrameSubscribe, Payload: EncodeSubscribe("orders", FilterSpec{
			Mode:        FilterSelector,
			Expr:        "qty > 10 AND region = 'emea'",
			DurableName: "audit",
			Acked:       true,
		})},
		{Type: FramePubAck, Payload: EncodeU64(99)},
		{Type: FrameMsgAck, Payload: EncodeAck(3, 41)},
		{Type: FrameError, Payload: EncodeError(7, "no such topic")},
		{Type: FrameSubClosed, Payload: EncodeSubClosed(5, "slow-consumer")},
		{Type: FrameConfigureTopic, Payload: EncodeString("orders")},
		{Type: FramePing},
	}
}

// FuzzDecodeFrame feeds arbitrary bytes through the framing layer and
// every payload decoder. Decoders must reject garbage with an error —
// never panic, never over-read — and anything they accept must survive
// a canonical re-encode/decode round trip (encode∘decode is a fixpoint:
// the second encoding equals the first).
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed seeds: truncated header, oversized length, short payload.
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(FramePublish)})
	f.Add([]byte{0, 0, 0, 9, byte(FramePublish), 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			// Rejections must be one of the framing layer's declared
			// failure modes, not something leaking from deeper layers.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("ReadFrame: unexpected error class: %v", err)
			}
			return
		}

		// The frame itself must round-trip through WriteFrame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("WriteFrame(%v) of a read frame: %v", fr.Type, err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame of rewritten frame: %v", err)
		}
		if back.Type != fr.Type || !bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("frame round trip changed: %v/%x vs %v/%x",
				fr.Type, fr.Payload, back.Type, back.Payload)
		}

		switch fr.Type {
		case FramePublish:
			m, err := DecodeMessage(fr.Payload)
			if err != nil {
				return
			}
			checkMessageFixpoint(t, m)
		case FrameMessage:
			subID, seq, m, err := DecodeDelivery(fr.Payload)
			if err != nil {
				return
			}
			reenc := EncodeDelivery(subID, seq, m)
			subID2, seq2, m2, err := DecodeDelivery(reenc)
			if err != nil {
				t.Fatalf("re-decode of re-encoded delivery: %v", err)
			}
			if subID2 != subID || seq2 != seq {
				t.Fatalf("delivery ids changed: (%d,%d) vs (%d,%d)", subID, seq, subID2, seq2)
			}
			if !bytes.Equal(EncodeMessage(m), EncodeMessage(m2)) {
				t.Fatal("delivery message changed across round trip")
			}
		case FrameSubscribe:
			topic, spec, err := DecodeSubscribe(fr.Payload)
			if err != nil {
				return
			}
			topic2, spec2, err := DecodeSubscribe(EncodeSubscribe(topic, spec))
			if err != nil {
				t.Fatalf("re-decode of re-encoded subscribe: %v", err)
			}
			if topic2 != topic || spec2 != spec {
				t.Fatalf("subscribe changed: %q %+v vs %q %+v", topic, spec, topic2, spec2)
			}
		case FrameError:
			reqID, msg, err := DecodeError(fr.Payload)
			if err != nil {
				return
			}
			reqID2, msg2, err := DecodeError(EncodeError(reqID, msg))
			if err != nil || reqID2 != reqID || msg2 != msg {
				t.Fatalf("error frame changed: (%d,%q,%v)", reqID2, msg2, err)
			}
		case FrameSubClosed:
			subID, reason, err := DecodeSubClosed(fr.Payload)
			if err != nil {
				return
			}
			subID2, reason2, err := DecodeSubClosed(EncodeSubClosed(subID, reason))
			if err != nil || subID2 != subID || reason2 != reason {
				t.Fatalf("sub-closed changed: (%d,%q,%v)", subID2, reason2, err)
			}
		case FrameMsgAck:
			subID, seq, err := DecodeAck(fr.Payload)
			if err != nil {
				return
			}
			subID2, seq2, err := DecodeAck(EncodeAck(subID, seq))
			if err != nil || subID2 != subID || seq2 != seq {
				t.Fatalf("ack changed: (%d,%d,%v)", subID2, seq2, err)
			}
		case FramePubAck, FrameSubscribeOK, FrameUnsubscribe:
			if v, err := DecodeU64(fr.Payload); err == nil {
				if v2, err := DecodeU64(EncodeU64(v)); err != nil || v2 != v {
					t.Fatalf("u64 changed: (%d,%v)", v2, err)
				}
			}
		case FrameConfigureTopic, FrameDeleteDurable:
			if s, err := DecodeString(fr.Payload); err == nil {
				if s2, err := DecodeString(EncodeString(s)); err != nil || s2 != s {
					t.Fatalf("string changed: (%q,%v)", s2, err)
				}
			}
		}
	})
}

// FuzzDecodeBatch feeds arbitrary bytes through the MSG_BATCH payload
// decoder. Like FuzzDecodeFrame, the contract is: reject garbage with an
// error (never panic, never over-read), and any accepted batch must make
// re-encoding a fixpoint — the re-encoded payload decodes to the same
// messages and encodes identically a second time.
func FuzzDecodeBatch(f *testing.F) {
	m := jms.NewMessage("orders")
	_ = m.SetCorrelationID("#7")
	_ = m.SetInt32Property("qty", 12)
	_ = m.SetStringProperty("region", "emea")
	m.SetBody([]byte("payload bytes"))
	small := jms.NewMessage("t")
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch([]*jms.Message{small}))
	f.Add(EncodeBatch([]*jms.Message{m, small, m}))
	// Malformed seeds: short count, count exceeding payload, inflated
	// per-message length prefix, trailing garbage.
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{0, 0, 0, 9, 0, 0})
	f.Add(append(EncodeBatch([]*jms.Message{small}), 0xab))

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		reenc := EncodeBatch(msgs)
		back, err := DecodeBatch(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch: %v", err)
		}
		if len(back) != len(msgs) {
			t.Fatalf("batch count changed: %d vs %d", len(msgs), len(back))
		}
		for i := range msgs {
			if !bytes.Equal(EncodeMessage(msgs[i]), EncodeMessage(back[i])) {
				t.Fatalf("batch message %d changed across round trip", i)
			}
		}
		if again := EncodeBatch(back); !bytes.Equal(again, reenc) {
			t.Fatalf("batch encoding not a fixpoint:\n%x\n%x", reenc, again)
		}
	})
}

// FuzzDecodeMessageView holds the lazy decoder to DecodeMessage,
// byte-for-byte: for arbitrary payloads, ParseMessageView (and arena
// materialization through it) must accept exactly the payloads
// DecodeMessage accepts, and on acceptance both paths must materialize
// messages with identical canonical encodings.
func FuzzDecodeMessageView(f *testing.F) {
	m := jms.NewMessage("orders")
	_ = m.SetCorrelationID("#7")
	_ = m.SetBoolProperty("urgent", true)
	_ = m.SetInt32Property("qty", 12)
	_ = m.SetInt64Property("ts", 1<<40)
	_ = m.SetFloat64Property("price", 9.75)
	_ = m.SetStringProperty("region", "emea")
	m.SetBody([]byte("payload bytes"))
	f.Add(EncodeMessage(m))
	f.Add(EncodeMessage(jms.NewMessage("t")))
	// Malformed seeds: truncations, trailing garbage, and a property name
	// starting with a digit — distinct rejection paths the two decoders
	// must agree on.
	valid := EncodeMessage(m)
	f.Add(valid[:9])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0xff))
	var e encoder
	e.u64(0)
	e.str("t")
	e.str("")
	e.u8(1)
	e.u8(4)
	e.i64(0)
	e.i64(0)
	e.u64(0)
	e.u32(1)
	e.str("9bad")
	e.u8(uint8(jms.TypeBool))
	e.u8(1)
	e.u32(0)
	f.Add(e.buf)

	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refErr := DecodeMessage(data)
		v, viewErr := ParseMessageView(data)
		if (refErr == nil) != (viewErr == nil) {
			t.Fatalf("decoders disagree: DecodeMessage err=%v, ParseMessageView err=%v", refErr, viewErr)
		}
		arena := NewMessageArena()
		got, arenaErr := arena.DecodeMessageArena(data)
		if (refErr == nil) != (arenaErr == nil) {
			t.Fatalf("decoders disagree: DecodeMessage err=%v, DecodeMessageArena err=%v", refErr, arenaErr)
		}
		if refErr != nil {
			return
		}

		// View accessors must report the reference header.
		if v.MessageID() != ref.Header.MessageID ||
			string(v.TopicBytes()) != ref.Header.Topic ||
			string(v.CorrelationIDBytes()) != ref.Header.CorrelationID ||
			v.DeliveryMode() != ref.Header.DeliveryMode ||
			v.Priority() != ref.Header.Priority ||
			v.TraceID() != ref.Header.TraceID {
			t.Fatal("view header accessors diverge from DecodeMessage")
		}
		if !bytes.Equal(v.Body(), ref.Body) {
			t.Fatalf("view body %x diverges from DecodeMessage body %x", v.Body(), ref.Body)
		}
		// Wire order can carry duplicate names; the view counts entries,
		// the materialized map collapses them.
		if v.NumProperties() < ref.NumProperties() {
			t.Fatalf("view NumProperties %d < materialized %d", v.NumProperties(), ref.NumProperties())
		}
		var walked int
		v.EachProperty(func(PropertyView) bool { walked++; return true })
		if walked != v.NumProperties() {
			t.Fatalf("EachProperty walked %d of %d", walked, v.NumProperties())
		}

		// Both materializations must agree canonically.
		if !bytes.Equal(EncodeMessage(ref), EncodeMessage(got)) {
			t.Fatal("arena materialization diverges from DecodeMessage")
		}
		checkMessageFixpoint(t, got)
	})
}

// FuzzDecodeForward feeds arbitrary bytes through the FORWARD payload
// decoder. The contract mirrors the other decoders — reject garbage with
// an error, never panic, never over-read — plus one stronger property the
// verbatim-wrapping design makes possible: decode is a pure view, so
// re-encoding an accepted payload must reproduce the input bytes exactly.
func FuzzDecodeForward(f *testing.F) {
	m := jms.NewMessage("orders")
	_ = m.SetCorrelationID("#7")
	_ = m.SetInt32Property("qty", 12)
	m.SetBody([]byte("payload bytes"))
	small := jms.NewMessage("t")
	f.Add(AppendForward(nil, ForwardHeader{Origin: 0, Hops: 1}, EncodeMessage(m)))
	f.Add(AppendForward(nil, ForwardHeader{Origin: 2, Hops: 1, Batch: true},
		EncodeBatch([]*jms.Message{m, small})))
	f.Add(AppendForward(nil, ForwardHeader{Origin: 1, Hops: MaxForwardHops}, EncodeMessage(small)))
	// Malformed seeds: truncated header, zero and oversized hop counts,
	// unknown flag bits, missing inner payload.
	f.Add([]byte{0, 0, 0, 1, 1})
	f.Add(AppendForward(nil, ForwardHeader{Hops: 0}, []byte{1}))
	f.Add(AppendForward(nil, ForwardHeader{Hops: MaxForwardHops + 1}, []byte{1}))
	f.Add([]byte{0, 0, 0, 0, 1, 0x80, 1})
	f.Add(AppendForward(nil, ForwardHeader{Hops: 1}, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, inner, err := DecodeForward(data)
		if err != nil {
			return
		}
		if h.Hops == 0 || h.Hops > MaxForwardHops {
			t.Fatalf("accepted hop count %d outside [1,%d]", h.Hops, MaxForwardHops)
		}
		if len(inner) == 0 {
			t.Fatal("accepted a forward with no inner payload")
		}
		if reenc := AppendForward(nil, h, inner); !bytes.Equal(reenc, data) {
			t.Fatalf("forward re-encode changed bytes:\n%x\n%x", data, reenc)
		}
		// The inner bytes feed the same decoders the server applies; they
		// must reject-or-accept cleanly, never panic.
		if h.Batch {
			_, _ = DecodeBatch(inner)
		} else {
			_, _ = DecodeMessage(inner)
		}
	})
}

// checkMessageFixpoint asserts that encoding a decoded message is a
// fixpoint: properties are canonically ordered (sorted names), so the
// second encoding must be byte-identical to the first.
func checkMessageFixpoint(t *testing.T, m *jms.Message) {
	t.Helper()
	enc1 := EncodeMessage(m)
	m2, err := DecodeMessage(enc1)
	if err != nil {
		t.Fatalf("re-decode of re-encoded message: %v", err)
	}
	enc2 := EncodeMessage(m2)
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("message encoding not a fixpoint:\n%x\n%x", enc1, enc2)
	}
}
