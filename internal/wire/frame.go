// Package wire implements the broker's TCP wire protocol: length-prefixed
// binary frames carrying publishes, subscriptions, deliveries and the credit
// grants that implement publisher push-back over the network.
//
// Frame layout:
//
//	uint32  big-endian payload length (excluding the 5-byte prologue)
//	uint8   frame type
//	[]byte  payload
//
// The payload encoding uses big-endian fixed-width integers and
// length-prefixed strings/bytes (see codec.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
)

// FrameType identifies the purpose of a frame.
type FrameType uint8

// Frame types.
const (
	// FramePublish carries a message from publisher to broker.
	FramePublish FrameType = iota + 1
	// FramePubAck acknowledges a publish (push-back window release).
	FramePubAck
	// FrameSubscribe installs a subscription (topic + filter spec).
	FrameSubscribe
	// FrameSubscribeOK returns the subscription ID.
	FrameSubscribeOK
	// FrameUnsubscribe removes a subscription.
	FrameUnsubscribe
	// FrameUnsubscribeOK confirms removal.
	FrameUnsubscribeOK
	// FrameMessage delivers a message replica to a subscriber.
	FrameMessage
	// FrameError reports a request failure.
	FrameError
	// FramePing and FramePong are liveness probes.
	FramePing
	// FramePong answers a ping.
	FramePong
	// FrameConfigureTopic creates a topic on the broker.
	FrameConfigureTopic
	// FrameConfigureTopicOK confirms topic creation.
	FrameConfigureTopicOK
	// FrameDeleteDurable deletes a named durable subscription.
	FrameDeleteDurable
	// FrameDeleteDurableOK confirms the deletion.
	FrameDeleteDurableOK
	// FrameMsgAck acknowledges one delivery of an acked subscription
	// (subscription id + delivery sequence). Fire-and-forget: it carries
	// no request ID and has no reply.
	FrameMsgAck
	// FrameBatch carries several publishes coalesced into one frame:
	// a message count followed by length-prefixed message encodings (see
	// batch.go). The broker answers the whole batch with a single PUB_ACK,
	// so one push-back round trip amortizes over every message in it.
	FrameBatch
	// FrameSubClosed notifies a subscriber that the broker ended its
	// subscription server-side (payload: subscription id u64, reason str).
	// Unsolicited — it carries no request ID and has no reply. Sent today
	// when a slow-consumer disconnect policy kicks the subscription.
	FrameSubClosed
	// FrameForward carries a publish replicated between mesh peers. The
	// payload is a request ID (u64, like every request frame) and a fixed
	// routing header (origin member u32, hop count u8, flags u8) followed
	// verbatim by the original message or batch body (flag bit 0
	// distinguishes them), so forwarding never re-encodes the message
	// bytes. A broker publishes a FORWARD locally but never re-forwards
	// it — structural loop suppression, no hop accounting on the hot
	// path. Like PUBLISH it is answered with PUB_ACK.
	FrameForward
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FramePublish:
		return "PUBLISH"
	case FramePubAck:
		return "PUB_ACK"
	case FrameSubscribe:
		return "SUBSCRIBE"
	case FrameSubscribeOK:
		return "SUBSCRIBE_OK"
	case FrameUnsubscribe:
		return "UNSUBSCRIBE"
	case FrameUnsubscribeOK:
		return "UNSUBSCRIBE_OK"
	case FrameMessage:
		return "MESSAGE"
	case FrameError:
		return "ERROR"
	case FramePing:
		return "PING"
	case FramePong:
		return "PONG"
	case FrameConfigureTopic:
		return "CONFIGURE_TOPIC"
	case FrameConfigureTopicOK:
		return "CONFIGURE_TOPIC_OK"
	case FrameDeleteDurable:
		return "DELETE_DURABLE"
	case FrameDeleteDurableOK:
		return "DELETE_DURABLE_OK"
	case FrameMsgAck:
		return "MSG_ACK"
	case FrameBatch:
		return "MSG_BATCH"
	case FrameSubClosed:
		return "SUB_CLOSED"
	case FrameForward:
		return "FORWARD"
	default:
		return "FrameType(" + strconv.Itoa(int(t)) + ")"
	}
}

// MaxFrameSize bounds a frame payload to guard against corrupt peers.
const MaxFrameSize = 16 << 20

// Errors of the framing layer.
var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncated is returned when a payload is shorter than its fields.
	ErrTruncated = errors.New("wire: truncated payload")
)

// Frame is a decoded protocol frame.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// WriteFrame writes one frame to w with a single Write call: prologue and
// payload are coalesced into one pooled buffer (small frames) or a vectored
// net.Buffers write (frames too large to pool), so the plain per-frame path
// used by the client and bridges costs one syscall per frame, not two.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(f.Payload)))
	hdr[4] = byte(f.Type)
	if len(f.Payload) == 0 {
		if _, err := w.Write(hdr[:]); err != nil {
			return fmt.Errorf("wire: write header: %w", err)
		}
		return nil
	}
	if len(f.Payload) > maxPooledBuffer {
		// Too big to stage through the pool: vectored write. On *net.TCPConn
		// this is one writev syscall; other writers degrade to two Writes.
		bufs := net.Buffers{hdr[:], f.Payload}
		if _, err := bufs.WriteTo(w); err != nil {
			return fmt.Errorf("wire: write frame: %w", err)
		}
		return nil
	}
	bp := GetBuffer()
	buf := append(append((*bp)[:0], hdr[:]...), f.Payload...)
	_, err := w.Write(buf)
	*bp = buf
	PutBuffer(bp)
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	f := Frame{Type: FrameType(hdr[4])}
	if size > 0 {
		f.Payload = make([]byte, size)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("wire: read payload: %w", err)
		}
	}
	return f, nil
}
