package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
)

func TestForwardCodecRoundTrip(t *testing.T) {
	m := jms.NewMessage("t")
	_ = m.SetCorrelationID("#3")
	m.SetBody([]byte("hello"))
	inner := EncodeMessage(m)

	for _, h := range []ForwardHeader{
		{Origin: 0, Hops: 1},
		{Origin: 7, Hops: 1, Batch: true},
		{Origin: 1<<32 - 1, Hops: MaxForwardHops},
	} {
		payload := AppendForward(nil, h, inner)
		got, gotInner, err := DecodeForward(payload)
		if err != nil {
			t.Fatalf("DecodeForward(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("header = %+v, want %+v", got, h)
		}
		if !bytes.Equal(gotInner, inner) {
			t.Fatal("inner bytes changed")
		}
	}

	// EncodeForward prepends the request ID the raw form omits.
	full := EncodeForward(42, ForwardHeader{Origin: 3, Hops: 1}, inner)
	if got := binary.BigEndian.Uint64(full[:8]); got != 42 {
		t.Fatalf("reqID = %d", got)
	}
	if !bytes.Equal(full[8:], AppendForward(nil, ForwardHeader{Origin: 3, Hops: 1}, inner)) {
		t.Fatal("EncodeForward body diverges from AppendForward")
	}
}

func TestForwardDecodeErrors(t *testing.T) {
	inner := []byte{1}
	cases := map[string][]byte{
		"truncated header": {0, 0, 0, 1, 1},
		"zero hops":        AppendForward(nil, ForwardHeader{Hops: 0}, inner),
		"excess hops":      AppendForward(nil, ForwardHeader{Hops: MaxForwardHops + 1}, inner),
		"unknown flags":    {0, 0, 0, 0, 1, 0x80, 1},
		"empty inner":      AppendForward(nil, ForwardHeader{Hops: 1}, nil),
	}
	for name, payload := range cases {
		if _, _, err := DecodeForward(payload); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// recordingForwarder captures ingress-hook invocations and vetoes the
// local publish when local is false.
type recordingForwarder struct {
	publishes atomic.Uint64
	batches   atomic.Uint64
	local     atomic.Bool
	fail      atomic.Bool
}

func (f *recordingForwarder) ForwardPublish(m *jms.Message, raw []byte) (bool, error) {
	f.publishes.Add(1)
	if f.fail.Load() {
		return false, errors.New("forward path down")
	}
	return f.local.Load(), nil
}

func (f *recordingForwarder) ForwardBatch(msgs []*jms.Message, raw []byte) (bool, error) {
	f.batches.Add(1)
	if f.fail.Load() {
		return false, errors.New("forward path down")
	}
	return f.local.Load(), nil
}

func startForwardServer(t *testing.T, fw Forwarder) (*rawConn, *broker.Broker, *Server) {
	t.Helper()
	b := broker.New(broker.Options{})
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(b, ln, ServeOptions{Forwarder: fw})
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return &rawConn{t: t, conn: conn}, b, srv
}

// TestServerForwardRaw drives the FORWARD frame path: a forwarded publish
// and a forwarded batch must be applied to the local broker (delivered to
// a live subscriber, counted by ForwardsIn) without ever reaching the
// configured Forwarder — the loop-suppression contract.
func TestServerForwardRaw(t *testing.T) {
	fw := &recordingForwarder{}
	fw.local.Store(true)
	rc, _, srv := startForwardServer(t, fw)

	reqID := rc.request(FrameSubscribe, EncodeSubscribe("t", FilterSpec{Mode: FilterNone}))
	ok := rc.read()
	if ok.Type != FrameSubscribeOK || binary.BigEndian.Uint64(ok.Payload) != reqID {
		t.Fatalf("frame = %v", ok.Type)
	}

	m := jms.NewMessage("t")
	m.SetBody([]byte("forwarded"))
	fwdReq := rc.request(FrameForward,
		AppendForward(nil, ForwardHeader{Origin: 1, Hops: 1}, EncodeMessage(m)))

	m2 := jms.NewMessage("t")
	m2.SetBody([]byte("batched"))
	batchReq := rc.request(FrameForward,
		AppendForward(nil, ForwardHeader{Origin: 1, Hops: 1, Batch: true},
			EncodeBatch([]*jms.Message{m2})))

	acks, deliveries := 0, 0
	for i := 0; i < 4; i++ {
		f := rc.read()
		switch f.Type {
		case FramePubAck:
			if id := binary.BigEndian.Uint64(f.Payload); id != fwdReq && id != batchReq {
				t.Fatalf("ack for unknown request %d", id)
			}
			acks++
		case FrameMessage:
			deliveries++
		default:
			t.Fatalf("unexpected frame %v", f.Type)
		}
	}
	if acks != 2 || deliveries != 2 {
		t.Fatalf("acks=%d deliveries=%d, want 2/2", acks, deliveries)
	}
	if got := srv.ForwardsIn(); got != 2 {
		t.Fatalf("ForwardsIn = %d, want 2", got)
	}
	if fw.publishes.Load() != 0 || fw.batches.Load() != 0 {
		t.Fatal("FORWARD frames leaked into the Forwarder hook")
	}

	// A malformed forward (hop count out of range) drops the connection.
	rc.request(FrameForward, AppendForward(nil, ForwardHeader{Hops: 0}, EncodeMessage(m)))
	if _, err := ReadFrame(rc.conn); err == nil {
		t.Fatal("want connection drop on malformed forward")
	}
}

// TestServerForwarderHook exercises the client-publish ingress hook: the
// forwarder sees every PUBLISH and BATCH, its local veto suppresses the
// broker publish while still acking, and its error rejects the publish.
func TestServerForwarderHook(t *testing.T) {
	fw := &recordingForwarder{}
	fw.local.Store(true)
	rc, b, _ := startForwardServer(t, fw)

	m := jms.NewMessage("t")
	m.SetBody([]byte("x"))

	expectAck := func(reqID uint64) {
		t.Helper()
		f := rc.read()
		if f.Type != FramePubAck || binary.BigEndian.Uint64(f.Payload) != reqID {
			t.Fatalf("frame = %v, want PUB_ACK for %d", f.Type, reqID)
		}
	}

	// local=true: hook sees it, broker publishes it.
	expectAck(rc.request(FramePublish, EncodeMessage(m)))
	expectAck(rc.request(FrameBatch, EncodeBatch([]*jms.Message{m})))
	if fw.publishes.Load() != 1 || fw.batches.Load() != 1 {
		t.Fatalf("hook calls = %d/%d, want 1/1", fw.publishes.Load(), fw.batches.Load())
	}
	if got := b.Stats().Received; got != 2 {
		t.Fatalf("broker received %d, want 2", got)
	}

	// local=false: acked but not published locally.
	fw.local.Store(false)
	expectAck(rc.request(FramePublish, EncodeMessage(m)))
	expectAck(rc.request(FrameBatch, EncodeBatch([]*jms.Message{m})))
	if got := b.Stats().Received; got != 2 {
		t.Fatalf("vetoed publish reached the broker: received %d", got)
	}

	// error: the publish is rejected with an ERROR frame.
	fw.fail.Store(true)
	rc.expectError(rc.request(FramePublish, EncodeMessage(m)))
	rc.expectError(rc.request(FrameBatch, EncodeBatch([]*jms.Message{m})))
	if got := b.Stats().Received; got != 2 {
		t.Fatalf("failed publish reached the broker: received %d", got)
	}
}
