package wire

import (
	"testing"

	"repro/internal/jms"
)

func TestPubDedupRecord(t *testing.T) {
	var pd pubDedup
	if !pd.record("a", 1) {
		t.Fatal("first (a,1) classified duplicate")
	}
	if pd.record("a", 1) {
		t.Fatal("second (a,1) classified new")
	}
	if !pd.record("a", 2) {
		t.Fatal("(a,2) classified duplicate")
	}
	if !pd.record("b", 1) {
		t.Fatal("(b,1) classified duplicate: publishers must be independent")
	}
	// Out-of-order within the window is fine.
	if !pd.record("a", 100) || !pd.record("a", 50) {
		t.Fatal("out-of-order sequences within the window rejected")
	}
	// Sequences that fell out of the window are duplicates by definition.
	if !pd.record("a", pubDedupWindow+1000) {
		t.Fatal("advancing the window failed")
	}
	if pd.record("a", 3) {
		t.Fatal("ancient sequence classified new after the window advanced")
	}
}

func TestPubDedupUnrecord(t *testing.T) {
	var pd pubDedup
	if !pd.record("a", 1) {
		t.Fatal("first (a,1) classified duplicate")
	}
	// A failed publish releases its claim; the retry is new again.
	pd.unrecord("a", 1)
	if !pd.record("a", 1) {
		t.Fatal("(a,1) still classified duplicate after unrecord")
	}
	if pd.record("a", 1) {
		t.Fatal("re-recorded (a,1) classified new")
	}
	// Unrecording unknown pairs is a no-op, not a panic.
	pd.unrecord("a", 99)
	pd.unrecord("nobody", 1)
}

func TestPubIdentity(t *testing.T) {
	m := jms.NewMessage("t")
	if _, _, ok := pubIdentity(m); ok {
		t.Fatal("unstamped message has an identity")
	}
	if err := m.SetStringProperty(PubIDProperty, "pub-1"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pubIdentity(m); ok {
		t.Fatal("identity without sequence accepted")
	}
	if err := m.SetInt64Property(PubSeqProperty, 7); err != nil {
		t.Fatal(err)
	}
	pub, seq, ok := pubIdentity(m)
	if !ok || pub != "pub-1" || seq != 7 {
		t.Fatalf("pubIdentity = %q, %d, %v", pub, seq, ok)
	}
}
