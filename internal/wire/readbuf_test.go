package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/jms"
)

// chunkReader yields at most chunk bytes per Read, forcing the FrameReader
// to refill mid-prologue and mid-payload.
type chunkReader struct {
	data  []byte
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data) {
		n = len(c.data)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// testFrameStream encodes a mixed stream: empty-payload control frames,
// small publishes, and one frame larger than maxPooledBuffer to force the
// window to grow and shrink back.
func testFrameStream(t testing.TB) ([]Frame, []byte) {
	t.Helper()
	big := jms.NewMessage("t")
	big.SetBody(bytes.Repeat([]byte{0xcd}, maxPooledBuffer+512))
	small := jms.NewMessage("t")
	small.SetBody([]byte("hello"))
	frames := []Frame{
		{Type: FramePing},
		{Type: FramePublish, Payload: EncodeMessage(small)},
		{Type: FramePubAck, Payload: EncodeU64(1)},
		{Type: FramePublish, Payload: EncodeMessage(big)},
		{Type: FramePublish, Payload: EncodeMessage(small)},
		{Type: FramePing},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return frames, buf.Bytes()
}

// TestFrameReaderDifferential reads the same byte stream through ReadFrame
// and through a FrameReader at several refill granularities; the two must
// yield identical frame sequences, and the reader must end on clean io.EOF.
func TestFrameReaderDifferential(t *testing.T) {
	want, stream := testFrameStream(t)
	for _, chunk := range []int{1, 3, 7, 4096, len(stream)} {
		fr := NewFrameReader(&chunkReader{data: stream, chunk: chunk})
		ref := bytes.NewReader(stream)
		for i := range want {
			refFrame, err := ReadFrame(ref)
			if err != nil {
				t.Fatalf("chunk %d frame %d: ReadFrame: %v", chunk, i, err)
			}
			got, err := fr.Next()
			if err != nil {
				t.Fatalf("chunk %d frame %d: Next: %v", chunk, i, err)
			}
			if got.Type != refFrame.Type || !bytes.Equal(got.Payload, refFrame.Payload) {
				t.Fatalf("chunk %d frame %d: differs from ReadFrame", chunk, i)
			}
		}
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("chunk %d: end of stream err = %v, want io.EOF", chunk, err)
		}
		reads, bytesRead := fr.Stats()
		if bytesRead != uint64(len(stream)) {
			t.Errorf("chunk %d: bytesRead = %d, want %d", chunk, bytesRead, len(stream))
		}
		if reads == 0 {
			t.Errorf("chunk %d: reads = 0", chunk)
		}
	}
}

// TestFrameReaderShrinksAfterBigFrame: consuming a frame larger than
// maxPooledBuffer must not pin the grown window for the connection's
// lifetime.
func TestFrameReaderShrinksAfterBigFrame(t *testing.T) {
	_, stream := testFrameStream(t)
	fr := NewFrameReader(&chunkReader{data: stream, chunk: 4096})
	for {
		if _, err := fr.Next(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
	}
	if len(fr.buf) > maxPooledBuffer {
		t.Errorf("window still %d bytes after big frame, want <= %d", len(fr.buf), maxPooledBuffer)
	}
}

// TestFrameReaderCoalescesReads: over a buffered source, many small frames
// should cost far fewer Read calls than frames — the syscall-batching the
// sliding window exists for.
func TestFrameReaderCoalescesReads(t *testing.T) {
	var buf bytes.Buffer
	const n = 100
	for i := 0; i < n; i++ {
		if err := WriteFrame(&buf, Frame{Type: FramePubAck, Payload: EncodeU64(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	for i := 0; i < n; i++ {
		if _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if reads, _ := fr.Stats(); reads >= n {
		t.Errorf("reads = %d for %d frames; window is not coalescing", reads, n)
	}
}

// TestFrameReaderErrors pins the error classes to ReadFrame's: clean close
// at a frame boundary is io.EOF, close mid-frame is io.ErrUnexpectedEOF,
// an oversized length prefix is ErrFrameTooLarge.
func TestFrameReaderErrors(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, Frame{Type: FramePublish, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	frame := full.Bytes()
	oversize := []byte{0xff, 0xff, 0xff, 0xff, byte(FramePublish)}

	cases := []struct {
		name   string
		stream []byte
		want   error
	}{
		{"empty stream", nil, io.EOF},
		{"partial prologue", frame[:3], io.ErrUnexpectedEOF},
		{"prologue only", frame[:5], io.ErrUnexpectedEOF},
		{"partial payload", frame[:8], io.ErrUnexpectedEOF},
		{"oversized length", oversize, ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewFrameReader(bytes.NewReader(tc.stream))
			_, err := fr.Next()
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			// ReadFrame must reject the same stream within the framing
			// layer's declared error classes (it reports a zero-byte payload
			// read as io.EOF where the FrameReader says io.ErrUnexpectedEOF).
			_, refErr := ReadFrame(bytes.NewReader(tc.stream))
			if !errors.Is(refErr, io.EOF) && !errors.Is(refErr, io.ErrUnexpectedEOF) &&
				!errors.Is(refErr, ErrFrameTooLarge) {
				t.Errorf("ReadFrame err = %v, not a framing error class", refErr)
			}
		})
	}
}

// countingWriter counts Write calls, standing in for a socket where each
// call is one syscall.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestWriteFrameSingleWrite: a frame whose payload fits the pooled-buffer
// bound must reach the connection in exactly one Write call — prologue and
// payload coalesced — and an empty-payload frame likewise. Only frames too
// large to stage in a pooled buffer may split (into a vectored pair).
func TestWriteFrameSingleWrite(t *testing.T) {
	cases := []struct {
		name      string
		frame     Frame
		maxWrites int
	}{
		{"empty payload", Frame{Type: FramePing}, 1},
		{"small payload", Frame{Type: FramePublish, Payload: []byte("hello")}, 1},
		{"pooled bound", Frame{Type: FramePublish, Payload: make([]byte, maxPooledBuffer)}, 1},
		{"oversized", Frame{Type: FramePublish, Payload: make([]byte, maxPooledBuffer+1)}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w countingWriter
			if err := WriteFrame(&w, tc.frame); err != nil {
				t.Fatal(err)
			}
			if w.writes > tc.maxWrites {
				t.Errorf("WriteFrame made %d Write calls, want <= %d", w.writes, tc.maxWrites)
			}
			back, err := ReadFrame(bytes.NewReader(w.buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if back.Type != tc.frame.Type || !bytes.Equal(back.Payload, tc.frame.Payload) {
				t.Error("frame did not round-trip through WriteFrame")
			}
		})
	}
}
