package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// frameReaderInitial is the starting capacity of a FrameReader's window.
// The window grows on demand up to the size of the largest in-flight frame
// and shrinks back to maxPooledBuffer once an oversized frame has been
// consumed, mirroring the PutBuffer retention policy in codec.go.
const frameReaderInitial = 4 << 10

// FrameReader reads frames from a connection through a sliding receive
// window, so the steady state costs zero allocations per frame and a single
// Read call typically yields several frames.
//
// Ownership contract: the Payload of a returned Frame is a view into the
// reader's internal buffer and is valid only until the next call to Next.
// Callers that need the bytes longer must copy them (or, on the server
// ingress path, materialize them through a MessageArena).
type FrameReader struct {
	r          io.Reader
	buf        []byte
	start, end int

	// reads and bytesRead count Read calls and bytes consumed from the
	// underlying connection — the observable t_rcv syscall cost that the
	// telemetry plane exports and internal/fit consumes.
	reads     uint64
	bytesRead uint64
}

// NewFrameReader returns a FrameReader buffering reads from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, frameReaderInitial)}
}

// Stats reports the cumulative Read-call and byte counts.
func (fr *FrameReader) Stats() (reads, bytesRead uint64) {
	return fr.reads, fr.bytesRead
}

func (fr *FrameReader) buffered() int { return fr.end - fr.start }

// fill makes at least n contiguous bytes available at fr.start, compacting
// or growing the window as needed. It reports io.EOF only on a clean close
// with nothing buffered; a close mid-bytes is io.ErrUnexpectedEOF, matching
// io.ReadFull semantics so FrameReader errors are interchangeable with
// ReadFrame's.
func (fr *FrameReader) fill(n int) error {
	if fr.buffered() >= n {
		return nil
	}
	if fr.start+n > len(fr.buf) {
		if n > len(fr.buf) {
			grown := len(fr.buf) * 2
			if grown < n {
				grown = n
			}
			nb := make([]byte, grown)
			copy(nb, fr.buf[fr.start:fr.end])
			fr.buf = nb
		} else {
			copy(fr.buf, fr.buf[fr.start:fr.end])
		}
		fr.end -= fr.start
		fr.start = 0
	}
	var stalls int
	for fr.buffered() < n {
		m, err := fr.r.Read(fr.buf[fr.end:])
		fr.end += m
		fr.bytesRead += uint64(m)
		fr.reads++
		if err != nil {
			if err == io.EOF && fr.buffered() > 0 {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if m == 0 {
			if stalls++; stalls >= 100 {
				return io.ErrNoProgress
			}
		} else {
			stalls = 0
		}
	}
	return nil
}

// Next returns the next frame. The returned Payload is valid only until the
// following Next call; see the FrameReader ownership contract.
func (fr *FrameReader) Next() (Frame, error) {
	if len(fr.buf) > maxPooledBuffer && fr.buffered() <= maxPooledBuffer {
		// An oversized frame grew the window; release it so a single huge
		// frame doesn't pin memory for the connection's lifetime.
		nb := make([]byte, maxPooledBuffer)
		copy(nb, fr.buf[fr.start:fr.end])
		fr.buf, fr.end, fr.start = nb, fr.buffered(), 0
	}
	if err := fr.fill(5); err != nil {
		return Frame{}, err
	}
	hdr := fr.buf[fr.start : fr.start+5]
	size := binary.BigEndian.Uint32(hdr[:4])
	if size > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	f := Frame{Type: FrameType(hdr[4])}
	fr.start += 5
	if size == 0 {
		return f, nil
	}
	if err := fr.fill(int(size)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("wire: read payload: %w", err)
	}
	f.Payload = fr.buf[fr.start : fr.start+int(size) : fr.start+int(size)]
	fr.start += int(size)
	return f, nil
}
