package wire

import (
	"fmt"

	"repro/internal/jms"
)

// This file implements the mesh forwarding path: the FORWARD frame codec
// and the Forwarder ingress hook the replication layer (internal/cluster)
// plugs into the wire server. A FORWARD frame wraps the original publish
// bytes verbatim behind a six-byte routing header, so replicating a
// message to a peer costs one header append and no re-encode; the peer
// publishes it locally and never re-forwards (structural loop
// suppression — the mesh graph is a single-hop star per publish, so no
// TTL bookkeeping is needed on the hot path).

// forwardBatchFlag marks the inner payload as a BATCH body (message count
// + length-prefixed messages) rather than a single message encoding.
const forwardBatchFlag = 1 << 0

// forwardHeaderSize is the fixed routing header: origin u32, hops u8,
// flags u8.
const forwardHeaderSize = 6

// MaxForwardHops bounds the hop counter a decoder accepts. The mesh only
// ever emits hops=1 today (forwards are never re-forwarded), but the
// header reserves room for relayed topologies; anything past this is a
// corrupt or hostile frame.
const MaxForwardHops = 8

// ForwardHeader is the routing header of a FORWARD frame.
type ForwardHeader struct {
	// Origin is the mesh index of the member the publish entered at.
	Origin uint32
	// Hops counts forwarding legs; the emitting side sets 1.
	Hops uint8
	// Batch marks the inner payload as a BATCH body.
	Batch bool
}

// AppendForward appends a FORWARD payload body (routing header + inner
// bytes verbatim) to buf and returns the extended slice. The caller
// prepends the request ID; inner is the original PUBLISH or BATCH payload
// after its own request ID.
func AppendForward(buf []byte, h ForwardHeader, inner []byte) []byte {
	e := encoder{buf: buf}
	e.u32(h.Origin)
	e.u8(h.Hops)
	var flags uint8
	if h.Batch {
		flags |= forwardBatchFlag
	}
	e.u8(flags)
	e.buf = append(e.buf, inner...)
	return e.buf
}

// EncodeForward builds a complete FORWARD payload: request id u64, routing
// header, inner bytes verbatim.
func EncodeForward(reqID uint64, h ForwardHeader, inner []byte) []byte {
	buf := make([]byte, 0, 8+forwardHeaderSize+len(inner))
	e := encoder{buf: buf}
	e.u64(reqID)
	return AppendForward(e.buf, h, inner)
}

// DecodeForward parses a FORWARD payload body (after the request ID) into
// its routing header and the inner publish bytes. The inner slice views
// the input; it is only valid as long as payload is.
func DecodeForward(payload []byte) (ForwardHeader, []byte, error) {
	d := decoder{buf: payload}
	var h ForwardHeader
	origin, err := d.u32()
	if err != nil {
		return ForwardHeader{}, nil, err
	}
	h.Origin = origin
	hops, err := d.u8()
	if err != nil {
		return ForwardHeader{}, nil, err
	}
	if hops == 0 || hops > MaxForwardHops {
		return ForwardHeader{}, nil, fmt.Errorf("wire: forward hop count %d out of range [1,%d]", hops, MaxForwardHops)
	}
	h.Hops = hops
	flags, err := d.u8()
	if err != nil {
		return ForwardHeader{}, nil, err
	}
	if flags&^forwardBatchFlag != 0 {
		return ForwardHeader{}, nil, fmt.Errorf("wire: unknown forward flags %#x", flags)
	}
	h.Batch = flags&forwardBatchFlag != 0
	inner := payload[d.off:]
	if len(inner) == 0 {
		return ForwardHeader{}, nil, fmt.Errorf("%w: forward carries no message", ErrTruncated)
	}
	return h, inner, nil
}

// Forwarder replicates client publishes to mesh peers. The wire server
// consults it at PUBLISH/BATCH ingress — after decoding, before the local
// broker publish — with both the decoded messages and the raw payload
// bytes (after the request ID), so a forwarding implementation can
// re-encapsulate without re-encoding. The raw slice views the
// connection's read window and is only valid for the duration of the
// call; an asynchronous forwarder must copy it.
//
// The returned local flag selects whether the message is also published
// on this broker (false for the hash topology's non-owner entry broker).
// A returned error rejects the publish: the client sees an ERROR frame
// and nothing is published locally. Best-effort forwarders (SSR flood)
// swallow per-peer failures and report them through their own counters
// instead.
//
// FORWARD frames themselves never reach the Forwarder: a forwarded
// publish is applied locally only, which suppresses forwarding loops
// structurally.
type Forwarder interface {
	// ForwardPublish handles one client publish. raw is the encoded
	// message body.
	ForwardPublish(m *jms.Message, raw []byte) (local bool, err error)
	// ForwardBatch handles one client batch publish. raw is the encoded
	// BATCH body (count + length-prefixed messages).
	ForwardBatch(msgs []*jms.Message, raw []byte) (local bool, err error)
}
