package wire

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/jms"
)

// richMessage returns a message exercising every header field and property
// type, the densest case the view parser handles.
func richMessage(t testing.TB) *jms.Message {
	t.Helper()
	m := jms.NewMessage("orders")
	m.Header.MessageID = 424242
	m.Header.TraceID = 777
	if err := m.SetCorrelationID("#42"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetBoolProperty("urgent", true); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt32Property("qty", -12); err != nil {
		t.Fatal(err)
	}
	if err := m.SetInt64Property("ts", 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := m.SetFloat64Property("price", 9.75); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStringProperty("region", "emea"); err != nil {
		t.Fatal(err)
	}
	m.SetBody([]byte("payload bytes"))
	return m
}

func TestMessageViewAccessors(t *testing.T) {
	m := richMessage(t)
	payload := EncodeMessage(m)
	v, err := ParseMessageView(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v.MessageID() != m.Header.MessageID {
		t.Errorf("MessageID = %d, want %d", v.MessageID(), m.Header.MessageID)
	}
	if got := string(v.TopicBytes()); got != m.Header.Topic {
		t.Errorf("Topic = %q, want %q", got, m.Header.Topic)
	}
	if got := string(v.CorrelationIDBytes()); got != m.Header.CorrelationID {
		t.Errorf("CorrelationID = %q, want %q", got, m.Header.CorrelationID)
	}
	if v.DeliveryMode() != m.Header.DeliveryMode {
		t.Errorf("DeliveryMode = %v, want %v", v.DeliveryMode(), m.Header.DeliveryMode)
	}
	if v.Priority() != m.Header.Priority {
		t.Errorf("Priority = %d, want %d", v.Priority(), m.Header.Priority)
	}
	if v.TraceID() != m.Header.TraceID {
		t.Errorf("TraceID = %d, want %d", v.TraceID(), m.Header.TraceID)
	}
	if v.TimestampNanos() != 0 || v.ExpirationNanos() != 0 {
		t.Errorf("unset times = (%d, %d), want (0, 0)", v.TimestampNanos(), v.ExpirationNanos())
	}
	if v.NumProperties() != m.NumProperties() {
		t.Errorf("NumProperties = %d, want %d", v.NumProperties(), m.NumProperties())
	}
	if !bytes.Equal(v.Body(), m.Body) {
		t.Errorf("Body = %q, want %q", v.Body(), m.Body)
	}

	// Every property yielded by the walk must match the materialized map.
	var walked int
	v.EachProperty(func(p PropertyView) bool {
		walked++
		got, ok := m.Property(string(p.Name))
		if !ok {
			t.Errorf("EachProperty yielded unknown name %q", p.Name)
			return true
		}
		if got.Type != p.Type {
			t.Errorf("property %q type = %v, want %v", p.Name, p.Type, got.Type)
		}
		switch p.Type {
		case jms.TypeBool:
			if got.B != p.Bool {
				t.Errorf("property %q = %v, want %v", p.Name, p.Bool, got.B)
			}
		case jms.TypeInt32, jms.TypeInt64:
			if got.I != p.Int {
				t.Errorf("property %q = %d, want %d", p.Name, p.Int, got.I)
			}
		case jms.TypeFloat64:
			if got.F != p.F {
				t.Errorf("property %q = %v, want %v", p.Name, p.F, got.F)
			}
		case jms.TypeString:
			if got.S != string(p.Str) {
				t.Errorf("property %q = %q, want %q", p.Name, p.Str, got.S)
			}
		}
		return true
	})
	if walked != v.NumProperties() {
		t.Errorf("EachProperty walked %d, want %d", walked, v.NumProperties())
	}
}

// TestDecodeMessageArenaParity holds the arena decoder to DecodeMessage's
// output: for a spread of messages, both paths must materialize messages
// whose canonical encodings are byte-identical.
func TestDecodeMessageArenaParity(t *testing.T) {
	empty := jms.NewMessage("t")
	bodied := jms.NewMessage("t")
	bodied.SetBody(bytes.Repeat([]byte{0xab}, 300))
	cases := []*jms.Message{richMessage(t), empty, bodied}
	arena := NewMessageArena()
	for i, m := range cases {
		payload := EncodeMessage(m)
		ref, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("case %d: DecodeMessage: %v", i, err)
		}
		got, err := arena.DecodeMessageArena(payload)
		if err != nil {
			t.Fatalf("case %d: DecodeMessageArena: %v", i, err)
		}
		if !bytes.Equal(EncodeMessage(ref), EncodeMessage(got)) {
			t.Errorf("case %d: arena decode diverges from DecodeMessage", i)
		}
	}
}

func TestAppendBatchMessagesParity(t *testing.T) {
	small := jms.NewMessage("t")
	batches := [][]*jms.Message{
		nil,
		{small},
		{richMessage(t), small, richMessage(t)},
	}
	arena := NewMessageArena()
	var dst []*jms.Message
	for i, batch := range batches {
		payload := EncodeBatch(batch)
		ref, err := DecodeBatch(payload)
		if err != nil {
			t.Fatalf("batch %d: DecodeBatch: %v", i, err)
		}
		dst, err = arena.AppendBatchMessages(dst[:0], payload)
		if err != nil {
			t.Fatalf("batch %d: AppendBatchMessages: %v", i, err)
		}
		if len(dst) != len(ref) {
			t.Fatalf("batch %d: got %d messages, want %d", i, len(dst), len(ref))
		}
		for j := range ref {
			if !bytes.Equal(EncodeMessage(ref[j]), EncodeMessage(dst[j])) {
				t.Errorf("batch %d message %d: arena decode diverges", i, j)
			}
		}
	}
}

func TestDecodeDeliveryArenaParity(t *testing.T) {
	m := richMessage(t)
	payload := EncodeDelivery(3, 41, m)
	arena := NewMessageArena()
	subID, seq, got, err := arena.DecodeDeliveryArena(payload)
	if err != nil {
		t.Fatal(err)
	}
	if subID != 3 || seq != 41 {
		t.Errorf("ids = (%d, %d), want (3, 41)", subID, seq)
	}
	if !bytes.Equal(EncodeMessage(m), EncodeMessage(got)) {
		t.Error("delivery message diverges from original")
	}
}

// TestMessageViewRejects feeds malformed payloads to both decoders: the
// view parser must reject exactly what DecodeMessage rejects.
func TestMessageViewRejects(t *testing.T) {
	valid := EncodeMessage(richMessage(t))

	longCorr := jms.NewMessage("t")
	longCorrPayload := func() []byte {
		// Hand-encode a correlation ID one byte over the limit; the setter
		// would refuse to build it.
		var e encoder
		e.u64(0)
		e.str("t")
		e.str(string(bytes.Repeat([]byte{'x'}, jms.MaxCorrelationIDLen+1)))
		e.u8(uint8(longCorr.Header.DeliveryMode))
		e.u8(4)
		e.i64(0)
		e.i64(0)
		e.u64(0)
		e.u32(0)
		e.u32(0)
		return e.buf
	}()

	badName := func() []byte {
		var e encoder
		e.u64(0)
		e.str("t")
		e.str("")
		e.u8(1)
		e.u8(4)
		e.i64(0)
		e.i64(0)
		e.u64(0)
		e.u32(1)
		e.str("9bad") // property names cannot start with a digit
		e.u8(uint8(jms.TypeBool))
		e.u8(1)
		e.u32(0)
		return e.buf
	}()

	badType := func() []byte {
		var e encoder
		e.u64(0)
		e.str("t")
		e.str("")
		e.u8(1)
		e.u8(4)
		e.i64(0)
		e.i64(0)
		e.u64(0)
		e.u32(1)
		e.str("ok")
		e.u8(99) // no such property type
		e.u8(1)
		e.u32(0)
		return e.buf
	}()

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"truncated header", valid[:9]},
		{"truncated mid-topic", valid[:10]},
		{"truncated body", valid[:len(valid)-1]},
		{"trailing byte", append(append([]byte{}, valid...), 0xff)},
		{"correlation id too long", longCorrPayload},
		{"bad property name", badName},
		{"unknown property type", badType},
	}
	arena := NewMessageArena()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, refErr := DecodeMessage(tc.payload)
			if refErr == nil {
				t.Fatal("DecodeMessage accepted a malformed payload")
			}
			if _, err := ParseMessageView(tc.payload); err == nil {
				t.Error("ParseMessageView accepted what DecodeMessage rejects")
			}
			if _, err := arena.DecodeMessageArena(tc.payload); err == nil {
				t.Error("DecodeMessageArena accepted what DecodeMessage rejects")
			}
		})
	}
}

// TestMessageViewDuplicateProperties: the wire format can carry duplicate
// property names; both decoders collapse them last-wins.
func TestMessageViewDuplicateProperties(t *testing.T) {
	var e encoder
	e.u64(0)
	e.str("t")
	e.str("")
	e.u8(1)
	e.u8(4)
	e.i64(0)
	e.i64(0)
	e.u64(0)
	e.u32(2)
	e.str("qty")
	e.u8(uint8(jms.TypeInt64))
	e.i64(1)
	e.str("qty")
	e.u8(uint8(jms.TypeInt64))
	e.i64(2)
	e.u32(0)
	payload := e.buf

	ref, err := DecodeMessage(payload)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseMessageView(payload)
	if err != nil {
		t.Fatal(err)
	}
	// The view reports the wire count; materialization collapses.
	if v.NumProperties() != 2 {
		t.Errorf("view NumProperties = %d, want 2", v.NumProperties())
	}
	got, err := NewMessageArena().DecodeMessageArena(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProperties() != 1 || ref.NumProperties() != 1 {
		t.Fatalf("materialized counts = (%d, %d), want (1, 1)", got.NumProperties(), ref.NumProperties())
	}
	if p, _ := got.Property("qty"); p.I != 2 {
		t.Errorf("duplicate property resolved to %d, want last-wins 2", p.I)
	}
	if !bytes.Equal(EncodeMessage(ref), EncodeMessage(got)) {
		t.Error("arena decode diverges from DecodeMessage on duplicates")
	}
}

// TestArenaInternCacheReset drives the intern cache past its bound: decoding
// must stay correct when the cache resets, and interning must still dedupe
// repeated topics to the same string backing.
func TestArenaInternCacheReset(t *testing.T) {
	arena := NewMessageArena()
	for i := 0; i < internCacheMax+10; i++ {
		m := jms.NewMessage(fmt.Sprintf("topic-%d", i))
		got, err := arena.DecodeMessageArena(EncodeMessage(m))
		if err != nil {
			t.Fatal(err)
		}
		if got.Header.Topic != m.Header.Topic {
			t.Fatalf("topic %d decoded as %q", i, got.Header.Topic)
		}
	}
	if len(arena.cache) > internCacheMax {
		t.Errorf("intern cache grew to %d, bound is %d", len(arena.cache), internCacheMax)
	}
}

func TestAppendBatchMessagesRejects(t *testing.T) {
	small := jms.NewMessage("t")
	valid := EncodeBatch([]*jms.Message{small})
	cases := []struct {
		name    string
		payload []byte
	}{
		{"short count", []byte{0, 0, 1}},
		{"count exceeds payload", []byte{0, 0, 0, 9, 0, 0}},
		{"trailing garbage", append(append([]byte{}, valid...), 0xab)},
		{"truncated member", valid[:len(valid)-1]},
	}
	arena := NewMessageArena()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, refErr := DecodeBatch(tc.payload); refErr == nil {
				t.Fatal("DecodeBatch accepted a malformed payload")
			}
			if _, err := arena.AppendBatchMessages(nil, tc.payload); err == nil {
				t.Error("AppendBatchMessages accepted what DecodeBatch rejects")
			}
		})
	}
	if _, err := arena.AppendBatchMessages(nil, valid[:len(valid)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated member error = %v, want ErrTruncated", err)
	}
}
