// Package trace is the per-message flight recorder: stage-level spans
// keyed by the wire protocol's Header.TraceID, collected from every layer
// the message crosses (frame ingress, arena decode, enqueue wait, filter
// match, replicate, transmit handoff, delivery encode, writer-queue wait,
// writev syscall) and retained in per-shard lock-free ring buffers.
//
// Two retention policies run side by side, mirroring the head/tail split
// in distributed-tracing practice:
//
//   - Head sampling: a deterministic hash of the TraceID admits 1-in-N
//     messages to full span recording. Every layer evaluates the same pure
//     predicate (Sampled), so wire, broker and egress agree on which
//     messages to instrument with no shared per-message state.
//   - Tail retention: the slowest-K messages per rotation window are always
//     kept, even when head sampling skipped them. Unsampled messages offer
//     a cheap "skeleton" trace (enqueue wait + total sojourn only, from the
//     timestamps the broker already takes) gated by an atomic threshold
//     compare, so the common fast message pays one load and one branch.
//
// The recorder is also the measurement substrate for the model loop: the
// per-stage windowed accumulators decompose observed sojourn into
// W_obs ≈ W_queue + Σ stage residencies (exported as jms_trace_stage_*),
// and completed traces convert to per-message internal/fit observations so
// the Eq. 1 constants can be fitted from ground truth rather than
// aggregate regression.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Stage identifies one lifecycle edge of a message's path through the
// broker. The order is pipeline order; Queue is the Eq. 4 waiting time W,
// Match..Transmit are the broker service stages, Encode..EgressWrite are
// the egress path that the socket-level t_tx measurement covers and the
// dispatch-level one does not (ROADMAP item 3's gap).
type Stage uint8

const (
	// StageIngress is the FrameReader read: from entering fr.Next to the
	// frame being fully buffered. It includes the socket wait for the
	// client's bytes, so it is arrival-side and excluded from the sojourn
	// decomposition; it is reported for end-to-end display only.
	StageIngress Stage = iota
	// StageDecode is arena materialization: wire bytes → *jms.Message.
	StageDecode
	// StageQueue is the enqueue wait: EnqueuedAt → dispatch start. This is
	// the per-message sample of the model's E[W].
	StageQueue
	// StageMatch is the filter scan over the topic's subscriptions.
	StageMatch
	// StageReplicate is per-replica message copying (R > 1 only).
	StageReplicate
	// StageTransmit is the handoff into subscriber delivery queues.
	StageTransmit
	// StageEncode is the delivery frame encode in the server's pump.
	StageEncode
	// StageEgressQueue is the wait in the connection writer's queue:
	// submit → writev start.
	StageEgressQueue
	// StageEgressWrite is this frame's share of the writev syscall
	// (syscall duration / frames coalesced) — the same per-frame quantity
	// fit.TTxFromWire computes from the aggregate wire counters.
	StageEgressWrite

	numStages
)

var stageNames = [numStages]string{
	"ingress", "decode", "queue", "match", "replicate",
	"transmit", "encode", "egress_queue", "egress_write",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Layer reports which plane records the stage: "wire" for socket-side
// stages, "broker" for dispatch-side ones.
func (s Stage) Layer() string {
	switch s {
	case StageQueue, StageMatch, StageReplicate, StageTransmit:
		return "broker"
	}
	return "wire"
}

// Stages enumerates all stage values in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span is one recorded stage residency.
type Span struct {
	Stage   Stage
	StartNs int64 // wall clock, unix nanoseconds
	DurNs   int64
}

// maxSpans bounds one trace's span count (a message delivered to R
// subscribers records up to 3 egress-side spans per replica). Overflow
// spans are counted and dropped, never reallocated.
const maxSpans = 32

// Trace is a completed (or snapshotted) flight record for one message.
type Trace struct {
	ID       uint64
	Topic    string
	NFilters int  // filters scanned at match time (Eq. 1 n_fltr)
	R        int  // matched subscribers (Eq. 1 E[R])
	Skeleton bool // tail-retained without head sampling: queue+total only
	Complete bool // committed (false: snapshotted while still active)
	// SojournNs is enqueue → dispatch commit as the broker observed it;
	// 0 until the broker finishes the message.
	SojournNs int64
	Spans     []Span
}

// StartNs is the earliest span start (0 when empty).
func (t *Trace) StartNs() int64 {
	s := int64(0)
	for _, sp := range t.Spans {
		if s == 0 || sp.StartNs < s {
			s = sp.StartNs
		}
	}
	return s
}

// TotalNs is the trace's headline duration: the broker sojourn when known
// (the model's W+B), otherwise the span extent.
func (t *Trace) TotalNs() int64 {
	if t.SojournNs > 0 {
		return t.SojournNs
	}
	start, end := int64(0), int64(0)
	for _, sp := range t.Spans {
		if start == 0 || sp.StartNs < start {
			start = sp.StartNs
		}
		if e := sp.StartNs + sp.DurNs; e > end {
			end = e
		}
	}
	if start == 0 {
		return 0
	}
	return end - start
}

// StageNs sums the residency recorded for one stage.
func (t *Trace) StageNs(s Stage) int64 {
	var n int64
	for _, sp := range t.Spans {
		if sp.Stage == s {
			n += sp.DurNs
		}
	}
	return n
}

// Config parameterizes a Recorder. Zero values take defaults.
type Config struct {
	// SampleEvery is the head-sampling rate: 1-in-N traced messages get
	// full span recording (<= 1 records every message with a nonzero
	// TraceID; the deterministic hash keeps all layers in agreement).
	SampleEvery int
	// RingSize is the per-shard completed-trace ring capacity (power of
	// two; default 256).
	RingSize int
	// TailKeep is the slowest-N retention per window (default 16).
	TailKeep int
	// Window is the tail-retention rotation period (default 10s).
	Window time.Duration
	// FinalizeAfter is how long a trace must be idle (no new spans) before
	// the sweeper commits it. No single layer knows when a trace is done —
	// egress spans land after the broker's commit — so completion is
	// quiescence (default 250ms).
	FinalizeAfter time.Duration
	// Shards is the number of active-table/ring shards (power of two;
	// default 8).
	Shards int
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	c.RingSize = ceilPow2(c.RingSize)
	if c.TailKeep <= 0 {
		c.TailKeep = 16
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.FinalizeAfter <= 0 {
		c.FinalizeAfter = 250 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	c.Shards = ceilPow2(c.Shards)
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// active is a trace under construction. Entries live in a shard's map
// until the sweeper sees them idle for FinalizeAfter (or Flush forces
// commit) and are pooled across messages.
type active struct {
	id       uint64
	topic    string
	nFilters int
	r        int
	sojourn  int64
	lastNs   int64 // last span end, for idle detection
	n        int
	spans    [maxSpans]Span
}

var activePool = sync.Pool{New: func() any { return new(active) }}

// shard is one slice of the recorder: a mutex-guarded active table plus a
// lock-free ring of committed traces. Ring writers atomically claim a slot
// and Store an immutable *Trace; /trace readers Load concurrently with no
// coordination.
type shard struct {
	mu     sync.Mutex
	active map[uint64]*active

	pos  atomic.Uint64
	ring []atomic.Pointer[Trace]
}

// stageAcc is one stage's cumulative residency accumulator, updated on
// every RecordSpan so the windowed decomposition is live without waiting
// for trace commit.
type stageAcc struct {
	count atomic.Uint64
	sum   atomic.Uint64 // nanoseconds
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use and nil-receiver safe, so call sites can hold an optional *Recorder
// without guarding.
type Recorder struct {
	cfg       Config
	shardMask uint64
	shards    []shard

	stages      [numStages]stageAcc
	sojournCnt  atomic.Uint64
	sojournSum  atomic.Uint64
	started     atomic.Uint64
	committed   atomic.Uint64
	tailKept    atomic.Uint64
	spanDropped atomic.Uint64

	// exemplars[i] holds the most recent trace ID whose total fell into
	// the i-th log2 latency bucket — the same bucket geometry as the
	// wait/sojourn histograms, so /metrics buckets link to /trace/{id}.
	exemplars [metrics.HistogramBuckets]atomic.Uint64

	tail tailKeeper

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a Recorder and starts its finalization sweeper. Close stops
// it.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:       cfg,
		shardMask: uint64(cfg.Shards - 1),
		shards:    make([]shard, cfg.Shards),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for i := range r.shards {
		r.shards[i].active = make(map[uint64]*active)
		r.shards[i].ring = make([]atomic.Pointer[Trace], cfg.RingSize)
	}
	r.tail.keep = cfg.TailKeep
	r.tail.window = cfg.Window
	r.tail.curStart = cfg.Clock()
	go r.sweep()
	return r
}

// Close stops the sweeper and commits everything still active.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.Flush()
}

// Enabled reports whether the recorder exists (nil-safe guard for call
// sites holding an optional *Recorder).
func (r *Recorder) Enabled() bool { return r != nil }

// hash64 is SplitMix64's finalizer: a cheap, well-mixed permutation of
// the trace ID used for both sampling and shard selection.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Sampled reports whether a message with this TraceID is head-sampled.
// It is a pure function of the ID, so every layer — wire ingress, broker
// pipeline, egress writer — independently agrees with no shared state.
func (r *Recorder) Sampled(id uint64) bool {
	if r == nil || id == 0 {
		return false
	}
	if r.cfg.SampleEvery <= 1 {
		return true
	}
	return hash64(id)%uint64(r.cfg.SampleEvery) == 0
}

func (r *Recorder) shardOf(id uint64) *shard {
	return &r.shards[(hash64(id)>>32)&r.shardMask]
}

// RecordSpan records one stage residency for a sampled message. Calls for
// unsampled or zero IDs are cheap no-ops, so call sites may record
// unconditionally.
func (r *Recorder) RecordSpan(id uint64, st Stage, start time.Time, d time.Duration) {
	r.RecordSpanNs(id, st, start.UnixNano(), int64(d))
}

// RecordSpanNs is RecordSpan with raw unix-nanosecond timestamps (the
// wire layer already works in int64 ns).
func (r *Recorder) RecordSpanNs(id uint64, st Stage, startNs, durNs int64) {
	if !r.Sampled(id) {
		return
	}
	if durNs < 0 {
		durNs = 0
	}
	sh := r.shardOf(id)
	sh.mu.Lock()
	a := sh.active[id]
	if a == nil {
		a = activePool.Get().(*active)
		*a = active{id: id}
		sh.active[id] = a
		r.started.Add(1)
	}
	if a.n < maxSpans {
		a.spans[a.n] = Span{Stage: st, StartNs: startNs, DurNs: durNs}
		a.n++
	} else {
		r.spanDropped.Add(1)
	}
	if end := startNs + durNs; end > a.lastNs {
		a.lastNs = end
	}
	sh.mu.Unlock()

	acc := &r.stages[st]
	acc.count.Add(1)
	acc.sum.Add(uint64(durNs))
}

// FinishMessage records the broker-side completion of a sampled message:
// topic, the Eq. 1 covariates (n_fltr, R) and the observed sojourn. The
// trace stays active until the sweeper sees it idle, so egress spans that
// land after the broker's commit still attach.
func (r *Recorder) FinishMessage(id uint64, topic string, nFilters, rGrade int, sojourn time.Duration) {
	if !r.Sampled(id) {
		return
	}
	sh := r.shardOf(id)
	sh.mu.Lock()
	a := sh.active[id]
	if a != nil {
		a.topic = topic
		a.nFilters = nFilters
		a.r = rGrade
		a.sojourn = int64(sojourn)
	}
	sh.mu.Unlock()
	r.sojournCnt.Add(1)
	r.sojournSum.Add(uint64(sojourn))
}

// OfferTail offers a skeleton trace for an unsampled message: only the
// enqueue-wait span and the total sojourn, built from timestamps the
// broker already takes. The atomic threshold load makes the common
// not-slow-enough case one compare.
func (r *Recorder) OfferTail(id uint64, topic string, nFilters, rGrade int, enqueued time.Time, wait, sojourn time.Duration) {
	if r == nil || id == 0 {
		return
	}
	if !r.tail.worthy(int64(sojourn)) {
		return
	}
	t := &Trace{
		ID: id, Topic: topic, NFilters: nFilters, R: rGrade,
		Skeleton: true, Complete: true, SojournNs: int64(sojourn),
		Spans: []Span{{Stage: StageQueue, StartNs: enqueued.UnixNano(), DurNs: int64(wait)}},
	}
	if r.tail.offer(t, r.cfg.Clock()) {
		r.tailKept.Add(1)
	}
}

// sweep periodically commits traces that have been idle for
// FinalizeAfter.
func (r *Recorder) sweep() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.FinalizeAfter / 2)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			cutoff := r.cfg.Clock().UnixNano() - int64(r.cfg.FinalizeAfter)
			for i := range r.shards {
				r.commitShard(&r.shards[i], cutoff)
			}
		}
	}
}

// commitShard removes active entries idle since before cutoff (all of
// them when cutoff is MaxInt64-ish via Flush) and commits each.
func (r *Recorder) commitShard(sh *shard, cutoff int64) {
	var batch []*active
	sh.mu.Lock()
	for id, a := range sh.active {
		if a.lastNs <= cutoff {
			delete(sh.active, id)
			batch = append(batch, a)
		}
	}
	sh.mu.Unlock()
	for _, a := range batch {
		r.commit(sh, a)
	}
}

// commit freezes an active entry into an immutable Trace, publishes it to
// the shard ring, updates the exemplar table and offers it to the tail
// keeper, then pools the entry.
func (r *Recorder) commit(sh *shard, a *active) {
	t := &Trace{
		ID: a.id, Topic: a.topic, NFilters: a.nFilters, R: a.r,
		SojournNs: a.sojourn, Complete: true,
		Spans: append([]Span(nil), a.spans[:a.n]...),
	}
	activePool.Put(a)
	sort.Slice(t.Spans, func(i, j int) bool { return t.Spans[i].StartNs < t.Spans[j].StartNs })

	slot := sh.pos.Add(1) - 1
	sh.ring[slot&uint64(len(sh.ring)-1)].Store(t)
	r.committed.Add(1)

	if total := t.TotalNs(); total > 0 {
		r.exemplars[bucketOf(total)].Store(t.ID)
	}
	if r.tail.offer(t, r.cfg.Clock()) {
		r.tailKept.Add(1)
	}
}

// bucketOf maps a duration onto the shared histogram bucket geometry.
func bucketOf(ns int64) int {
	for i := 0; i < metrics.HistogramBuckets; i++ {
		if float64(ns) <= metrics.BucketBound(i) {
			return i
		}
	}
	return metrics.HistogramBuckets - 1
}

// Flush commits every active trace immediately (tests, shutdown).
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	for i := range r.shards {
		r.commitShard(&r.shards[i], 1<<62)
	}
}

// Get returns the trace for id: committed if available, otherwise a
// snapshot of the still-active entry (Complete=false).
func (r *Recorder) Get(id uint64) (*Trace, bool) {
	if r == nil || id == 0 {
		return nil, false
	}
	sh := r.shardOf(id)
	for i := range sh.ring {
		if t := sh.ring[i].Load(); t != nil && t.ID == id {
			return t, true
		}
	}
	if t, ok := r.tail.get(id); ok {
		return t, true
	}
	sh.mu.Lock()
	a := sh.active[id]
	var t *Trace
	if a != nil {
		t = &Trace{
			ID: a.id, Topic: a.topic, NFilters: a.nFilters, R: a.r,
			SojournNs: a.sojourn,
			Spans:     append([]Span(nil), a.spans[:a.n]...),
		}
	}
	sh.mu.Unlock()
	if t == nil {
		return nil, false
	}
	sort.Slice(t.Spans, func(i, j int) bool { return t.Spans[i].StartNs < t.Spans[j].StartNs })
	return t, true
}

// List returns up to limit committed traces — the head-sampled ring
// contents plus the tail-retained slowest — slowest first, deduplicated
// by ID. limit <= 0 means no cap.
func (r *Recorder) List(limit int) []*Trace {
	if r == nil {
		return nil
	}
	seen := make(map[uint64]*Trace)
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.ring {
			if t := sh.ring[j].Load(); t != nil {
				seen[t.ID] = t
			}
		}
	}
	for _, t := range r.tail.list() {
		if _, ok := seen[t.ID]; !ok {
			seen[t.ID] = t
		}
	}
	out := make([]*Trace, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].TotalNs(), out[j].TotalNs()
		if ti != tj {
			return ti > tj
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Exemplar links one latency histogram bucket to the most recent trace
// whose total fell inside it.
type Exemplar struct {
	// LESeconds is the bucket's inclusive upper bound in seconds (the
	// Prometheus `le` label of the wait/sojourn histograms).
	LESeconds float64
	TraceID   uint64
}

// Exemplars returns the populated bucket→trace links.
func (r *Recorder) Exemplars() []Exemplar {
	if r == nil {
		return nil
	}
	var out []Exemplar
	for i := 0; i < metrics.HistogramBuckets; i++ {
		if id := r.exemplars[i].Load(); id != 0 {
			out = append(out, Exemplar{LESeconds: metrics.BucketBound(i) / 1e9, TraceID: id})
		}
	}
	return out
}

// StageAcc is one stage's cumulative count and residency sum.
type StageAcc struct {
	Count uint64
	SumNs uint64
}

// Mean is the mean residency in seconds (0 when empty).
func (a StageAcc) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.SumNs) / float64(a.Count) / 1e9
}

func (a StageAcc) sub(prev StageAcc) StageAcc {
	// Clamp: accumulators only grow, but guard snapshots taken across a
	// recorder swap.
	if a.Count < prev.Count || a.SumNs < prev.SumNs {
		return a
	}
	return StageAcc{Count: a.Count - prev.Count, SumNs: a.SumNs - prev.SumNs}
}

// StageStats is a cumulative snapshot of the per-stage decomposition.
// Subtracting two snapshots (Sub) yields a window, which is how the drift
// monitor publishes the live W_obs ≈ W_queue + Σ residencies gauges.
type StageStats struct {
	Stages  [numStages]StageAcc
	Sojourn StageAcc

	Started     uint64
	Committed   uint64
	TailKept    uint64
	SpanDropped uint64
}

// Stats snapshots the cumulative stage accumulators.
func (r *Recorder) Stats() StageStats {
	var s StageStats
	if r == nil {
		return s
	}
	for i := range s.Stages {
		s.Stages[i] = StageAcc{Count: r.stages[i].count.Load(), SumNs: r.stages[i].sum.Load()}
	}
	s.Sojourn = StageAcc{Count: r.sojournCnt.Load(), SumNs: r.sojournSum.Load()}
	s.Started = r.started.Load()
	s.Committed = r.committed.Load()
	s.TailKept = r.tailKept.Load()
	s.SpanDropped = r.spanDropped.Load()
	return s
}

// Sub returns the window between two snapshots.
func (s StageStats) Sub(prev StageStats) StageStats {
	var out StageStats
	for i := range s.Stages {
		out.Stages[i] = s.Stages[i].sub(prev.Stages[i])
	}
	out.Sojourn = s.Sojourn.sub(prev.Sojourn)
	out.Started = s.Started - prev.Started
	out.Committed = s.Committed - prev.Committed
	out.TailKept = s.TailKept - prev.TailKept
	out.SpanDropped = s.SpanDropped - prev.SpanDropped
	return out
}

// Stage returns one stage's accumulator from the snapshot.
func (s StageStats) Stage(st Stage) StageAcc { return s.Stages[st] }

// SojournMean is the mean observed sojourn in seconds over the window.
func (s StageStats) SojournMean() float64 { return s.Sojourn.Mean() }

// Coverage is the fraction of the mean sojourn explained by the broker
// service stages plus queueing: (queue + match + replicate + transmit) /
// sojourn. 1.0 means the decomposition tiles the observed sojourn; the
// residual is dispatch overhead the spans do not name.
func (s StageStats) Coverage() float64 {
	soj := s.Sojourn.Mean()
	if soj <= 0 {
		return 0
	}
	sum := 0.0
	for _, st := range []Stage{StageQueue, StageMatch, StageReplicate, StageTransmit} {
		sum += s.Stages[st].Mean() * ratio(s.Stages[st].Count, s.Sojourn.Count)
	}
	return sum / soj
}

// ratio scales a stage mean by how often the stage fired per finished
// message (replicate fires R-1 times, match once, etc.), so Coverage
// compares per-message totals rather than per-occurrence means.
func ratio(stageCount, msgCount uint64) float64 {
	if msgCount == 0 {
		return 0
	}
	return float64(stageCount) / float64(msgCount)
}

// tailKeeper retains the slowest-K traces per rotation window using a
// fixed-size min-heap on TotalNs. Readers get the current plus previous
// window so a fresh rotation never looks empty.
type tailKeeper struct {
	mu        sync.Mutex
	keep      int
	window    time.Duration
	curStart  time.Time
	cur, prev []*Trace

	// threshold is the heap minimum once full (0 before), read lock-free
	// by OfferTail's fast path.
	threshold atomic.Int64
}

func (k *tailKeeper) worthy(totalNs int64) bool {
	return totalNs > k.threshold.Load()
}

// offer inserts t when it is among the window's slowest. Returns whether
// it was kept.
func (k *tailKeeper) offer(t *Trace, now time.Time) bool {
	total := t.TotalNs()
	if total <= 0 {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if now.Sub(k.curStart) >= k.window {
		k.prev = k.cur
		k.cur = nil
		k.curStart = now
		k.threshold.Store(0)
	}
	if len(k.cur) < k.keep {
		k.cur = append(k.cur, t)
		k.up(len(k.cur) - 1)
		if len(k.cur) == k.keep {
			k.threshold.Store(k.cur[0].TotalNs())
		}
		return true
	}
	if total <= k.cur[0].TotalNs() {
		return false
	}
	k.cur[0] = t
	k.down(0)
	k.threshold.Store(k.cur[0].TotalNs())
	return true
}

func (k *tailKeeper) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if k.cur[p].TotalNs() <= k.cur[i].TotalNs() {
			return
		}
		k.cur[p], k.cur[i] = k.cur[i], k.cur[p]
		i = p
	}
}

func (k *tailKeeper) down(i int) {
	n := len(k.cur)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && k.cur[l].TotalNs() < k.cur[m].TotalNs() {
			m = l
		}
		if r < n && k.cur[r].TotalNs() < k.cur[m].TotalNs() {
			m = r
		}
		if m == i {
			return
		}
		k.cur[i], k.cur[m] = k.cur[m], k.cur[i]
		i = m
	}
}

func (k *tailKeeper) list() []*Trace {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Trace, 0, len(k.cur)+len(k.prev))
	out = append(out, k.cur...)
	out = append(out, k.prev...)
	return out
}

func (k *tailKeeper) get(id uint64) (*Trace, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, t := range k.cur {
		if t.ID == id {
			return t, true
		}
	}
	for _, t := range k.prev {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}
