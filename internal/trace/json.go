package trace

import (
	"fmt"
	"strconv"
)

// SpanJSON is one span in the /trace/{id} span tree.
type SpanJSON struct {
	Stage string `json:"stage"`
	Layer string `json:"layer"`
	// StartUnixNs anchors the span on the wall clock; OffsetNs is its
	// position relative to the trace start, for rendering.
	StartUnixNs int64 `json:"start_unix_ns"`
	OffsetNs    int64 `json:"offset_ns"`
	DurNs       int64 `json:"dur_ns"`
}

// TraceJSON is the wire shape of one trace: the trace itself is the span
// tree's root (its TotalNs spans the whole flight), the Spans are its
// children in start order.
type TraceJSON struct {
	ID          string     `json:"id"`
	Topic       string     `json:"topic"`
	NFilters    int        `json:"n_filters"`
	Replication int        `json:"replication"`
	Skeleton    bool       `json:"skeleton"`
	Complete    bool       `json:"complete"`
	StartUnixNs int64      `json:"start_unix_ns"`
	TotalNs     int64      `json:"total_ns"`
	SpanCount   int        `json:"span_count"`
	Spans       []SpanJSON `json:"spans,omitempty"`
}

// ExemplarJSON links a histogram bucket upper bound to a trace ID.
type ExemplarJSON struct {
	LESeconds float64 `json:"le_seconds"`
	TraceID   string  `json:"trace_id"`
}

// ListJSON is the /trace response: committed traces (slowest first) plus
// the per-bucket exemplar links.
type ListJSON struct {
	Traces    []TraceJSON    `json:"traces"`
	Exemplars []ExemplarJSON `json:"exemplars"`
}

// FormatID renders a TraceID the way the endpoints address it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID accepts the hex form FormatID produces, or plain decimal.
func ParseID(s string) (uint64, error) {
	if id, err := strconv.ParseUint(s, 16, 64); err == nil {
		return id, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// JSON converts a trace to its wire shape. withSpans=false produces the
// list summary (span count only).
func (t *Trace) JSON(withSpans bool) TraceJSON {
	out := TraceJSON{
		ID:          FormatID(t.ID),
		Topic:       t.Topic,
		NFilters:    t.NFilters,
		Replication: t.R,
		Skeleton:    t.Skeleton,
		Complete:    t.Complete,
		StartUnixNs: t.StartNs(),
		TotalNs:     t.TotalNs(),
		SpanCount:   len(t.Spans),
	}
	if withSpans {
		out.Spans = make([]SpanJSON, len(t.Spans))
		for i, sp := range t.Spans {
			out.Spans[i] = SpanJSON{
				Stage:       sp.Stage.String(),
				Layer:       sp.Stage.Layer(),
				StartUnixNs: sp.StartNs,
				OffsetNs:    sp.StartNs - out.StartUnixNs,
				DurNs:       sp.DurNs,
			}
		}
	}
	return out
}

// ListResponse builds the /trace payload: up to limit traces plus the
// exemplar table.
func (r *Recorder) ListResponse(limit int) ListJSON {
	traces := r.List(limit)
	out := ListJSON{Traces: make([]TraceJSON, len(traces))}
	for i, t := range traces {
		out.Traces[i] = t.JSON(false)
	}
	for _, e := range r.Exemplars() {
		out.Exemplars = append(out.Exemplars, ExemplarJSON{LESeconds: e.LESeconds, TraceID: FormatID(e.TraceID)})
	}
	return out
}

// NewID derives a well-mixed nonzero TraceID from a per-source seed and a
// sequence number — what the client uses to auto-stamp publishes. The
// SplitMix64 mix keeps head sampling (a hash-mod over the ID) unbiased
// even though seq is sequential.
func NewID(seed, seq uint64) uint64 {
	id := hash64(seed + seq)
	if id == 0 {
		return 1
	}
	return id
}
