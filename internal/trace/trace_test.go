package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// newTest builds a recorder whose sweeper effectively never fires, so
// tests drive commits deterministically via Flush.
func newTest(cfg Config) *Recorder {
	if cfg.FinalizeAfter == 0 {
		cfg.FinalizeAfter = time.Hour
	}
	return New(cfg)
}

func TestSampledDeterministic(t *testing.T) {
	r := newTest(Config{SampleEvery: 4})
	defer r.Close()
	if r.Sampled(0) {
		t.Error("zero ID sampled")
	}
	hits := 0
	for id := uint64(1); id <= 4000; id++ {
		a, b := r.Sampled(id), r.Sampled(id)
		if a != b {
			t.Fatalf("Sampled(%d) not deterministic", id)
		}
		if a {
			hits++
		}
	}
	// The hash gate should admit ~1/4 of IDs.
	if hits < 800 || hits > 1200 {
		t.Errorf("SampleEvery=4 admitted %d of 4000", hits)
	}

	all := newTest(Config{SampleEvery: 1})
	defer all.Close()
	for id := uint64(1); id <= 100; id++ {
		if !all.Sampled(id) {
			t.Fatalf("SampleEvery=1 rejected id %d", id)
		}
	}

	// Nil receiver: everything is a no-op.
	var nilRec *Recorder
	if nilRec.Sampled(1) || nilRec.Enabled() {
		t.Error("nil recorder sampled")
	}
	nilRec.RecordSpan(1, StageMatch, time.Now(), time.Millisecond)
	nilRec.FinishMessage(1, "t", 1, 1, time.Millisecond)
	nilRec.OfferTail(1, "t", 1, 1, time.Now(), 0, time.Millisecond)
	nilRec.Flush()
	nilRec.Close()
	if got := nilRec.List(10); got != nil {
		t.Errorf("nil List = %v", got)
	}
}

func TestRecordFlushGet(t *testing.T) {
	r := newTest(Config{SampleEvery: 1})
	defer r.Close()
	const id = 42
	base := time.Now()
	r.RecordSpan(id, StageQueue, base, 100*time.Microsecond)
	r.RecordSpan(id, StageMatch, base.Add(100*time.Microsecond), 50*time.Microsecond)
	r.RecordSpan(id, StageTransmit, base.Add(150*time.Microsecond), 25*time.Microsecond)
	r.FinishMessage(id, "orders", 7, 3, 200*time.Microsecond)

	// Before commit, Get serves an active-entry snapshot.
	tr, ok := r.Get(id)
	if !ok {
		t.Fatal("active trace not found")
	}
	if tr.Complete {
		t.Error("active snapshot marked complete")
	}

	r.Flush()
	tr, ok = r.Get(id)
	if !ok {
		t.Fatal("committed trace not found")
	}
	if !tr.Complete || tr.Skeleton {
		t.Errorf("want committed full trace, got complete=%v skeleton=%v", tr.Complete, tr.Skeleton)
	}
	if tr.Topic != "orders" || tr.NFilters != 7 || tr.R != 3 {
		t.Errorf("covariates: topic=%q nfltr=%d r=%d", tr.Topic, tr.NFilters, tr.R)
	}
	if got := tr.StageNs(StageQueue); got != int64(100*time.Microsecond) {
		t.Errorf("queue span = %d ns", got)
	}
	if got := tr.TotalNs(); got != int64(200*time.Microsecond) {
		t.Errorf("TotalNs = %d, want sojourn", got)
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].StartNs < tr.Spans[i-1].StartNs {
			t.Error("spans not sorted by start")
		}
	}

	// Unknown and zero IDs miss.
	if _, ok := r.Get(id + 1); ok {
		t.Error("unknown ID found")
	}
	if _, ok := r.Get(0); ok {
		t.Error("zero ID found")
	}
}

func TestUnsampledIsNoop(t *testing.T) {
	r := newTest(Config{SampleEvery: 1 << 20})
	defer r.Close()
	var id uint64
	for id = 1; r.Sampled(id); id++ {
	}
	r.RecordSpan(id, StageMatch, time.Now(), time.Millisecond)
	r.FinishMessage(id, "t", 1, 1, time.Millisecond)
	r.Flush()
	if s := r.Stats(); s.Started != 0 || s.Committed != 0 {
		t.Errorf("unsampled ID created state: %+v", s)
	}
}

func TestListSlowestFirst(t *testing.T) {
	r := newTest(Config{SampleEvery: 1})
	defer r.Close()
	base := time.Now()
	for i := 1; i <= 8; i++ {
		id := uint64(i)
		d := time.Duration(i) * time.Millisecond
		r.RecordSpan(id, StageQueue, base, d/2)
		r.FinishMessage(id, "t", 1, 1, d)
	}
	r.Flush()
	all := r.List(0)
	if len(all) != 8 {
		t.Fatalf("List(0) = %d traces, want 8", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].TotalNs() > all[i-1].TotalNs() {
			t.Error("List not slowest-first")
		}
	}
	if all[0].ID != 8 {
		t.Errorf("slowest ID = %d, want 8", all[0].ID)
	}
	if lim := r.List(3); len(lim) != 3 {
		t.Errorf("List(3) = %d traces", len(lim))
	}
}

func TestTailRetention(t *testing.T) {
	r := newTest(Config{SampleEvery: 1 << 20, TailKeep: 4})
	defer r.Close()
	var ids []uint64
	for id := uint64(1); len(ids) < 32; id++ {
		if !r.Sampled(id) {
			ids = append(ids, id)
		}
	}
	base := time.Now()
	for i, id := range ids {
		d := time.Duration(i+1) * time.Millisecond
		r.OfferTail(id, "t", 1, 1, base, d/2, d)
	}
	kept := r.List(0)
	if len(kept) != 4 {
		t.Fatalf("tail kept %d traces, want 4", len(kept))
	}
	// The slowest four offers are the last four IDs.
	want := map[uint64]bool{ids[28]: true, ids[29]: true, ids[30]: true, ids[31]: true}
	for _, tr := range kept {
		if !want[tr.ID] {
			t.Errorf("unexpected tail ID %d", tr.ID)
		}
		if !tr.Skeleton || !tr.Complete {
			t.Errorf("tail trace skeleton=%v complete=%v", tr.Skeleton, tr.Complete)
		}
		if tr.StageNs(StageQueue) != tr.SojournNs/2 {
			t.Errorf("skeleton wait span %d vs sojourn %d", tr.StageNs(StageQueue), tr.SojournNs)
		}
	}
	// The threshold precheck rejects a fast message without locking.
	if r.tail.worthy(int64(time.Microsecond)) {
		t.Error("1µs worthy of a tail full of ms-scale traces")
	}
	if got, ok := r.Get(ids[31]); !ok || got.ID != ids[31] {
		t.Error("tail trace not reachable via Get")
	}
}

func TestTailWindowRotation(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := newTest(Config{SampleEvery: 1 << 62, TailKeep: 2, Window: 10 * time.Second, Clock: clock})
	defer r.Close()
	var ids []uint64
	for id := uint64(1); len(ids) < 6; id++ {
		if !r.Sampled(id) {
			ids = append(ids, id)
		}
	}
	r.OfferTail(ids[0], "t", 1, 1, now, time.Millisecond, 2*time.Millisecond)
	r.OfferTail(ids[1], "t", 1, 1, now, time.Millisecond, 3*time.Millisecond)
	// Rotate: the old window moves to prev and stays visible.
	now = now.Add(11 * time.Second)
	r.OfferTail(ids[2], "t", 1, 1, now, time.Millisecond, 5*time.Millisecond)
	got := r.List(0)
	if len(got) != 3 {
		t.Fatalf("after rotation List = %d traces, want 3 (cur+prev)", len(got))
	}
	// Another rotation drops the first window.
	now = now.Add(11 * time.Second)
	r.OfferTail(ids[3], "t", 1, 1, now, time.Millisecond, 4*time.Millisecond)
	got = r.List(0)
	if len(got) != 2 {
		t.Fatalf("after second rotation List = %d traces, want 2", len(got))
	}
}

func TestStageStatsWindowing(t *testing.T) {
	r := newTest(Config{SampleEvery: 1})
	defer r.Close()
	base := time.Now()
	r.RecordSpan(1, StageQueue, base, 100*time.Microsecond)
	r.RecordSpan(1, StageMatch, base, 60*time.Microsecond)
	r.RecordSpan(1, StageTransmit, base, 40*time.Microsecond)
	r.FinishMessage(1, "t", 1, 1, 250*time.Microsecond)
	snap1 := r.Stats()
	if snap1.Stage(StageQueue).Count != 1 {
		t.Fatalf("queue count = %d", snap1.Stage(StageQueue).Count)
	}
	// Coverage: (100+60+40)/250 = 0.8.
	if c := snap1.Coverage(); c < 0.79 || c > 0.81 {
		t.Errorf("coverage = %v, want 0.8", c)
	}
	if m := snap1.SojournMean(); m < 249e-6 || m > 251e-6 {
		t.Errorf("sojourn mean = %v", m)
	}

	r.RecordSpan(2, StageQueue, base, 300*time.Microsecond)
	r.FinishMessage(2, "t", 1, 1, 300*time.Microsecond)
	window := r.Stats().Sub(snap1)
	if window.Sojourn.Count != 1 {
		t.Fatalf("window sojourn count = %d", window.Sojourn.Count)
	}
	if got := window.Stage(StageQueue).SumNs; got != uint64(300*time.Microsecond) {
		t.Errorf("window queue sum = %d", got)
	}
	if got := window.Stage(StageMatch).Count; got != 0 {
		t.Errorf("window match count = %d", got)
	}
	// Replicate fires R-1 times per message; ratio folds occurrences.
	if ratio(6, 3) != 2 {
		t.Error("ratio(6,3) != 2")
	}
}

func TestExemplars(t *testing.T) {
	r := newTest(Config{SampleEvery: 1})
	defer r.Close()
	r.RecordSpan(9, StageQueue, time.Now(), time.Millisecond)
	r.FinishMessage(9, "t", 1, 1, time.Millisecond)
	r.Flush()
	ex := r.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(ex))
	}
	if ex[0].TraceID != 9 {
		t.Errorf("exemplar ID = %d", ex[0].TraceID)
	}
	if ex[0].LESeconds < 1e-3 {
		t.Errorf("bucket bound %v below the 1ms total", ex[0].LESeconds)
	}
	if bucketOf(1<<62) != metrics.HistogramBuckets-1 {
		t.Error("huge duration not clamped to last bucket")
	}
}

func TestSpanOverflow(t *testing.T) {
	r := newTest(Config{SampleEvery: 1})
	defer r.Close()
	base := time.Now()
	for i := 0; i < maxSpans+5; i++ {
		r.RecordSpan(3, StageTransmit, base, time.Microsecond)
	}
	if s := r.Stats(); s.SpanDropped != 5 {
		t.Errorf("SpanDropped = %d, want 5", s.SpanDropped)
	}
	r.Flush()
	tr, _ := r.Get(3)
	if len(tr.Spans) != maxSpans {
		t.Errorf("kept %d spans, want %d", len(tr.Spans), maxSpans)
	}
	// The dropped spans still count in the stage accumulators.
	if c := r.Stats().Stage(StageTransmit).Count; c != maxSpans+5 {
		t.Errorf("transmit count = %d", c)
	}
}

func TestSweeperCommitsIdleTraces(t *testing.T) {
	r := New(Config{SampleEvery: 1, FinalizeAfter: 20 * time.Millisecond})
	defer r.Close()
	r.RecordSpan(5, StageQueue, time.Now(), time.Microsecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if tr, ok := r.Get(5); ok && tr.Complete {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never committed the idle trace")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestIDHelpers(t *testing.T) {
	if NewID(0, 0) == 0 {
		t.Error("NewID returned zero")
	}
	a, b := NewID(1, 1), NewID(1, 2)
	if a == b {
		t.Error("sequential NewIDs collide")
	}
	s := FormatID(a)
	if len(s) != 16 {
		t.Errorf("FormatID length %d", len(s))
	}
	got, err := ParseID(s)
	if err != nil || got != a {
		t.Errorf("ParseID(%q) = %d, %v", s, got, err)
	}
	if got, err := ParseID("123"); err != nil || got != 0x123 {
		t.Errorf("bare hex ParseID = %d, %v", got, err)
	}
	if _, err := ParseID("zzz"); err == nil {
		t.Error("garbage ID parsed")
	}
}

func TestTraceJSONShape(t *testing.T) {
	r := newTest(Config{SampleEvery: 1})
	defer r.Close()
	base := time.Now()
	r.RecordSpan(11, StageQueue, base, 10*time.Microsecond)
	r.RecordSpan(11, StageEgressWrite, base.Add(10*time.Microsecond), 2*time.Microsecond)
	r.FinishMessage(11, "t", 2, 1, 15*time.Microsecond)
	r.Flush()
	tr, _ := r.Get(11)
	j := tr.JSON(true)
	if j.ID != FormatID(11) || !j.Complete || j.SpanCount != 2 || len(j.Spans) != 2 {
		t.Errorf("JSON: %+v", j)
	}
	if j.Spans[0].Stage != "queue" || j.Spans[0].Layer != "broker" {
		t.Errorf("first span: %+v", j.Spans[0])
	}
	if j.Spans[1].Stage != "egress_write" || j.Spans[1].Layer != "wire" {
		t.Errorf("second span: %+v", j.Spans[1])
	}
	if j.Spans[1].OffsetNs != int64(10*time.Microsecond) {
		t.Errorf("offset = %d", j.Spans[1].OffsetNs)
	}
	if noSpans := tr.JSON(false); len(noSpans.Spans) != 0 || noSpans.SpanCount != 2 {
		t.Errorf("span-less JSON: %+v", noSpans)
	}
	resp := r.ListResponse(10)
	if len(resp.Traces) != 1 || len(resp.Exemplars) != 1 {
		t.Errorf("ListResponse: %d traces, %d exemplars", len(resp.Traces), len(resp.Exemplars))
	}
}

func TestStageNamesAndLayers(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "unknown" || seen[name] {
			t.Errorf("stage %d name %q", st, name)
		}
		seen[name] = true
		if l := st.Layer(); l != "broker" && l != "wire" {
			t.Errorf("stage %s layer %q", name, l)
		}
		if strings.ToLower(name) != name {
			t.Errorf("stage name %q not lowercase", name)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range stage has a name")
	}
}

// TestConcurrentChurn hammers the recorder from every public entry point
// at once; run with -race this is the ring/active-table safety wall.
func TestConcurrentChurn(t *testing.T) {
	r := New(Config{SampleEvery: 2, RingSize: 64, TailKeep: 8, FinalizeAfter: 5 * time.Millisecond})
	defer r.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	base := time.Now()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := NewID(uint64(w), uint64(i))
				for _, st := range Stages() {
					r.RecordSpan(id, st, base, time.Duration(i%100)*time.Microsecond)
				}
				r.FinishMessage(id, "t", 3, 2, time.Duration(i%200)*time.Microsecond)
				r.OfferTail(id+1, "t", 1, 1, base, time.Microsecond, time.Duration(i%300)*time.Microsecond)
			}
		}(w)
	}
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.List(16) {
					_ = tr.TotalNs()
					_, _ = r.Get(tr.ID)
				}
				_ = r.Stats()
				_ = r.Exemplars()
				_ = r.ListResponse(8)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Flush()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	r.Flush()
	if s := r.Stats(); s.Committed == 0 {
		t.Error("no traces committed under churn")
	}
}
