// Package cluster implements broker clustering, the paper's stated ongoing
// work ("we investigate the message throughput performance of server
// clusters and work on concepts to achieve true JMS system scalability").
//
// A cluster connects off-the-shelf brokers with bridges: a bridge
// subscribes on a source broker and republishes everything it receives on
// a target broker. A hop-count property prevents routing loops in cyclic
// topologies (full meshes). Publishers and subscribers keep using plain
// single-broker connections; the cluster makes every message reach every
// member, so a subscriber's filters behave as if installed on one big
// server — trading extra receive work (one t_rcv per member per message)
// for distributing the n_fltr*t_fltr filter scans across machines.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
)

// hopProperty is the message property carrying the remaining forwarding
// budget; it is stamped by bridges and never visible to the application
// because filters on user properties ignore it by name.
const hopProperty = "$jmsperfHops"

// Errors of the cluster package.
var (
	// ErrParams is returned for invalid topology parameters.
	ErrParams = errors.New("cluster: invalid parameters")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("cluster: closed")
)

// Bridge forwards messages of one topic from a source to a target broker.
type Bridge struct {
	src, dst *broker.Broker
	sub      *broker.Subscriber
	maxHops  int

	cancel context.CancelFunc
	done   chan struct{}

	forwarded, dropped uint64
	mu                 sync.Mutex
}

// NewBridge starts forwarding topicName messages from src to dst. maxHops
// bounds re-forwarding (1 = messages cross at most one bridge).
func NewBridge(src, dst *broker.Broker, topicName string, maxHops int) (*Bridge, error) {
	if src == nil || dst == nil || src == dst {
		return nil, fmt.Errorf("%w: src/dst", ErrParams)
	}
	if maxHops < 1 {
		return nil, fmt.Errorf("%w: maxHops=%d", ErrParams, maxHops)
	}
	sub, err := src.Subscribe(topicName, nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Bridge{
		src:     src,
		dst:     dst,
		sub:     sub,
		maxHops: maxHops,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go b.pump(ctx)
	return b, nil
}

func (b *Bridge) pump(ctx context.Context) {
	defer close(b.done)
	for {
		var m *jms.Message
		select {
		case msg, ok := <-b.sub.Chan():
			if !ok {
				return
			}
			m = msg
		case <-ctx.Done():
			return
		}
		hops := b.maxHops
		if v, err := m.Int64Property(hopProperty); err == nil {
			hops = int(v)
		}
		if hops <= 0 {
			b.mu.Lock()
			b.dropped++
			b.mu.Unlock()
			continue
		}
		fwd := m.Clone()
		if err := fwd.SetInt64Property(hopProperty, int64(hops-1)); err != nil {
			continue
		}
		if err := b.dst.Publish(ctx, fwd); err != nil {
			if ctx.Err() != nil || errors.Is(err, broker.ErrClosed) {
				return
			}
			continue
		}
		b.mu.Lock()
		b.forwarded++
		b.mu.Unlock()
	}
}

// Stats returns the number of forwarded and loop-dropped messages.
func (b *Bridge) Stats() (forwarded, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.forwarded, b.dropped
}

// Close stops the bridge and waits for its pump to exit.
func (b *Bridge) Close() error {
	b.cancel()
	err := b.sub.Unsubscribe()
	<-b.done
	return err
}

// Cluster is a full mesh of brokers bridged pairwise on one topic.
type Cluster struct {
	brokers []*broker.Broker
	bridges []*Bridge
	topic   string

	mu     sync.Mutex
	closed bool
}

// NewMesh builds a full mesh of k brokers over topicName. Every pair is
// connected by two directed bridges with maxHops=1: a message published on
// any member reaches every other member exactly once, and the hop budget
// stops it from echoing further.
func NewMesh(k int, topicName string, opts broker.Options) (*Cluster, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: mesh size %d", ErrParams, k)
	}
	c := &Cluster{topic: topicName}
	for i := 0; i < k; i++ {
		b := broker.New(opts)
		if err := b.ConfigureTopic(topicName); err != nil {
			_ = c.Close()
			return nil, err
		}
		c.brokers = append(c.brokers, b)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			br, err := NewBridge(c.brokers[i], c.brokers[j], topicName, 1)
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			c.bridges = append(c.bridges, br)
		}
	}
	return c, nil
}

// Brokers returns the cluster members.
func (c *Cluster) Brokers() []*broker.Broker {
	out := make([]*broker.Broker, len(c.brokers))
	copy(out, c.brokers)
	return out
}

// Publish sends a message through member i.
func (c *Cluster) Publish(ctx context.Context, member int, m *jms.Message) error {
	if member < 0 || member >= len(c.brokers) {
		return fmt.Errorf("%w: member %d of %d", ErrParams, member, len(c.brokers))
	}
	return c.brokers[member].Publish(ctx, m)
}

// Subscribe installs a filter on member i only; the mesh guarantees the
// member sees every message of the topic, so the subscriber behaves as if
// its filter were installed on one big server.
func (c *Cluster) Subscribe(member int, f filter.Filter) (*broker.Subscriber, error) {
	if member < 0 || member >= len(c.brokers) {
		return nil, fmt.Errorf("%w: member %d of %d", ErrParams, member, len(c.brokers))
	}
	return c.brokers[member].Subscribe(c.topic, f)
}

// Close shuts the bridges down first (so no forwarding races a closing
// broker), then the members.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	c.mu.Unlock()

	var firstErr error
	for _, br := range c.bridges {
		if err := br.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, b := range c.brokers {
		if err := b.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MeshCapacity predicts the received-message capacity of a k-member mesh
// carrying the same workload as a single server with n_fltr filters and
// replication E[R], when subscribers (and their filters) are spread evenly
// across members. Each member processes every message (k-1 extra receives
// system-wide per message) but scans only n_fltr/k filters.
func MeshCapacity(model core.CostModel, k, nFltr int, meanR, rho float64) (float64, error) {
	if k < 1 || nFltr < 0 || meanR < 0 || rho <= 0 || rho > 1 {
		return 0, fmt.Errorf("%w: k=%d nFltr=%d meanR=%g rho=%g", ErrParams, k, nFltr, meanR, rho)
	}
	if err := model.Valid(); err != nil {
		return 0, err
	}
	// Per-member work per published message: one receive, a scan over its
	// shard of filters, and its share of the transmissions.
	perMember := model.TRcv + float64(nFltr)/float64(k)*model.TFltr + meanR/float64(k)*model.TTx
	return rho / perMember, nil
}
