// Package cluster implements broker clustering, the paper's stated ongoing
// work ("we investigate the message throughput performance of server
// clusters and work on concepts to achieve true JMS system scalability").
//
// A cluster connects off-the-shelf brokers with bridges: a bridge
// subscribes on a source broker and republishes everything it receives on
// a target broker. A hop-count property prevents routing loops in cyclic
// topologies (full meshes). Publishers and subscribers keep using plain
// single-broker connections; the cluster makes every message reach every
// member, so a subscriber's filters behave as if installed on one big
// server — trading extra receive work (one t_rcv per member per message)
// for distributing the n_fltr*t_fltr filter scans across machines.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
)

// hopProperty is the message property carrying the remaining forwarding
// budget; it is stamped by bridges and never visible to the application
// because filters on user properties ignore it by name.
const hopProperty = "$jmsperfHops"

// Errors of the cluster package.
var (
	// ErrParams is returned for invalid topology parameters.
	ErrParams = errors.New("cluster: invalid parameters")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("cluster: closed")
)

// Bridge forwards messages of one topic from a source to a target broker.
//
// Bridges share the client package's reconnect policy: when the source
// subscription dies (member restart) the bridge resubscribes with
// exponential backoff, and when the target refuses a publish because it
// is closed the bridge retries against whatever broker the dst accessor
// resolves to. A mesh built by NewMesh therefore heals by itself after
// Cluster.Restart replaces a member.
type Bridge struct {
	src, dst func() *broker.Broker
	topic    string
	maxHops  int
	backoff  client.Backoff
	rng      *rand.Rand // pump-goroutine only

	cancel context.CancelFunc
	done   chan struct{}

	mu                 sync.Mutex
	sub                *broker.Subscriber
	forwarded, dropped uint64
	reconnects         uint64
}

// NewBridge starts forwarding topicName messages from src to dst. maxHops
// bounds re-forwarding (1 = messages cross at most one bridge).
func NewBridge(src, dst *broker.Broker, topicName string, maxHops int) (*Bridge, error) {
	if src == nil || dst == nil || src == dst {
		return nil, fmt.Errorf("%w: src/dst", ErrParams)
	}
	return NewBridgeFunc(
		func() *broker.Broker { return src },
		func() *broker.Broker { return dst },
		topicName, maxHops, client.Backoff{})
}

// NewBridgeFunc is NewBridge with dynamic endpoints: src and dst are
// re-resolved on every reconnect and every forward, so the caller can
// swap the underlying brokers (see Cluster.Restart) and the bridge
// follows. bo zero-values fall back to the client package defaults.
func NewBridgeFunc(src, dst func() *broker.Broker, topicName string, maxHops int, bo client.Backoff) (*Bridge, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("%w: src/dst", ErrParams)
	}
	if maxHops < 1 {
		return nil, fmt.Errorf("%w: maxHops=%d", ErrParams, maxHops)
	}
	sub, err := src().Subscribe(topicName, nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Bridge{
		src:     src,
		dst:     dst,
		topic:   topicName,
		maxHops: maxHops,
		backoff: bo,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		sub:     sub,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go b.pump(ctx, sub)
	return b, nil
}

func (b *Bridge) pump(ctx context.Context, sub *broker.Subscriber) {
	defer close(b.done)
	for {
		var m *jms.Message
		select {
		case msg, ok := <-sub.Chan():
			if !ok {
				// Source died (broker restarted or subscription torn
				// down). Re-subscribe against the current src broker.
				sub = b.resubscribe(ctx)
				if sub == nil {
					return
				}
				continue
			}
			m = msg
		case <-ctx.Done():
			return
		}
		hops := b.maxHops
		if v, err := m.Int64Property(hopProperty); err == nil {
			hops = int(v)
		}
		if hops <= 0 {
			b.mu.Lock()
			b.dropped++
			b.mu.Unlock()
			continue
		}
		fwd := m.Clone()
		if err := fwd.SetInt64Property(hopProperty, int64(hops-1)); err != nil {
			continue
		}
		if !b.forward(ctx, fwd) {
			return
		}
	}
}

// forward publishes one message to the current dst, retrying with
// backoff while the target is closed (mid-restart). Returns false only
// when the bridge context was cancelled.
func (b *Bridge) forward(ctx context.Context, fwd *jms.Message) bool {
	for attempt := 0; ; attempt++ {
		err := b.dst().Publish(ctx, fwd)
		if err == nil {
			b.mu.Lock()
			b.forwarded++
			b.mu.Unlock()
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		if !errors.Is(err, broker.ErrClosed) {
			// Non-retryable publish failure (e.g. missing topic on a
			// foreign broker): drop this message, keep the bridge up.
			return true
		}
		select {
		case <-time.After(b.backoff.Delay(attempt, b.rng)):
		case <-ctx.Done():
			return false
		}
	}
}

// resubscribe re-establishes the source subscription with backoff until
// it succeeds or the bridge is closed. Returns nil on cancellation.
func (b *Bridge) resubscribe(ctx context.Context) *broker.Subscriber {
	for attempt := 0; ; attempt++ {
		select {
		case <-time.After(b.backoff.Delay(attempt, b.rng)):
		case <-ctx.Done():
			return nil
		}
		sub, err := b.src().Subscribe(b.topic, nil)
		if err != nil {
			continue
		}
		if ctx.Err() != nil {
			// Closed while resubscribing: do not leak the subscription.
			_ = sub.Unsubscribe()
			return nil
		}
		b.mu.Lock()
		b.sub = sub
		b.reconnects++
		b.mu.Unlock()
		return sub
	}
}

// Stats returns the number of forwarded and loop-dropped messages.
func (b *Bridge) Stats() (forwarded, dropped uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.forwarded, b.dropped
}

// Reconnects returns how many times the bridge re-established its
// source subscription after losing it.
func (b *Bridge) Reconnects() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reconnects
}

// Close stops the bridge and waits for its pump to exit.
func (b *Bridge) Close() error {
	b.cancel()
	b.mu.Lock()
	sub := b.sub
	b.sub = nil
	b.mu.Unlock()
	var err error
	if sub != nil {
		err = sub.Unsubscribe()
	}
	<-b.done
	return err
}

// Cluster is a full mesh of brokers bridged pairwise on one topic.
type Cluster struct {
	bridges []*Bridge
	topic   string
	opts    broker.Options

	mu      sync.Mutex
	brokers []*broker.Broker
	closed  bool
}

// NewMesh builds a full mesh of k brokers over topicName. Every pair is
// connected by two directed bridges with maxHops=1: a message published on
// any member reaches every other member exactly once, and the hop budget
// stops it from echoing further.
func NewMesh(k int, topicName string, opts broker.Options) (*Cluster, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: mesh size %d", ErrParams, k)
	}
	c := &Cluster{topic: topicName, opts: opts}
	for i := 0; i < k; i++ {
		b := broker.New(opts)
		if err := b.ConfigureTopic(topicName); err != nil {
			_ = c.Close()
			return nil, err
		}
		c.brokers = append(c.brokers, b)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			// Resolve endpoints through the cluster on every use so the
			// bridge follows a member replaced by Restart.
			src, dst := i, j
			br, err := NewBridgeFunc(
				func() *broker.Broker { return c.member(src) },
				func() *broker.Broker { return c.member(dst) },
				topicName, 1, client.Backoff{})
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			c.bridges = append(c.bridges, br)
		}
	}
	return c, nil
}

// member returns the current broker for a slot.
func (c *Cluster) member(i int) *broker.Broker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brokers[i]
}

// Restart replaces member i with a fresh broker built from the same
// options: the old instance is closed and the mesh heals on its own —
// bridges sourcing from the member resubscribe against the replacement,
// and bridges targeting it retry their forwards until the swap lands.
// Subscribers on the restarted member are torn down with it, exactly as
// a real broker restart would; re-subscribe against the new instance.
func (c *Cluster) Restart(member int) error {
	next := broker.New(c.opts)
	if err := next.ConfigureTopic(c.topic); err != nil {
		_ = next.Close()
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = next.Close()
		return ErrClosed
	}
	if member < 0 || member >= len(c.brokers) {
		c.mu.Unlock()
		_ = next.Close()
		return fmt.Errorf("%w: member %d of %d", ErrParams, member, len(c.brokers))
	}
	old := c.brokers[member]
	c.brokers[member] = next
	c.mu.Unlock()
	// Closing old wakes every bridge subscribed to it; they find next
	// through the accessor.
	return old.Close()
}

// Brokers returns the current cluster members.
func (c *Cluster) Brokers() []*broker.Broker {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*broker.Broker, len(c.brokers))
	copy(out, c.brokers)
	return out
}

// checkedMember resolves slot i under the lock, range-checked.
func (c *Cluster) checkedMember(i int) (*broker.Broker, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.brokers) {
		return nil, fmt.Errorf("%w: member %d of %d", ErrParams, i, len(c.brokers))
	}
	return c.brokers[i], nil
}

// Publish sends a message through member i.
func (c *Cluster) Publish(ctx context.Context, member int, m *jms.Message) error {
	b, err := c.checkedMember(member)
	if err != nil {
		return err
	}
	return b.Publish(ctx, m)
}

// Subscribe installs a filter on member i only; the mesh guarantees the
// member sees every message of the topic, so the subscriber behaves as if
// its filter were installed on one big server.
func (c *Cluster) Subscribe(member int, f filter.Filter) (*broker.Subscriber, error) {
	b, err := c.checkedMember(member)
	if err != nil {
		return nil, err
	}
	return b.Subscribe(c.topic, f)
}

// Reconnects sums the bridge reconnect counters: how many source
// subscriptions the mesh re-established after member restarts.
func (c *Cluster) Reconnects() uint64 {
	var n uint64
	for _, br := range c.bridges {
		n += br.Reconnects()
	}
	return n
}

// Close shuts the bridges down first (so no forwarding races a closing
// broker), then the members.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.closed = true
	brokers := make([]*broker.Broker, len(c.brokers))
	copy(brokers, c.brokers)
	c.mu.Unlock()

	var firstErr error
	for _, br := range c.bridges {
		if err := br.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, b := range brokers {
		if err := b.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MeshCapacity predicts the received-message capacity of a k-member mesh
// carrying the same workload as a single server with n_fltr filters and
// replication E[R], when subscribers (and their filters) are spread evenly
// across members. Each member processes every message (k-1 extra receives
// system-wide per message) but scans only n_fltr/k filters.
func MeshCapacity(model core.CostModel, k, nFltr int, meanR, rho float64) (float64, error) {
	if k < 1 || nFltr < 0 || meanR < 0 || rho <= 0 || rho > 1 {
		return 0, fmt.Errorf("%w: k=%d nFltr=%d meanR=%g rho=%g", ErrParams, k, nFltr, meanR, rho)
	}
	if err := model.Valid(); err != nil {
		return 0, err
	}
	// Per-member work per published message: one receive, a scan over its
	// shard of filters, and its share of the transmissions.
	perMember := model.TRcv + float64(nFltr)/float64(k)*model.TFltr + meanR/float64(k)*model.TTx
	return rho / perMember, nil
}
