package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// TestBridgeForwardsTraceID pins that a forwarded copy keeps the
// original message's TraceID, so a flight record spans the whole mesh —
// the member brokers' recorders merge spans under one ID.
func TestBridgeForwardsTraceID(t *testing.T) {
	src := broker.New(broker.Options{})
	dst := broker.New(broker.Options{})
	defer func() { _ = src.Close(); _ = dst.Close() }()
	for _, b := range []*broker.Broker{src, dst} {
		if err := b.ConfigureTopic("t"); err != nil {
			t.Fatal(err)
		}
	}
	br, err := NewBridge(src, dst, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = br.Close() }()

	sub, err := dst.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const id = 0xFEEDF00D1234
	m := jms.NewMessage("t")
	m.Header.TraceID = id
	if err := src.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := sub.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.TraceID != id {
		t.Errorf("forwarded TraceID = %#x, want %#x", got.Header.TraceID, id)
	}
}

// TestMeshPreservesTraceID publishes into a 3-member mesh and checks the
// copy every member delivers carries the publisher's TraceID.
func TestMeshPreservesTraceID(t *testing.T) {
	const k = 3
	c := newMesh(t, k)
	subs := make([]*broker.Subscriber, k)
	for i := range subs {
		s, err := c.Subscribe(i, filter.All{})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const id = 0xA5A5A5A5
	m := jms.NewMessage("t")
	m.Header.TraceID = id
	if err := c.Publish(ctx, 1, m); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		got, err := s.Receive(ctx)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if got.Header.TraceID != id {
			t.Errorf("member %d TraceID = %#x, want %#x", i, got.Header.TraceID, id)
		}
	}
}
