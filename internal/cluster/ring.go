package cluster

// This file implements the deterministic topic-partitioning ring behind
// the hash topology — the third distributed architecture the paper did
// not have. Topics are assigned to members by rendezvous (highest-random-
// weight) hashing with an explicit balancing pass, which buys two
// guarantees classic vnode rings cannot make exactly:
//
//   - every topic has exactly one owner at all times (no orphaned or
//     doubly-owned topics, ever — the assignment is a total function), and
//   - a membership event moves at most ⌈K/N⌉ topics (K topics, N members
//     after a join / before a leave): a join steals only enough topics to
//     rebalance, a leave redistributes only the leaver's topics.
//
// Both follow from the maintained balance invariant: member loads never
// differ by more than one. All choices (victims, stolen topics, heirs)
// are resolved by hash score with lexicographic tie-breaks, so two nodes
// replaying the same membership history compute identical assignments —
// which is what lets jmsload route publishes client-side while jmsd
// routes forwards server-side without exchanging an assignment table.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a deterministic balanced assignment of topics to members. It is
// a plain data structure: the caller (Topology, WireMesh) provides
// locking.
type Ring struct {
	members []string          // sorted
	topics  []string          // sorted
	owner   map[string]string // topic -> member
	load    map[string]int    // member -> owned topic count
}

// ringScore is the rendezvous weight of (member, topic): FNV-1a over the
// pair, so every node computes the same preference order.
func ringScore(member, topic string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(topic))
	return h.Sum64()
}

// NewRing builds the balanced assignment of topics onto members. Both
// slices must be non-empty and free of duplicates and empty strings.
func NewRing(members, topics []string) (*Ring, error) {
	if len(members) == 0 || len(topics) == 0 {
		return nil, fmt.Errorf("%w: ring needs members and topics", ErrParams)
	}
	r := &Ring{
		members: uniqueSorted(members),
		topics:  uniqueSorted(topics),
		owner:   make(map[string]string, len(topics)),
		load:    make(map[string]int, len(members)),
	}
	if len(r.members) != len(members) || len(r.topics) != len(topics) {
		return nil, fmt.Errorf("%w: duplicate ring entries", ErrParams)
	}
	for _, s := range r.members {
		if s == "" {
			return nil, fmt.Errorf("%w: empty member id", ErrParams)
		}
		r.load[s] = 0
	}
	for _, t := range r.topics {
		if t == "" {
			return nil, fmt.Errorf("%w: empty topic", ErrParams)
		}
	}
	// Greedy rendezvous placement under a hard cap, then equalize. The cap
	// keeps the greedy pass from piling everything on a hash-lucky member;
	// the equalize pass establishes the diff<=1 balance invariant every
	// later movement bound relies on.
	cap := (len(r.topics) + len(r.members) - 1) / len(r.members)
	for _, t := range r.topics {
		best, bestScore := "", uint64(0)
		for _, m := range r.members {
			if r.load[m] >= cap {
				continue
			}
			if s := ringScore(m, t); best == "" || s > bestScore || (s == bestScore && m < best) {
				best, bestScore = m, s
			}
		}
		r.assign(t, best)
	}
	r.equalize()
	return r, nil
}

// assign makes member the owner of topic, updating loads.
func (r *Ring) assign(topic, member string) {
	if prev, ok := r.owner[topic]; ok {
		r.load[prev]--
	}
	r.owner[topic] = member
	r.load[member]++
}

// equalize restores the diff<=1 balance invariant by moving, while the
// spread exceeds one, the destination's highest-scoring topic from the
// most- to the least-loaded member.
func (r *Ring) equalize() {
	for {
		hi, lo := r.extremes()
		if r.load[hi]-r.load[lo] <= 1 {
			return
		}
		r.assign(r.bestOwnedTopic(hi, lo), lo)
	}
}

// extremes returns the most- and least-loaded members, ties broken by
// member id so the choice is deterministic.
func (r *Ring) extremes() (hi, lo string) {
	for _, m := range r.members {
		if hi == "" || r.load[m] > r.load[hi] {
			hi = m
		}
		if lo == "" || r.load[m] < r.load[lo] {
			lo = m
		}
	}
	return hi, lo
}

// bestOwnedTopic returns, among the topics owned by from, the one the
// destination member scores highest — the topic that "prefers" dst most —
// with a lexicographic tie-break.
func (r *Ring) bestOwnedTopic(from, dst string) string {
	best, bestScore := "", uint64(0)
	for _, t := range r.topics {
		if r.owner[t] != from {
			continue
		}
		if s := ringScore(dst, t); best == "" || s > bestScore || (s == bestScore && t < best) {
			best, bestScore = t, s
		}
	}
	return best
}

// Owner returns the member owning a topic.
func (r *Ring) Owner(topic string) (string, bool) {
	m, ok := r.owner[topic]
	return m, ok
}

// Members returns the sorted member ids.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Topics returns the sorted topic set.
func (r *Ring) Topics() []string {
	out := make([]string, len(r.topics))
	copy(out, r.topics)
	return out
}

// OwnedBy returns the topics owned by a member, sorted.
func (r *Ring) OwnedBy(member string) []string {
	var out []string
	for _, t := range r.topics {
		if r.owner[t] == member {
			out = append(out, t)
		}
	}
	return out
}

// Loads returns a copy of the per-member owned-topic counts.
func (r *Ring) Loads() map[string]int {
	out := make(map[string]int, len(r.load))
	for m, n := range r.load {
		out[m] = n
	}
	return out
}

// Join adds a member and rebalances: topics are stolen from the currently
// most-loaded members until the spread is back within one. Returns the
// moved topics with their previous owners. At most ⌈K/N⌉ topics move
// (N counting the new member), because the newcomer ends at the balanced
// load and only its topics moved.
func (r *Ring) Join(member string) (map[string]string, error) {
	if member == "" {
		return nil, fmt.Errorf("%w: empty member id", ErrParams)
	}
	if _, ok := r.load[member]; ok {
		return nil, fmt.Errorf("%w: member %q already present", ErrParams, member)
	}
	r.members = insertSorted(r.members, member)
	r.load[member] = 0
	moved := make(map[string]string)
	for {
		hi, _ := r.extremes()
		if r.load[hi] <= r.load[member]+1 {
			break
		}
		t := r.bestOwnedTopic(hi, member)
		moved[t] = hi
		r.assign(t, member)
	}
	return moved, nil
}

// Leave removes a member, redistributing only its topics to the least-
// loaded survivors. Returns the moved topics with their new owners. At
// most ⌈K/N⌉ topics move (N counting the leaver), because balance bounded
// the leaver's load by that ceiling and nothing else moves.
func (r *Ring) Leave(member string) (map[string]string, error) {
	if _, ok := r.load[member]; !ok {
		return nil, fmt.Errorf("%w: member %q not present", ErrParams, member)
	}
	if len(r.members) == 1 {
		return nil, fmt.Errorf("%w: cannot remove the last member", ErrParams)
	}
	orphans := r.OwnedBy(member)
	r.members = removeSorted(r.members, member)
	delete(r.load, member)
	moved := make(map[string]string, len(orphans))
	for _, t := range orphans {
		// Heir: least-loaded survivor, ties by the topic's rendezvous
		// preference, then member id.
		heir := ""
		for _, m := range r.members {
			if heir == "" || r.load[m] < r.load[heir] {
				heir = m
				continue
			}
			if r.load[m] == r.load[heir] {
				sm, sh := ringScore(m, t), ringScore(heir, t)
				if sm > sh || (sm == sh && m < heir) {
					heir = m
				}
			}
		}
		delete(r.owner, t) // leaver's ownership ends before reassignment
		r.owner[t] = heir
		r.load[heir]++
		moved[t] = heir
	}
	return moved, nil
}

func uniqueSorted(in []string) []string {
	out := make([]string, len(in))
	copy(out, in)
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

func insertSorted(in []string, s string) []string {
	i := sort.SearchStrings(in, s)
	in = append(in, "")
	copy(in[i+1:], in[i:])
	in[i] = s
	return in
}

func removeSorted(in []string, s string) []string {
	i := sort.SearchStrings(in, s)
	if i < len(in) && in[i] == s {
		return append(in[:i], in[i+1:]...)
	}
	return in
}
