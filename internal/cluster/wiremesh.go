package cluster

// This file implements the network form of the replication mesh: WireMesh
// plugs into a jmsd wire server as its wire.Forwarder and replicates
// client publishes to peer jmsd processes over FORWARD frames. It is the
// over-TCP counterpart of the in-process Topology — same three kinds,
// same routing rules, but with static membership fixed at boot (dynamic
// join/leave with rebalancing is the in-process layer's job):
//
//   - PSR: publishers are partitioned across brokers by which address
//     they dial; no server-side forwarding at all. Subscribers attach to
//     every broker (client side).
//   - SSR: every publish is flooded to all peers before it is acked, so
//     each subscriber's single home broker sees the full stream.
//   - hash: each topic has one deterministic owner; the entry broker
//     forwards to the owner and only publishes locally when it owns the
//     topic itself.
//
// Forwarding is synchronous: the Forwarder hook returns only after every
// required peer acked its FORWARD, so a PUB_ACK to the client means the
// message is accepted everywhere it must be. A peer failure rejects the
// publish instead — the client's retry path re-offers it, and the
// publisher-stamped dedupe identity makes the retry idempotent on peers
// that did accept the first attempt. That is what makes "zero acked
// messages lost" checkable across broker kill/restart.

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jms"
	"repro/internal/wire"
)

// meshMemberID names mesh member i the way the in-process Topology does
// ("m0", "m1", ...), so the wire mesh, the in-process mesh and client-side
// routers all compute identical ring assignments.
func meshMemberID(i int) string { return fmt.Sprintf("m%d", i) }

// HashRouter computes the topic→member assignment of an n-member hash
// mesh deterministically, so load generators can route client-side and
// servers can route forwards without ever exchanging an assignment table.
// With a static topic set it uses the balanced Ring; topics outside the
// set (or a nil set) fall back to pure rendezvous hashing, which every
// member still computes identically.
type HashRouter struct {
	n    int
	ring *Ring // nil when no static topic set was given
}

// NewHashRouter builds a router for an n-member mesh. topics may be nil.
func NewHashRouter(n int, topics []string) (*HashRouter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: mesh needs at least one member", ErrParams)
	}
	hr := &HashRouter{n: n}
	if len(topics) > 0 {
		members := make([]string, n)
		for i := range members {
			members[i] = meshMemberID(i)
		}
		ring, err := NewRing(members, topics)
		if err != nil {
			return nil, err
		}
		hr.ring = ring
	}
	return hr, nil
}

// Owner returns the mesh index owning topic.
func (hr *HashRouter) Owner(topic string) int {
	if hr.ring != nil {
		if owner, ok := hr.ring.Owner(topic); ok {
			for i := 0; i < hr.n; i++ {
				if meshMemberID(i) == owner {
					return i
				}
			}
		}
	}
	// Pure rendezvous fallback: argmax score, ties to the lower index.
	best, bestScore := 0, uint64(0)
	for i := 0; i < hr.n; i++ {
		if s := ringScore(meshMemberID(i), topic); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// WireMeshConfig configures a WireMesh.
type WireMeshConfig struct {
	// Kind selects the replication topology.
	Kind TopologyKind
	// Self is this member's index into Addrs.
	Self int
	// Addrs lists every member's wire address, self included (the self
	// slot is never dialed).
	Addrs []string
	// Topics is the static topic set for hash routing; optional (unknown
	// topics route by pure rendezvous).
	Topics []string
	// DialTimeout bounds each peer dial. Default 3s.
	DialTimeout time.Duration
	// AckTimeout bounds the wait for a peer's FORWARD ack. Default 10s.
	AckTimeout time.Duration
}

// WireMeshStats is a snapshot of the mesh forwarder's counters.
type WireMeshStats struct {
	Kind TopologyKind
	Self int
	// Peers is the number of remote members.
	Peers int
	// ForwardedOut counts FORWARD frames acked by peers.
	ForwardedOut uint64
	// ForwardErrors counts forwards that failed (dial, write, peer error,
	// ack timeout) and therefore rejected the triggering publish.
	ForwardErrors uint64
	// Reconnects counts re-dials after an established peer connection broke.
	Reconnects uint64
}

// WireMesh replicates publishes to peer jmsd servers. It implements
// wire.Forwarder; attach it via wire.ServeOptions.Forwarder.
type WireMesh struct {
	kind       TopologyKind
	self       int
	router     *HashRouter
	ackTimeout time.Duration

	peers []*meshPeer // indexed like Addrs; nil at self

	forwardedOut  atomic.Uint64
	forwardErrors atomic.Uint64
	reconnects    atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// NewWireMesh builds the mesh forwarder. Connections to peers are dialed
// lazily on first use and re-dialed after failures.
func NewWireMesh(cfg WireMeshConfig) (*WireMesh, error) {
	switch cfg.Kind {
	case TopologyPSR, TopologySSR, TopologyHash:
	default:
		return nil, fmt.Errorf("%w: unknown topology kind %d", ErrParams, cfg.Kind)
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Addrs) {
		return nil, fmt.Errorf("%w: self index %d outside %d addresses", ErrParams, cfg.Self, len(cfg.Addrs))
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 10 * time.Second
	}
	router, err := NewHashRouter(len(cfg.Addrs), cfg.Topics)
	if err != nil {
		return nil, err
	}
	wm := &WireMesh{
		kind:       cfg.Kind,
		self:       cfg.Self,
		router:     router,
		ackTimeout: cfg.AckTimeout,
		peers:      make([]*meshPeer, len(cfg.Addrs)),
	}
	for i, addr := range cfg.Addrs {
		if i == cfg.Self {
			continue
		}
		if addr == "" {
			return nil, fmt.Errorf("%w: empty address for member %d", ErrParams, i)
		}
		wm.peers[i] = &meshPeer{mesh: wm, addr: addr, dialTimeout: cfg.DialTimeout}
	}
	return wm, nil
}

// Stats returns a snapshot of the mesh counters.
func (wm *WireMesh) Stats() WireMeshStats {
	peers := 0
	for _, p := range wm.peers {
		if p != nil {
			peers++
		}
	}
	return WireMeshStats{
		Kind:          wm.kind,
		Self:          wm.self,
		Peers:         peers,
		ForwardedOut:  wm.forwardedOut.Load(),
		ForwardErrors: wm.forwardErrors.Load(),
		Reconnects:    wm.reconnects.Load(),
	}
}

// Kind returns the mesh's topology kind.
func (wm *WireMesh) Kind() TopologyKind { return wm.kind }

// Self returns this member's mesh index.
func (wm *WireMesh) Self() int { return wm.self }

// Close tears down all peer connections. In-flight forwards fail.
func (wm *WireMesh) Close() error {
	wm.mu.Lock()
	if wm.closed {
		wm.mu.Unlock()
		return ErrClosed
	}
	wm.closed = true
	wm.mu.Unlock()
	for _, p := range wm.peers {
		if p != nil {
			p.close()
		}
	}
	return nil
}

// ForwardPublish implements wire.Forwarder for single publishes.
func (wm *WireMesh) ForwardPublish(m *jms.Message, raw []byte) (bool, error) {
	switch wm.kind {
	case TopologyPSR:
		// Publisher-side replication partitions publishers by the address
		// they dialed; nothing to forward.
		return true, nil
	case TopologySSR:
		if err := wm.flood(false, raw); err != nil {
			return false, err
		}
		return true, nil
	default: // TopologyHash
		owner := wm.router.Owner(m.Header.Topic)
		if owner == wm.self {
			return true, nil
		}
		if err := wm.forwardTo(owner, false, raw); err != nil {
			return false, err
		}
		return false, nil
	}
}

// ForwardBatch implements wire.Forwarder for batch publishes.
func (wm *WireMesh) ForwardBatch(msgs []*jms.Message, raw []byte) (bool, error) {
	switch wm.kind {
	case TopologyPSR:
		return true, nil
	case TopologySSR:
		if err := wm.flood(true, raw); err != nil {
			return false, err
		}
		return true, nil
	default: // TopologyHash
		// Group the batch by owner. The common case — a router-aware
		// client sent a homogeneous batch — forwards the raw bytes
		// verbatim; mixed batches re-encode one sub-batch per remote
		// owner. Self-owned messages stay in the local publish; when a
		// mixed batch also carries remote-owned ones, the whole batch is
		// published locally — the remote-owned extras match no local
		// subscriber (subscribers only attach to a topic's owner), so this
		// trades a little wasted matching for not re-slicing the carrier.
		var groups map[int][]*jms.Message
		anySelf := false
		for _, m := range msgs {
			owner := wm.router.Owner(m.Header.Topic)
			if owner == wm.self {
				anySelf = true
				continue
			}
			if groups == nil {
				groups = make(map[int][]*jms.Message)
			}
			groups[owner] = append(groups[owner], m)
		}
		if groups == nil {
			return true, nil
		}
		if !anySelf && len(groups) == 1 {
			for owner := range groups {
				if err := wm.forwardTo(owner, true, raw); err != nil {
					return false, err
				}
			}
			return false, nil
		}
		for owner, group := range groups {
			if err := wm.forwardTo(owner, true, wire.EncodeBatch(group)); err != nil {
				return false, err
			}
		}
		return anySelf, nil
	}
}

// flood forwards the payload to every peer, concurrently, and fails if
// any peer failed — the publish is then rejected as a whole and the
// client's retry is deduped by the peers that did accept it.
func (wm *WireMesh) flood(batch bool, inner []byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(wm.peers))
	for i, p := range wm.peers {
		if p == nil {
			continue
		}
		wg.Add(1)
		go func(i int, p *meshPeer) {
			defer wg.Done()
			errs[i] = wm.track(p.forward(batch, inner))
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forwardTo forwards the payload to one member.
func (wm *WireMesh) forwardTo(member int, batch bool, inner []byte) error {
	p := wm.peers[member]
	if p == nil {
		return fmt.Errorf("cluster: forward to self (member %d)", member)
	}
	return wm.track(p.forward(batch, inner))
}

// track folds one forward outcome into the mesh counters.
func (wm *WireMesh) track(err error) error {
	if err != nil {
		wm.forwardErrors.Add(1)
		return err
	}
	wm.forwardedOut.Add(1)
	return nil
}

// meshPeer is one lazily-dialed, pipelined connection to a peer server.
// Concurrent forwards share the connection: each registers a waiter under
// its request ID, the acks complete them in whatever order they return.
type meshPeer struct {
	mesh        *WireMesh
	addr        string
	dialTimeout time.Duration

	// mu guards the connection identity and the waiter table; wmu
	// serializes frame writes so a blocked write never holds up ack
	// completion.
	mu            sync.Mutex
	wmu           sync.Mutex
	conn          net.Conn
	gen           uint64
	nextReq       uint64
	waiters       map[uint64]chan error
	everConnected bool
	closed        bool
}

// forward sends one FORWARD frame and waits for the peer's ack.
func (p *meshPeer) forward(batch bool, inner []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
		if err != nil {
			p.mu.Unlock()
			return fmt.Errorf("cluster: dial peer %s: %w", p.addr, err)
		}
		if p.everConnected {
			p.mesh.reconnects.Add(1)
		}
		p.everConnected = true
		p.conn = conn
		p.gen++
		p.waiters = make(map[uint64]chan error)
		go p.readLoop(conn, p.gen)
	}
	conn, gen := p.conn, p.gen
	p.nextReq++
	req := p.nextReq
	ch := make(chan error, 1)
	p.waiters[req] = ch
	p.mu.Unlock()

	payload := wire.EncodeForward(req, wire.ForwardHeader{
		Origin: uint32(p.mesh.self),
		Hops:   1,
		Batch:  batch,
	}, inner)

	p.wmu.Lock()
	err := wire.WriteFrame(conn, wire.Frame{Type: wire.FrameForward, Payload: payload})
	p.wmu.Unlock()
	if err != nil {
		p.fail(gen, err)
		return fmt.Errorf("cluster: forward to %s: %w", p.addr, err)
	}

	select {
	case err := <-ch:
		if err != nil {
			return fmt.Errorf("cluster: peer %s rejected forward: %w", p.addr, err)
		}
		return nil
	case <-time.After(p.mesh.ackTimeout):
		// Leave the waiter registered: a late ack completes into the
		// buffered channel, a connection failure sweeps it. Either way no
		// goroutine leaks — but the connection is suspect, so drop it.
		p.fail(gen, fmt.Errorf("cluster: peer %s ack timeout", p.addr))
		return fmt.Errorf("cluster: peer %s ack timeout after %s", p.addr, p.mesh.ackTimeout)
	}
}

// readLoop drains acks for one connection generation.
func (p *meshPeer) readLoop(conn net.Conn, gen uint64) {
	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			p.fail(gen, err)
			return
		}
		switch f.Type {
		case wire.FramePubAck:
			req, err := wire.DecodeU64(f.Payload)
			if err != nil {
				p.fail(gen, err)
				return
			}
			p.complete(gen, req, nil)
		case wire.FrameError:
			req, msg, err := wire.DecodeError(f.Payload)
			if err != nil {
				p.fail(gen, err)
				return
			}
			p.complete(gen, req, fmt.Errorf("%s", msg))
		default:
			// Unexpected frame on a forward-only connection.
			p.fail(gen, fmt.Errorf("cluster: unexpected %v from peer", f.Type))
			return
		}
	}
}

// complete resolves one waiter of the given connection generation.
func (p *meshPeer) complete(gen, req uint64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen || p.waiters == nil {
		return
	}
	if ch, ok := p.waiters[req]; ok {
		delete(p.waiters, req)
		ch <- err
	}
}

// fail tears down one connection generation, sweeping every waiter with
// the error. Later generations are untouched.
func (p *meshPeer) fail(gen uint64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen || p.conn == nil {
		return
	}
	_ = p.conn.Close()
	p.conn = nil
	for req, ch := range p.waiters {
		delete(p.waiters, req)
		ch <- err
	}
	p.waiters = nil
}

// close shuts the peer down for good.
func (p *meshPeer) close() {
	p.mu.Lock()
	p.closed = true
	conn, gen := p.conn, p.gen
	p.mu.Unlock()
	if conn != nil {
		p.fail(gen, ErrClosed)
	}
}
