package cluster

// This file implements the replication topologies of the paper's Section
// on distributed architectures (Eqs. 21–23) as a live multi-broker layer:
//
//   - PSR (publisher-side server replication): each publisher enters at
//     its own broker and every subscriber's filter is mirrored on all n
//     brokers, so a message is matched exactly once — at its ingress
//     broker — and each broker carries the full m·n_fltr filter load
//     (Eq. 21: system capacity n times a slowed-down server).
//   - SSR (subscriber-side server replication): each subscriber homes on
//     one broker and every publish is flooded to all brokers, each of
//     which matches only its local subscribers' filters (Eq. 22: the
//     per-server capacity is independent of n and m).
//   - Hash: the topology the paper didn't have — topics are partitioned
//     across brokers by the deterministic Ring, each message is received
//     and matched exactly once at the topic's owner, and membership
//     changes rebalance only the minimal topic set.
//
// The layer is deliberately in-process (brokers, not sockets): it is the
// core artifact the conformance, metamorphic and chaos walls pin down.
// WireMesh (wiremesh.go) carries the same routing rules between real
// jmsd processes.
//
// Rebalancing is lossless for accepted messages: publishes take the
// topology's read lock, a membership change takes the write lock (so no
// publish is in flight mid-move), quiesces the affected topics on the old
// owner (every accepted message committed — the broker's per-topic
// telemetry counters make that observable), re-subscribes on the new
// owner, and only then drains the old subscription's residue into the
// subscriber's merged channel. The drain protocol leans on two documented
// broker guarantees: no new delivery is enqueued once Unsubscribe has
// returned, and Close drains accepted messages into subscriber channels
// before closing them.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// TopologyKind selects a replication architecture.
type TopologyKind int

// The three replication topologies.
const (
	// TopologyPSR is publisher-side server replication (Eq. 21).
	TopologyPSR TopologyKind = iota + 1
	// TopologySSR is subscriber-side server replication (Eq. 22).
	TopologySSR
	// TopologyHash is consistent-hash topic partitioning.
	TopologyHash
)

// String returns the flag spelling of the kind.
func (k TopologyKind) String() string {
	switch k {
	case TopologyPSR:
		return "psr"
	case TopologySSR:
		return "ssr"
	case TopologyHash:
		return "hash"
	default:
		return fmt.Sprintf("TopologyKind(%d)", int(k))
	}
}

// ParseTopology parses the -mesh flag spelling.
func ParseTopology(s string) (TopologyKind, error) {
	switch s {
	case "psr":
		return TopologyPSR, nil
	case "ssr":
		return TopologySSR, nil
	case "hash":
		return TopologyHash, nil
	default:
		return 0, fmt.Errorf("%w: topology %q (want psr, ssr or hash)", ErrParams, s)
	}
}

// TopologyConfig parameterizes NewTopology.
type TopologyConfig struct {
	// Kind selects the replication architecture.
	Kind TopologyKind
	// Members is the number of brokers (the paper's n for PSR, m for SSR).
	Members int
	// Topics are configured on every member.
	Topics []string
	// Broker configures each member. WaitTiming is forced on: the
	// rebalancer's quiesce barrier reads the per-topic telemetry counters.
	Broker broker.Options
	// OutBuffer is each TopoSub's merged-channel capacity. Default 1024.
	OutBuffer int
	// QuiesceTimeout bounds the per-topic drain wait during a rebalance.
	// Default 30s.
	QuiesceTimeout time.Duration
}

// topoMember is one broker slot with its stable id.
type topoMember struct {
	id string
	b  *broker.Broker
}

// Topology is a live replication mesh over in-process brokers.
type Topology struct {
	kind      TopologyKind
	topics    []string
	opts      broker.Options
	outBuffer int
	quiesceTO time.Duration

	mu      sync.RWMutex
	members []*topoMember
	ring    *Ring // TopologyHash only
	subs    map[*TopoSub]struct{}
	nextID  int
	closed  bool

	forwards      atomic.Uint64 // SSR flood copies + hash cross-member routes
	forwardErrors atomic.Uint64
	rebalances    atomic.Uint64
	topicsMoved   atomic.Uint64
}

// TopologyStats is a counter snapshot of the mesh.
type TopologyStats struct {
	Kind    TopologyKind
	Members int
	// Forwards counts messages that crossed a member boundary: SSR flood
	// copies and hash publishes whose origin was not the topic's owner.
	Forwards uint64
	// ForwardErrors counts cross-member publishes refused by a closing
	// member.
	ForwardErrors uint64
	// Rebalances counts membership events that moved subscriptions.
	Rebalances uint64
	// TopicsMoved counts topic moves across all rebalances.
	TopicsMoved uint64
	// MemberIDs and MemberReceived list, per live member, its id and its
	// broker's accepted-message counter — the per-broker λ numerator.
	MemberIDs      []string
	MemberReceived []uint64
}

// NewTopology builds a mesh of cfg.Members brokers wired as cfg.Kind.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	switch cfg.Kind {
	case TopologyPSR, TopologySSR, TopologyHash:
	default:
		return nil, fmt.Errorf("%w: kind %v", ErrParams, cfg.Kind)
	}
	if cfg.Members < 1 || len(cfg.Topics) == 0 {
		return nil, fmt.Errorf("%w: members=%d topics=%d", ErrParams, cfg.Members, len(cfg.Topics))
	}
	if cfg.OutBuffer <= 0 {
		cfg.OutBuffer = 1024
	}
	if cfg.QuiesceTimeout <= 0 {
		cfg.QuiesceTimeout = 30 * time.Second
	}
	cfg.Broker.WaitTiming = true
	t := &Topology{
		kind:      cfg.Kind,
		topics:    append([]string(nil), cfg.Topics...),
		opts:      cfg.Broker,
		outBuffer: cfg.OutBuffer,
		quiesceTO: cfg.QuiesceTimeout,
		subs:      make(map[*TopoSub]struct{}),
	}
	for i := 0; i < cfg.Members; i++ {
		m, err := t.newMember()
		if err != nil {
			_ = t.Close()
			return nil, err
		}
		t.members = append(t.members, m)
	}
	if cfg.Kind == TopologyHash {
		ids := make([]string, len(t.members))
		for i, m := range t.members {
			ids[i] = m.id
		}
		r, err := NewRing(ids, t.topics)
		if err != nil {
			_ = t.Close()
			return nil, err
		}
		t.ring = r
	}
	return t, nil
}

// newMember creates and configures one broker slot.
func (t *Topology) newMember() (*topoMember, error) {
	m := &topoMember{id: fmt.Sprintf("m%d", t.nextID), b: broker.New(t.opts)}
	t.nextID++
	for _, tp := range t.topics {
		if err := m.b.ConfigureTopic(tp); err != nil {
			_ = m.b.Close()
			return nil, err
		}
	}
	return m, nil
}

// Kind returns the topology kind.
func (t *Topology) Kind() TopologyKind { return t.kind }

// MemberIDs returns the live member ids in slot order.
func (t *Topology) MemberIDs() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]string, len(t.members))
	for i, m := range t.members {
		ids[i] = m.id
	}
	return ids
}

// Brokers returns the live member brokers in slot order, for telemetry
// inspection by the conformance harness.
func (t *Topology) Brokers() []*broker.Broker {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*broker.Broker, len(t.members))
	for i, m := range t.members {
		out[i] = m.b
	}
	return out
}

// Owner returns the member id owning a topic (hash topology only).
func (t *Topology) Owner(topic string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.ring == nil {
		return "", false
	}
	return t.ring.Owner(topic)
}

func (t *Topology) memberByID(id string) (int, *topoMember) {
	for i, m := range t.members {
		if m.id == id {
			return i, m
		}
	}
	return -1, nil
}

// Publish routes one message through the topology. origin identifies the
// publisher; it is mapped onto a member slot (origin mod members) for the
// architectures that partition publishers. An error means the message was
// not (or not everywhere) accepted; retrying a failed SSR flood may
// duplicate copies at members that had already accepted theirs.
func (t *Topology) Publish(ctx context.Context, origin int, m *jms.Message) error {
	if origin < 0 {
		return fmt.Errorf("%w: origin %d", ErrParams, origin)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ErrClosed
	}
	n := len(t.members)
	entry := t.members[origin%n]
	switch t.kind {
	case TopologyPSR:
		// Matched once at the ingress broker; subscribers reached through
		// their mirrored filters.
		return entry.b.Publish(ctx, m)
	case TopologySSR:
		// Flood: every member sees the full stream and matches only its
		// local subscribers. The entry member publishes the original, the
		// rest get clones.
		var firstErr error
		for i, mem := range t.members {
			msg := m
			if i != origin%n {
				msg = m.Clone()
			}
			if err := mem.b.Publish(ctx, msg); err != nil {
				t.forwardErrors.Add(1)
				if firstErr == nil {
					firstErr = fmt.Errorf("member %s: %w", mem.id, err)
				}
				continue
			}
			if i != origin%n {
				t.forwards.Add(1)
			}
		}
		return firstErr
	case TopologyHash:
		ownerID, ok := t.ring.Owner(m.Header.Topic)
		if !ok {
			return fmt.Errorf("%w: topic %q not in ring", ErrParams, m.Header.Topic)
		}
		_, owner := t.memberByID(ownerID)
		if owner == nil {
			return fmt.Errorf("%w: owner %q gone", ErrParams, ownerID)
		}
		if owner != entry {
			t.forwards.Add(1)
		}
		if err := owner.b.Publish(ctx, m); err != nil {
			if errors.Is(err, broker.ErrClosed) {
				t.forwardErrors.Add(1)
			}
			return err
		}
		return nil
	default:
		return fmt.Errorf("%w: kind %v", ErrParams, t.kind)
	}
}

// Subscribe installs a subscriber according to the topology: mirrored on
// every member for PSR, homed on one member (home mod members) for SSR,
// and on the topic's ring owner for hash. The returned TopoSub merges all
// underlying delivery channels; the caller must drain it.
func (t *Topology) Subscribe(topicName string, f filter.Filter, home int) (*TopoSub, error) {
	if home < 0 {
		return nil, fmt.Errorf("%w: home %d", ErrParams, home)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	s := &TopoSub{
		t:     t,
		topic: topicName,
		fltr:  f,
		home:  home,
		out:   make(chan *jms.Message, t.outBuffer),
		dead:  make(chan struct{}),
		parts: make(map[string]*topoPart),
	}
	var targets []*topoMember
	switch t.kind {
	case TopologyPSR:
		targets = t.members
	case TopologySSR:
		targets = []*topoMember{t.members[home%len(t.members)]}
	case TopologyHash:
		ownerID, ok := t.ring.Owner(topicName)
		if !ok {
			return nil, fmt.Errorf("%w: topic %q not in ring", ErrParams, topicName)
		}
		_, owner := t.memberByID(ownerID)
		targets = []*topoMember{owner}
	}
	for _, mem := range targets {
		if err := s.attachLocked(mem); err != nil {
			s.teardownLocked()
			return nil, err
		}
	}
	t.subs[s] = struct{}{}
	return s, nil
}

// quiesceMember blocks until every message accepted by the member for the
// given topics has been committed (its deliveries enqueued), observable as
// the per-topic service-moment count catching up with the accepted count.
// Expiring messages would break the equality; topology traffic sets no
// expiration.
func (t *Topology) quiesceMember(m *topoMember, topics []string) error {
	deadline := time.Now().Add(t.quiesceTO)
	for {
		tel := m.b.Telemetry()
		settled := true
		for _, tp := range topics {
			if tt, ok := tel[tp]; ok && tt.ServiceMoments.N < tt.Received {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: quiesce of member %s timed out", m.id)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// AddMember grows the mesh by one broker and rebalances: hash steals the
// ring's minimal topic set from the existing members (quiescing and
// re-homing their subscriptions losslessly), PSR mirrors every
// subscription onto the newcomer, SSR only adds flood capacity.
func (t *Topology) AddMember() (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", ErrClosed
	}
	mem, err := t.newMember()
	if err != nil {
		return "", err
	}
	t.members = append(t.members, mem)
	switch t.kind {
	case TopologyPSR:
		for s := range t.subs {
			if err := s.attachLocked(mem); err != nil {
				return mem.id, err
			}
		}
	case TopologyHash:
		moved, err := t.ring.Join(mem.id)
		if err != nil {
			return mem.id, err
		}
		if err := t.migrateLocked(moved, mem.id); err != nil {
			return mem.id, err
		}
	}
	return mem.id, nil
}

// migrateLocked re-homes the subscriptions of moved topics (topic → old
// owner id for joins, topic → new owner id for leaves; dst resolves the
// destination per topic). Callers hold the write lock, so no publish is in
// flight; each source member is quiesced (if still alive) before its
// subscriptions are torn down, which makes the move lossless.
func (t *Topology) migrateLocked(moved map[string]string, joiner string) error {
	if len(moved) == 0 {
		return nil
	}
	t.rebalances.Add(1)
	t.topicsMoved.Add(uint64(len(moved)))
	for topic, other := range moved {
		srcID, dstID := other, joiner
		if joiner == "" {
			// Leave: the map holds the heir, the source is the leaver
			// whose parts are found on the subscription itself.
			dstID = other
			srcID = ""
		}
		_, dst := t.memberByID(dstID)
		if dst == nil {
			return fmt.Errorf("%w: destination %q gone", ErrParams, dstID)
		}
		for s := range t.subs {
			if s.topic != topic {
				continue
			}
			from := srcID
			if from == "" {
				from = s.soleMemberID()
			}
			if from != "" {
				if _, src := t.memberByID(from); src != nil {
					if err := t.quiesceMember(src, []string{topic}); err != nil {
						return err
					}
				}
			}
			if err := s.moveLocked(from, dst); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveMember gracefully drains a member and removes it: hash leaves the
// ring (moving only the leaver's topics), SSR re-homes the member's
// subscribers, PSR drops the member's mirrors. The member's broker is
// closed after its subscriptions have moved, so nothing accepted is lost.
func (t *Topology) RemoveMember(id string) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if len(t.members) == 1 {
		t.mu.Unlock()
		return fmt.Errorf("%w: cannot remove the last member", ErrParams)
	}
	idx, mem := t.memberByID(id)
	if mem == nil {
		t.mu.Unlock()
		return fmt.Errorf("%w: member %q", ErrParams, id)
	}
	if err := t.quiesceMember(mem, t.topics); err != nil {
		t.mu.Unlock()
		return err
	}
	t.members = append(t.members[:idx], t.members[idx+1:]...)
	var firstErr error
	switch t.kind {
	case TopologyPSR:
		for s := range t.subs {
			if err := s.dropLocked(id); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	case TopologySSR:
		heir := t.members[0]
		t.rebalances.Add(1)
		for s := range t.subs {
			if _, ok := s.parts[id]; !ok {
				continue
			}
			if err := s.moveLocked(id, heir); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	case TopologyHash:
		moved, err := t.ring.Leave(id)
		if err == nil {
			err = t.migrateLocked(moved, "")
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.mu.Unlock()
	if err := mem.b.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Kill abruptly closes a member's broker, then removes it and rebalances.
// The broker's Close drains accepted messages into the subscription
// channels before closing them, and the merged-channel pumps flush that
// residue, so messages acked before the kill still reach their
// subscribers. Publishes racing the kill fail and may be retried by the
// caller; they land on the rebalanced mesh.
func (t *Topology) Kill(id string) error {
	t.mu.RLock()
	_, mem := t.memberByID(id)
	single := len(t.members) == 1
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if mem == nil {
		return fmt.Errorf("%w: member %q", ErrParams, id)
	}
	if single {
		return fmt.Errorf("%w: cannot kill the last member", ErrParams)
	}
	// Close outside the lock: Close blocks until accepted messages are
	// drained, and concurrent publishes (holding the read lock) must be
	// able to fail out of the dying broker meanwhile.
	_ = mem.b.Close()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	idx, cur := t.memberByID(id)
	if cur == nil {
		return fmt.Errorf("%w: member %q", ErrParams, id)
	}
	t.members = append(t.members[:idx], t.members[idx+1:]...)
	switch t.kind {
	case TopologyPSR:
		for s := range t.subs {
			if err := s.dropLocked(id); err != nil {
				return err
			}
		}
	case TopologySSR:
		heir := t.members[0]
		t.rebalances.Add(1)
		for s := range t.subs {
			if _, ok := s.parts[id]; !ok {
				continue
			}
			if err := s.moveLocked(id, heir); err != nil {
				return err
			}
		}
	case TopologyHash:
		moved, err := t.ring.Leave(id)
		if err != nil {
			return err
		}
		if err := t.migrateLocked(moved, ""); err != nil {
			return err
		}
	}
	return nil
}

// Restart replaces a member's broker in place (same id, fresh instance),
// re-installing the subscriptions the slot carries. Equivalent to a crash
// followed by an immediate rejoin under the same identity; the ring does
// not move for hash.
func (t *Topology) Restart(id string) error {
	t.mu.RLock()
	_, mem := t.memberByID(id)
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if mem == nil {
		return fmt.Errorf("%w: member %q", ErrParams, id)
	}
	_ = mem.b.Close() // drains; pumps flush residue

	next := broker.New(t.opts)
	for _, tp := range t.topics {
		if err := next.ConfigureTopic(tp); err != nil {
			_ = next.Close()
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = next.Close()
		return ErrClosed
	}
	_, cur := t.memberByID(id)
	if cur == nil {
		_ = next.Close()
		return fmt.Errorf("%w: member %q", ErrParams, id)
	}
	cur.b = next
	for s := range t.subs {
		if _, ok := s.parts[id]; !ok {
			continue
		}
		if err := s.moveLocked(id, cur); err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshots the topology counters.
func (t *Topology) Stats() TopologyStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TopologyStats{
		Kind:          t.kind,
		Members:       len(t.members),
		Forwards:      t.forwards.Load(),
		ForwardErrors: t.forwardErrors.Load(),
		Rebalances:    t.rebalances.Load(),
		TopicsMoved:   t.topicsMoved.Load(),
	}
	for _, m := range t.members {
		st.MemberIDs = append(st.MemberIDs, m.id)
		st.MemberReceived = append(st.MemberReceived, m.b.Stats().Received)
	}
	return st
}

// Close tears down all subscriptions, then all members.
func (t *Topology) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.closed = true
	subs := make([]*TopoSub, 0, len(t.subs))
	for s := range t.subs {
		subs = append(subs, s)
	}
	members := t.members
	t.mu.Unlock()

	for _, s := range subs {
		s.close()
	}
	var firstErr error
	for _, m := range members {
		if err := m.b.Close(); err != nil && !errors.Is(err, broker.ErrClosed) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- TopoSub ---------------------------------------------------------------

// topoPart is one underlying broker subscription with its pump goroutine.
type topoPart struct {
	sub  *broker.Subscriber
	stop chan struct{} // drain residue non-blockingly, then exit
	done chan struct{}
}

// TopoSub is a topology-wide subscription: one merged delivery channel
// fed by a pump per underlying broker subscription (n pumps for PSR, one
// for SSR and hash). Rebalances re-home the underlying subscriptions
// without losing accepted messages; a failover may interleave residue
// from the old owner with fresh deliveries, so cross-event ordering is
// not guaranteed — the multiset is.
type TopoSub struct {
	t     *Topology
	topic string
	fltr  filter.Filter
	home  int

	out  chan *jms.Message
	dead chan struct{}

	mu        sync.Mutex
	parts     map[string]*topoPart // member id -> part
	closed    bool
	delivered atomic.Uint64
}

// Chan returns the merged delivery channel. It is closed by Unsubscribe
// (and by Topology.Close) after the pumps exit.
func (s *TopoSub) Chan() <-chan *jms.Message { return s.out }

// Delivered returns the number of messages forwarded into the merged
// channel.
func (s *TopoSub) Delivered() uint64 { return s.delivered.Load() }

// Topic returns the subscribed topic.
func (s *TopoSub) Topic() string { return s.topic }

// attachLocked subscribes on a member and starts its pump. Topology write
// lock held.
func (s *TopoSub) attachLocked(mem *topoMember) error {
	sub, err := mem.b.Subscribe(s.topic, s.fltr)
	if err != nil {
		return err
	}
	p := &topoPart{sub: sub, stop: make(chan struct{}), done: make(chan struct{})}
	s.mu.Lock()
	s.parts[mem.id] = p
	s.mu.Unlock()
	go s.pump(p)
	return nil
}

// soleMemberID returns the single member this subscription lives on (SSR
// and hash have exactly one part), or "" when ambiguous.
func (s *TopoSub) soleMemberID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.parts) != 1 {
		return ""
	}
	for id := range s.parts {
		return id
	}
	return ""
}

// dropLocked tears down the part on a member after flushing its residue.
func (s *TopoSub) dropLocked(id string) error {
	s.mu.Lock()
	p := s.parts[id]
	delete(s.parts, id)
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	_ = p.sub.Unsubscribe()
	close(p.stop)
	<-p.done
	return nil
}

// moveLocked re-homes this subscription from member id `from` to member
// `to`: the old part is unsubscribed and its residue flushed into the
// merged channel before the new part's pump starts, preserving per-topic
// order across a quiesced (graceful) move.
func (s *TopoSub) moveLocked(from string, to *topoMember) error {
	if err := s.dropLocked(from); err != nil {
		return err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil
	}
	return s.attachLocked(to)
}

// pump forwards one underlying subscription into the merged channel. On
// stop it drains what the broker has already enqueued (after a quiesce +
// unsubscribe that is everything the old owner accepted) and exits; on a
// closed delivery channel (broker shut down) the channel's residue has
// been consumed by then, so the same guarantee holds for kills.
func (s *TopoSub) pump(p *topoPart) {
	defer close(p.done)
	for {
		select {
		case m, ok := <-p.sub.Chan():
			if !ok {
				return
			}
			if !s.deliver(m) {
				return
			}
		case <-p.stop:
			for {
				select {
				case m, ok := <-p.sub.Chan():
					if !ok {
						return
					}
					if !s.deliver(m) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// deliver forwards one message into the merged channel, giving up only
// when the subscription is torn down.
func (s *TopoSub) deliver(m *jms.Message) bool {
	select {
	case s.out <- m:
		s.delivered.Add(1)
		return true
	case <-s.dead:
		return false
	}
}

// teardownLocked aborts a half-built subscription. Topology write lock
// held; the sub was never published to t.subs.
func (s *TopoSub) teardownLocked() {
	s.close()
}

// close tears the subscription down: underlying subscriptions are
// removed, pumps unblocked and awaited, and the merged channel closed.
func (s *TopoSub) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	parts := make([]*topoPart, 0, len(s.parts))
	for _, p := range s.parts {
		parts = append(parts, p)
	}
	s.parts = make(map[string]*topoPart)
	s.mu.Unlock()

	close(s.dead)
	for _, p := range parts {
		_ = p.sub.Unsubscribe()
		close(p.stop)
	}
	for _, p := range parts {
		<-p.done
	}
	close(s.out)
}

// Unsubscribe removes the subscription from the topology and closes the
// merged channel.
func (s *TopoSub) Unsubscribe() error {
	s.t.mu.Lock()
	delete(s.t.subs, s)
	s.t.mu.Unlock()
	s.close()
	return nil
}
